module qclique

go 1.24
