// Command bench runs the E1–E3 benchmark workloads (the paper's headline
// measurements: full quantum APSP pipeline, FindEdgesWithPromise sweep,
// truncated multi-search) and emits a machine-readable JSON report with
// ns/op, rounds/op and allocation counts per configuration, so the
// performance trajectory is tracked across PRs:
//
//	go run ./cmd/bench -label "PR 1" -out BENCH_1.json
//
// The wall-clock numbers measure simulator speed on the host; the
// rounds/op numbers measure the algorithm in the CONGEST-CLIQUE cost model
// and must stay bit-identical across performance work (see the README's
// performance section for the distinction).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"qclique/internal/congest"
	"qclique/internal/core"
	"qclique/internal/graph"
	"qclique/internal/qsearch"
	"qclique/internal/triangles"
	"qclique/internal/xrand"
)

// Result is one benchmark configuration's measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	RoundsPerOp float64 `json:"rounds_per_op,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the emitted document.
type Report struct {
	Label      string   `json:"label"`
	GoVersion  string   `json:"go"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Timestamp  string   `json:"timestamp"`
	Benchmarks []Result `json:"benchmarks"`
}

func measure(name string, fn func(b *testing.B)) Result {
	r := testing.Benchmark(fn)
	out := Result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	if v, ok := r.Extra["rounds/op"]; ok {
		out.RoundsPerOp = v
	}
	return out
}

func benchDigraph(n int) (*graph.Digraph, error) {
	return graph.RandomDigraph(n, graph.DigraphOpts{
		ArcProb: 0.4, MinWeight: -8, MaxWeight: 8, NoNegativeCycles: true,
	}, xrand.New(uint64(n)))
}

func benchTriangleGraph(n int) (*graph.Undirected, error) {
	rng := xrand.New(uint64(n))
	g, err := graph.RandomUndirected(n, graph.UndirectedOpts{EdgeProb: 0.15, MinWeight: 1, MaxWeight: 40}, rng)
	if err != nil {
		return nil, err
	}
	if _, err := graph.PlantNegativeTriangles(g, 1+n/16, 30, rng.Split("p")); err != nil {
		return nil, err
	}
	return g, nil
}

// e1Sizes mirrors BenchmarkE1APSPQuantum; quick mode drops the slow tail.
func e1Sizes(quick bool) []int {
	if quick {
		return []int{8, 16}
	}
	return []int{8, 16, 32, 64}
}

func buildReport(label string, quick bool) (*Report, error) {
	rep := &Report{
		Label:      label,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	params := triangles.BenchParams()

	// E1: full quantum APSP pipeline (Theorem 1).
	for _, n := range e1Sizes(quick) {
		g, err := benchDigraph(n)
		if err != nil {
			return nil, err
		}
		rep.Benchmarks = append(rep.Benchmarks, measure(fmt.Sprintf("E1APSPQuantum/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var rounds int64
			for i := 0; i < b.N; i++ {
				res, err := core.Solve(g, core.Config{Strategy: core.StrategyQuantum, Params: &params, Seed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds/op")
		}))
	}

	// E2: FindEdgesWithPromise sweep (Theorem 2).
	for _, n := range []int{16, 81, 256} {
		g, err := benchTriangleGraph(n)
		if err != nil {
			return nil, err
		}
		rep.Benchmarks = append(rep.Benchmarks, measure(fmt.Sprintf("E2FindEdgesPromise/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var rounds int64
			for i := 0; i < b.N; i++ {
				r, err := triangles.FindEdgesWithPromise(triangles.Instance{G: g}, triangles.Options{
					Seed: uint64(i), Params: &params, Data: triangles.DataDirect,
				})
				if err != nil {
					b.Fatal(err)
				}
				rounds = r.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds/op")
		}))
	}

	// E3: truncated parallel multi-search (Theorem 3).
	for _, m := range []int{4000, 8000} {
		const size = 8
		rng := xrand.New(uint64(m))
		tables := make([][]bool, m)
		for i := range tables {
			tables[i] = make([]bool, size)
			tables[i][rng.IntN(size)] = true
		}
		beta := 8*float64(m)/size + 64
		rep.Benchmarks = append(rep.Benchmarks, measure(fmt.Sprintf("E3MultiSearch/m=%d", m), func(b *testing.B) {
			b.ReportAllocs()
			var rounds int64
			for i := 0; i < b.N; i++ {
				nw, err := congest.NewNetwork(8)
				if err != nil {
					b.Fatal(err)
				}
				res, err := qsearch.MultiSearch(nw, qsearch.Spec{
					SpaceSize: size, Instances: m, Eval: qsearch.LocalEval(tables, 1), Beta: beta,
				}, rng.SplitN("i", i))
				if err != nil {
					b.Fatal(err)
				}
				if !res.AllFound() {
					b.Fatal("search failed")
				}
				rounds = nw.Rounds()
			}
			b.ReportMetric(float64(rounds), "rounds/op")
		}))
	}
	return rep, nil
}

func main() {
	out := flag.String("out", "", "write the JSON report to this path (default: stdout)")
	label := flag.String("label", "dev", "label recorded in the report")
	quick := flag.Bool("quick", false, "skip the slow large-n configurations")
	flag.Parse()

	rep, err := buildReport(*label, *quick)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
}
