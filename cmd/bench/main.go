// Command bench runs the E1–E4 benchmark workloads (the paper's headline
// measurements: full quantum APSP pipeline, FindEdgesWithPromise sweep,
// truncated multi-search, and the approximate-APSP frontier comparing the
// (1+ε) chain and (2+ε) skeleton against the exact pipeline on shared
// graphs) and emits a machine-readable JSON report with ns/op, rounds/op,
// observed stretch and allocation counts per configuration, so the
// performance trajectory is tracked across PRs:
//
//	go run ./cmd/bench -label "PR 2" -out BENCH_1.json
//
// It is also the CI regression gate ("Mind the Õ": round-accounting claims
// only stay honest while they are continuously re-measured):
//
//	go run ./cmd/bench -check BENCH_1.json
//
// -check re-measures every configuration and fails (exit 1) if any
// rounds/op deviates from the committed baseline at all — rounds are
// deterministic seed-for-seed, measured at a pinned seed, so any drift is
// a semantic change to the simulated protocol — if any ns/op regresses by
// more than -max-slowdown (wall-clock noise tolerance, default 2.5x), or
// if any allocs/op grows beyond -max-alloc-growth (default 1.5x; the
// allocation count is nearly deterministic, so growth means a pooling
// regression on the solve path).
//
// Every APSP workload additionally passes the stage-sum gate on every run:
// the engine's per-stage round breakdown must sum exactly to rounds/op.
// -stages adds that breakdown as a column in the emitted report. -planner
// adds the planner-accuracy column: one strategy=auto solve per bench
// graph, recording which strategy the serving layer's planner chose and
// how far its round prediction landed from the execution.
//
// -cpuprofile / -memprofile write pprof profiles of the measurement run so
// perf PRs can ship evidence alongside the report.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"qclique/internal/congest"
	"qclique/internal/core"
	"qclique/internal/engine"
	"qclique/internal/graph"
	"qclique/internal/qsearch"
	"qclique/internal/serve"
	"qclique/internal/triangles"
	"qclique/internal/xrand"
)

// roundsSeed is the pinned seed at which rounds/op is measured; timing
// loops vary the seed per iteration, the deterministic round count does
// not.
const roundsSeed = 0

// Result is one benchmark configuration's measurement. StretchPerOp is the
// accuracy column of the approximate configurations: the observed max
// stretch against the exact reference at the pinned seed (0 for exact
// workloads, where accuracy is not a variable). Stages is the -stages
// column: the engine's per-stage round breakdown at the pinned seed
// (deterministic, like rounds); it is emitted only when -stages is set so
// existing baselines stay byte-comparable, but the invariant that stage
// rounds sum exactly to rounds/op is enforced on every run regardless.
type Result struct {
	Name         string  `json:"name"`
	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	RoundsPerOp  float64 `json:"rounds_per_op,omitempty"`
	StretchPerOp float64 `json:"stretch_per_op,omitempty"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	// Gomaxprocs is the effective GOMAXPROCS the entry was measured under
	// (omitted in baselines predating the column; -check falls back to
	// the report-level value). ns/op comparisons across differing values
	// are wall-clock apples-to-oranges, so -check downgrades them to
	// warnings.
	Gomaxprocs int          `json:"gomaxprocs,omitempty"`
	Stages     []StageRound `json:"stages,omitempty"`
}

// StageRound is one stage's deterministic round charge at the pinned seed.
type StageRound struct {
	Name   string `json:"name"`
	Rounds int64  `json:"rounds"`
}

// PlannerResult is one graph's planner-accuracy row (-planner): the
// strategy a serving-layer planner chose for a strategy=auto solve of the
// bench graph, and how its round prediction compared with the execution.
type PlannerResult struct {
	Name            string  `json:"name"`
	Chosen          string  `json:"chosen"`
	Reason          string  `json:"reason"`
	PredictedRounds int64   `json:"predicted_rounds"`
	ActualRounds    int64   `json:"actual_rounds"`
	RoundsErrorPct  float64 `json:"rounds_error_pct"`
}

// Report is the emitted document. Planner is the -planner column; like
// -stages it is additive and omitted by default so existing baselines stay
// byte-comparable.
type Report struct {
	Label      string          `json:"label"`
	GoVersion  string          `json:"go"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Timestamp  string          `json:"timestamp"`
	RoundsSeed uint64          `json:"rounds_seed"`
	Benchmarks []Result        `json:"benchmarks"`
	Planner    []PlannerResult `json:"planner,omitempty"`
}

// runOut is one workload execution's deterministic measurements: the
// simulated round count, the observed stretch (0 for exact workloads) and
// — for APSP workloads that run through the engine — the per-stage round
// breakdown, whose sum the gate pins to the round total.
type runOut struct {
	rounds  int64
	stretch float64
	stages  []engine.StageStat
}

// benchConfig is one measurable configuration: run executes the workload
// once under a seed; every runOut field is deterministic seed-for-seed.
type benchConfig struct {
	name string
	run  func(seed uint64) (runOut, error)
}

// solveRun adapts a core solve into a bench workload. reportStretch
// selects whether the observed stretch becomes the accuracy column (the
// approximate configurations) or stays 0 (exact workloads, where accuracy
// is not a variable).
func solveRun(g *graph.Digraph, cfg core.Config, reportStretch bool) func(seed uint64) (runOut, error) {
	return func(seed uint64) (runOut, error) {
		c := cfg
		c.Seed = seed
		res, err := core.Solve(g, c)
		if err != nil {
			return runOut{}, err
		}
		out := runOut{rounds: res.Rounds, stages: res.Stages}
		if reportStretch {
			out.stretch = res.ObservedStretch
		}
		return out, nil
	}
}

func benchDigraph(n int) (*graph.Digraph, error) {
	return graph.RandomDigraph(n, graph.DigraphOpts{
		ArcProb: 0.4, MinWeight: -8, MaxWeight: 8, NoNegativeCycles: true,
	}, xrand.New(uint64(n)))
}

func benchTriangleGraph(n int) (*graph.Undirected, error) {
	rng := xrand.New(uint64(n))
	g, err := graph.RandomUndirected(n, graph.UndirectedOpts{EdgeProb: 0.15, MinWeight: 1, MaxWeight: 40}, rng)
	if err != nil {
		return nil, err
	}
	if _, err := graph.PlantNegativeTriangles(g, 1+n/16, 30, rng.Split("p")); err != nil {
		return nil, err
	}
	return g, nil
}

// benchNonnegDigraph is the E4 workload: the E1 density with nonnegative
// weights, the input class the approximate strategies accept, so exact and
// approximate pipelines can be compared on the same graph.
func benchNonnegDigraph(n int) (*graph.Digraph, error) {
	return graph.RandomDigraph(n, graph.DigraphOpts{
		ArcProb: 0.4, MinWeight: 0, MaxWeight: 8,
	}, xrand.New(uint64(n)))
}

// benchSymmetricDigraph is the skeleton-strategy workload: sparse,
// weight-symmetric, nonnegative.
func benchSymmetricDigraph(n int) (*graph.Digraph, error) {
	return graph.RandomSymmetricDigraph(n, graph.DigraphOpts{
		ArcProb: 0.15, MinWeight: 1, MaxWeight: 20,
	}, xrand.New(uint64(n)))
}

// sweepWorkers is the worker ladder of the transport sweep: the fixed
// 1/2/4 rungs every host measures identically (so baselines stay
// machine-portable), plus this host's GOMAXPROCS when it is not already a
// rung. A GOMAXPROCS-only rung shows up in the report as a new benchmark
// (a note, not a gate failure) on hosts with other core counts.
func sweepWorkers() []int {
	ws := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 2 && p != 4 {
		ws = append(ws, p)
	}
	return ws
}

// e1Sizes mirrors BenchmarkE1APSPQuantum; quick mode drops the slow tail.
func e1Sizes(quick bool) []int {
	if quick {
		return []int{8, 16}
	}
	return []int{8, 16, 32, 64, 128}
}

// benchConfigs assembles the E1–E3 workload matrix.
func benchConfigs(quick bool) ([]benchConfig, error) {
	var configs []benchConfig
	params := triangles.BenchParams()

	// E1: full quantum APSP pipeline (Theorem 1).
	for _, n := range e1Sizes(quick) {
		g, err := benchDigraph(n)
		if err != nil {
			return nil, err
		}
		configs = append(configs, benchConfig{
			name: fmt.Sprintf("E1APSPQuantum/n=%d", n),
			run:  solveRun(g, core.Config{Strategy: core.StrategyQuantum, Params: &params}, false),
		})
	}

	// E1 with host parallelism: the same pipeline at a fixed Workers > 1,
	// so every report carries multi-worker evidence regardless of the
	// host's core count (rounds are worker-invariant by construction — the
	// gate checks that too).
	if !quick {
		for _, n := range []int{32, 64} {
			g, err := benchDigraph(n)
			if err != nil {
				return nil, err
			}
			configs = append(configs, benchConfig{
				name: fmt.Sprintf("E1APSPQuantum/n=%d/workers=4", n),
				run:  solveRun(g, core.Config{Strategy: core.StrategyQuantum, Params: &params, Workers: 4}, false),
			})
		}
	}

	// E1 transport × workers sweep: the same quantum pipeline on every
	// delivery backend at each rung of the worker ladder. Rounds are
	// transport- and worker-invariant by the backend contract — the
	// transport-parity gate (transportParityFailures) fails the run if the
	// sharded backend's rounds drift from local's at any rung; ns/op across
	// the rungs is the scaling evidence the follow-up notes read.
	sweepN := 32
	if quick {
		sweepN = 16
	}
	for _, transport := range []string{congest.DefaultTransport, congest.TransportSharded} {
		for _, w := range sweepWorkers() {
			if quick && w > 2 {
				continue
			}
			g, err := benchDigraph(sweepN)
			if err != nil {
				return nil, err
			}
			configs = append(configs, benchConfig{
				name: fmt.Sprintf("E1TransportSweep/%s/n=%d/workers=%d", transport, sweepN, w),
				run: solveRun(g, core.Config{
					Strategy: core.StrategyQuantum, Params: &params,
					Workers: w, Transport: transport,
				}, false),
			})
		}
	}

	// E2: FindEdgesWithPromise sweep (Theorem 2).
	for _, n := range []int{16, 81, 256} {
		g, err := benchTriangleGraph(n)
		if err != nil {
			return nil, err
		}
		configs = append(configs, benchConfig{
			name: fmt.Sprintf("E2FindEdgesPromise/n=%d", n),
			run: func(seed uint64) (runOut, error) {
				r, err := triangles.FindEdgesWithPromise(triangles.Instance{G: g}, triangles.Options{
					Seed: seed, Params: &params, Data: triangles.DataDirect,
				})
				if err != nil {
					return runOut{}, err
				}
				return runOut{rounds: r.Rounds}, nil
			},
		})
	}

	// E4: the approximate-APSP frontier. Exact quantum and the (1+ε)
	// approximate chain run on the same nonnegative graph so rounds/op is
	// an apples-to-apples comparison (the gate additionally requires the
	// approximate chain to win — see approxWinFailures); the (2+ε)
	// skeleton runs on its symmetric workload. ε = 0.5 throughout.
	const e4Epsilon = 0.5
	e4Sizes := []int{32, 64, 128}
	if quick {
		e4Sizes = []int{32}
	}
	for _, n := range e4Sizes {
		g, err := benchNonnegDigraph(n)
		if err != nil {
			return nil, err
		}
		configs = append(configs,
			benchConfig{
				name: fmt.Sprintf("E4APSPQuantumNonneg/n=%d", n),
				run:  solveRun(g, core.Config{Strategy: core.StrategyQuantum, Params: &params}, false),
			},
			benchConfig{
				name: fmt.Sprintf("E4APSPApproxQuantum/n=%d/eps=0.5", n),
				run:  solveRun(g, core.Config{Strategy: core.StrategyApproxQuantum, Params: &params, Epsilon: e4Epsilon}, true),
			},
		)
		gs, err := benchSymmetricDigraph(n)
		if err != nil {
			return nil, err
		}
		configs = append(configs, benchConfig{
			name: fmt.Sprintf("E4APSPApproxSkeleton/n=%d/eps=0.5", n),
			run:  solveRun(gs, core.Config{Strategy: core.StrategyApproxSkeleton, Epsilon: e4Epsilon}, true),
		})
	}

	// E3: truncated parallel multi-search (Theorem 3).
	for _, m := range []int{4000, 8000} {
		const size = 8
		rng := xrand.New(uint64(m))
		tables := make([][]bool, m)
		for i := range tables {
			tables[i] = make([]bool, size)
			tables[i][rng.IntN(size)] = true
		}
		beta := 8*float64(m)/size + 64
		base := xrand.New(uint64(m))
		configs = append(configs, benchConfig{
			name: fmt.Sprintf("E3MultiSearch/m=%d", m),
			run: func(seed uint64) (runOut, error) {
				nw, err := congest.NewNetwork(size)
				if err != nil {
					return runOut{}, err
				}
				res, err := qsearch.MultiSearch(nw, qsearch.Spec{
					SpaceSize: size, Instances: m, Eval: qsearch.LocalEval(tables, 1), Beta: beta,
				}, base.SplitN("i", int(seed)))
				if err != nil {
					return runOut{}, err
				}
				if !res.AllFound() {
					return runOut{}, fmt.Errorf("search failed")
				}
				return runOut{rounds: nw.Rounds()}, nil
			},
		})
	}
	return configs, nil
}

// measure records cfg's deterministic round count at the pinned seed plus
// wall-clock/allocation statistics over varying seeds. The timing loop's
// iteration i runs seed i, so iteration roundsSeed doubles as the pinned
// rounds measurement — no separate warm-up run. Workloads that report a
// per-stage breakdown additionally pass through the stage-sum gate: the
// stage rounds must sum exactly to rounds/op, every run, or the engine's
// stage accounting has drifted from the network's.
func measure(cfg benchConfig, withStages bool) (Result, error) {
	var pinned runOut
	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := cfg.run(uint64(i))
			if err != nil {
				benchErr = err
				b.Fatal(err)
			}
			if uint64(i) == roundsSeed {
				pinned = out
			}
		}
	})
	if benchErr != nil {
		return Result{}, fmt.Errorf("%s: %w", cfg.name, benchErr)
	}
	if len(pinned.stages) > 0 {
		if sum := engine.SumRounds(pinned.stages); sum != pinned.rounds {
			return Result{}, fmt.Errorf("%s: per-stage rounds sum %d != rounds/op %d — the engine's stage accounting drifted from the network total",
				cfg.name, sum, pinned.rounds)
		}
	}
	res := Result{
		Name:         cfg.name,
		Iterations:   r.N,
		NsPerOp:      float64(r.T.Nanoseconds()) / float64(r.N),
		RoundsPerOp:  float64(pinned.rounds),
		StretchPerOp: pinned.stretch,
		BytesPerOp:   r.AllocedBytesPerOp(),
		AllocsPerOp:  r.AllocsPerOp(),
		Gomaxprocs:   runtime.GOMAXPROCS(0),
	}
	if withStages {
		for _, sg := range pinned.stages {
			if sg.Skipped {
				continue
			}
			res.Stages = append(res.Stages, StageRound{Name: sg.Name, Rounds: sg.Rounds})
		}
	}
	return res, nil
}

// plannerAccuracy runs a strategy=auto solve of each E1-sized bench graph
// through a fresh serving instance and reports the planner's decision next
// to the executed rounds — the -planner column. A fresh instance has no
// live telemetry, so this measures the static cost priors, the worst case
// the planner starts from.
func plannerAccuracy(quick bool) ([]PlannerResult, error) {
	sizes := []int{16, 32, 64}
	if quick {
		sizes = []int{16, 32}
	}
	svc := serve.New(serve.Config{DefaultStrategy: core.StrategyAuto})
	var out []PlannerResult
	for _, n := range sizes {
		g, err := benchDigraph(n)
		if err != nil {
			return nil, err
		}
		res, err := svc.SolveGraph(g, serve.SolveSpec{Preset: serve.PresetScaled, Seed: roundsSeed})
		if err != nil {
			return nil, err
		}
		if res.Plan == nil {
			return nil, fmt.Errorf("planner/apsp/n=%d: auto solve returned no plan", n)
		}
		pr := PlannerResult{
			Name:            fmt.Sprintf("planner/apsp/n=%d", n),
			Chosen:          res.Plan.Strategy,
			Reason:          res.Plan.Reason,
			PredictedRounds: res.Plan.PredictedRounds,
			ActualRounds:    res.Res.Rounds,
		}
		if pr.ActualRounds > 0 {
			diff := float64(pr.PredictedRounds - pr.ActualRounds)
			if diff < 0 {
				diff = -diff
			}
			pr.RoundsErrorPct = 100 * diff / float64(pr.ActualRounds)
		}
		out = append(out, pr)
	}
	return out, nil
}

func buildReport(label string, quick, withStages bool) (*Report, error) {
	rep := &Report{
		Label:      label,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		RoundsSeed: roundsSeed,
	}
	configs, err := benchConfigs(quick)
	if err != nil {
		return nil, err
	}
	for _, cfg := range configs {
		res, err := measure(cfg, withStages)
		if err != nil {
			return nil, err
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
	}
	return rep, nil
}

// compareReports checks current against baseline: any rounds/op deviation
// is a failure (rounds are deterministic), ns/op beyond maxSlowdown× is a
// failure, allocs/op beyond maxAllocGrowth× is a failure (the allocation
// profile is nearly deterministic, so growth means a pooling regression),
// and baseline entries missing from the current run are a failure unless
// partial (quick mode). It returns the failures and a human log of every
// comparison.
// entryGomaxprocs resolves the effective GOMAXPROCS one entry was measured
// under: the per-entry column when present, the report header otherwise
// (baselines predating the column).
func entryGomaxprocs(r Result, rep *Report) int {
	if r.Gomaxprocs > 0 {
		return r.Gomaxprocs
	}
	return rep.GOMAXPROCS
}

func compareReports(baseline, current *Report, maxSlowdown, maxAllocGrowth float64, partial bool) (failures, log []string) {
	base := make(map[string]Result, len(baseline.Benchmarks))
	for _, r := range baseline.Benchmarks {
		base[r.Name] = r
	}
	seen := make(map[string]bool, len(current.Benchmarks))
	for _, cur := range current.Benchmarks {
		seen[cur.Name] = true
		b, ok := base[cur.Name]
		if !ok {
			log = append(log, fmt.Sprintf("%-28s new benchmark, no baseline (regenerate with -out)", cur.Name))
			continue
		}
		if cur.RoundsPerOp != b.RoundsPerOp {
			failures = append(failures, fmt.Sprintf(
				"%s: rounds/op %.0f != baseline %.0f — the simulated protocol changed; "+
					"if intended, regenerate the baseline", cur.Name, cur.RoundsPerOp, b.RoundsPerOp))
			continue
		}
		if cur.StretchPerOp != b.StretchPerOp {
			failures = append(failures, fmt.Sprintf(
				"%s: stretch/op %v != baseline %v — the approximate pipeline's accuracy changed; "+
					"if intended, regenerate the baseline", cur.Name, cur.StretchPerOp, b.StretchPerOp))
			continue
		}
		ratio := cur.NsPerOp / b.NsPerOp
		if ratio > maxSlowdown {
			// ns/op across different effective GOMAXPROCS is an
			// apples-to-oranges wall-clock comparison (a 1-core baseline
			// replayed on an 8-core host, or vice versa), so the slowdown
			// gate degrades to a warning; rounds and allocs stay hard
			// gates — they are host-independent.
			bp, cp := entryGomaxprocs(b, baseline), entryGomaxprocs(cur, current)
			if bp != cp {
				log = append(log, fmt.Sprintf(
					"%-28s WARNING ns/op %.2fx baseline, not gated: baseline GOMAXPROCS %d != current %d",
					cur.Name, ratio, bp, cp))
			} else {
				failures = append(failures, fmt.Sprintf(
					"%s: ns/op %.0f is %.2fx the baseline %.0f (limit %.2fx)",
					cur.Name, cur.NsPerOp, ratio, b.NsPerOp, maxSlowdown))
				continue
			}
		}
		if b.AllocsPerOp > 0 {
			allocRatio := float64(cur.AllocsPerOp) / float64(b.AllocsPerOp)
			if allocRatio > maxAllocGrowth {
				failures = append(failures, fmt.Sprintf(
					"%s: allocs/op %d is %.2fx the baseline %d (limit %.2fx) — a solve-path buffer stopped being pooled",
					cur.Name, cur.AllocsPerOp, allocRatio, b.AllocsPerOp, maxAllocGrowth))
				continue
			}
		}
		log = append(log, fmt.Sprintf("%-28s rounds %.0f ok, ns/op %.2fx, allocs/op %d vs %d baseline",
			cur.Name, cur.RoundsPerOp, ratio, cur.AllocsPerOp, b.AllocsPerOp))
	}
	if !partial {
		for _, b := range baseline.Benchmarks {
			if !seen[b.Name] {
				failures = append(failures, fmt.Sprintf("%s: in baseline but not measured (suite shrank?)", b.Name))
			}
		}
	}
	return failures, log
}

// approxWinFailures enforces the approximate-frontier invariant on a
// measured report: wherever an E4 exact/approx pair was measured on the
// same graph, the (1+ε) chain must charge strictly fewer rounds than the
// exact pipeline — the round-count win is the point of the strategy, so
// losing it is a regression even if every pinned number still matches.
func approxWinFailures(rep *Report) []string {
	rounds := make(map[string]float64, len(rep.Benchmarks))
	for _, r := range rep.Benchmarks {
		rounds[r.Name] = r.RoundsPerOp
	}
	var failures []string
	for name, exact := range rounds {
		var n int
		if _, err := fmt.Sscanf(name, "E4APSPQuantumNonneg/n=%d", &n); err != nil {
			continue
		}
		approxName := fmt.Sprintf("E4APSPApproxQuantum/n=%d/eps=0.5", n)
		approx, ok := rounds[approxName]
		if !ok {
			continue
		}
		if approx >= exact {
			failures = append(failures, fmt.Sprintf(
				"%s: rounds/op %.0f is not strictly below the exact pipeline's %.0f (%s) — the approximate chain lost its round win",
				approxName, approx, exact, name))
		}
	}
	return failures
}

// transportParityFailures enforces the transport contract on a measured
// report: wherever the sweep measured a local/sharded pair at the same n
// and worker count, the two must charge exactly the same rounds/op — the
// backends are required to be bit-identical in delivered inboxes, so any
// rounds drift means the sharded delivery diverged from the
// single-goroutine reference.
func transportParityFailures(rep *Report) []string {
	rounds := make(map[string]float64, len(rep.Benchmarks))
	for _, r := range rep.Benchmarks {
		rounds[r.Name] = r.RoundsPerOp
	}
	var failures []string
	for name, local := range rounds {
		var n, w int
		if _, err := fmt.Sscanf(name, "E1TransportSweep/local/n=%d/workers=%d", &n, &w); err != nil {
			continue
		}
		shardedName := fmt.Sprintf("E1TransportSweep/sharded/n=%d/workers=%d", n, w)
		sharded, ok := rounds[shardedName]
		if !ok {
			continue
		}
		if sharded != local {
			failures = append(failures, fmt.Sprintf(
				"%s: rounds/op %.0f != local backend's %.0f (%s) — the sharded transport diverged from the reference delivery",
				shardedName, sharded, local, name))
		}
	}
	return failures
}

// chaosPlan is the fixed fault schedule of the -faults mode: a steady mix
// of recovered link faults plus at most one unrecovered fault (corruption
// or crash), which every strategy's stage-retry budget must absorb. One
// unrecovered fault is the conservative cap that converges under every
// budget: a crash with a one-phase down window costs two attempts of the
// stage it lands in, and the smallest budget (gossip) allows exactly two
// retries.
var chaosPlan = congest.FaultPlan{
	Seed:            20190729,
	DropRate:        0.05,
	DupRate:         0.02,
	DelayRate:       0.03,
	MaxDelayRounds:  2,
	CorruptRate:     0.05,
	CrashRate:       0.02,
	CrashDownPhases: 1,
	MaxFaults:       1,
}

// FaultResult is one chaos configuration's outcome: the armed run must
// converge to the fault-free distances, and the report records what it
// cost to get there.
type FaultResult struct {
	Name string `json:"name"`
	// CleanRounds and Rounds are the fault-free and armed round counts;
	// the difference is the injected-fault surcharge.
	CleanRounds int64 `json:"clean_rounds"`
	Rounds      int64 `json:"rounds"`
	// Retries is the total stage re-runs spent recovering.
	Retries int `json:"retries"`
	// Faults is the injected-fault accounting of the armed run.
	Faults congest.FaultCounters `json:"faults"`
}

// FaultReport is the -faults mode's emitted document (the CI chaos job
// uploads it as an artifact).
type FaultReport struct {
	Label     string            `json:"label"`
	GoVersion string            `json:"go"`
	Timestamp string            `json:"timestamp"`
	Plan      congest.FaultPlan `json:"plan"`
	Results   []FaultResult     `json:"results"`
}

// runFaultMode measures the chaos matrix — every registered strategy at
// n ∈ {8, 16}, each on the densest input class it accepts. Each
// configuration runs once fault-free and once under chaosPlan at the
// pinned seed; the armed run must converge to identical distances, and the
// per-configuration fault accounting is emitted as a FaultReport.
func runFaultMode(label, out string) error {
	params := triangles.BenchParams()
	const eps = 0.5
	type sc struct {
		strategy core.Strategy
		epsilon  float64
		build    func(n int) (*graph.Digraph, error)
	}
	matrix := []sc{
		{core.StrategyQuantum, 0, benchDigraph},
		{core.StrategyClassicalSearch, 0, benchDigraph},
		{core.StrategyDolev, 0, benchDigraph},
		{core.StrategyGossip, 0, benchDigraph},
		{core.StrategyApproxQuantum, eps, benchNonnegDigraph},
		{core.StrategyApproxSkeleton, eps, benchSymmetricDigraph},
	}
	rep := &FaultReport{
		Label:     label,
		GoVersion: runtime.Version(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Plan:      chaosPlan,
	}
	for _, m := range matrix {
		for _, n := range []int{8, 16} {
			g, err := m.build(n)
			if err != nil {
				return err
			}
			name := fmt.Sprintf("Chaos/%s/n=%d", m.strategy, n)
			cfg := core.Config{Strategy: m.strategy, Params: &params, Epsilon: m.epsilon, Seed: roundsSeed}
			clean, err := core.Solve(g, cfg)
			if err != nil {
				return fmt.Errorf("%s: fault-free run: %w", name, err)
			}
			cfg.Faults = chaosPlan
			armed, err := core.Solve(g, cfg)
			if err != nil {
				return fmt.Errorf("%s: armed run did not converge: %w", name, err)
			}
			if !armed.Dist.Equal(clean.Dist) {
				return fmt.Errorf("%s: armed distances diverged from the fault-free run", name)
			}
			var retries int
			for _, sg := range armed.Stages {
				retries += sg.Retries
			}
			rep.Results = append(rep.Results, FaultResult{
				Name:        name,
				CleanRounds: clean.Rounds,
				Rounds:      armed.Rounds,
				Retries:     retries,
				Faults:      armed.Metrics.Faults,
			})
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d chaos configurations, all converged)\n", out, len(rep.Results))
	}
	return nil
}

func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in baseline", path)
	}
	if rep.RoundsSeed != roundsSeed {
		return nil, fmt.Errorf("%s: baseline rounds measured at seed %d, this binary pins seed %d — regenerate the baseline",
			path, rep.RoundsSeed, uint64(roundsSeed))
	}
	return &rep, nil
}

func main() {
	out := flag.String("out", "", "write the JSON report to this path (default: stdout)")
	label := flag.String("label", "dev", "label recorded in the report")
	quick := flag.Bool("quick", false, "skip the slow large-n configurations")
	stages := flag.Bool("stages", false, "include the per-stage round breakdown column in the report (the stage-sum gate runs regardless)")
	planner := flag.Bool("planner", false, "include the planner-accuracy column: a strategy=auto solve per bench graph with the chosen strategy and round-prediction error")
	check := flag.String("check", "", "compare against this baseline report and exit 1 on regression")
	faults := flag.Bool("faults", false, "run the chaos matrix (every strategy under the fixed fault plan) instead of E1-E4 and emit a FaultReport")
	maxSlowdown := flag.Float64("max-slowdown", 2.5, "ns/op regression tolerance for -check")
	maxAllocGrowth := flag.Float64("max-alloc-growth", 1.5, "allocs/op regression tolerance for -check")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the measurement run to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile (post-run, after GC) to this path")
	flag.Parse()

	if *faults {
		if err := runFaultMode(*label, *out); err != nil {
			fmt.Fprintln(os.Stderr, "bench -faults:", err)
			os.Exit(1)
		}
		return
	}

	// Load the baseline before the (multi-minute) measurement run so a
	// bad path or stale format fails fast.
	var baseline *Report
	if *check != "" {
		var err error
		baseline, err = loadReport(*check)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	rep, err := buildReport(*label, *quick, *stages)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	if *planner {
		rep.Planner, err = plannerAccuracy(*quick)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		f.Close()
	}

	// Write the measured report first (when requested) so that even a
	// failing gate run leaves the evidence behind — CI uploads it as a
	// workflow artifact.
	if *out != "" || baseline == nil {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if *out == "" {
			os.Stdout.Write(data)
		} else {
			if err := os.WriteFile(*out, data, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
		}
	}

	// The approximate-frontier invariant holds on every measured report —
	// including plain -out runs, so a baseline that lost the round win can
	// never be committed in the first place.
	if failures := approxWinFailures(rep); len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "FAIL:", f)
		}
		fmt.Fprintf(os.Stderr, "bench: %d approximate-frontier regression(s)\n", len(failures))
		os.Exit(1)
	}

	// So does the transport contract: a sharded backend that charges
	// different rounds than the local reference is a divergence, whatever
	// the baseline says.
	if failures := transportParityFailures(rep); len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "FAIL:", f)
		}
		fmt.Fprintf(os.Stderr, "bench: %d transport-parity violation(s)\n", len(failures))
		os.Exit(1)
	}

	if baseline != nil {
		failures, log := compareReports(baseline, rep, *maxSlowdown, *maxAllocGrowth, *quick)
		for _, line := range log {
			fmt.Println(line)
		}
		if len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintln(os.Stderr, "FAIL:", f)
			}
			fmt.Fprintf(os.Stderr, "bench: %d regression(s) against %s\n", len(failures), *check)
			os.Exit(1)
		}
		fmt.Printf("bench: %d benchmarks match %s (rounds exact, stretch exact, ns/op within %.2fx, allocs/op within %.2fx)\n",
			len(rep.Benchmarks), *check, *maxSlowdown, *maxAllocGrowth)
	}
}
