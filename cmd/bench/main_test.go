package main

import (
	"encoding/json"
	"strings"
	"testing"

	"qclique/internal/engine"
)

func TestWorkloadConstructors(t *testing.T) {
	if _, err := benchDigraph(8); err != nil {
		t.Fatal(err)
	}
	if _, err := benchTriangleGraph(16); err != nil {
		t.Fatal(err)
	}
}

func TestE1SizesQuickSubset(t *testing.T) {
	full := e1Sizes(false)
	quick := e1Sizes(true)
	if len(quick) >= len(full) {
		t.Fatalf("quick mode must drop configurations: quick=%v full=%v", quick, full)
	}
	if full[len(full)-1] < 32 {
		t.Fatalf("full mode must include the n>=32 scaling cases, got %v", full)
	}
}

// TestRoundsDeterministic pins the gate's core premise: the same
// configuration at the same seed yields the same simulated round count.
func TestRoundsDeterministic(t *testing.T) {
	configs, err := benchConfigs(true)
	if err != nil {
		t.Fatal(err)
	}
	cfg := configs[0]
	a, err := cfg.run(roundsSeed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.run(roundsSeed)
	if err != nil {
		t.Fatal(err)
	}
	if a.rounds != b.rounds || a.stretch != b.stretch {
		t.Fatalf("%s: (rounds, stretch) = (%d, %v) then (%d, %v) at the same seed",
			cfg.name, a.rounds, a.stretch, b.rounds, b.stretch)
	}
}

// TestStageSumGate pins the new invariant behind the -stages column: for
// every APSP workload, the engine's per-stage rounds sum exactly to the
// round total — measure enforces it on every run.
func TestStageSumGate(t *testing.T) {
	configs, err := benchConfigs(true)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, cfg := range configs {
		out, err := cfg.run(roundsSeed)
		if err != nil {
			t.Fatal(err)
		}
		if len(out.stages) == 0 {
			continue
		}
		checked++
		if sum := engine.SumRounds(out.stages); sum != out.rounds {
			t.Errorf("%s: stage rounds sum %d != total %d", cfg.name, sum, out.rounds)
		}
	}
	if checked == 0 {
		t.Fatal("no workload reported stage telemetry; the stage-sum gate is vacuous")
	}
}

func report(results ...Result) *Report {
	return &Report{Label: "t", Benchmarks: results}
}

func TestCompareReportsPasses(t *testing.T) {
	base := report(
		Result{Name: "E1/n=8", NsPerOp: 100, RoundsPerOp: 500},
		Result{Name: "E2/n=16", NsPerOp: 10, RoundsPerOp: 42},
	)
	cur := report(
		Result{Name: "E1/n=8", NsPerOp: 220, RoundsPerOp: 500}, // 2.2x: inside tolerance
		Result{Name: "E2/n=16", NsPerOp: 5, RoundsPerOp: 42},
	)
	failures, log := compareReports(base, cur, 2.5, 1.5, false)
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
	if len(log) != 2 {
		t.Fatalf("log = %v, want 2 comparisons", log)
	}
}

func TestCompareReportsFailsOnRoundsDeviation(t *testing.T) {
	base := report(Result{Name: "E1/n=8", NsPerOp: 100, RoundsPerOp: 500})
	cur := report(Result{Name: "E1/n=8", NsPerOp: 100, RoundsPerOp: 501})
	failures, _ := compareReports(base, cur, 2.5, 1.5, false)
	if len(failures) != 1 {
		t.Fatalf("failures = %v, want exactly the rounds deviation", failures)
	}
}

func TestCompareReportsFailsOnAllocGrowth(t *testing.T) {
	base := report(Result{Name: "E1/n=8", NsPerOp: 100, RoundsPerOp: 500, AllocsPerOp: 1000})
	cur := report(Result{Name: "E1/n=8", NsPerOp: 100, RoundsPerOp: 500, AllocsPerOp: 1600})
	failures, _ := compareReports(base, cur, 2.5, 1.5, false)
	if len(failures) != 1 {
		t.Fatalf("failures = %v, want exactly the allocs/op regression", failures)
	}
	// Improvements and within-tolerance jitter pass.
	cur = report(Result{Name: "E1/n=8", NsPerOp: 100, RoundsPerOp: 500, AllocsPerOp: 400})
	if failures, _ := compareReports(base, cur, 2.5, 1.5, false); len(failures) != 0 {
		t.Fatalf("alloc improvement must pass, got %v", failures)
	}
}

func TestCompareReportsFailsOnSlowdown(t *testing.T) {
	base := report(Result{Name: "E1/n=8", NsPerOp: 100, RoundsPerOp: 500})
	cur := report(Result{Name: "E1/n=8", NsPerOp: 260, RoundsPerOp: 500})
	failures, _ := compareReports(base, cur, 2.5, 1.5, false)
	if len(failures) != 1 {
		t.Fatalf("failures = %v, want exactly the ns/op regression", failures)
	}
}

func TestCompareReportsMissingEntries(t *testing.T) {
	base := report(
		Result{Name: "E1/n=8", NsPerOp: 100, RoundsPerOp: 500},
		Result{Name: "E1/n=64", NsPerOp: 1000, RoundsPerOp: 900},
	)
	cur := report(Result{Name: "E1/n=8", NsPerOp: 100, RoundsPerOp: 500})
	if failures, _ := compareReports(base, cur, 2.5, 1.5, false); len(failures) != 1 {
		t.Fatalf("full mode must flag the missing baseline entry, got %v", failures)
	}
	if failures, _ := compareReports(base, cur, 2.5, 1.5, true); len(failures) != 0 {
		t.Fatalf("quick (partial) mode must tolerate the missing entry, got %v", failures)
	}
	// A new benchmark with no baseline is a note, not a failure.
	cur2 := report(
		Result{Name: "E1/n=8", NsPerOp: 100, RoundsPerOp: 500},
		Result{Name: "E1/n=64", NsPerOp: 1000, RoundsPerOp: 900},
		Result{Name: "E13/new", NsPerOp: 1, RoundsPerOp: 1},
	)
	if failures, _ := compareReports(base, cur2, 2.5, 1.5, false); len(failures) != 0 {
		t.Fatalf("new benchmarks must not fail the gate, got %v", failures)
	}
}

func TestCompareReportsFailsOnStretchDeviation(t *testing.T) {
	base := report(Result{Name: "E4APSPApproxQuantum/n=32/eps=0.5", NsPerOp: 100, RoundsPerOp: 500, StretchPerOp: 1.05})
	cur := report(Result{Name: "E4APSPApproxQuantum/n=32/eps=0.5", NsPerOp: 100, RoundsPerOp: 500, StretchPerOp: 1.06})
	failures, _ := compareReports(base, cur, 2.5, 1.5, false)
	if len(failures) != 1 {
		t.Fatalf("failures = %v, want exactly the stretch deviation", failures)
	}
}

func TestApproxWinFailures(t *testing.T) {
	winning := report(
		Result{Name: "E4APSPQuantumNonneg/n=64", RoundsPerOp: 500},
		Result{Name: "E4APSPApproxQuantum/n=64/eps=0.5", RoundsPerOp: 400},
	)
	if failures := approxWinFailures(winning); len(failures) != 0 {
		t.Fatalf("winning report flagged: %v", failures)
	}
	losing := report(
		Result{Name: "E4APSPQuantumNonneg/n=64", RoundsPerOp: 500},
		Result{Name: "E4APSPApproxQuantum/n=64/eps=0.5", RoundsPerOp: 500},
	)
	if failures := approxWinFailures(losing); len(failures) != 1 {
		t.Fatalf("losing report not flagged: %v", failures)
	}
	// Unpaired entries are not an error (quick mode measures a subset).
	unpaired := report(Result{Name: "E4APSPApproxQuantum/n=128/eps=0.5", RoundsPerOp: 9})
	if failures := approxWinFailures(unpaired); len(failures) != 0 {
		t.Fatalf("unpaired entry flagged: %v", failures)
	}
}

func TestTransportParityFailures(t *testing.T) {
	agreeing := report(
		Result{Name: "E1TransportSweep/local/n=32/workers=2", RoundsPerOp: 700},
		Result{Name: "E1TransportSweep/sharded/n=32/workers=2", RoundsPerOp: 700},
	)
	if failures := transportParityFailures(agreeing); len(failures) != 0 {
		t.Fatalf("agreeing report flagged: %v", failures)
	}
	diverged := report(
		Result{Name: "E1TransportSweep/local/n=32/workers=2", RoundsPerOp: 700},
		Result{Name: "E1TransportSweep/sharded/n=32/workers=2", RoundsPerOp: 701},
	)
	if failures := transportParityFailures(diverged); len(failures) != 1 {
		t.Fatalf("diverged report not flagged: %v", failures)
	}
	// Unpaired rungs are not an error (quick mode measures a subset, and a
	// GOMAXPROCS rung may exist on one transport only mid-edit).
	unpaired := report(Result{Name: "E1TransportSweep/local/n=32/workers=4", RoundsPerOp: 700})
	if failures := transportParityFailures(unpaired); len(failures) != 0 {
		t.Fatalf("unpaired entry flagged: %v", failures)
	}
}

func TestSweepWorkersLadder(t *testing.T) {
	ws := sweepWorkers()
	if len(ws) < 3 || ws[0] != 1 || ws[1] != 2 || ws[2] != 4 {
		t.Fatalf("sweepWorkers() = %v, want the fixed 1/2/4 prefix", ws)
	}
	seen := map[int]bool{}
	for _, w := range ws {
		if seen[w] {
			t.Fatalf("sweepWorkers() = %v contains duplicate rung %d", ws, w)
		}
		seen[w] = true
	}
}

func TestE4WorkloadConstructors(t *testing.T) {
	g, err := benchNonnegDigraph(16)
	if err != nil {
		t.Fatal(err)
	}
	if g.HasNegativeArc() {
		t.Error("E4 workload must be nonnegative")
	}
	gs, err := benchSymmetricDigraph(16)
	if err != nil {
		t.Fatal(err)
	}
	if !gs.IsSymmetric() || gs.HasNegativeArc() {
		t.Error("E4 skeleton workload must be symmetric and nonnegative")
	}
}

func TestReportMarshals(t *testing.T) {
	rep := &Report{
		Label:      "test",
		Benchmarks: []Result{{Name: "E1APSPQuantum/n=8", Iterations: 1, NsPerOp: 1, RoundsPerOp: 2}},
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Benchmarks[0].RoundsPerOp != 2 {
		t.Fatalf("round-trip lost data: %+v", back)
	}
}

func TestCompareReportsWarnsNotFailsOnSlowdownAcrossGomaxprocs(t *testing.T) {
	// A slowdown beyond the limit is only a warning when the two entries
	// were measured under different effective GOMAXPROCS — the wall-clock
	// comparison is apples-to-oranges. Rounds stay a hard gate.
	base := report(Result{Name: "E1/n=8", NsPerOp: 100, RoundsPerOp: 500, Gomaxprocs: 8})
	cur := report(Result{Name: "E1/n=8", NsPerOp: 400, RoundsPerOp: 500, Gomaxprocs: 1})
	failures, log := compareReports(base, cur, 2.5, 1.5, false)
	if len(failures) != 0 {
		t.Fatalf("cross-GOMAXPROCS slowdown must not fail, got %v", failures)
	}
	warned := false
	for _, l := range log {
		if strings.Contains(l, "WARNING") && strings.Contains(l, "GOMAXPROCS") {
			warned = true
		}
	}
	if !warned {
		t.Fatalf("expected a GOMAXPROCS warning in the log, got %v", log)
	}

	// Same GOMAXPROCS: the gate stays hard.
	cur = report(Result{Name: "E1/n=8", NsPerOp: 400, RoundsPerOp: 500, Gomaxprocs: 8})
	if failures, _ := compareReports(base, cur, 2.5, 1.5, false); len(failures) != 1 {
		t.Fatalf("same-GOMAXPROCS slowdown must fail, got %v", failures)
	}
}

func TestEntryGomaxprocsFallsBackToHeader(t *testing.T) {
	// Baselines predating the per-entry column resolve through the report
	// header, so a legacy 1-proc baseline still compares warn-free against
	// a 1-proc host and warns against others.
	legacy := &Report{Label: "old", GOMAXPROCS: 4, Benchmarks: []Result{{Name: "E1/n=8", NsPerOp: 100, RoundsPerOp: 500}}}
	if got := entryGomaxprocs(legacy.Benchmarks[0], legacy); got != 4 {
		t.Fatalf("legacy fallback = %d, want 4", got)
	}
	tagged := Result{Name: "E1/n=8", Gomaxprocs: 2}
	if got := entryGomaxprocs(tagged, legacy); got != 2 {
		t.Fatalf("per-entry value = %d, want 2", got)
	}
}
