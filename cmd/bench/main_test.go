package main

import (
	"encoding/json"
	"testing"
)

func TestWorkloadConstructors(t *testing.T) {
	if _, err := benchDigraph(8); err != nil {
		t.Fatal(err)
	}
	if _, err := benchTriangleGraph(16); err != nil {
		t.Fatal(err)
	}
}

func TestE1SizesQuickSubset(t *testing.T) {
	full := e1Sizes(false)
	quick := e1Sizes(true)
	if len(quick) >= len(full) {
		t.Fatalf("quick mode must drop configurations: quick=%v full=%v", quick, full)
	}
	if full[len(full)-1] < 32 {
		t.Fatalf("full mode must include the n>=32 scaling cases, got %v", full)
	}
}

func TestReportMarshals(t *testing.T) {
	rep := &Report{
		Label:      "test",
		Benchmarks: []Result{{Name: "E1APSPQuantum/n=8", Iterations: 1, NsPerOp: 1, RoundsPerOp: 2}},
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Benchmarks[0].RoundsPerOp != 2 {
		t.Fatalf("round-trip lost data: %+v", back)
	}
}
