package main

import (
	"testing"

	"qclique/internal/serve"
)

// TestSelftest runs the full daemon smoke in-process: boot on an ephemeral
// port, PUT a graph, solve fresh and cached, read distances, batch paths,
// and cross-check everything against qclique.SolveAPSP.
func TestSelftest(t *testing.T) {
	if err := selftest(serve.Config{CacheSize: 8}); err != nil {
		t.Fatal(err)
	}
}
