// Command apspd is the APSP-as-a-service daemon: a long-running HTTP/JSON
// server over the qclique solve layer, with a content-addressed graph
// store, an LRU solve cache with singleflight deduplication, batched path
// queries and per-strategy metrics.
//
//	go run ./cmd/apspd -addr :8719
//
//	PUT  /v1/graphs                   {"n":4,"arcs":[{"u":0,"v":1,"w":3},…]} → {"id":"sha256:…"}
//	POST /v1/graphs/{id}/solve        {"strategy":"quantum","preset":"scaled","seed":42}
//	GET  /v1/graphs/{id}/dist         ?src=&dst= (pair), ?src= (row), none (matrix)
//	POST /v1/graphs/{id}/paths:batch  {"queries":[{"src":0,"dst":3},…]}
//	GET  /v1/strategies               strategy catalog: capabilities + live telemetry
//	GET  /v1/metrics                  per-strategy, per-transport and admission accounting
//	GET  /v1/healthz                  liveness
//	GET  /v1/readyz                   readiness (503 while draining or queue-saturated)
//
// The daemon is overload-resilient: -max-inflight bounds concurrently
// executing solves, -queue-depth bounds the FIFO wait queue behind them
// (excess requests answer 503 "overloaded" with a Retry-After), and
// -overload-degrade answers degradable requests with the cheapest
// approximate strategy while under pressure. SIGINT/SIGTERM drain
// gracefully: readiness flips to 503, queued solves are shed, in-flight
// ones finish within -drain-timeout.
//
// The unprefixed legacy paths still answer identically, marked with a
// "Deprecation: true" header and a Link to their /v1 successor. Failures
// share one envelope: {"error":{"code","message","retryable",…}}.
//
// Requests that name no strategy fall to the -strategy default, which is
// "auto": the service's planner picks the best registered strategy viable
// for the graph's structural profile and the request's stretch budget and
// deadline, and the response echoes the decision ("planned_strategy",
// "planner_reason", "predicted_rounds", "predicted_wall_ns"). A planned
// solve is bit-identical to explicitly requesting the chosen strategy.
//
// Solve-bearing requests additionally accept "epsilon" with the
// approximate strategies ("approx-quantum" for 1+ε, "approx-skeleton" for
// 2+ε); their responses carry the guaranteed and observed stretch.
// Distances use null for unreachable pairs and an explicit "undefined"
// marker for −∞ (negative-cycle) entries; graphs a strategy cannot answer
// (negative cycles, or negative/asymmetric weights under an approximate
// strategy) solve to 422.
//
// Identical graphs hash to the same id, so a re-upload plus re-solve of an
// unchanged graph performs zero simulator rounds. -selftest starts the
// daemon on an ephemeral port, drives the full client flow against it and
// cross-checks every answer with an in-process qclique.SolveAPSP — the CI
// smoke job runs exactly that. -pprof-addr (off by default) serves the
// net/http/pprof diagnostics on a separate listener, kept away from the
// API surface.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"qclique"
	"qclique/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8719", "listen address")
	cacheSize := flag.Int("cache-size", 64, "solve results retained (LRU)")
	maxGraphs := flag.Int("max-graphs", 1024, "graphs retained in the store (LRU)")
	workers := flag.Int("workers", 0, "host-parallelism bound (0 = GOMAXPROCS)")
	maxInflight := flag.Int("max-inflight", runtime.GOMAXPROCS(0), "concurrently executing solves (0 = unbounded)")
	queueDepth := flag.Int("queue-depth", 64, "admission wait queue behind a saturated -max-inflight")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain deadline after SIGINT/SIGTERM")
	overloadDegrade := flag.Bool("overload-degrade", false, "answer degradable requests with the cheapest approximate rung while under overload pressure")
	strategy := flag.String("strategy", "auto", `default strategy for requests that name none ("auto" = planner-chosen; any registered name or alias)`)
	selftestFlag := flag.Bool("selftest", false, "run the end-to-end smoke against an ephemeral daemon and exit")
	soakFlag := flag.Duration("soak", 0, "hammer an ephemeral daemon with mixed concurrent clients for this long, then SIGTERM-drain it, and exit")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof diagnostics on this separate listen address (empty = disabled)")
	flag.Parse()

	defaultStrategy, err := serve.ParseStrategy(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apspd:", err)
		os.Exit(2)
	}
	cfg := serve.Config{
		CacheSize:       *cacheSize,
		MaxGraphs:       *maxGraphs,
		Workers:         *workers,
		MaxInflight:     *maxInflight,
		QueueDepth:      *queueDepth,
		OverloadDegrade: *overloadDegrade,
		DefaultStrategy: defaultStrategy,
	}
	if *selftestFlag {
		if err := selftest(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "apspd selftest:", err)
			os.Exit(1)
		}
		fmt.Println("apspd selftest ok")
		return
	}
	if *soakFlag > 0 {
		if err := soak(cfg, *soakFlag, *drainTimeout); err != nil {
			fmt.Fprintln(os.Stderr, "apspd soak:", err)
			os.Exit(1)
		}
		fmt.Println("apspd soak ok")
		return
	}

	svc := serve.New(cfg)
	if *pprofAddr != "" {
		// Diagnostics stay off the API listener: the profiling surface is
		// opt-in, binds its own (typically loopback-only) address, and is
		// not part of the graceful drain — it dies with the process.
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("apspd pprof listening on %s", pln.Addr())
		go func() {
			psrv := &http.Server{Handler: pprofMux(), ReadHeaderTimeout: 10 * time.Second}
			if err := psrv.Serve(pln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("apspd pprof listener failed: %v", err)
			}
		}()
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("apspd listening on %s (cache=%d graphs=%d max-inflight=%d queue-depth=%d)",
		*addr, *cacheSize, *maxGraphs, *maxInflight, *queueDepth)
	srv := &http.Server{
		Handler:           serve.NewHandler(svc),
		ReadHeaderTimeout: 10 * time.Second,
	}
	if err := serveAndDrain(svc, srv, ln, *drainTimeout); err != nil {
		log.Fatal(err)
	}
	log.Printf("apspd drained cleanly")
}

// serveAndDrain runs srv on ln until SIGINT/SIGTERM, then drains gracefully:
// the admission gate closes first (readyz flips to 503 and queued solves are
// shed with "overloaded"/draining), then http.Server.Shutdown stops the
// listener and waits for in-flight requests under the drain deadline. A
// second signal during the drain kills the process the usual way — the
// NotifyContext registration is already released by then.
func serveAndDrain(svc *serve.Service, srv *http.Server, ln net.Listener, drainTimeout time.Duration) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	svc.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain exceeded its %s deadline: %w", drainTimeout, err)
	}
	return nil
}

// soak is the CI overload drill: an ephemeral daemon under cfg is hammered
// by mixed concurrent clients (exact and approximate strategies,
// cache-hitting and cache-missing seeds, occasional tight deadlines) for
// dur, then the process sends itself a real SIGTERM to exercise the
// production drain path. It fails on any status outside {2xx, 503}, on a
// drain exceeding its deadline, or on goroutines leaked past the drain.
func soak(cfg serve.Config, dur, drainTimeout time.Duration) error {
	baseline := runtime.NumGoroutine()
	svc := serve.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: serve.NewHandler(svc)}
	done := make(chan error, 1)
	go func() { done <- serveAndDrain(svc, srv, ln, drainTimeout) }()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 30 * time.Second}

	// One modest graph; the load mix comes from the spec axis — repeated
	// seeds hit the cache, fresh seeds force full pipeline runs, the
	// approximate strategy exercises the cheap rung, and tight deadlines
	// exercise cancellation under load.
	const n = 16
	var arcs []map[string]any
	for i := 0; i < n; i++ {
		for _, off := range []int{1, 4} {
			arcs = append(arcs, map[string]any{"u": i, "v": (i + off) % n, "w": 1 + (i+off)%7})
		}
	}
	body, err := json.Marshal(map[string]any{"n": n, "arcs": arcs})
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPut, base+"/v1/graphs", bytes.NewReader(body))
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	var put struct {
		ID string `json:"id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&put)
	resp.Body.Close()
	if err != nil {
		return err
	}

	var (
		wg       sync.WaitGroup
		seedGen  atomic.Uint64
		requests atomic.Int64
		failures atomic.Int64
		sigSent  atomic.Bool
		firstBad atomic.Value
	)
	stopLoad := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopLoad:
					return
				default:
				}
				spec := map[string]any{"strategy": "quantum", "preset": "scaled", "seed": uint64(1)}
				switch i % 4 {
				case 1:
					spec["strategy"] = "approx-quantum"
					spec["epsilon"] = 0.5
					spec["seed"] = seedGen.Add(1)
				case 2:
					spec["seed"] = seedGen.Add(1)
					spec["timeout_ms"] = 50
				case 3:
					spec["seed"] = seedGen.Add(1)
				}
				b, err := json.Marshal(spec)
				if err != nil {
					failures.Add(1)
					firstBad.CompareAndSwap(nil, err.Error())
					return
				}
				resp, err := client.Post(base+"/v1/graphs/"+put.ID+"/solve", "application/json", bytes.NewReader(b))
				if err != nil {
					if sigSent.Load() {
						return // the listener is closing under us — expected
					}
					failures.Add(1)
					firstBad.CompareAndSwap(nil, err.Error())
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				requests.Add(1)
				if resp.StatusCode/100 != 2 && resp.StatusCode != http.StatusServiceUnavailable {
					failures.Add(1)
					firstBad.CompareAndSwap(nil, fmt.Sprintf("status %d", resp.StatusCode))
				}
			}
		}()
	}

	time.Sleep(dur)
	// SIGTERM while clients are still firing: the genuine production drain,
	// with in-flight solves to finish and queued ones to shed.
	sigSent.Store(true)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		close(stopLoad)
		return err
	}
	drainStart := time.Now()
	var drainErr error
	select {
	case drainErr = <-done:
	case <-time.After(drainTimeout + 10*time.Second):
		close(stopLoad)
		return fmt.Errorf("drain did not complete within %s past its deadline", drainTimeout)
	}
	drainTook := time.Since(drainStart)
	close(stopLoad)
	wg.Wait()
	if drainErr != nil {
		return drainErr
	}
	if drainTook > drainTimeout {
		return fmt.Errorf("drain took %s, over the %s deadline", drainTook, drainTimeout)
	}
	if bad := failures.Load(); bad > 0 {
		return fmt.Errorf("%d request(s) failed outside the 2xx/503 contract (first: %v)", bad, firstBad.Load())
	}
	if requests.Load() == 0 {
		return errors.New("soak issued no requests")
	}
	// Goroutine recovery: everything the daemon and its solves spawned must
	// be gone once the drain returns (pool goroutines unwind asynchronously,
	// so poll briefly).
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("goroutines leaked after drain: %d, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("soak: %d requests, drain %s\n", requests.Load(), drainTook.Round(time.Millisecond))
	return nil
}

// pprofMux returns the net/http/pprof surface on a dedicated mux, so the
// profiling handlers never leak onto the API listener (importing the
// package registers them on http.DefaultServeMux, which apspd never
// serves).
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", netpprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
	return mux
}

// selftest boots a real daemon on an ephemeral port and exercises every
// endpoint, comparing against the library entry points.
func selftest(cfg serve.Config) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: serve.NewHandler(serve.New(cfg))}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	// Probe the -pprof-addr diagnostic surface the same way the daemon
	// serves it: dedicated mux on its own ephemeral listener, and the
	// index endpoint must answer 200.
	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	psrv := &http.Server{Handler: pprofMux()}
	go func() { _ = psrv.Serve(pln) }()
	defer psrv.Close()
	presp, err := (&http.Client{Timeout: 10 * time.Second}).Get("http://" + pln.Addr().String() + "/debug/pprof/cmdline")
	if err != nil {
		return fmt.Errorf("pprof probe: %w", err)
	}
	_, _ = io.Copy(io.Discard, presp.Body)
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		return fmt.Errorf("pprof probe: status %d, want 200", presp.StatusCode)
	}

	// Reference: solve the same graph in-process.
	const n = 10
	g := qclique.NewDigraph(n)
	var arcs []map[string]any
	addArc := func(u, v int, w int64) error {
		if err := g.SetArc(u, v, w); err != nil {
			return err
		}
		arcs = append(arcs, map[string]any{"u": u, "v": v, "w": w})
		return nil
	}
	for i := 0; i < n; i++ {
		if err := addArc(i, (i+1)%n, 3); err != nil {
			return err
		}
	}
	if err := addArc(0, 5, -2); err != nil {
		return err
	}
	if err := addArc(5, 8, -1); err != nil {
		return err
	}
	const seed = 42
	want, err := qclique.SolveAPSP(g,
		qclique.WithStrategy(qclique.Quantum),
		qclique.WithParams(qclique.ScaledConstants),
		qclique.WithSeed(seed))
	if err != nil {
		return fmt.Errorf("reference solve: %w", err)
	}

	client := &http.Client{Timeout: 60 * time.Second}
	call := func(method, path string, body any, out any) error {
		var buf bytes.Buffer
		if body != nil {
			if err := json.NewEncoder(&buf).Encode(body); err != nil {
				return err
			}
		}
		req, err := http.NewRequest(method, base+path, &buf)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var e struct {
				Error struct {
					Code    string `json:"code"`
					Message string `json:"message"`
				} `json:"error"`
			}
			_ = json.NewDecoder(resp.Body).Decode(&e)
			return fmt.Errorf("%s %s: status %d: %s: %s", method, path, resp.StatusCode, e.Error.Code, e.Error.Message)
		}
		if out != nil {
			return json.NewDecoder(resp.Body).Decode(out)
		}
		return nil
	}

	// 1. PUT the graph on the /v1 surface, then re-upload through the
	// legacy unprefixed alias: same content hash, but the alias must mark
	// itself deprecated and point at its successor.
	var put struct {
		ID string `json:"id"`
	}
	if err := call(http.MethodPut, "/v1/graphs", map[string]any{"n": n, "arcs": arcs}, &put); err != nil {
		return err
	}
	{
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(map[string]any{"n": n, "arcs": arcs}); err != nil {
			return err
		}
		req, err := http.NewRequest(http.MethodPut, base+"/graphs", &buf)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		var legacy struct {
			ID string `json:"id"`
		}
		err = json.NewDecoder(resp.Body).Decode(&legacy)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if legacy.ID != put.ID {
			return fmt.Errorf("legacy upload hashed to %s, /v1 to %s", legacy.ID, put.ID)
		}
		if resp.Header.Get("Deprecation") != "true" {
			return fmt.Errorf("legacy alias answered without a Deprecation header")
		}
		if link := resp.Header.Get("Link"); !bytes.Contains([]byte(link), []byte("/v1/graphs")) {
			return fmt.Errorf("legacy alias Link header %q does not name the /v1 successor", link)
		}
	}

	// 2. Solve fresh on the sharded transport, then re-solve without naming
	// a backend: the cache is keyed by what was computed, not where, so the
	// second call must hit — with identical accounting and zero new rounds.
	solveBody := map[string]any{"strategy": "quantum", "preset": "scaled", "seed": seed, "transport": "sharded"}
	var fresh, cached struct {
		Rounds    int64  `json:"rounds"`
		Cached    bool   `json:"cached"`
		Transport string `json:"transport"`
	}
	if err := call(http.MethodPost, "/v1/graphs/"+put.ID+"/solve", solveBody, &fresh); err != nil {
		return err
	}
	if fresh.Cached {
		return fmt.Errorf("first solve reported cached")
	}
	if fresh.Transport != "sharded" {
		return fmt.Errorf("solve ran on transport %q, want sharded", fresh.Transport)
	}
	if fresh.Rounds != want.Rounds {
		return fmt.Errorf("daemon rounds %d != library rounds %d", fresh.Rounds, want.Rounds)
	}
	retrySolve := map[string]any{"strategy": "quantum", "preset": "scaled", "seed": seed}
	if err := call(http.MethodPost, "/v1/graphs/"+put.ID+"/solve", retrySolve, &cached); err != nil {
		return err
	}
	if !cached.Cached || cached.Rounds != want.Rounds {
		return fmt.Errorf("re-solve = %+v, want cached with rounds %d", cached, want.Rounds)
	}

	// 3. Full distance matrix matches the library solve.
	var dist struct {
		Dist [][]*int64 `json:"dist"`
	}
	q := fmt.Sprintf("/v1/graphs/%s/dist?strategy=quantum&preset=scaled&seed=%d", put.ID, seed)
	if err := call(http.MethodGet, q, nil, &dist); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			w := want.Dist[i][j]
			got := dist.Dist[i][j]
			if w >= qclique.Inf {
				if got != nil {
					return fmt.Errorf("d(%d,%d) = %d, want null", i, j, *got)
				}
			} else if got == nil || *got != w {
				return fmt.Errorf("d(%d,%d) = %v, want %d", i, j, got, w)
			}
		}
	}

	// 4. Batch paths: every reported path must realize the library
	// distance.
	var queries []map[string]int
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			queries = append(queries, map[string]int{"src": src, "dst": dst})
		}
	}
	batchBody := map[string]any{"strategy": "quantum", "preset": "scaled", "seed": seed, "queries": queries}
	var batch struct {
		Cached  bool `json:"cached"`
		Results []struct {
			Src   int    `json:"src"`
			Dst   int    `json:"dst"`
			Dist  *int64 `json:"dist"`
			Path  []int  `json:"path"`
			Error string `json:"error"`
		} `json:"results"`
	}
	if err := call(http.MethodPost, "/v1/graphs/"+put.ID+"/paths:batch", batchBody, &batch); err != nil {
		return err
	}
	if !batch.Cached {
		return fmt.Errorf("batch did not reuse the cached solve")
	}
	for _, r := range batch.Results {
		w := want.Dist[r.Src][r.Dst]
		if w >= qclique.Inf {
			if r.Error == "" {
				return fmt.Errorf("(%d,%d): expected a no-path error", r.Src, r.Dst)
			}
			continue
		}
		if r.Dist == nil || *r.Dist != w {
			return fmt.Errorf("(%d,%d): batch dist %v, want %d", r.Src, r.Dst, r.Dist, w)
		}
		var total int64
		for i := 0; i+1 < len(r.Path); i++ {
			aw, ok := g.Weight(r.Path[i], r.Path[i+1])
			if !ok {
				return fmt.Errorf("(%d,%d): broken path %v", r.Src, r.Dst, r.Path)
			}
			total += aw
		}
		if total != w {
			return fmt.Errorf("(%d,%d): path weight %d, want %d", r.Src, r.Dst, total, w)
		}
	}

	// 5. Approximate solve: upload a nonnegative variant, solve with the
	// (1+ε) chain, and check the contract — stretch fields present,
	// observed within the guarantee, distances bounding the exact answers
	// from above.
	gApprox := qclique.NewDigraph(n)
	var approxArcs []map[string]any
	for i := 0; i < n; i++ {
		w := int64(2 + i%5)
		if err := gApprox.SetArc(i, (i+1)%n, w); err != nil {
			return err
		}
		approxArcs = append(approxArcs, map[string]any{"u": i, "v": (i + 1) % n, "w": w})
	}
	wantApprox, err := qclique.SolveAPSP(gApprox,
		qclique.WithParams(qclique.ScaledConstants),
		qclique.WithSeed(seed))
	if err != nil {
		return fmt.Errorf("approx reference solve: %w", err)
	}
	var putApprox struct {
		ID string `json:"id"`
	}
	if err := call(http.MethodPut, "/v1/graphs", map[string]any{"n": n, "arcs": approxArcs}, &putApprox); err != nil {
		return err
	}
	const eps = 0.5
	var approxSolve struct {
		Epsilon           float64 `json:"epsilon"`
		GuaranteedStretch float64 `json:"guaranteed_stretch"`
		ObservedStretch   float64 `json:"observed_stretch"`
	}
	approxBody := map[string]any{"strategy": "approx-quantum", "preset": "scaled", "seed": seed, "epsilon": eps}
	if err := call(http.MethodPost, "/v1/graphs/"+putApprox.ID+"/solve", approxBody, &approxSolve); err != nil {
		return err
	}
	if approxSolve.Epsilon != eps || approxSolve.GuaranteedStretch != 1+eps {
		return fmt.Errorf("approx solve echoed epsilon=%v guarantee=%v, want %v and %v",
			approxSolve.Epsilon, approxSolve.GuaranteedStretch, eps, 1+eps)
	}
	if approxSolve.ObservedStretch < 1 || approxSolve.ObservedStretch > approxSolve.GuaranteedStretch {
		return fmt.Errorf("observed stretch %v outside [1, %v]", approxSolve.ObservedStretch, approxSolve.GuaranteedStretch)
	}
	var approxDist struct {
		Dist [][]*int64 `json:"dist"`
	}
	q = fmt.Sprintf("/v1/graphs/%s/dist?strategy=approx-quantum&preset=scaled&seed=%d&epsilon=%v", putApprox.ID, seed, eps)
	if err := call(http.MethodGet, q, nil, &approxDist); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			w := wantApprox.Dist[i][j]
			got := approxDist.Dist[i][j]
			switch {
			case w >= qclique.Inf:
				if got != nil {
					return fmt.Errorf("approx d(%d,%d) = %d, want null", i, j, *got)
				}
			case got == nil:
				return fmt.Errorf("approx d(%d,%d) = null, want ≤ %v", i, j, float64(w)*(1+eps))
			case *got < w || float64(*got) > float64(w)*(1+eps):
				return fmt.Errorf("approx d(%d,%d) = %d outside [%d, %v]", i, j, *got, w, float64(w)*(1+eps))
			}
		}
	}

	// 6. Undefined inputs: a negative 2-cycle must solve to 422 at every
	// solve-bearing endpoint, not to fabricated numbers.
	cyc := map[string]any{"n": 2, "arcs": []map[string]any{
		{"u": 0, "v": 1, "w": -1}, {"u": 1, "v": 0, "w": 0},
	}}
	var putCyc struct {
		ID string `json:"id"`
	}
	if err := call(http.MethodPut, "/v1/graphs", cyc, &putCyc); err != nil {
		return err
	}
	for _, probe := range []struct{ method, path string }{
		{http.MethodPost, "/v1/graphs/" + putCyc.ID + "/solve"},
		{http.MethodPost, "/v1/graphs/" + putCyc.ID + "/paths:batch"},
	} {
		var buf bytes.Buffer
		body := map[string]any{"strategy": "quantum", "preset": "scaled", "seed": seed}
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return err
		}
		req, err := http.NewRequest(probe.method, base+probe.path, &buf)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnprocessableEntity {
			return fmt.Errorf("%s on a negative cycle: status %d, want 422", probe.path, resp.StatusCode)
		}
	}

	// 7. Deadline probe: a solve of a fresh (uncached) spec under a 1ms
	// timeout must answer 503 — the pipeline checkpoints between stages
	// and inside its loops — with the partial stage telemetry in the body;
	// the same spec without a deadline must then succeed through the
	// cache-miss path (the cancelled run cached nothing) and report a
	// per-stage breakdown whose rounds sum to the total.
	gDeadline := qclique.NewDigraph(24)
	var deadlineArcs []map[string]any
	for i := 0; i < 24; i++ {
		for _, off := range []int{1, 3, 7} {
			w := int64(1 + (i+off)%9)
			if err := gDeadline.SetArc(i, (i+off)%24, w); err != nil {
				return err
			}
			deadlineArcs = append(deadlineArcs, map[string]any{"u": i, "v": (i + off) % 24, "w": w})
		}
	}
	var putDeadline struct {
		ID string `json:"id"`
	}
	if err := call(http.MethodPut, "/v1/graphs", map[string]any{"n": 24, "arcs": deadlineArcs}, &putDeadline); err != nil {
		return err
	}
	deadlineBody := map[string]any{"strategy": "quantum", "preset": "scaled", "seed": seed, "timeout_ms": 1}
	{
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(deadlineBody); err != nil {
			return err
		}
		req, err := http.NewRequest(http.MethodPost, base+"/v1/graphs/"+putDeadline.ID+"/solve", &buf)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		var timedOut struct {
			Error struct {
				Code         string `json:"code"`
				Message      string `json:"message"`
				Retryable    bool   `json:"retryable"`
				RetryAfterMS int64  `json:"retry_after_ms"`
			} `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&timedOut)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			return fmt.Errorf("1ms-deadline solve: status %d, want 503", resp.StatusCode)
		}
		if timedOut.Error.Code != "cancelled" || timedOut.Error.Message == "" {
			return fmt.Errorf("1ms-deadline solve: 503 envelope %+v, want code \"cancelled\" with a message", timedOut.Error)
		}
		// Every 503 is a transient condition: it must advertise the retry,
		// in the header and in the envelope.
		if resp.Header.Get("Retry-After") == "" {
			return fmt.Errorf("1ms-deadline solve: 503 without a Retry-After header")
		}
		if !timedOut.Error.Retryable || timedOut.Error.RetryAfterMS <= 0 {
			return fmt.Errorf("1ms-deadline solve: 503 without retryable marker/wait: %+v", timedOut.Error)
		}
	}
	var afterDeadline struct {
		Rounds int64 `json:"rounds"`
		Cached bool  `json:"cached"`
		Stages []struct {
			Name   string `json:"name"`
			Rounds int64  `json:"rounds"`
		} `json:"stages"`
	}
	retryBody := map[string]any{"strategy": "quantum", "preset": "scaled", "seed": seed}
	if err := call(http.MethodPost, "/graphs/"+putDeadline.ID+"/solve", retryBody, &afterDeadline); err != nil {
		return err
	}
	if afterDeadline.Cached {
		return fmt.Errorf("solve after the timed-out attempt reported cached; the cancelled run must not populate the cache")
	}
	var stageSum int64
	for _, sg := range afterDeadline.Stages {
		stageSum += sg.Rounds
	}
	if len(afterDeadline.Stages) == 0 || stageSum != afterDeadline.Rounds {
		return fmt.Errorf("stage breakdown sums to %d over %d stages, want rounds %d", stageSum, len(afterDeadline.Stages), afterDeadline.Rounds)
	}

	// 8. Metrics: the main flow ran the exact simulator once, the deadline
	// probe once more (its timed-out attempt counts as cancelled, not
	// solved), the per-stage rollup must agree with the charged rounds, and
	// the per-transport rollup must show the sharded backend moving the main
	// flow's traffic.
	var stats struct {
		Strategies map[string]struct {
			Solves        int64 `json:"solves"`
			CacheHits     int64 `json:"cache_hits"`
			Cancelled     int64 `json:"cancelled"`
			RoundsCharged int64 `json:"rounds_charged"`
			Stages        map[string]struct {
				Rounds int64 `json:"rounds"`
			} `json:"stages"`
		} `json:"strategies"`
		Transports map[string]struct {
			Solves     int64 `json:"solves"`
			Deliveries int64 `json:"deliveries"`
			Messages   int64 `json:"messages"`
		} `json:"transports"`
	}
	if err := call(http.MethodGet, "/v1/metrics", nil, &stats); err != nil {
		return err
	}
	sharded := stats.Transports["sharded"]
	if sharded.Solves != 1 || sharded.Deliveries == 0 || sharded.Messages == 0 {
		return fmt.Errorf("sharded transport rollup %+v, want 1 solve with delivered traffic", sharded)
	}
	if local := stats.Transports["local"]; local.Solves == 0 {
		return fmt.Errorf("local transport rollup %+v, want the remaining executions", local)
	}
	qs := stats.Strategies["quantum"]
	if qs.Solves != 2 {
		return fmt.Errorf("metrics report %d solves, want 2 (main flow + deadline retry)", qs.Solves)
	}
	if qs.Cancelled != 1 {
		return fmt.Errorf("metrics report %d cancelled solves, want 1 (the 1ms-deadline attempt)", qs.Cancelled)
	}
	wantCharged := want.Rounds + afterDeadline.Rounds
	if qs.RoundsCharged != wantCharged {
		return fmt.Errorf("metrics charged %d rounds, want %d", qs.RoundsCharged, wantCharged)
	}
	var stageRollup int64
	for _, sg := range qs.Stages {
		stageRollup += sg.Rounds
	}
	if stageRollup != wantCharged {
		return fmt.Errorf("per-stage metrics roll up to %d rounds, want %d", stageRollup, wantCharged)
	}

	// 9. Chaos probe: a transient outage (every phase corrupted until the
	// 5-fault budget is spent) exhausts the quantum stage-retry budget;
	// with degradation on, the ladder answers with the approx-quantum rung
	// and the response says so, while the same outage without degradation
	// is a retryable 503. The fault and retry counters must then show up
	// in /metrics.
	faultsBody := map[string]any{"seed": 7, "corrupt_rate": 1, "max_faults": 5}
	var degradedRes struct {
		Strategy          string  `json:"strategy"`
		Degraded          bool    `json:"degraded"`
		DegradedFrom      string  `json:"degraded_from"`
		DegradeReason     string  `json:"degrade_reason"`
		GuaranteedStretch float64 `json:"guaranteed_stretch"`
	}
	degradeBody := map[string]any{"strategy": "quantum", "preset": "scaled", "seed": seed, "degrade": true, "faults": faultsBody}
	if err := call(http.MethodPost, "/v1/graphs/"+putDeadline.ID+"/solve", degradeBody, &degradedRes); err != nil {
		return err
	}
	if !degradedRes.Degraded || degradedRes.DegradedFrom != "quantum" || degradedRes.DegradeReason != "retries-exhausted" {
		return fmt.Errorf("degraded solve not marked: %+v", degradedRes)
	}
	if degradedRes.Strategy != "approx-quantum" || degradedRes.GuaranteedStretch != 1.5 {
		return fmt.Errorf("degraded solve rung %q (stretch %g), want approx-quantum at 1.5", degradedRes.Strategy, degradedRes.GuaranteedStretch)
	}
	{
		exhaustBody := map[string]any{"strategy": "quantum", "preset": "scaled", "seed": seed, "faults": faultsBody}
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(exhaustBody); err != nil {
			return err
		}
		req, err := http.NewRequest(http.MethodPost, base+"/v1/graphs/"+putDeadline.ID+"/solve", &buf)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		var exhausted struct {
			Error struct {
				Code      string         `json:"code"`
				Retryable bool           `json:"retryable"`
				Faults    map[string]any `json:"faults"`
			} `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&exhausted)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			return fmt.Errorf("fault-exhausted solve: status %d, want 503", resp.StatusCode)
		}
		if exhausted.Error.Code != "fault_exhausted" {
			return fmt.Errorf("fault-exhausted 503 coded %q, want fault_exhausted", exhausted.Error.Code)
		}
		if resp.Header.Get("Retry-After") == "" || !exhausted.Error.Retryable {
			return fmt.Errorf("fault-exhausted 503 missing Retry-After/retryable: %+v", exhausted.Error)
		}
		if len(exhausted.Error.Faults) == 0 {
			return fmt.Errorf("fault-exhausted 503 without fault telemetry")
		}
	}
	var chaosStats struct {
		Strategies map[string]struct {
			FaultFailures int64 `json:"fault_failures"`
			Retries       int64 `json:"retries"`
			Degraded      int64 `json:"degraded"`
			Faults        struct {
				Corrupted int64 `json:"corrupted"`
			} `json:"faults"`
		} `json:"strategies"`
	}
	if err := call(http.MethodGet, "/v1/metrics", nil, &chaosStats); err != nil {
		return err
	}
	cq := chaosStats.Strategies["quantum"]
	if cq.FaultFailures != 2 || cq.Degraded != 1 {
		return fmt.Errorf("chaos metrics: fault_failures=%d degraded=%d, want 2 and 1", cq.FaultFailures, cq.Degraded)
	}
	if cq.Retries == 0 || cq.Faults.Corrupted != 10 {
		return fmt.Errorf("chaos metrics: retries=%d corrupted=%d, want >0 and 10", cq.Retries, cq.Faults.Corrupted)
	}

	// 10. Overload probe: a deliberately tiny daemon (one execution slot,
	// one queue seat) must shed the third concurrent solve with 503
	// "overloaded" plus Retry-After, flip readyz to 503 while saturated,
	// and recover once the slot frees.
	if err := overloadProbe(); err != nil {
		return fmt.Errorf("overload probe: %w", err)
	}

	// 11. Planner probe: a solve asking for "auto" (what omitting the
	// strategy resolves to under the daemon's default -strategy auto) runs
	// through the planner and must echo the decision; an
	// explicit request for the planned strategy must hit the very cache entry
	// the planned solve populated (bit-identity); the catalog endpoint must
	// list every registered strategy; the decision and its prediction error
	// must land in /metrics; and a degraded planned solve must name the
	// planned strategy in degraded_from.
	var planned struct {
		Strategy        string `json:"strategy"`
		Rounds          int64  `json:"rounds"`
		Cached          bool   `json:"cached"`
		PlannedStrategy string `json:"planned_strategy"`
		PlannerReason   string `json:"planner_reason"`
		PredictedRounds int64  `json:"predicted_rounds"`
		PredictedWallNs int64  `json:"predicted_wall_ns"`
	}
	const plannerSeed = 4242
	autoBody := map[string]any{"strategy": "auto", "preset": "scaled", "seed": plannerSeed}
	if err := call(http.MethodPost, "/v1/graphs/"+putDeadline.ID+"/solve", autoBody, &planned); err != nil {
		return err
	}
	if planned.Cached {
		return fmt.Errorf("planned solve reported cached, want a fresh execution")
	}
	if planned.PlannedStrategy == "" || planned.PlannedStrategy != planned.Strategy {
		return fmt.Errorf("planned solve ran %q but echoed planned_strategy %q", planned.Strategy, planned.PlannedStrategy)
	}
	if planned.PlannerReason == "" || planned.PredictedRounds <= 0 || planned.PredictedWallNs <= 0 {
		return fmt.Errorf("planned solve missing decision telemetry: %+v", planned)
	}
	var explicit struct {
		Rounds int64 `json:"rounds"`
		Cached bool  `json:"cached"`
	}
	explicitBody := map[string]any{"strategy": planned.PlannedStrategy, "preset": "scaled", "seed": plannerSeed}
	if err := call(http.MethodPost, "/v1/graphs/"+putDeadline.ID+"/solve", explicitBody, &explicit); err != nil {
		return err
	}
	if !explicit.Cached || explicit.Rounds != planned.Rounds {
		return fmt.Errorf("explicit %s re-solve = %+v, want cached with rounds %d (planned solves share cache identity)",
			planned.PlannedStrategy, explicit, planned.Rounds)
	}
	var catalog struct {
		Strategies []struct {
			Name      string `json:"name"`
			Guarantee string `json:"guarantee"`
		} `json:"strategies"`
	}
	if err := call(http.MethodGet, "/v1/strategies", nil, &catalog); err != nil {
		return err
	}
	catalogNames := make(map[string]bool, len(catalog.Strategies))
	for _, ce := range catalog.Strategies {
		if ce.Guarantee == "" {
			return fmt.Errorf("catalog entry %q carries no guarantee", ce.Name)
		}
		catalogNames[ce.Name] = true
	}
	for _, name := range []string{"quantum", "classical-search", "dolev", "gossip", "approx-quantum", "approx-skeleton"} {
		if !catalogNames[name] {
			return fmt.Errorf("strategy catalog %v is missing %q", catalogNames, name)
		}
	}
	var planStats struct {
		Planner *struct {
			Decisions       int64            `json:"decisions"`
			Chosen          map[string]int64 `json:"chosen"`
			ObservedSolves  int64            `json:"observed_solves"`
			PredictedRounds int64            `json:"predicted_rounds"`
			ObservedRounds  int64            `json:"observed_rounds"`
			RoundsErrorAbs  int64            `json:"rounds_error_abs"`
		} `json:"planner"`
	}
	if err := call(http.MethodGet, "/v1/metrics", nil, &planStats); err != nil {
		return err
	}
	pm := planStats.Planner
	if pm == nil || pm.Decisions != 1 || pm.ObservedSolves != 1 {
		return fmt.Errorf("planner metrics %+v, want exactly 1 decision with 1 observed execution", pm)
	}
	if pm.Chosen[planned.PlannedStrategy] != 1 || pm.ObservedRounds != planned.Rounds || pm.PredictedRounds != planned.PredictedRounds {
		return fmt.Errorf("planner accounting %+v disagrees with the planned solve (strategy %s, rounds %d, predicted %d)",
			pm, planned.PlannedStrategy, planned.Rounds, planned.PredictedRounds)
	}
	var degradedAuto struct {
		Strategy        string `json:"strategy"`
		Degraded        bool   `json:"degraded"`
		DegradedFrom    string `json:"degraded_from"`
		PlannedStrategy string `json:"planned_strategy"`
	}
	degradedAutoBody := map[string]any{"strategy": "auto", "preset": "scaled", "seed": plannerSeed, "degrade": true, "faults": faultsBody}
	if err := call(http.MethodPost, "/v1/graphs/"+putDeadline.ID+"/solve", degradedAutoBody, &degradedAuto); err != nil {
		return err
	}
	if !degradedAuto.Degraded || degradedAuto.DegradedFrom == "" || degradedAuto.DegradedFrom != degradedAuto.PlannedStrategy {
		return fmt.Errorf("degraded planned solve = %+v, want degraded with degraded_from naming the planned strategy", degradedAuto)
	}
	return nil
}

// overloadProbe saturates a one-slot daemon over the wire and checks the
// shed / readiness contract end to end.
func overloadProbe() error {
	svc := serve.New(serve.Config{CacheSize: 4, MaxInflight: 1, QueueDepth: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: serve.NewHandler(svc)}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 60 * time.Second}

	// A graph big enough that an uncached exact solve occupies the single
	// execution slot for a while; each request's own timeout_ms bounds how
	// long, so the probe always terminates.
	const n = 32
	var arcs []map[string]any
	for i := 0; i < n; i++ {
		for _, off := range []int{1, 3, 5} {
			arcs = append(arcs, map[string]any{"u": i, "v": (i + off) % n, "w": 1 + (i*off)%9})
		}
	}
	body, err := json.Marshal(map[string]any{"n": n, "arcs": arcs})
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPut, base+"/v1/graphs", bytes.NewReader(body))
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	var put struct {
		ID string `json:"id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&put)
	resp.Body.Close()
	if err != nil {
		return err
	}

	// solveReq fires one solve (fresh seed = guaranteed cache miss) and
	// reports the status, envelope code, and Retry-After header.
	solveReq := func(seed uint64, timeoutMS int64) (status int, code, retryAfter string, err error) {
		spec := map[string]any{"strategy": "quantum", "preset": "scaled", "seed": seed}
		if timeoutMS > 0 {
			spec["timeout_ms"] = timeoutMS
		}
		b, err := json.Marshal(spec)
		if err != nil {
			return 0, "", "", err
		}
		resp, err := client.Post(base+"/v1/graphs/"+put.ID+"/solve", "application/json", bytes.NewReader(b))
		if err != nil {
			return 0, "", "", err
		}
		defer resp.Body.Close()
		var e struct {
			Error struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return resp.StatusCode, e.Error.Code, resp.Header.Get("Retry-After"), nil
	}

	gauges := func() (inflight, queuedNow int, shed, queued int64, err error) {
		resp, err := client.Get(base + "/v1/metrics")
		if err != nil {
			return 0, 0, 0, 0, err
		}
		defer resp.Body.Close()
		var m struct {
			Admission struct {
				Inflight  int   `json:"inflight"`
				QueuedNow int   `json:"queued_now"`
				Shed      int64 `json:"shed"`
				Queued    int64 `json:"queued"`
			} `json:"admission"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			return 0, 0, 0, 0, err
		}
		a := m.Admission
		return a.Inflight, a.QueuedNow, a.Shed, a.Queued, nil
	}
	waitGauge := func(what string, ok func(inflight, queuedNow int) bool) error {
		deadline := time.Now().Add(15 * time.Second)
		for {
			inflight, queuedNow, _, _, err := gauges()
			if err != nil {
				return err
			}
			if ok(inflight, queuedNow) {
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("gave up waiting for %s (inflight=%d queued_now=%d)", what, inflight, queuedNow)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Occupy the slot, then the queue seat, confirming each over /metrics
	// before the next step so the sequence is race-free.
	var wg sync.WaitGroup
	launch := func(seed uint64) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, _, _ = solveReq(seed, 8000)
		}()
	}
	launch(9001)
	if err := waitGauge("the occupier to hold the slot", func(inflight, _ int) bool { return inflight >= 1 }); err != nil {
		return err
	}
	launch(9002)
	if err := waitGauge("the queue seat to fill", func(_, queuedNow int) bool { return queuedNow >= 1 }); err != nil {
		return err
	}

	// Saturated: readyz must advertise it...
	resp, err = client.Get(base + "/v1/readyz")
	if err != nil {
		return err
	}
	var rd struct {
		Ready  bool   `json:"ready"`
		Reason string `json:"reason"`
	}
	err = json.NewDecoder(resp.Body).Decode(&rd)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusServiceUnavailable || rd.Ready || rd.Reason != "queue-saturated" {
		return fmt.Errorf("saturated readyz answered %d %+v, want 503 queue-saturated", resp.StatusCode, rd)
	}
	// ...and the next solve must shed.
	status, code, retryAfter, err := solveReq(9003, 0)
	if err != nil {
		return err
	}
	if status != http.StatusServiceUnavailable || code != "overloaded" || retryAfter == "" {
		return fmt.Errorf("shed solve answered status=%d code=%q retry-after=%q, want 503 overloaded with a Retry-After", status, code, retryAfter)
	}

	// Recovery: once the occupier and the queued solve finish (their own
	// deadlines bound this), readiness returns.
	wg.Wait()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := client.Get(base + "/v1/readyz")
		if err != nil {
			return err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("readyz did not recover after the overload cleared (last status %d)", resp.StatusCode)
		}
		time.Sleep(20 * time.Millisecond)
	}
	_, _, shed, queuedTotal, err := gauges()
	if err != nil {
		return err
	}
	if shed < 1 || queuedTotal < 1 {
		return fmt.Errorf("admission counters shed=%d queued=%d, want both >= 1", shed, queuedTotal)
	}
	return nil
}
