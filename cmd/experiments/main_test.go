package main

import "testing"

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-quick", "-exp", "e7,e8"}); err != nil {
		t.Error(err)
	}
}

func TestRunMarkdown(t *testing.T) {
	if err := run([]string{"-quick", "-exp", "e12", "-markdown"}); err != nil {
		t.Error(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-exp", "e99"}); err == nil {
		t.Error("unknown experiment must fail")
	}
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Error("bad flag must fail")
	}
}
