// Command experiments regenerates the paper-reproduction experiment suite
// (E1–E12, see DESIGN.md and EXPERIMENTS.md).
//
// Usage:
//
//	experiments [-exp e1,e4] [-quick] [-seed 42] [-markdown]
//
// With no -exp flag every experiment runs. The output is the paper-claim /
// measured report that EXPERIMENTS.md records.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"qclique"
	"qclique/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		expList  = fs.String("exp", "", "comma-separated experiment ids (default: all); available: "+strings.Join(experiments.IDs(), ","))
		quick    = fs.Bool("quick", false, "smaller sweeps")
		seed     = fs.Uint64("seed", 42, "randomness seed")
		markdown = fs.Bool("markdown", false, "emit EXPERIMENTS.md-style markdown sections")
		strategy = fs.String("strategy", "", "\"list\" enumerates every registered pipeline with its stretch guarantee (experiments otherwise pin their own strategies)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *strategy != "" {
		// The experiment suite pins strategies per experiment (each
		// reproduces a specific claim), so the flag exists to enumerate
		// the registry — the same source of truth cmd/apsp solves from.
		if *strategy != "list" {
			return fmt.Errorf("experiments pin their own strategies; -strategy only accepts \"list\" (got %q)", *strategy)
		}
		fmt.Print(qclique.FormatStrategyList())
		return nil
	}
	cfg := experiments.Config{Quick: *quick, Seed: *seed}

	ids := experiments.IDs()
	if *expList != "" {
		ids = strings.Split(*expList, ",")
	}
	pass := 0
	for _, id := range ids {
		res, err := experiments.Run(strings.TrimSpace(id), cfg)
		if err != nil {
			return err
		}
		if *markdown {
			fmt.Printf("## %s — %s\n\n**Paper claim.** %s\n\n**Measured.** %s\n\n```\n%s```\n\n", strings.ToUpper(res.ID), res.Title, res.PaperClaim, res.Summary, res.Output)
		} else {
			status := "PASS"
			if !res.OK {
				status = "CHECK"
			}
			fmt.Printf("=== %s [%s] %s\n", strings.ToUpper(res.ID), status, res.Title)
			fmt.Printf("paper:    %s\nmeasured: %s\n%s\n", res.PaperClaim, res.Summary, res.Output)
		}
		if res.OK {
			pass++
		}
	}
	fmt.Printf("%d/%d experiments consistent with the paper's claims\n", pass, len(ids))
	return nil
}
