// Command apsp solves All-Pairs Shortest Paths on a generated graph with a
// selectable pipeline and prints the distance matrix together with the
// simulated CONGEST-CLIQUE round report.
//
// The -strategy flag accepts any pipeline registered with the engine
// (enumerated, not hand-maintained); "-strategy list" prints every
// registered pipeline with its stretch guarantee. Approximate pipelines
// additionally take -epsilon. "-stages" prints the engine's per-stage
// round/wall-time breakdown of the solve.
//
// Usage:
//
//	apsp [-n 16] [-strategy quantum|list|…] [-epsilon 0.5] [-w 10]
//	     [-p 0.4] [-seed 1] [-workload random|grid|road] [-print] [-stages]
package main

import (
	"flag"
	"fmt"
	"os"

	"qclique"
	"qclique/internal/graph"
	"qclique/internal/xrand"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "apsp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("apsp", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 16, "vertex count")
		strategy = fs.String("strategy", "quantum", "registered pipeline name, or \"list\" to enumerate them")
		epsilon  = fs.Float64("epsilon", 0, "stretch budget for approximate strategies")
		w        = fs.Int64("w", 10, "max |weight| (random workload)")
		p        = fs.Float64("p", 0.4, "arc probability (random workload)")
		seed     = fs.Uint64("seed", 1, "randomness seed")
		workload = fs.String("workload", "random", "random | grid | road")
		print    = fs.Bool("print", false, "print the distance matrix")
		stages   = fs.Bool("stages", false, "print the per-stage round/wall-time breakdown")
		scaled   = fs.Bool("scaled", true, "use the scaled protocol constants (paper constants otherwise)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *strategy == "list" {
		fmt.Print(qclique.FormatStrategyList())
		return nil
	}
	strat, err := qclique.ParseStrategy(*strategy)
	if err != nil {
		return err
	}

	rng := xrand.New(*seed)
	var inner *graph.Digraph
	// Approximate pipelines accept nonnegative weights only (and the
	// skeleton additionally requires weight symmetry), so shape the random
	// workload to the selected pipeline's input class.
	info, _ := qclique.StrategyInfoFor(strat)
	switch *workload {
	case "random":
		switch {
		case info.Approximate && strat == qclique.ApproxSkeleton:
			inner, err = graph.RandomSymmetricDigraph(*n, graph.DigraphOpts{
				ArcProb: *p, MinWeight: 1, MaxWeight: *w,
			}, rng)
		case info.Approximate:
			inner, err = graph.RandomDigraph(*n, graph.DigraphOpts{
				ArcProb: *p, MinWeight: 0, MaxWeight: *w,
			}, rng)
		default:
			inner, err = graph.RandomDigraph(*n, graph.DigraphOpts{
				ArcProb: *p, MinWeight: -*w, MaxWeight: *w, NoNegativeCycles: true,
			}, rng)
		}
	case "grid":
		side := 1
		for side*side < *n {
			side++
		}
		inner, err = graph.GridDigraph(side, side, *w, rng)
	case "road":
		side := 1
		for side*side < *n {
			side++
		}
		inner, err = graph.RoadNetwork(side, side, side, rng)
	default:
		return fmt.Errorf("unknown workload %q", *workload)
	}
	if err != nil {
		return err
	}

	g := qclique.NewDigraph(inner.N())
	for u := 0; u < inner.N(); u++ {
		for v := 0; v < inner.N(); v++ {
			if wv, ok := inner.Weight(u, v); ok {
				if err := g.SetArc(u, v, wv); err != nil {
					return err
				}
			}
		}
	}

	preset := qclique.PaperConstants
	if *scaled {
		preset = qclique.ScaledConstants
	}
	solveOpts := []qclique.Option{
		qclique.WithStrategy(strat),
		qclique.WithSeed(*seed),
		qclique.WithParams(preset),
	}
	if *epsilon != 0 {
		solveOpts = append(solveOpts, qclique.WithEpsilon(*epsilon))
	}
	res, err := qclique.SolveAPSP(g, solveOpts...)
	if err != nil {
		return err
	}

	fmt.Printf("strategy=%v n=%d rounds=%d products=%d findedges-calls=%d\n",
		res.Strategy, g.N(), res.Rounds, res.Products, res.FindEdgesCalls)
	if res.GuaranteedStretch > 1 {
		fmt.Printf("stretch guaranteed=%g observed=%g\n", res.GuaranteedStretch, res.ObservedStretch)
	}
	if *stages {
		fmt.Println("stage breakdown (rounds sum to total):")
		for _, sg := range res.Stages {
			if sg.Skipped {
				fmt.Printf("  %-16s skipped\n", sg.Name)
				continue
			}
			fmt.Printf("  %-16s rounds=%-10d words=%-12d wall=%v\n", sg.Name, sg.Rounds, sg.Words, sg.Wall)
		}
	}
	if *print {
		for i := range res.Dist {
			for j, d := range res.Dist[i] {
				if j > 0 {
					fmt.Print(" ")
				}
				if d >= qclique.Inf {
					fmt.Print("inf")
				} else {
					fmt.Print(d)
				}
			}
			fmt.Println()
		}
	}
	return nil
}
