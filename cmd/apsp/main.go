// Command apsp solves All-Pairs Shortest Paths on a generated graph with a
// selectable pipeline and prints the distance matrix together with the
// simulated CONGEST-CLIQUE round report.
//
// Usage:
//
//	apsp [-n 16] [-strategy quantum|classical|dolev|gossip] [-w 10]
//	     [-p 0.4] [-seed 1] [-workload random|grid|road] [-print]
package main

import (
	"flag"
	"fmt"
	"os"

	"qclique"
	"qclique/internal/graph"
	"qclique/internal/xrand"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "apsp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("apsp", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 16, "vertex count")
		strategy = fs.String("strategy", "quantum", "quantum | classical | dolev | gossip")
		w        = fs.Int64("w", 10, "max |weight| (random workload)")
		p        = fs.Float64("p", 0.4, "arc probability (random workload)")
		seed     = fs.Uint64("seed", 1, "randomness seed")
		workload = fs.String("workload", "random", "random | grid | road")
		print    = fs.Bool("print", false, "print the distance matrix")
		scaled   = fs.Bool("scaled", true, "use the scaled protocol constants (paper constants otherwise)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var strat qclique.Strategy
	switch *strategy {
	case "quantum":
		strat = qclique.Quantum
	case "classical":
		strat = qclique.ClassicalSearch
	case "dolev":
		strat = qclique.DolevListing
	case "gossip":
		strat = qclique.Gossip
	default:
		return fmt.Errorf("unknown strategy %q", *strategy)
	}

	rng := xrand.New(*seed)
	var inner *graph.Digraph
	var err error
	switch *workload {
	case "random":
		inner, err = graph.RandomDigraph(*n, graph.DigraphOpts{
			ArcProb: *p, MinWeight: -*w, MaxWeight: *w, NoNegativeCycles: true,
		}, rng)
	case "grid":
		side := 1
		for side*side < *n {
			side++
		}
		inner, err = graph.GridDigraph(side, side, *w, rng)
	case "road":
		side := 1
		for side*side < *n {
			side++
		}
		inner, err = graph.RoadNetwork(side, side, side, rng)
	default:
		return fmt.Errorf("unknown workload %q", *workload)
	}
	if err != nil {
		return err
	}

	g := qclique.NewDigraph(inner.N())
	for u := 0; u < inner.N(); u++ {
		for v := 0; v < inner.N(); v++ {
			if wv, ok := inner.Weight(u, v); ok {
				if err := g.SetArc(u, v, wv); err != nil {
					return err
				}
			}
		}
	}

	preset := qclique.PaperConstants
	if *scaled {
		preset = qclique.ScaledConstants
	}
	res, err := qclique.SolveAPSP(g,
		qclique.WithStrategy(strat),
		qclique.WithSeed(*seed),
		qclique.WithParams(preset),
	)
	if err != nil {
		return err
	}

	fmt.Printf("strategy=%v n=%d rounds=%d products=%d findedges-calls=%d\n",
		res.Strategy, g.N(), res.Rounds, res.Products, res.FindEdgesCalls)
	if *print {
		for i := range res.Dist {
			for j, d := range res.Dist[i] {
				if j > 0 {
					fmt.Print(" ")
				}
				if d >= qclique.Inf {
					fmt.Print("inf")
				} else {
					fmt.Print(d)
				}
			}
			fmt.Println()
		}
	}
	return nil
}
