package main

import "testing"

func TestRunStrategies(t *testing.T) {
	for _, strat := range []string{"gossip", "dolev", "classical", "quantum"} {
		n := "12"
		if strat == "quantum" || strat == "classical" {
			n = "8" // keep the reduction pipelines quick
		}
		if err := run([]string{"-n", n, "-strategy", strat, "-seed", "3"}); err != nil {
			t.Errorf("%s: %v", strat, err)
		}
	}
}

func TestRunWorkloads(t *testing.T) {
	for _, wl := range []string{"random", "grid", "road"} {
		if err := run([]string{"-n", "9", "-strategy", "gossip", "-workload", wl, "-print"}); err != nil {
			t.Errorf("%s: %v", wl, err)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-strategy", "bogus"}); err == nil {
		t.Error("bad strategy must fail")
	}
	if err := run([]string{"-workload", "bogus"}); err == nil {
		t.Error("bad workload must fail")
	}
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Error("bad flag must fail")
	}
}
