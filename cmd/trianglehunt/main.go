// Command trianglehunt runs the FindEdges problem (Section 3 of the
// paper) standalone: report every edge of a weighted graph involved in a
// negative triangle, with the quantum pipeline or a classical baseline.
//
// Usage:
//
//	trianglehunt [-n 81] [-strategy quantum|classical|dolev] [-planted 4]
//	             [-seed 1] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"qclique"
	"qclique/internal/graph"
	"qclique/internal/xrand"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "trianglehunt:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("trianglehunt", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 81, "vertex count")
		strategy = fs.String("strategy", "quantum", "registered exact pipeline name (quantum | classical | dolev), or \"list\"")
		planted  = fs.Int("planted", 4, "planted negative triangles")
		seed     = fs.Uint64("seed", 1, "randomness seed")
		list     = fs.Bool("list", false, "list the found edges")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// FindEdges is a sub-problem of the search pipelines; enumerate the
	// registry rather than hand-maintaining the name set, rejecting the
	// strategies whose StrategyInfo carries no FindEdges role (the
	// approximate ones are APSP-only, and gossip never solves FindEdges —
	// it bypasses the whole triangle machinery with a broadcast).
	if *strategy == "list" {
		fmt.Println("registered strategies (findedges solvers drive this tool):")
		for _, si := range qclique.Strategies() {
			role := "findedges solver"
			if !si.FindEdges {
				role = "apsp-only"
				if si.Approximate {
					role = fmt.Sprintf("apsp-only (stretch %g+ε)", si.Guarantee(0))
				}
			}
			fmt.Printf("  %-18s %s\n", si.Name, role)
		}
		return nil
	}
	strat, err := qclique.ParseStrategy(*strategy)
	if err != nil {
		return err
	}
	if info, ok := qclique.StrategyInfoFor(strat); !ok || !info.FindEdges {
		return fmt.Errorf("strategy %q has no FindEdges role; pick a findedges solver from -strategy list", *strategy)
	}

	rng := xrand.New(*seed)
	inner, err := graph.RandomUndirected(*n, graph.UndirectedOpts{
		EdgeProb: 0.15, MinWeight: 1, MaxWeight: 40,
	}, rng)
	if err != nil {
		return err
	}
	if *planted > 0 {
		if _, err := graph.PlantNegativeTriangles(inner, *planted, 30, rng.Split("plant")); err != nil {
			return err
		}
	}

	g := qclique.NewGraph(*n)
	for u := 0; u < *n; u++ {
		for v := u + 1; v < *n; v++ {
			if w, ok := inner.Weight(u, v); ok {
				if err := g.SetEdge(u, v, w); err != nil {
					return err
				}
			}
		}
	}

	rep, err := qclique.FindNegativeTriangleEdges(g,
		qclique.WithStrategy(strat),
		qclique.WithSeed(*seed),
		qclique.WithParams(qclique.ScaledConstants),
	)
	if err != nil {
		return err
	}
	fmt.Printf("strategy=%v n=%d edges-in-negative-triangles=%d rounds=%d\n",
		strat, *n, len(rep.Edges), rep.Rounds)
	if *list {
		edges := append([]qclique.Edge(nil), rep.Edges...)
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].U != edges[j].U {
				return edges[i].U < edges[j].U
			}
			return edges[i].V < edges[j].V
		})
		for _, e := range edges {
			fmt.Printf("{%d,%d}\n", e.U, e.V)
		}
	}
	return nil
}
