package main

import "testing"

func TestRunStrategies(t *testing.T) {
	for _, strat := range []string{"dolev", "classical", "quantum"} {
		if err := run([]string{"-n", "32", "-strategy", strat, "-planted", "2", "-seed", "5", "-list"}); err != nil {
			t.Errorf("%s: %v", strat, err)
		}
	}
}

func TestRunNoPlanted(t *testing.T) {
	if err := run([]string{"-n", "24", "-strategy", "dolev", "-planted", "0"}); err != nil {
		t.Error(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-strategy", "bogus"}); err == nil {
		t.Error("bad strategy must fail")
	}
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Error("bad flag must fail")
	}
}
