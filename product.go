package qclique

import (
	"qclique/internal/congest"
	"qclique/internal/distprod"
	"qclique/internal/matrix"
)

// productFor dispatches a distance product to the solver selected by the
// options.
func productFor(a, b *matrix.Matrix, o Options) (*matrix.Matrix, int64, error) {
	if o.Strategy == Gossip {
		net, err := congest.NewNetwork(maxInt(a.N(), 1),
			congest.WithTransport(o.Transport), congest.WithTransportShards(o.Workers))
		if err != nil {
			return nil, 0, err
		}
		c, err := distprod.GossipProductPar(net, o.Workers)(a, b)
		if err != nil {
			return nil, 0, err
		}
		defer net.Close()
		return c, net.Rounds(), nil
	}
	solver := distprod.SolverQuantum
	switch o.Strategy {
	case ClassicalSearch:
		solver = distprod.SolverClassicalScan
	case DolevListing:
		solver = distprod.SolverDolev
	}
	c, stats, err := distprod.Product(a, b, distprod.Options{
		Solver:  solver,
		Params:  o.params(),
		Seed:    o.Seed,
		Workers: o.Workers,
	})
	if err != nil {
		return nil, 0, err
	}
	return c, stats.Rounds, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
