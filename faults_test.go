package qclique

// Public resilience surface: fault plans through SolveAPSP and Solver,
// degradation via WithDegradation, the typed errors, and the stats rollup.

import (
	"errors"
	"testing"
)

// buildSymDigraph returns a weight-symmetric nonnegative graph — the input
// class every degradation-ladder rung accepts.
func buildSymDigraph(t *testing.T, n int) *Digraph {
	t.Helper()
	d := NewDigraph(n)
	set := func(u, v int, w int64) {
		if err := d.SetArc(u, v, w); err != nil {
			t.Fatal(err)
		}
		if err := d.SetArc(v, u, w); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		set(i, (i+1)%n, int64(1+i%3))
	}
	for i := 0; i+3 < n; i += 3 {
		set(i, i+3, 7)
	}
	return d
}

func TestSolveAPSPWithRecoveredFaults(t *testing.T) {
	d := buildRandomDigraph(t, 10, 21)
	clean, err := SolveAPSP(d, WithSeed(3), WithParams(ScaledConstants))
	if err != nil {
		t.Fatal(err)
	}
	armed, err := SolveAPSP(d, WithSeed(3), WithParams(ScaledConstants),
		WithFaultPlan(FaultPlan{Seed: 5, DropRate: 0.5, DupRate: 0.25, DelayRate: 0.25, MaxDelayRounds: 2}))
	if err != nil {
		t.Fatal(err)
	}
	for i := range clean.Dist {
		for j := range clean.Dist[i] {
			if clean.Dist[i][j] != armed.Dist[i][j] {
				t.Fatalf("dist[%d][%d]: clean %d vs armed %d", i, j, clean.Dist[i][j], armed.Dist[i][j])
			}
		}
	}
	if armed.Rounds <= clean.Rounds {
		t.Errorf("retransmission surcharge missing: %d vs clean %d", armed.Rounds, clean.Rounds)
	}
	if armed.Faults.Injected() == 0 || armed.Faults.Dropped == 0 {
		t.Errorf("fault counters not reported: %+v", armed.Faults)
	}
	if clean.Faults.Injected() != 0 {
		t.Errorf("unarmed solve reports faults: %+v", clean.Faults)
	}
}

func TestSolveAPSPFaultExhaustion(t *testing.T) {
	d := buildSymDigraph(t, 8)
	_, err := SolveAPSP(d, WithFaultPlan(FaultPlan{Seed: 7, CorruptRate: 1}))
	var fx *FaultExhaustedError
	if !errors.As(err, &fx) {
		t.Fatalf("want FaultExhaustedError, got %v", err)
	}
	if fx.Faults.Corrupted == 0 {
		t.Errorf("exhaustion error without counters: %+v", fx.Faults)
	}
	if fx.Unwrap() == nil {
		t.Error("exhaustion error has no cause chain")
	}

	// The one-shot entry point has no ladder: WithDegradation is rejected,
	// not ignored.
	if _, err := SolveAPSP(d, WithDegradation()); err == nil {
		t.Error("SolveAPSP accepted WithDegradation")
	}
}

func TestSolverDegradationLadder(t *testing.T) {
	d := buildSymDigraph(t, 8)
	s := NewSolver(WithStrategy(Quantum))
	// The quantum stage-retry budget absorbs 5 unrecovered faults per run;
	// a 5-fault outage exhausts exactly the primary rung and the fallback
	// runs on the remaining (empty) budget.
	res, err := s.Solve(d, WithDegradation(),
		WithFaultPlan(FaultPlan{Seed: 7, CorruptRate: 1, MaxFaults: 5}))
	if err != nil {
		t.Fatalf("ladder did not absorb the outage: %v", err)
	}
	if !res.Degraded || res.DegradedFrom != Quantum || res.DegradeReason != "retries-exhausted" {
		t.Fatalf("degradation not reported: %+v", res)
	}
	if res.Strategy != ApproxQuantum || res.GuaranteedStretch != 1.5 {
		t.Errorf("fallback rung: strategy=%v stretch=%v", res.Strategy, res.GuaranteedStretch)
	}
	st := s.Stats().Strategies
	if st["quantum"].FaultFailures != 1 || st["quantum"].Degraded != 1 || st["quantum"].Faults.Corrupted != 5 {
		t.Errorf("quantum stats: %+v", st["quantum"])
	}

	// Without degradation the same outage is the typed error.
	s2 := NewSolver(WithStrategy(Quantum))
	_, err = s2.Solve(d, WithFaultPlan(FaultPlan{Seed: 7, CorruptRate: 1, MaxFaults: 5}))
	var fx *FaultExhaustedError
	if !errors.As(err, &fx) {
		t.Fatalf("want FaultExhaustedError, got %v", err)
	}
}

func TestSolverRetryTelemetry(t *testing.T) {
	d := buildSymDigraph(t, 8)
	s := NewSolver(WithStrategy(Quantum))
	clean, err := s.Solve(d)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(d, WithFaultPlan(FaultPlan{Seed: 7, CorruptRate: 1, MaxFaults: 1}))
	if err != nil {
		t.Fatalf("1-fault outage not absorbed by retry: %v", err)
	}
	if res.Degraded {
		t.Error("retry recovery reported as degraded")
	}
	for i := range clean.Dist {
		for j := range clean.Dist[i] {
			if clean.Dist[i][j] != res.Dist[i][j] {
				t.Fatalf("retried solve diverged at [%d][%d]", i, j)
			}
		}
	}
	var retries int
	for _, sg := range res.Stages {
		retries += sg.Retries
	}
	if retries != 1 {
		t.Errorf("stage retries = %d, want 1", retries)
	}
	if got := s.Stats().Strategies["quantum"]; got.Retries != 1 || got.Faults.Corrupted != 1 {
		t.Errorf("retry rollup: %+v", got)
	}
}
