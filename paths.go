package qclique

import (
	"errors"
	"fmt"

	"qclique/internal/core"
	"qclique/internal/matrix"
	"qclique/internal/serve"
)

// ErrNoPath is returned by ShortestPath for unreachable pairs.
var ErrNoPath = core.ErrNoPath

// ErrUndefinedDistance is returned by path and distance queries for pairs
// whose distance is −∞ (a negative-cycle region): no shortest path exists,
// so no path is fabricated.
var ErrUndefinedDistance = core.ErrUndefinedDistance

// ErrApproxPaths is returned by path reconstruction against approximate
// results: the successor walk relies on exact tightness, which
// ladder-snapped distances do not satisfy. Ask an exact strategy for
// paths; approximate solves answer distance queries only.
var ErrApproxPaths = serve.ErrApproxPaths

// ShortestPath reconstructs one shortest path from src to dst out of an
// APSP result (footnote 1 of the paper: lengths extend to paths via the
// standard successor technique). The result must come from SolveAPSP on
// the same graph. Reconstruction reads the solver's retained distance
// matrix, not the exported res.Dist rows — editing res.Dist does not
// change the paths returned here.
func ShortestPath(g *Digraph, res *APSPResult, src, dst int) ([]int, error) {
	if g == nil || res == nil {
		return nil, errors.New("qclique: nil graph or result")
	}
	if res.Epsilon > 0 {
		return nil, ErrApproxPaths
	}
	n := g.N()
	if len(res.Dist) != n {
		return nil, fmt.Errorf("qclique: result is for n=%d, graph has n=%d", len(res.Dist), n)
	}
	dist, err := res.matrix()
	if err != nil {
		return nil, err
	}
	return core.ReconstructPath(g.g, dist, src, dst)
}

// matrix returns the retained distance matrix when the result came from a
// solver, and otherwise rebuilds one from the exported rows (the slow path
// for hand-assembled results).
func (res *APSPResult) matrix() (*matrix.Matrix, error) {
	if res.dist != nil {
		return res.dist, nil
	}
	n := len(res.Dist)
	dist := matrix.New(n)
	for i := 0; i < n; i++ {
		if len(res.Dist[i]) != n {
			return nil, fmt.Errorf("qclique: ragged distance row %d", i)
		}
		for j := 0; j < n; j++ {
			dist.Set(i, j, res.Dist[i][j])
		}
	}
	return dist, nil
}

// SolveSSSP computes single-source shortest distances from src (the paper
// notes the APSP algorithm is also the best known exact SSSP in the
// CONGEST-CLIQUE model; this runs the same pipeline and projects one row).
func SolveSSSP(g *Digraph, src int, opts ...Option) ([]int64, *APSPResult, error) {
	if g == nil {
		return nil, nil, errors.New("qclique: nil graph")
	}
	res, err := SolveAPSP(g, opts...)
	if err != nil {
		return nil, nil, err
	}
	if src < 0 || src >= g.N() {
		return nil, nil, fmt.Errorf("qclique: source %d out of range", src)
	}
	row := make([]int64, g.N())
	copy(row, res.Dist[src])
	return row, res, nil
}
