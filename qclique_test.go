package qclique

import (
	"errors"
	"sort"
	"testing"

	"qclique/internal/graph"
	"qclique/internal/xrand"
)

// toPublicDigraph copies an internal graph through the public Digraph
// constructor.
func toPublicDigraph(tb testing.TB, inner *graph.Digraph) *Digraph {
	tb.Helper()
	n := inner.N()
	d := NewDigraph(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if w, ok := inner.Weight(u, v); ok {
				if err := d.SetArc(u, v, w); err != nil {
					tb.Fatal(err)
				}
			}
		}
	}
	return d
}

func buildRandomDigraph(t *testing.T, n int, seed uint64) *Digraph {
	t.Helper()
	rng := xrand.New(seed)
	inner, err := graph.RandomDigraph(n, graph.DigraphOpts{
		ArcProb: 0.4, MinWeight: -5, MaxWeight: 12, NoNegativeCycles: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return toPublicDigraph(t, inner)
}

func referenceDistances(t *testing.T, d *Digraph) [][]int64 {
	t.Helper()
	n := d.N()
	inner := graph.NewDigraph(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if w, ok := d.Weight(u, v); ok {
				if err := inner.SetArc(u, v, w); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	flat, err := graph.FloydWarshall(inner)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]int64, n)
	for i := range out {
		out[i] = flat[i*n : (i+1)*n]
	}
	return out
}

func TestSolveAPSPAllStrategies(t *testing.T) {
	d := buildRandomDigraph(t, 16, 11)
	want := referenceDistances(t, d)
	for _, s := range []Strategy{Quantum, ClassicalSearch, DolevListing, Gossip} {
		res, err := SolveAPSP(d, WithStrategy(s), WithSeed(3))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.Strategy != s {
			t.Errorf("strategy echo = %v", res.Strategy)
		}
		for i := range want {
			for j := range want[i] {
				if res.Dist[i][j] != want[i][j] {
					t.Fatalf("%v: d(%d,%d) = %d, want %d", s, i, j, res.Dist[i][j], want[i][j])
				}
			}
		}
		if res.Rounds <= 0 {
			t.Errorf("%v: rounds = %d", s, res.Rounds)
		}
	}
}

func TestSolveAPSPNegativeCycle(t *testing.T) {
	d := NewDigraph(4)
	for _, a := range [][3]int64{{0, 1, 1}, {1, 2, -4}, {2, 0, 1}} {
		if err := d.SetArc(int(a[0]), int(a[1]), a[2]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := SolveAPSP(d, WithStrategy(Gossip)); !errors.Is(err, ErrNegativeCycle) {
		t.Errorf("err = %v, want ErrNegativeCycle", err)
	}
}

func TestSolveAPSPNil(t *testing.T) {
	if _, err := SolveAPSP(nil); err == nil {
		t.Error("nil graph must fail")
	}
}

func TestSolveAPSPUnreachable(t *testing.T) {
	d := NewDigraph(3)
	if err := d.SetArc(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	res, err := SolveAPSP(d, WithStrategy(Gossip))
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist[0][2] != Inf || res.Dist[1][0] != Inf {
		t.Error("unreachable pairs must be Inf")
	}
	if res.Dist[0][1] != 5 || res.Dist[0][0] != 0 {
		t.Error("reachable distances wrong")
	}
}

func TestFindNegativeTriangleEdges(t *testing.T) {
	g := NewGraph(16)
	set := func(u, v int, w int64) {
		t.Helper()
		if err := g.SetEdge(u, v, w); err != nil {
			t.Fatal(err)
		}
	}
	set(0, 1, -7)
	set(0, 2, 2)
	set(1, 2, 2) // negative triangle {0,1,2}
	set(3, 4, 5)
	set(3, 5, 5)
	set(4, 5, 5) // positive triangle
	want := []Edge{{0, 1}, {0, 2}, {1, 2}}
	for _, s := range []Strategy{Quantum, ClassicalSearch, DolevListing} {
		rep, err := FindNegativeTriangleEdges(g, WithStrategy(s), WithSeed(5))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		got := append([]Edge(nil), rep.Edges...)
		sort.Slice(got, func(i, j int) bool {
			if got[i].U != got[j].U {
				return got[i].U < got[j].U
			}
			return got[i].V < got[j].V
		})
		if len(got) != len(want) {
			t.Fatalf("%v: edges = %v, want %v", s, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: edges = %v, want %v", s, got, want)
			}
		}
		if rep.Rounds <= 0 {
			t.Errorf("%v: rounds = %d", s, rep.Rounds)
		}
	}
	if _, err := FindNegativeTriangleEdges(nil); err == nil {
		t.Error("nil graph must fail")
	}
}

func TestDistanceProductPublic(t *testing.T) {
	a := [][]int64{
		{0, 2, Inf},
		{Inf, 0, -1},
		{4, Inf, 0},
	}
	b := a
	for _, s := range []Strategy{Gossip, DolevListing, ClassicalSearch, Quantum} {
		res, err := DistanceProduct(a, b, WithStrategy(s), WithSeed(2))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.C[0][2] != 1 {
			t.Errorf("%v: C[0][2] = %d, want 1", s, res.C[0][2])
		}
		if res.C[2][1] != 6 {
			t.Errorf("%v: C[2][1] = %d, want 6", s, res.C[2][1])
		}
	}
	if _, err := DistanceProduct([][]int64{{0, 1}}, a); err == nil {
		t.Error("ragged matrix must fail")
	}
}

func TestScaledConstantsPreset(t *testing.T) {
	d := buildRandomDigraph(t, 16, 21)
	want := referenceDistances(t, d)
	res, err := SolveAPSP(d, WithStrategy(Quantum), WithParams(ScaledConstants), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for j := range want[i] {
			if res.Dist[i][j] != want[i][j] {
				t.Fatalf("d(%d,%d) = %d, want %d", i, j, res.Dist[i][j], want[i][j])
			}
		}
	}
}

func TestStrategyString(t *testing.T) {
	names := map[Strategy]string{
		Quantum:         "quantum",
		ClassicalSearch: "classical-search",
		DolevListing:    "dolev-listing",
		Gossip:          "gossip",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	if Strategy(42).String() == "" {
		t.Error("unknown strategy should still render")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	d := buildRandomDigraph(t, 16, 33)
	a, err := SolveAPSP(d, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveAPSP(d, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds {
		t.Errorf("same seed, different rounds: %d vs %d", a.Rounds, b.Rounds)
	}
}
