// Package qclique is a simulation-backed implementation of "Quantum
// Distributed Algorithm for the All-Pairs Shortest Path Problem in the
// CONGEST-CLIQUE Model" (Izumi & Le Gall, PODC 2019, arXiv:1906.02456).
//
// It provides exact APSP over directed graphs with integer weights
// (positive and negative, no negative cycles) computed by the paper's
// Õ(n^{1/4}·log W)-round quantum pipeline inside a CONGEST-CLIQUE
// simulator, alongside the classical baselines the paper compares against
// (Dolev–Lenzen–Peled Õ(n^{1/3}) listing, classical Õ(√n) search, O(n)
// gossip). The quantum parts run on an exact Grover state-vector
// simulator; network costs are charged per the paper's round accounting
// and reported with every result.
//
// # Quick start
//
//	g := qclique.NewDigraph(16)
//	g.SetArc(0, 1, 3)
//	g.SetArc(1, 2, -1)
//	res, err := qclique.SolveAPSP(g, qclique.WithSeed(42))
//	// res.Dist[0][2] == 2, res.Rounds == CONGEST-CLIQUE cost
//
// The lower-level building blocks — FindNegativeTriangleEdges (the
// FindEdges problem of Section 3) and DistanceProduct (Proposition 2) —
// are exposed with the same options.
package qclique

import (
	"errors"
	"fmt"

	"qclique/internal/core"
	"qclique/internal/graph"
	"qclique/internal/matrix"
	"qclique/internal/serve"
	"qclique/internal/triangles"
)

// Inf is the distance reported for unreachable pairs.
const Inf = graph.Inf

// ErrNegativeCycle is returned by SolveAPSP when the input contains a
// negative-weight directed cycle, for which shortest distances are
// undefined.
var ErrNegativeCycle = graph.ErrNegativeCycle

// Strategy selects the APSP pipeline.
type Strategy int

// Available strategies. The zero value selects Quantum.
const (
	// Quantum is the paper's Õ(n^{1/4}·log W) pipeline (Theorem 1).
	Quantum Strategy = iota + 1
	// ClassicalSearch replaces the Grover search with the classical O(√n)
	// scan in Step 3 of ComputePairs.
	ClassicalSearch
	// DolevListing drives the reductions with the classical Õ(n^{1/3})
	// triangle-listing of Dolev, Lenzen and Peled.
	DolevListing
	// Gossip is the naive O(n)-round baseline: full adjacency gossip plus
	// local computation.
	Gossip
	// ApproxQuantum is the (1+ε)-approximate quantum chain: every distance
	// product is snapped onto a geometric value ladder, cutting the
	// binary-search depth (and hence rounds) of every product. Requires
	// nonnegative weights and WithEpsilon(ε > 0); distances satisfy
	// d ≤ d̂ ≤ (1+ε)·d with reachability preserved exactly.
	ApproxQuantum
	// ApproxSkeleton is the (2+ε) skeleton strategy (after Censor-Hillel
	// et al., arXiv:1903.05956): exact k-nearest balls, a sampled skeleton
	// solved on the (1+ε/2) ladder, estimates combined through skeleton
	// hubs. Requires a weight-symmetric nonnegative graph and
	// WithEpsilon(ε > 0).
	ApproxSkeleton
)

func (s Strategy) String() string {
	switch s {
	case Quantum:
		return "quantum"
	case ClassicalSearch:
		return "classical-search"
	case DolevListing:
		return "dolev-listing"
	case Gossip:
		return "gossip"
	case ApproxQuantum:
		return "approx-quantum"
	case ApproxSkeleton:
		return "approx-skeleton"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

func (s Strategy) toCore() core.Strategy {
	switch s {
	case ClassicalSearch:
		return core.StrategyClassicalSearch
	case DolevListing:
		return core.StrategyDolev
	case Gossip:
		return core.StrategyGossip
	case ApproxQuantum:
		return core.StrategyApproxQuantum
	case ApproxSkeleton:
		return core.StrategyApproxSkeleton
	default:
		return core.StrategyQuantum
	}
}

// ParamPreset selects the protocol-constant preset.
type ParamPreset int

// Parameter presets.
const (
	// PaperConstants uses the constants exactly as printed in the paper
	// (10·log n sampling, 90·log n promise, 800·√n·log n slot caps, …).
	PaperConstants ParamPreset = iota + 1
	// ScaledConstants uses ~3× smaller constants with the same asymptotic
	// shape, keeping message volumes simulable at larger n.
	ScaledConstants
)

// options collects the functional options shared by the public entry
// points.
type options struct {
	strategy  Strategy
	preset    ParamPreset
	seed      uint64
	epsilon   float64
	workers   int
	cacheSize int
}

// Option configures SolveAPSP, FindNegativeTriangleEdges and
// DistanceProduct.
type Option func(*options)

// WithStrategy selects the pipeline strategy.
func WithStrategy(s Strategy) Option {
	return func(o *options) { o.strategy = s }
}

// WithSeed fixes the protocol randomness; runs with equal seeds are
// reproducible.
func WithSeed(seed uint64) Option {
	return func(o *options) { o.seed = seed }
}

// WithParams selects the protocol-constant preset.
func WithParams(p ParamPreset) Option {
	return func(o *options) { o.preset = p }
}

// WithEpsilon sets the multiplicative stretch budget of the approximate
// strategies (ApproxQuantum guarantees 1+ε, ApproxSkeleton 2+ε). It must
// be > 0 with an approximate strategy and left unset with an exact one —
// epsilon is part of a result's identity (it changes both distances and
// rounds), so it is rejected rather than silently ignored.
func WithEpsilon(eps float64) Option {
	return func(o *options) { o.epsilon = eps }
}

// WithWorkers bounds the host-side parallelism used for node-local phases
// of the simulation (oracle evaluation, Grover state-vector updates, local
// min-plus work). The default (0) uses GOMAXPROCS. Results — distances and
// simulated round counts — are identical for every worker count; only
// wall-clock time changes.
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n }
}

// WithCacheSize bounds the number of solved results a Solver retains
// (least-recently-used eviction). It is read by NewSolver only; the
// default (0) selects a small built-in capacity.
func WithCacheSize(n int) Option {
	return func(o *options) { o.cacheSize = n }
}

func buildOptions(opts []Option) options {
	o := options{strategy: Quantum, preset: PaperConstants}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// servePreset maps the public preset to the serve-layer preset — the one
// place the public names are translated; the preset→constants mapping
// itself lives in serve.Preset.Params.
func (p ParamPreset) servePreset() serve.Preset {
	if p == ScaledConstants {
		return serve.PresetScaled
	}
	return serve.PresetPaper
}

func (o options) params() *triangles.Params {
	return o.preset.servePreset().Params()
}

// Digraph is a weighted directed graph on vertices 0..n-1, the input to
// SolveAPSP.
type Digraph struct {
	g *graph.Digraph
}

// NewDigraph returns an empty directed graph on n vertices.
func NewDigraph(n int) *Digraph {
	return &Digraph{g: graph.NewDigraph(n)}
}

// N returns the vertex count.
func (d *Digraph) N() int { return d.g.N() }

// SetArc sets the weight of arc u→v (self-loops are rejected).
func (d *Digraph) SetArc(u, v int, weight int64) error { return d.g.SetArc(u, v, weight) }

// Weight returns the weight of arc u→v and whether it exists.
func (d *Digraph) Weight(u, v int) (int64, bool) { return d.g.Weight(u, v) }

// Graph is a weighted undirected graph on vertices 0..n-1, the input to
// FindNegativeTriangleEdges.
type Graph struct {
	g *graph.Undirected
}

// NewGraph returns an empty undirected graph on n vertices.
func NewGraph(n int) *Graph {
	return &Graph{g: graph.NewUndirected(n)}
}

// N returns the vertex count.
func (g *Graph) N() int { return g.g.N() }

// SetEdge sets the weight of edge {u,v} (self-loops are rejected).
func (g *Graph) SetEdge(u, v int, weight int64) error { return g.g.SetEdge(u, v, weight) }

// Weight returns the weight of edge {u,v} and whether it exists.
func (g *Graph) Weight(u, v int) (int64, bool) { return g.g.Weight(u, v) }

// APSPResult reports an APSP solve.
type APSPResult struct {
	// Dist[i][j] is the shortest distance from i to j; Inf if unreachable.
	// The rows are the caller's to keep (solver-produced results copy them
	// out of the cache), but they are an export, not the source of truth:
	// ShortestPath reconstructs against the solver's retained matrix.
	Dist [][]int64
	// Rounds is the simulated CONGEST-CLIQUE round count of the whole
	// pipeline.
	Rounds int64
	// Products is the number of distance products performed (⌈log₂ n⌉).
	Products int
	// FindEdgesCalls counts the negative-triangle subproblems solved.
	FindEdgesCalls int
	// Strategy records which pipeline ran.
	Strategy Strategy
	// Cached reports whether this result was served from a Solver cache
	// (or deduplicated onto a concurrent identical solve) instead of
	// running the simulator; cached results charge zero new rounds.
	Cached bool
	// Epsilon echoes the stretch budget of an approximate solve (0 for
	// exact strategies).
	Epsilon float64
	// GuaranteedStretch is the multiplicative bound the strategy
	// guarantees: 1 (exact), 1+ε (ApproxQuantum), or 2+ε (ApproxSkeleton).
	GuaranteedStretch float64
	// ObservedStretch is the measured maximum ratio of the returned
	// distances over the exact reference for this input (1 for exact
	// strategies).
	ObservedStretch float64

	// dist retains the solver's distance matrix so path reconstruction
	// (ShortestPath, Solver batch queries) skips the O(n²) rebuild from
	// the exported rows. Nil for hand-assembled results.
	dist *matrix.Matrix
}

// SolveAPSP computes exact all-pairs shortest distances for g.
func SolveAPSP(g *Digraph, opts ...Option) (*APSPResult, error) {
	if g == nil {
		return nil, errors.New("qclique: nil graph")
	}
	o := buildOptions(opts)
	res, err := core.Solve(g.g, core.Config{
		Strategy: o.strategy.toCore(),
		Params:   o.params(),
		Seed:     o.seed,
		Epsilon:  o.epsilon,
		Workers:  o.workers,
	})
	if err != nil {
		return nil, err
	}
	n := g.N()
	dist := make([][]int64, n)
	for i := range dist {
		dist[i] = res.Dist.Row(i)
	}
	return &APSPResult{
		Dist:              dist,
		Rounds:            res.Rounds,
		Products:          res.Products,
		FindEdgesCalls:    res.FindEdgesCalls,
		Strategy:          o.strategy,
		Epsilon:           res.Epsilon,
		GuaranteedStretch: res.GuaranteedStretch,
		ObservedStretch:   res.ObservedStretch,
		dist:              res.Dist,
	}, nil
}

// Edge is an unordered vertex pair in a triangle report.
type Edge struct {
	U, V int
}

// TriangleReport reports a FindNegativeTriangleEdges run.
type TriangleReport struct {
	// Edges lists every edge involved in at least one negative triangle,
	// each with U < V, in unspecified order.
	Edges []Edge
	// Rounds is the simulated CONGEST-CLIQUE round count.
	Rounds int64
}

// FindNegativeTriangleEdges solves the FindEdges problem of Section 3:
// report every edge of g that is part of a triangle whose three edge
// weights sum to a negative value.
func FindNegativeTriangleEdges(g *Graph, opts ...Option) (*TriangleReport, error) {
	if g == nil {
		return nil, errors.New("qclique: nil graph")
	}
	o := buildOptions(opts)
	inst := triangles.Instance{G: g.g}
	var (
		edges  map[graph.Pair]bool
		rounds int64
	)
	switch o.strategy {
	case DolevListing, Gossip:
		rep, err := triangles.DolevFindEdges(inst, nil)
		if err != nil {
			return nil, err
		}
		edges, rounds = rep.Edges, rep.Rounds
	default:
		mode := triangles.SearchQuantum
		if o.strategy == ClassicalSearch {
			mode = triangles.SearchClassicalScan
		}
		rep, err := triangles.FindEdges(inst, triangles.Options{
			Params:  o.params(),
			Mode:    mode,
			Seed:    o.seed,
			Workers: o.workers,
		})
		if err != nil {
			return nil, err
		}
		edges, rounds = rep.Edges, rep.Rounds
	}
	out := &TriangleReport{Rounds: rounds}
	for p := range edges {
		out.Edges = append(out.Edges, Edge{U: p.U, V: p.V})
	}
	return out, nil
}

// ProductResult reports a DistanceProduct run.
type ProductResult struct {
	// C[i][j] = min_k (A[i][k] + B[k][j]); Inf marks "no path".
	C [][]int64
	// Rounds is the simulated CONGEST-CLIQUE round count (0 when the
	// reference implementation is selected via Gossip strategy... see doc).
	Rounds int64
}

// DistanceProduct computes the min-plus product of two n×n matrices given
// as row-major slices; use Inf for "no entry". The strategy option selects
// the FindEdges solver of the Proposition 2 reduction (Gossip selects the
// naive broadcast product).
func DistanceProduct(a, b [][]int64, opts ...Option) (*ProductResult, error) {
	ma, err := matrix.FromRows(a)
	if err != nil {
		return nil, fmt.Errorf("qclique: matrix A: %w", err)
	}
	mb, err := matrix.FromRows(b)
	if err != nil {
		return nil, fmt.Errorf("qclique: matrix B: %w", err)
	}
	o := buildOptions(opts)
	c, rounds, err := productFor(ma, mb, o)
	if err != nil {
		return nil, err
	}
	n := c.N()
	rows := make([][]int64, n)
	for i := range rows {
		// c is local to this call, so handing out aliasing views transfers
		// ownership of its backing storage to the result.
		rows[i] = c.RowView(i)
	}
	return &ProductResult{C: rows, Rounds: rounds}, nil
}
