// Package qclique is a simulation-backed implementation of "Quantum
// Distributed Algorithm for the All-Pairs Shortest Path Problem in the
// CONGEST-CLIQUE Model" (Izumi & Le Gall, PODC 2019, arXiv:1906.02456).
//
// It provides exact APSP over directed graphs with integer weights
// (positive and negative, no negative cycles) computed by the paper's
// Õ(n^{1/4}·log W)-round quantum pipeline inside a CONGEST-CLIQUE
// simulator, alongside the classical baselines the paper compares against
// (Dolev–Lenzen–Peled Õ(n^{1/3}) listing, classical Õ(√n) search, O(n)
// gossip). The quantum parts run on an exact Grover state-vector
// simulator; network costs are charged per the paper's round accounting
// and reported with every result.
//
// # Quick start
//
//	g := qclique.NewDigraph(16)
//	g.SetArc(0, 1, 3)
//	g.SetArc(1, 2, -1)
//	res, err := qclique.SolveAPSP(g, qclique.WithSeed(42))
//	// res.Dist[0][2] == 2, res.Rounds == CONGEST-CLIQUE cost
//
// The lower-level building blocks — FindNegativeTriangleEdges (the
// FindEdges problem of Section 3) and DistanceProduct (Proposition 2) —
// are exposed with the same options.
package qclique

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"qclique/internal/congest"
	"qclique/internal/core"
	"qclique/internal/engine"
	"qclique/internal/graph"
	"qclique/internal/matrix"
	"qclique/internal/serve"
	"qclique/internal/triangles"
)

// Inf is the distance reported for unreachable pairs.
const Inf = graph.Inf

// ErrNegativeCycle is returned by SolveAPSP when the input contains a
// negative-weight directed cycle, for which shortest distances are
// undefined.
var ErrNegativeCycle = graph.ErrNegativeCycle

// Strategy selects the APSP pipeline.
type Strategy int

// Available strategies. The zero value selects Quantum.
const (
	// Quantum is the paper's Õ(n^{1/4}·log W) pipeline (Theorem 1).
	Quantum Strategy = iota + 1
	// ClassicalSearch replaces the Grover search with the classical O(√n)
	// scan in Step 3 of ComputePairs.
	ClassicalSearch
	// DolevListing drives the reductions with the classical Õ(n^{1/3})
	// triangle-listing of Dolev, Lenzen and Peled.
	DolevListing
	// Gossip is the naive O(n)-round baseline: full adjacency gossip plus
	// local computation.
	Gossip
	// ApproxQuantum is the (1+ε)-approximate quantum chain: every distance
	// product is snapped onto a geometric value ladder, cutting the
	// binary-search depth (and hence rounds) of every product. Requires
	// nonnegative weights and WithEpsilon(ε > 0); distances satisfy
	// d ≤ d̂ ≤ (1+ε)·d with reachability preserved exactly.
	ApproxQuantum
	// ApproxSkeleton is the (2+ε) skeleton strategy (after Censor-Hillel
	// et al., arXiv:1903.05956): exact k-nearest balls, a sampled skeleton
	// solved on the (1+ε/2) ladder, estimates combined through skeleton
	// hubs. Requires a weight-symmetric nonnegative graph and
	// WithEpsilon(ε > 0).
	ApproxSkeleton
	// StrategyAuto asks the serving layer's planner to choose: the solve is
	// routed to the best registered strategy viable for the graph's
	// structural profile (negative arcs, asymmetry) and the request's
	// stretch budget and deadline. Requires a Solver (or the daemon) — the
	// planner consumes serving-layer telemetry, so the plain SolveAPSP
	// entry points reject it. See WithPlanner.
	StrategyAuto
)

func (s Strategy) String() string {
	switch s {
	case Quantum:
		return "quantum"
	case ClassicalSearch:
		return "classical-search"
	case DolevListing:
		return "dolev-listing"
	case Gossip:
		return "gossip"
	case ApproxQuantum:
		return "approx-quantum"
	case ApproxSkeleton:
		return "approx-skeleton"
	case StrategyAuto:
		return "auto"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

func (s Strategy) toCore() core.Strategy {
	switch s {
	case ClassicalSearch:
		return core.StrategyClassicalSearch
	case DolevListing:
		return core.StrategyDolev
	case Gossip:
		return core.StrategyGossip
	case ApproxQuantum:
		return core.StrategyApproxQuantum
	case ApproxSkeleton:
		return core.StrategyApproxSkeleton
	case StrategyAuto:
		return core.StrategyAuto
	default:
		return core.StrategyQuantum
	}
}

func fromCore(s core.Strategy) Strategy {
	switch s {
	case core.StrategyClassicalSearch:
		return ClassicalSearch
	case core.StrategyDolev:
		return DolevListing
	case core.StrategyGossip:
		return Gossip
	case core.StrategyApproxQuantum:
		return ApproxQuantum
	case core.StrategyApproxSkeleton:
		return ApproxSkeleton
	case core.StrategyAuto:
		return StrategyAuto
	default:
		return Quantum
	}
}

// StrategyInfo describes one registered pipeline, as enumerated from the
// engine's strategy registry.
type StrategyInfo struct {
	// Strategy is the public selector to pass to WithStrategy.
	Strategy Strategy
	// Name is the canonical registry name ("quantum", "approx-skeleton" …).
	Name string
	// Approximate reports whether the pipeline requires WithEpsilon.
	Approximate bool
	// FindEdges reports whether the strategy names a FindEdges solver of
	// its own, i.e. is meaningful to FindNegativeTriangleEdges (see
	// findEdgesRole, which lives next to that dispatch).
	FindEdges bool
}

// Guarantee returns the multiplicative stretch bound the pipeline
// guarantees for stretch budget eps: 1 for exact pipelines, 1+ε or 2+ε
// for the approximate ones.
func (si StrategyInfo) Guarantee(eps float64) float64 {
	if st, ok := engine.Lookup(si.Name); ok {
		return st.Guarantee(eps)
	}
	return 1
}

// Strategies enumerates every registered pipeline, sorted by name. New
// pipelines appear here (and everywhere the registry is consumed — the
// serving layer, the cmd tools) by registering with the engine, with no
// hand-maintained list to grow.
func Strategies() []StrategyInfo {
	var out []StrategyInfo
	for _, st := range engine.Strategies() {
		enum, ok := core.StrategyByName(st.Name())
		if !ok {
			continue
		}
		pub := fromCore(enum)
		out = append(out, StrategyInfo{
			Strategy:    pub,
			Name:        st.Name(),
			Approximate: st.Approximate(),
			FindEdges:   findEdgesRole(pub),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// StrategyInfoFor returns the registry entry describing s (false when s
// has no registered pipeline).
func StrategyInfoFor(s Strategy) (StrategyInfo, bool) {
	for _, si := range Strategies() {
		if si.Strategy == s {
			return si, true
		}
	}
	return StrategyInfo{}, false
}

// ParseStrategy resolves a registry name or alias ("quantum",
// "classical", "dolev-listing", "skeleton", …) to its public selector.
func ParseStrategy(name string) (Strategy, error) {
	s, err := serve.ParseStrategy(name)
	if err != nil {
		return 0, fmt.Errorf("qclique: %w", err)
	}
	return fromCore(s), nil
}

// FormatStrategyList renders the strategy catalog as the human-readable
// listing the CLI tools print for "-strategy list": one line per
// registered pipeline with its stretch guarantee and input requirements.
// It renders the same serve.CatalogEntries data GET /v1/strategies serves,
// so every surface shows one list with no hand-maintained copies.
func FormatStrategyList() string {
	var b strings.Builder
	b.WriteString("registered strategies:\n")
	for _, ce := range serve.CatalogEntries() {
		desc := "stretch exact"
		if ce.Approximate {
			var needs []string
			if ce.RejectsNegative {
				needs = append(needs, "nonnegative weights")
			}
			if ce.NeedsSymmetric {
				needs = append(needs, "symmetric weights")
			}
			needs = append(needs, fmt.Sprintf("epsilon in [%g, %g]", ce.MinEpsilon, ce.MaxEpsilon))
			desc = fmt.Sprintf("stretch %s (requires %s)", ce.Guarantee, strings.Join(needs, ", "))
		}
		fmt.Fprintf(&b, "  %-18s %s\n", ce.Name, desc)
	}
	b.WriteString("  auto               planner picks the best viable strategy per request\n")
	return b.String()
}

// ParamPreset selects the protocol-constant preset.
type ParamPreset int

// Parameter presets.
const (
	// PaperConstants uses the constants exactly as printed in the paper
	// (10·log n sampling, 90·log n promise, 800·√n·log n slot caps, …).
	PaperConstants ParamPreset = iota + 1
	// ScaledConstants uses ~3× smaller constants with the same asymptotic
	// shape, keeping message volumes simulable at larger n.
	ScaledConstants
)

// Options is the full configuration of the public entry points, with every
// knob the functional With* options set, as one validatable value. The
// With* options mutate an Options; callers holding a complete configuration
// (a config file, a request body) can instead build an Options directly,
// check it once with Validate, and pass it through WithOptions.
type Options struct {
	// Strategy selects the pipeline (zero value selects Quantum).
	Strategy Strategy
	// Preset selects the protocol-constant preset (zero value selects
	// PaperConstants).
	Preset ParamPreset
	// Seed fixes the protocol randomness; equal seeds reproduce.
	Seed uint64
	// Epsilon is the stretch budget of the approximate strategies; it must
	// be > 0 with an approximate strategy and 0 with an exact one.
	Epsilon float64
	// Workers bounds the host-side parallelism of node-local phases
	// (<= 0 selects GOMAXPROCS). Results are worker-invariant.
	Workers int
	// CacheSize bounds the results a Solver retains (NewSolver only;
	// <= 0 selects a small built-in capacity).
	CacheSize int
	// MaxInflight bounds a Solver's concurrently executing solves
	// (NewSolver only; <= 0 leaves execution unbounded). Cache hits and
	// deduplicated calls never count against it.
	MaxInflight int
	// QueueDepth bounds the FIFO wait queue behind a saturated MaxInflight
	// (NewSolver only; <= 0 selects a built-in default). Calls beyond it
	// fail with an *OverloadError instead of waiting.
	QueueDepth int
	// OverloadDegrade answers degradable solves with the cheapest viable
	// approximate strategy while the Solver is under overload pressure
	// (NewSolver only; see WithOverloadDegrade).
	OverloadDegrade bool
	// Timeout bounds the wall-clock time of a solve (0 = no deadline).
	Timeout time.Duration
	// Transport selects the congest delivery backend by registered name
	// ("" = "local"). Backends are bit-identical in results by contract;
	// the choice only moves host-side execution.
	Transport string
	// Faults arms the solve with a deterministic fault-injection plan
	// (zero disables injection).
	Faults FaultPlan
	// Degrade opts Solver solves into the graceful-degradation ladder
	// (see WithDegradation).
	Degrade bool
}

// Validate rejects configurations no solve can run: an epsilon that
// disagrees with the strategy class (or falls outside the supported
// domain), a malformed fault plan, an unknown transport, or a negative
// timeout. It shares the serving layer's validation, so the library, the
// Solver, and the HTTP daemon accept and refuse exactly the same
// configurations.
func (o Options) Validate() error {
	if o.Timeout < 0 {
		return fmt.Errorf("qclique: negative timeout %v", o.Timeout)
	}
	if err := o.spec().Validate(); err != nil {
		return fmt.Errorf("qclique: %w", err)
	}
	return nil
}

// Option configures SolveAPSP, FindNegativeTriangleEdges and
// DistanceProduct.
type Option func(*Options)

// WithOptions overlays a complete Options value, replacing every knob at
// once (zero Strategy/Preset still select the Quantum/PaperConstants
// defaults). Later options in the same call keep overriding individual
// fields.
func WithOptions(o Options) Option {
	return func(dst *Options) {
		*dst = o
		dst.normalize()
	}
}

// WithStrategy selects the pipeline strategy.
func WithStrategy(s Strategy) Option {
	return func(o *Options) { o.Strategy = s }
}

// WithPlanner delegates strategy choice to the serving layer's planner
// (equivalent to WithStrategy(StrategyAuto)): each solve is routed to the
// best registered strategy viable for the graph's structural profile and
// the request's stretch budget and deadline, and the result reports which
// strategy ran. Requires a Solver — the planner blends static cost priors
// with the Solver's live telemetry, so the plain SolveAPSP entry points
// reject it. A planned solve is bit-identical to explicitly requesting
// the chosen strategy (it shares the same cache entries).
func WithPlanner() Option {
	return func(o *Options) { o.Strategy = StrategyAuto }
}

// WithSeed fixes the protocol randomness; runs with equal seeds are
// reproducible.
func WithSeed(seed uint64) Option {
	return func(o *Options) { o.Seed = seed }
}

// WithParams selects the protocol-constant preset.
func WithParams(p ParamPreset) Option {
	return func(o *Options) { o.Preset = p }
}

// WithEpsilon sets the multiplicative stretch budget of the approximate
// strategies (ApproxQuantum guarantees 1+ε, ApproxSkeleton 2+ε). It must
// be > 0 with an approximate strategy and left unset with an exact one —
// epsilon is part of a result's identity (it changes both distances and
// rounds), so it is rejected rather than silently ignored.
func WithEpsilon(eps float64) Option {
	return func(o *Options) { o.Epsilon = eps }
}

// WithWorkers bounds the host-side parallelism used for node-local phases
// of the simulation (oracle evaluation, Grover state-vector updates, local
// min-plus work) and, on the sharded transport, its worker-shard count.
// The default (0) uses GOMAXPROCS. Results — distances and simulated round
// counts — are identical for every worker count; only wall-clock time
// changes.
func WithWorkers(n int) Option {
	return func(o *Options) { o.Workers = n }
}

// WithCacheSize bounds the number of solved results a Solver retains
// (least-recently-used eviction). It is read by NewSolver only; the
// default (0) selects a small built-in capacity.
func WithCacheSize(n int) Option {
	return func(o *Options) { o.CacheSize = n }
}

// WithMaxInflight bounds the Solver's concurrently executing solves
// (admission control): past the bound, cache-missing calls wait in a FIFO
// queue, and past WithQueueDepth they fail fast with an *OverloadError
// instead of piling unbounded pipeline runs onto the host. Cache hits and
// calls deduplicated onto a concurrent identical solve never count against
// the bound. Read by NewSolver only; the default (0) leaves execution
// unbounded.
func WithMaxInflight(n int) Option {
	return func(o *Options) { o.MaxInflight = n }
}

// WithQueueDepth bounds the FIFO wait queue behind a saturated
// WithMaxInflight. Queued calls are deadline-aware: one whose remaining
// context budget could not cover its likely service time fails immediately
// with an *OverloadError rather than waiting for an answer that would
// arrive dead. Read by NewSolver only; the default (0) selects a built-in
// depth.
func WithQueueDepth(n int) Option {
	return func(o *Options) { o.QueueDepth = n }
}

// WithOverloadDegrade lets the Solver shed fidelity instead of throughput:
// while under overload pressure (saturated execution slots with a deep
// queue), degradable solves are answered by the cheapest viable approximate
// strategy — marked Degraded with DegradeReason "overload" — rather than
// queued at full cost. Read by NewSolver only.
func WithOverloadDegrade(on bool) Option {
	return func(o *Options) { o.OverloadDegrade = on }
}

// WithTimeout bounds the wall-clock time of a solve: the pipeline
// checkpoints between its stages and inside the squaring-chain and
// triangle-enumeration loops, and a deadline that expires stops the solve
// at the next checkpoint with an error wrapping
// context.DeadlineExceeded. The default (0) imposes no deadline. It
// composes with SolveAPSPContext / Solver.SolveContext: the effective
// deadline is the earlier of the two.
func WithTimeout(d time.Duration) Option {
	return func(o *Options) { o.Timeout = d }
}

// WithTransport selects the congest delivery backend by registered name
// ("local" — the single-goroutine reference — or "sharded", which
// partitions nodes across worker shards; the empty string keeps the
// default "local"). Backends are bit-identical in distances, rounds, and
// fault schedules by contract, so the choice only moves host-side
// execution; unknown names fail the solve before any pipeline runs.
func WithTransport(name string) Option {
	return func(o *Options) { o.Transport = name }
}

// solveCtx applies the timeout option onto the caller's context.
func (o Options) solveCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if o.Timeout > 0 {
		return context.WithTimeout(ctx, o.Timeout)
	}
	return ctx, func() {}
}

// normalize maps zero selectors to their documented defaults.
func (o *Options) normalize() {
	if o.Strategy == 0 {
		o.Strategy = Quantum
	}
	if o.Preset == 0 {
		o.Preset = PaperConstants
	}
}

func buildOptions(opts []Option) Options {
	o := Options{Strategy: Quantum, Preset: PaperConstants}
	for _, fn := range opts {
		fn(&o)
	}
	o.normalize()
	return o
}

// servePreset maps the public preset to the serve-layer preset — the one
// place the public names are translated; the preset→constants mapping
// itself lives in serve.Preset.Params.
func (p ParamPreset) servePreset() serve.Preset {
	if p == ScaledConstants {
		return serve.PresetScaled
	}
	return serve.PresetPaper
}

func (o Options) params() *triangles.Params {
	return o.Preset.servePreset().Params()
}

// Digraph is a weighted directed graph on vertices 0..n-1, the input to
// SolveAPSP.
type Digraph struct {
	g *graph.Digraph
}

// NewDigraph returns an empty directed graph on n vertices.
func NewDigraph(n int) *Digraph {
	return &Digraph{g: graph.NewDigraph(n)}
}

// N returns the vertex count.
func (d *Digraph) N() int { return d.g.N() }

// SetArc sets the weight of arc u→v (self-loops are rejected).
func (d *Digraph) SetArc(u, v int, weight int64) error { return d.g.SetArc(u, v, weight) }

// Weight returns the weight of arc u→v and whether it exists.
func (d *Digraph) Weight(u, v int) (int64, bool) { return d.g.Weight(u, v) }

// Graph is a weighted undirected graph on vertices 0..n-1, the input to
// FindNegativeTriangleEdges.
type Graph struct {
	g *graph.Undirected
}

// NewGraph returns an empty undirected graph on n vertices.
func NewGraph(n int) *Graph {
	return &Graph{g: graph.NewUndirected(n)}
}

// N returns the vertex count.
func (g *Graph) N() int { return g.g.N() }

// SetEdge sets the weight of edge {u,v} (self-loops are rejected).
func (g *Graph) SetEdge(u, v int, weight int64) error { return g.g.SetEdge(u, v, weight) }

// Weight returns the weight of edge {u,v} and whether it exists.
func (g *Graph) Weight(u, v int) (int64, bool) { return g.g.Weight(u, v) }

// APSPResult reports an APSP solve.
type APSPResult struct {
	// Dist[i][j] is the shortest distance from i to j; Inf if unreachable.
	// The rows are the caller's to keep (solver-produced results copy them
	// out of the cache), but they are an export, not the source of truth:
	// ShortestPath reconstructs against the solver's retained matrix.
	Dist [][]int64
	// Rounds is the simulated CONGEST-CLIQUE round count of the whole
	// pipeline.
	Rounds int64
	// Products is the number of distance products performed (⌈log₂ n⌉).
	Products int
	// FindEdgesCalls counts the negative-triangle subproblems solved.
	FindEdgesCalls int
	// Strategy records which pipeline ran.
	Strategy Strategy
	// Transport names the delivery backend that executed the solve ("local",
	// "sharded"). For cached results this echoes the original execution's
	// backend — transport choice is excluded from the cache identity because
	// backends are bit-identical in results.
	Transport string
	// Cached reports whether this result was served from a Solver cache
	// (or deduplicated onto a concurrent identical solve) instead of
	// running the simulator; cached results charge zero new rounds.
	Cached bool
	// Epsilon echoes the stretch budget of an approximate solve (0 for
	// exact strategies).
	Epsilon float64
	// GuaranteedStretch is the multiplicative bound the strategy
	// guarantees: 1 (exact), 1+ε (ApproxQuantum), or 2+ε (ApproxSkeleton).
	GuaranteedStretch float64
	// ObservedStretch is the measured maximum ratio of the returned
	// distances over the exact reference for this input (1 for exact
	// strategies).
	ObservedStretch float64
	// Degraded marks a result the graceful-degradation ladder answered
	// with a fallback strategy (see WithDegradation): Strategy and
	// GuaranteedStretch describe the rung that actually ran, DegradedFrom
	// the strategy that was asked for, DegradeReason why it stepped down
	// ("retries-exhausted", "breaker-open" or "deadline").
	Degraded      bool
	DegradedFrom  Strategy
	DegradeReason string
	// Planned marks a result whose strategy the planner chose
	// (StrategyAuto / WithPlanner): Strategy reports the pipeline that
	// actually ran, PlannerReason why the planner picked it, and
	// PredictedRounds/PredictedWallNs its cost prediction at decision time
	// (compare with Rounds and the measured wall to judge the planner).
	Planned         bool
	PlannerReason   string
	PredictedRounds int64
	PredictedWallNs int64
	// Faults is the injected-fault accounting of the solve (all zeros
	// without WithFaultPlan).
	Faults FaultCounters
	// Stages is the engine's per-stage breakdown of the pipeline that
	// produced this result, in execution order: for cached results, the
	// telemetry of the original run. Stage rounds sum exactly to Rounds.
	Stages []StageStat

	// dist retains the solver's distance matrix so path reconstruction
	// (ShortestPath, Solver batch queries) skips the O(n²) rebuild from
	// the exported rows. Nil for hand-assembled results.
	dist *matrix.Matrix
}

// StageStat is one pipeline stage's telemetry: the rounds and words are
// exact simulator accounting (deterministic seed-for-seed), wall time and
// allocation count are host-side measurements.
type StageStat struct {
	// Name labels the stage ("encode", "square-3", "stretch-audit", …).
	Name string
	// Rounds is the simulated CONGEST-CLIQUE rounds the stage charged.
	Rounds int64
	// Words is the total message words the stage moved.
	Words int64
	// Wall is the host wall-clock time spent in the stage.
	Wall time.Duration
	// Allocs is the approximate heap allocation count of the stage
	// (process-global mallocs, so concurrent solves bleed into each other).
	Allocs uint64
	// Skipped marks a stage the pipeline proved unnecessary (e.g. squaring
	// products after the approximate chain's fixpoint vote converged).
	Skipped bool
	// Retries counts re-runs of the stage after injected-fault failures;
	// Backoff is the total wall time slept between those attempts.
	Retries int
	Backoff time.Duration
}

// stagesFromCore converts engine stage telemetry to the public form.
func stagesFromCore(stages []engine.StageStat) []StageStat {
	if len(stages) == 0 {
		return nil
	}
	out := make([]StageStat, len(stages))
	for i, s := range stages {
		out[i] = StageStat{
			Name:    s.Name,
			Rounds:  s.Rounds,
			Words:   s.Words,
			Wall:    time.Duration(s.WallNs),
			Allocs:  s.Allocs,
			Skipped: s.Skipped,
			Retries: s.Retries,
			Backoff: time.Duration(s.BackoffNs),
		}
	}
	return out
}

// SolveAPSP computes exact all-pairs shortest distances for g.
func SolveAPSP(g *Digraph, opts ...Option) (*APSPResult, error) {
	return SolveAPSPContext(context.Background(), g, opts...)
}

// SolveAPSPContext is SolveAPSP honoring a context: the pipeline
// checkpoints between stages and inside the squaring-chain and
// triangle-enumeration loops, so cancellation (or a WithTimeout deadline)
// stops the solve at the next checkpoint with an error wrapping the
// context's error. An already-cancelled context returns promptly without
// simulating.
func SolveAPSPContext(ctx context.Context, g *Digraph, opts ...Option) (*APSPResult, error) {
	if g == nil {
		return nil, errors.New("qclique: nil graph")
	}
	o := buildOptions(opts)
	if o.Degrade {
		// The degradation ladder lives in the serving layer; rejecting here
		// beats silently ignoring a resilience request.
		return nil, errors.New("qclique: WithDegradation requires a Solver")
	}
	if o.Strategy == StrategyAuto {
		// So does the strategy planner (it blends live Solver telemetry into
		// its cost model); rejecting beats silently running quantum.
		return nil, errors.New("qclique: WithPlanner/StrategyAuto requires a Solver")
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	ctx, cancel := o.solveCtx(ctx)
	defer cancel()
	res, err := core.SolveContext(ctx, g.g, core.Config{
		Strategy:  o.Strategy.toCore(),
		Params:    o.params(),
		Seed:      o.Seed,
		Epsilon:   o.Epsilon,
		Workers:   o.Workers,
		Transport: o.Transport,
		Faults:    o.Faults.toCore(),
	})
	if err != nil {
		var fe *congest.FaultError
		if res != nil && errors.As(err, &fe) {
			return nil, &FaultExhaustedError{Faults: countersFromCore(res.Metrics.Faults), err: err}
		}
		return nil, err
	}
	n := g.N()
	dist := make([][]int64, n)
	for i := range dist {
		dist[i] = res.Dist.Row(i)
	}
	return &APSPResult{
		Dist:              dist,
		Rounds:            res.Rounds,
		Products:          res.Products,
		FindEdgesCalls:    res.FindEdgesCalls,
		Strategy:          o.Strategy,
		Transport:         res.Transport.Transport,
		Epsilon:           res.Epsilon,
		GuaranteedStretch: res.GuaranteedStretch,
		ObservedStretch:   res.ObservedStretch,
		Faults:            countersFromCore(res.Metrics.Faults),
		Stages:            stagesFromCore(res.Stages),
		dist:              res.Dist,
	}, nil
}

// Edge is an unordered vertex pair in a triangle report.
type Edge struct {
	U, V int
}

// TriangleReport reports a FindNegativeTriangleEdges run.
type TriangleReport struct {
	// Edges lists every edge involved in at least one negative triangle,
	// each with U < V, in unspecified order.
	Edges []Edge
	// Rounds is the simulated CONGEST-CLIQUE round count.
	Rounds int64
}

// findEdgesRole reports whether s names a FindEdges solver of its own —
// the capability StrategyInfo.FindEdges surfaces. It sits next to the
// FindNegativeTriangleEdges dispatch below, which is the one place the
// answer is defined: quantum and classical-search drive ComputePairs,
// dolev drives its own listing; gossip has no triangle machinery (the
// dispatch would silently fall back to Dolev listing) and the approximate
// strategies are APSP-only. A new pipeline with a FindEdges role extends
// both together.
func findEdgesRole(s Strategy) bool {
	switch s {
	case Quantum, ClassicalSearch, DolevListing:
		return true
	default:
		return false
	}
}

// FindNegativeTriangleEdges solves the FindEdges problem of Section 3:
// report every edge of g that is part of a triangle whose three edge
// weights sum to a negative value. Only strategies with a FindEdges role
// (StrategyInfo.FindEdges: Quantum, ClassicalSearch, DolevListing) are
// accepted — gossip and the approximate strategies are APSP-only and are
// rejected rather than silently substituted, as is an epsilon (this
// problem has no stretch knob).
func FindNegativeTriangleEdges(g *Graph, opts ...Option) (*TriangleReport, error) {
	if g == nil {
		return nil, errors.New("qclique: nil graph")
	}
	o := buildOptions(opts)
	if !findEdgesRole(o.Strategy) {
		return nil, fmt.Errorf("qclique: strategy %v has no FindEdges role (see StrategyInfo.FindEdges)", o.Strategy)
	}
	if o.Epsilon != 0 {
		return nil, fmt.Errorf("qclique: epsilon %v is not meaningful for FindNegativeTriangleEdges", o.Epsilon)
	}
	inst := triangles.Instance{G: g.g}
	var (
		edges  map[graph.Pair]bool
		rounds int64
	)
	switch o.Strategy {
	case DolevListing:
		rep, err := triangles.DolevFindEdges(inst, nil)
		if err != nil {
			return nil, err
		}
		edges, rounds = rep.Edges, rep.Rounds
	default:
		mode := triangles.SearchQuantum
		if o.Strategy == ClassicalSearch {
			mode = triangles.SearchClassicalScan
		}
		rep, err := triangles.FindEdges(inst, triangles.Options{
			Params:  o.params(),
			Mode:    mode,
			Seed:    o.Seed,
			Workers: o.Workers,
		})
		if err != nil {
			return nil, err
		}
		edges, rounds = rep.Edges, rep.Rounds
	}
	out := &TriangleReport{Rounds: rounds}
	for p := range edges {
		out.Edges = append(out.Edges, Edge{U: p.U, V: p.V})
	}
	return out, nil
}

// ProductResult reports a DistanceProduct run.
type ProductResult struct {
	// C[i][j] = min_k (A[i][k] + B[k][j]); Inf marks "no path".
	C [][]int64
	// Rounds is the simulated CONGEST-CLIQUE round count (0 when the
	// reference implementation is selected via Gossip strategy... see doc).
	Rounds int64
}

// DistanceProduct computes the min-plus product of two n×n matrices given
// as row-major slices; use Inf for "no entry". The strategy option selects
// the FindEdges solver of the Proposition 2 reduction (Gossip selects the
// naive broadcast product).
func DistanceProduct(a, b [][]int64, opts ...Option) (*ProductResult, error) {
	ma, err := matrix.FromRows(a)
	if err != nil {
		return nil, fmt.Errorf("qclique: matrix A: %w", err)
	}
	mb, err := matrix.FromRows(b)
	if err != nil {
		return nil, fmt.Errorf("qclique: matrix B: %w", err)
	}
	o := buildOptions(opts)
	c, rounds, err := productFor(ma, mb, o)
	if err != nil {
		return nil, err
	}
	n := c.N()
	rows := make([][]int64, n)
	for i := range rows {
		// c is local to this call, so handing out aliasing views transfers
		// ownership of its backing storage to the result.
		rows[i] = c.RowView(i)
	}
	return &ProductResult{C: rows, Rounds: rounds}, nil
}
