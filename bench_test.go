package qclique

// One benchmark per experiment of DESIGN.md §4 (the paper's quantitative
// claims — it has no empirical tables, so these regenerate the measured
// counterpart of each theorem/proposition/lemma). Each benchmark reports
// the simulated CONGEST-CLIQUE round count via ReportMetric("rounds/op")
// alongside the usual wall-clock numbers; cmd/experiments renders the same
// measurements as the tables recorded in EXPERIMENTS.md.

import (
	"errors"
	"fmt"
	"testing"

	"qclique/internal/congest"
	"qclique/internal/core"
	"qclique/internal/distprod"
	"qclique/internal/graph"
	"qclique/internal/matrix"
	"qclique/internal/qsearch"
	"qclique/internal/quantum"
	"qclique/internal/triangles"
	"qclique/internal/xrand"
)

func benchTriangleGraph(b *testing.B, n int) *graph.Undirected {
	b.Helper()
	rng := xrand.New(uint64(n))
	g, err := graph.RandomUndirected(n, graph.UndirectedOpts{EdgeProb: 0.15, MinWeight: 1, MaxWeight: 40}, rng)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := graph.PlantNegativeTriangles(g, 1+n/16, 30, rng.Split("p")); err != nil {
		b.Fatal(err)
	}
	return g
}

func benchDigraph(b *testing.B, n int) *graph.Digraph {
	b.Helper()
	g, err := graph.RandomDigraph(n, graph.DigraphOpts{
		ArcProb: 0.4, MinWeight: -8, MaxWeight: 8, NoNegativeCycles: true,
	}, xrand.New(uint64(n)))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkE1APSPQuantum regenerates E1 (Theorem 1): the full quantum APSP
// pipeline end to end. The n=32 and n=64 cases exist because the hot-path
// overhaul (incremental tripartite reuse, flat link-load accounting,
// parallel node-local phases) brought them into benchmarkable range; n=128
// was unlocked by the allocation-free solve pipeline (per-solve workspace,
// pooled quantum state, zero-copy matrix ping-pong), which cut the memory
// per solve by more than an order of magnitude.
func BenchmarkE1APSPQuantum(b *testing.B) {
	params := triangles.BenchParams()
	for _, n := range []int{8, 16, 32, 64, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := benchDigraph(b, n)
			b.ReportAllocs()
			var rounds int64
			for i := 0; i < b.N; i++ {
				res, err := core.Solve(g, core.Config{Strategy: core.StrategyQuantum, Params: &params, Seed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds/op")
		})
	}
}

// BenchmarkE2FindEdgesPromise regenerates E2 (Theorem 2): the
// FindEdgesWithPromise sweep for the quantum search.
func BenchmarkE2FindEdgesPromise(b *testing.B) {
	params := triangles.BenchParams()
	for _, n := range []int{16, 81, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := benchTriangleGraph(b, n)
			b.ReportAllocs()
			var rounds int64
			for i := 0; i < b.N; i++ {
				rep, err := triangles.FindEdgesWithPromise(triangles.Instance{G: g}, triangles.Options{
					Seed: uint64(i), Params: &params, Data: triangles.DataDirect,
				})
				if err != nil {
					b.Fatal(err)
				}
				rounds = rep.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds/op")
		})
	}
}

// BenchmarkE3MultiSearch regenerates E3 (Theorem 3): m truncated parallel
// searches through a shared evaluation procedure.
func BenchmarkE3MultiSearch(b *testing.B) {
	// m must be large enough relative to |X| that the Theorem 3 deviation
	// bound is negligible; below ~m=2000 with |X|=8 the injected
	// truncation failure fires with visible probability (by design).
	for _, m := range []int{4000, 8000} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			const size = 8
			rng := xrand.New(uint64(m))
			tables := make([][]bool, m)
			for i := range tables {
				tables[i] = make([]bool, size)
				tables[i][rng.IntN(size)] = true
			}
			beta := 8*float64(m)/size + 64
			var rounds int64
			for i := 0; i < b.N; i++ {
				nw, err := congest.NewNetwork(8)
				if err != nil {
					b.Fatal(err)
				}
				res, err := qsearch.MultiSearch(nw, qsearch.Spec{
					SpaceSize: size, Instances: m, Eval: qsearch.LocalEval(tables, 1), Beta: beta,
				}, rng.SplitN("i", i))
				if err != nil {
					b.Fatal(err)
				}
				if !res.AllFound() {
					b.Fatal("search failed")
				}
				rounds = nw.Rounds()
			}
			b.ReportMetric(float64(rounds), "rounds/op")
		})
	}
}

// BenchmarkE4Strategies regenerates E4: the strategy separation on one
// fixed FindEdgesWithPromise workload.
func BenchmarkE4Strategies(b *testing.B) {
	params := triangles.BenchParams()
	g := benchTriangleGraph(b, 81)
	b.Run("quantum", func(b *testing.B) {
		var rounds int64
		for i := 0; i < b.N; i++ {
			rep, err := triangles.FindEdgesWithPromise(triangles.Instance{G: g}, triangles.Options{
				Seed: uint64(i), Params: &params, Data: triangles.DataDirect,
			})
			if err != nil {
				b.Fatal(err)
			}
			rounds = rep.Rounds
		}
		b.ReportMetric(float64(rounds), "rounds/op")
	})
	b.Run("classical-scan", func(b *testing.B) {
		var rounds int64
		for i := 0; i < b.N; i++ {
			rep, err := triangles.FindEdgesWithPromise(triangles.Instance{G: g}, triangles.Options{
				Seed: uint64(i), Params: &params, Data: triangles.DataDirect, Mode: triangles.SearchClassicalScan,
			})
			if err != nil {
				b.Fatal(err)
			}
			rounds = rep.Rounds
		}
		b.ReportMetric(float64(rounds), "rounds/op")
	})
	b.Run("dolev", func(b *testing.B) {
		var rounds int64
		for i := 0; i < b.N; i++ {
			rep, err := triangles.DolevFindEdges(triangles.Instance{G: g}, nil)
			if err != nil {
				b.Fatal(err)
			}
			rounds = rep.Rounds
		}
		b.ReportMetric(float64(rounds), "rounds/op")
	})
}

// BenchmarkE5FindEdgesReduction regenerates E5 (Proposition 1): the
// sampling reduction on a hub workload.
func BenchmarkE5FindEdgesReduction(b *testing.B) {
	params := triangles.BenchParams()
	rng := xrand.New(5)
	g, err := graph.HubUndirected(96, 2, 16, rng)
	if err != nil {
		b.Fatal(err)
	}
	var rounds int64
	var calls int
	for i := 0; i < b.N; i++ {
		rep, err := triangles.FindEdges(triangles.Instance{G: g}, triangles.Options{
			Seed: uint64(i), Params: &params, Data: triangles.DataDirect,
		})
		if err != nil {
			b.Fatal(err)
		}
		rounds = rep.Rounds
		calls = rep.PromiseCalls
	}
	b.ReportMetric(float64(rounds), "rounds/op")
	b.ReportMetric(float64(calls), "promise-calls/op")
}

// BenchmarkE6DistanceProduct regenerates E6 (Proposition 2): distance
// product via binary search over FindEdges, per weight magnitude.
func BenchmarkE6DistanceProduct(b *testing.B) {
	rng := xrand.New(6)
	for _, m := range []int64{8, 128} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			mk := func(r *xrand.Source) *matrix.Matrix {
				mat := matrix.New(6)
				for i := 0; i < 6; i++ {
					for j := 0; j < 6; j++ {
						if r.Bool(0.2) {
							continue
						}
						mat.Set(i, j, r.Int64N(2*m+1)-m)
					}
				}
				return mat
			}
			x := mk(rng.SplitN("a", int(m)))
			y := mk(rng.SplitN("b", int(m)))
			var steps int
			for i := 0; i < b.N; i++ {
				_, stats, err := distprod.Product(x, y, distprod.Options{Solver: distprod.SolverDolev, Seed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
				steps = stats.BinarySearchSteps
			}
			b.ReportMetric(float64(steps), "findedges-calls/op")
		})
	}
}

// BenchmarkE7Squaring regenerates E7 (Proposition 3): repeated min-plus
// squaring.
func BenchmarkE7Squaring(b *testing.B) {
	for _, n := range []int{32, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := benchDigraph(b, n)
			ag := matrix.FromDigraph(g)
			var products int
			for i := 0; i < b.N; i++ {
				_, stats, err := matrix.APSPBySquaring(ag, matrix.DistanceProduct)
				if err != nil {
					b.Fatal(err)
				}
				products = stats.Products
			}
			b.ReportMetric(float64(products), "products/op")
		})
	}
}

// BenchmarkE8Router regenerates E8 (Lemma 1): König-colored two-round
// relay schedules.
func BenchmarkE8Router(b *testing.B) {
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := xrand.New(uint64(n))
			var msgs []congest.Message
			srcLoad := make([]int, n)
			dstLoad := make([]int, n)
			for i := 0; i < 50*n; i++ {
				s := rng.IntN(n)
				d := rng.IntN(n)
				if s == d || srcLoad[s] >= n || dstLoad[d] >= n {
					continue
				}
				srcLoad[s]++
				dstLoad[d]++
				msgs = append(msgs, congest.Message{Src: congest.NodeID(s), Dst: congest.NodeID(d)})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batches, err := congest.BuildRelaySchedule(n, msgs)
				if err != nil {
					b.Fatal(err)
				}
				if err := congest.VerifyRelaySchedule(n, batches); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE9Covering regenerates E9 (Lemma 2): covering construction and
// balance verification.
func BenchmarkE9Covering(b *testing.B) {
	params := triangles.PaperParams()
	for i := 0; i < b.N; i++ {
		st, err := triangles.CoveringTrial(256, params, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if st.Aborted {
			b.Fatal("unexpected abort")
		}
	}
}

// BenchmarkE10IdentifyClass regenerates E10 (Proposition 5).
func BenchmarkE10IdentifyClass(b *testing.B) {
	params := triangles.PaperParams()
	rng := xrand.New(10)
	g, err := graph.RandomUndirected(81, graph.UndirectedOpts{EdgeProb: 0.5, MinWeight: -10, MaxWeight: 12}, rng)
	if err != nil {
		b.Fatal(err)
	}
	var frac float64
	for i := 0; i < b.N; i++ {
		acc, err := triangles.IdentifyClassTrial(g, params, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if !acc.Aborted {
			frac = float64(acc.Satisfied) / float64(acc.Triples)
		}
	}
	b.ReportMetric(frac, "prop5-satisfied")
}

// BenchmarkE11Congestion regenerates E11: naive versus balanced query
// injection.
func BenchmarkE11Congestion(b *testing.B) {
	params := triangles.BenchParams()
	g := benchTriangleGraph(b, 81)
	var naive, balanced int64
	for i := 0; i < b.N; i++ {
		st, err := triangles.CongestionTrial(g, params, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		naive, balanced = st.NaiveMaxLinkLoad, st.BalancedMaxLinkLoad
	}
	b.ReportMetric(float64(naive), "naive-load")
	b.ReportMetric(float64(balanced), "balanced-load")
}

// BenchmarkE12Grover regenerates E12: the √|X| oracle-call core.
func BenchmarkE12Grover(b *testing.B) {
	for _, n := range []int{64, 1024} {
		b.Run(fmt.Sprintf("X=%d", n), func(b *testing.B) {
			rng := xrand.New(uint64(n))
			var calls int64
			for i := 0; i < b.N; i++ {
				target := rng.IntN(n)
				res := quantum.Search(n, func(x int) bool { return x == target }, rng.SplitN("i", i))
				if !res.Found {
					b.Fatal("search failed")
				}
				calls = res.OracleCalls()
			}
			b.ReportMetric(float64(calls), "oracle-calls/op")
		})
	}
}

// BenchmarkPublicAPISolve exercises the public façade end to end.
func BenchmarkPublicAPISolve(b *testing.B) {
	g := toPublicDigraph(b, benchDigraph(b, 12))
	var rounds int64
	for i := 0; i < b.N; i++ {
		res, err := SolveAPSP(g, WithStrategy(Quantum), WithParams(ScaledConstants), WithSeed(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds/op")
}

// BenchmarkSolverAmortizedQueries demonstrates the serving layer's
// amortization: answering 100 mixed ShortestPath/SSSP queries through a
// Solver (one pipeline run, batched projection against the cached result)
// versus paying a full SolveAPSP per query. The acceptance bar for the
// service layer is ≥10x between these two.
func BenchmarkSolverAmortizedQueries(b *testing.B) {
	const n = 8
	const numQueries = 100
	g := toPublicDigraph(b, benchDigraph(b, n))
	opts := []Option{WithStrategy(Quantum), WithParams(ScaledConstants), WithSeed(1)}
	var queries []PathQuery
	for i := 0; i < numQueries; i++ {
		queries = append(queries, PathQuery{Src: i % n, Dst: (i*3 + 1) % n})
	}

	b.Run("independent", func(b *testing.B) {
		// The pre-service cost model: every query pays the full pipeline.
		for i := 0; i < b.N; i++ {
			for q := 0; q < numQueries; q++ {
				res, err := SolveAPSP(g, opts...)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := ShortestPath(g, res, queries[q].Src, queries[q].Dst); err != nil && !errors.Is(err, ErrNoPath) {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("solver-batched", func(b *testing.B) {
		// One pipeline run per op (fresh solver), then the whole query
		// batch is projection against the cached result.
		for i := 0; i < b.N; i++ {
			s := NewSolver(opts...)
			answers, _, err := s.PathsBatch(g, queries)
			if err != nil {
				b.Fatal(err)
			}
			for _, a := range answers {
				if a.Err != nil && !errors.Is(a.Err, ErrNoPath) {
					b.Fatal(a.Err)
				}
			}
		}
	})
}

// BenchmarkSolverCachedResolve measures a cache-hit re-solve of an
// unchanged graph: content hash plus LRU lookup, zero simulator rounds.
func BenchmarkSolverCachedResolve(b *testing.B) {
	const n = 16
	g := toPublicDigraph(b, benchDigraph(b, n))
	s := NewSolver(WithStrategy(Quantum), WithParams(ScaledConstants), WithSeed(1))
	if _, err := s.Solve(g); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Solve(g)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Cached {
			b.Fatal("re-solve missed the cache")
		}
	}
}

// --- Ablations (DESIGN.md §5): measure the design choices in isolation.

// BenchmarkAblationRouting compares Lemma-1 balanced delivery against
// direct per-link sending on the ComputePairs Step-1-like load pattern
// (every node sources ~k·n words spread unevenly): the router is what
// keeps the placement at O(n^{1/4}) rounds.
func BenchmarkAblationRouting(b *testing.B) {
	const n = 64
	rng := xrand.New(1)
	var loads []congest.Load
	for s := 0; s < n; s++ {
		// Skewed destinations: half the traffic concentrates on a few
		// nodes, as block-aligned gathers do.
		for i := 0; i < 4*n; i++ {
			d := rng.IntN(n / 8)
			if rng.Bool(0.5) {
				d = rng.IntN(n)
			}
			if d == s {
				continue
			}
			loads = append(loads, congest.Load{Src: congest.NodeID(s), Dst: congest.NodeID(d), Words: 1})
		}
	}
	b.Run("direct", func(b *testing.B) {
		var rounds int64
		for i := 0; i < b.N; i++ {
			nw, err := congest.NewNetwork(n)
			if err != nil {
				b.Fatal(err)
			}
			if err := nw.ChargeDirect("ablation", loads); err != nil {
				b.Fatal(err)
			}
			rounds = nw.Rounds()
		}
		b.ReportMetric(float64(rounds), "rounds/op")
	})
	b.Run("lemma1-balanced", func(b *testing.B) {
		var rounds int64
		for i := 0; i < b.N; i++ {
			nw, err := congest.NewNetwork(n)
			if err != nil {
				b.Fatal(err)
			}
			if err := nw.ChargeBalanced("ablation", loads); err != nil {
				b.Fatal(err)
			}
			rounds = nw.Rounds()
		}
		b.ReportMetric(float64(rounds), "rounds/op")
	})
}

// BenchmarkAblationConstants compares the paper's verbatim protocol
// constants against the scaled preset on the same FindEdgesWithPromise
// workload: same asymptotics, ~3× the message volume.
func BenchmarkAblationConstants(b *testing.B) {
	g := benchTriangleGraph(b, 81)
	presets := map[string]triangles.Params{
		"paper":  triangles.PaperParams(),
		"scaled": triangles.BenchParams(),
	}
	for name := range presets {
		params := presets[name]
		b.Run(name, func(b *testing.B) {
			var rounds, words int64
			for i := 0; i < b.N; i++ {
				rep, err := triangles.FindEdgesWithPromise(triangles.Instance{G: g}, triangles.Options{
					Seed: uint64(i), Params: &params, Data: triangles.DataDirect,
				})
				if err != nil {
					b.Fatal(err)
				}
				rounds = rep.Rounds
				words = rep.Metrics.Words
			}
			b.ReportMetric(float64(rounds), "rounds/op")
			b.ReportMetric(float64(words), "words/op")
		})
	}
}

// BenchmarkAblationDataMode compares payload-carrying placement (DataFull)
// against charge-only accounting (DataDirect): identical rounds by
// construction, different wall-clock and memory.
func BenchmarkAblationDataMode(b *testing.B) {
	g := benchTriangleGraph(b, 81)
	params := triangles.BenchParams()
	for _, mode := range []struct {
		name string
		m    triangles.DataMode
	}{{"full", triangles.DataFull}, {"direct", triangles.DataDirect}} {
		b.Run(mode.name, func(b *testing.B) {
			var rounds int64
			for i := 0; i < b.N; i++ {
				rep, err := triangles.FindEdgesWithPromise(triangles.Instance{G: g}, triangles.Options{
					Seed: uint64(i), Params: &params, Data: mode.m,
				})
				if err != nil {
					b.Fatal(err)
				}
				rounds = rep.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds/op")
		})
	}
}
