// Scaling study: sweep the FindEdgesWithPromise problem size and print the
// round-complexity series for the quantum pipeline against the classical
// baselines, with fitted exponents — the textual rendition of the paper's
// n^{1/4} vs n^{1/3} vs √n separation.
package main

import (
	"fmt"
	"log"

	"qclique/internal/expfit"
	"qclique/internal/graph"
	"qclique/internal/triangles"
	"qclique/internal/xrand"
)

func main() {
	sizes := []int{16, 81, 256}
	params := triangles.BenchParams()

	quantum := expfit.Series{Name: "quantum Õ(n^1/4)"}
	classical := expfit.Series{Name: "classical-scan Õ(√n)"}
	dolev := expfit.Series{Name: "dolev Õ(n^1/3)"}
	calls := expfit.NewTable("n", "|X|=√n", "quantum oracle calls", "classical oracle calls")

	for _, n := range sizes {
		rng := xrand.New(uint64(n))
		g, err := graph.RandomUndirected(n, graph.UndirectedOpts{
			EdgeProb: 0.15, MinWeight: 1, MaxWeight: 40,
		}, rng)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := graph.PlantNegativeTriangles(g, 1+n/16, 30, rng.Split("p")); err != nil {
			log.Fatal(err)
		}

		q, err := triangles.FindEdgesWithPromise(triangles.Instance{G: g}, triangles.Options{
			Seed: 1, Params: &params, Data: triangles.DataDirect,
		})
		if err != nil {
			log.Fatal(err)
		}
		c, err := triangles.FindEdgesWithPromise(triangles.Instance{G: g}, triangles.Options{
			Seed: 1, Params: &params, Data: triangles.DataDirect, Mode: triangles.SearchClassicalScan,
		})
		if err != nil {
			log.Fatal(err)
		}
		d, err := triangles.DolevFindEdges(triangles.Instance{G: g}, nil)
		if err != nil {
			log.Fatal(err)
		}

		quantum.Points = append(quantum.Points, expfit.Point{N: n, Value: float64(q.Rounds)})
		classical.Points = append(classical.Points, expfit.Point{N: n, Value: float64(c.Rounds)})
		dolev.Points = append(dolev.Points, expfit.Point{N: n, Value: float64(d.Rounds)})

		var qc, cc int64
		for _, st := range q.Classes {
			qc += st.EvalCalls
		}
		for _, st := range c.Classes {
			cc += st.EvalCalls
		}
		sq := 0
		for (sq+1)*(sq+1) <= n {
			sq++
		}
		calls.AddF(n, sq, qc, cc)
	}

	fmt.Println("FindEdgesWithPromise rounds by strategy:")
	fmt.Println(expfit.RenderSeries([]expfit.Series{quantum, classical, dolev}))
	fmt.Println("oracle calls (the quadratic speedup of Theorem 2's search step):")
	fmt.Println(calls)
	fmt.Println("the quantum series grows with the flattest exponent; its polylog")
	fmt.Println("constants dominate at simulable n, exactly as an Õ(·) bound allows.")
}
