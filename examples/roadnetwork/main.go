// Road network: APSP on a synthetic two-level road graph (local grid +
// highways), solved with every pipeline the library provides, comparing
// the simulated CONGEST-CLIQUE round costs side by side.
package main

import (
	"fmt"
	"log"

	"qclique"
	"qclique/internal/graph"
	"qclique/internal/xrand"
)

func main() {
	rng := xrand.New(3)
	inner, err := graph.RoadNetwork(4, 4, 6, rng) // 16 intersections + 6 highways
	if err != nil {
		log.Fatal(err)
	}
	n := inner.N()
	g := qclique.NewDigraph(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if w, ok := inner.Weight(u, v); ok {
				if err := g.SetArc(u, v, w); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	fmt.Printf("road network: %d intersections, %d road segments\n\n", n, inner.ArcCount())
	fmt.Printf("%-18s %10s %10s %12s\n", "strategy", "rounds", "products", "subproblems")
	var reference [][]int64
	for _, s := range []qclique.Strategy{
		qclique.Gossip, qclique.DolevListing, qclique.ClassicalSearch, qclique.Quantum,
	} {
		res, err := qclique.SolveAPSP(g,
			qclique.WithStrategy(s),
			qclique.WithParams(qclique.ScaledConstants),
			qclique.WithSeed(11),
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18v %10d %10d %12d\n", s, res.Rounds, res.Products, res.FindEdgesCalls)
		if reference == nil {
			reference = res.Dist
		} else {
			for i := range reference {
				for j := range reference[i] {
					if reference[i][j] != res.Dist[i][j] {
						log.Fatalf("%v disagrees with reference at (%d,%d)", s, i, j)
					}
				}
			}
		}
	}
	fmt.Printf("\nall strategies agree on every distance ✓\n")
	fmt.Printf("example: corner-to-corner d(0,%d) = %d\n", n-1, reference[0][n-1])
}
