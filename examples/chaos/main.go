// Chaos engineering against the simulated transport: this example arms a
// solve with a deterministic fault plan and shows the two resilience
// layers absorbing it. First a solve survives ~1% message loss — the
// transport retransmits, distances are untouched, and the round accounting
// shows what the recovery cost. Then a forced transient outage exhausts
// the quantum pipeline's stage-retry budget and the graceful-degradation
// ladder answers with the (1+ε)-approximate rung instead of failing.
package main

import (
	"errors"
	"fmt"
	"log"

	"qclique"
)

func main() {
	// A symmetric weighted grid: the input class every degradation rung
	// accepts.
	const rows, cols = 5, 5
	const n = rows * cols
	g := qclique.NewDigraph(n)
	id := func(r, c int) int { return r*cols + c }
	set := func(a, b int, w int64) {
		if err := g.SetArc(a, b, w); err != nil {
			log.Fatal(err)
		}
		if err := g.SetArc(b, a, w); err != nil {
			log.Fatal(err)
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				set(id(r, c), id(r, c+1), int64(1+(r*7+c)%9))
			}
			if r+1 < rows {
				set(id(r, c), id(r+1, c), int64(1+(r*3+c*5)%9))
			}
		}
	}

	solver := qclique.NewSolver(
		qclique.WithStrategy(qclique.Quantum),
		qclique.WithParams(qclique.ScaledConstants),
		qclique.WithSeed(42),
	)

	// Baseline: the fault-free solve.
	clean, err := solver.Solve(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault-free:      %d rounds\n", clean.Rounds)

	// 1) Lossy links: every message has a 1%% chance of being dropped (and
	// small chances of duplication and delay). All of it is recovered by
	// the transport — distances are identical, only rounds go up.
	lossy, err := solver.Solve(g, qclique.WithFaultPlan(qclique.FaultPlan{
		Seed:           7,
		DropRate:       0.01,
		DupRate:        0.005,
		DelayRate:      0.005,
		MaxDelayRounds: 2,
	}))
	if err != nil {
		log.Fatal(err)
	}
	same := true
	for i := range clean.Dist {
		for j := range clean.Dist[i] {
			if clean.Dist[i][j] != lossy.Dist[i][j] {
				same = false
			}
		}
	}
	fmt.Printf("1%% message loss: %d rounds (+%d recovery surcharge), distances identical: %v\n",
		lossy.Rounds, lossy.Rounds-clean.Rounds, same)
	fmt.Printf("  injected: %d dropped, %d duplicated, %d delayed (%d retransmit rounds)\n",
		lossy.Faults.Dropped, lossy.Faults.Duplicated, lossy.Faults.Delayed,
		lossy.Faults.RetransmitRounds)

	// 2) A transient outage: every phase is corrupted until the 5-fault
	// budget is spent. The quantum pipeline retries a failing stage 4
	// times, so 5 unrecovered faults exhaust it exactly. Without
	// degradation that is a typed error...
	outage := qclique.FaultPlan{Seed: 7, CorruptRate: 1, MaxFaults: 5}
	_, err = solver.Solve(g, qclique.WithFaultPlan(outage))
	var fx *qclique.FaultExhaustedError
	if !errors.As(err, &fx) {
		log.Fatalf("expected fault exhaustion, got %v", err)
	}
	fmt.Printf("forced outage:   quantum exhausted its retry budget after %d corrupted phases\n",
		fx.Faults.Corrupted)

	// ...and with the graceful-degradation ladder it is a degraded answer:
	// the approx-quantum rung runs on the remaining (now empty) fault
	// budget and reports its stretch contract.
	degraded, err := solver.Solve(g, qclique.WithFaultPlan(outage), qclique.WithDegradation())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with ladder:     degraded %v -> %v (%s), guaranteed stretch %g\n",
		degraded.DegradedFrom, degraded.Strategy, degraded.DegradeReason,
		degraded.GuaranteedStretch)

	// The degraded distances still respect the rung's contract.
	worst := 1.0
	for i := range clean.Dist {
		for j := range clean.Dist[i] {
			if clean.Dist[i][j] > 0 {
				r := float64(degraded.Dist[i][j]) / float64(clean.Dist[i][j])
				if r > worst {
					worst = r
				}
			}
		}
	}
	fmt.Printf("observed stretch of the degraded answer: %.3f (bound %g)\n",
		worst, degraded.GuaranteedStretch)
}
