// Quickstart: build a small weighted digraph, solve APSP with the paper's
// quantum CONGEST-CLIQUE pipeline, and read the distances plus the
// simulated round cost.
package main

import (
	"fmt"
	"log"

	"qclique"
)

func main() {
	// A 16-node graph: a ring with a couple of negative-weight shortcuts
	// (no negative cycles).
	const n = 16
	g := qclique.NewDigraph(n)
	for i := 0; i < n; i++ {
		if err := g.SetArc(i, (i+1)%n, 3); err != nil {
			log.Fatal(err)
		}
	}
	if err := g.SetArc(0, 8, -2); err != nil {
		log.Fatal(err)
	}
	if err := g.SetArc(8, 12, -1); err != nil {
		log.Fatal(err)
	}

	res, err := qclique.SolveAPSP(g,
		qclique.WithStrategy(qclique.Quantum),
		qclique.WithParams(qclique.ScaledConstants),
		qclique.WithSeed(42),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("solved APSP on %d nodes with the %v pipeline\n", n, res.Strategy)
	fmt.Printf("simulated CONGEST-CLIQUE rounds: %d\n", res.Rounds)
	fmt.Printf("distance products: %d (Proposition 3: ⌈log₂ n⌉)\n", res.Products)
	fmt.Printf("negative-triangle subproblems: %d\n", res.FindEdgesCalls)
	fmt.Printf("d(0,12) = %d (ring would be 36; shortcuts give −2 + −1 = −3)\n", res.Dist[0][12])
	fmt.Printf("d(3,2)  = %d (all the way around the ring)\n", res.Dist[3][2])

	path, err := qclique.ShortestPath(g, res, 0, 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shortest path 0→12: %v\n", path)
}
