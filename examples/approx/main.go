// Approximate strategies: trade a bounded amount of accuracy for rounds.
// This example solves one symmetric road-like graph three ways — exact
// quantum, the (1+ε)-approximate quantum chain, and the (2+ε) skeleton —
// and prints rounds next to the guaranteed and observed stretch, so the
// accuracy/rounds trade is visible on real numbers.
package main

import (
	"fmt"
	"log"

	"qclique"
)

func main() {
	// A 6×6 grid of "roads" with symmetric positive weights: the input
	// class every strategy here accepts (the skeleton strategy requires
	// symmetry; both approximate strategies require nonnegative weights).
	const rows, cols = 6, 6
	const n = rows * cols
	g := qclique.NewDigraph(n)
	id := func(r, c int) int { return r*cols + c }
	set := func(a, b int, w int64) {
		if err := g.SetArc(a, b, w); err != nil {
			log.Fatal(err)
		}
		if err := g.SetArc(b, a, w); err != nil {
			log.Fatal(err)
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				set(id(r, c), id(r, c+1), int64(1+(r*7+c)%9))
			}
			if r+1 < rows {
				set(id(r, c), id(r+1, c), int64(1+(r*3+c*5)%9))
			}
		}
	}
	// One long symmetric "highway" across the grid.
	set(id(0, 0), id(rows-1, cols-1), 4)

	solve := func(label string, opts ...qclique.Option) *qclique.APSPResult {
		res, err := qclique.SolveAPSP(g, append([]qclique.Option{
			qclique.WithParams(qclique.ScaledConstants),
			qclique.WithSeed(42),
		}, opts...)...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s rounds=%8d  guaranteed stretch=%.2f  observed=%.4f\n",
			label, res.Rounds, res.GuaranteedStretch, res.ObservedStretch)
		return res
	}

	exact := solve("quantum", qclique.WithStrategy(qclique.Quantum))
	approx := solve("approx-quantum", qclique.WithStrategy(qclique.ApproxQuantum), qclique.WithEpsilon(0.5))
	skeleton := solve("approx-skeleton", qclique.WithStrategy(qclique.ApproxSkeleton), qclique.WithEpsilon(0.5))

	fmt.Printf("\n(1+ε) chain saved %.1f%% of the exact rounds; the skeleton runs on a different cost model entirely (%d rounds).\n",
		100*(1-float64(approx.Rounds)/float64(exact.Rounds)), skeleton.Rounds)

	// Spot-check one pair: approximate answers bound the truth from above.
	src, dst := id(0, 0), id(rows-1, 0)
	fmt.Printf("d(%d,%d): exact=%d approx-quantum=%d approx-skeleton=%d\n",
		src, dst, exact.Dist[src][dst], approx.Dist[src][dst], skeleton.Dist[src][dst])
}
