// Service example: the two ways to amortize APSP solves across a query
// workload.
//
// Library path: qclique.NewSolver gives a handle whose cache, singleflight
// dedup and worker pool make repeated and concurrent queries against the
// same graph charge the Õ(n^{1/4}·log W) pipeline once.
//
// Daemon path: the same layer over HTTP — this example launches the real
// cmd/apspd daemon on a free port and drives it exactly as an external
// client would (upload by content hash, solve, batched path queries,
// metrics). The client half uses nothing but net/http and encoding/json,
// so it can be copied verbatim into code outside this module.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"qclique"
)

func main() {
	const n = 24
	g := qclique.NewDigraph(n)
	for i := 0; i < n; i++ {
		if err := g.SetArc(i, (i+1)%n, 2); err != nil {
			log.Fatal(err)
		}
		if i%3 == 0 {
			if err := g.SetArc(i, (i+7)%n, -1); err != nil {
				log.Fatal(err)
			}
		}
	}

	// --- Library path: a cached, deduplicated solver handle.
	solver := qclique.NewSolver(
		qclique.WithStrategy(qclique.Quantum),
		qclique.WithParams(qclique.ScaledConstants),
		qclique.WithSeed(42),
		qclique.WithCacheSize(16),
	)
	res, err := solver.Solve(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fresh solve: %d simulated rounds (cached=%v)\n", res.Rounds, res.Cached)

	// 100 path queries against the one cached result: zero further
	// simulator rounds, per-destination reconstruction shared.
	var queries []qclique.PathQuery
	for i := 0; i < 100; i++ {
		queries = append(queries, qclique.PathQuery{Src: i % n, Dst: (i*7 + 3) % n})
	}
	answers, shared, err := solver.PathsBatch(g, queries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batched %d path queries against the cached solve (cached=%v)\n", len(answers), shared.Cached)
	fmt.Printf("example: %d→%d dist %d via %v\n", answers[0].Src, answers[0].Dst, answers[0].Dist, answers[0].Path)
	st := solver.Stats()
	fmt.Printf("solver stats: %d simulator runs, %d cache hits, %d rounds charged\n\n",
		st.Strategies["quantum"].Solves, st.Strategies["quantum"].CacheHits, st.Strategies["quantum"].RoundsCharged)

	// --- Daemon path: launch the real apspd and talk HTTP/JSON to it.
	addr, stop, err := startDaemon()
	if err != nil {
		log.Fatal(err)
	}
	defer stop()
	base := "http://" + addr
	client := &http.Client{Timeout: 60 * time.Second}

	call := func(method, path string, body any, out any) {
		var buf bytes.Buffer
		if body != nil {
			if err := json.NewEncoder(&buf).Encode(body); err != nil {
				log.Fatal(err)
			}
		}
		req, err := http.NewRequest(method, base+path, &buf)
		if err != nil {
			log.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("%s %s: status %d", method, path, resp.StatusCode)
		}
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				log.Fatal(err)
			}
		}
	}

	gj := map[string]any{"n": n}
	var arcs []map[string]any
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if w, ok := g.Weight(u, v); ok {
				arcs = append(arcs, map[string]any{"u": u, "v": v, "w": w})
			}
		}
	}
	gj["arcs"] = arcs

	var put struct {
		ID string `json:"id"`
	}
	call(http.MethodPut, "/graphs", gj, &put)
	fmt.Printf("uploaded graph, content id %.24s…\n", put.ID)

	solveBody := map[string]any{"strategy": "quantum", "preset": "scaled", "seed": 42}
	var s1, s2 struct {
		Rounds int64 `json:"rounds"`
		Cached bool  `json:"cached"`
	}
	call(http.MethodPost, "/graphs/"+put.ID+"/solve", solveBody, &s1)
	call(http.MethodPost, "/graphs/"+put.ID+"/solve", solveBody, &s2)
	fmt.Printf("daemon solve: %d rounds (cached=%v), re-solve cached=%v\n", s1.Rounds, s1.Cached, s2.Cached)

	batch := map[string]any{
		"strategy": "quantum", "preset": "scaled", "seed": 42,
		"queries": []map[string]int{{"src": 0, "dst": 13}, {"src": 3, "dst": 1}},
	}
	var batchResp struct {
		Results []struct {
			Src  int    `json:"src"`
			Dst  int    `json:"dst"`
			Dist *int64 `json:"dist"`
			Path []int  `json:"path"`
		} `json:"results"`
	}
	call(http.MethodPost, "/graphs/"+put.ID+"/paths:batch", batch, &batchResp)
	for _, r := range batchResp.Results {
		fmt.Printf("daemon path %d→%d: dist %d via %v\n", r.Src, r.Dst, *r.Dist, r.Path)
	}

	var metrics struct {
		Graphs        int `json:"graphs"`
		CachedResults int `json:"cached_results"`
		Strategies    map[string]struct {
			Solves    int64 `json:"solves"`
			CacheHits int64 `json:"cache_hits"`
		} `json:"strategies"`
	}
	call(http.MethodGet, "/metrics", nil, &metrics)
	fmt.Printf("daemon metrics: %d graphs, %d cached results, quantum solves=%d cache_hits=%d\n",
		metrics.Graphs, metrics.CachedResults,
		metrics.Strategies["quantum"].Solves, metrics.Strategies["quantum"].CacheHits)
}

// startDaemon builds cmd/apspd into a temp dir, launches it on a free
// localhost port and waits for /metrics to answer. Running the built
// binary directly (rather than `go run`) ensures stop() kills the actual
// daemon, not a wrapper that would orphan it.
func startDaemon() (addr string, stop func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	addr = ln.Addr().String()
	ln.Close()

	dir, err := os.MkdirTemp("", "apspd")
	if err != nil {
		return "", nil, err
	}
	bin := filepath.Join(dir, "apspd")
	build := exec.Command("go", "build", "-o", bin, "qclique/cmd/apspd")
	if out, err := build.CombinedOutput(); err != nil {
		os.RemoveAll(dir)
		return "", nil, fmt.Errorf("building apspd (run from inside the module): %w\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", addr)
	if err := cmd.Start(); err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	stop = func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		os.RemoveAll(dir)
	}

	client := &http.Client{Timeout: time.Second}
	for deadline := time.Now().Add(30 * time.Second); time.Now().Before(deadline); time.Sleep(100 * time.Millisecond) {
		resp, err := client.Get("http://" + addr + "/metrics")
		if err == nil {
			resp.Body.Close()
			return addr, stop, nil
		}
	}
	stop()
	return "", nil, fmt.Errorf("apspd did not become ready on %s", addr)
}
