// Arbitrage detection: the negative-triangle primitive applied to a
// currency market. Each currency pair trades at a symmetric over-the-
// counter quote whose weight is the integer-scaled −log effective rate
// including spread; a healthy market prices every three-currency round
// trip at a net cost (positive triangle weight), while a mispriced loop
// shows up as a triangle whose weights sum below zero. Finding every pair
// involved in such a loop is exactly the FindEdges problem (Section 3 of
// the paper) that the APSP reduction is built on.
package main

import (
	"fmt"
	"log"

	"qclique"
	"qclique/internal/graph"
	"qclique/internal/xrand"
)

func main() {
	const currencies = 32
	rng := xrand.New(7)

	// Healthy market: every pairwise quote carries a positive
	// spread-inclusive cost, so all round trips lose money.
	market, err := graph.RandomUndirected(currencies, graph.UndirectedOpts{
		EdgeProb: 0.6, MinWeight: 2, MaxWeight: 25,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}
	// Two mispriced three-currency loops slip in.
	planted, err := graph.PlantNegativeTriangles(market, 2, 20, rng.Split("misprice"))
	if err != nil {
		log.Fatal(err)
	}

	g := qclique.NewGraph(currencies)
	for u := 0; u < currencies; u++ {
		for v := u + 1; v < currencies; v++ {
			if w, ok := market.Weight(u, v); ok {
				if err := g.SetEdge(u, v, w); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	rep, err := qclique.FindNegativeTriangleEdges(g,
		qclique.WithStrategy(qclique.Quantum),
		qclique.WithParams(qclique.ScaledConstants),
		qclique.WithSeed(99),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("market with %d currencies, %d planted mispriced loops\n", currencies, len(planted))
	fmt.Printf("edges flagged as arbitrage-involved: %d (CONGEST-CLIQUE rounds: %d)\n",
		len(rep.Edges), rep.Rounds)

	flagged := make(map[[2]int]bool)
	for _, e := range rep.Edges {
		flagged[[2]int{e.U, e.V}] = true
	}
	for _, loop := range planted {
		hit := 0
		pairs := [][2]int{{loop[0], loop[1]}, {loop[0], loop[2]}, {loop[1], loop[2]}}
		for _, p := range pairs {
			a, b := p[0], p[1]
			if a > b {
				a, b = b, a
			}
			if flagged[[2]int{a, b}] {
				hit++
			}
		}
		fmt.Printf("  loop %d–%d–%d: %d/3 legs flagged\n", loop[0], loop[1], loop[2], hit)
	}

	// Cross-check against the classical listing baseline.
	check, err := qclique.FindNegativeTriangleEdges(g,
		qclique.WithStrategy(qclique.DolevListing),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classical listing agrees: %v (%d edges, %d rounds)\n",
		len(check.Edges) == len(rep.Edges), len(check.Edges), check.Rounds)
}
