package qclique

import (
	"errors"
	"testing"
)

// TestApproxPublicAPI drives both approximate strategies through the
// public façade and the cached Solver, checking the stretch contract and
// that epsilon participates in the solver's cache identity.
func TestApproxPublicAPI(t *testing.T) {
	const n = 10
	g := NewDigraph(n)
	for i := 0; i < n; i++ {
		w := int64(1 + i%4)
		if err := g.SetArc(i, (i+1)%n, w); err != nil {
			t.Fatal(err)
		}
		if err := g.SetArc((i+1)%n, i, w); err != nil {
			t.Fatal(err)
		}
	}

	exact, err := SolveAPSP(g, WithParams(ScaledConstants), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if exact.GuaranteedStretch != 1 || exact.ObservedStretch != 1 || exact.Epsilon != 0 {
		t.Errorf("exact solve stretch fields: %+v", exact)
	}

	for _, strat := range []Strategy{ApproxQuantum, ApproxSkeleton} {
		res, err := SolveAPSP(g, WithStrategy(strat), WithParams(ScaledConstants), WithSeed(1), WithEpsilon(0.5))
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if res.ObservedStretch < 1 || res.ObservedStretch > res.GuaranteedStretch {
			t.Errorf("%v: observed %v outside [1, %v]", strat, res.ObservedStretch, res.GuaranteedStretch)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if res.Dist[i][j] < exact.Dist[i][j] {
					t.Fatalf("%v: d(%d,%d) = %d undercuts exact %d", strat, i, j, res.Dist[i][j], exact.Dist[i][j])
				}
			}
		}
	}

	if _, err := SolveAPSP(g, WithStrategy(ApproxQuantum)); err == nil {
		t.Error("approx strategy without WithEpsilon must fail")
	}
	if _, err := SolveAPSP(g, WithEpsilon(0.5)); err == nil {
		t.Error("WithEpsilon on the exact default must fail")
	}

	solver := NewSolver(WithStrategy(ApproxQuantum), WithParams(ScaledConstants), WithEpsilon(0.5))
	r1, err := solver.Solve(g)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached {
		t.Error("first solver call reported cached")
	}
	r2, err := solver.Solve(g, WithEpsilon(0.75))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cached {
		t.Error("different epsilon must not share a cache entry")
	}
	r3, err := solver.Solve(g)
	if err != nil {
		t.Fatal(err)
	}
	if !r3.Cached {
		t.Error("same epsilon must hit the cache")
	}

	// Path reconstruction refuses approximate results with a dedicated
	// error rather than walking snapped distances into a wrong path.
	if _, _, err := solver.ShortestPath(g, 0, 3); !errors.Is(err, ErrApproxPaths) {
		t.Errorf("Solver.ShortestPath under approx strategy: err = %v, want ErrApproxPaths", err)
	}
	if _, err := ShortestPath(g, r3, 0, 3); !errors.Is(err, ErrApproxPaths) {
		t.Errorf("ShortestPath on approx result: err = %v, want ErrApproxPaths", err)
	}
}

// TestUndefinedDistanceExported pins the public error value against a
// hand-assembled result carrying a −∞ region.
func TestUndefinedDistanceExported(t *testing.T) {
	g := NewDigraph(2)
	if err := g.SetArc(0, 1, -1); err != nil {
		t.Fatal(err)
	}
	if err := g.SetArc(1, 0, 0); err != nil {
		t.Fatal(err)
	}
	res := &APSPResult{Dist: [][]int64{{-Inf, -Inf}, {-Inf, -Inf}}}
	if _, err := ShortestPath(g, res, 0, 1); !errors.Is(err, ErrUndefinedDistance) {
		t.Errorf("ShortestPath over a −∞ region: err = %v, want ErrUndefinedDistance", err)
	}
}
