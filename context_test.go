package qclique_test

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"qclique"
)

func cancelDigraph(t *testing.T, n int) *qclique.Digraph {
	t.Helper()
	g := qclique.NewDigraph(n)
	for i := 0; i < n; i++ {
		for _, off := range []int{1, 2, 5} {
			if err := g.SetArc(i, (i+off)%n, int64(1+(i+off)%7)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return g
}

// TestSolveAPSPContextAlreadyCancelled pins the public cancellation
// contract: an already-cancelled context returns context.Canceled in
// well under 100ms at n=64.
func TestSolveAPSPContextAlreadyCancelled(t *testing.T) {
	g := cancelDigraph(t, 64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := qclique.SolveAPSPContext(ctx, g, qclique.WithParams(qclique.ScaledConstants))
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("cancelled solve took %v, want < 100ms", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestWithTimeoutStopsTheSolve pins the WithTimeout option end to end.
func TestWithTimeoutStopsTheSolve(t *testing.T) {
	g := cancelDigraph(t, 48)
	_, err := qclique.SolveAPSP(g,
		qclique.WithParams(qclique.ScaledConstants),
		qclique.WithTimeout(2*time.Millisecond))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestSolverSolveContextCancelThenResolve: a cancelled solve must leave
// the solver fully usable — the retry runs fresh (not cached) and is
// bit-identical to an independent solve.
func TestSolverSolveContextCancelThenResolve(t *testing.T) {
	g := cancelDigraph(t, 32)
	s := qclique.NewSolver(qclique.WithParams(qclique.ScaledConstants))

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	if _, err := s.SolveContext(ctx, g); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}

	got, err := s.Solve(g)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cached {
		t.Fatal("retry after cancellation reported cached")
	}
	want, err := qclique.SolveAPSP(g, qclique.WithParams(qclique.ScaledConstants))
	if err != nil {
		t.Fatal(err)
	}
	if got.Rounds != want.Rounds || !reflect.DeepEqual(got.Dist, want.Dist) {
		t.Fatal("solver retry after cancellation differs from an independent solve")
	}

	st := s.Stats().Strategies["quantum"]
	if st.Cancelled != 1 || st.Solves != 1 {
		t.Fatalf("stats = %+v, want Cancelled=1 Solves=1", st)
	}
	if len(st.StageRounds) == 0 {
		t.Fatal("per-stage rounds missing from solver stats")
	}
	var sum int64
	for _, r := range st.StageRounds {
		sum += r
	}
	if sum != st.RoundsCharged {
		t.Fatalf("stage rounds roll up to %d, want %d", sum, st.RoundsCharged)
	}
}

// TestAPSPResultStagesSumToRounds pins the public stage telemetry.
func TestAPSPResultStagesSumToRounds(t *testing.T) {
	g := cancelDigraph(t, 16)
	res, err := qclique.SolveAPSP(g, qclique.WithParams(qclique.ScaledConstants))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) == 0 {
		t.Fatal("no stage telemetry on the public result")
	}
	var sum int64
	for _, sg := range res.Stages {
		sum += sg.Rounds
	}
	if sum != res.Rounds {
		t.Fatalf("stage rounds sum %d != rounds %d", sum, res.Rounds)
	}
}

// TestStrategiesEnumeration pins the public registry surface.
func TestStrategiesEnumeration(t *testing.T) {
	infos := qclique.Strategies()
	if len(infos) < 6 {
		t.Fatalf("Strategies() = %d entries, want at least the 6 built-ins", len(infos))
	}
	byName := map[string]qclique.StrategyInfo{}
	for _, si := range infos {
		byName[si.Name] = si
	}
	if si, ok := byName["approx-skeleton"]; !ok || !si.Approximate || si.Guarantee(0.5) != 2.5 {
		t.Fatalf("approx-skeleton info wrong: %+v", si)
	}
	if si, ok := byName["quantum"]; !ok || si.Approximate || si.Guarantee(0) != 1 {
		t.Fatalf("quantum info wrong: %+v", si)
	}
	for alias, want := range map[string]qclique.Strategy{
		"classical":     qclique.ClassicalSearch,
		"dolev-listing": qclique.DolevListing,
		"skeleton":      qclique.ApproxSkeleton,
		"quantum":       qclique.Quantum,
	} {
		got, err := qclique.ParseStrategy(alias)
		if err != nil {
			t.Errorf("ParseStrategy(%q): %v", alias, err)
			continue
		}
		if got != want {
			t.Errorf("ParseStrategy(%q) = %v, want %v", alias, got, want)
		}
	}
	if _, err := qclique.ParseStrategy("warp-drive"); err == nil {
		t.Error("unknown strategy accepted")
	}
}
