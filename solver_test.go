package qclique

import (
	"errors"
	"sync"
	"testing"
)

// TestSolverCachedResolveZeroRounds: the headline serving property — a
// re-solve of an unchanged graph performs zero simulator rounds and
// returns a bit-identical result.
func TestSolverCachedResolveZeroRounds(t *testing.T) {
	g := buildRandomDigraph(t, 10, 9)
	s := NewSolver(WithStrategy(Quantum), WithParams(ScaledConstants), WithSeed(5))

	fresh, err := s.Solve(g)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Cached {
		t.Fatal("first solve must not be cached")
	}
	charged := s.Stats().Strategies["quantum"].RoundsCharged
	if charged != fresh.Rounds {
		t.Fatalf("charged %d rounds, result reports %d", charged, fresh.Rounds)
	}

	cached, err := s.Solve(g)
	if err != nil {
		t.Fatal(err)
	}
	if !cached.Cached {
		t.Fatal("re-solve of an unchanged graph must be cached")
	}
	if got := s.Stats().Strategies["quantum"].RoundsCharged; got != charged {
		t.Fatalf("cached re-solve charged simulator rounds: %d -> %d", charged, got)
	}
	if cached.Rounds != fresh.Rounds {
		t.Fatalf("cached result reports %d rounds, fresh %d", cached.Rounds, fresh.Rounds)
	}
	for i := range fresh.Dist {
		for j := range fresh.Dist[i] {
			if cached.Dist[i][j] != fresh.Dist[i][j] {
				t.Fatalf("d(%d,%d): cached %d != fresh %d", i, j, cached.Dist[i][j], fresh.Dist[i][j])
			}
		}
	}

	// Mutating the graph changes its content identity: a new solve runs.
	if err := g.SetArc(0, 5, 1); err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatal("mutated graph must not be served from the stale entry")
	}
}

// TestSolverMatchesSolveAPSP: the cached path returns exactly what the
// one-shot entry point computes.
func TestSolverMatchesSolveAPSP(t *testing.T) {
	g := buildRandomDigraph(t, 12, 31)
	want, err := SolveAPSP(g, WithStrategy(Gossip), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	s := NewSolver(WithStrategy(Gossip), WithSeed(3))
	for round := 0; round < 2; round++ {
		got, err := s.Solve(g)
		if err != nil {
			t.Fatal(err)
		}
		if got.Rounds != want.Rounds || got.Products != want.Products {
			t.Fatalf("round %d: accounting (%d,%d) != SolveAPSP (%d,%d)",
				round, got.Rounds, got.Products, want.Rounds, want.Products)
		}
		for i := range want.Dist {
			for j := range want.Dist[i] {
				if got.Dist[i][j] != want.Dist[i][j] {
					t.Fatalf("round %d: d(%d,%d) = %d, want %d", round, i, j, got.Dist[i][j], want.Dist[i][j])
				}
			}
		}
	}
}

// TestSolverSSSPAndPaths: SSSP rows and batch paths share one cached solve.
func TestSolverSSSPAndPaths(t *testing.T) {
	g := buildRandomDigraph(t, 12, 77)
	s := NewSolver(WithStrategy(Gossip))

	full, err := s.Solve(g)
	if err != nil {
		t.Fatal(err)
	}
	var queries []PathQuery
	for src := 0; src < g.N(); src++ {
		row, res, err := s.SSSP(g, src)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Cached {
			t.Fatalf("SSSP(src=%d) re-ran the simulator", src)
		}
		for v := range row {
			if row[v] != full.Dist[src][v] {
				t.Fatalf("d(%d,%d) = %d, want %d", src, v, row[v], full.Dist[src][v])
			}
		}
		for dst := 0; dst < g.N(); dst++ {
			queries = append(queries, PathQuery{Src: src, Dst: dst})
		}
	}

	answers, res, err := s.PathsBatch(g, queries)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Fatal("batch must reuse the cached solve")
	}
	for _, a := range answers {
		want := full.Dist[a.Src][a.Dst]
		if want >= Inf {
			if !errors.Is(a.Err, ErrNoPath) {
				t.Fatalf("(%d,%d): err = %v, want ErrNoPath", a.Src, a.Dst, a.Err)
			}
			continue
		}
		if a.Err != nil || a.Dist != want {
			t.Fatalf("(%d,%d): dist %d err %v, want %d", a.Src, a.Dst, a.Dist, a.Err, want)
		}
		var total int64
		for i := 0; i+1 < len(a.Path); i++ {
			w, ok := g.Weight(a.Path[i], a.Path[i+1])
			if !ok {
				t.Fatalf("(%d,%d): broken path %v", a.Src, a.Dst, a.Path)
			}
			total += w
		}
		if total != want {
			t.Fatalf("(%d,%d): path weight %d, want %d", a.Src, a.Dst, total, want)
		}
	}

	path, d, err := s.ShortestPath(g, 0, g.N()-1)
	if err == nil {
		if d != full.Dist[0][g.N()-1] || path[0] != 0 || path[len(path)-1] != g.N()-1 {
			t.Fatalf("ShortestPath = %v (%d), inconsistent with solve", path, d)
		}
	} else if !errors.Is(err, ErrNoPath) {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.Strategies["gossip"].Solves != 1 {
		t.Fatalf("whole flow ran %d solves, want 1", st.Strategies["gossip"].Solves)
	}
	if st.PathQueries != int64(len(queries)) {
		t.Fatalf("path queries = %d, want %d", st.PathQueries, len(queries))
	}
}

// TestSolverConcurrentDedup: concurrent identical solves through the
// public API run the simulator once.
func TestSolverConcurrentDedup(t *testing.T) {
	g := buildRandomDigraph(t, 8, 2)
	s := NewSolver(WithStrategy(Quantum), WithParams(ScaledConstants))

	const callers = 6
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait()
			_, errs[i] = s.Solve(g)
		}(i)
	}
	start.Done()
	done.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if got := s.Stats().Strategies["quantum"].Solves; got != 1 {
		t.Fatalf("simulator ran %d times for %d concurrent identical solves, want 1", got, callers)
	}
}

// TestSolverCacheSizeOption: WithCacheSize(1) evicts the older of two
// graphs.
func TestSolverCacheSizeOption(t *testing.T) {
	g1 := buildRandomDigraph(t, 9, 1)
	g2 := buildRandomDigraph(t, 9, 2)
	s := NewSolver(WithStrategy(Gossip), WithCacheSize(1))
	for _, g := range []*Digraph{g1, g2, g1} {
		if _, err := s.Solve(g); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().Strategies["gossip"].Solves; got != 3 {
		t.Fatalf("solves = %d, want 3 under a size-1 cache", got)
	}
	if got := s.Stats().CachedResults; got != 1 {
		t.Fatalf("cached results = %d, want 1", got)
	}
}

// TestSolverValidation covers the defensive paths.
func TestSolverValidation(t *testing.T) {
	var nilSolver *Solver
	if _, err := nilSolver.Solve(NewDigraph(2)); err == nil {
		t.Error("nil solver must fail")
	}
	s := NewSolver()
	if _, err := s.Solve(nil); err == nil {
		t.Error("nil graph must fail")
	}
	if _, _, err := s.SSSP(nil, 0); err == nil {
		t.Error("SSSP nil graph must fail")
	}
	if _, _, err := s.SSSP(NewDigraph(3), 9); err == nil {
		t.Error("SSSP bad source must fail")
	}
	if _, _, err := s.PathsBatch(nil, nil); err == nil {
		t.Error("PathsBatch nil graph must fail")
	}
	if _, _, err := s.ShortestPath(NewDigraph(3), 0, 9, WithStrategy(Gossip)); err == nil {
		t.Error("ShortestPath bad dst must fail")
	}
}
