package qclique

import (
	"errors"
	"testing"
)

func TestShortestPathPublic(t *testing.T) {
	d := buildRandomDigraph(t, 12, 77)
	res, err := SolveAPSP(d, WithStrategy(Gossip))
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < d.N(); src++ {
		for dst := 0; dst < d.N(); dst++ {
			path, err := ShortestPath(d, res, src, dst)
			if res.Dist[src][dst] >= Inf {
				if !errors.Is(err, ErrNoPath) {
					t.Fatalf("(%d,%d): err = %v, want ErrNoPath", src, dst, err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("(%d,%d): %v", src, dst, err)
			}
			// Validate the path weight against the distance.
			var total int64
			for i := 0; i+1 < len(path); i++ {
				w, ok := d.Weight(path[i], path[i+1])
				if !ok {
					t.Fatalf("broken path %v", path)
				}
				total += w
			}
			if total != res.Dist[src][dst] {
				t.Fatalf("(%d,%d): path weight %d, distance %d", src, dst, total, res.Dist[src][dst])
			}
		}
	}
}

func TestShortestPathValidation(t *testing.T) {
	d := buildRandomDigraph(t, 8, 1)
	res, err := SolveAPSP(d, WithStrategy(Gossip))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ShortestPath(nil, res, 0, 1); err == nil {
		t.Error("nil graph must fail")
	}
	if _, err := ShortestPath(d, nil, 0, 1); err == nil {
		t.Error("nil result must fail")
	}
	other := buildRandomDigraph(t, 10, 2)
	if _, err := ShortestPath(other, res, 0, 1); err == nil {
		t.Error("mismatched result must fail")
	}
}

func TestSolveSSSPPublic(t *testing.T) {
	d := buildRandomDigraph(t, 12, 5)
	full, err := SolveAPSP(d, WithStrategy(Gossip))
	if err != nil {
		t.Fatal(err)
	}
	row, res, err := SolveSSSP(d, 3, WithStrategy(Gossip))
	if err != nil {
		t.Fatal(err)
	}
	for v := range row {
		if row[v] != full.Dist[3][v] {
			t.Fatalf("d(3,%d) = %d, want %d", v, row[v], full.Dist[3][v])
		}
	}
	if res.Rounds <= 0 {
		t.Error("SSSP must report rounds")
	}
	if _, _, err := SolveSSSP(d, 99); err == nil {
		t.Error("bad source must fail")
	}
	if _, _, err := SolveSSSP(nil, 0); err == nil {
		t.Error("nil graph must fail")
	}
}
