package qclique

// Solver: the reusable handle that makes repeated and concurrent workloads
// first-class. SolveAPSP charges the full Õ(n^{1/4}·log W) pipeline on
// every call; a Solver owns an LRU cache keyed by graph content hash (plus
// strategy, preset and seed), deduplicates concurrent identical solves
// onto one simulator run, and answers batched path/SSSP queries against
// one shared APSP result. cmd/apspd exposes the same layer over HTTP.

import (
	"context"
	"errors"
	"fmt"

	"qclique/internal/serve"
)

// Solver is a reusable APSP solve handle with a result cache and a worker
// pool. Safe for concurrent use; the zero value is not usable — construct
// with NewSolver.
type Solver struct {
	defaults Options
	svc      *serve.Service
}

// NewSolver returns a Solver whose defaults are the given options; each
// query method accepts further options that override the defaults for that
// call. WithCacheSize bounds the retained results, WithWorkers bounds the
// host-side parallelism shared by solves and batch queries.
func NewSolver(opts ...Option) *Solver {
	o := buildOptions(opts)
	return &Solver{
		defaults: o,
		svc: serve.New(serve.Config{
			CacheSize:       o.CacheSize,
			Workers:         o.Workers,
			MaxInflight:     o.MaxInflight,
			QueueDepth:      o.QueueDepth,
			OverloadDegrade: o.OverloadDegrade,
		}),
	}
}

// merged applies per-call options over the solver defaults.
func (s *Solver) merged(opts []Option) Options {
	o := s.defaults
	for _, fn := range opts {
		fn(&o)
	}
	o.normalize()
	return o
}

// spec translates the public configuration into the serving layer's solve
// identity — the one place the two vocabularies meet, which is also what
// lets Options.Validate reuse serve's SolveSpec.Validate verbatim.
func (o Options) spec() serve.SolveSpec {
	o.normalize()
	return serve.SolveSpec{
		Strategy:  o.Strategy.toCore(),
		Preset:    o.Preset.servePreset(),
		Seed:      o.Seed,
		Epsilon:   o.Epsilon,
		Workers:   o.Workers,
		Transport: o.Transport,
		Faults:    o.Faults.toCore(),
		Degrade:   o.Degrade,
	}
}

// resultFromServe exports a cache-owned result. The O(n²) row copy is
// deliberate: returned rows are the caller's to mutate, and handing out
// views of the shared cached matrix would let one caller corrupt every
// other caller's result. At serviceable n this costs microseconds against
// a pipeline run measured in seconds.
func resultFromServe(sr *serve.SolveResult, strategy Strategy) *APSPResult {
	n := sr.Res.Dist.N()
	dist := make([][]int64, n)
	for i := range dist {
		dist[i] = sr.Res.Dist.Row(i)
	}
	res := &APSPResult{
		Dist:              dist,
		Rounds:            sr.Res.Rounds,
		Products:          sr.Res.Products,
		FindEdgesCalls:    sr.Res.FindEdgesCalls,
		Strategy:          strategy,
		Transport:         sr.Res.Transport.Transport,
		Cached:            sr.Cached,
		Epsilon:           sr.Res.Epsilon,
		GuaranteedStretch: sr.Res.GuaranteedStretch,
		ObservedStretch:   sr.Res.ObservedStretch,
		Faults:            countersFromCore(sr.Res.Metrics.Faults),
		Stages:            stagesFromCore(sr.Res.Stages),
		dist:              sr.Res.Dist,
	}
	if sr.Degraded {
		// The ladder answered with a fallback rung: report the strategy that
		// actually ran, and the requested one in DegradedFrom.
		res.Degraded = true
		res.Strategy = fromCore(sr.Res.Strategy)
		res.DegradedFrom = fromCore(sr.DegradedFrom)
		res.DegradeReason = sr.DegradeReason
	}
	if sr.Plan != nil {
		// The planner resolved StrategyAuto: report the pipeline that ran
		// (under degradation, the rung — DegradedFrom already names the
		// planned strategy) and the decision's prediction.
		res.Planned = true
		res.Strategy = fromCore(sr.Res.Strategy)
		res.PlannerReason = sr.Plan.Reason
		res.PredictedRounds = sr.Plan.PredictedRounds
		res.PredictedWallNs = sr.Plan.PredictedWallNs
	}
	return res
}

// Solve computes (or serves from cache) exact APSP distances for g. A
// cached or deduplicated call performs zero simulator rounds; the returned
// result still reports the rounds the original solve charged.
func (s *Solver) Solve(g *Digraph, opts ...Option) (*APSPResult, error) {
	return s.SolveContext(context.Background(), g, opts...)
}

// SolveContext is Solve honoring a context (optionally tightened by
// WithTimeout): a cancelled or deadline-expired solve stops at the
// pipeline's next checkpoint with an error wrapping the context error,
// nothing is cached, and the solver remains fully usable — re-solving the
// same graph afterwards runs fresh and returns results bit-identical to
// an uncancelled solve.
func (s *Solver) SolveContext(ctx context.Context, g *Digraph, opts ...Option) (*APSPResult, error) {
	if s == nil || s.svc == nil {
		return nil, errors.New("qclique: use NewSolver")
	}
	if g == nil {
		return nil, errors.New("qclique: nil graph")
	}
	o := s.merged(opts)
	ctx, cancel := o.solveCtx(ctx)
	defer cancel()
	sr, err := s.svc.SolveGraphContext(ctx, g.g, o.spec())
	if err != nil {
		return nil, mapServeErr(err)
	}
	return resultFromServe(sr, o.Strategy), nil
}

// SSSP computes single-source shortest distances from src, sharing the
// solver cache: any number of sources against one graph charge the
// pipeline once.
func (s *Solver) SSSP(g *Digraph, src int, opts ...Option) ([]int64, *APSPResult, error) {
	if s == nil || s.svc == nil {
		return nil, nil, errors.New("qclique: use NewSolver")
	}
	if g == nil {
		return nil, nil, errors.New("qclique: nil graph")
	}
	if src < 0 || src >= g.N() {
		return nil, nil, fmt.Errorf("qclique: source %d out of range", src)
	}
	o := s.merged(opts)
	sr, err := s.svc.SolveGraph(g.g, o.spec())
	if err != nil {
		return nil, nil, mapServeErr(err)
	}
	return sr.Res.Dist.Row(src), resultFromServe(sr, o.Strategy), nil
}

// ShortestPath returns one shortest path src→dst and its length, solving
// (or reusing the cached solve of) g first. Unreachable pairs yield
// ErrNoPath. Approximate strategies yield ErrApproxPaths — snapped
// distances carry no tight-successor structure to walk.
func (s *Solver) ShortestPath(g *Digraph, src, dst int, opts ...Option) ([]int, int64, error) {
	if s == nil || s.svc == nil {
		return nil, 0, errors.New("qclique: use NewSolver")
	}
	if g == nil {
		return nil, 0, errors.New("qclique: nil graph")
	}
	o := s.merged(opts)
	if o.Strategy.toCore().IsApproximate() {
		return nil, 0, ErrApproxPaths
	}
	// Path reconstruction needs exact tight-successor structure: confine a
	// planned (StrategyAuto) solve to the exact catalog.
	sr, err := s.svc.SolveGraph(g.g, o.spec().ExactPlanning())
	if err != nil {
		return nil, 0, mapServeErr(err)
	}
	path, err := sr.Oracle.Path(src, dst)
	if err != nil {
		return nil, 0, err
	}
	d, err := sr.Oracle.Dist(src, dst)
	if err != nil {
		return nil, 0, err
	}
	return path, d, nil
}

// PathQuery is one (src, dst) request in a PathsBatch call.
type PathQuery struct {
	Src, Dst int
}

// PathAnswer is the response to one PathQuery. Err carries per-query
// failures (ErrNoPath for unreachable pairs) without failing the batch.
type PathAnswer struct {
	Src, Dst int
	// Dist is the shortest distance; Inf when unreachable.
	Dist int64
	// Path is the vertex sequence src..dst; nil when Err is set.
	Path []int
	Err  error
}

// PathsBatch answers all queries against one (cached) APSP solve of g,
// fanning the per-query reconstruction across the worker pool and reusing
// per-destination successor structure across queries. The returned result
// describes the shared solve.
func (s *Solver) PathsBatch(g *Digraph, queries []PathQuery, opts ...Option) ([]PathAnswer, *APSPResult, error) {
	if s == nil || s.svc == nil {
		return nil, nil, errors.New("qclique: use NewSolver")
	}
	if g == nil {
		return nil, nil, errors.New("qclique: nil graph")
	}
	o := s.merged(opts)
	qs := make([]serve.PathQuery, len(queries))
	for i, q := range queries {
		qs[i] = serve.PathQuery{Src: q.Src, Dst: q.Dst}
	}
	answers, sr, err := s.svc.PathsBatchGraph(g.g, o.spec(), qs)
	if err != nil {
		return nil, nil, mapServeErr(err)
	}
	out := make([]PathAnswer, len(answers))
	for i, a := range answers {
		out[i] = PathAnswer{Src: a.Src, Dst: a.Dst, Dist: a.Dist, Path: a.Path, Err: a.Err}
	}
	return out, resultFromServe(sr, o.Strategy), nil
}

// StrategyStats is the per-strategy accounting of a Solver.
type StrategyStats struct {
	// Requests counts solve requests routed through the cache.
	Requests int64
	// CacheHits counts requests served without running the simulator.
	CacheHits int64
	// Deduped counts requests that piggybacked on a concurrent identical
	// solve.
	Deduped int64
	// Solves counts actual simulator executions.
	Solves int64
	// Errors counts failed executions.
	Errors int64
	// Cancelled counts executions stopped by their context before
	// completing.
	Cancelled int64
	// FaultFailures counts executions that exhausted their stage-retry
	// budget on injected faults; Retries totals the stage re-runs spent
	// recovering.
	FaultFailures int64
	Retries       int64
	// Degraded counts requests the degradation ladder answered with a
	// fallback strategy; BreakerSkips counts solves refused by this
	// strategy's open circuit breaker.
	Degraded     int64
	BreakerSkips int64
	// Faults is the cumulative injected-fault accounting across this
	// strategy's executions.
	Faults FaultCounters
	// RoundsCharged totals simulated rounds across executions; cache hits
	// charge nothing.
	RoundsCharged int64
	// StageRounds maps stage name to the cumulative simulated rounds that
	// stage charged across this strategy's executions — the serving-layer
	// rollup of the per-solve Stages breakdown.
	StageRounds map[string]int64
}

// AdmissionStats is the Solver's overload-resilience accounting: the
// admission controller's configuration and point-in-time gauges, plus the
// cumulative overload counters.
type AdmissionStats struct {
	// MaxInflight/QueueDepth echo the configured caps (0 = unbounded).
	MaxInflight int
	QueueDepth  int
	// Inflight/QueuedNow are point-in-time gauges of executing and queued
	// solves.
	Inflight  int
	QueuedNow int
	// Queued counts calls that had to wait for an execution slot;
	// QueueWaitNs totals the wall time admitted calls spent waiting.
	Queued      int64
	QueueWaitNs int64
	// Shed counts calls refused with an *OverloadError — never counted in
	// StrategyStats.Cancelled.
	Shed int64
	// OverloadDegraded counts solves the overload monitor answered with a
	// cheaper strategy (DegradeReason "overload"); PanicsRecovered counts
	// panicking pipelines converted into errors.
	OverloadDegraded int64
	PanicsRecovered  int64
}

// PlannerStats is the Solver's strategy-planner accounting: how many
// StrategyAuto requests were planned, which strategies the planner chose,
// and the cumulative prediction error of its cost model against the
// observed executions (cached and degraded planned solves never run the
// predicted pipeline, so they count decisions but not observations).
type PlannerStats struct {
	// Decisions counts planned (StrategyAuto) solve requests; Chosen maps
	// strategy name to how often the planner picked it.
	Decisions int64
	Chosen    map[string]int64
	// ObservedSolves counts planned solves that executed the planned
	// pipeline to completion — the denominator of the error sums below.
	ObservedSolves int64
	// PredictedRounds/ObservedRounds/RoundsErrorAbs accumulate the
	// planner's round predictions, the rounds actually charged, and the
	// absolute per-decision error.
	PredictedRounds int64
	ObservedRounds  int64
	RoundsErrorAbs  int64
	// PredictedWallNs/ObservedWallNs/WallErrorNsAbs do the same for
	// wall-clock time.
	PredictedWallNs int64
	ObservedWallNs  int64
	WallErrorNsAbs  int64
}

// SolverStats is a point-in-time snapshot of a Solver's accounting.
type SolverStats struct {
	// CachedResults is the number of solve results currently retained.
	CachedResults int
	// PathQueries counts individual path queries answered.
	PathQueries int64
	// Admission is the overload-resilience accounting.
	Admission AdmissionStats
	// Planner is the strategy-planner accounting; nil until the first
	// StrategyAuto decision.
	Planner *PlannerStats
	// Strategies maps strategy name (e.g. "quantum") to its accounting.
	Strategies map[string]StrategyStats
}

// Stats returns the solver's accounting snapshot.
func (s *Solver) Stats() SolverStats {
	if s == nil || s.svc == nil {
		return SolverStats{}
	}
	st := s.svc.Stats()
	out := SolverStats{
		CachedResults: st.CachedResults,
		PathQueries:   st.PathQueries,
		Admission: AdmissionStats{
			MaxInflight:      st.Admission.MaxInflight,
			QueueDepth:       st.Admission.QueueDepth,
			Inflight:         st.Admission.Inflight,
			QueuedNow:        st.Admission.QueuedNow,
			Queued:           st.Admission.Queued,
			QueueWaitNs:      st.Admission.QueueWaitNs,
			Shed:             st.Admission.Shed,
			OverloadDegraded: st.Admission.OverloadDegraded,
			PanicsRecovered:  st.Admission.PanicsRecovered,
		},
		Strategies: make(map[string]StrategyStats, len(st.Strategies)),
	}
	if st.Planner != nil {
		p := &PlannerStats{
			Decisions:       st.Planner.Decisions,
			Chosen:          make(map[string]int64, len(st.Planner.Chosen)),
			ObservedSolves:  st.Planner.ObservedSolves,
			PredictedRounds: st.Planner.PredictedRounds,
			ObservedRounds:  st.Planner.ObservedRounds,
			RoundsErrorAbs:  st.Planner.RoundsErrorAbs,
			PredictedWallNs: st.Planner.PredictedWallNs,
			ObservedWallNs:  st.Planner.ObservedWallNs,
			WallErrorNsAbs:  st.Planner.WallErrorNsAbs,
		}
		for k, v := range st.Planner.Chosen {
			p.Chosen[k] = v
		}
		out.Planner = p
	}
	for name, v := range st.Strategies {
		ss := StrategyStats{
			Requests:      v.Requests,
			CacheHits:     v.CacheHits,
			Deduped:       v.Deduped,
			Solves:        v.Solves,
			Errors:        v.Errors,
			Cancelled:     v.Cancelled,
			FaultFailures: v.FaultFailures,
			Retries:       v.Retries,
			Degraded:      v.Degraded,
			BreakerSkips:  v.BreakerSkips,
			Faults:        countersFromCore(v.Faults),
			RoundsCharged: v.RoundsCharged,
		}
		if len(v.Stages) > 0 {
			ss.StageRounds = make(map[string]int64, len(v.Stages))
			for stage, agg := range v.Stages {
				ss.StageRounds[stage] = agg.Rounds
			}
		}
		out.Strategies[name] = ss
	}
	return out
}
