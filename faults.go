package qclique

// Public fault-injection and resilience surface: the deterministic fault
// plan that arms a solve's simulated network, the injected-fault counters
// every armed result carries, and the typed errors a solve surfaces when
// the stage-retry budget or the per-strategy circuit breaker gives up.

import (
	"errors"
	"fmt"
	"time"

	"qclique/internal/congest"
	"qclique/internal/serve"
)

// FaultPlan is a deterministic, seed-driven fault-injection schedule for
// the CONGEST-CLIQUE transport. The zero value injects nothing and keeps
// results and round counts bit-identical to an unarmed solve; runs with
// equal plans (and otherwise equal inputs) inject identical fault
// schedules.
//
// Recovered faults — message drop, duplication, bounded delay — never
// change the delivered data or the resulting distances; they only
// surcharge the simulated round/word accounting with the retransmission
// traffic. Unrecovered faults — payload corruption and node crashes — fail
// the pipeline stage they land in, which the engine retries within the
// strategy's budget (see the Resilience section of the README).
type FaultPlan struct {
	// Seed drives the fault schedule (independent of the protocol seed).
	Seed uint64
	// DropRate is the per-phase probability (0..1) that a link loses its
	// message and retransmits.
	DropRate float64
	// DupRate is the per-phase probability that a link delivers a
	// duplicate, which the transport suppresses.
	DupRate float64
	// DelayRate is the per-phase probability that a link's delivery is
	// late; MaxDelayRounds bounds the lateness (default 1).
	DelayRate      float64
	MaxDelayRounds int
	// CorruptRate is the per-phase probability of an unrecoverable payload
	// corruption, failing the stage.
	CorruptRate float64
	// CrashRate is the per-phase probability a node crashes at the phase
	// boundary, staying down for CrashDownPhases phases (default 1) before
	// restarting.
	CrashRate       float64
	CrashDownPhases int
	// MaxFaults, when > 0, caps the total number of unrecovered faults
	// (corruptions + crashes) injected — a transient-outage budget after
	// which the plan only injects recovered faults.
	MaxFaults int
}

func (p FaultPlan) toCore() congest.FaultPlan {
	return congest.FaultPlan{
		Seed:            p.Seed,
		DropRate:        p.DropRate,
		DupRate:         p.DupRate,
		DelayRate:       p.DelayRate,
		MaxDelayRounds:  p.MaxDelayRounds,
		CorruptRate:     p.CorruptRate,
		CrashRate:       p.CrashRate,
		CrashDownPhases: p.CrashDownPhases,
		MaxFaults:       p.MaxFaults,
	}
}

// FaultCounters tallies the faults a solve's transport injected.
type FaultCounters struct {
	// Dropped, Duplicated and Delayed count recovered link faults.
	Dropped    int64
	Duplicated int64
	Delayed    int64
	// Corrupted and Crashes count unrecovered faults; Restarts counts
	// crashed nodes coming back up.
	Corrupted int64
	Crashes   int64
	Restarts  int64
	// RetransmitRounds and DelayRounds are the extra simulated rounds the
	// recovered faults charged.
	RetransmitRounds int64
	DelayRounds      int64
	// FailedPhases counts communication phases that failed outright
	// (corruption, or a message addressed to a crashed node).
	FailedPhases int64
}

// Injected reports the total number of injected fault events.
func (c FaultCounters) Injected() int64 {
	return c.Dropped + c.Duplicated + c.Delayed + c.Corrupted + c.Crashes
}

func countersFromCore(c congest.FaultCounters) FaultCounters {
	return FaultCounters{
		Dropped:          c.Dropped,
		Duplicated:       c.Duplicated,
		Delayed:          c.Delayed,
		Corrupted:        c.Corrupted,
		Crashes:          c.Crashes,
		Restarts:         c.Restarts,
		RetransmitRounds: c.RetransmitRounds,
		DelayRounds:      c.DelayRounds,
		FailedPhases:     c.FailedPhases,
	}
}

// WithFaultPlan arms the solve's simulated network with a deterministic
// fault schedule. The plan is part of a result's identity: a Solver caches
// armed and unarmed solves of the same graph separately.
func WithFaultPlan(p FaultPlan) Option {
	return func(o *Options) { o.Faults = p }
}

// WithDegradation opts a Solver solve into the graceful-degradation
// ladder: when the requested strategy exhausts its stage-retry budget,
// hits its open circuit breaker, or runs out of deadline, the solve falls
// back to a cheaper approximate strategy the input admits (exact →
// ApproxQuantum → ApproxSkeleton) instead of failing. A degraded result is
// marked with APSPResult.Degraded and reports the rung that answered in
// Strategy and its contract in GuaranteedStretch. Honored by Solver
// methods only — the ladder lives in the serving layer, and the one-shot
// SolveAPSP rejects the option rather than silently ignoring it.
func WithDegradation() Option {
	return func(o *Options) { o.Degrade = true }
}

// FaultExhaustedError reports a solve that ran out of stage-retry budget
// under an armed fault plan: the injected faults outlasted every retry
// (and, with WithDegradation, every ladder rung the input admitted).
type FaultExhaustedError struct {
	// Faults is the injected-fault accounting of the failed run.
	Faults FaultCounters
	err    error
}

func (e *FaultExhaustedError) Error() string {
	return fmt.Sprintf("qclique: fault-injection retries exhausted (%d unrecovered faults): %v",
		e.Faults.Corrupted+e.Faults.Crashes, e.err)
}

func (e *FaultExhaustedError) Unwrap() error { return e.err }

// BreakerOpenError reports a solve refused because the strategy's circuit
// breaker is open after repeated fault failures; RetryAfter is the
// remaining cooldown.
type BreakerOpenError struct {
	Strategy   Strategy
	RetryAfter time.Duration
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("qclique: %v circuit breaker open, retry in %v", e.Strategy, e.RetryAfter)
}

// OverloadError reports a solve refused (or abandoned) by the Solver's
// admission controller: the wait queue behind WithMaxInflight overflowed,
// the call's context deadline could not outlive its likely service time,
// or nothing could be admitted at all. RetryAfter is the suggested wait
// before retrying — roughly one service time, so a saturated slot has had
// a chance to free.
type OverloadError struct {
	// Reason is "queue-full", "deadline", or "draining".
	Reason     string
	RetryAfter time.Duration
	err        error
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("qclique: solver overloaded (%s), retry after %v", e.Reason, e.RetryAfter.Round(time.Millisecond))
}

func (e *OverloadError) Unwrap() error { return e.err }

// mapServeErr rewraps the serving layer's resilience errors into their
// public mirrors so callers can errors.As against exported types.
func mapServeErr(err error) error {
	if err == nil {
		return nil
	}
	var oe *serve.OverloadError
	if errors.As(err, &oe) {
		return &OverloadError{Reason: oe.Reason, RetryAfter: oe.RetryAfter, err: err}
	}
	var fx *serve.FaultExhaustedError
	if errors.As(err, &fx) {
		return &FaultExhaustedError{Faults: countersFromCore(fx.Faults), err: err}
	}
	var be *serve.BreakerOpenError
	if errors.As(err, &be) {
		s, serr := ParseStrategy(be.Strategy)
		if serr != nil {
			s = Quantum
		}
		return &BreakerOpenError{Strategy: s, RetryAfter: be.RetryAfter}
	}
	return err
}
