package qclique

import (
	"strings"
	"testing"
)

// TestOptionsValidate: the consolidated Options struct accepts and refuses
// exactly what a solve would — epsilon/strategy consistency, fault-plan
// sanity, transport names, timeout sign — without running any pipeline.
func TestOptionsValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		o    Options
		ok   bool
		want string
	}{
		{"zero value", Options{}, true, ""},
		{"exact with transport", Options{Strategy: Gossip, Transport: "sharded"}, true, ""},
		{"approx with epsilon", Options{Strategy: ApproxQuantum, Epsilon: 0.5}, true, ""},
		{"approx without epsilon", Options{Strategy: ApproxQuantum}, false, "epsilon"},
		{"epsilon on exact", Options{Strategy: Gossip, Epsilon: 0.5}, false, "epsilon"},
		{"unknown transport", Options{Transport: "smoke-signal"}, false, "smoke-signal"},
		{"bad fault plan", Options{Faults: FaultPlan{DropRate: 1.5}}, false, "DropRate"},
		{"negative timeout", Options{Timeout: -1}, false, "timeout"},
	} {
		err := tc.o.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok {
			if err == nil {
				t.Errorf("%s: Validate accepted an invalid configuration", tc.name)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
			}
		}
	}
}

// TestWithOptionsAndTransportEcho: WithOptions overlays a whole
// configuration, later options still override individual fields, and the
// result echoes the backend that executed the solve.
func TestWithOptionsAndTransportEcho(t *testing.T) {
	g := NewDigraph(6)
	for i := 0; i < 6; i++ {
		if err := g.SetArc(i, (i+1)%6, int64(1+i%2)); err != nil {
			t.Fatal(err)
		}
	}

	base := Options{Strategy: Gossip, Preset: ScaledConstants, Seed: 7, Transport: "sharded", Workers: 2}
	res, err := SolveAPSP(g, WithOptions(base))
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != Gossip || res.Transport != "sharded" {
		t.Errorf("solve ran strategy=%v transport=%q, want gossip on sharded", res.Strategy, res.Transport)
	}

	// A later option overrides one field of the overlay; results stay
	// bit-identical across backends.
	local, err := SolveAPSP(g, WithOptions(base), WithTransport(""))
	if err != nil {
		t.Fatal(err)
	}
	if local.Transport != "local" {
		t.Errorf("override solve ran on %q, want local", local.Transport)
	}
	if local.Rounds != res.Rounds {
		t.Errorf("rounds differ across transports: local %d, sharded %d", local.Rounds, res.Rounds)
	}
	for i := range res.Dist {
		for j := range res.Dist[i] {
			if res.Dist[i][j] != local.Dist[i][j] {
				t.Fatalf("dist[%d][%d] differs across transports: %d vs %d", i, j, res.Dist[i][j], local.Dist[i][j])
			}
		}
	}

	// The zero Options overlay still selects the documented defaults.
	if _, err := SolveAPSP(g, WithOptions(Options{Preset: ScaledConstants, Strategy: Gossip})); err != nil {
		t.Fatal(err)
	}

	// An invalid configuration fails before any pipeline runs.
	if _, err := SolveAPSP(g, WithTransport("smoke-signal")); err == nil ||
		!strings.Contains(err.Error(), "smoke-signal") {
		t.Errorf("unknown transport: err = %v, want a naming rejection", err)
	}

	// Solver methods honor the transport option and echo it.
	solver := NewSolver(WithOptions(Options{Strategy: Gossip, Preset: ScaledConstants, Transport: "sharded"}))
	sres, err := solver.Solve(g)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Transport != "sharded" {
		t.Errorf("solver solve echoed transport %q, want sharded", sres.Transport)
	}
}
