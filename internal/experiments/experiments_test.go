package experiments

import (
	"strings"
	"testing"
)

func TestIDsStable(t *testing.T) {
	ids := IDs()
	if len(ids) != 12 {
		t.Fatalf("expected 12 experiments, got %d", len(ids))
	}
	want := []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12"}
	for i, id := range want {
		if ids[i] != id {
			t.Errorf("ids[%d] = %q, want %q", i, ids[i], id)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("e99", Config{Quick: true}); err == nil {
		t.Error("unknown id must fail")
	}
}

// TestQuickExperimentsPass runs the cheap experiments in quick mode and
// demands claim-consistency; the heavyweight sweeps (e1, e2, e4) are
// exercised by TestHeavyExperimentsPass below under -short skipping.
func TestQuickExperimentsPass(t *testing.T) {
	cfg := Config{Quick: true, Seed: 42}
	for _, id := range []string{"e3", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12"} {
		res, err := Run(id, cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !res.OK {
			t.Errorf("%s not consistent with paper claim: %s\n%s", id, res.Summary, res.Output)
		}
		if res.ID != id || res.Title == "" || res.PaperClaim == "" || res.Output == "" {
			t.Errorf("%s: incomplete result metadata", id)
		}
	}
}

func TestHeavyExperimentsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy sweeps skipped in -short mode")
	}
	cfg := Config{Quick: true, Seed: 42}
	for _, id := range []string{"e1", "e2", "e4"} {
		res, err := Run(id, cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !res.OK {
			t.Errorf("%s not consistent with paper claim: %s\n%s", id, res.Summary, res.Output)
		}
	}
}

func TestRunAllQuickSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll covered piecewise in -short mode")
	}
	results, err := RunAll(Config{Quick: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(IDs()) {
		t.Fatalf("got %d results, want %d", len(results), len(IDs()))
	}
	for _, r := range results {
		if !strings.HasPrefix(r.ID, "e") {
			t.Errorf("bad id %q", r.ID)
		}
	}
}
