package experiments

import (
	"fmt"
	"math"

	"qclique/internal/distprod"
	"qclique/internal/expfit"
	"qclique/internal/graph"
	"qclique/internal/matrix"
	"qclique/internal/qsearch"
	"qclique/internal/quantum"
	"qclique/internal/triangles"
	"qclique/internal/xrand"
)

// ---------------------------------------------------------------- E3

func runE3(cfg Config) (*Result, error) {
	rng := xrand.New(cfg.Seed)
	// Compliant (m, |X|) regimes: |X| < m/(36 log m), β > 8m/|X|.
	type regime struct{ m, x int }
	regimes := []regime{{2000, 4}, {4000, 8}, {8000, 8}}
	if cfg.Quick {
		regimes = regimes[:2]
	}
	tab := expfit.NewTable("m", "|X|", "β", "preconds", "runs all-found", "2/m² bound", "Lemma5 mass", "measured dev bound")
	ok := true
	for _, rg := range regimes {
		beta := 8*float64(rg.m)/float64(rg.x) + 64
		const runs = 5
		allFound := 0
		var devBound float64
		preconds := quantum.Theorem3Preconditions(rg.m, rg.x, beta)
		for run := 0; run < runs; run++ {
			r := rng.SplitN("run", rg.m*100+run)
			tables := make([][]bool, rg.m)
			for i := range tables {
				tables[i] = make([]bool, rg.x)
				tables[i][r.IntN(rg.x)] = true
			}
			nw, err := newTestNet(8)
			if err != nil {
				return nil, err
			}
			res, err := qsearch.MultiSearch(nw, qsearch.Spec{
				SpaceSize: rg.x, Instances: rg.m,
				Eval: qsearch.LocalEval(tables, 1),
				Beta: beta,
			}, r)
			if err != nil {
				return nil, err
			}
			if res.AllFound() {
				allFound++
			}
			devBound = res.TruncationErrorBound
		}
		bound := 2.0 / (float64(rg.m) * float64(rg.m))
		mass := quantum.Lemma5MassBound(rg.m, rg.x)
		if allFound < runs || !preconds || devBound > bound {
			ok = false
		}
		tab.AddF(rg.m, rg.x, fmt.Sprintf("%.0f", beta), preconds,
			fmt.Sprintf("%d/%d", allFound, runs),
			fmt.Sprintf("%.2e", bound), fmt.Sprintf("%.2e", mass), fmt.Sprintf("%.2e", devBound))
	}
	// Exact vs Chernoff typicality mass on a uniform product state.
	m, x := 400, 8
	uni := make([][]float64, m)
	for i := range uni {
		row := make([]float64, x)
		for j := range row {
			row[j] = 1 / float64(x)
		}
		uni[i] = row
	}
	beta := 8 * m / x
	exact := quantum.AtypicalMass(uni, beta, true)
	chern := quantum.AtypicalMass(uni, beta, false)
	out := &Result{
		PaperClaim: "Theorem 3: m truncated searches succeed w.p. ≥ 1−2/m²; Lemma 5: atypical mass ≤ |X|·exp(−2m/9|X|)",
		Output: tab.String() + fmt.Sprintf(
			"\nΥβ mass check (m=%d, |X|=%d, β=%d): exact Poisson-binomial %.3e ≤ Chernoff %.3e ≤ Lemma 5 %.3e\n",
			m, x, beta, exact, chern, quantum.Lemma5MassBound(m, x)),
		OK: ok && exact <= chern,
	}
	out.Summary = fmt.Sprintf("all compliant regimes succeed within the 2/m² bound: %v", ok)
	return out, nil
}

// ---------------------------------------------------------------- E5

func runE5(cfg Config) (*Result, error) {
	params := triangles.BenchParams()
	sizes := []int{48, 96}
	if !cfg.Quick {
		sizes = append(sizes, 256)
	}
	tab := expfit.NewTable("n", "promise calls", "1+⌈log₂(n/(c·ln n))⌉ bound", "max Γ", "exact")
	ok := true
	for _, n := range sizes {
		rng := xrand.New(cfg.Seed + uint64(n))
		g, err := graph.HubUndirected(n, 2, n/6, rng)
		if err != nil {
			return nil, err
		}
		rep, err := triangles.FindEdges(triangles.Instance{G: g}, triangles.Options{
			Seed: cfg.Seed, Params: &params, Data: triangles.DataDirect,
		})
		if err != nil {
			return nil, err
		}
		want := graph.EdgesInNegativeTriangles(g)
		exact := len(rep.Edges) == len(want)
		for p := range want {
			if !rep.Edges[p] {
				exact = false
			}
		}
		// Loop levels: while Reduction·2^i·ln n ≤ n, plus the final call.
		levels := 0
		for params.Reduction*math.Pow(2, float64(levels))*math.Log(float64(n)) <= float64(n) {
			levels++
		}
		bound := levels + 1
		if rep.PromiseCalls != bound || !exact {
			ok = false
		}
		tab.AddF(n, rep.PromiseCalls, bound, graph.MaxGamma(g), exact)
	}
	out := &Result{
		PaperClaim: "Proposition 1: FindEdges reduces to O(log n) FindEdgesWithPromise instances via leg sampling",
		Output:     tab.String(),
		OK:         ok,
		Summary:    fmt.Sprintf("call counts match the log-level schedule and outputs are exact: %v", ok),
	}
	return out, nil
}

// ---------------------------------------------------------------- E6

func runE6(cfg Config) (*Result, error) {
	rng := xrand.New(cfg.Seed)
	ms := []int64{4, 32, 256}
	if !cfg.Quick {
		ms = append(ms, 2048)
	}
	tab := expfit.NewTable("M", "binary-search steps", "1+⌈log₂(4M+2)⌉", "exact")
	ok := true
	for _, m := range ms {
		n := 6
		a := randomFiniteMatrix(n, m, rng.SplitN("a", int(m)))
		b := randomFiniteMatrix(n, m, rng.SplitN("b", int(m)))
		want, err := matrix.DistanceProduct(a, b)
		if err != nil {
			return nil, err
		}
		got, stats, err := distprod.Product(a, b, distprod.Options{Solver: distprod.SolverDolev, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		exact := got.Equal(want)
		bound := 1 + int(math.Ceil(math.Log2(float64(4*stats.MaxAbs+2))))
		if !exact || stats.BinarySearchSteps > bound {
			ok = false
		}
		tab.AddF(m, stats.BinarySearchSteps, bound, exact)
	}
	out := &Result{
		PaperClaim: "Proposition 2 (Vassilevska Williams–Williams): distance product via O(log M) FindEdges calls",
		Output:     tab.String(),
		OK:         ok,
		Summary:    fmt.Sprintf("step counts within 1+⌈log₂(4M+2)⌉ and products exact: %v", ok),
	}
	return out, nil
}

func randomFiniteMatrix(n int, maxAbs int64, rng *xrand.Source) *matrix.Matrix {
	m := matrix.New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Bool(0.2) {
				continue
			}
			m.Set(i, j, rng.Int64N(2*maxAbs+1)-maxAbs)
		}
	}
	return m
}

// ---------------------------------------------------------------- E7

func runE7(cfg Config) (*Result, error) {
	sizes := []int{4, 8, 16, 32, 64, 128}
	if cfg.Quick {
		sizes = []int{4, 16, 64}
	}
	tab := expfit.NewTable("n", "products", "⌈log₂ n⌉", "exact vs Floyd–Warshall")
	ok := true
	for _, n := range sizes {
		g, err := apspWorkload(n, 10, cfg.Seed+uint64(n))
		if err != nil {
			return nil, err
		}
		got, stats, err := matrix.APSPBySquaring(matrix.FromDigraph(g), matrix.DistanceProduct)
		if err != nil {
			return nil, err
		}
		want, err := graph.FloydWarshall(g)
		if err != nil {
			return nil, err
		}
		exact := true
		for i := 0; i < n && exact; i++ {
			for j := 0; j < n; j++ {
				if got.At(i, j) != want[i*n+j] {
					exact = false
					break
				}
			}
		}
		bound := int(math.Ceil(math.Log2(float64(n))))
		if stats.Products > bound || !exact {
			ok = false
		}
		tab.AddF(n, stats.Products, bound, exact)
	}
	out := &Result{
		PaperClaim: "Proposition 3: APSP = ⌈log₂ n⌉ distance products (repeated squaring)",
		Output:     tab.String(),
		OK:         ok,
		Summary:    fmt.Sprintf("squaring counts ≤ ⌈log₂ n⌉ and all distances exact: %v", ok),
	}
	return out, nil
}

// ---------------------------------------------------------------- E9

func runE9(cfg Config) (*Result, error) {
	params := triangles.PaperParams()
	sizes := []int{81, 256}
	if cfg.Quick {
		sizes = sizes[:1]
	}
	tab := expfit.NewTable("n", "trials", "aborts", "full coverage", "max/vertex", "balance bound")
	ok := true
	for _, n := range sizes {
		const trials = 10
		aborts, fullCover := 0, 0
		maxPer, bound := 0, 0
		for tr := 0; tr < trials; tr++ {
			st, err := triangles.CoveringTrial(n, params, cfg.Seed+uint64(n*100+tr))
			if err != nil {
				return nil, err
			}
			if st.Aborted {
				aborts++
			}
			if st.CoveredFraction >= 1 {
				fullCover++
			}
			if st.MaxPerVertex > maxPer {
				maxPer = st.MaxPerVertex
			}
			bound = st.Bound
		}
		// Lemma 2: both conditions hold w.p. ≥ 1−2/n; with 10 trials we
		// demand zero aborts and full coverage throughout.
		if aborts > 0 || fullCover < trials {
			ok = false
		}
		tab.AddF(n, trials, aborts, fmt.Sprintf("%d/%d", fullCover, trials), maxPer, bound)
	}
	out := &Result{
		PaperClaim: "Lemma 2: coverings are well-balanced and cover P(u,v) w.p. ≥ 1−2/n",
		Output:     tab.String(),
		OK:         ok,
		Summary:    fmt.Sprintf("no aborts, full coverage in all trials: %v", ok),
	}
	return out, nil
}

// ---------------------------------------------------------------- E10

func runE10(cfg Config) (*Result, error) {
	params := triangles.PaperParams()
	sizes := []int{81, 160}
	if cfg.Quick {
		sizes = sizes[:1]
	}
	tab := expfit.NewTable("n", "triples", "within Prop-5 interval", "max class", "aborted")
	ok := true
	for _, n := range sizes {
		rng := xrand.New(cfg.Seed + uint64(n))
		g, err := graph.RandomUndirected(n, graph.UndirectedOpts{EdgeProb: 0.5, MinWeight: -10, MaxWeight: 12}, rng)
		if err != nil {
			return nil, err
		}
		acc, err := triangles.IdentifyClassTrial(g, params, cfg.Seed+uint64(n))
		if err != nil {
			return nil, err
		}
		if acc.Aborted {
			tab.AddF(n, 0, "-", "-", true)
			continue
		}
		frac := float64(acc.Satisfied) / float64(acc.Triples)
		// Proposition 5 holds w.p. ≥ 1−2/n over ALL triples jointly; we
		// demand at least 98% of triples inside their interval.
		if frac < 0.98 {
			ok = false
		}
		tab.AddF(n, acc.Triples, fmt.Sprintf("%d (%.1f%%)", acc.Satisfied, 100*frac), acc.MaxClass, false)
	}
	out := &Result{
		PaperClaim: "Proposition 5: class α brackets |Δ(u,v;w)| in [2^{α−3}n, 2^{α+1}n] w.p. ≥ 1−2/n",
		Output:     tab.String(),
		OK:         ok,
		Summary:    fmt.Sprintf("classification intervals satisfied: %v", ok),
	}
	return out, nil
}

// ---------------------------------------------------------------- E11

func runE11(cfg Config) (*Result, error) {
	params := triangles.BenchParams()
	sizes := []int{81, 256}
	if cfg.Quick {
		sizes = sizes[:1]
	}
	tab := expfit.NewTable("n", "instances", "naive max-link load", "balanced max-link load", "slot cap", "reduction")
	ok := true
	for _, n := range sizes {
		g, err := triangleWorkload(n, cfg.Seed+uint64(n))
		if err != nil {
			return nil, err
		}
		st, err := triangles.CongestionTrial(g, params, cfg.Seed)
		if err != nil {
			return nil, err
		}
		if st.NaiveMaxLinkLoad <= st.BalancedMaxLinkLoad {
			ok = false
		}
		ratio := float64(st.NaiveMaxLinkLoad) / float64(maxI64(st.BalancedMaxLinkLoad, 1))
		tab.AddF(n, st.Instances, st.NaiveMaxLinkLoad, st.BalancedMaxLinkLoad, st.SlotCap,
			fmt.Sprintf("%.1fx", ratio))
	}
	out := &Result{
		PaperClaim: "Section 4.2: naive parallel searches congest a link (Θ̃(n^{3/2}) worst case); the balanced schedule caps per-link load at Õ(√n)",
		Output:     tab.String(),
		OK:         ok,
		Summary:    fmt.Sprintf("balanced schedule strictly reduces the hottest link: %v", ok),
	}
	return out, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
