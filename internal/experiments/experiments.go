// Package experiments reproduces the paper's quantitative claims. The
// paper is a theory paper — its "evaluation" is Theorems 1–3, Propositions
// 1–5 and Lemmas 1–4, and its five figures are algorithms — so each
// experiment measures one claim inside the CONGEST-CLIQUE simulator and
// reports paper-claim versus measured. The experiment IDs (E1…E12) match
// DESIGN.md and EXPERIMENTS.md; cmd/experiments and the benchmark harness
// both drive this package.
package experiments

import (
	"fmt"
	"math"
	"strings"

	"qclique/internal/congest"
	"qclique/internal/core"
	"qclique/internal/expfit"
	"qclique/internal/graph"
	"qclique/internal/quantum"
	"qclique/internal/triangles"
	"qclique/internal/xrand"
)

// Config tunes an experiment run.
type Config struct {
	// Quick shrinks the sweeps for CI-speed runs.
	Quick bool
	// Seed drives all randomness.
	Seed uint64
}

// Result is one experiment's outcome.
type Result struct {
	ID         string
	Title      string
	PaperClaim string
	// Output is the rendered measurement (tables / series).
	Output string
	// Summary is a one-line paper-vs-measured verdict.
	Summary string
	// OK reports whether the measured behaviour is consistent with the
	// claim's shape.
	OK bool
}

type experiment struct {
	id, title string
	run       func(Config) (*Result, error)
}

func registry() []experiment {
	return []experiment{
		{"e1", "Theorem 1: quantum APSP end-to-end", runE1},
		{"e2", "Theorem 2: FindEdgesWithPromise rounds vs n", runE2},
		{"e3", "Theorem 3: truncated multi-search success", runE3},
		{"e4", "Quantum vs classical separation", runE4},
		{"e5", "Proposition 1: FindEdges via promise instances", runE5},
		{"e6", "Proposition 2: distance product via binary search", runE6},
		{"e7", "Proposition 3: APSP via repeated squaring", runE7},
		{"e8", "Lemma 1: two-round routing", runE8},
		{"e9", "Lemma 2: covering balance and coverage", runE9},
		{"e10", "Proposition 5: IdentifyClass accuracy", runE10},
		{"e11", "Congestion: naive vs load-balanced searches", runE11},
		{"e12", "Grover core: √|X| oracle calls", runE12},
	}
}

// IDs lists the experiment identifiers in order.
func IDs() []string {
	var out []string
	for _, e := range registry() {
		out = append(out, e.id)
	}
	return out
}

// Run executes one experiment by ID.
func Run(id string, cfg Config) (*Result, error) {
	for _, e := range registry() {
		if e.id == id {
			res, err := e.run(cfg)
			if err != nil {
				return nil, fmt.Errorf("experiment %s: %w", id, err)
			}
			res.ID = e.id
			res.Title = e.title
			return res, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(IDs(), ", "))
}

// RunAll executes every experiment.
func RunAll(cfg Config) ([]*Result, error) {
	var out []*Result
	for _, e := range registry() {
		res, err := Run(e.id, cfg)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}

// triangleWorkload builds the standard negative-triangle workload: a
// sparse positive-weight graph with planted disjoint negative triangles.
func triangleWorkload(n int, seed uint64) (*graph.Undirected, error) {
	rng := xrand.New(seed)
	g, err := graph.RandomUndirected(n, graph.UndirectedOpts{EdgeProb: 0.15, MinWeight: 1, MaxWeight: 40}, rng)
	if err != nil {
		return nil, err
	}
	planted := n / 16
	if planted < 1 {
		planted = 1
	}
	if _, err := graph.PlantNegativeTriangles(g, planted, 30, rng.Split("plant")); err != nil {
		return nil, err
	}
	return g, nil
}

// apspWorkload builds the standard APSP workload.
func apspWorkload(n int, w int64, seed uint64) (*graph.Digraph, error) {
	return graph.RandomDigraph(n, graph.DigraphOpts{
		ArcProb: 0.4, MinWeight: -w, MaxWeight: w, NoNegativeCycles: true,
	}, xrand.New(seed))
}

// ---------------------------------------------------------------- E1

func runE1(cfg Config) (*Result, error) {
	sizes := []int{8, 12, 16, 24, 32}
	if cfg.Quick {
		sizes = []int{8, 16}
	}
	params := triangles.BenchParams()
	tab := expfit.NewTable("n", "W", "rounds", "products", "findedges-calls", "exact")
	var pts []expfit.Point
	allExact := true
	for _, n := range sizes {
		g, err := apspWorkload(n, 8, cfg.Seed+uint64(n))
		if err != nil {
			return nil, err
		}
		res, err := core.Solve(g, core.Config{Strategy: core.StrategyQuantum, Params: &params, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		want, err := graph.FloydWarshall(g)
		if err != nil {
			return nil, err
		}
		exact := true
		for i := 0; i < n && exact; i++ {
			for j := 0; j < n; j++ {
				if res.Dist.At(i, j) != want[i*n+j] {
					exact = false
					break
				}
			}
		}
		allExact = allExact && exact
		tab.AddF(n, 8, res.Rounds, res.Products, res.FindEdgesCalls, exact)
		pts = append(pts, expfit.Point{N: n, Value: float64(res.Rounds)})
	}
	// log W scaling at fixed n.
	wSweep := []int64{4, 32, 256}
	if cfg.Quick {
		wSweep = []int64{4, 64}
	}
	wTab := expfit.NewTable("W", "rounds", "findedges-calls")
	var callPts []expfit.Point
	for _, w := range wSweep {
		g, err := apspWorkload(12, w, cfg.Seed+uint64(w))
		if err != nil {
			return nil, err
		}
		res, err := core.Solve(g, core.Config{Strategy: core.StrategyQuantum, Params: &params, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		wTab.AddF(w, res.Rounds, res.FindEdgesCalls)
		callPts = append(callPts, expfit.Point{N: int(w), Value: float64(res.FindEdgesCalls)})
	}
	fit, _ := expfit.FitExponent(pts)
	// FindEdges calls should grow like log W: fitting calls vs W must give
	// an exponent well below linear (a power-law fit of log growth lands
	// near 0).
	wFit, _ := expfit.FitExponent(callPts)
	out := &Result{
		PaperClaim: "Theorem 1: exact APSP in Õ(n^{1/4}·log W) rounds, success 1−Õ(logW/n)",
		Output: "Rounds vs n (W=8):\n" + tab.String() +
			fmt.Sprintf("raw power-law fit: exponent %.3f (R²=%.3f); polylog factors dominate at simulable n — see E2/E4 for the component exponents\n\n", fit.Exponent, fit.R2) +
			"Rounds vs W (n=12):\n" + wTab.String() +
			fmt.Sprintf("FindEdges-calls vs W power-law exponent: %.3f (log-growth ⇒ ≈0)\n", wFit.Exponent),
		OK: allExact && wFit.Exponent < 0.5,
	}
	out.Summary = fmt.Sprintf("all distances exact=%v; calls grow sub-polynomially in W (exp %.2f)", allExact, wFit.Exponent)
	return out, nil
}

// ---------------------------------------------------------------- E2

func runE2(cfg Config) (*Result, error) {
	sizes := []int{16, 81, 256}
	if !cfg.Quick {
		sizes = append(sizes, 625)
	}
	params := triangles.BenchParams()
	tab := expfit.NewTable("n", "rounds", "eval-calls(α=0)", "eval-rounds", "output-edges", "exact")
	var roundPts, callPts []expfit.Point
	allExact := true
	for _, n := range sizes {
		g, err := triangleWorkload(n, cfg.Seed+uint64(n))
		if err != nil {
			return nil, err
		}
		rep, err := triangles.FindEdgesWithPromise(triangles.Instance{G: g}, triangles.Options{
			Seed: cfg.Seed, Params: &params, Data: triangles.DataDirect,
		})
		if err != nil {
			return nil, err
		}
		want := graph.EdgesInNegativeTriangles(g)
		exact := len(rep.Edges) == len(want)
		for p := range want {
			if !rep.Edges[p] {
				exact = false
			}
		}
		allExact = allExact && exact
		var calls, evalRounds int64
		if len(rep.Classes) > 0 {
			calls = rep.Classes[0].EvalCalls
			evalRounds = rep.Classes[0].EvalRounds
		}
		tab.AddF(n, rep.Rounds, calls, evalRounds, len(rep.Edges), exact)
		roundPts = append(roundPts, expfit.Point{N: n, Value: float64(rep.Rounds)})
		callPts = append(callPts, expfit.Point{N: n, Value: float64(calls)})
	}
	rFit, _ := expfit.FitExponent(roundPts)
	cFit, _ := expfit.FitExponent(callPts)
	adj, _ := expfit.PolylogAdjustedFit(roundPts, 2)
	out := &Result{
		PaperClaim: "Theorem 2: FindEdgesWithPromise in Õ(n^{1/4}) rounds, success 1−O(1/n)",
		Output: tab.String() + fmt.Sprintf(
			"raw rounds exponent %.3f (R²=%.3f); log²-adjusted %.3f; oracle-call exponent %.3f (schedule is Õ(√|X|)=Õ(n^{1/4}))\n",
			rFit.Exponent, rFit.R2, adj.Exponent, cFit.Exponent),
		OK: allExact && rFit.Exponent < 0.75,
	}
	out.Summary = fmt.Sprintf("exact=%v; rounds exponent %.2f raw / %.2f log²-adjusted (target 0.25+o(1))", allExact, rFit.Exponent, adj.Exponent)
	return out, nil
}

// ---------------------------------------------------------------- E4

func runE4(cfg Config) (*Result, error) {
	sizes := []int{16, 81, 256}
	if !cfg.Quick {
		sizes = append(sizes, 625)
	}
	params := triangles.BenchParams()
	var quantum, classical, dolev expfit.Series
	quantum.Name, classical.Name, dolev.Name = "quantum", "classical-scan", "dolev-n^{1/3}"
	callTab := expfit.NewTable("n", "|X|=√n", "quantum eval-calls", "classical eval-calls")
	for _, n := range sizes {
		g, err := triangleWorkload(n, cfg.Seed+uint64(n))
		if err != nil {
			return nil, err
		}
		q, err := triangles.FindEdgesWithPromise(triangles.Instance{G: g}, triangles.Options{
			Seed: cfg.Seed, Params: &params, Data: triangles.DataDirect,
		})
		if err != nil {
			return nil, err
		}
		c, err := triangles.FindEdgesWithPromise(triangles.Instance{G: g}, triangles.Options{
			Seed: cfg.Seed, Params: &params, Data: triangles.DataDirect, Mode: triangles.SearchClassicalScan,
		})
		if err != nil {
			return nil, err
		}
		d, err := triangles.DolevFindEdges(triangles.Instance{G: g}, nil)
		if err != nil {
			return nil, err
		}
		quantum.Points = append(quantum.Points, expfit.Point{N: n, Value: float64(q.Rounds)})
		classical.Points = append(classical.Points, expfit.Point{N: n, Value: float64(c.Rounds)})
		dolev.Points = append(dolev.Points, expfit.Point{N: n, Value: float64(d.Rounds)})
		var qc, cc int64
		for _, st := range q.Classes {
			qc += st.EvalCalls
		}
		for _, st := range c.Classes {
			cc += st.EvalCalls
		}
		callTab.AddF(n, fmt.Sprintf("%d", isqrt(n)), qc, cc)
	}
	qFit, _ := expfit.FitExponent(quantum.Points)
	cFit, _ := expfit.FitExponent(classical.Points)
	qCallFit, _ := expfit.FitExponent(tableCol(callTab, 2, sizes))
	cCallFit, _ := expfit.FitExponent(tableCol(callTab, 3, sizes))
	out := &Result{
		PaperClaim: "Quantum Õ(n^{1/4}) beats classical search Õ(√n) and the Õ(n^{1/3}) barrier; the speedup mechanism is Grover's √|X| oracle calls",
		Output: "FindEdgesWithPromise rounds by strategy (figure F-series):\n" + expfit.RenderSeries([]expfit.Series{quantum, classical, dolev}) +
			"\nOracle-call comparison (the quadratic-speedup mechanism):\n" + callTab.String() +
			fmt.Sprintf("call exponents: quantum %.3f vs classical %.3f (classical scans |X| = n^{1/2} exactly; quantum pays Õ(n^{1/4}))\n", qCallFit.Exponent, cCallFit.Exponent) +
			fmt.Sprintf("round exponents: quantum %.3f vs classical %.3f — the quantum curve is flatter; its larger polylog constants put the absolute crossover beyond simulable n, as expected for Õ(·) bounds\n", qFit.Exponent, cFit.Exponent),
		OK: qFit.Exponent < cFit.Exponent && qCallFit.Exponent < cCallFit.Exponent,
	}
	out.Summary = fmt.Sprintf("round-exponents quantum %.2f < classical %.2f; call-exponents %.2f vs %.2f", qFit.Exponent, cFit.Exponent, qCallFit.Exponent, cCallFit.Exponent)
	return out, nil
}

func isqrt(n int) int {
	x := 0
	for (x+1)*(x+1) <= n {
		x++
	}
	return x
}

// tableCol re-extracts numeric columns from a table for fitting.
func tableCol(t *expfit.Table, col int, ns []int) []expfit.Point {
	var pts []expfit.Point
	for i, row := range t.Rows {
		if i >= len(ns) || col >= len(row) {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(row[col], "%f", &v); err == nil {
			pts = append(pts, expfit.Point{N: ns[i], Value: v})
		}
	}
	return pts
}

// ---------------------------------------------------------------- E8

func runE8(cfg Config) (*Result, error) {
	rng := xrand.New(cfg.Seed)
	tab := expfit.NewTable("n", "words/node", "rounds", "lemma-1 bound", "schedule valid")
	ok := true
	sizes := []int{8, 16, 32}
	if cfg.Quick {
		sizes = []int{8, 16}
	}
	for _, n := range sizes {
		for _, mult := range []int{1, 3} {
			net, err := congest.NewNetwork(n, congest.WithScheduleValidation())
			if err != nil {
				return nil, err
			}
			var msgs []congest.Message
			srcLoad := make([]int, n)
			dstLoad := make([]int, n)
			budget := mult * n
			for i := 0; i < 50*n*mult; i++ {
				s := rng.IntN(n)
				d := rng.IntN(n)
				if s == d || srcLoad[s] >= budget || dstLoad[d] >= budget {
					continue
				}
				srcLoad[s]++
				dstLoad[d]++
				msgs = append(msgs, congest.Message{Src: congest.NodeID(s), Dst: congest.NodeID(d)})
			}
			_, err = net.ExchangeBalanced("e8", msgs)
			valid := err == nil
			bound := int64(2 * mult)
			if net.Rounds() > bound || !valid {
				ok = false
			}
			tab.AddF(n, budget, net.Rounds(), bound, valid)
		}
	}
	out := &Result{
		PaperClaim: "Lemma 1 (Dolev et al.): ≤n-per-source/destination message sets deliver in 2 rounds (k·n loads in 2k)",
		Output:     tab.String(),
		OK:         ok,
		Summary:    fmt.Sprintf("all schedules within the 2·⌈load/n⌉ bound and König-validated: %v", ok),
	}
	return out, nil
}

// ---------------------------------------------------------------- E12

func runE12(cfg Config) (*Result, error) {
	rng := xrand.New(cfg.Seed)
	sizes := []int{16, 64, 256, 1024}
	if !cfg.Quick {
		sizes = append(sizes, 4096)
	}
	tab := expfit.NewTable("|X|", "avg oracle calls", "π/4·√|X|", "found rate")
	var pts []expfit.Point
	ok := true
	for _, n := range sizes {
		const trials = 40
		var calls int64
		found := 0
		for tr := 0; tr < trials; tr++ {
			r := rng.SplitN("t", n*1000+tr)
			target := r.IntN(n)
			res := quantum.Search(n, func(x int) bool { return x == target }, r)
			if res.Found {
				found++
				calls += res.OracleCalls()
			}
		}
		avg := float64(calls) / float64(maxIntE(found, 1))
		ideal := math.Pi / 4 * math.Sqrt(float64(n))
		tab.AddF(n, avg, ideal, fmt.Sprintf("%d/%d", found, trials))
		pts = append(pts, expfit.Point{N: n, Value: avg})
		if found < trials*9/10 {
			ok = false
		}
	}
	fit, _ := expfit.FitExponent(pts)
	if fit.Exponent > 0.65 || fit.Exponent < 0.3 {
		ok = false
	}
	out := &Result{
		PaperClaim: "Grover (framework of Section 4.1): a solution is found with O(√|X|) oracle calls",
		Output:     tab.String() + fmt.Sprintf("call exponent %.3f (R²=%.3f), target 0.5\n", fit.Exponent, fit.R2),
		OK:         ok,
		Summary:    fmt.Sprintf("oracle-call exponent %.2f ≈ 1/2", fit.Exponent),
	}
	return out, nil
}

func maxIntE(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// newTestNet builds a small network for synthetic (non-graph) experiments.
func newTestNet(n int) (*congest.Network, error) {
	return congest.NewNetwork(n)
}
