// Package expfit provides the small analysis toolkit behind the
// experiment harness: least-squares power-law fits in log-log space (to
// recover round-complexity exponents from measured sweeps) and plain-text
// table rendering for EXPERIMENTS.md.
package expfit

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Point is one measurement: a problem size and a value (rounds, calls, …).
type Point struct {
	N     int
	Value float64
}

// Fit is a fitted power law Value ≈ Coeff · N^Exponent.
type Fit struct {
	Exponent float64
	Coeff    float64
	// R2 is the coefficient of determination of the log-log regression;
	// 1 means a perfect power law.
	R2 float64
}

// FitExponent fits a power law by ordinary least squares on (ln n,
// ln value). It requires at least two points with positive N and Value.
func FitExponent(points []Point) (Fit, error) {
	var xs, ys []float64
	for _, p := range points {
		if p.N <= 0 || p.Value <= 0 {
			continue
		}
		xs = append(xs, math.Log(float64(p.N)))
		ys = append(ys, math.Log(p.Value))
	}
	if len(xs) < 2 {
		return Fit{}, errors.New("expfit: need at least two positive points")
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Fit{}, errors.New("expfit: degenerate x values")
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n

	// R².
	meanY := sy / n
	var ssTot, ssRes float64
	for i := range xs {
		pred := slope*xs[i] + intercept
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Fit{Exponent: slope, Coeff: math.Exp(intercept), R2: r2}, nil
}

// PolylogAdjustedFit divides each value by log(n)^k before fitting,
// recovering the polynomial exponent under an assumed polylog factor — the
// Õ(·) convention of the paper.
func PolylogAdjustedFit(points []Point, k int) (Fit, error) {
	adj := make([]Point, 0, len(points))
	for _, p := range points {
		if p.N <= 1 {
			continue
		}
		l := math.Pow(math.Log(float64(p.N)), float64(k))
		adj = append(adj, Point{N: p.N, Value: p.Value / l})
	}
	return FitExponent(adj)
}

// Table is a plain-text aligned table.
type Table struct {
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{Headers: headers}
}

// Add appends a row; short rows are padded with empty cells.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddF appends a row of formatted values.
func (t *Table) AddF(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, fmt.Sprintf("%.3f", v))
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.Add(row...)
}

// String renders the table with aligned columns and a separator line.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored Markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Headers)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// Series is a named measurement series over a shared N axis, the textual
// stand-in for a log-log figure.
type Series struct {
	Name   string
	Points []Point
}

// RenderSeries prints several series side by side over the union of their
// N values, with per-series fitted exponents in the footer.
func RenderSeries(series []Series) string {
	nsSet := map[int]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			nsSet[p.N] = true
		}
	}
	var ns []int
	for n := range nsSet {
		ns = append(ns, n)
	}
	for i := 0; i < len(ns); i++ {
		for j := i + 1; j < len(ns); j++ {
			if ns[j] < ns[i] {
				ns[i], ns[j] = ns[j], ns[i]
			}
		}
	}
	headers := append([]string{"n"}, func() []string {
		out := make([]string, len(series))
		for i, s := range series {
			out[i] = s.Name
		}
		return out
	}()...)
	tab := NewTable(headers...)
	for _, n := range ns {
		row := []string{fmt.Sprint(n)}
		for _, s := range series {
			cell := ""
			for _, p := range s.Points {
				if p.N == n {
					cell = fmt.Sprintf("%.0f", p.Value)
					break
				}
			}
			row = append(row, cell)
		}
		tab.Add(row...)
	}
	var b strings.Builder
	b.WriteString(tab.String())
	for _, s := range series {
		if fit, err := FitExponent(s.Points); err == nil {
			fmt.Fprintf(&b, "fit %-24s exponent %.3f  (R²=%.3f)\n", s.Name+":", fit.Exponent, fit.R2)
		}
	}
	return b.String()
}
