package expfit

import (
	"math"
	"strings"
	"testing"

	"qclique/internal/xrand"
)

func TestFitExponentExactPowerLaw(t *testing.T) {
	var pts []Point
	for _, n := range []int{16, 64, 256, 1024} {
		pts = append(pts, Point{N: n, Value: 3 * math.Pow(float64(n), 0.5)})
	}
	fit, err := FitExponent(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Exponent-0.5) > 1e-9 {
		t.Errorf("exponent = %f, want 0.5", fit.Exponent)
	}
	if math.Abs(fit.Coeff-3) > 1e-9 {
		t.Errorf("coeff = %f, want 3", fit.Coeff)
	}
	if fit.R2 < 1-1e-12 {
		t.Errorf("R² = %f, want 1", fit.R2)
	}
}

func TestFitExponentNoisy(t *testing.T) {
	rng := xrand.New(1)
	var pts []Point
	for _, n := range []int{16, 32, 64, 128, 256, 512, 1024} {
		noise := 0.9 + 0.2*rng.Float64()
		pts = append(pts, Point{N: n, Value: 7 * math.Pow(float64(n), 0.33) * noise})
	}
	fit, err := FitExponent(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Exponent-0.33) > 0.05 {
		t.Errorf("exponent = %f, want ≈0.33", fit.Exponent)
	}
}

func TestFitExponentErrors(t *testing.T) {
	if _, err := FitExponent(nil); err == nil {
		t.Error("empty input must fail")
	}
	if _, err := FitExponent([]Point{{N: 4, Value: 1}}); err == nil {
		t.Error("single point must fail")
	}
	if _, err := FitExponent([]Point{{N: 4, Value: 1}, {N: 4, Value: 2}}); err == nil {
		t.Error("degenerate x must fail")
	}
	// Non-positive values are skipped, not fatal, as long as two remain.
	fit, err := FitExponent([]Point{{N: 4, Value: 2}, {N: -1, Value: 5}, {N: 8, Value: 4}, {N: 9, Value: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Exponent-1) > 1e-9 {
		t.Errorf("exponent = %f, want 1", fit.Exponent)
	}
}

func TestPolylogAdjustedFit(t *testing.T) {
	// Values n^{1/4}·log²n must fit exponent 1/4 after k=2 adjustment.
	var pts []Point
	for _, n := range []int{16, 64, 256, 1024, 4096} {
		l := math.Log(float64(n))
		pts = append(pts, Point{N: n, Value: math.Pow(float64(n), 0.25) * l * l})
	}
	raw, err := FitExponent(pts)
	if err != nil {
		t.Fatal(err)
	}
	adj, err := PolylogAdjustedFit(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(adj.Exponent-0.25) > 1e-9 {
		t.Errorf("adjusted exponent = %f, want 0.25", adj.Exponent)
	}
	if raw.Exponent <= adj.Exponent {
		t.Error("raw exponent should exceed the adjusted one")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("n", "rounds")
	tab.Add("16", "120")
	tab.AddF(256, 3.14159)
	s := tab.String()
	if !strings.Contains(s, "rounds") || !strings.Contains(s, "3.142") {
		t.Errorf("table:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Errorf("expected 4 lines, got %d:\n%s", len(lines), s)
	}
	md := tab.Markdown()
	if !strings.HasPrefix(md, "| n | rounds |") {
		t.Errorf("markdown:\n%s", md)
	}
	// Short rows pad.
	tab2 := NewTable("a", "b", "c")
	tab2.Add("1")
	if len(tab2.Rows[0]) != 3 {
		t.Error("short row must pad")
	}
}

func TestRenderSeries(t *testing.T) {
	series := []Series{
		{Name: "quantum", Points: []Point{{16, 32}, {256, 128}}},
		{Name: "classical", Points: []Point{{16, 64}, {256, 1024}}},
	}
	out := RenderSeries(series)
	if !strings.Contains(out, "quantum") || !strings.Contains(out, "classical") {
		t.Errorf("series render:\n%s", out)
	}
	if !strings.Contains(out, "fit quantum") {
		t.Errorf("missing fits:\n%s", out)
	}
	// n column sorted ascending.
	i16 := strings.Index(out, "16")
	i256 := strings.Index(out, "256")
	if i16 < 0 || i256 < 0 || i16 > i256 {
		t.Errorf("n ordering wrong:\n%s", out)
	}
}
