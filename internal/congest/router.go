package congest

// This file implements Lemma 1 (Dolev, Lenzen, Peled 2012) as an explicit,
// verifiable routing schedule: a set of messages in which no node is the
// source of more than n words and no node is the destination of more than n
// words is delivered within two rounds.
//
// The constructive proof is reproduced faithfully. The word set forms a
// bipartite multigraph (sources on one side, destinations on the other)
// with maximum degree at most n. By König's edge-coloring theorem a
// bipartite multigraph of maximum degree Δ admits a proper edge coloring
// with exactly Δ colors; color classes are matchings. Assign each color c a
// distinct relay node. Round 1: every source forwards each of its words to
// that word's relay — properness at the source side means a source holds at
// most one word per color, so each (source, relay) link carries at most one
// word. Round 2: every relay forwards its words to their destinations —
// properness at the destination side means a relay holds at most one word
// per destination, so each (relay, destination) link carries at most one
// word.

import (
	"errors"
	"fmt"
)

// ErrUncolorable is returned when the coloring routine cannot color the
// multigraph within the given palette; with palette >= max degree on a
// bipartite instance this indicates a bug, so its occurrence is a test
// failure, never an expected runtime condition.
var ErrUncolorable = errors.New("congest: bipartite multigraph not colorable within palette")

// wordUnit is a single routable word: one edge of the routing multigraph.
type wordUnit struct {
	src, dst NodeID
}

// expandWords flattens messages into word units.
func expandWords(msgs []Message) []wordUnit {
	var units []wordUnit
	for _, m := range msgs {
		w := m.Words()
		for i := int64(0); i < w; i++ {
			units = append(units, wordUnit{src: m.Src, dst: m.Dst})
		}
	}
	return units
}

// splitBatches greedily partitions word units into batches in which every
// node sources at most n words and sinks at most n words. The greedy sweep
// is deterministic in input order and produces at most
// ceil(max(S,D)/n) + 1 batches for per-node loads S, D; the round formula
// in network.go charges the exact Lemma-1 optimum, and schedule validation
// only needs *some* legal batching, so the small greedy slack is
// acceptable for verification purposes.
func splitBatches(units []wordUnit, n int) [][]wordUnit {
	var batches [][]wordUnit
	var cur []wordUnit
	srcCount := make(map[NodeID]int)
	dstCount := make(map[NodeID]int)
	flush := func() {
		if len(cur) > 0 {
			batches = append(batches, cur)
			cur = nil
			srcCount = make(map[NodeID]int)
			dstCount = make(map[NodeID]int)
		}
	}
	for _, u := range units {
		if srcCount[u.src] >= n || dstCount[u.dst] >= n {
			flush()
		}
		cur = append(cur, u)
		srcCount[u.src]++
		dstCount[u.dst]++
	}
	flush()
	return batches
}

// KonigEdgeColoring properly edge-colors the bipartite multigraph given as
// (left, right) endpoint pairs, using at most palette colors. It returns
// one color per edge. For a bipartite multigraph, palette = max degree
// always suffices (König). left and right vertex identifiers live in
// disjoint index spaces supplied by the caller.
func KonigEdgeColoring(left, right []int, palette int) ([]int, error) {
	if len(left) != len(right) {
		return nil, fmt.Errorf("congest: edge list mismatch: %d lefts, %d rights", len(left), len(right))
	}
	m := len(left)
	if m == 0 {
		return nil, nil
	}
	if palette <= 0 {
		return nil, fmt.Errorf("congest: palette must be positive, got %d", palette)
	}
	// colorAt[side][vertex][color] = edge index + 1, 0 if free.
	colorAtL := make(map[int][]int32)
	colorAtR := make(map[int][]int32)
	slot := func(tab map[int][]int32, v int) []int32 {
		s, ok := tab[v]
		if !ok {
			s = make([]int32, palette)
			tab[v] = s
		}
		return s
	}
	firstFree := func(s []int32) int {
		for c, e := range s {
			if e == 0 {
				return c
			}
		}
		return -1
	}
	colors := make([]int, m)
	for i := range colors {
		colors[i] = -1
	}
	for e := 0; e < m; e++ {
		u, v := left[e], right[e]
		su := slot(colorAtL, u)
		sv := slot(colorAtR, v)
		a := firstFree(su)
		b := firstFree(sv)
		if a < 0 || b < 0 {
			return nil, fmt.Errorf("%w: vertex saturated before edge %d", ErrUncolorable, e)
		}
		if su[b] == 0 {
			// b is free at both endpoints.
			colors[e] = b
			su[b] = int32(e + 1)
			sv[b] = int32(e + 1)
			continue
		}
		if sv[a] == 0 {
			colors[e] = a
			su[a] = int32(e + 1)
			sv[a] = int32(e + 1)
			continue
		}
		// Invert the (a,b)-alternating path starting at v. v currently has
		// an edge colored a and no edge colored b; after swapping colors
		// along the path, a is free at v. The path is collected first
		// (without mutating the tables), then all its edges are swapped and
		// re-registered. Every {a,b}-colored edge incident to a path vertex
		// is itself on the path (interior vertices carry exactly one of
		// each; terminals carry exactly one), so clearing both color slots
		// at path endpoints and re-registering is safe.
		var path []int
		{
			onRight := true
			vert := v
			want := a
			for {
				var tab map[int][]int32
				if onRight {
					tab = colorAtR
				} else {
					tab = colorAtL
				}
				eiPlus := slot(tab, vert)[want]
				if eiPlus == 0 {
					break
				}
				ei := int(eiPlus - 1)
				path = append(path, ei)
				if onRight {
					vert = left[ei]
				} else {
					vert = right[ei]
				}
				onRight = !onRight
				want = want ^ a ^ b
			}
		}
		for _, ei := range path {
			sl := slot(colorAtL, left[ei])
			sr := slot(colorAtR, right[ei])
			sl[a], sl[b], sr[a], sr[b] = 0, 0, 0, 0
		}
		for _, ei := range path {
			colors[ei] = colors[ei] ^ a ^ b
			slot(colorAtL, left[ei])[colors[ei]] = int32(ei + 1)
			slot(colorAtR, right[ei])[colors[ei]] = int32(ei + 1)
		}
		// a is now free at v, and still free at u: the path starting at v
		// alternates a,b,... and can only arrive at a left vertex via color
		// a, which is missing at u, so the path never reaches u.
		if su[a] != 0 || sv[a] != 0 {
			return nil, fmt.Errorf("%w: inversion failed to free color %d", ErrUncolorable, a)
		}
		colors[e] = a
		su[a] = int32(e + 1)
		sv[a] = int32(e + 1)
	}
	return colors, nil
}

// RelayAssignment routes one word via a relay node in a two-round batch.
type RelayAssignment struct {
	Src, Dst, Relay NodeID
}

// RelayBatch is a two-round delivery schedule for one sub-batch.
type RelayBatch struct {
	Assignments []RelayAssignment
}

// BuildRelaySchedule constructs the explicit Lemma-1 schedule for a message
// set on an n-node clique: batches of two rounds each, with per-word relay
// assignments derived from a König edge coloring.
func BuildRelaySchedule(n int, msgs []Message) ([]RelayBatch, error) {
	units := expandWords(msgs)
	batches := splitBatches(units, n)
	out := make([]RelayBatch, 0, len(batches))
	for bi, batch := range batches {
		left := make([]int, len(batch))
		right := make([]int, len(batch))
		deg := make(map[int]int)
		maxDeg := 0
		for i, u := range batch {
			left[i] = int(u.src)
			right[i] = int(u.dst)
			deg[int(u.src)]++
			if deg[int(u.src)] > maxDeg {
				maxDeg = deg[int(u.src)]
			}
		}
		degR := make(map[int]int)
		for _, u := range batch {
			degR[int(u.dst)]++
			if degR[int(u.dst)] > maxDeg {
				maxDeg = degR[int(u.dst)]
			}
		}
		if maxDeg > n {
			return nil, fmt.Errorf("congest: batch %d exceeds degree bound: %d > %d", bi, maxDeg, n)
		}
		colors, err := KonigEdgeColoring(left, right, maxDeg)
		if err != nil {
			return nil, fmt.Errorf("congest: batch %d: %w", bi, err)
		}
		rb := RelayBatch{Assignments: make([]RelayAssignment, len(batch))}
		for i, u := range batch {
			rb.Assignments[i] = RelayAssignment{Src: u.src, Dst: u.dst, Relay: NodeID(colors[i])}
		}
		out = append(out, rb)
	}
	return out, nil
}

// VerifyRelaySchedule checks that every batch of the schedule respects the
// one-word-per-directed-link-per-round constraint in both hops. Hops where
// relay == src (round 1) or relay == dst (round 2) are local and use no
// link.
func VerifyRelaySchedule(n int, batches []RelayBatch) error {
	for bi, b := range batches {
		hop1 := make(map[[2]NodeID]int)
		hop2 := make(map[[2]NodeID]int)
		for _, a := range b.Assignments {
			if a.Relay < 0 || int(a.Relay) >= n {
				return fmt.Errorf("congest: batch %d: relay %d out of range", bi, a.Relay)
			}
			if a.Src != a.Relay {
				k := [2]NodeID{a.Src, a.Relay}
				hop1[k]++
				if hop1[k] > 1 {
					return fmt.Errorf("congest: batch %d: link (%d->%d) overloaded in round 1", bi, a.Src, a.Relay)
				}
			}
			if a.Relay != a.Dst {
				k := [2]NodeID{a.Relay, a.Dst}
				hop2[k]++
				if hop2[k] > 1 {
					return fmt.Errorf("congest: batch %d: link (%d->%d) overloaded in round 2", bi, a.Relay, a.Dst)
				}
			}
		}
	}
	return nil
}

// validateRelaySchedule builds and verifies the schedule; used by
// ExchangeBalanced when validation is enabled.
func validateRelaySchedule(n int, msgs []Message) error {
	batches, err := BuildRelaySchedule(n, msgs)
	if err != nil {
		return err
	}
	return VerifyRelaySchedule(n, batches)
}
