package congest

// The fault injector's contract tests: a disabled plan is bit-identical to
// an unarmed network, equal seeds give equal schedules, recovered faults
// surcharge accounting without touching delivery, unrecovered faults fail
// phases with typed errors and deterministic crash windows, and MaxFaults
// caps the outage.

import (
	"errors"
	"testing"
)

// chatter runs a fixed little protocol over nw and returns node 1's inbox
// payloads flattened, so tests can compare delivery across networks.
func chatter(t *testing.T, nw *Network) []Word {
	t.Helper()
	msgs := []Message{
		{Src: 0, Dst: 1, Data: []Word{10, 11, 12}},
		{Src: 2, Dst: 1, Data: []Word{20}},
		{Src: 3, Dst: 0, Data: []Word{30, 31}},
	}
	inboxes, err := nw.ExchangeDirect("t/direct", msgs)
	if err != nil {
		t.Fatal(err)
	}
	var got []Word
	for _, m := range inboxes[1] {
		got = append(got, m.Data...)
	}
	if err := nw.Broadcast("t/bcast", 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := nw.Gather("t/gather", 0, 3); err != nil {
		t.Fatal(err)
	}
	return got
}

// metricsEqual compares the scalar accounting (Trace excluded).
func metricsEqual(a, b Metrics) bool {
	return a.Rounds == b.Rounds && a.Phases == b.Phases && a.Words == b.Words &&
		a.MaxLinkLoad == b.MaxLinkLoad && a.Faults == b.Faults
}

func TestFaultPlanValidate(t *testing.T) {
	bad := []FaultPlan{
		{DropRate: -0.1},
		{DupRate: 1.5},
		{CorruptRate: 2},
		{CrashRate: -1},
		{DropRate: 0.5, DupRate: 0.4, DelayRate: 0.3}, // sum > 1
		{DelayRate: 0.1, MaxDelayRounds: -1},
		{CrashRate: 0.1, CrashDownPhases: -2},
		{CorruptRate: 0.1, MaxFaults: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d (%+v): Validate accepted a malformed plan", i, p)
		}
		if _, err := NewNetwork(4, WithFaults(p)); err == nil && p.Enabled() {
			t.Errorf("plan %d (%+v): NewNetwork accepted a malformed plan", i, p)
		}
	}
	if err := (FaultPlan{Seed: 7, DropRate: 0.3, DupRate: 0.3, DelayRate: 0.4, MaxDelayRounds: 2}).Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	if (FaultPlan{}).Enabled() {
		t.Error("zero plan reports Enabled")
	}
}

func TestZeroPlanIsBitIdentical(t *testing.T) {
	plain, _ := NewNetwork(4)
	armed, err := NewNetwork(4, WithFaults(FaultPlan{Seed: 99}))
	if err != nil {
		t.Fatal(err)
	}
	got := chatter(t, armed)
	want := chatter(t, plain)
	if len(got) != len(want) {
		t.Fatalf("delivery differs: %v vs %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("delivery differs at %d: %v vs %v", i, got, want)
		}
	}
	if !metricsEqual(armed.Metrics(), plain.Metrics()) {
		t.Errorf("metrics differ:\narmed %+v\nplain %+v", armed.Metrics(), plain.Metrics())
	}
	if f := armed.Metrics().Faults; f != (FaultCounters{}) {
		t.Errorf("zero plan injected faults: %+v", f)
	}
}

func TestFaultScheduleDeterminism(t *testing.T) {
	plan := FaultPlan{Seed: 42, DropRate: 0.2, DupRate: 0.2, DelayRate: 0.2, MaxDelayRounds: 3}
	a, err := NewNetwork(4, WithFaults(plan))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewNetwork(4, WithFaults(plan))
	ga, gb := chatter(t, a), chatter(t, b)
	for i := range ga {
		if ga[i] != gb[i] {
			t.Fatalf("delivery differs between identical runs")
		}
	}
	if !metricsEqual(a.Metrics(), b.Metrics()) {
		t.Errorf("same seed, different metrics:\n%+v\n%+v", a.Metrics(), b.Metrics())
	}
	c, _ := NewNetwork(4, WithFaults(FaultPlan{Seed: 43, DropRate: 0.2, DupRate: 0.2, DelayRate: 0.2, MaxDelayRounds: 3}))
	chatter(t, c)
	if c.Metrics().Faults == a.Metrics().Faults && c.Metrics().Rounds == a.Metrics().Rounds {
		t.Log("warning: different seeds produced identical schedules (possible but unlikely)")
	}
}

func TestRecoveredFaultsKeepDeliveryIdentical(t *testing.T) {
	plain, _ := NewNetwork(4)
	want := chatter(t, plain)
	base := plain.Metrics()

	cases := []struct {
		name  string
		plan  FaultPlan
		check func(t *testing.T, m Metrics)
	}{
		{"drop", FaultPlan{Seed: 1, DropRate: 1}, func(t *testing.T, m Metrics) {
			if m.Faults.Dropped == 0 || m.Faults.RetransmitRounds == 0 {
				t.Errorf("drop counters not advanced: %+v", m.Faults)
			}
			if m.Rounds <= base.Rounds {
				t.Errorf("rounds %d not surcharged over fault-free %d", m.Rounds, base.Rounds)
			}
			if m.Words != base.Words {
				t.Errorf("drop changed words: %d vs %d", m.Words, base.Words)
			}
		}},
		{"dup", FaultPlan{Seed: 1, DupRate: 1}, func(t *testing.T, m Metrics) {
			if m.Faults.Duplicated == 0 {
				t.Errorf("dup counter not advanced: %+v", m.Faults)
			}
			if m.Words <= base.Words {
				t.Errorf("words %d not surcharged over fault-free %d", m.Words, base.Words)
			}
			if m.Rounds != base.Rounds {
				t.Errorf("dup changed rounds: %d vs %d", m.Rounds, base.Rounds)
			}
		}},
		{"delay", FaultPlan{Seed: 1, DelayRate: 1, MaxDelayRounds: 3}, func(t *testing.T, m Metrics) {
			if m.Faults.Delayed == 0 || m.Faults.DelayRounds == 0 {
				t.Errorf("delay counters not advanced: %+v", m.Faults)
			}
			if m.Rounds <= base.Rounds {
				t.Errorf("rounds %d not surcharged over fault-free %d", m.Rounds, base.Rounds)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			nw, err := NewNetwork(4, WithFaults(tc.plan))
			if err != nil {
				t.Fatal(err)
			}
			got := chatter(t, nw)
			if len(got) != len(want) {
				t.Fatalf("delivery differs under %s: %v vs %v", tc.name, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("delivery differs under %s at %d", tc.name, i)
				}
			}
			m := nw.Metrics()
			tc.check(t, m)
			if m.Faults.FailedPhases != 0 {
				t.Errorf("recovered-only plan failed phases: %+v", m.Faults)
			}
		})
	}
}

func TestCorruptionFailsPhaseAfterCharging(t *testing.T) {
	nw, err := NewNetwork(4, WithFaults(FaultPlan{Seed: 5, CorruptRate: 1}))
	if err != nil {
		t.Fatal(err)
	}
	_, xerr := nw.ExchangeDirect("t/x", []Message{{Src: 0, Dst: 1, Data: []Word{1, 2}}})
	var fe *FaultError
	if !errors.As(xerr, &fe) || fe.Kind != FaultCorrupt {
		t.Fatalf("want FaultCorrupt, got %v", xerr)
	}
	if fe.Node != -1 {
		t.Errorf("corruption has a victim node: %d", fe.Node)
	}
	m := nw.Metrics()
	if m.Rounds == 0 || m.Words == 0 {
		t.Errorf("corrupted phase cost not charged: %+v", m)
	}
	if m.Faults.Corrupted != 1 || m.Faults.FailedPhases != 1 {
		t.Errorf("corruption counters: %+v", m.Faults)
	}
	// Bulk phases fail the same way.
	if gerr := nw.Gather("t/g", 0, 2); gerr == nil || !errors.As(gerr, &fe) {
		t.Errorf("Gather under corruption: %v", gerr)
	}
	if berr := nw.BroadcastAll("t/b", 1); berr == nil || !errors.As(berr, &fe) {
		t.Errorf("BroadcastAll under corruption: %v", berr)
	}
}

func TestCrashWindowClearsDeterministically(t *testing.T) {
	nw, err := NewNetwork(4, WithFaults(FaultPlan{Seed: 5, CrashRate: 1, CrashDownPhases: 2, MaxFaults: 1}))
	if err != nil {
		t.Fatal(err)
	}
	var fe *FaultError
	// Attempt 1: the crash itself. No traffic flows, nothing is charged.
	if _, xerr := nw.ExchangeDirect("t/x", []Message{{Src: 0, Dst: 1, Data: []Word{1}}}); !errors.As(xerr, &fe) || fe.Kind != FaultCrash {
		t.Fatalf("want FaultCrash, got %v", xerr)
	}
	if fe.Node < 0 || int(fe.Node) >= nw.N() {
		t.Errorf("crash victim %d out of range", fe.Node)
	}
	if m := nw.Metrics(); m.Rounds != 0 || m.Words != 0 {
		t.Errorf("crashed phase charged traffic: %+v", m)
	}
	// Attempts 2 and 3: still down.
	for i := 0; i < 2; i++ {
		if _, xerr := nw.ExchangeDirect("t/x", []Message{{Src: 0, Dst: 1, Data: []Word{1}}}); !errors.As(xerr, &fe) {
			t.Fatalf("attempt %d during down window: %v", i+2, xerr)
		}
	}
	m := nw.Metrics()
	if m.Faults.Crashes != 1 || m.Faults.Restarts != 1 || m.Faults.FailedPhases != 3 {
		t.Errorf("crash counters after window: %+v", m.Faults)
	}
	// Attempt 4: restarted, budget spent — the phase succeeds.
	if _, xerr := nw.ExchangeDirect("t/x", []Message{{Src: 0, Dst: 1, Data: []Word{1}}}); xerr != nil {
		t.Fatalf("phase after restart: %v", xerr)
	}
	if nw.Rounds() == 0 {
		t.Error("post-restart phase not charged")
	}
}

func TestMaxFaultsCapsUnrecoveredFaults(t *testing.T) {
	nw, err := NewNetwork(4, WithFaults(FaultPlan{Seed: 5, CorruptRate: 1, MaxFaults: 2}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if berr := nw.Broadcast("t/b", 0, 1); berr == nil {
			t.Fatalf("fault %d not injected", i+1)
		}
	}
	for i := 0; i < 3; i++ {
		if berr := nw.Broadcast("t/b", 0, 1); berr != nil {
			t.Fatalf("budget-exhausted phase %d failed: %v", i+1, berr)
		}
	}
	if got := nw.Metrics().Faults.Corrupted; got != 2 {
		t.Errorf("Corrupted = %d, want 2", got)
	}
}

func TestFaultCountersFlowThroughDeltaAndAdd(t *testing.T) {
	nw, err := NewNetwork(4, WithFaults(FaultPlan{Seed: 1, DupRate: 1}))
	if err != nil {
		t.Fatal(err)
	}
	before := nw.Snapshot()
	if _, xerr := nw.ExchangeDirect("t/x", []Message{{Src: 0, Dst: 1, Data: []Word{1, 2, 3}}}); xerr != nil {
		t.Fatal(xerr)
	}
	d := nw.DeltaSince(before)
	if d.Faults.Duplicated != 1 {
		t.Errorf("delta Duplicated = %d, want 1", d.Faults.Duplicated)
	}
	var agg Metrics
	agg.Add(d)
	agg.Add(d)
	if agg.Faults.Duplicated != 2 {
		t.Errorf("Add did not merge fault counters: %+v", agg.Faults)
	}
	if (FaultCounters{Dropped: 1, Corrupted: 2}).Injected() != 3 {
		t.Error("Injected miscounts")
	}
}

func TestFaultErrorStrings(t *testing.T) {
	crash := (&FaultError{Kind: FaultCrash, Node: 3, Label: "p"}).Error()
	corrupt := (&FaultError{Kind: FaultCorrupt, Node: -1, Label: "p"}).Error()
	if crash == corrupt || crash == "" {
		t.Errorf("degenerate error strings: %q / %q", crash, corrupt)
	}
	if FaultCrash.String() != "crash" || FaultCorrupt.String() != "corrupt" {
		t.Error("FaultKind strings")
	}
}
