package congest

import "testing"

// TestAcquirePayloadBorrowContract exercises the two-generation payload
// arena: payloads written before an Exchange must stay readable through the
// inboxes of that exchange, and the second-next Exchange must recycle the
// generation's storage instead of growing it.
func TestAcquirePayloadBorrowContract(t *testing.T) {
	nw, err := NewNetwork(3)
	if err != nil {
		t.Fatal(err)
	}

	send := func(tag Word) [][]Message {
		p := nw.AcquirePayload(2)
		p = append(p, tag, tag+1)
		inboxes, err := nw.ExchangeDirect("payload", []Message{{Src: 0, Dst: 1, Data: p}})
		if err != nil {
			t.Fatal(err)
		}
		return inboxes
	}

	inboxes := send(10)
	got := inboxes[1][0].Data
	if len(got) != 2 || got[0] != 10 || got[1] != 11 {
		t.Fatalf("first exchange delivered %v", got)
	}
	// The next exchange's payload lives in the other generation, so the
	// previously delivered data must still be intact while the new inboxes
	// are live.
	inboxes2 := send(20)
	if got[0] != 10 || got[1] != 11 {
		t.Fatalf("payload of the previous exchange was clobbered early: %v", got)
	}
	if d := inboxes2[1][0].Data; d[0] != 20 || d[1] != 21 {
		t.Fatalf("second exchange delivered %v", d)
	}

	// Steady state: the arena must recycle rather than grow. Run many more
	// exchanges and check the block count stays put.
	for i := 0; i < 50; i++ {
		send(Word(100 + i))
	}
	for gen, a := range nw.transport.(*localTransport).payloads {
		if len(a.blocks) != 1 {
			t.Fatalf("generation %d grew to %d blocks; steady state should recycle one", gen, len(a.blocks))
		}
	}
}

// TestAcquirePayloadLargeBlocks checks that acquisitions beyond the minimum
// block size get a dedicated block and stay contiguous.
func TestAcquirePayloadLargeBlocks(t *testing.T) {
	nw, err := NewNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	n := payloadBlockWords * 3
	p := nw.AcquirePayload(n)
	if cap(p) < n {
		t.Fatalf("capacity %d < requested %d", cap(p), n)
	}
	for i := 0; i < n; i++ {
		p = append(p, Word(i))
	}
	if p[0] != 0 || p[n-1] != Word(n-1) {
		t.Fatal("large payload not contiguous")
	}
}
