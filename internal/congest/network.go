// Package congest simulates the CONGEST-CLIQUE model: n nodes on a fully
// connected network exchanging O(log n)-bit messages in synchronous rounds.
//
// # Cost model
//
// The unit of payload is the Word: one O(log n)-bit message. In one round,
// every ordered pair of nodes may exchange one word. A communication phase
// that places load(s,d) words on the directed link (s,d) therefore costs
// max_{s,d} load(s,d) rounds when sent directly. Balanced delivery via
// Lemma 1 of the paper (Dolev, Lenzen, Peled 2012) is available through the
// Router: a message set in which no node sources more than n words and no
// node sinks more than n words is delivered in two rounds.
//
// # Fidelity
//
// The simulator supports two interchangeable modes with identical round
// arithmetic: payload-carrying exchanges (messages are materialized and
// delivered to per-node inboxes; used by tests and small-n runs) and bulk
// load charging (only the per-link word counts are accounted; used by
// large-n scaling benches). Protocols in this repository are written so
// that every piece of cross-node information flows through an Exchange or
// is charged through ChargeDirect/ChargeBalanced.
package congest

import (
	"fmt"
)

// NodeID identifies a network node, 0 <= id < N.
type NodeID int

// Word is one O(log n)-bit message payload unit.
type Word uint64

// Message is a point-to-point message of one or more words. A k-word
// message occupies its link for k rounds under direct delivery.
type Message struct {
	Src, Dst NodeID
	Data     []Word
}

// Words returns the word count of the message (minimum 1: even an empty
// notification occupies a message slot).
func (m Message) Words() int64 {
	if len(m.Data) == 0 {
		return 1
	}
	return int64(len(m.Data))
}

// Load is an aggregate word count on one directed link, used by the
// charge-only mode.
type Load struct {
	Src, Dst NodeID
	Words    int64
}

// PhaseKind labels what produced a phase's cost, for reporting.
type PhaseKind int

// Phase kinds.
const (
	PhaseDirect PhaseKind = iota + 1
	PhaseBalanced
	PhaseBroadcast
	PhaseLocal
)

func (k PhaseKind) String() string {
	switch k {
	case PhaseDirect:
		return "direct"
	case PhaseBalanced:
		return "balanced"
	case PhaseBroadcast:
		return "broadcast"
	case PhaseLocal:
		return "local"
	default:
		return fmt.Sprintf("PhaseKind(%d)", int(k))
	}
}

// PhaseStat records one accounting event.
type PhaseStat struct {
	Kind        PhaseKind
	Label       string
	Rounds      int64
	Words       int64
	MaxLinkLoad int64
}

// Metrics accumulates the cost of a protocol run.
type Metrics struct {
	Rounds      int64 // total rounds charged
	Phases      int64 // number of accounting events
	Words       int64 // total words moved
	MaxLinkLoad int64 // max words placed on one link within a single phase
	Trace       []PhaseStat
}

func (m *Metrics) record(st PhaseStat) {
	m.Rounds += st.Rounds
	m.Phases++
	m.Words += st.Words
	if st.MaxLinkLoad > m.MaxLinkLoad {
		m.MaxLinkLoad = st.MaxLinkLoad
	}
	m.Trace = append(m.Trace, st)
}

// Add merges other into m (used to roll up sub-protocol costs).
func (m *Metrics) Add(other Metrics) {
	m.Rounds += other.Rounds
	m.Phases += other.Phases
	m.Words += other.Words
	if other.MaxLinkLoad > m.MaxLinkLoad {
		m.MaxLinkLoad = other.MaxLinkLoad
	}
	m.Trace = append(m.Trace, other.Trace...)
}

// Network is a CONGEST-CLIQUE instance with n nodes.
type Network struct {
	n       int
	metrics Metrics

	// validateSchedules, when true, makes balanced exchanges construct an
	// explicit two-round relay schedule (König edge coloring) and verify
	// that no link carries more than one word per round. Expensive; meant
	// for tests and small runs.
	validateSchedules bool

	// traceLimit bounds the retained per-phase trace to avoid unbounded
	// memory in long runs; 0 keeps everything.
	traceLimit int
}

// Option configures a Network.
type Option func(*Network)

// WithScheduleValidation turns on explicit schedule construction and
// verification for balanced exchanges.
func WithScheduleValidation() Option {
	return func(nw *Network) { nw.validateSchedules = true }
}

// WithTraceLimit caps the retained phase trace at limit entries (the
// aggregate counters still cover everything).
func WithTraceLimit(limit int) Option {
	return func(nw *Network) { nw.traceLimit = limit }
}

// NewNetwork creates a CONGEST-CLIQUE network with n nodes.
func NewNetwork(n int, opts ...Option) (*Network, error) {
	if n <= 0 {
		return nil, fmt.Errorf("congest: network needs at least 1 node, got %d", n)
	}
	nw := &Network{n: n}
	for _, o := range opts {
		o(nw)
	}
	return nw, nil
}

// N returns the node count.
func (nw *Network) N() int { return nw.n }

// Metrics returns a copy of the accumulated metrics.
func (nw *Network) Metrics() Metrics {
	m := nw.metrics
	m.Trace = append([]PhaseStat(nil), nw.metrics.Trace...)
	return m
}

// Rounds returns the total rounds charged so far.
func (nw *Network) Rounds() int64 { return nw.metrics.Rounds }

// ResetMetrics clears the accumulated metrics (the topology is unchanged).
func (nw *Network) ResetMetrics() { nw.metrics = Metrics{} }

func (nw *Network) record(st PhaseStat) {
	if nw.traceLimit > 0 && len(nw.metrics.Trace) >= nw.traceLimit {
		// Aggregate without retaining the entry.
		nw.metrics.Rounds += st.Rounds
		nw.metrics.Phases++
		nw.metrics.Words += st.Words
		if st.MaxLinkLoad > nw.metrics.MaxLinkLoad {
			nw.metrics.MaxLinkLoad = st.MaxLinkLoad
		}
		return
	}
	nw.metrics.record(st)
}

// checkEndpoints validates one message's endpoints.
func (nw *Network) checkEndpoints(src, dst NodeID) error {
	if src < 0 || int(src) >= nw.n {
		return fmt.Errorf("congest: source %d out of range (n=%d)", src, nw.n)
	}
	if dst < 0 || int(dst) >= nw.n {
		return fmt.Errorf("congest: destination %d out of range (n=%d)", dst, nw.n)
	}
	if src == dst {
		return fmt.Errorf("congest: self-message at node %d (local state needs no network)", src)
	}
	return nil
}

// linkLoads aggregates per-link word counts of a message batch.
func (nw *Network) linkLoads(msgs []Message) (map[[2]NodeID]int64, int64, error) {
	loads := make(map[[2]NodeID]int64)
	var total int64
	for _, m := range msgs {
		if err := nw.checkEndpoints(m.Src, m.Dst); err != nil {
			return nil, 0, err
		}
		w := m.Words()
		loads[[2]NodeID{m.Src, m.Dst}] += w
		total += w
	}
	return loads, total, nil
}

// ExchangeDirect delivers msgs with direct (non-relayed) scheduling: the
// phase costs the maximum per-link word count. It returns per-destination
// inboxes. Message order within an inbox is deterministic (stable in input
// order).
func (nw *Network) ExchangeDirect(label string, msgs []Message) ([][]Message, error) {
	loads, total, err := nw.linkLoads(msgs)
	if err != nil {
		return nil, fmt.Errorf("exchange %q: %w", label, err)
	}
	var maxLink int64
	for _, w := range loads {
		if w > maxLink {
			maxLink = w
		}
	}
	nw.record(PhaseStat{
		Kind:        PhaseDirect,
		Label:       label,
		Rounds:      maxLink,
		Words:       total,
		MaxLinkLoad: maxLink,
	})
	return nw.deliver(msgs), nil
}

// ExchangeBalanced delivers msgs using Lemma 1 routing: the message set is
// split into sub-batches in which every node sources at most n words and
// sinks at most n words; each sub-batch costs two rounds. The total cost is
// 2 * ceil(max(maxSourceLoad, maxDestLoad) / n). When schedule validation
// is enabled, an explicit relay schedule is constructed per sub-batch and
// verified against the one-word-per-link-per-round constraint.
func (nw *Network) ExchangeBalanced(label string, msgs []Message) ([][]Message, error) {
	var srcLoad, dstLoad int64
	perSrc := make(map[NodeID]int64)
	perDst := make(map[NodeID]int64)
	var total int64
	var maxLink int64
	linkLoads := make(map[[2]NodeID]int64)
	for _, m := range msgs {
		if err := nw.checkEndpoints(m.Src, m.Dst); err != nil {
			return nil, fmt.Errorf("exchange %q: %w", label, err)
		}
		w := m.Words()
		perSrc[m.Src] += w
		perDst[m.Dst] += w
		total += w
		l := linkLoads[[2]NodeID{m.Src, m.Dst}] + w
		linkLoads[[2]NodeID{m.Src, m.Dst}] = l
		if l > maxLink {
			maxLink = l
		}
	}
	for _, w := range perSrc {
		if w > srcLoad {
			srcLoad = w
		}
	}
	for _, w := range perDst {
		if w > dstLoad {
			dstLoad = w
		}
	}
	rounds := balancedRounds(srcLoad, dstLoad, int64(nw.n))
	if nw.validateSchedules && len(msgs) > 0 {
		if err := validateRelaySchedule(nw.n, msgs); err != nil {
			return nil, fmt.Errorf("exchange %q: schedule validation: %w", label, err)
		}
	}
	nw.record(PhaseStat{
		Kind:        PhaseBalanced,
		Label:       label,
		Rounds:      rounds,
		Words:       total,
		MaxLinkLoad: maxLink,
	})
	return nw.deliver(msgs), nil
}

// balancedRounds is the Lemma 1 round formula: two rounds per sub-batch of
// at-most-n-per-source and at-most-n-per-destination words.
func balancedRounds(srcLoad, dstLoad, n int64) int64 {
	load := srcLoad
	if dstLoad > load {
		load = dstLoad
	}
	if load == 0 {
		return 0
	}
	batches := (load + n - 1) / n
	return 2 * batches
}

// deliver groups messages by destination, preserving input order.
func (nw *Network) deliver(msgs []Message) [][]Message {
	inboxes := make([][]Message, nw.n)
	counts := make([]int, nw.n)
	for _, m := range msgs {
		counts[m.Dst]++
	}
	for i, c := range counts {
		if c > 0 {
			inboxes[i] = make([]Message, 0, c)
		}
	}
	for _, m := range msgs {
		inboxes[m.Dst] = append(inboxes[m.Dst], m)
	}
	return inboxes
}

// ChargeDirect accounts a bulk phase without materializing payloads.
func (nw *Network) ChargeDirect(label string, loads []Load) error {
	var maxLink int64
	agg := make(map[[2]NodeID]int64)
	var total int64
	for _, l := range loads {
		if err := nw.checkEndpoints(l.Src, l.Dst); err != nil {
			return fmt.Errorf("charge %q: %w", label, err)
		}
		if l.Words < 0 {
			return fmt.Errorf("charge %q: negative load", label)
		}
		w := agg[[2]NodeID{l.Src, l.Dst}] + l.Words
		agg[[2]NodeID{l.Src, l.Dst}] = w
		total += l.Words
		if w > maxLink {
			maxLink = w
		}
	}
	nw.record(PhaseStat{
		Kind:        PhaseDirect,
		Label:       label,
		Rounds:      maxLink,
		Words:       total,
		MaxLinkLoad: maxLink,
	})
	return nil
}

// ChargeBalanced accounts a bulk Lemma-1 phase without materializing
// payloads.
func (nw *Network) ChargeBalanced(label string, loads []Load) error {
	perSrc := make(map[NodeID]int64)
	perDst := make(map[NodeID]int64)
	agg := make(map[[2]NodeID]int64)
	var total, maxLink int64
	for _, l := range loads {
		if err := nw.checkEndpoints(l.Src, l.Dst); err != nil {
			return fmt.Errorf("charge %q: %w", label, err)
		}
		if l.Words < 0 {
			return fmt.Errorf("charge %q: negative load", label)
		}
		perSrc[l.Src] += l.Words
		perDst[l.Dst] += l.Words
		total += l.Words
		w := agg[[2]NodeID{l.Src, l.Dst}] + l.Words
		agg[[2]NodeID{l.Src, l.Dst}] = w
		if w > maxLink {
			maxLink = w
		}
	}
	var srcLoad, dstLoad int64
	for _, w := range perSrc {
		if w > srcLoad {
			srcLoad = w
		}
	}
	for _, w := range perDst {
		if w > dstLoad {
			dstLoad = w
		}
	}
	nw.record(PhaseStat{
		Kind:        PhaseBalanced,
		Label:       label,
		Rounds:      balancedRounds(srcLoad, dstLoad, int64(nw.n)),
		Words:       total,
		MaxLinkLoad: maxLink,
	})
	return nil
}

// ChargeLocal records a zero-round bookkeeping phase (local computation),
// keeping traces readable.
func (nw *Network) ChargeLocal(label string) {
	nw.record(PhaseStat{Kind: PhaseLocal, Label: label})
}

// Broadcast accounts node src sending the same words-long payload to every
// other node. Every outgoing link of src carries the full payload in
// parallel, so the phase costs exactly words rounds.
func (nw *Network) Broadcast(label string, src NodeID, words int64) error {
	if src < 0 || int(src) >= nw.n {
		return fmt.Errorf("broadcast %q: source %d out of range", label, src)
	}
	if words < 0 {
		return fmt.Errorf("broadcast %q: negative word count", label)
	}
	nw.record(PhaseStat{
		Kind:        PhaseBroadcast,
		Label:       label,
		Rounds:      words,
		Words:       words * int64(nw.n-1),
		MaxLinkLoad: words,
	})
	return nil
}

// ReplayCharge re-records the aggregate cost of a previously measured
// metrics delta, times over. It supports the quantum oracle accounting: a
// fixed, input-independent communication schedule is executed (and
// measured) once, and each further oracle invocation re-runs the identical
// schedule, so its cost is replayed rather than re-simulated.
func (nw *Network) ReplayCharge(label string, delta Metrics, times int64) {
	if times <= 0 {
		return
	}
	nw.record(PhaseStat{
		Kind:        PhaseDirect,
		Label:       label,
		Rounds:      delta.Rounds * times,
		Words:       delta.Words * times,
		MaxLinkLoad: delta.MaxLinkLoad,
	})
}

// DeltaSince returns the metrics accumulated after a previously captured
// baseline (aggregate counters only; the trace is not diffed).
func (nw *Network) DeltaSince(baseline Metrics) Metrics {
	return Metrics{
		Rounds:      nw.metrics.Rounds - baseline.Rounds,
		Phases:      nw.metrics.Phases - baseline.Phases,
		Words:       nw.metrics.Words - baseline.Words,
		MaxLinkLoad: nw.metrics.MaxLinkLoad,
	}
}

// BroadcastAll accounts every node simultaneously broadcasting words-long
// payloads (full gossip). All links carry words in parallel: words rounds.
func (nw *Network) BroadcastAll(label string, words int64) error {
	if words < 0 {
		return fmt.Errorf("broadcast %q: negative word count", label)
	}
	nw.record(PhaseStat{
		Kind:        PhaseBroadcast,
		Label:       label,
		Rounds:      words,
		Words:       words * int64(nw.n) * int64(nw.n-1),
		MaxLinkLoad: words,
	})
	return nil
}
