// Package congest simulates the CONGEST-CLIQUE model: n nodes on a fully
// connected network exchanging O(log n)-bit messages in synchronous rounds.
//
// # Cost model
//
// The unit of payload is the Word: one O(log n)-bit message. In one round,
// every ordered pair of nodes may exchange one word. A communication phase
// that places load(s,d) words on the directed link (s,d) therefore costs
// max_{s,d} load(s,d) rounds when sent directly. Balanced delivery via
// Lemma 1 of the paper (Dolev, Lenzen, Peled 2012) is available through the
// Router: a message set in which no node sources more than n words and no
// node sinks more than n words is delivered in two rounds.
//
// # Fidelity
//
// The simulator supports two interchangeable modes with identical round
// arithmetic: payload-carrying exchanges (messages are materialized and
// delivered to per-node inboxes; used by tests and small-n runs) and bulk
// load charging (only the per-link word counts are accounted; used by
// large-n scaling benches). Protocols in this repository are written so
// that every piece of cross-node information flows through an Exchange or
// is charged through ChargeDirect/ChargeBalanced.
//
// # Memory model of the simulator
//
// The simulator owns three classes of reusable storage so that a
// steady-state protocol run charges phases without heap allocation.
// (1) Accounting: the per-phase link/node word counters live in flat
// epoch-stamped arrays (linkScratch) on the Network — beginning a phase
// bumps the epoch instead of clearing, so cost is proportional to the links
// actually touched. (2) Inboxes: the per-destination delivery slices
// returned by ExchangeDirect/ExchangeBalanced are borrowed from the
// network's Transport and recycled at the next Exchange call.
// (3) Payloads: Message.Data slices can be carved from the transport's
// two-generation payload arena via AcquirePayload; each Exchange flips the
// generation, so payloads follow exactly the inbox borrow contract — valid
// until the next Exchange on this network — and the arena is recycled at
// its high-water mark instead of reallocated. Protocol layers add their own
// scratch on top (see internal/triangles.Scratch); together these make a
// steady-state Solve allocation-free.
//
// # Transports
//
// Delivery mechanics are pluggable: the Network stays the accounting and
// fault-injection authority while a Transport backend (selected with
// WithTransport) owns the inbox and payload storage and moves each phase's
// message set. Two backends ship: "local", the single-goroutine reference,
// and "sharded", which partitions nodes across worker shards with batched
// inter-shard buffers. Backends are required to be bit-identical in
// delivered inboxes — and therefore in rounds, words, distances, and fault
// schedules — for every protocol; see transport.go for the contract a
// backend implementer must follow and the recycling rules from the
// backend's side.
package congest

import (
	"fmt"
)

// NodeID identifies a network node, 0 <= id < N.
type NodeID int

// Word is one O(log n)-bit message payload unit.
type Word uint64

// Message is a point-to-point message of one or more words. A k-word
// message occupies its link for k rounds under direct delivery.
type Message struct {
	Src, Dst NodeID
	Data     []Word
}

// Words returns the word count of the message (minimum 1: even an empty
// notification occupies a message slot).
func (m Message) Words() int64 {
	if len(m.Data) == 0 {
		return 1
	}
	return int64(len(m.Data))
}

// Load is an aggregate word count on one directed link, used by the
// charge-only mode.
type Load struct {
	Src, Dst NodeID
	Words    int64
}

// PhaseKind labels what produced a phase's cost, for reporting.
type PhaseKind int

// Phase kinds.
const (
	PhaseDirect PhaseKind = iota + 1
	PhaseBalanced
	PhaseBroadcast
	PhaseLocal
)

func (k PhaseKind) String() string {
	switch k {
	case PhaseDirect:
		return "direct"
	case PhaseBalanced:
		return "balanced"
	case PhaseBroadcast:
		return "broadcast"
	case PhaseLocal:
		return "local"
	default:
		return fmt.Sprintf("PhaseKind(%d)", int(k))
	}
}

// PhaseStat records one accounting event.
type PhaseStat struct {
	Kind        PhaseKind
	Label       string
	Rounds      int64
	Words       int64
	MaxLinkLoad int64
}

// Metrics accumulates the cost of a protocol run.
type Metrics struct {
	Rounds      int64 // total rounds charged
	Phases      int64 // number of accounting events
	Words       int64 // total words moved
	MaxLinkLoad int64 // max words placed on one link within a single phase
	// Faults tallies injected faults and their recovery surcharges; all
	// zeros unless the network was armed with WithFaults.
	Faults FaultCounters
	Trace  []PhaseStat
}

func (m *Metrics) record(st PhaseStat) {
	m.Rounds += st.Rounds
	m.Phases++
	m.Words += st.Words
	if st.MaxLinkLoad > m.MaxLinkLoad {
		m.MaxLinkLoad = st.MaxLinkLoad
	}
	m.Trace = append(m.Trace, st)
}

// Add merges other into m (used to roll up sub-protocol costs).
func (m *Metrics) Add(other Metrics) {
	m.Rounds += other.Rounds
	m.Phases += other.Phases
	m.Words += other.Words
	if other.MaxLinkLoad > m.MaxLinkLoad {
		m.MaxLinkLoad = other.MaxLinkLoad
	}
	m.Faults.Add(other.Faults)
	m.Trace = append(m.Trace, other.Trace...)
}

// Network is a CONGEST-CLIQUE instance with n nodes.
//
// A Network is not safe for concurrent use: protocols parallelize their
// node-local computation (see package par) but funnel all communication
// accounting through a single goroutine, which is also what keeps round
// charging deterministic.
type Network struct {
	n       int
	metrics Metrics

	// validateSchedules, when true, makes balanced exchanges construct an
	// explicit two-round relay schedule (König edge coloring) and verify
	// that no link carries more than one word per round. Expensive; meant
	// for tests and small runs.
	validateSchedules bool

	// traceLimit bounds the retained per-phase trace to avoid unbounded
	// memory in long runs; 0 keeps everything.
	traceLimit int

	// sc holds the flat per-phase accounting buffers, reused across phases
	// so that recording a phase performs zero heap allocations.
	sc linkScratch

	// transport is the delivery backend owning the inbox and payload
	// storage; transportName/transportShards hold the WithTransport /
	// WithTransportShards requests until NewNetwork resolves them.
	transport       Transport
	transportName   string
	transportShards int

	// faults is the armed fault injector (see faults.go); nil — the
	// default — keeps every phase method on its fault-free fast path.
	faults *faultState
}

// AcquirePayload returns a zero-length word slice with capacity words,
// carved from the transport's payload arena, for callers assembling
// Message.Data by append. The slice follows the inbox borrow contract: it
// is recycled by the second-next Exchange call on this network (the
// generation flip at each delivery keeps the payloads referenced by the
// current inboxes intact), so senders build payloads, exchange, and let
// receivers read them — but must copy anything they need to keep.
func (nw *Network) AcquirePayload(words int) []Word {
	return nw.transport.AcquirePayload(words)
}

// linkScratch is the reusable flat accounting state for one phase: per-link
// word counts over the n² directed links plus per-node source/destination
// totals. Entries are validity-stamped with a phase epoch instead of being
// cleared, so beginning a phase is O(1) and only touched slots are visited.
type linkScratch struct {
	epoch     uint64
	link      []int64  // n*n, row-major (src*n + dst)
	linkStamp []uint64 // epoch when link[i] was last written
	touched   []int32  // link indices written this phase
	perSrc    []int64  // n per-source word totals
	perDst    []int64  // n per-destination word totals
	nodeStamp []uint64 // epoch stamps shared by perSrc/perDst
}

func (sc *linkScratch) ensure(n int) {
	if len(sc.link) < n*n {
		sc.link = make([]int64, n*n)
		sc.linkStamp = make([]uint64, n*n)
		sc.perSrc = make([]int64, n)
		sc.perDst = make([]int64, n)
		sc.nodeStamp = make([]uint64, n)
	}
}

// begin opens a new accounting phase.
func (sc *linkScratch) begin(n int) {
	sc.ensure(n)
	sc.epoch++
	sc.touched = sc.touched[:0]
}

// addLink accumulates w words on link (s,d) and returns the link's running
// total within the phase.
func (sc *linkScratch) addLink(n int, s, d NodeID, w int64) int64 {
	idx := int(s)*n + int(d)
	if sc.linkStamp[idx] != sc.epoch {
		sc.linkStamp[idx] = sc.epoch
		sc.link[idx] = 0
		sc.touched = append(sc.touched, int32(idx))
	}
	sc.link[idx] += w
	return sc.link[idx]
}

// addNode accumulates w words on the per-source and per-destination totals.
func (sc *linkScratch) addNode(s, d NodeID, w int64) {
	for _, v := range [2]NodeID{s, d} {
		if sc.nodeStamp[v] != sc.epoch {
			sc.nodeStamp[v] = sc.epoch
			sc.perSrc[v] = 0
			sc.perDst[v] = 0
		}
	}
	sc.perSrc[s] += w
	sc.perDst[d] += w
}

// maxLink returns the largest per-link total of the phase.
func (sc *linkScratch) maxLink() int64 {
	var m int64
	for _, idx := range sc.touched {
		if sc.link[idx] > m {
			m = sc.link[idx]
		}
	}
	return m
}

// maxNode returns the largest per-source and per-destination totals of the
// phase (scanning only stamped nodes via the touched link endpoints would
// double-visit; the touched list is per-link, so recover node maxima from
// it instead).
func (sc *linkScratch) maxNode(n int) (srcLoad, dstLoad int64) {
	for _, idx := range sc.touched {
		s := NodeID(int(idx) / n)
		d := NodeID(int(idx) % n)
		if sc.nodeStamp[s] == sc.epoch && sc.perSrc[s] > srcLoad {
			srcLoad = sc.perSrc[s]
		}
		if sc.nodeStamp[d] == sc.epoch && sc.perDst[d] > dstLoad {
			dstLoad = sc.perDst[d]
		}
	}
	return srcLoad, dstLoad
}

// Option configures a Network.
type Option func(*Network)

// WithScheduleValidation turns on explicit schedule construction and
// verification for balanced exchanges.
func WithScheduleValidation() Option {
	return func(nw *Network) { nw.validateSchedules = true }
}

// WithTraceLimit caps the retained phase trace at limit entries (the
// aggregate counters still cover everything).
func WithTraceLimit(limit int) Option {
	return func(nw *Network) { nw.traceLimit = limit }
}

// NewNetwork creates a CONGEST-CLIQUE network with n nodes.
func NewNetwork(n int, opts ...Option) (*Network, error) {
	if n <= 0 {
		return nil, fmt.Errorf("congest: network needs at least 1 node, got %d", n)
	}
	nw := &Network{n: n}
	for _, o := range opts {
		o(nw)
	}
	name, factory, err := lookupTransport(nw.transportName)
	if err != nil {
		return nil, err
	}
	nw.transportName = name
	nw.transport = factory(n, nw.transportShards)
	if nw.faults != nil {
		if err := nw.faults.plan.Validate(); err != nil {
			return nil, err
		}
		nw.faults.init()
	}
	return nw, nil
}

// N returns the node count.
func (nw *Network) N() int { return nw.n }

// Metrics returns a copy of the accumulated metrics, including a copy of
// the retained phase trace. Hot paths that only need the aggregate counters
// (for DeltaSince arithmetic) should use Snapshot, which skips the O(trace)
// copy.
func (nw *Network) Metrics() Metrics {
	m := nw.metrics
	m.Trace = append([]PhaseStat(nil), nw.metrics.Trace...)
	return m
}

// Snapshot returns the aggregate counters without copying the phase trace
// (Trace is nil in the result). It is the allocation-free companion of
// Metrics for baseline/delta accounting inside protocol hot loops.
func (nw *Network) Snapshot() Metrics {
	m := nw.metrics
	m.Trace = nil
	return m
}

// Rounds returns the total rounds charged so far.
func (nw *Network) Rounds() int64 { return nw.metrics.Rounds }

// ResetMetrics clears the accumulated metrics (the topology is unchanged).
func (nw *Network) ResetMetrics() { nw.metrics = Metrics{} }

func (nw *Network) record(st PhaseStat) {
	if nw.traceLimit > 0 && len(nw.metrics.Trace) >= nw.traceLimit {
		// Aggregate without retaining the entry.
		nw.metrics.Rounds += st.Rounds
		nw.metrics.Phases++
		nw.metrics.Words += st.Words
		if st.MaxLinkLoad > nw.metrics.MaxLinkLoad {
			nw.metrics.MaxLinkLoad = st.MaxLinkLoad
		}
		return
	}
	nw.metrics.record(st)
}

// checkEndpoints validates one message's endpoints.
func (nw *Network) checkEndpoints(src, dst NodeID) error {
	if src < 0 || int(src) >= nw.n {
		return fmt.Errorf("congest: source %d out of range (n=%d)", src, nw.n)
	}
	if dst < 0 || int(dst) >= nw.n {
		return fmt.Errorf("congest: destination %d out of range (n=%d)", dst, nw.n)
	}
	if src == dst {
		return fmt.Errorf("congest: self-message at node %d (local state needs no network)", src)
	}
	return nil
}

// ExchangeDirect delivers msgs with direct (non-relayed) scheduling: the
// phase costs the maximum per-link word count. It returns per-destination
// inboxes. Message order within an inbox is deterministic (stable in input
// order). The returned inboxes are borrowed from the network's delivery
// buffer and remain valid only until the next Exchange call on this
// network; callers that need them longer must copy.
func (nw *Network) ExchangeDirect(label string, msgs []Message) ([][]Message, error) {
	fs, ferr := nw.faultBegin(label)
	if ferr != nil {
		return nil, fmt.Errorf("exchange %q: %w", label, ferr)
	}
	nw.sc.begin(nw.n)
	var total int64
	for _, m := range msgs {
		if err := nw.checkEndpoints(m.Src, m.Dst); err != nil {
			return nil, fmt.Errorf("exchange %q: %w", label, err)
		}
		w := m.Words()
		nw.sc.addLink(nw.n, m.Src, m.Dst, w)
		total += w
		if fs != nil {
			fs.onWords(w, &nw.metrics.Faults)
		}
	}
	maxLink := nw.sc.maxLink()
	st := PhaseStat{
		Kind:        PhaseDirect,
		Label:       label,
		Rounds:      maxLink,
		Words:       total,
		MaxLinkLoad: maxLink,
	}
	if fs != nil {
		fs.finish(&st, &nw.metrics.Faults)
	}
	nw.record(st)
	if fs != nil && fs.pendErr != nil {
		return nil, fmt.Errorf("exchange %q: %w", label, fs.pendErr)
	}
	return nw.deliver(msgs), nil
}

// ExchangeBalanced delivers msgs using Lemma 1 routing: the message set is
// split into sub-batches in which every node sources at most n words and
// sinks at most n words; each sub-batch costs two rounds. The total cost is
// 2 * ceil(max(maxSourceLoad, maxDestLoad) / n). When schedule validation
// is enabled, an explicit relay schedule is constructed per sub-batch and
// verified against the one-word-per-link-per-round constraint. The returned
// inboxes follow the same borrow contract as ExchangeDirect.
func (nw *Network) ExchangeBalanced(label string, msgs []Message) ([][]Message, error) {
	fs, ferr := nw.faultBegin(label)
	if ferr != nil {
		return nil, fmt.Errorf("exchange %q: %w", label, ferr)
	}
	nw.sc.begin(nw.n)
	var total, maxLink int64
	for _, m := range msgs {
		if err := nw.checkEndpoints(m.Src, m.Dst); err != nil {
			return nil, fmt.Errorf("exchange %q: %w", label, err)
		}
		w := m.Words()
		nw.sc.addNode(m.Src, m.Dst, w)
		if l := nw.sc.addLink(nw.n, m.Src, m.Dst, w); l > maxLink {
			maxLink = l
		}
		total += w
		if fs != nil {
			fs.onWords(w, &nw.metrics.Faults)
		}
	}
	srcLoad, dstLoad := nw.sc.maxNode(nw.n)
	rounds := balancedRounds(srcLoad, dstLoad, int64(nw.n))
	if nw.validateSchedules && len(msgs) > 0 {
		if err := validateRelaySchedule(nw.n, msgs); err != nil {
			return nil, fmt.Errorf("exchange %q: schedule validation: %w", label, err)
		}
	}
	st := PhaseStat{
		Kind:        PhaseBalanced,
		Label:       label,
		Rounds:      rounds,
		Words:       total,
		MaxLinkLoad: maxLink,
	}
	if fs != nil {
		fs.finish(&st, &nw.metrics.Faults)
	}
	nw.record(st)
	if fs != nil && fs.pendErr != nil {
		return nil, fmt.Errorf("exchange %q: %w", label, fs.pendErr)
	}
	return nw.deliver(msgs), nil
}

// balancedRounds is the Lemma 1 round formula: two rounds per sub-batch of
// at-most-n-per-source and at-most-n-per-destination words.
func balancedRounds(srcLoad, dstLoad, n int64) int64 {
	load := srcLoad
	if dstLoad > load {
		load = dstLoad
	}
	if load == 0 {
		return 0
	}
	batches := (load + n - 1) / n
	return 2 * batches
}

// deliver hands the phase's message set to the transport backend and waits
// out its barrier. Accounting and fault injection are already done by the
// time deliver runs, so the backend only moves data.
func (nw *Network) deliver(msgs []Message) [][]Message {
	inboxes := nw.transport.Deliver(msgs)
	nw.transport.Barrier()
	return inboxes
}

// ChargeDirect accounts a bulk phase without materializing payloads.
func (nw *Network) ChargeDirect(label string, loads []Load) error {
	fs, ferr := nw.faultBegin(label)
	if ferr != nil {
		return fmt.Errorf("charge %q: %w", label, ferr)
	}
	nw.sc.begin(nw.n)
	var total, maxLink int64
	for _, l := range loads {
		if err := nw.checkEndpoints(l.Src, l.Dst); err != nil {
			return fmt.Errorf("charge %q: %w", label, err)
		}
		if l.Words < 0 {
			return fmt.Errorf("charge %q: negative load", label)
		}
		if w := nw.sc.addLink(nw.n, l.Src, l.Dst, l.Words); w > maxLink {
			maxLink = w
		}
		total += l.Words
		if fs != nil {
			fs.onWords(l.Words, &nw.metrics.Faults)
		}
	}
	st := PhaseStat{
		Kind:        PhaseDirect,
		Label:       label,
		Rounds:      maxLink,
		Words:       total,
		MaxLinkLoad: maxLink,
	}
	if fs != nil {
		fs.finish(&st, &nw.metrics.Faults)
	}
	nw.record(st)
	if fs != nil && fs.pendErr != nil {
		return fmt.Errorf("charge %q: %w", label, fs.pendErr)
	}
	return nil
}

// ChargeBalanced accounts a bulk Lemma-1 phase without materializing
// payloads.
func (nw *Network) ChargeBalanced(label string, loads []Load) error {
	fs, ferr := nw.faultBegin(label)
	if ferr != nil {
		return fmt.Errorf("charge %q: %w", label, ferr)
	}
	nw.sc.begin(nw.n)
	var total, maxLink int64
	for _, l := range loads {
		if err := nw.checkEndpoints(l.Src, l.Dst); err != nil {
			return fmt.Errorf("charge %q: %w", label, err)
		}
		if l.Words < 0 {
			return fmt.Errorf("charge %q: negative load", label)
		}
		nw.sc.addNode(l.Src, l.Dst, l.Words)
		if w := nw.sc.addLink(nw.n, l.Src, l.Dst, l.Words); w > maxLink {
			maxLink = w
		}
		total += l.Words
		if fs != nil {
			fs.onWords(l.Words, &nw.metrics.Faults)
		}
	}
	srcLoad, dstLoad := nw.sc.maxNode(nw.n)
	st := PhaseStat{
		Kind:        PhaseBalanced,
		Label:       label,
		Rounds:      balancedRounds(srcLoad, dstLoad, int64(nw.n)),
		Words:       total,
		MaxLinkLoad: maxLink,
	}
	if fs != nil {
		fs.finish(&st, &nw.metrics.Faults)
	}
	nw.record(st)
	if fs != nil && fs.pendErr != nil {
		return fmt.Errorf("charge %q: %w", label, fs.pendErr)
	}
	return nil
}

// ChargeLocal records a zero-round bookkeeping phase (local computation),
// keeping traces readable.
func (nw *Network) ChargeLocal(label string) {
	nw.record(PhaseStat{Kind: PhaseLocal, Label: label})
}

// Broadcast accounts node src sending the same words-long payload to every
// other node. Every outgoing link of src carries the full payload in
// parallel, so the phase costs exactly words rounds.
func (nw *Network) Broadcast(label string, src NodeID, words int64) error {
	if src < 0 || int(src) >= nw.n {
		return fmt.Errorf("broadcast %q: source %d out of range", label, src)
	}
	if words < 0 {
		return fmt.Errorf("broadcast %q: negative word count", label)
	}
	return nw.recordBulk(label, PhaseStat{
		Kind:        PhaseBroadcast,
		Label:       label,
		Rounds:      words,
		Words:       words * int64(nw.n-1),
		MaxLinkLoad: words,
	}, words)
}

// recordBulk records a single-payload bulk phase (broadcast, gather,
// all-to-all, transpose) through the fault injector: the phase consults
// the crash/corruption draws and its one payload takes the per-message
// draw.
func (nw *Network) recordBulk(label string, st PhaseStat, words int64) error {
	fs, ferr := nw.faultBegin(label)
	if ferr != nil {
		return fmt.Errorf("phase %q: %w", label, ferr)
	}
	if fs != nil {
		fs.onWords(words, &nw.metrics.Faults)
		fs.finish(&st, &nw.metrics.Faults)
	}
	nw.record(st)
	if fs != nil && fs.pendErr != nil {
		return fmt.Errorf("phase %q: %w", label, fs.pendErr)
	}
	return nil
}

// ReplayCharge re-records the aggregate cost of a previously measured
// metrics delta, times over. It supports the quantum oracle accounting: a
// fixed, input-independent communication schedule is executed (and
// measured) once, and each further oracle invocation re-runs the identical
// schedule, so its cost is replayed rather than re-simulated.
func (nw *Network) ReplayCharge(label string, delta Metrics, times int64) {
	if times <= 0 {
		return
	}
	nw.record(PhaseStat{
		Kind:        PhaseDirect,
		Label:       label,
		Rounds:      delta.Rounds * times,
		Words:       delta.Words * times,
		MaxLinkLoad: delta.MaxLinkLoad,
	})
}

// DeltaSince returns the metrics accumulated after a previously captured
// baseline (aggregate counters only; the trace is not diffed).
func (nw *Network) DeltaSince(baseline Metrics) Metrics {
	return Metrics{
		Rounds:      nw.metrics.Rounds - baseline.Rounds,
		Phases:      nw.metrics.Phases - baseline.Phases,
		Words:       nw.metrics.Words - baseline.Words,
		MaxLinkLoad: nw.metrics.MaxLinkLoad,
		Faults:      nw.metrics.Faults.delta(baseline.Faults),
	}
}

// BroadcastAll accounts every node simultaneously broadcasting words-long
// payloads (full gossip). All links carry words in parallel: words rounds.
func (nw *Network) BroadcastAll(label string, words int64) error {
	if words < 0 {
		return fmt.Errorf("broadcast %q: negative word count", label)
	}
	return nw.recordBulk(label, PhaseStat{
		Kind:        PhaseBroadcast,
		Label:       label,
		Rounds:      words,
		Words:       words * int64(nw.n) * int64(nw.n-1),
		MaxLinkLoad: words,
	}, words)
}
