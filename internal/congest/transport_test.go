package congest

import (
	"fmt"
	"reflect"
	"testing"
)

// TestTransportRegistry checks name resolution: both shipped backends are
// registered, the empty name selects local, and unknown names fail
// NewNetwork with the available list.
func TestTransportRegistry(t *testing.T) {
	names := Transports()
	want := map[string]bool{DefaultTransport: false, TransportSharded: false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("transport %q not registered (have %v)", n, names)
		}
	}

	nw, err := NewNetwork(4)
	if err != nil {
		t.Fatal(err)
	}
	if got := nw.Transport().Name(); got != DefaultTransport {
		t.Errorf("default transport = %q, want %q", got, DefaultTransport)
	}
	nw.Close()

	if _, err := NewNetwork(4, WithTransport("bogus")); err == nil {
		t.Error("unknown transport accepted")
	}
}

// transportMsgs builds a deterministic all-pairs-ish message set with
// payloads carved from the network's arena.
func transportMsgs(nw *Network, round int) []Message {
	n := nw.N()
	var msgs []Message
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d || (s+d+round)%3 == 0 {
				continue
			}
			p := nw.AcquirePayload(2)
			p = append(p, Word(round*1000+s*n+d), Word(s^d))
			msgs = append(msgs, Message{Src: NodeID(s), Dst: NodeID(d), Data: p})
		}
	}
	return msgs
}

// snapshotInboxes deep-copies delivered inboxes for cross-backend
// comparison.
func snapshotInboxes(inboxes [][]Message) [][]Message {
	out := make([][]Message, len(inboxes))
	for i, ib := range inboxes {
		out[i] = make([]Message, len(ib))
		for j, m := range ib {
			out[i][j] = Message{Src: m.Src, Dst: m.Dst, Data: append([]Word(nil), m.Data...)}
		}
	}
	return out
}

// TestShardedDeliverMatchesLocal drives the same exchange sequence through
// both backends — including the sharded parallel path, forced by dropping
// the serial threshold — and requires bit-identical inboxes and metrics.
func TestShardedDeliverMatchesLocal(t *testing.T) {
	const n = 17 // deliberately not divisible by the shard count
	for _, shards := range []int{1, 2, 3, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			local, err := NewNetwork(n)
			if err != nil {
				t.Fatal(err)
			}
			sharded, err := NewNetwork(n, WithTransport(TransportSharded), WithTransportShards(shards))
			if err != nil {
				t.Fatal(err)
			}
			defer local.Close()
			defer sharded.Close()
			// Force the parallel path regardless of message count.
			sharded.transport.(*shardedTransport).serialThreshold = 0

			for round := 0; round < 6; round++ {
				lm := transportMsgs(local, round)
				sm := transportMsgs(sharded, round)
				label := fmt.Sprintf("round-%d", round)
				li, err := local.ExchangeDirect(label, lm)
				if err != nil {
					t.Fatal(err)
				}
				lsnap := snapshotInboxes(li)
				si, err := sharded.ExchangeDirect(label, sm)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(lsnap, snapshotInboxes(si)) {
					t.Fatalf("round %d: sharded inboxes diverge from local", round)
				}
			}
			if lr, sr := local.Rounds(), sharded.Rounds(); lr != sr {
				t.Errorf("rounds diverge: local %d, sharded %d", lr, sr)
			}
			lmx, smx := local.Metrics(), sharded.Metrics()
			if lmx.Words != smx.Words || lmx.Phases != smx.Phases {
				t.Errorf("metrics diverge: local %+v, sharded %+v", lmx, smx)
			}
		})
	}
}

// TestShardedPayloadBorrowContract re-runs the two-generation borrow test
// against the sharded backend: delivered payloads must survive exactly one
// further exchange, and the arena must recycle in steady state.
func TestShardedPayloadBorrowContract(t *testing.T) {
	nw, err := NewNetwork(6, WithTransport(TransportSharded), WithTransportShards(3))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	st := nw.transport.(*shardedTransport)
	st.serialThreshold = 0

	send := func(tag Word) [][]Message {
		p := nw.AcquirePayload(2)
		p = append(p, tag, tag+1)
		inboxes, err := nw.ExchangeDirect("payload", []Message{{Src: 0, Dst: 5, Data: p}})
		if err != nil {
			t.Fatal(err)
		}
		return inboxes
	}

	inboxes := send(10)
	got := inboxes[5][0].Data
	if len(got) != 2 || got[0] != 10 || got[1] != 11 {
		t.Fatalf("first exchange delivered %v", got)
	}
	inboxes2 := send(20)
	if got[0] != 10 || got[1] != 11 {
		t.Fatalf("payload of the previous exchange was clobbered early: %v", got)
	}
	if d := inboxes2[5][0].Data; d[0] != 20 || d[1] != 21 {
		t.Fatalf("second exchange delivered %v", d)
	}
	for i := 0; i < 50; i++ {
		send(Word(100 + i))
	}
	for gen, a := range st.payloads {
		if len(a.blocks) != 1 {
			t.Fatalf("generation %d grew to %d blocks; steady state should recycle one", gen, len(a.blocks))
		}
	}
}

// TestTransportStats checks the counters both backends report and the
// delta arithmetic.
func TestTransportStats(t *testing.T) {
	nw, err := NewNetwork(8, WithTransport(TransportSharded), WithTransportShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	nw.transport.(*shardedTransport).serialThreshold = 0

	base := nw.TransportStats()
	if base.Transport != TransportSharded || base.Shards != 2 {
		t.Fatalf("stats identity = %q/%d, want sharded/2", base.Transport, base.Shards)
	}
	// Nodes 0-3 are shard 0, nodes 4-7 shard 1: one intra, one cross.
	msgs := []Message{
		{Src: 0, Dst: 3, Data: []Word{1}},
		{Src: 1, Dst: 6, Data: []Word{2}},
	}
	if _, err := nw.ExchangeDirect("stats", msgs); err != nil {
		t.Fatal(err)
	}
	d := nw.TransportStats().DeltaSince(base)
	if d.Deliveries != 1 || d.Messages != 2 || d.IntraShard != 1 || d.CrossShard != 1 {
		t.Errorf("delta = %+v, want 1 delivery / 2 messages / 1 intra / 1 cross", d)
	}
	if d.Flushes == 0 {
		t.Error("parallel delivery recorded no batch flushes")
	}

	local, err := NewNetwork(4)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	if _, err := local.ExchangeDirect("stats", []Message{{Src: 0, Dst: 1}}); err != nil {
		t.Fatal(err)
	}
	ls := local.TransportStats()
	if ls.Transport != DefaultTransport || ls.Shards != 1 || ls.Deliveries != 1 || ls.Messages != 1 {
		t.Errorf("local stats = %+v", ls)
	}
	if ls.CrossShard != 0 || ls.Flushes != 0 {
		t.Errorf("local transport reported shard traffic: %+v", ls)
	}
}
