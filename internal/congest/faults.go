package congest

// Deterministic fault injection on the simulator's communication path.
//
// A FaultPlan arms the network with a seed-driven fault schedule consulted
// at every phase boundary (Exchange, Charge, Broadcast and the textbook
// primitives; ChargeLocal and ReplayCharge are exempt — the former is
// node-local, the latter replays a schedule that was measured under the
// injector). The injector distinguishes two fault classes:
//
//   - Recovered faults are absorbed by the link layer and never reach the
//     protocol: a dropped message is retransmitted (the phase pays a
//     detect-and-resend round surcharge), a duplicated message is
//     deduplicated at the receiver (the duplicate words are charged), and a
//     delayed message extends the synchronous phase by its lateness (the
//     round barrier absorbs stragglers). Delivered inboxes are bit-identical
//     to a fault-free run — only the round accounting grows.
//
//   - Unrecovered faults fail the phase with a *FaultError: payload
//     corruption (modeled as a link-CRC failure — corrupted payloads are
//     detected and never delivered, which is what makes retry convergence
//     provable) and node crash (the victim stays down for CrashDownPhases
//     further phase attempts, then restarts). The engine layer retries the
//     enclosing stage against the same network; the injector's monotone
//     consultation counter keeps advancing across retries, so a crashed
//     window deterministically clears.
//
// Determinism contract: all draws come from one xrand stream rooted at
// FaultPlan.Seed and consumed in phase order on the network's single
// accounting goroutine, so equal seeds over equal protocol runs produce
// identical fault schedules, identical counters and identical rounds. With
// a zero (disabled) plan the injector is entirely dormant: no draws, no
// counter writes, no allocation — fault-free runs stay bit-identical to a
// network constructed without WithFaults. This file is also the
// misbehavior contract a future pluggable Transport must satisfy.

import (
	"fmt"

	"qclique/internal/xrand"
)

// FaultKind classifies an unrecovered fault.
type FaultKind int

// Unrecovered fault kinds.
const (
	// FaultCorrupt is a payload corruption detected by the link CRC: the
	// phase's traffic is charged but nothing is delivered.
	FaultCorrupt FaultKind = iota + 1
	// FaultCrash is a node crash at a round boundary: the phase fails
	// before any traffic flows, and the victim stays down for the plan's
	// CrashDownPhases further phase attempts.
	FaultCrash
)

func (k FaultKind) String() string {
	switch k {
	case FaultCorrupt:
		return "corrupt"
	case FaultCrash:
		return "crash"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// FaultError reports an unrecovered injected fault. It is the retryable
// failure class: the engine's stage retry loop matches it with errors.As
// and re-runs the failed stage, while every other error keeps failing fast.
type FaultError struct {
	// Kind is the fault class.
	Kind FaultKind
	// Node is the crashed node (-1 for corruption, which has no victim).
	Node NodeID
	// Label is the label of the phase that failed.
	Label string
}

func (e *FaultError) Error() string {
	if e.Kind == FaultCrash {
		return fmt.Sprintf("congest: injected fault: node %d crashed during phase %q", e.Node, e.Label)
	}
	return fmt.Sprintf("congest: injected fault: payload corruption detected in phase %q", e.Label)
}

// FaultPlan is a deterministic, seed-driven fault schedule. The zero value
// disables injection entirely. All fields are scalars, so a plan is
// comparable and can participate in cache identities.
type FaultPlan struct {
	// Seed roots the fault schedule's random stream (independent of the
	// protocol seed: faults never perturb protocol randomness).
	Seed uint64
	// DropRate is the per-message probability of a drop, recovered by
	// retransmission (round surcharge, identical delivery).
	DropRate float64
	// DupRate is the per-message probability of a duplication, recovered by
	// receiver-side deduplication (word surcharge, identical delivery).
	DupRate float64
	// DelayRate is the per-message probability of a bounded delay: the
	// message is re-delivered up to MaxDelayRounds rounds late and the
	// synchronous phase stretches to cover the straggler.
	DelayRate float64
	// MaxDelayRounds bounds the lateness of a delayed message; 0 with a
	// positive DelayRate is treated as 1.
	MaxDelayRounds int
	// CorruptRate is the per-phase probability of a payload corruption —
	// detected by the link CRC, failing the phase (unrecovered).
	CorruptRate float64
	// CrashRate is the per-phase probability of a node crash at the round
	// boundary, failing the phase before traffic flows (unrecovered).
	CrashRate float64
	// CrashDownPhases is the number of further phase attempts the crashed
	// node stays down before restarting; 0 means the immediate retry
	// already sees the node back up.
	CrashDownPhases int
	// MaxFaults, when positive, caps the total unrecovered faults
	// (corruptions plus crashes) the plan injects — a transient-outage
	// model; after the budget is spent only recovered faults keep firing.
	// 0 means unlimited.
	MaxFaults int
}

// Enabled reports whether the plan injects anything.
func (p FaultPlan) Enabled() bool {
	return p.DropRate > 0 || p.DupRate > 0 || p.DelayRate > 0 || p.CorruptRate > 0 || p.CrashRate > 0
}

// Validate rejects malformed plans (rates outside [0,1], negative bounds).
func (p FaultPlan) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"DropRate", p.DropRate}, {"DupRate", p.DupRate}, {"DelayRate", p.DelayRate},
		{"CorruptRate", p.CorruptRate}, {"CrashRate", p.CrashRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("congest: fault plan: %s %v outside [0, 1]", r.name, r.v)
		}
	}
	if p.DropRate+p.DupRate+p.DelayRate > 1 {
		return fmt.Errorf("congest: fault plan: DropRate+DupRate+DelayRate %v exceeds 1 (per-message faults are exclusive)",
			p.DropRate+p.DupRate+p.DelayRate)
	}
	if p.MaxDelayRounds < 0 {
		return fmt.Errorf("congest: fault plan: negative MaxDelayRounds %d", p.MaxDelayRounds)
	}
	if p.CrashDownPhases < 0 {
		return fmt.Errorf("congest: fault plan: negative CrashDownPhases %d", p.CrashDownPhases)
	}
	if p.MaxFaults < 0 {
		return fmt.Errorf("congest: fault plan: negative MaxFaults %d", p.MaxFaults)
	}
	return nil
}

// FaultCounters tallies injected faults and their recovery cost. It rides
// inside Metrics, so per-run (and per-stage delta) fault accounting flows
// through the same Snapshot/DeltaSince arithmetic as rounds.
type FaultCounters struct {
	// Dropped counts messages dropped and recovered by retransmission.
	Dropped int64 `json:"dropped,omitempty"`
	// Duplicated counts messages duplicated and deduplicated at receivers.
	Duplicated int64 `json:"duplicated,omitempty"`
	// Delayed counts messages re-delivered late.
	Delayed int64 `json:"delayed,omitempty"`
	// Corrupted counts phases failed by a detected payload corruption.
	Corrupted int64 `json:"corrupted,omitempty"`
	// Crashes counts node crashes at round boundaries.
	Crashes int64 `json:"crashes,omitempty"`
	// Restarts counts crashed nodes coming back up.
	Restarts int64 `json:"restarts,omitempty"`
	// RetransmitRounds is the extra rounds charged to re-send dropped
	// messages.
	RetransmitRounds int64 `json:"retransmit_rounds,omitempty"`
	// DelayRounds is the extra rounds phases stretched to absorb delayed
	// stragglers.
	DelayRounds int64 `json:"delay_rounds,omitempty"`
	// FailedPhases counts phase attempts that failed with a FaultError
	// (corruptions, crashes, and down-window attempts).
	FailedPhases int64 `json:"failed_phases,omitempty"`
}

// Injected is the total number of injected fault events.
func (c FaultCounters) Injected() int64 {
	return c.Dropped + c.Duplicated + c.Delayed + c.Corrupted + c.Crashes
}

// Add merges other into c.
func (c *FaultCounters) Add(other FaultCounters) {
	c.Dropped += other.Dropped
	c.Duplicated += other.Duplicated
	c.Delayed += other.Delayed
	c.Corrupted += other.Corrupted
	c.Crashes += other.Crashes
	c.Restarts += other.Restarts
	c.RetransmitRounds += other.RetransmitRounds
	c.DelayRounds += other.DelayRounds
	c.FailedPhases += other.FailedPhases
}

// delta returns c - base, component-wise.
func (c FaultCounters) delta(base FaultCounters) FaultCounters {
	return FaultCounters{
		Dropped:          c.Dropped - base.Dropped,
		Duplicated:       c.Duplicated - base.Duplicated,
		Delayed:          c.Delayed - base.Delayed,
		Corrupted:        c.Corrupted - base.Corrupted,
		Crashes:          c.Crashes - base.Crashes,
		Restarts:         c.Restarts - base.Restarts,
		RetransmitRounds: c.RetransmitRounds - base.RetransmitRounds,
		DelayRounds:      c.DelayRounds - base.DelayRounds,
		FailedPhases:     c.FailedPhases - base.FailedPhases,
	}
}

// WithFaults arms the network with a fault plan. A disabled (zero) plan is
// a no-op: the network behaves bit-identically to one constructed without
// this option. NewNetwork validates the plan.
func WithFaults(plan FaultPlan) Option {
	return func(nw *Network) {
		if !plan.Enabled() {
			return
		}
		nw.faults = &faultState{plan: plan}
	}
}

// faultState is the injector: the armed plan, its dedicated random stream,
// the monotone consultation counter, crash bookkeeping, and the per-phase
// scratch reset by faultBegin. One instance per network; consulted only on
// the network's single accounting goroutine.
type faultState struct {
	plan FaultPlan
	rng  *xrand.Source
	// seq counts fault consultations (one per phase attempt, including
	// attempts that fail): the schedule position that keeps advancing
	// across stage retries, so a crash window deterministically clears.
	seq uint64
	// used counts unrecovered faults spent against MaxFaults.
	used int
	// down / downNode: the crashed node and its remaining down window.
	down     int
	downNode NodeID

	// precomputed per-message draw thresholds (cumulative).
	tDrop, tDup, tDelay float64
	maxDelay            int

	// per-phase scratch, reset by faultBegin.
	pendErr  *FaultError
	dropped  bool
	dropMax  int64
	dupWords int64
	maxLate  int64
}

// init finalizes the armed state (called by NewNetwork after validation).
func (f *faultState) init() {
	f.rng = xrand.New(f.plan.Seed)
	f.tDrop = f.plan.DropRate
	f.tDup = f.tDrop + f.plan.DupRate
	f.tDelay = f.tDup + f.plan.DelayRate
	f.maxDelay = f.plan.MaxDelayRounds
	if f.maxDelay <= 0 {
		f.maxDelay = 1
	}
}

// budgetLeft reports whether another unrecovered fault may fire.
func (f *faultState) budgetLeft() bool {
	return f.plan.MaxFaults <= 0 || f.used < f.plan.MaxFaults
}

// faultBegin consults the injector at a phase boundary. With faults
// disabled it returns (nil, nil) and the phase proceeds untouched. A crash
// (or a still-down node) fails the phase immediately — no traffic flows,
// nothing is recorded. Otherwise the returned state is armed for the
// phase's per-message draws; a corruption draw is latched into pendErr and
// surfaced by the caller after the phase cost is recorded (the traffic
// flowed, the CRC failed at delivery).
func (nw *Network) faultBegin(label string) (*faultState, *FaultError) {
	f := nw.faults
	if f == nil {
		return nil, nil
	}
	f.pendErr, f.dropped, f.dropMax, f.dupWords, f.maxLate = nil, false, 0, 0, 0
	f.seq++
	c := &nw.metrics.Faults
	if f.down > 0 {
		f.down--
		c.FailedPhases++
		if f.down == 0 {
			c.Restarts++
		}
		return nil, &FaultError{Kind: FaultCrash, Node: f.downNode, Label: label}
	}
	if f.plan.CrashRate > 0 && f.budgetLeft() && f.rng.Bool(f.plan.CrashRate) {
		f.used++
		f.downNode = NodeID(f.rng.IntN(nw.n))
		f.down = f.plan.CrashDownPhases
		c.Crashes++
		c.FailedPhases++
		if f.down == 0 {
			c.Restarts++
		}
		return nil, &FaultError{Kind: FaultCrash, Node: f.downNode, Label: label}
	}
	if f.plan.CorruptRate > 0 && f.budgetLeft() && f.rng.Bool(f.plan.CorruptRate) {
		f.used++
		c.Corrupted++
		f.pendErr = &FaultError{Kind: FaultCorrupt, Node: -1, Label: label}
	}
	return f, nil
}

// onWords draws the per-message fault for one w-word message (or one
// bulk-charged load, or one broadcast payload — the unit the phase moves).
func (f *faultState) onWords(w int64, c *FaultCounters) {
	if f.tDelay <= 0 {
		return
	}
	u := f.rng.Float64()
	switch {
	case u < f.tDrop:
		c.Dropped++
		f.dropped = true
		if w > f.dropMax {
			f.dropMax = w
		}
	case u < f.tDup:
		c.Duplicated++
		f.dupWords += w
	case u < f.tDelay:
		c.Delayed++
		late := int64(f.rng.IntRange(1, f.maxDelay))
		if late > f.maxLate {
			f.maxLate = late
		}
	}
}

// finish folds the phase's fault surcharges into its PhaseStat before it is
// recorded: retransmission of the largest dropped message (detect + resend),
// the synchronous stretch to the latest straggler, and the deduplicated
// duplicate words. A latched corruption counts its failed phase here — the
// cost was charged, the delivery failed.
func (f *faultState) finish(st *PhaseStat, c *FaultCounters) {
	if f.dropped {
		retrans := 2 + f.dropMax
		st.Rounds += retrans
		c.RetransmitRounds += retrans
	}
	if f.maxLate > 0 {
		st.Rounds += f.maxLate
		c.DelayRounds += f.maxLate
	}
	st.Words += f.dupWords
	if f.pendErr != nil {
		c.FailedPhases++
	}
}
