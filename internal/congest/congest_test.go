package congest

import (
	"strings"
	"testing"

	"qclique/internal/xrand"
)

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(0); err == nil {
		t.Error("0-node network should fail")
	}
	nw, err := NewNetwork(4)
	if err != nil {
		t.Fatal(err)
	}
	if nw.N() != 4 {
		t.Errorf("N = %d", nw.N())
	}
}

func TestExchangeDirectRoundsAreMaxLinkLoad(t *testing.T) {
	nw, err := NewNetwork(4)
	if err != nil {
		t.Fatal(err)
	}
	msgs := []Message{
		{Src: 0, Dst: 1, Data: []Word{1, 2, 3}}, // 3 words on (0,1)
		{Src: 0, Dst: 2, Data: []Word{1}},
		{Src: 3, Dst: 1, Data: []Word{1, 2}},
		{Src: 0, Dst: 1, Data: []Word{9}}, // (0,1) now 4 words
	}
	inboxes, err := nw.ExchangeDirect("t", msgs)
	if err != nil {
		t.Fatal(err)
	}
	if nw.Rounds() != 4 {
		t.Errorf("rounds = %d, want 4 (max link load)", nw.Rounds())
	}
	if len(inboxes[1]) != 3 {
		t.Errorf("node 1 inbox = %d messages, want 3", len(inboxes[1]))
	}
	if len(inboxes[0]) != 0 || len(inboxes[3]) != 0 {
		t.Error("unexpected inbox content")
	}
	// Delivery order is stable.
	if inboxes[1][0].Data[0] != 1 || inboxes[1][2].Data[0] != 9 {
		t.Error("inbox order not stable")
	}
	m := nw.Metrics()
	if m.Words != 7 || m.MaxLinkLoad != 4 || m.Phases != 1 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestExchangeRejectsBadEndpoints(t *testing.T) {
	nw, _ := NewNetwork(3)
	if _, err := nw.ExchangeDirect("t", []Message{{Src: 0, Dst: 3}}); err == nil {
		t.Error("out-of-range destination should fail")
	}
	if _, err := nw.ExchangeDirect("t", []Message{{Src: -1, Dst: 1}}); err == nil {
		t.Error("negative source should fail")
	}
	if _, err := nw.ExchangeDirect("t", []Message{{Src: 1, Dst: 1}}); err == nil {
		t.Error("self-message should fail")
	}
	if _, err := nw.ExchangeBalanced("t", []Message{{Src: 1, Dst: 1}}); err == nil {
		t.Error("balanced self-message should fail")
	}
}

func TestLemma1TwoRounds(t *testing.T) {
	// Lemma 1: <= n words per source and per destination delivers in two
	// rounds, with an explicitly verified schedule.
	const n = 8
	nw, err := NewNetwork(n, WithScheduleValidation())
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(1)
	var msgs []Message
	srcLoad := make([]int, n)
	dstLoad := make([]int, n)
	for i := 0; i < 200; i++ {
		s := NodeID(rng.IntN(n))
		d := NodeID(rng.IntN(n))
		if s == d || srcLoad[s] >= n || dstLoad[d] >= n {
			continue
		}
		srcLoad[s]++
		dstLoad[d]++
		msgs = append(msgs, Message{Src: s, Dst: d, Data: []Word{Word(i)}})
	}
	if _, err := nw.ExchangeBalanced("lemma1", msgs); err != nil {
		t.Fatal(err)
	}
	if nw.Rounds() != 2 {
		t.Errorf("rounds = %d, want 2 (Lemma 1)", nw.Rounds())
	}
}

func TestBalancedRoundsScaling(t *testing.T) {
	// k*n words per source/destination should cost 2k rounds.
	const n = 4
	for _, k := range []int64{1, 2, 5} {
		nw, err := NewNetwork(n)
		if err != nil {
			t.Fatal(err)
		}
		var msgs []Message
		// Every node sends k*n words spread over all other nodes: k*n per
		// source; each destination receives from n-1 sources with k*n/(n-1)
		// each... simpler: node 0 sends k*n single words to node 1..n-1
		// round-robin, all nodes do the same shifted.
		for s := 0; s < n; s++ {
			for i := int64(0); i < k*int64(n); i++ {
				d := (s + 1 + int(i)%(n-1)) % n
				msgs = append(msgs, Message{Src: NodeID(s), Dst: NodeID(d)})
			}
		}
		if _, err := nw.ExchangeBalanced("scale", msgs); err != nil {
			t.Fatal(err)
		}
		if nw.Rounds() != 2*k {
			t.Errorf("k=%d: rounds = %d, want %d", k, nw.Rounds(), 2*k)
		}
	}
}

func TestExchangeBalancedEmpty(t *testing.T) {
	nw, _ := NewNetwork(3)
	inboxes, err := nw.ExchangeBalanced("empty", nil)
	if err != nil {
		t.Fatal(err)
	}
	if nw.Rounds() != 0 {
		t.Errorf("empty exchange cost %d rounds", nw.Rounds())
	}
	for _, ib := range inboxes {
		if len(ib) != 0 {
			t.Error("empty exchange delivered messages")
		}
	}
}

func TestChargeModesMatchPayloadModes(t *testing.T) {
	// ChargeDirect/ChargeBalanced must produce the same rounds as the
	// payload-carrying equivalents.
	const n = 6
	rng := xrand.New(9)
	var msgs []Message
	var loads []Load
	for i := 0; i < 120; i++ {
		s := NodeID(rng.IntN(n))
		d := NodeID(rng.IntN(n))
		if s == d {
			continue
		}
		words := 1 + rng.IntN(5)
		msgs = append(msgs, Message{Src: s, Dst: d, Data: make([]Word, words)})
		loads = append(loads, Load{Src: s, Dst: d, Words: int64(words)})
	}
	a, _ := NewNetwork(n)
	b, _ := NewNetwork(n)
	if _, err := a.ExchangeDirect("x", msgs); err != nil {
		t.Fatal(err)
	}
	if err := b.ChargeDirect("x", loads); err != nil {
		t.Fatal(err)
	}
	if a.Rounds() != b.Rounds() {
		t.Errorf("direct: payload %d rounds, charge %d rounds", a.Rounds(), b.Rounds())
	}
	c, _ := NewNetwork(n)
	d, _ := NewNetwork(n)
	if _, err := c.ExchangeBalanced("x", msgs); err != nil {
		t.Fatal(err)
	}
	if err := d.ChargeBalanced("x", loads); err != nil {
		t.Fatal(err)
	}
	if c.Rounds() != d.Rounds() {
		t.Errorf("balanced: payload %d rounds, charge %d rounds", c.Rounds(), d.Rounds())
	}
	am, bm := a.Metrics(), b.Metrics()
	if am.Words != bm.Words || am.MaxLinkLoad != bm.MaxLinkLoad {
		t.Error("charge metrics differ from payload metrics")
	}
}

func TestChargeValidation(t *testing.T) {
	nw, _ := NewNetwork(3)
	if err := nw.ChargeDirect("t", []Load{{Src: 0, Dst: 1, Words: -1}}); err == nil {
		t.Error("negative load should fail")
	}
	if err := nw.ChargeBalanced("t", []Load{{Src: 0, Dst: 0, Words: 1}}); err == nil {
		t.Error("self-load should fail")
	}
}

func TestBroadcastCosts(t *testing.T) {
	nw, _ := NewNetwork(5)
	if err := nw.Broadcast("b", 2, 7); err != nil {
		t.Fatal(err)
	}
	if nw.Rounds() != 7 {
		t.Errorf("broadcast rounds = %d, want 7", nw.Rounds())
	}
	if nw.Metrics().Words != 7*4 {
		t.Errorf("broadcast words = %d, want 28", nw.Metrics().Words)
	}
	nw.ResetMetrics()
	if err := nw.BroadcastAll("g", 3); err != nil {
		t.Fatal(err)
	}
	if nw.Rounds() != 3 {
		t.Errorf("gossip rounds = %d, want 3", nw.Rounds())
	}
	if err := nw.Broadcast("bad", 9, 1); err == nil {
		t.Error("out-of-range broadcaster should fail")
	}
	if err := nw.Broadcast("bad", 1, -1); err == nil {
		t.Error("negative broadcast should fail")
	}
	if err := nw.BroadcastAll("bad", -1); err == nil {
		t.Error("negative gossip should fail")
	}
}

func TestMetricsAccumulationAndReset(t *testing.T) {
	nw, _ := NewNetwork(3)
	if _, err := nw.ExchangeDirect("p1", []Message{{Src: 0, Dst: 1}}); err != nil {
		t.Fatal(err)
	}
	nw.ChargeLocal("think")
	if _, err := nw.ExchangeDirect("p2", []Message{{Src: 1, Dst: 2, Data: []Word{1, 2}}}); err != nil {
		t.Fatal(err)
	}
	m := nw.Metrics()
	if m.Rounds != 3 || m.Phases != 3 || len(m.Trace) != 3 {
		t.Errorf("metrics = %+v", m)
	}
	if m.Trace[1].Kind != PhaseLocal || m.Trace[1].Rounds != 0 {
		t.Errorf("local phase = %+v", m.Trace[1])
	}
	// Metrics() must return a copy.
	m.Trace[0].Label = "mutated"
	if nw.Metrics().Trace[0].Label == "mutated" {
		t.Error("Metrics must copy the trace")
	}
	nw.ResetMetrics()
	if nw.Rounds() != 0 || len(nw.Metrics().Trace) != 0 {
		t.Error("ResetMetrics incomplete")
	}
}

func TestMetricsAdd(t *testing.T) {
	var a, b Metrics
	a.record(PhaseStat{Kind: PhaseDirect, Rounds: 3, Words: 5, MaxLinkLoad: 2})
	b.record(PhaseStat{Kind: PhaseBalanced, Rounds: 2, Words: 9, MaxLinkLoad: 4})
	a.Add(b)
	if a.Rounds != 5 || a.Words != 14 || a.MaxLinkLoad != 4 || a.Phases != 2 {
		t.Errorf("merged = %+v", a)
	}
}

func TestTraceLimit(t *testing.T) {
	nw, _ := NewNetwork(3, WithTraceLimit(2))
	for i := 0; i < 5; i++ {
		if _, err := nw.ExchangeDirect("p", []Message{{Src: 0, Dst: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	m := nw.Metrics()
	if len(m.Trace) != 2 {
		t.Errorf("trace length = %d, want 2", len(m.Trace))
	}
	if m.Rounds != 5 || m.Phases != 5 {
		t.Errorf("aggregates must still cover all phases: %+v", m)
	}
}

func TestPhaseKindString(t *testing.T) {
	for _, k := range []PhaseKind{PhaseDirect, PhaseBalanced, PhaseBroadcast, PhaseLocal} {
		if strings.HasPrefix(k.String(), "PhaseKind(") {
			t.Errorf("missing name for kind %d", k)
		}
	}
	if !strings.HasPrefix(PhaseKind(99).String(), "PhaseKind(") {
		t.Error("unknown kind should fall back")
	}
}

func TestMessageWords(t *testing.T) {
	if (Message{}).Words() != 1 {
		t.Error("empty message still occupies one slot")
	}
	if (Message{Data: []Word{1, 2, 3}}).Words() != 3 {
		t.Error("word count wrong")
	}
}
