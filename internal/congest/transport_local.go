package congest

// The local transport: the original single-goroutine delivery path, moved
// verbatim from Network. It is the bit-identical reference every other
// backend is tested against.

func init() {
	RegisterTransport(DefaultTransport, func(n, shards int) Transport {
		return &localTransport{n: n}
	})
}

// payloadBlockWords is the minimum block size the payload arena grows by;
// large single acquisitions get a dedicated block.
const payloadBlockWords = 1 << 14

// payloadArena is one generation of pooled Message.Data storage: a list of
// retained backing blocks carved sequentially. Blocks are never moved or
// grown in place, so previously returned slices stay valid for the whole
// generation.
type payloadArena struct {
	blocks [][]Word
	bi     int // block currently being carved
	off    int // words used within blocks[bi]
}

func (a *payloadArena) reset() { a.bi, a.off = 0, 0 }

// alloc carves a zero-length slice with capacity n.
func (a *payloadArena) alloc(n int) []Word {
	for {
		if a.bi < len(a.blocks) {
			b := a.blocks[a.bi]
			if len(b)-a.off >= n {
				s := b[a.off : a.off : a.off+n]
				a.off += n
				return s
			}
			a.bi++
			a.off = 0
			continue
		}
		size := n
		if size < payloadBlockWords {
			size = payloadBlockWords
		}
		a.blocks = append(a.blocks, make([]Word, size))
	}
}

// localTransport delivers on the calling goroutine with one shared inbox
// buffer and a two-generation payload arena.
type localTransport struct {
	n int

	// inboxes is the reusable per-destination delivery buffer handed out by
	// Deliver; borrowed by the caller until the next Deliver call.
	inboxes [][]Message

	// payloads is the two-generation word arena behind AcquirePayload;
	// payGen indexes the generation currently being carved. Each Deliver
	// flips the generation and recycles the other one, giving payloads the
	// same lifetime as the inboxes that reference them.
	payloads [2]payloadArena
	payGen   int

	stats TransportStats
}

func (t *localTransport) Name() string { return DefaultTransport }

func (t *localTransport) AcquirePayload(words int) []Word {
	if words < 0 {
		words = 0
	}
	return t.payloads[t.payGen].alloc(words)
}

// Deliver groups messages by destination, preserving input order. The
// per-destination slices are pooled on the transport and recycled by the
// next Deliver call.
func (t *localTransport) Deliver(msgs []Message) [][]Message {
	// Flip the payload generations: slices acquired since the previous
	// Exchange are now referenced by the inboxes being built, so the
	// generation recycled here is the one the previous inboxes pointed at.
	t.payGen ^= 1
	t.payloads[t.payGen].reset()
	if t.inboxes == nil {
		t.inboxes = make([][]Message, t.n)
	}
	inboxes := t.inboxes
	for i := range inboxes {
		// Clear before truncating: stale Message values past the new length
		// would otherwise pin the previous phase's payload arenas at the
		// largest exchange's high-water mark.
		clear(inboxes[i])
		inboxes[i] = inboxes[i][:0]
	}
	for _, m := range msgs {
		inboxes[m.Dst] = append(inboxes[m.Dst], m)
	}
	t.stats.Deliveries++
	t.stats.Messages += int64(len(msgs))
	t.stats.IntraShard += int64(len(msgs))
	return inboxes
}

func (t *localTransport) Barrier() {}

func (t *localTransport) Stats() TransportStats {
	s := t.stats
	s.Transport = DefaultTransport
	s.Shards = 1
	return s
}

func (t *localTransport) Close() {}
