package congest

import (
	"testing"
	"testing/quick"

	"qclique/internal/xrand"
)

// checkProperColoring verifies that no two edges sharing an endpoint (on
// the same side) received the same color, and that all colors are within
// the palette.
func checkProperColoring(t *testing.T, left, right, colors []int, palette int) {
	t.Helper()
	seenL := make(map[[2]int]bool)
	seenR := make(map[[2]int]bool)
	for e := range left {
		c := colors[e]
		if c < 0 || c >= palette {
			t.Fatalf("edge %d color %d outside palette %d", e, c, palette)
		}
		kl := [2]int{left[e], c}
		kr := [2]int{right[e], c}
		if seenL[kl] {
			t.Fatalf("left vertex %d has two edges colored %d", left[e], c)
		}
		if seenR[kr] {
			t.Fatalf("right vertex %d has two edges colored %d", right[e], c)
		}
		seenL[kl] = true
		seenR[kr] = true
	}
}

func maxDegree(left, right []int) int {
	degL := make(map[int]int)
	degR := make(map[int]int)
	m := 0
	for e := range left {
		degL[left[e]]++
		degR[right[e]]++
		if degL[left[e]] > m {
			m = degL[left[e]]
		}
		if degR[right[e]] > m {
			m = degR[right[e]]
		}
	}
	return m
}

func TestKonigSmallFixedCases(t *testing.T) {
	cases := []struct {
		name        string
		left, right []int
	}{
		{"single edge", []int{0}, []int{0}},
		{"parallel multi-edges", []int{0, 0, 0}, []int{5, 5, 5}},
		{"star from one source", []int{0, 0, 0, 0}, []int{1, 2, 3, 4}},
		{"star into one sink", []int{1, 2, 3, 4}, []int{0, 0, 0, 0}},
		{"complete 3x3", []int{0, 0, 0, 1, 1, 1, 2, 2, 2}, []int{0, 1, 2, 0, 1, 2, 0, 1, 2}},
		{"path forcing inversion", []int{0, 1, 1, 2}, []int{0, 0, 1, 1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := maxDegree(c.left, c.right)
			colors, err := KonigEdgeColoring(c.left, c.right, d)
			if err != nil {
				t.Fatal(err)
			}
			checkProperColoring(t, c.left, c.right, colors, d)
		})
	}
}

func TestKonigEmptyAndErrors(t *testing.T) {
	if colors, err := KonigEdgeColoring(nil, nil, 3); err != nil || colors != nil {
		t.Error("empty graph should trivially color")
	}
	if _, err := KonigEdgeColoring([]int{1}, []int{1, 2}, 1); err == nil {
		t.Error("mismatched edge lists should fail")
	}
	if _, err := KonigEdgeColoring([]int{1}, []int{2}, 0); err == nil {
		t.Error("empty palette should fail")
	}
	// Palette below max degree must fail rather than mis-color.
	if _, err := KonigEdgeColoring([]int{0, 0}, []int{1, 2}, 1); err == nil {
		t.Error("palette below degree should fail")
	}
}

func TestKonigPropertyRandomMultigraphs(t *testing.T) {
	// König's theorem: max degree Δ colors always suffice on bipartite
	// multigraphs. Exercise the inversion path heavily.
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		nL := 1 + rng.IntN(10)
		nR := 1 + rng.IntN(10)
		m := rng.IntN(60)
		left := make([]int, m)
		right := make([]int, m)
		for i := 0; i < m; i++ {
			left[i] = rng.IntN(nL)
			right[i] = rng.IntN(nR)
		}
		d := maxDegree(left, right)
		if d == 0 {
			return true
		}
		colors, err := KonigEdgeColoring(left, right, d)
		if err != nil {
			return false
		}
		seenL := make(map[[2]int]bool)
		seenR := make(map[[2]int]bool)
		for e := range left {
			c := colors[e]
			if c < 0 || c >= d {
				return false
			}
			kl := [2]int{left[e], c}
			kr := [2]int{right[e], c}
			if seenL[kl] || seenR[kr] {
				return false
			}
			seenL[kl] = true
			seenR[kr] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBuildRelayScheduleRespectsLinkConstraint(t *testing.T) {
	const n = 7
	rng := xrand.New(12)
	var msgs []Message
	for i := 0; i < 400; i++ {
		s := NodeID(rng.IntN(n))
		d := NodeID(rng.IntN(n))
		if s == d {
			continue
		}
		msgs = append(msgs, Message{Src: s, Dst: d, Data: make([]Word, 1+rng.IntN(3))})
	}
	batches, err := BuildRelaySchedule(n, msgs)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyRelaySchedule(n, batches); err != nil {
		t.Fatal(err)
	}
	// Word conservation: schedule must carry every word exactly once.
	var scheduled int64
	for _, b := range batches {
		scheduled += int64(len(b.Assignments))
	}
	var want int64
	for _, m := range msgs {
		want += m.Words()
	}
	if scheduled != want {
		t.Errorf("schedule carries %d words, messages hold %d", scheduled, want)
	}
}

func TestBuildRelaySchedulePropertyMatchesLemma1(t *testing.T) {
	// For message sets within the Lemma-1 bound, the schedule must be a
	// single two-round batch.
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 3 + rng.IntN(8)
		srcLoad := make([]int, n)
		dstLoad := make([]int, n)
		var msgs []Message
		for i := 0; i < 5*n; i++ {
			s := rng.IntN(n)
			d := rng.IntN(n)
			if s == d || srcLoad[s] >= n || dstLoad[d] >= n {
				continue
			}
			srcLoad[s]++
			dstLoad[d]++
			msgs = append(msgs, Message{Src: NodeID(s), Dst: NodeID(d)})
		}
		batches, err := BuildRelaySchedule(n, msgs)
		if err != nil {
			return false
		}
		if len(msgs) > 0 && len(batches) != 1 {
			return false
		}
		return VerifyRelaySchedule(n, batches) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestVerifyRelayScheduleCatchesViolations(t *testing.T) {
	bad := []RelayBatch{{Assignments: []RelayAssignment{
		{Src: 0, Dst: 1, Relay: 2},
		{Src: 0, Dst: 3, Relay: 2}, // same (0->2) hop-1 link twice
	}}}
	if err := VerifyRelaySchedule(4, bad); err == nil {
		t.Error("hop-1 overload must be caught")
	}
	bad2 := []RelayBatch{{Assignments: []RelayAssignment{
		{Src: 0, Dst: 1, Relay: 2},
		{Src: 3, Dst: 1, Relay: 2}, // same (2->1) hop-2 link twice
	}}}
	if err := VerifyRelaySchedule(4, bad2); err == nil {
		t.Error("hop-2 overload must be caught")
	}
	badRelay := []RelayBatch{{Assignments: []RelayAssignment{{Src: 0, Dst: 1, Relay: 9}}}}
	if err := VerifyRelaySchedule(4, badRelay); err == nil {
		t.Error("out-of-range relay must be caught")
	}
	// Local hops (relay == src or relay == dst) use no link.
	ok := []RelayBatch{{Assignments: []RelayAssignment{
		{Src: 0, Dst: 1, Relay: 0},
		{Src: 0, Dst: 2, Relay: 2},
	}}}
	if err := VerifyRelaySchedule(4, ok); err != nil {
		t.Errorf("local hops should be free: %v", err)
	}
}

func TestSplitBatchesDegreeBound(t *testing.T) {
	rng := xrand.New(3)
	const n = 5
	var units []wordUnit
	for i := 0; i < 300; i++ {
		s := NodeID(rng.IntN(n))
		d := NodeID(rng.IntN(n))
		if s == d {
			continue
		}
		units = append(units, wordUnit{src: s, dst: d})
	}
	batches := splitBatches(units, n)
	total := 0
	for _, b := range batches {
		srcCount := make(map[NodeID]int)
		dstCount := make(map[NodeID]int)
		for _, u := range b {
			srcCount[u.src]++
			dstCount[u.dst]++
		}
		for _, c := range srcCount {
			if c > n {
				t.Fatal("batch exceeds source bound")
			}
		}
		for _, c := range dstCount {
			if c > n {
				t.Fatal("batch exceeds destination bound")
			}
		}
		total += len(b)
	}
	if total != len(units) {
		t.Error("batching lost or duplicated words")
	}
}

func TestExchangeBalancedWithValidationEndToEnd(t *testing.T) {
	const n = 6
	nw, err := NewNetwork(n, WithScheduleValidation())
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(77)
	var msgs []Message
	for i := 0; i < 500; i++ {
		s := NodeID(rng.IntN(n))
		d := NodeID(rng.IntN(n))
		if s == d {
			continue
		}
		msgs = append(msgs, Message{Src: s, Dst: d, Data: []Word{Word(i), Word(i)}})
	}
	inboxes, err := nw.ExchangeBalanced("big", msgs)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for _, ib := range inboxes {
		got += len(ib)
	}
	if got != len(msgs) {
		t.Errorf("delivered %d of %d messages", got, len(msgs))
	}
	if nw.Rounds() <= 0 {
		t.Error("nonempty balanced exchange must cost rounds")
	}
}
