package congest

import "testing"

func TestGatherCost(t *testing.T) {
	nw, err := NewNetwork(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Gather("g", 2, 3); err != nil {
		t.Fatal(err)
	}
	if nw.Rounds() != 3 {
		t.Errorf("gather rounds = %d, want 3", nw.Rounds())
	}
	if nw.Metrics().Words != 3*4 {
		t.Errorf("gather words = %d, want 12", nw.Metrics().Words)
	}
	if err := nw.Gather("bad", 7, 1); err == nil {
		t.Error("bad collector must fail")
	}
	if err := nw.Gather("bad", 0, -1); err == nil {
		t.Error("negative words must fail")
	}
}

func TestAllToAllCost(t *testing.T) {
	nw, err := NewNetwork(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.AllToAll("x", 2); err != nil {
		t.Fatal(err)
	}
	if nw.Rounds() != 2 {
		t.Errorf("all-to-all rounds = %d, want 2", nw.Rounds())
	}
	if nw.Metrics().Words != 2*4*3 {
		t.Errorf("all-to-all words = %d", nw.Metrics().Words)
	}
	if err := nw.AllToAll("bad", -1); err == nil {
		t.Error("negative words must fail")
	}
}

func TestTransposeDeliversColumns(t *testing.T) {
	const n = 4
	nw, err := NewNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]Word, n)
	for i := range rows {
		rows[i] = make([]Word, n)
		for j := range rows[i] {
			rows[i][j] = Word(10*i + j)
		}
	}
	cols, err := nw.Transpose("t", rows)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if cols[j][i] != Word(10*i+j) {
				t.Fatalf("cols[%d][%d] = %d, want %d", j, i, cols[j][i], 10*i+j)
			}
		}
	}
	if nw.Rounds() != 1 {
		t.Errorf("transpose rounds = %d, want 1", nw.Rounds())
	}
}

func TestTransposeValidation(t *testing.T) {
	nw, err := NewNetwork(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Transpose("t", make([][]Word, 2)); err == nil {
		t.Error("row-count mismatch must fail")
	}
	bad := [][]Word{{1, 2, 3}, {1, 2}, {1, 2, 3}}
	if _, err := nw.Transpose("t", bad); err == nil {
		t.Error("ragged rows must fail")
	}
}
