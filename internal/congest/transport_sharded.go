package congest

// The sharded transport: nodes are partitioned into contiguous ranges across
// worker shards, each shard owning its nodes' inbox rows. A Deliver runs in
// two parallel waves — scatter: each worker walks one contiguous chunk of
// the input and batches messages into per-destination-shard buffers; gather:
// each destination shard drains the batches addressed to it, in chunk order,
// into the inbox rows it owns. Batching the inter-shard traffic into
// per-(chunk, shard) buffers flushed once per exchange is the congested-
// clique routing structure in miniature (Lemma 1's balanced sub-batches),
// and it is what kills per-message contention: no locks, no atomics on the
// delivery path, disjoint writes only.
//
// Determinism: concatenating the chunks' batches in chunk order reproduces
// exactly the input order per destination, so the inboxes are bit-identical
// to the local transport's — which the cross-backend equivalence suite
// enforces for every strategy. All accounting and fault injection happen in
// Network before Deliver, so rounds, words, and fault schedules cannot
// diverge by construction.

import "qclique/internal/par"

func init() {
	RegisterTransport(TransportSharded, newShardedTransport)
}

// shardedSerialThreshold is the message count below which Deliver takes the
// serial path: two parallel waves over a handful of messages cost more in
// goroutine wakeups than they save. Both paths produce identical inboxes.
const shardedSerialThreshold = 128

func newShardedTransport(n, shards int) Transport {
	s := par.Workers(shards)
	if s > n {
		s = n
	}
	if s < 1 {
		s = 1
	}
	chunk := (n + s - 1) / s
	s = (n + chunk - 1) / chunk // re-derive: drops empty trailing shards
	t := &shardedTransport{
		n:               n,
		shards:          s,
		chunkNodes:      chunk,
		inboxes:         make([][]Message, n),
		out:             make([][][]Message, s),
		chunkIntra:      make([]int64, s),
		chunkCross:      make([]int64, s),
		chunkFlushes:    make([]int64, s),
		serialThreshold: shardedSerialThreshold,
	}
	for c := range t.out {
		t.out[c] = make([][]Message, s)
	}
	return t
}

type shardedTransport struct {
	n          int
	shards     int
	chunkNodes int // nodes per shard (last shard may own fewer)

	// inboxes is the shared per-destination delivery buffer; row i is
	// written only by the shard owning node i, so the parallel gather wave
	// performs disjoint writes.
	inboxes [][]Message

	// out[c][s] is the reusable batch buffer carrying source-chunk c's
	// messages addressed to destination shard s; written by scatter worker
	// c, drained by gather worker s.
	out [][][]Message

	// chunkIntra/chunkCross/chunkFlushes are per-worker counters summed
	// serially after each Deliver, keeping the hot path atomics-free.
	chunkIntra   []int64
	chunkCross   []int64
	chunkFlushes []int64

	// payloads/payGen: same two-generation arena as the local transport.
	// AcquirePayload is only ever called from the accounting goroutine
	// between delivers, so the arena needs no synchronization.
	payloads [2]payloadArena
	payGen   int

	// serialThreshold is shardedSerialThreshold, overridable in tests to
	// force the parallel path on small message sets.
	serialThreshold int

	stats TransportStats
}

func (t *shardedTransport) Name() string { return TransportSharded }

// shardOf maps a node to its owning shard.
func (t *shardedTransport) shardOf(id NodeID) int { return int(id) / t.chunkNodes }

func (t *shardedTransport) AcquirePayload(words int) []Word {
	if words < 0 {
		words = 0
	}
	return t.payloads[t.payGen].alloc(words)
}

func (t *shardedTransport) Deliver(msgs []Message) [][]Message {
	// Generation flip first, exactly as in the local transport: the arena
	// recycled here is the one the previous inboxes pointed at.
	t.payGen ^= 1
	t.payloads[t.payGen].reset()
	t.stats.Deliveries++
	t.stats.Messages += int64(len(msgs))
	if t.shards == 1 || len(msgs) < t.serialThreshold {
		t.deliverSerial(msgs)
		return t.inboxes
	}
	t.deliverParallel(msgs)
	return t.inboxes
}

// deliverSerial is the local-transport path with shard attribution counted.
func (t *shardedTransport) deliverSerial(msgs []Message) {
	for i := range t.inboxes {
		// Clear before truncating — the stale-Message arena-pinning rule
		// (see the Transport contract in transport.go).
		clear(t.inboxes[i])
		t.inboxes[i] = t.inboxes[i][:0]
	}
	var intra, cross int64
	for _, m := range msgs {
		t.inboxes[m.Dst] = append(t.inboxes[m.Dst], m)
		if t.shardOf(m.Src) == t.shardOf(m.Dst) {
			intra++
		} else {
			cross++
		}
	}
	t.stats.IntraShard += intra
	t.stats.CrossShard += cross
}

func (t *shardedTransport) deliverParallel(msgs []Message) {
	s := t.shards
	per := (len(msgs) + s - 1) / s

	// Scatter wave: worker c batches its contiguous input chunk into
	// per-destination-shard buffers. Chunks are contiguous and in input
	// order, so chunk-order concatenation per destination preserves the
	// input order exactly.
	par.For(s, s, func(c int) {
		lo := c * per
		hi := lo + per
		if hi > len(msgs) {
			hi = len(msgs)
		}
		if lo > hi {
			lo = hi
		}
		out := t.out[c]
		for d := range out {
			clear(out[d])
			out[d] = out[d][:0]
		}
		var intra, cross int64
		for _, m := range msgs[lo:hi] {
			ds := t.shardOf(m.Dst)
			out[ds] = append(out[ds], m)
			if t.shardOf(m.Src) == ds {
				intra++
			} else {
				cross++
			}
		}
		t.chunkIntra[c] = intra
		t.chunkCross[c] = cross
	})

	// Gather wave: destination shard d drains the batches addressed to it
	// in chunk order into the inbox rows it owns. Writes are disjoint by
	// construction (row i belongs to exactly one shard).
	par.For(s, s, func(d int) {
		lo := d * t.chunkNodes
		hi := lo + t.chunkNodes
		if hi > t.n {
			hi = t.n
		}
		for i := lo; i < hi; i++ {
			clear(t.inboxes[i])
			t.inboxes[i] = t.inboxes[i][:0]
		}
		var flushes int64
		for c := 0; c < s; c++ {
			batch := t.out[c][d]
			if len(batch) == 0 {
				continue
			}
			flushes++
			for _, m := range batch {
				t.inboxes[m.Dst] = append(t.inboxes[m.Dst], m)
			}
		}
		t.chunkFlushes[d] = flushes
	})

	for c := 0; c < s; c++ {
		t.stats.IntraShard += t.chunkIntra[c]
		t.stats.CrossShard += t.chunkCross[c]
		t.stats.Flushes += t.chunkFlushes[c]
		t.chunkIntra[c], t.chunkCross[c], t.chunkFlushes[c] = 0, 0, 0
	}
}

func (t *shardedTransport) Barrier() {}

func (t *shardedTransport) Stats() TransportStats {
	s := t.stats
	s.Transport = TransportSharded
	s.Shards = t.shards
	return s
}

func (t *shardedTransport) Close() {}
