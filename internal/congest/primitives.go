package congest

// Textbook CONGEST-CLIQUE communication primitives built on the word-level
// cost model: gather, personalized all-to-all and matrix transpose. The
// protocols in this repository use them for the simple phases; the
// irregular phases go through ExchangeDirect/ExchangeBalanced.

import "fmt"

// Gather delivers one words-long message from every node to a single
// collector. The collector's incoming links each carry one message, so the
// phase costs exactly words rounds (its in-degree is n−1, all links run in
// parallel).
func (nw *Network) Gather(label string, collector NodeID, words int64) error {
	if collector < 0 || int(collector) >= nw.n {
		return fmt.Errorf("gather %q: collector %d out of range", label, collector)
	}
	if words < 0 {
		return fmt.Errorf("gather %q: negative word count", label)
	}
	return nw.recordBulk(label, PhaseStat{
		Kind:        PhaseDirect,
		Label:       label,
		Rounds:      words,
		Words:       words * int64(nw.n-1),
		MaxLinkLoad: words,
	}, words)
}

// AllToAll accounts a full personalized exchange: every node sends a
// distinct words-long message to every other node. Each ordered link
// carries words, so the phase costs words rounds.
func (nw *Network) AllToAll(label string, words int64) error {
	if words < 0 {
		return fmt.Errorf("all-to-all %q: negative word count", label)
	}
	return nw.recordBulk(label, PhaseStat{
		Kind:        PhaseDirect,
		Label:       label,
		Rounds:      words,
		Words:       words * int64(nw.n) * int64(nw.n-1),
		MaxLinkLoad: words,
	}, words)
}

// Transpose delivers a distributed matrix transpose with payloads: node i
// holds row i of an n×n word matrix and must end up holding column i.
// Entry (i,j) moves from node i to node j — a perfect all-to-all, one word
// per ordered link, one round. Returns the received columns.
func (nw *Network) Transpose(label string, rows [][]Word) ([][]Word, error) {
	if len(rows) != nw.n {
		return nil, fmt.Errorf("transpose %q: %d rows for %d nodes", label, len(rows), nw.n)
	}
	for i, r := range rows {
		if len(r) != nw.n {
			return nil, fmt.Errorf("transpose %q: row %d has %d entries, want %d", label, i, len(r), nw.n)
		}
	}
	cols := make([][]Word, nw.n)
	for j := range cols {
		cols[j] = make([]Word, nw.n)
	}
	for i := 0; i < nw.n; i++ {
		for j := 0; j < nw.n; j++ {
			cols[j][i] = rows[i][j]
		}
	}
	if err := nw.recordBulk(label, PhaseStat{
		Kind:        PhaseDirect,
		Label:       label,
		Rounds:      1,
		Words:       int64(nw.n) * int64(nw.n-1),
		MaxLinkLoad: 1,
	}, 1); err != nil {
		return nil, err
	}
	return cols, nil
}
