package congest

// The Transport seam: Network stays the single accounting and fault-injection
// authority, while the mechanics of moving a phase's message set into
// per-destination inboxes — and of pooling the payload storage those inboxes
// reference — live behind the Transport interface. Backends register
// themselves by name; NewNetwork resolves the requested backend (default
// "local") at construction time.
//
// # Contract for backend implementers
//
// A Transport is driven from one goroutine (the network's accounting
// goroutine). Every call sequence looks like:
//
//	p := t.AcquirePayload(k)   // zero or more times between delivers
//	... caller appends words to p, wraps it in Messages ...
//	inboxes := t.Deliver(msgs) // one communication phase
//	t.Barrier()                // Network calls it right after Deliver
//
// Deliver must group msgs by Message.Dst preserving input order — the
// per-destination concatenation order is part of the simulator's determinism
// contract, and the cross-backend equivalence suite enforces it bit-for-bit.
// A backend may parallelize internally however it likes as long as the
// returned inboxes are identical to the single-goroutine reference.
//
// Recycling rules (the borrow/arena contract, from the backend's side):
//
//   - The [][]Message returned by Deliver is owned by the transport and may
//     be reused by the NEXT Deliver call; the caller reads it until then.
//   - Slices handed out by AcquirePayload become referenced by the inboxes
//     of the next Deliver, so a transport recycles payload storage one
//     generation late: flip generations at each Deliver and reset only the
//     generation the PREVIOUS inboxes pointed at (two-generation arena).
//   - When truncating reused inbox or batch buffers, clear the stale
//     Message values first — a stale Message past the new length would pin
//     the previous generation's payload blocks at their high-water mark.
//
// Fault injection never reaches a Transport: the Network draws and accounts
// the whole fault schedule before Deliver is called (see faults.go), which
// is what makes a FaultPlan replay identically on every backend.

import (
	"fmt"
	"sort"
	"sync"
)

// Transport moves one communication phase's messages into per-destination
// inboxes and owns the pooled storage behind them. See the package-level
// contract above for the rules a backend must follow.
type Transport interface {
	// Name reports the registered backend name ("local", "sharded", ...).
	Name() string
	// Deliver groups msgs by destination, preserving input order, and
	// returns the per-destination inboxes (borrowed until the next Deliver).
	Deliver(msgs []Message) [][]Message
	// AcquirePayload returns a zero-length word slice with the given
	// capacity, carved from the transport's payload arena.
	AcquirePayload(words int) []Word
	// Barrier blocks until all in-flight delivery work is visible to the
	// caller. Backends whose Deliver already joins its workers implement it
	// as a no-op; the Network calls it after every Deliver regardless.
	Barrier()
	// Stats returns cumulative transport counters (monotone; use
	// TransportStats.DeltaSince for per-phase deltas).
	Stats() TransportStats
	// Close releases backend resources (worker shards, arenas). The
	// transport must not be used after Close; Close is idempotent.
	Close()
}

// TransportStats counts the work a transport performed. All counters are
// cumulative since construction; DeltaSince supports per-phase accounting.
// The shard-related counters stay zero on single-goroutine backends.
type TransportStats struct {
	// Transport is the backend name, Shards its worker-shard count
	// (1 for local).
	Transport string `json:"transport"`
	Shards    int    `json:"shards"`
	// Deliveries counts Deliver calls (communication phases with
	// materialized payloads); Messages counts messages moved.
	Deliveries int64 `json:"deliveries"`
	Messages   int64 `json:"messages"`
	// IntraShard and CrossShard split Messages by whether source and
	// destination nodes are owned by the same shard.
	IntraShard int64 `json:"intra_shard"`
	CrossShard int64 `json:"cross_shard"`
	// Flushes counts inter-shard batch-buffer flushes (one per non-empty
	// source-chunk × destination-shard pair per Deliver).
	Flushes int64 `json:"flushes"`
}

// DeltaSince returns the counters accumulated after a previously captured
// baseline. The identity fields (Transport, Shards) are carried over.
func (s TransportStats) DeltaSince(baseline TransportStats) TransportStats {
	return TransportStats{
		Transport:  s.Transport,
		Shards:     s.Shards,
		Deliveries: s.Deliveries - baseline.Deliveries,
		Messages:   s.Messages - baseline.Messages,
		IntraShard: s.IntraShard - baseline.IntraShard,
		CrossShard: s.CrossShard - baseline.CrossShard,
		Flushes:    s.Flushes - baseline.Flushes,
	}
}

// Add merges other into s (used to roll up per-solve transport stats).
func (s *TransportStats) Add(other TransportStats) {
	if s.Transport == "" {
		s.Transport = other.Transport
	}
	if other.Shards > s.Shards {
		s.Shards = other.Shards
	}
	s.Deliveries += other.Deliveries
	s.Messages += other.Messages
	s.IntraShard += other.IntraShard
	s.CrossShard += other.CrossShard
	s.Flushes += other.Flushes
}

// TransportFactory builds a backend for an n-node network. shards is the
// resolved worker-shard request (>= 1); single-goroutine backends ignore it.
type TransportFactory func(n, shards int) Transport

var (
	transportMu        sync.RWMutex
	transportFactories = map[string]TransportFactory{}
)

// RegisterTransport registers a backend factory under name. It panics on a
// duplicate name — registration is an init-time, programmer-error surface,
// mirroring the engine's strategy registry.
func RegisterTransport(name string, f TransportFactory) {
	transportMu.Lock()
	defer transportMu.Unlock()
	if name == "" || f == nil {
		panic("congest: RegisterTransport needs a name and a factory")
	}
	if _, dup := transportFactories[name]; dup {
		panic(fmt.Sprintf("congest: transport %q registered twice", name))
	}
	transportFactories[name] = f
}

// Transports returns the registered backend names, sorted.
func Transports() []string {
	transportMu.RLock()
	defer transportMu.RUnlock()
	names := make([]string, 0, len(transportFactories))
	for name := range transportFactories {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// DefaultTransport is the backend NewNetwork uses when none is requested:
// the single-goroutine reference implementation.
const DefaultTransport = "local"

// TransportSharded is the name of the shard-partitioned multi-goroutine
// backend.
const TransportSharded = "sharded"

// lookupTransport resolves a backend name ("" means DefaultTransport).
func lookupTransport(name string) (string, TransportFactory, error) {
	if name == "" {
		name = DefaultTransport
	}
	transportMu.RLock()
	f, ok := transportFactories[name]
	transportMu.RUnlock()
	if !ok {
		return "", nil, fmt.Errorf("congest: unknown transport %q (have %v)", name, Transports())
	}
	return name, f, nil
}

// ValidTransport reports whether name resolves to a registered backend
// (the empty name counts: it selects the default).
func ValidTransport(name string) bool {
	_, _, err := lookupTransport(name)
	return err == nil
}

// WithTransport selects the delivery backend by registered name. The empty
// string keeps the default ("local"). Unknown names fail NewNetwork.
func WithTransport(name string) Option {
	return func(nw *Network) { nw.transportName = name }
}

// WithTransportShards requests a worker-shard count for backends that
// partition nodes across shards; values <= 0 let the backend pick
// (GOMAXPROCS-bounded). Single-goroutine backends ignore it.
func WithTransportShards(shards int) Option {
	return func(nw *Network) { nw.transportShards = shards }
}

// Transport returns the backend delivering this network's exchanges.
func (nw *Network) Transport() Transport { return nw.transport }

// TransportStats returns the cumulative counters of the network's backend.
func (nw *Network) TransportStats() TransportStats { return nw.transport.Stats() }

// Close releases the network's transport resources. The network must not
// exchange after Close; Close is idempotent.
func (nw *Network) Close() {
	if nw.transport != nil {
		nw.transport.Close()
	}
}
