package graph

// This file implements the centralized negative-triangle primitives of
// Section 3: Definition 1 (negative triangle), Γ(u,v) counting, and the
// brute-force FindEdges reference against which the distributed protocols
// are validated.

// Triangle is an unordered vertex triple, normalized A < B < C.
type Triangle struct {
	A, B, C int
}

// MakeTriangle normalizes three distinct vertices into a Triangle. It
// panics on duplicates.
func MakeTriangle(x, y, z int) Triangle {
	if x == y || y == z || x == z {
		panic("graph: triangle with duplicate vertices")
	}
	a, b, c := x, y, z
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return Triangle{A: a, B: b, C: c}
}

// IsNegativeTriangle reports whether {u,v,w} forms a negative triangle in g:
// all three edges exist and their weights sum to a negative value
// (Definition 1).
func IsNegativeTriangle(g *Undirected, u, v, w int) bool {
	wuv, ok := g.Weight(u, v)
	if !ok {
		return false
	}
	wuw, ok := g.Weight(u, w)
	if !ok {
		return false
	}
	wvw, ok := g.Weight(v, w)
	if !ok {
		return false
	}
	return SaturatingAdd(SaturatingAdd(wuv, wuw), wvw) < 0
}

// ListNegativeTriangles enumerates every negative triangle of g by brute
// force in O(n^3) time.
func ListNegativeTriangles(g *Undirected) []Triangle {
	n := g.N()
	var out []Triangle
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if !g.HasEdge(a, b) {
				continue
			}
			for c := b + 1; c < n; c++ {
				if IsNegativeTriangle(g, a, b, c) {
					out = append(out, Triangle{A: a, B: b, C: c})
				}
			}
		}
	}
	return out
}

// Gamma returns Γ(u,v): the number of negative triangles of g involving the
// pair {u,v}.
func Gamma(g *Undirected, u, v int) int {
	if !g.HasEdge(u, v) {
		return 0
	}
	count := 0
	for w := 0; w < g.N(); w++ {
		if w == u || w == v {
			continue
		}
		if IsNegativeTriangle(g, u, v, w) {
			count++
		}
	}
	return count
}

// GammaCounts returns the full Γ map over all pairs with Γ(u,v) > 0.
func GammaCounts(g *Undirected) map[Pair]int {
	out := make(map[Pair]int)
	for _, t := range ListNegativeTriangles(g) {
		out[MakePair(t.A, t.B)]++
		out[MakePair(t.A, t.C)]++
		out[MakePair(t.B, t.C)]++
	}
	return out
}

// MaxGamma returns the maximum Γ(u,v) over all pairs, 0 if there are no
// negative triangles.
func MaxGamma(g *Undirected) int {
	m := 0
	for _, c := range GammaCounts(g) {
		if c > m {
			m = c
		}
	}
	return m
}

// EdgesInNegativeTriangles is the brute-force FindEdges reference: the set
// of all pairs {u,v} with Γ(u,v) > 0, returned as a map for O(1) membership
// tests.
func EdgesInNegativeTriangles(g *Undirected) map[Pair]bool {
	out := make(map[Pair]bool)
	for p := range GammaCounts(g) {
		out[p] = true
	}
	return out
}
