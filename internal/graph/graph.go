// Package graph provides the weighted-graph substrate for the APSP
// reproduction: directed graphs (the APSP input), undirected weighted graphs
// (the negative-triangle input), generators for the workloads used in the
// experiments, and brute-force reference algorithms (Floyd–Warshall,
// Bellman–Ford, exhaustive negative-triangle enumeration) that the
// distributed protocols are validated against.
//
// Weights are int64. The sentinel NoEdge marks an absent edge; Inf is the
// saturating "+infinity" used by distance computations. Both are far from
// the int64 range limits so that sums of a few of them cannot overflow.
package graph

import (
	"fmt"
	"math"
)

const (
	// Inf is the saturating positive infinity for distances. It is kept at
	// a quarter of the int64 range so that adding two finite-or-infinite
	// values never overflows.
	Inf int64 = math.MaxInt64 / 4

	// NegInf is the saturating negative infinity.
	NegInf int64 = -Inf

	// NoEdge marks an absent edge in adjacency structures.
	NoEdge int64 = Inf
)

// IsFinite reports whether w represents a finite weight (neither ±Inf nor
// NoEdge).
func IsFinite(w int64) bool { return w > NegInf && w < Inf }

// SaturatingAdd adds two extended weights, clamping at ±Inf. Inf + NegInf is
// defined as Inf (the "no path" interpretation wins), matching the min-plus
// matrix convention used throughout the repository.
func SaturatingAdd(a, b int64) int64 {
	if a >= Inf || b >= Inf {
		return Inf
	}
	if a <= NegInf || b <= NegInf {
		return NegInf
	}
	s := a + b
	if s >= Inf {
		return Inf
	}
	if s <= NegInf {
		return NegInf
	}
	return s
}

// Digraph is a dense weighted directed graph on vertices 0..n-1. The zero
// diagonal is implicit for path computations but the structure itself stores
// exactly what was added; absent arcs hold NoEdge.
type Digraph struct {
	n int
	w []int64 // row-major n×n
}

// NewDigraph returns an empty directed graph on n vertices. It panics if
// n < 0 (programming error, not runtime input).
func NewDigraph(n int) *Digraph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	w := make([]int64, n*n)
	for i := range w {
		w[i] = NoEdge
	}
	return &Digraph{n: n, w: w}
}

// N returns the number of vertices.
func (g *Digraph) N() int { return g.n }

// SetArc sets the weight of the arc u->v. Self-loops are rejected with an
// error because the APSP formulation (Section 3 of the paper) excludes them.
func (g *Digraph) SetArc(u, v int, weight int64) error {
	if err := g.check(u, v); err != nil {
		return err
	}
	if u == v {
		return fmt.Errorf("graph: self-loop %d->%d not allowed", u, v)
	}
	g.w[u*g.n+v] = weight
	return nil
}

// RemoveArc deletes the arc u->v if present.
func (g *Digraph) RemoveArc(u, v int) error {
	if err := g.check(u, v); err != nil {
		return err
	}
	g.w[u*g.n+v] = NoEdge
	return nil
}

// Weight returns the weight of arc u->v and whether the arc exists.
func (g *Digraph) Weight(u, v int) (int64, bool) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return NoEdge, false
	}
	w := g.w[u*g.n+v]
	return w, w != NoEdge
}

// HasArc reports whether the arc u->v exists.
func (g *Digraph) HasArc(u, v int) bool {
	_, ok := g.Weight(u, v)
	return ok
}

// ArcCount returns the number of arcs.
func (g *Digraph) ArcCount() int {
	c := 0
	for _, w := range g.w {
		if w != NoEdge {
			c++
		}
	}
	return c
}

// Row returns a copy of vertex u's outgoing weight row (NoEdge for absent
// arcs). This mirrors the CONGEST-CLIQUE input convention: node u of the
// network receives the row of the adjacency matrix corresponding to u.
func (g *Digraph) Row(u int) []int64 {
	row := make([]int64, g.n)
	copy(row, g.w[u*g.n:(u+1)*g.n])
	return row
}

// Clone returns a deep copy.
func (g *Digraph) Clone() *Digraph {
	w := make([]int64, len(g.w))
	copy(w, g.w)
	return &Digraph{n: g.n, w: w}
}

// HasNegativeArc reports whether any arc has a negative weight. The
// approximate pipelines reject such inputs: multiplicative stretch is
// meaningful for nonnegative weights only.
func (g *Digraph) HasNegativeArc() bool {
	for _, w := range g.w {
		if w != NoEdge && w < 0 {
			return true
		}
	}
	return false
}

// IsSymmetric reports whether the graph is weight-symmetric: arc (u,v)
// exists exactly when (v,u) does, with equal weight. Symmetric digraphs are
// the directed encoding of weighted undirected graphs, the input class of
// the skeleton-based approximation.
func (g *Digraph) IsSymmetric() bool {
	for u := 0; u < g.n; u++ {
		for v := u + 1; v < g.n; v++ {
			if g.w[u*g.n+v] != g.w[v*g.n+u] {
				return false
			}
		}
	}
	return true
}

// MaxAbsWeight returns the maximum absolute value among finite arc weights
// (the W of the paper), or 0 for an arcless graph.
func (g *Digraph) MaxAbsWeight() int64 {
	var m int64
	for _, w := range g.w {
		if w == NoEdge {
			continue
		}
		a := w
		if a < 0 {
			a = -a
		}
		if a > m {
			m = a
		}
	}
	return m
}

func (g *Digraph) check(u, v int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graph: vertex out of range: (%d,%d) with n=%d", u, v, g.n)
	}
	return nil
}

// Undirected is a dense weighted undirected graph on vertices 0..n-1, the
// input type of FindEdges / FindEdgesWithPromise. Absent edges hold NoEdge.
type Undirected struct {
	n int
	w []int64 // row-major, kept symmetric
}

// NewUndirected returns an empty undirected graph on n vertices.
func NewUndirected(n int) *Undirected {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	w := make([]int64, n*n)
	for i := range w {
		w[i] = NoEdge
	}
	return &Undirected{n: n, w: w}
}

// N returns the number of vertices.
func (g *Undirected) N() int { return g.n }

// SetEdge sets the weight of edge {u,v}. Self-loops are rejected.
func (g *Undirected) SetEdge(u, v int, weight int64) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graph: vertex out of range: (%d,%d) with n=%d", u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d not allowed", u)
	}
	g.w[u*g.n+v] = weight
	g.w[v*g.n+u] = weight
	return nil
}

// SetBipartiteBlock overwrites every edge between the vertex ranges
// [u0, u0+nu) and [v0, v0+nv) from the row-major nu×nv weight block w,
// keeping the adjacency symmetric. A NoEdge entry deletes the edge. The two
// ranges must be disjoint (the block would otherwise write a self-loop).
//
// This is the bulk-mutation path behind incremental reduction instances:
// the Proposition 2 binary search rewrites only the threshold leg of the
// tripartite construction between FindEdges calls, so rebuilding the whole
// 3n-vertex graph per step is replaced by one O(nu·nv) in-place sweep.
func (g *Undirected) SetBipartiteBlock(u0, nu, v0, nv int, w []int64) error {
	if nu < 0 || nv < 0 || u0 < 0 || v0 < 0 || u0+nu > g.n || v0+nv > g.n {
		return fmt.Errorf("graph: block [%d,%d)×[%d,%d) out of range for n=%d", u0, u0+nu, v0, v0+nv, g.n)
	}
	if u0 < v0+nv && v0 < u0+nu && nu > 0 && nv > 0 {
		return fmt.Errorf("graph: block ranges [%d,%d) and [%d,%d) overlap", u0, u0+nu, v0, v0+nv)
	}
	if len(w) != nu*nv {
		return fmt.Errorf("graph: block has %d weights, want %d", len(w), nu*nv)
	}
	for i := 0; i < nu; i++ {
		u := u0 + i
		row := g.w[u*g.n:]
		wrow := w[i*nv : (i+1)*nv]
		for j := 0; j < nv; j++ {
			v := v0 + j
			row[v] = wrow[j]
			g.w[v*g.n+u] = wrow[j]
		}
	}
	return nil
}

// Clear removes every edge, recycling the adjacency storage: the
// incremental reduction instances rebuild their static legs in place across
// repeated distance products instead of allocating a fresh graph.
func (g *Undirected) Clear() {
	for i := range g.w {
		g.w[i] = NoEdge
	}
}

// RemoveEdge deletes edge {u,v} if present.
func (g *Undirected) RemoveEdge(u, v int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graph: vertex out of range: (%d,%d) with n=%d", u, v, g.n)
	}
	g.w[u*g.n+v] = NoEdge
	g.w[v*g.n+u] = NoEdge
	return nil
}

// Weight returns the weight of edge {u,v} and whether it exists.
func (g *Undirected) Weight(u, v int) (int64, bool) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n || u == v {
		return NoEdge, false
	}
	w := g.w[u*g.n+v]
	return w, w != NoEdge
}

// HasEdge reports whether edge {u,v} exists.
func (g *Undirected) HasEdge(u, v int) bool {
	_, ok := g.Weight(u, v)
	return ok
}

// EdgeCount returns the number of (unordered) edges.
func (g *Undirected) EdgeCount() int {
	c := 0
	for u := 0; u < g.n; u++ {
		for v := u + 1; v < g.n; v++ {
			if g.w[u*g.n+v] != NoEdge {
				c++
			}
		}
	}
	return c
}

// Neighbors returns the sorted neighbor list of u.
func (g *Undirected) Neighbors(u int) []int {
	var out []int
	for v := 0; v < g.n; v++ {
		if v != u && g.w[u*g.n+v] != NoEdge {
			out = append(out, v)
		}
	}
	return out
}

// Row returns a copy of vertex u's weight row (NoEdge for absent edges),
// matching the distributed input convention: node u receives N_G(u) with
// weights.
func (g *Undirected) Row(u int) []int64 {
	row := make([]int64, g.n)
	copy(row, g.w[u*g.n:(u+1)*g.n])
	return row
}

// RowView returns vertex u's weight row as a slice aliasing the graph's
// backing storage (NoEdge for absent edges, including the diagonal). It is
// the allocation-free companion of Row for internal hot paths — the
// triangle-placement leg scans read whole rows per candidate pair — and
// must not be mutated or retained across writes to the graph.
func (g *Undirected) RowView(u int) []int64 {
	if u < 0 || u >= g.n {
		panic("graph: RowView index out of range")
	}
	return g.w[u*g.n : (u+1)*g.n : (u+1)*g.n]
}

// Clone returns a deep copy.
func (g *Undirected) Clone() *Undirected {
	w := make([]int64, len(g.w))
	copy(w, g.w)
	return &Undirected{n: g.n, w: w}
}

// Subgraph returns the subgraph containing exactly the edges for which
// keep(u,v) is true (u < v).
func (g *Undirected) Subgraph(keep func(u, v int) bool) *Undirected {
	sub := NewUndirected(g.n)
	g.subgraphInto(sub, keep)
	return sub
}

// SubgraphInto writes the subgraph into dst (which must have the same
// vertex count), overwriting it entirely — including deleting edges the
// predicate rejects — so a workspace graph can be reused across repeated
// subgraph extractions without clearing.
func (g *Undirected) SubgraphInto(dst *Undirected, keep func(u, v int) bool) error {
	if dst.n != g.n {
		return fmt.Errorf("graph: SubgraphInto destination has %d vertices, want %d", dst.n, g.n)
	}
	for i := range dst.w {
		dst.w[i] = NoEdge
	}
	g.subgraphInto(dst, keep)
	return nil
}

func (g *Undirected) subgraphInto(dst *Undirected, keep func(u, v int) bool) {
	for u := 0; u < g.n; u++ {
		for v := u + 1; v < g.n; v++ {
			if w := g.w[u*g.n+v]; w != NoEdge && keep(u, v) {
				dst.w[u*g.n+v] = w
				dst.w[v*g.n+u] = w
			}
		}
	}
}

// Pair is an unordered vertex pair {U,V}, always normalized to U < V. It is
// the element type of the sets S and P(u,v) in the paper.
type Pair struct {
	U, V int
}

// MakePair normalizes (a,b) into a Pair with U < V. It panics if a == b,
// since P(V) excludes diagonal pairs.
func MakePair(a, b int) Pair {
	switch {
	case a < b:
		return Pair{U: a, V: b}
	case b < a:
		return Pair{U: b, V: a}
	default:
		panic("graph: pair with equal endpoints")
	}
}

// Contains reports whether the pair includes vertex x.
func (p Pair) Contains(x int) bool { return p.U == x || p.V == x }

// Other returns the endpoint that is not x. It panics if x is not an
// endpoint.
func (p Pair) Other(x int) int {
	switch x {
	case p.U:
		return p.V
	case p.V:
		return p.U
	}
	panic("graph: Other on non-member vertex")
}

// String implements fmt.Stringer.
func (p Pair) String() string { return fmt.Sprintf("{%d,%d}", p.U, p.V) }
