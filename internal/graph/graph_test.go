package graph

import (
	"testing"
	"testing/quick"

	"qclique/internal/xrand"
)

func TestDigraphBasics(t *testing.T) {
	g := NewDigraph(4)
	if g.N() != 4 {
		t.Fatalf("N() = %d, want 4", g.N())
	}
	if err := g.SetArc(0, 1, 5); err != nil {
		t.Fatalf("SetArc: %v", err)
	}
	if err := g.SetArc(1, 0, -3); err != nil {
		t.Fatalf("SetArc: %v", err)
	}
	w, ok := g.Weight(0, 1)
	if !ok || w != 5 {
		t.Errorf("Weight(0,1) = %d,%v, want 5,true", w, ok)
	}
	w, ok = g.Weight(1, 0)
	if !ok || w != -3 {
		t.Errorf("Weight(1,0) = %d,%v, want -3,true", w, ok)
	}
	if _, ok := g.Weight(0, 2); ok {
		t.Error("Weight(0,2) should not exist")
	}
	if g.ArcCount() != 2 {
		t.Errorf("ArcCount = %d, want 2", g.ArcCount())
	}
	if err := g.RemoveArc(0, 1); err != nil {
		t.Fatalf("RemoveArc: %v", err)
	}
	if g.HasArc(0, 1) {
		t.Error("arc 0->1 should be removed")
	}
}

func TestDigraphRejectsSelfLoopAndRange(t *testing.T) {
	g := NewDigraph(3)
	if err := g.SetArc(1, 1, 0); err == nil {
		t.Error("self-loop should be rejected")
	}
	if err := g.SetArc(0, 3, 1); err == nil {
		t.Error("out-of-range vertex should be rejected")
	}
	if err := g.SetArc(-1, 0, 1); err == nil {
		t.Error("negative vertex should be rejected")
	}
}

func TestDigraphRowAndClone(t *testing.T) {
	g := NewDigraph(3)
	if err := g.SetArc(0, 1, 7); err != nil {
		t.Fatal(err)
	}
	row := g.Row(0)
	if row[1] != 7 || row[0] != NoEdge || row[2] != NoEdge {
		t.Errorf("Row(0) = %v", row)
	}
	row[1] = 99 // must not alias internal state
	if w, _ := g.Weight(0, 1); w != 7 {
		t.Error("Row must return a copy")
	}
	c := g.Clone()
	if err := c.SetArc(0, 2, 1); err != nil {
		t.Fatal(err)
	}
	if g.HasArc(0, 2) {
		t.Error("Clone must not alias original")
	}
}

func TestUndirectedSymmetry(t *testing.T) {
	g := NewUndirected(5)
	if err := g.SetEdge(3, 1, -4); err != nil {
		t.Fatal(err)
	}
	w1, ok1 := g.Weight(1, 3)
	w2, ok2 := g.Weight(3, 1)
	if !ok1 || !ok2 || w1 != -4 || w2 != -4 {
		t.Errorf("edge not symmetric: (%d,%v) (%d,%v)", w1, ok1, w2, ok2)
	}
	if g.EdgeCount() != 1 {
		t.Errorf("EdgeCount = %d, want 1", g.EdgeCount())
	}
	nbrs := g.Neighbors(1)
	if len(nbrs) != 1 || nbrs[0] != 3 {
		t.Errorf("Neighbors(1) = %v", nbrs)
	}
	if err := g.RemoveEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(3, 1) {
		t.Error("edge should be removed symmetrically")
	}
}

func TestUndirectedSubgraph(t *testing.T) {
	g := NewUndirected(4)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			if err := g.SetEdge(u, v, int64(u+v)); err != nil {
				t.Fatal(err)
			}
		}
	}
	sub := g.Subgraph(func(u, v int) bool { return u == 0 })
	if sub.EdgeCount() != 3 {
		t.Errorf("subgraph edges = %d, want 3", sub.EdgeCount())
	}
	if !sub.HasEdge(0, 2) || sub.HasEdge(1, 2) {
		t.Error("subgraph kept wrong edges")
	}
}

func TestSaturatingAdd(t *testing.T) {
	cases := []struct {
		a, b, want int64
	}{
		{1, 2, 3},
		{Inf, 5, Inf},
		{5, Inf, Inf},
		{NegInf, -5, NegInf},
		{Inf, NegInf, Inf}, // "no path" wins
		{Inf - 1, Inf - 1, Inf},
		{NegInf + 1, NegInf + 1, NegInf},
		{-7, 7, 0},
	}
	for _, c := range cases {
		if got := SaturatingAdd(c.a, c.b); got != c.want {
			t.Errorf("SaturatingAdd(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSaturatingAddNeverOverflows(t *testing.T) {
	f := func(a, b int64) bool {
		// Clamp inputs into the extended-weight domain.
		clamp := func(x int64) int64 {
			if x > Inf {
				return Inf
			}
			if x < NegInf {
				return NegInf
			}
			return x
		}
		s := SaturatingAdd(clamp(a), clamp(b))
		return s >= NegInf && s <= Inf
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPairNormalization(t *testing.T) {
	p := MakePair(7, 2)
	if p.U != 2 || p.V != 7 {
		t.Errorf("MakePair(7,2) = %v", p)
	}
	if MakePair(2, 7) != p {
		t.Error("MakePair must normalize order")
	}
	if !p.Contains(7) || p.Contains(3) {
		t.Error("Contains wrong")
	}
	if p.Other(2) != 7 || p.Other(7) != 2 {
		t.Error("Other wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("MakePair(3,3) should panic")
		}
	}()
	MakePair(3, 3)
}

func TestFloydWarshallSmall(t *testing.T) {
	g := NewDigraph(4)
	arcs := []struct {
		u, v int
		w    int64
	}{
		{0, 1, 1}, {1, 2, -2}, {2, 3, 3}, {0, 3, 10}, {3, 0, 1},
	}
	for _, a := range arcs {
		if err := g.SetArc(a.u, a.v, a.w); err != nil {
			t.Fatal(err)
		}
	}
	dist, err := FloydWarshall(g)
	if err != nil {
		t.Fatal(err)
	}
	n := 4
	want := map[[2]int]int64{
		{0, 1}: 1, {0, 2}: -1, {0, 3}: 2, {1, 3}: 1, {3, 1}: 2, {2, 0}: 4,
	}
	for k, v := range want {
		if got := dist[k[0]*n+k[1]]; got != v {
			t.Errorf("d(%d,%d) = %d, want %d", k[0], k[1], got, v)
		}
	}
	if dist[0*n+0] != 0 {
		t.Error("diagonal must be 0")
	}
}

func TestFloydWarshallUnreachable(t *testing.T) {
	g := NewDigraph(3)
	if err := g.SetArc(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	dist, err := FloydWarshall(g)
	if err != nil {
		t.Fatal(err)
	}
	if dist[0*3+2] != Inf {
		t.Errorf("d(0,2) = %d, want Inf", dist[0*3+2])
	}
	if dist[1*3+0] != Inf {
		t.Errorf("d(1,0) = %d, want Inf", dist[1*3+0])
	}
}

func TestFloydWarshallNegativeCycle(t *testing.T) {
	g := NewDigraph(3)
	if err := g.SetArc(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.SetArc(1, 2, -5); err != nil {
		t.Fatal(err)
	}
	if err := g.SetArc(2, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := FloydWarshall(g); err != ErrNegativeCycle {
		t.Errorf("err = %v, want ErrNegativeCycle", err)
	}
	if !HasNegativeCycle(g) {
		t.Error("HasNegativeCycle should be true")
	}
}

func TestBellmanFordAgreesWithFloydWarshall(t *testing.T) {
	rng := xrand.New(42)
	for trial := 0; trial < 20; trial++ {
		g, err := RandomDigraph(12, DigraphOpts{
			ArcProb:          0.4,
			MinWeight:        -8,
			MaxWeight:        20,
			NoNegativeCycles: true,
		}, rng.SplitN("trial", trial))
		if err != nil {
			t.Fatal(err)
		}
		fw, err := FloydWarshall(g)
		if err != nil {
			t.Fatalf("trial %d: unexpected negative cycle: %v", trial, err)
		}
		for src := 0; src < g.N(); src++ {
			bf, err := BellmanFord(g, src)
			if err != nil {
				t.Fatalf("trial %d src %d: %v", trial, src, err)
			}
			for v := 0; v < g.N(); v++ {
				if bf[v] != fw[src*g.N()+v] {
					t.Fatalf("trial %d: d(%d,%d): BF=%d FW=%d", trial, src, v, bf[v], fw[src*g.N()+v])
				}
			}
		}
	}
}

func TestBellmanFordNegativeCycle(t *testing.T) {
	g := NewDigraph(4)
	for _, a := range [][3]int64{{0, 1, 1}, {1, 2, -3}, {2, 1, 1}, {2, 3, 1}} {
		if err := g.SetArc(int(a[0]), int(a[1]), a[2]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := BellmanFord(g, 0); err != ErrNegativeCycle {
		t.Errorf("err = %v, want ErrNegativeCycle", err)
	}
	// The cycle is unreachable from 3, so SSSP from 3 succeeds.
	if _, err := BellmanFord(g, 3); err != nil {
		t.Errorf("err = %v, want nil (cycle unreachable)", err)
	}
}

func TestNoNegativeCyclesGenerator(t *testing.T) {
	rng := xrand.New(7)
	sawNegativeArc := false
	for trial := 0; trial < 30; trial++ {
		g, err := RandomDigraph(10, DigraphOpts{
			ArcProb:          0.5,
			MinWeight:        -20,
			MaxWeight:        20,
			NoNegativeCycles: true,
		}, rng.SplitN("t", trial))
		if err != nil {
			t.Fatal(err)
		}
		if HasNegativeCycle(g) {
			t.Fatalf("trial %d: generator produced a negative cycle", trial)
		}
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if w, ok := g.Weight(u, v); ok {
					if w < -20 || w > 20 {
						t.Fatalf("weight %d out of range", w)
					}
					if w < 0 {
						sawNegativeArc = true
					}
				}
			}
		}
	}
	if !sawNegativeArc {
		t.Error("generator should produce some negative arcs")
	}
}

func TestNegativeTrianglePrimitives(t *testing.T) {
	g := NewUndirected(5)
	// Triangle {0,1,2} with sum -1 (negative); triangle {1,2,3} with sum 3.
	edges := []struct {
		u, v int
		w    int64
	}{
		{0, 1, -5}, {0, 2, 2}, {1, 2, 2}, {1, 3, 1}, {2, 3, 0},
	}
	for _, e := range edges {
		if err := g.SetEdge(e.u, e.v, e.w); err != nil {
			t.Fatal(err)
		}
	}
	if !IsNegativeTriangle(g, 0, 1, 2) {
		t.Error("{0,1,2} should be negative")
	}
	if IsNegativeTriangle(g, 1, 2, 3) {
		t.Error("{1,2,3} sums to 3, not negative")
	}
	if IsNegativeTriangle(g, 0, 1, 4) {
		t.Error("missing edges cannot form a triangle")
	}
	tris := ListNegativeTriangles(g)
	if len(tris) != 1 || tris[0] != (Triangle{A: 0, B: 1, C: 2}) {
		t.Errorf("ListNegativeTriangles = %v", tris)
	}
	if Gamma(g, 0, 1) != 1 || Gamma(g, 1, 3) != 0 {
		t.Error("Gamma counts wrong")
	}
	edgeSet := EdgesInNegativeTriangles(g)
	want := map[Pair]bool{MakePair(0, 1): true, MakePair(0, 2): true, MakePair(1, 2): true}
	if len(edgeSet) != len(want) {
		t.Fatalf("EdgesInNegativeTriangles = %v, want %v", edgeSet, want)
	}
	for p := range want {
		if !edgeSet[p] {
			t.Errorf("missing pair %v", p)
		}
	}
}

func TestGammaCountsConsistency(t *testing.T) {
	rng := xrand.New(99)
	g, err := RandomUndirected(14, UndirectedOpts{EdgeProb: 0.6, MinWeight: -10, MaxWeight: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	counts := GammaCounts(g)
	for p, c := range counts {
		if direct := Gamma(g, p.U, p.V); direct != c {
			t.Errorf("Γ%v: map says %d, direct says %d", p, c, direct)
		}
	}
	// Triple-counting check: sum of Γ over pairs = 3 * #triangles.
	total := 0
	for _, c := range counts {
		total += c
	}
	if tris := ListNegativeTriangles(g); total != 3*len(tris) {
		t.Errorf("sum Γ = %d, want 3*%d", total, len(tris))
	}
	if mg := MaxGamma(g); mg < 0 {
		t.Errorf("MaxGamma = %d", mg)
	}
}

func TestPlantNegativeTriangles(t *testing.T) {
	rng := xrand.New(5)
	g, err := RandomUndirected(20, UndirectedOpts{EdgeProb: 0.3, MinWeight: 1, MaxWeight: 30}, rng)
	if err != nil {
		t.Fatal(err)
	}
	planted, err := PlantNegativeTriangles(g, 4, 20, rng.Split("plant"))
	if err != nil {
		t.Fatal(err)
	}
	if len(planted) != 4 {
		t.Fatalf("planted %d, want 4", len(planted))
	}
	for _, tri := range planted {
		if !IsNegativeTriangle(g, tri[0], tri[1], tri[2]) {
			t.Errorf("planted triple %v is not a negative triangle", tri)
		}
	}
	if _, err := PlantNegativeTriangles(NewUndirected(5), 2, 20, rng); err == nil {
		t.Error("planting 2 disjoint triangles in 5 vertices should fail")
	}
}

func TestGridAndRoadGenerators(t *testing.T) {
	rng := xrand.New(11)
	g, err := GridDigraph(3, 4, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 {
		t.Fatalf("grid N = %d", g.N())
	}
	// Grid arcs: horizontal 3*3=9, vertical 2*4=8, both directions.
	if got, want := g.ArcCount(), 2*(9+8); got != want {
		t.Errorf("grid arcs = %d, want %d", got, want)
	}
	if HasNegativeCycle(g) {
		t.Error("grid has positive weights only")
	}
	r, err := RoadNetwork(4, 4, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := FloydWarshall(r)
	if err != nil {
		t.Fatal(err)
	}
	// Grid with bidirectional arcs is connected.
	for i := 0; i < r.N(); i++ {
		for j := 0; j < r.N(); j++ {
			if dist[i*r.N()+j] >= Inf {
				t.Fatalf("road network should be connected: d(%d,%d)=Inf", i, j)
			}
		}
	}
	if _, err := GridDigraph(0, 3, 5, rng); err == nil {
		t.Error("degenerate grid should fail")
	}
}

func TestCurrencyGraphArbitrage(t *testing.T) {
	rng := xrand.New(13)
	g, planted, err := CurrencyGraph(12, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(planted) != 2 {
		t.Fatalf("planted = %v", planted)
	}
	if !HasNegativeCycle(g) {
		t.Error("arbitrage cycles should make a negative cycle")
	}
	for _, tri := range planted {
		a, b, c := tri[0], tri[1], tri[2]
		wab, _ := g.Weight(a, b)
		wbc, _ := g.Weight(b, c)
		wca, _ := g.Weight(c, a)
		if wab+wbc+wca >= 0 {
			t.Errorf("planted cycle %v has weight %d", tri, wab+wbc+wca)
		}
	}
	clean, _, err := CurrencyGraph(10, 0, rng.Split("clean"))
	if err != nil {
		t.Fatal(err)
	}
	if HasNegativeCycle(clean) {
		t.Error("spread-consistent prices should have no negative cycle")
	}
}

func TestHubUndirected(t *testing.T) {
	rng := xrand.New(21)
	g, err := HubUndirected(30, 2, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if MaxGamma(g) < 4 {
		t.Errorf("hub workload should have a high-Γ edge, got max Γ = %d", MaxGamma(g))
	}
	if _, err := HubUndirected(5, 3, 10, rng); err == nil {
		t.Error("oversized hub workload should fail")
	}
}

func TestMaxAbsWeight(t *testing.T) {
	g := NewDigraph(3)
	if g.MaxAbsWeight() != 0 {
		t.Error("empty graph MaxAbsWeight should be 0")
	}
	if err := g.SetArc(0, 1, -9); err != nil {
		t.Fatal(err)
	}
	if err := g.SetArc(1, 2, 4); err != nil {
		t.Fatal(err)
	}
	if g.MaxAbsWeight() != 9 {
		t.Errorf("MaxAbsWeight = %d, want 9", g.MaxAbsWeight())
	}
}
