package graph

// Features is the one-pass structural profile of a Digraph: everything the
// serving layer's strategy planner needs to decide which pipelines are
// viable (symmetry, negative arcs) and what they are likely to cost (size,
// density, weight range). It is computed once per stored graph — the store
// is content-addressed, so a profile can never go stale — and echoed over
// HTTP alongside the graph id.
type Features struct {
	// N is the vertex count.
	N int `json:"n"`
	// Arcs is the number of present arcs.
	Arcs int `json:"arcs"`
	// Density is Arcs / (N·(N−1)), the filled fraction of the off-diagonal
	// adjacency (0 for graphs with fewer than two vertices).
	Density float64 `json:"density"`
	// Symmetric reports weight symmetry: arc (u,v) exists exactly when
	// (v,u) does, with equal weight — the input class of the skeleton
	// strategy.
	Symmetric bool `json:"symmetric"`
	// NegativeArcs reports the presence of any negative arc weight, which
	// the approximate strategies reject.
	NegativeArcs bool `json:"negative_arcs"`
	// MinWeight/MaxWeight bound the finite arc weights (both 0 for an
	// arcless graph).
	MinWeight int64 `json:"min_weight"`
	MaxWeight int64 `json:"max_weight"`
	// MaxAbsWeight is the paper's W: the maximum |w| over present arcs.
	MaxAbsWeight int64 `json:"max_abs_weight"`
}

// Features profiles the graph in a single sweep of the adjacency (plus the
// triangular symmetry check), equivalent to — but cheaper than — calling
// ArcCount, HasNegativeArc, IsSymmetric and MaxAbsWeight separately.
func (g *Digraph) Features() Features {
	f := Features{N: g.n, Symmetric: true}
	first := true
	for _, w := range g.w {
		if w == NoEdge {
			continue
		}
		f.Arcs++
		if first {
			f.MinWeight, f.MaxWeight = w, w
			first = false
		} else {
			if w < f.MinWeight {
				f.MinWeight = w
			}
			if w > f.MaxWeight {
				f.MaxWeight = w
			}
		}
		if w < 0 {
			f.NegativeArcs = true
		}
		a := w
		if a < 0 {
			a = -a
		}
		if a > f.MaxAbsWeight {
			f.MaxAbsWeight = a
		}
	}
	if g.n > 1 {
		f.Density = float64(f.Arcs) / float64(g.n*(g.n-1))
	}
	for u := 0; u < g.n && f.Symmetric; u++ {
		for v := u + 1; v < g.n; v++ {
			if g.w[u*g.n+v] != g.w[v*g.n+u] {
				f.Symmetric = false
				break
			}
		}
	}
	return f
}
