package graph

import (
	"fmt"

	"qclique/internal/xrand"
)

// DigraphOpts configures random directed-graph generation.
type DigraphOpts struct {
	// ArcProb is the independent probability of each ordered arc (u,v),
	// u != v.
	ArcProb float64
	// MinWeight and MaxWeight bound arc weights inclusively (the paper's
	// {-W,...,W} when Min=-W, Max=W).
	MinWeight, MaxWeight int64
	// NoNegativeCycles, when true, produces weights via vertex potentials
	// (w(u,v) = c(u,v) + phi(u) - phi(v) with c >= 0), which admits
	// negative arcs but provably no negative cycles — the APSP
	// precondition of Proposition 3.
	NoNegativeCycles bool
}

// RandomDigraph generates an Erdős–Rényi style weighted directed graph.
func RandomDigraph(n int, opts DigraphOpts, rng *xrand.Source) (*Digraph, error) {
	if opts.MinWeight > opts.MaxWeight {
		return nil, fmt.Errorf("graph: bad weight range [%d,%d]", opts.MinWeight, opts.MaxWeight)
	}
	g := NewDigraph(n)
	if !opts.NoNegativeCycles {
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u == v || !rng.Bool(opts.ArcProb) {
					continue
				}
				w := opts.MinWeight + rng.Int64N(opts.MaxWeight-opts.MinWeight+1)
				if err := g.SetArc(u, v, w); err != nil {
					return nil, err
				}
			}
		}
		return g, nil
	}

	// Potential-shifted weights: pick per-vertex potentials phi in
	// [Min/2, Max/2] and nonnegative costs c so that the shifted weight
	// stays inside [MinWeight, MaxWeight].
	span := opts.MaxWeight - opts.MinWeight
	half := span / 2
	phi := make([]int64, n)
	for i := range phi {
		phi[i] = rng.Int64N(half + 1)
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v || !rng.Bool(opts.ArcProb) {
				continue
			}
			// c >= 0 chosen so opts.MinWeight <= c+phi[u]-phi[v] <= opts.MaxWeight.
			shift := phi[u] - phi[v]
			lo := opts.MinWeight - shift
			if lo < 0 {
				lo = 0
			}
			hi := opts.MaxWeight - shift
			if hi < lo {
				continue // cannot place an arc within range; skip
			}
			c := lo + rng.Int64N(hi-lo+1)
			if err := g.SetArc(u, v, c+shift); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// RandomSymmetricDigraph generates an Erdős–Rényi style weight-symmetric
// directed graph: each unordered pair {u,v} gets, with probability
// opts.ArcProb, arcs in both directions with one shared weight drawn from
// [MinWeight, MaxWeight]. It is the directed encoding of a weighted
// undirected graph — the input class of the skeleton-based (2+ε)
// approximation. NoNegativeCycles is ignored (callers wanting nonnegative
// weights set MinWeight >= 0; any negative symmetric arc is already a
// negative 2-cycle).
func RandomSymmetricDigraph(n int, opts DigraphOpts, rng *xrand.Source) (*Digraph, error) {
	if opts.MinWeight > opts.MaxWeight {
		return nil, fmt.Errorf("graph: bad weight range [%d,%d]", opts.MinWeight, opts.MaxWeight)
	}
	g := NewDigraph(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !rng.Bool(opts.ArcProb) {
				continue
			}
			w := opts.MinWeight + rng.Int64N(opts.MaxWeight-opts.MinWeight+1)
			if err := g.SetArc(u, v, w); err != nil {
				return nil, err
			}
			if err := g.SetArc(v, u, w); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// UndirectedOpts configures random undirected-graph generation.
type UndirectedOpts struct {
	// EdgeProb is the independent probability of each unordered edge.
	EdgeProb float64
	// MinWeight and MaxWeight bound edge weights inclusively.
	MinWeight, MaxWeight int64
}

// RandomUndirected generates an Erdős–Rényi style weighted undirected graph.
func RandomUndirected(n int, opts UndirectedOpts, rng *xrand.Source) (*Undirected, error) {
	if opts.MinWeight > opts.MaxWeight {
		return nil, fmt.Errorf("graph: bad weight range [%d,%d]", opts.MinWeight, opts.MaxWeight)
	}
	g := NewUndirected(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !rng.Bool(opts.EdgeProb) {
				continue
			}
			w := opts.MinWeight + rng.Int64N(opts.MaxWeight-opts.MinWeight+1)
			if err := g.SetEdge(u, v, w); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// PlantNegativeTriangles plants exactly count vertex-disjoint negative
// triangles into g (overwriting any existing edges among the chosen
// vertices) and returns the planted triples. Each planted triangle has edge
// weights (-3, 1, 1) scaled to stay within [-mag, mag], so its sum is
// strictly negative. It fails if g has fewer than 3*count vertices.
func PlantNegativeTriangles(g *Undirected, count int, mag int64, rng *xrand.Source) ([][3]int, error) {
	n := g.N()
	if 3*count > n {
		return nil, fmt.Errorf("graph: cannot plant %d disjoint triangles in %d vertices", count, n)
	}
	if mag < 3 {
		mag = 3
	}
	perm := rng.Perm(n)
	planted := make([][3]int, 0, count)
	for i := 0; i < count; i++ {
		a, b, c := perm[3*i], perm[3*i+1], perm[3*i+2]
		neg := -(1 + rng.Int64N(mag-2)) - 2 // in [-mag, -3]
		w1 := 1 + rng.Int64N((-neg-1)/2)    // positive, small enough
		w2 := 1 + rng.Int64N((-neg-1)/2)
		if w1+w2+neg >= 0 {
			// Defensive: force negativity.
			neg = -(w1 + w2) - 1
		}
		if err := g.SetEdge(a, b, neg); err != nil {
			return nil, err
		}
		if err := g.SetEdge(a, c, w1); err != nil {
			return nil, err
		}
		if err := g.SetEdge(b, c, w2); err != nil {
			return nil, err
		}
		planted = append(planted, [3]int{a, b, c})
	}
	return planted, nil
}

// GridDigraph builds a rows×cols grid with bidirectional arcs of uniform
// random weight in [1, maxW]; a standard road-like sparse workload.
func GridDigraph(rows, cols int, maxW int64, rng *xrand.Source) (*Digraph, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("graph: bad grid %dx%d", rows, cols)
	}
	if maxW < 1 {
		maxW = 1
	}
	g := NewDigraph(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	add := func(a, b int) error {
		w := 1 + rng.Int64N(maxW)
		if err := g.SetArc(a, b, w); err != nil {
			return err
		}
		return g.SetArc(b, a, 1+rng.Int64N(maxW))
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				if err := add(id(r, c), id(r, c+1)); err != nil {
					return nil, err
				}
			}
			if r+1 < rows {
				if err := add(id(r, c), id(r+1, c)); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// RoadNetwork builds a two-level road-like digraph: a sparse grid of "local
// roads" plus a few random long-range "highways" with lower per-hop weight.
// All weights are positive.
func RoadNetwork(rows, cols, highways int, rng *xrand.Source) (*Digraph, error) {
	g, err := GridDigraph(rows, cols, 20, rng)
	if err != nil {
		return nil, err
	}
	n := g.N()
	for i := 0; i < highways; i++ {
		a := rng.IntN(n)
		b := rng.IntN(n)
		if a == b {
			continue
		}
		w := int64(1 + rng.IntN(5))
		if err := g.SetArc(a, b, w); err != nil {
			return nil, err
		}
		if err := g.SetArc(b, a, w); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// CurrencyGraph builds a complete digraph of log-exchange-rate weights with
// optional planted arbitrage triangles (directed negative-weight 3-cycles).
// Weights model -log(rate) scaled to integers; a negative cycle is an
// arbitrage opportunity. Spread > 0 keeps non-planted triangles positive.
func CurrencyGraph(n int, arbitrage int, rng *xrand.Source) (*Digraph, []([3]int), error) {
	if n < 3 {
		return nil, nil, fmt.Errorf("graph: currency graph needs n >= 3, got %d", n)
	}
	g := NewDigraph(n)
	// Base: consistent prices derived from per-currency log-values, plus a
	// positive spread so every cycle has positive weight.
	value := make([]int64, n)
	for i := range value {
		value[i] = rng.Int64N(1000)
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			spread := 1 + rng.Int64N(10)
			if err := g.SetArc(u, v, value[v]-value[u]+spread); err != nil {
				return nil, nil, err
			}
		}
	}
	perm := rng.Perm(n)
	if 3*arbitrage > n {
		return nil, nil, fmt.Errorf("graph: cannot plant %d disjoint arbitrage cycles in %d currencies", arbitrage, n)
	}
	var planted [][3]int
	for i := 0; i < arbitrage; i++ {
		a, b, c := perm[3*i], perm[3*i+1], perm[3*i+2]
		// Make the directed cycle a->b->c->a strictly negative.
		if err := g.SetArc(a, b, value[b]-value[a]-5); err != nil {
			return nil, nil, err
		}
		if err := g.SetArc(b, c, value[c]-value[b]-5); err != nil {
			return nil, nil, err
		}
		if err := g.SetArc(c, a, value[a]-value[c]-5); err != nil {
			return nil, nil, err
		}
		planted = append(planted, [3]int{a, b, c})
	}
	return g, planted, nil
}

// HubUndirected generates an undirected graph in which a few "hub" edges
// participate in many negative triangles while all other pairs participate
// in none — the skewed-Γ workload used to exercise the Proposition 1
// sampling reduction.
func HubUndirected(n, hubs, trianglesPerHub int, rng *xrand.Source) (*Undirected, error) {
	if hubs*2+trianglesPerHub > n {
		return nil, fmt.Errorf("graph: hub workload does not fit in %d vertices", n)
	}
	g := NewUndirected(n)
	// Background positive edges.
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Bool(0.2) {
				if err := g.SetEdge(u, v, 50+rng.Int64N(50)); err != nil {
					return nil, err
				}
			}
		}
	}
	perm := rng.Perm(n)
	idx := 0
	next := func() int { v := perm[idx]; idx++; return v }
	apex := make([]int, trianglesPerHub)
	for h := 0; h < hubs; h++ {
		a, b := next(), next()
		if err := g.SetEdge(a, b, -100); err != nil {
			return nil, err
		}
		for t := 0; t < trianglesPerHub; t++ {
			if h == 0 {
				apex[t] = next()
			}
			w := apex[t]
			if w == a || w == b {
				continue
			}
			if err := g.SetEdge(a, w, 10); err != nil {
				return nil, err
			}
			if err := g.SetEdge(b, w, 10); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}
