package graph

import "errors"

// ErrNegativeCycle is returned by shortest-path references when the input
// contains a cycle of negative total weight, for which APSP distances are
// undefined.
var ErrNegativeCycle = errors.New("graph: negative cycle")

// FloydWarshall computes all-pairs shortest distances of g by dynamic
// programming. It is the centralized correctness oracle for every
// distributed APSP pipeline in this repository. The returned matrix is
// row-major n×n with dist[i*n+j] = d(i,j), Inf when j is unreachable from i.
// If the graph contains a negative cycle it returns ErrNegativeCycle.
func FloydWarshall(g *Digraph) ([]int64, error) {
	n := g.N()
	dist := make([]int64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch {
			case i == j:
				dist[i*n+j] = 0
			default:
				if w, ok := g.Weight(i, j); ok {
					dist[i*n+j] = w
				} else {
					dist[i*n+j] = Inf
				}
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := dist[i*n+k]
			if dik >= Inf {
				continue
			}
			for j := 0; j < n; j++ {
				if alt := SaturatingAdd(dik, dist[k*n+j]); alt < dist[i*n+j] {
					dist[i*n+j] = alt
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		if dist[i*n+i] < 0 {
			return nil, ErrNegativeCycle
		}
	}
	return dist, nil
}

// BellmanFord computes single-source shortest distances from src. It
// returns ErrNegativeCycle if a negative cycle is reachable from src.
func BellmanFord(g *Digraph, src int) ([]int64, error) {
	n := g.N()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	for iter := 0; iter < n-1; iter++ {
		changed := false
		for u := 0; u < n; u++ {
			if dist[u] >= Inf {
				continue
			}
			for v := 0; v < n; v++ {
				w, ok := g.Weight(u, v)
				if !ok {
					continue
				}
				if alt := SaturatingAdd(dist[u], w); alt < dist[v] {
					dist[v] = alt
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	// One more relaxation pass detects reachable negative cycles.
	for u := 0; u < n; u++ {
		if dist[u] >= Inf {
			continue
		}
		for v := 0; v < n; v++ {
			w, ok := g.Weight(u, v)
			if !ok {
				continue
			}
			if SaturatingAdd(dist[u], w) < dist[v] {
				return nil, ErrNegativeCycle
			}
		}
	}
	return dist, nil
}

// HasNegativeCycle reports whether g contains a directed cycle of negative
// total weight.
func HasNegativeCycle(g *Digraph) bool {
	_, err := FloydWarshall(g)
	return errors.Is(err, ErrNegativeCycle)
}
