package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 1000
		counts := make([]int32, n)
		For(workers, n, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, c)
			}
		}
	}
}

func TestForEmptyAndSmall(t *testing.T) {
	ran := false
	For(4, 0, func(int) { ran = true })
	if ran {
		t.Error("For with n=0 ran the body")
	}
	For(4, 1, func(i int) {
		if i != 0 {
			t.Errorf("unexpected index %d", i)
		}
		ran = true
	})
	if !ran {
		t.Error("For with n=1 skipped the body")
	}
}

func TestForDeterministicMerge(t *testing.T) {
	// Results written to per-index slots must match the serial order
	// regardless of worker count.
	const n = 512
	want := make([]int, n)
	For(1, n, func(i int) { want[i] = i * i })
	got := make([]int, n)
	For(8, n, func(i int) { got[i] = i * i })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestForEachWorkerBounds(t *testing.T) {
	const n = 300
	const workers = 5
	var seen [workers]int32
	counts := make([]int32, n)
	ForEachWorker(workers, n, func(w, i int) {
		if w < 0 || w >= workers {
			t.Errorf("worker %d out of range", w)
		}
		atomic.AddInt32(&seen[w], 1)
		atomic.AddInt32(&counts[i], 1)
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d executed %d times", i, c)
		}
	}
}

func TestWorkersResolution(t *testing.T) {
	if Workers(3) != 3 {
		t.Error("explicit worker count not honored")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Error("defaulted worker count must be at least 1")
	}
}
