package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 1000
		counts := make([]int32, n)
		For(workers, n, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, c)
			}
		}
	}
}

func TestForEmptyAndSmall(t *testing.T) {
	ran := false
	For(4, 0, func(int) { ran = true })
	if ran {
		t.Error("For with n=0 ran the body")
	}
	For(4, 1, func(i int) {
		if i != 0 {
			t.Errorf("unexpected index %d", i)
		}
		ran = true
	})
	if !ran {
		t.Error("For with n=1 skipped the body")
	}
}

func TestForDeterministicMerge(t *testing.T) {
	// Results written to per-index slots must match the serial order
	// regardless of worker count.
	const n = 512
	want := make([]int, n)
	For(1, n, func(i int) { want[i] = i * i })
	got := make([]int, n)
	For(8, n, func(i int) { got[i] = i * i })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestForEachWorkerBounds(t *testing.T) {
	const n = 300
	const workers = 5
	var seen [workers]int32
	counts := make([]int32, n)
	ForEachWorker(workers, n, func(w, i int) {
		if w < 0 || w >= workers {
			t.Errorf("worker %d out of range", w)
		}
		atomic.AddInt32(&seen[w], 1)
		atomic.AddInt32(&counts[i], 1)
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d executed %d times", i, c)
		}
	}
}

func TestWorkersResolution(t *testing.T) {
	if Workers(3) != 3 {
		t.Error("explicit worker count not honored")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Error("defaulted worker count must be at least 1")
	}
}

func TestPooledMatchesSerialEveryWorkerCount(t *testing.T) {
	// The scheduler contract: for any worker count the merged per-slot
	// results are identical to a serial run. Exercised across sizes that
	// hit the chunk-boundary edge cases (n < workers, n not a multiple of
	// the chunk size, single chunk per executor).
	for _, n := range []int{1, 2, 3, 5, 16, 17, 100, 1023} {
		want := make([]int64, n)
		ForEachWorker(1, n, func(w, i int) { want[i] = int64(i)*7 + 1 })
		for workers := 2; workers <= 24; workers++ {
			got := make([]int64, n)
			ForEachWorker(workers, n, func(w, i int) { got[i] = int64(i)*7 + 1 })
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d workers=%d slot %d: got %d want %d", n, workers, i, got[i], want[i])
				}
			}
		}
	}
}

func TestPoolReuseAcrossDispatches(t *testing.T) {
	// Repeated dispatches must keep covering every index exactly once —
	// this exercises free-list recycling of parked workers.
	const n = 257
	counts := make([]int32, n)
	for round := 0; round < 50; round++ {
		for i := range counts {
			counts[i] = 0
		}
		ForEachWorker(6, n, func(w, i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("round %d: index %d executed %d times", round, i, c)
			}
		}
	}
}

func TestWorkerIDsDenseAndScratchSafe(t *testing.T) {
	// Executor ids must be dense in [0, W) so per-worker scratch arrays can
	// be indexed directly; each id must never run concurrently with itself
	// (exclusive scratch ownership). The unsynchronized per-worker counters
	// below turn any violation into a -race report.
	const n = 4096
	const workers = 8
	perWorker := make([]int, workers)
	ForEachWorker(workers, n, func(w, i int) {
		if w < 0 || w >= workers {
			t.Errorf("worker id %d out of [0,%d)", w, workers)
		}
		perWorker[w]++
	})
	total := 0
	for _, c := range perWorker {
		total += c
	}
	if total != n {
		t.Fatalf("executed %d indices, want %d", total, n)
	}
}

func TestNestedDispatch(t *testing.T) {
	// An fn body may itself fan out (e.g. a per-node phase that calls a
	// parallel kernel). The pool must not deadlock or double-run indices.
	const outer, inner = 4, 64
	var counts [outer][inner]int32
	ForEachWorker(3, outer, func(_, o int) {
		ForEachWorker(3, inner, func(_, i int) {
			atomic.AddInt32(&counts[o][i], 1)
		})
	})
	for o := 0; o < outer; o++ {
		for i := 0; i < inner; i++ {
			if counts[o][i] != 1 {
				t.Fatalf("outer %d inner %d executed %d times", o, i, counts[o][i])
			}
		}
	}
}
