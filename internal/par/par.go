// Package par provides the bounded worker pool used to parallelize the
// simulator's per-node local phases (oracle evaluation, Grover state-vector
// updates, local min-plus work). A CONGEST-CLIQUE round interleaves
// communication (charged to the network) with node-local computation that
// is embarrassingly parallel across nodes; this package exploits that on
// the host without perturbing determinism: every index is processed exactly
// once, callers write results into per-index slots, and all protocol
// randomness is drawn from pre-derived per-index xrand streams, so the
// merged outcome is independent of scheduling.
//
// Execution uses a persistent, lazily-started pool: worker goroutines are
// spawned on first parallel dispatch, park on their own channel between
// jobs, and are reused through a free list, so steady-state dispatch costs
// one channel send per helper instead of a goroutine spawn. Work is claimed
// as contiguous index chunks via a single atomic per chunk (not per index),
// which keeps cache lines local to one executor and gives each executor a
// stable identifier for scratch affinity.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values <= 0 select
// runtime.GOMAXPROCS(0), anything else is returned as-is.
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// Grow returns a slice of exactly n entries with unspecified contents,
// reusing buf's backing array when it is large enough and allocating
// otherwise. It is the shared grow-or-reuse primitive of the scratch
// workspaces; callers must fully initialize (or mask) the entries they
// read, which is what keeps pooled and fresh runs identical.
func Grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// chunksPerWorker oversubscribes the chunk count relative to the executor
// count so uneven per-index costs still balance, while keeping the number
// of atomic claims far below one-per-index.
const chunksPerWorker = 4

// job is one executor's share of a ForEachWorker dispatch. All executors
// of a dispatch share the chunk counter; each carries its own worker id.
type job struct {
	fn        func(worker, i int)
	next      *atomic.Int64
	chunkSize int
	n         int
	worker    int
	wg        *sync.WaitGroup
}

// poolWorker is a parked goroutine with a private job channel. Workers are
// created lazily, never exit, and return themselves to the free list after
// each job.
type poolWorker struct {
	jobs chan job
}

var pool struct {
	mu   sync.Mutex
	free []*poolWorker
}

func getWorker() *poolWorker {
	pool.mu.Lock()
	if k := len(pool.free); k > 0 {
		w := pool.free[k-1]
		pool.free[k-1] = nil
		pool.free = pool.free[:k-1]
		pool.mu.Unlock()
		return w
	}
	pool.mu.Unlock()
	w := &poolWorker{jobs: make(chan job, 1)}
	go w.loop()
	return w
}

func (w *poolWorker) loop() {
	for j := range w.jobs {
		runChunks(j.fn, j.worker, j.next, j.chunkSize, j.n)
		j.wg.Done()
		pool.mu.Lock()
		pool.free = append(pool.free, w)
		pool.mu.Unlock()
	}
}

// runChunks claims contiguous [lo, hi) index ranges until the shared
// counter is exhausted. Indices within a chunk run in order; which executor
// runs which chunk is scheduling-dependent, which is fine because callers
// write results into per-index slots only.
func runChunks(fn func(worker, i int), worker int, next *atomic.Int64, chunkSize, n int) {
	for {
		lo := int(next.Add(1)-1) * chunkSize
		if lo >= n {
			return
		}
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			fn(worker, i)
		}
	}
}

// For runs fn(i) for every i in [0, n), using at most workers executors.
// With workers <= 1 (or n <= 1) it runs inline on the calling goroutine —
// the serial fast path costs no synchronization, so GOMAXPROCS=1 hosts pay
// nothing for the parallel plumbing. fn must not depend on execution order
// across indices; determinism comes from writing results into slot i only.
func For(workers, n int, fn func(i int)) {
	ForEachWorker(workers, n, func(_, i int) { fn(i) })
}

// ForEachWorker runs fn(worker, i) like For but also identifies the
// executor slot running each index, so callers can reuse per-worker scratch
// buffers (amplitude vectors, row accumulators) without locking. Executor
// identifiers are dense in [0, workers) after resolution; the calling
// goroutine always acts as executor 0 (the inline fast path therefore
// reports worker 0), and the remaining executors are pool goroutines.
func ForEachWorker(workers, n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	chunkSize := n / (workers * chunksPerWorker)
	if chunkSize < 1 {
		chunkSize = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		pw := getWorker()
		pw.jobs <- job{fn: fn, next: &next, chunkSize: chunkSize, n: n, worker: w, wg: &wg}
	}
	runChunks(fn, 0, &next, chunkSize, n)
	wg.Wait()
}
