// Package par provides the bounded worker pool used to parallelize the
// simulator's per-node local phases (oracle evaluation, Grover state-vector
// updates, local min-plus work). A CONGEST-CLIQUE round interleaves
// communication (charged to the network) with node-local computation that
// is embarrassingly parallel across nodes; this package exploits that on
// the host without perturbing determinism: every index is processed exactly
// once, callers write results into per-index slots, and all protocol
// randomness is drawn from pre-derived per-index xrand streams, so the
// merged outcome is independent of scheduling.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values <= 0 select
// runtime.GOMAXPROCS(0), anything else is returned as-is.
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// Grow returns a slice of exactly n entries with unspecified contents,
// reusing buf's backing array when it is large enough and allocating
// otherwise. It is the shared grow-or-reuse primitive of the scratch
// workspaces; callers must fully initialize (or mask) the entries they
// read, which is what keeps pooled and fresh runs identical.
func Grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// For runs fn(i) for every i in [0, n), using at most workers goroutines.
// With workers <= 1 (or n <= 1) it runs inline on the calling goroutine —
// the serial fast path costs no synchronization, so GOMAXPROCS=1 hosts pay
// nothing for the parallel plumbing. fn must not depend on execution order
// across indices; determinism comes from writing results into slot i only.
func For(workers, n int, fn func(i int)) {
	ForEachWorker(workers, n, func(_, i int) { fn(i) })
}

// ForEachWorker runs fn(worker, i) like For but also identifies the worker
// slot executing each index, so callers can reuse per-worker scratch
// buffers (amplitude vectors, row accumulators) without locking. Worker
// identifiers are in [0, workers) after resolution; the inline fast path
// always reports worker 0.
func ForEachWorker(workers, n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
}
