package approx

// The approximate pipelines as engine strategies. Both register themselves
// with the engine's strategy registry at init (this package is imported by
// core, so registration precedes any registry consumer), and both reuse
// the exact same run structs as the standalone Chain/Skeleton entry points
// — staging changes where the checkpoints and telemetry boundaries sit,
// not a single network charge.

import (
	"context"
	"fmt"
	"math"
	"time"

	"qclique/internal/congest"
	"qclique/internal/distprod"
	"qclique/internal/engine"
	"qclique/internal/graph"
	"qclique/internal/matrix"
)

// Stage-retry budgets for unrecovered injected faults, mirroring the exact
// pipelines' scale: the chain shares the search pipelines' budget, the
// skeleton's four lighter phases get a middle budget.
var (
	chainRetry    = engine.RetryPolicy{MaxRetries: 4, Backoff: 250 * time.Microsecond}
	skeletonRetry = engine.RetryPolicy{MaxRetries: 3, Backoff: 250 * time.Microsecond}
)

func init() {
	engine.Register(chainStrategy{})
	engine.Register(skeletonStrategy{}, "skeleton")
}

// chainStrategy is the (1+ε)-approximate quantum squaring chain.
type chainStrategy struct{}

func (chainStrategy) Name() string                  { return "approx-quantum" }
func (chainStrategy) Approximate() bool             { return true }
func (chainStrategy) Guarantee(eps float64) float64 { return 1 + eps }

// Cost anchors: measured at n=64, ε=0.5 under the scaled preset
// (BENCH_1.json E4APSPApproxQuantum / E4APSPApproxSkeleton) — coarse
// power-law priors the serving layer's planner corrects with live
// telemetry.
var (
	chainAnchor    = engine.CostPrior{Rounds: 291_589, WallNs: 2_520_000_000}
	skeletonAnchor = engine.CostPrior{Rounds: 521, WallNs: 12_600_000}
)

// ladderScale stretches an anchor measured at ε=0.5 to the requested
// budget: the geometric value ladder's length (and with it every
// per-product search depth) grows with log(1+1/ε). Invalid budgets leave
// the anchor untouched — the planner only asks about epsilons it would
// actually run.
func ladderScale(p engine.CostPrior, eps float64) engine.CostPrior {
	if !ValidEpsilon(eps) || eps == 0.5 {
		return p
	}
	factor := math.Log1p(1/eps) / math.Log1p(2)
	p.Rounds = int64(float64(p.Rounds) * factor)
	p.WallNs = int64(float64(p.WallNs) * factor)
	if p.Rounds < 1 {
		p.Rounds = 1
	}
	if p.WallNs < 1 {
		p.WallNs = 1
	}
	return p
}

func (chainStrategy) Capabilities() engine.Capabilities {
	return engine.Capabilities{
		Approximate:     true,
		RejectsNegative: true,
		MinEpsilon:      MinEpsilon,
		MaxEpsilon:      MaxEpsilon,
	}
}

func (chainStrategy) PredictCost(f graph.Features, eps float64) engine.CostPrior {
	return ladderScale(chainAnchor.ScaleFrom(64, f.N, 1.0, 2.6), eps)
}

func (chainStrategy) Stages(req *engine.Request, out *engine.Outcome) (*engine.Plan, error) {
	if req.G.HasNegativeArc() {
		return nil, ErrNegativeWeight
	}
	n := req.G.N()
	// Same 3n-clique reduction substrate as the exact quantum pipeline;
	// only the per-product search is ladder-indexed.
	net, err := congest.NewNetwork(3*n, congest.WithTraceLimit(4096), congest.WithFaults(req.Faults),
		congest.WithTransport(req.Transport), congest.WithTransportShards(req.Workers))
	if err != nil {
		return nil, err
	}
	var run *chainRun
	stages := []engine.Stage{
		{Name: "encode", Run: func(context.Context) error {
			r, err := newChainRun(matrix.FromDigraph(req.G), ChainOptions{
				Epsilon: req.Epsilon,
				Solver:  distprod.SolverQuantum,
				Params:  req.Params,
				Seed:    req.Seed,
				Net:     net,
				Workers: req.Workers,
				DP:      req.DP,
				MX:      req.MX,
			})
			if err != nil {
				return err
			}
			run = r
			return nil
		}},
		{Name: "ladder", Run: func(context.Context) error { return run.prepare() }},
	}
	for i := 0; i < matrix.SquaringBudget(n); i++ {
		stages = append(stages, engine.Stage{
			Name: fmt.Sprintf("square-%d", i+1),
			Run:  func(ctx context.Context) error { return run.square(ctx) },
			// A fixpoint vote that proves convergence skips the remaining
			// products of the budget.
			Skip: func() bool { return run.done },
		})
	}
	stages = append(stages,
		engine.Stage{Name: "stretch-audit", Run: func(ctx context.Context) error {
			// Audit against the still-owned buffer and detach it only on
			// success: if the audit fails, the abort path's release() can
			// return the matrix to the pooled workspace.
			stretch, err := MeasureStretch(req.G, run.cur)
			if err != nil {
				return err
			}
			out.Dist = run.result()
			out.Products = run.stats.Products
			out.FindEdgesCalls = run.stats.FindEdgesCalls
			out.ObservedStretch = stretch
			return nil
		}},
	)
	return &engine.Plan{Net: net, Stages: stages, Retry: chainRetry, Cleanup: func() {
		if run != nil {
			run.release()
		}
	}}, nil
}

// skeletonStrategy is the (2+ε) skeleton pipeline for weight-symmetric
// nonnegative graphs.
type skeletonStrategy struct{}

func (skeletonStrategy) Name() string                  { return "approx-skeleton" }
func (skeletonStrategy) Approximate() bool             { return true }
func (skeletonStrategy) Guarantee(eps float64) float64 { return 2 + eps }

func (skeletonStrategy) Capabilities() engine.Capabilities {
	return engine.Capabilities{
		Approximate:     true,
		RejectsNegative: true,
		NeedsSymmetric:  true,
		MinEpsilon:      MinEpsilon,
		MaxEpsilon:      MaxEpsilon,
	}
}

func (skeletonStrategy) PredictCost(f graph.Features, eps float64) engine.CostPrior {
	return ladderScale(skeletonAnchor.ScaleFrom(64, f.N, 0.6, 2.6), eps)
}

func (skeletonStrategy) Stages(req *engine.Request, out *engine.Outcome) (*engine.Plan, error) {
	net, err := congest.NewNetwork(req.G.N(), congest.WithFaults(req.Faults),
		congest.WithTransport(req.Transport), congest.WithTransportShards(req.Workers))
	if err != nil {
		return nil, err
	}
	opts := SkeletonOptions{Epsilon: req.Epsilon, Seed: req.Seed, Net: net}
	run, err := newSkeletonRun(req.G, opts)
	if err != nil {
		return nil, err
	}
	skipPhases := func() bool { return run.trivial() }
	return &engine.Plan{Net: net, Retry: skeletonRetry, Stages: []engine.Stage{
		{Name: "knn-balls", Run: run.knnBalls, Skip: skipPhases},
		{Name: "skeleton-sample", Run: run.sampleSkeleton, Skip: skipPhases},
		{Name: "mssp-ladder", Run: run.mssp, Skip: skipPhases},
		{Name: "combine", Run: run.combine, Skip: skipPhases},
		{Name: "stretch-audit", Run: func(context.Context) error {
			out.Dist = run.dist
			stretch, err := MeasureStretch(req.G, run.dist)
			if err != nil {
				return err
			}
			out.ObservedStretch = stretch
			return nil
		}},
	}}, nil
}
