// Package approx implements the approximate-APSP frontier on top of the
// exact pipelines: the related work (Censor-Hillel–Dory–Korhonen–
// Leitersdorf, "Fast Approximate Shortest Paths in the Congested Clique",
// arXiv:1903.05956; Dory–Parter, arXiv:2003.03058) shows that relaxing
// exactness buys order-of-magnitude round savings. Two strategies live
// here:
//
//   - Chain: a (1+ε)-approximate repeated-squaring chain. Each distance
//     product snaps its outputs up onto a geometric value ladder, so the
//     Proposition 2 binary search ranges over ladder indices — depth
//     ⌈log₂(ladder length)⌉ instead of ⌈log₂(4M+2)⌉ — cutting the
//     FindEdges call count (and hence rounds) of every product in the
//     chain. Errors compound multiplicatively: a per-product step of
//     (1+ε)^(1/P) over P products stays within the requested 1+ε.
//
//   - Skeleton: a (2+ε) strategy in the spirit of arXiv:1903.05956 for
//     weight-symmetric graphs: exact k-nearest neighborhoods computed
//     locally, a sampled skeleton whose multi-source distances are solved
//     on the (1+ε/2) ladder, and per-pair estimates combined through
//     skeleton hubs and k-nearest straddle edges.
//
// Both strategies require nonnegative weights — multiplicative stretch is
// meaningless otherwise — and report the measured max stretch against the
// centralized Floyd–Warshall reference next to the guarantee.
package approx

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"qclique/internal/graph"
	"qclique/internal/matrix"
)

// ErrNegativeWeight is returned when an approximate strategy is handed a
// graph with negative arc weights.
var ErrNegativeWeight = errors.New("approx: approximate strategies require nonnegative weights")

// ErrAsymmetric is returned by the skeleton strategy for inputs that are
// not weight-symmetric (its 2+ε analysis is an undirected-graph argument).
var ErrAsymmetric = errors.New("approx: skeleton strategy requires a weight-symmetric graph")

// ErrBadEpsilon is returned when Epsilon is outside [MinEpsilon,
// MaxEpsilon].
var ErrBadEpsilon = errors.New("approx: epsilon must be in [1e-3, 1e3]")

// Epsilon domain. The lower bound is a denial-of-service guard as much as
// a numerical one: the ladder has ~ln(bound)/ε candidates (every integer
// below 1/ε is on it), so an adversarial epsilon like 1e-18 would spin
// Ladder for unbounded CPU and memory — and a guarantee below 1.001 is
// the exact strategy's job anyway. The upper bound keeps the chain's
// weight-bound arithmetic overflow-free; a guaranteed stretch above 1001
// is not a useful contract. The serving layer validates requests against
// this domain before any work runs.
const (
	MinEpsilon = 1e-3
	MaxEpsilon = 1e3
)

// ValidEpsilon reports whether eps is inside the supported domain.
func ValidEpsilon(eps float64) bool {
	return eps >= MinEpsilon && eps <= MaxEpsilon
}

// Ladder returns the sorted distinct candidate values
// {0} ∪ {⌊(1+eps)^t⌋ : t ≥ 0}, extended until the last value is >= bound.
// Consecutive distinct ladder values v < v' satisfy v' < (1+eps)·(v+1), so
// snapping any value x up to the ladder inflates it by a factor strictly
// below 1+eps (and 0 and all small integers are represented exactly).
// maxLadderLen caps the candidate count: inside the public epsilon domain
// real ladders stay well below it (≤ ~1M even at MinEpsilon split across
// a deep chain and a sentinel-range weight bound), so hitting the cap
// means a caller bypassed validation — fail loudly instead of allocating
// without bound.
const maxLadderLen = 1 << 21

// Ladder accepts step values below MinEpsilon because the chain splits
// its budget ε across P products (ε/P-sized steps); the public domain is
// enforced on ε itself by the strategies, and the growth-advance and
// length guards here keep even a bypassed call from spinning or
// allocating forever.
func Ladder(eps float64, bound int64) ([]int64, error) {
	if math.IsNaN(eps) || eps <= 0 || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("%w (got %v)", ErrBadEpsilon, eps)
	}
	if bound < 0 {
		return nil, fmt.Errorf("approx: negative ladder bound %d", bound)
	}
	// The loop below runs ~ln(bound)/ln(1+eps) times regardless of how
	// many candidates it keeps, so bound the work up front: inside the
	// public epsilon domain the estimate stays under ~1M even for
	// sentinel-range bounds, so hitting this cap means a caller bypassed
	// validation.
	if est := math.Log(float64(bound)+2) / math.Log1p(eps); est > maxLadderLen {
		return nil, fmt.Errorf("%w: ladder for bound %d would take ~%.0f growth steps", ErrBadEpsilon, bound, est)
	}
	ladder := []int64{0}
	x := 1.0
	last := int64(0)
	for last < bound {
		v := int64(math.Floor(x))
		if v > last {
			ladder = append(ladder, v)
			if len(ladder) > maxLadderLen {
				return nil, fmt.Errorf("%w: ladder for bound %d exceeds %d candidates", ErrBadEpsilon, bound, maxLadderLen)
			}
			last = v
			if last >= bound {
				// Covered — stop before advancing x, whose next growth
				// step may spuriously trip the overflow guard for legal
				// bounds near the weight-domain ceiling.
				break
			}
		}
		next := x * (1 + eps)
		if next <= x {
			// Epsilon too small for float64 growth — a hard stop beats an
			// infinite loop.
			return nil, fmt.Errorf("%w: growth factor does not advance at %v", ErrBadEpsilon, x)
		}
		x = next
		// Candidates must stay strictly below the Inf sentinel (a ladder
		// value equal to Inf would collide with "no path").
		if x >= float64(graph.Inf) {
			return nil, fmt.Errorf("approx: ladder bound %d overflows the weight domain", bound)
		}
	}
	return ladder, nil
}

// SnapUp returns the smallest ladder value >= v. It panics if v is
// negative or exceeds the ladder top (programming error: ladders are built
// to cover their workload).
func SnapUp(v int64, ladder []int64) int64 {
	if v < 0 || len(ladder) == 0 || v > ladder[len(ladder)-1] {
		panic(fmt.Sprintf("approx: SnapUp(%d) outside ladder", v))
	}
	return ladder[sort.Search(len(ladder), func(i int) bool { return ladder[i] >= v })]
}

// MeasureStretch compares an approximate distance matrix against the
// centralized Floyd–Warshall reference for g and returns the maximum
// multiplicative stretch over all pairs. Reachability must agree exactly,
// zero distances must be answered exactly, and no entry may undercut the
// true distance — any of those is an algorithmic bug, reported as an
// error rather than folded into the ratio.
func MeasureStretch(g *graph.Digraph, dist *matrix.Matrix) (float64, error) {
	n := g.N()
	if dist.N() != n {
		return 0, fmt.Errorf("approx: distance matrix is %d×%d for an n=%d graph", dist.N(), dist.N(), n)
	}
	exact, err := graph.FloydWarshall(g)
	if err != nil {
		return 0, fmt.Errorf("approx: reference solve: %w", err)
	}
	maxStretch := 1.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := exact[i*n+j]
			got := dist.At(i, j)
			switch {
			case want >= graph.Inf:
				if got < graph.Inf {
					return 0, fmt.Errorf("approx: pair (%d,%d) unreachable but estimated %d", i, j, got)
				}
			case want == 0:
				if got != 0 {
					return 0, fmt.Errorf("approx: pair (%d,%d) has distance 0 but estimate %d", i, j, got)
				}
			default:
				if got >= graph.Inf {
					return 0, fmt.Errorf("approx: pair (%d,%d) reachable (exact %d) but estimated unreachable", i, j, want)
				}
				if got < want {
					return 0, fmt.Errorf("approx: pair (%d,%d) estimate %d undercuts exact %d", i, j, got, want)
				}
				if r := float64(got) / float64(want); r > maxStretch {
					maxStretch = r
				}
			}
		}
	}
	return maxStretch, nil
}
