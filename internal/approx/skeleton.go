package approx

// The (2+ε) skeleton strategy, in the spirit of Censor-Hillel–Dory–
// Korhonen–Leitersdorf (arXiv:1903.05956): every node computes its k
// nearest neighbors exactly, a random skeleton that hits every k-nearest
// ball is sampled (and deterministically patched so the hitting property
// is unconditional, not whp), multi-source distances from the skeleton are
// solved on the (1+ε/2) value ladder, and each pair (u,v) takes the best
// of (a) a k-nearest "straddle" path u → w → w' → v where w,w' are
// adjacent and see u resp. v in their k-nearest balls, and (b) a two-leg
// route through a skeleton hub.
//
// Stretch argument (weight-symmetric, nonnegative weights; D = d(u,v)):
// pick m, the last node on a shortest u–v path with d(u,m) ≤ D/2, and its
// successor m' (so d(m',v) < D/2). If u ∈ N_k(m) and v ∈ N_k(m'), the
// straddle term through the arc (m,m') is exactly D. Otherwise one of the
// two balls has radius ≤ D/2 (it excludes a node at distance ≤ D/2), so it
// contains a skeleton node s with d(·,s) ≤ D/2 and the hub term is at most
// (1+ε/2)·(2·d(·,s) + D) ≤ (2+ε)·D. All terms are genuine walk lengths,
// so estimates never undercut D and reachability is preserved exactly.
//
// Round accounting follows the phases the simulation actually performs on
// an n-node clique: k-nearest lists (2k words per node) are re-broadcast
// once per relaxation hop, skeleton membership costs one broadcast word,
// and the multi-source phase broadcasts |S| tentative distances per node
// per hop. The hop counts are the true shortest-path-tree depths of the
// run, measured centrally.
//
// The strategy is factored into a skeletonRun whose phase methods
// (knnBalls, sampleSkeleton, mssp, combine) back both the standalone
// Skeleton entry point and the staged engine pipeline — one
// implementation, one round trajectory. Phase methods take a context and
// checkpoint their per-node loops, so a solve under a deadline stops
// between Dijkstra runs rather than after the full phase.

import (
	"context"
	"fmt"
	"math"

	"qclique/internal/congest"
	"qclique/internal/graph"
	"qclique/internal/matrix"
	"qclique/internal/xrand"
)

// SkeletonOptions configures the (2+ε) skeleton strategy.
type SkeletonOptions struct {
	// Epsilon is the slack over the factor-2 guarantee (> 0).
	Epsilon float64
	// Seed drives the skeleton sampling.
	Seed uint64
	// Net is the n-node network the phases charge against (required).
	Net *congest.Network
	// K overrides the k-nearest ball size; <= 0 selects ⌈√(n·(1+log₂ n))⌉.
	K int
}

// SkeletonStats reports what a skeleton run did.
type SkeletonStats struct {
	// K is the k-nearest ball size used.
	K int
	// SkeletonSize is |S| after sampling and patching.
	SkeletonSize int
	// Patched counts nodes added to S because sampling missed their ball.
	Patched int
	// KNNHops and MSSPHops are the shortest-path-tree depths that set the
	// iteration counts of the two communication phases.
	KNNHops, MSSPHops int
}

// knnEntry is one member of a k-nearest ball: vertex and exact distance.
type knnEntry struct {
	v int
	d int64
}

// skeletonRun is the mutable state of one (2+ε) skeleton solve, shared by
// its phase methods.
type skeletonRun struct {
	g     *graph.Digraph
	opts  SkeletonOptions
	n     int
	k     int
	stats *SkeletonStats
	dist  *matrix.Matrix

	balls    [][]knnEntry
	skeleton []int
	hub      [][]int64
}

// newSkeletonRun validates the input and sizes the ball parameter.
func newSkeletonRun(g *graph.Digraph, opts SkeletonOptions) (*skeletonRun, error) {
	if !ValidEpsilon(opts.Epsilon) {
		return nil, fmt.Errorf("%w (got %v)", ErrBadEpsilon, opts.Epsilon)
	}
	if opts.Net == nil {
		return nil, fmt.Errorf("approx: Skeleton requires a network")
	}
	if g.HasNegativeArc() {
		return nil, ErrNegativeWeight
	}
	if !g.IsSymmetric() {
		return nil, ErrAsymmetric
	}
	n := g.N()
	r := &skeletonRun{g: g, opts: opts, n: n, stats: &SkeletonStats{}, dist: matrix.New(n)}
	for i := 0; i < n; i++ {
		r.dist.Set(i, i, 0)
	}
	if n <= 1 {
		return r, nil
	}
	k := opts.K
	if k <= 0 {
		k = int(math.Ceil(math.Sqrt(float64(n) * (1 + math.Log2(float64(n))))))
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	r.k = k
	r.stats.K = k
	return r, nil
}

// trivial reports that the instance needs no phases (n ≤ 1).
func (r *skeletonRun) trivial() bool { return r.n <= 1 }

// knnBalls is phase 1: exact k-nearest balls (self included at distance
// 0), via per-node truncated Dijkstra; ties break toward the smaller
// vertex id so the ball is deterministic. The hop depth of the deepest
// ball sets the relaxation-iteration count the phase is charged for.
func (r *skeletonRun) knnBalls(ctx context.Context) error {
	// Re-entrant under stage retry: rebuild the balls and the hop depth from
	// scratch so a re-run after an injected fault converges to the same state.
	r.balls = make([][]knnEntry, r.n)
	r.stats.KNNHops = 0
	for u := 0; u < r.n; u++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		ball, hops := truncatedDijkstra(r.g, u, r.k, nil)
		r.balls[u] = ball
		if hops > r.stats.KNNHops {
			r.stats.KNNHops = hops
		}
	}
	for i := 0; i < r.stats.KNNHops; i++ {
		if err := r.opts.Net.BroadcastAll("approx/knn", 2*int64(r.k)); err != nil {
			return err
		}
	}
	return nil
}

// sampleSkeleton is phase 2: skeleton sampling with deterministic
// patching — every ball must contain a skeleton node for the stretch
// argument to hold unconditionally, so nodes whose ball the sample missed
// join S themselves. Membership is announced with one broadcast word.
func (r *skeletonRun) sampleSkeleton(context.Context) error {
	// Re-entrant under stage retry: the sample is a pure function of the
	// seed, so resetting the outputs makes a re-run bit-identical.
	r.skeleton = r.skeleton[:0]
	r.stats.Patched = 0
	r.stats.SkeletonSize = 0
	rng := xrand.New(r.opts.Seed).Split("skeleton")
	p := math.Min(1, 2*(math.Log(float64(r.n))+1)/float64(r.k))
	inS := make([]bool, r.n)
	for u := 0; u < r.n; u++ {
		if rng.Bool(p) {
			inS[u] = true
		}
	}
	for u := 0; u < r.n; u++ {
		hit := false
		for _, e := range r.balls[u] {
			if inS[e.v] {
				hit = true
				break
			}
		}
		if !hit {
			inS[u] = true
			r.stats.Patched++
		}
	}
	for u := 0; u < r.n; u++ {
		if inS[u] {
			r.skeleton = append(r.skeleton, u)
		}
	}
	r.stats.SkeletonSize = len(r.skeleton)
	return r.opts.Net.BroadcastAll("approx/skeleton", 1)
}

// mssp is phase 3: multi-source distances from the skeleton on the
// (1+ε/2) ladder — the simulated stand-in for the approximate multi-source
// machinery of arXiv:1903.05956, and the place the ε knob bites.
func (r *skeletonRun) mssp(ctx context.Context) error {
	w := r.g.MaxAbsWeight()
	ladder, err := Ladder(r.opts.Epsilon/2, w)
	if err != nil {
		return err
	}
	snapped := func(u, v int) (int64, bool) {
		wt, ok := r.g.Weight(u, v)
		if !ok {
			return 0, false
		}
		return SnapUp(wt, ladder), true
	}
	r.hub = make([][]int64, len(r.skeleton))
	r.stats.MSSPHops = 0
	for si, s := range r.skeleton {
		if err := ctx.Err(); err != nil {
			return err
		}
		row, hops := fullDijkstra(r.g, s, snapped)
		r.hub[si] = row
		if hops > r.stats.MSSPHops {
			r.stats.MSSPHops = hops
		}
	}
	for i := 0; i < r.stats.MSSPHops; i++ {
		if err := r.opts.Net.BroadcastAll("approx/mssp", int64(len(r.skeleton))); err != nil {
			return err
		}
	}
	return nil
}

// combine is phase 4 (local): through-ball terms u → w → v, straddle
// terms u → w → w' → v over every arc (w,w'), and skeleton-hub terms
// u → s → v. Every term is a genuine walk length, so the minimum never
// undercuts the true distance.
func (r *skeletonRun) combine(ctx context.Context) error {
	relax := func(u, v int, cand int64) {
		if cand < r.dist.At(u, v) {
			r.dist.Set(u, v, cand)
		}
	}
	for w := 0; w < r.n; w++ {
		for _, eu := range r.balls[w] {
			for _, ev := range r.balls[w] {
				relax(eu.v, ev.v, graph.SaturatingAdd(eu.d, ev.d))
			}
		}
	}
	for w := 0; w < r.n; w++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		for wp := 0; wp < r.n; wp++ {
			wt, ok := r.g.Weight(w, wp)
			if !ok {
				continue
			}
			for _, eu := range r.balls[w] {
				leg := graph.SaturatingAdd(eu.d, wt)
				for _, ev := range r.balls[wp] {
					relax(eu.v, ev.v, graph.SaturatingAdd(leg, ev.d))
				}
			}
		}
	}
	for si := range r.skeleton {
		row := r.hub[si]
		for u := 0; u < r.n; u++ {
			if row[u] >= graph.Inf {
				continue
			}
			for v := 0; v < r.n; v++ {
				relax(u, v, graph.SaturatingAdd(row[u], row[v]))
			}
		}
	}
	return nil
}

// Skeleton computes (2+ε)-approximate APSP distances for the
// weight-symmetric nonnegative digraph g: every returned entry d̂
// satisfies d ≤ d̂ ≤ (2+ε)·d, with reachability preserved exactly.
func Skeleton(g *graph.Digraph, opts SkeletonOptions) (*matrix.Matrix, *SkeletonStats, error) {
	r, err := newSkeletonRun(g, opts)
	if err != nil {
		return nil, nil, err
	}
	if r.trivial() {
		return r.dist, r.stats, nil
	}
	ctx := context.Background()
	for _, phase := range []func(context.Context) error{r.knnBalls, r.sampleSkeleton, r.mssp, r.combine} {
		if err := phase(ctx); err != nil {
			return nil, nil, err
		}
	}
	return r.dist, r.stats, nil
}

// truncatedDijkstra returns the k nearest vertices to src (src included at
// distance 0, ties broken toward smaller ids) with exact distances under
// the optional weight override, plus the hop depth of the resulting tree.
func truncatedDijkstra(g *graph.Digraph, src, k int, weight func(u, v int) (int64, bool)) ([]knnEntry, int) {
	if weight == nil {
		weight = g.Weight
	}
	n := g.N()
	d := make([]int64, n)
	hops := make([]int, n)
	done := make([]bool, n)
	for i := range d {
		d[i] = graph.Inf
	}
	d[src] = 0
	out := make([]knnEntry, 0, k)
	maxHops := 0
	for len(out) < k {
		u, best := -1, graph.Inf
		for v := 0; v < n; v++ {
			if !done[v] && d[v] < best {
				u, best = v, d[v]
			}
		}
		if u == -1 {
			break // fewer than k reachable vertices
		}
		done[u] = true
		out = append(out, knnEntry{v: u, d: d[u]})
		if hops[u] > maxHops {
			maxHops = hops[u]
		}
		for v := 0; v < n; v++ {
			w, ok := weight(u, v)
			if !ok || done[v] {
				continue
			}
			if alt := graph.SaturatingAdd(d[u], w); alt < d[v] {
				d[v] = alt
				hops[v] = hops[u] + 1
			}
		}
	}
	return out, maxHops
}

// fullDijkstra returns exact single-source distances from src under the
// weight override, plus the hop depth of the shortest-path tree.
func fullDijkstra(g *graph.Digraph, src int, weight func(u, v int) (int64, bool)) ([]int64, int) {
	entries, maxHops := truncatedDijkstra(g, src, g.N(), weight)
	row := make([]int64, g.N())
	for i := range row {
		row[i] = graph.Inf
	}
	for _, e := range entries {
		row[e.v] = e.d
	}
	return row, maxHops
}
