package approx

// The (1+ε)-approximate squaring chain: the exact Theorem 1 pipeline with
// every distance product snapped onto a geometric value ladder. The chain
// performs P = ⌈log₂ n⌉ products; each inflates entries by a factor below
// 1+εstep (ladder snap-up), so choosing εstep = (1+ε)^(1/P) − 1 keeps the
// compounded stretch within the requested 1+ε. The payoff is the search
// depth: each product spends ⌈log₂ |ladder ∩ [0,M]|⌉+1 FindEdges calls
// instead of ⌈log₂(4M+2)⌉+1, and FindEdges calls are where the rounds go.

import (
	"fmt"
	"math"

	"qclique/internal/congest"
	"qclique/internal/distprod"
	"qclique/internal/graph"
	"qclique/internal/matrix"
	"qclique/internal/triangles"
	"qclique/internal/xrand"
)

// ChainOptions configures the (1+ε)-approximate squaring chain.
type ChainOptions struct {
	// Epsilon is the end-to-end multiplicative stretch budget (> 0).
	Epsilon float64
	// Solver selects the FindEdges implementation (zero value: quantum).
	Solver distprod.Solver
	// Params forwards protocol constants (nil = paper constants).
	Params *triangles.Params
	// Seed drives protocol randomness.
	Seed uint64
	// Net is the 3n-node network the products charge against (required).
	Net *congest.Network
	// Workers bounds host-side parallelism of node-local phases.
	Workers int
	// DP and MX optionally supply the reusable product and squaring-chain
	// workspaces (same contract as the exact pipeline).
	DP *distprod.Workspace
	// MX is the matrix freelist the squaring chain ping-pongs through.
	MX *matrix.Workspace
}

// ChainStats reports what a chain run did.
type ChainStats struct {
	// Products is the number of ladder-snapped distance products performed
	// (the fixpoint vote may stop the chain before the ⌈log₂ n⌉ budget).
	Products int
	// FindEdgesCalls is the total FindEdges invocations across products.
	FindEdgesCalls int
	// EpsilonStep is the per-product stretch budget (1+ε)^(1/P) − 1.
	EpsilonStep float64
	// LadderLen is the number of candidate values in the shared ladder.
	LadderLen int
	// ConvergedEarly reports that a squaring returned its input unchanged
	// and the remaining products were skipped.
	ConvergedEarly bool
}

// Chain computes (1+ε)-approximate APSP distances for the adjacency matrix
// ag (0 diagonal, nonnegative finite weights, +Inf for absent arcs): every
// returned entry d̂ satisfies d ≤ d̂ ≤ (1+ε)·d against the exact distance
// d, with reachability preserved exactly. The caller validates
// nonnegativity at the graph level; −Inf or negative entries fail inside
// the product.
func Chain(ag *matrix.Matrix, opts ChainOptions) (*matrix.Matrix, *ChainStats, error) {
	n := ag.N()
	if !ValidEpsilon(opts.Epsilon) {
		return nil, nil, fmt.Errorf("%w (got %v)", ErrBadEpsilon, opts.Epsilon)
	}
	if opts.Net == nil {
		return nil, nil, fmt.Errorf("approx: Chain requires a network")
	}
	stats := &ChainStats{}
	mx := opts.MX
	if mx == nil {
		mx = &matrix.Workspace{}
	}
	if n <= 1 {
		out := mx.Get(n)
		if err := ag.CloneInto(out); err != nil {
			return nil, nil, err
		}
		return out, stats, nil
	}

	// P products, each inflating by < 1+εstep; (1+εstep)^P = 1+ε.
	products := 0
	for length := 1; length < n; length *= 2 {
		products++
	}
	stats.EpsilonStep = powRoot(1+opts.Epsilon, products) - 1

	// The ladder must cover every per-product weight bound M = 2·max
	// finite entry; finite entries are walk distances, bounded by
	// (n−1)·W inflated by the accumulated snap factor, which stays below
	// the full 1+ε budget — hence the ⌈ε⌉ term, with an explicit overflow
	// guard since weights may approach the sentinel range.
	w := ag.MaxAbsFinite()
	factor := 2 + int64(math.Ceil(opts.Epsilon))
	denom := 4 * factor * (int64(n) + 1)
	if w >= graph.Inf/denom {
		return nil, nil, fmt.Errorf("approx: weight bound %d too large for the approximate chain at n=%d", w, n)
	}
	bound := 2 * factor * (int64(n) + 1) * (w + 1)
	ladder, err := Ladder(stats.EpsilonStep, bound)
	if err != nil {
		return nil, nil, err
	}
	stats.LadderLen = len(ladder)

	// The squaring chain, ping-ponged through the workspace like the exact
	// driver, with one addition the pinned exact pipeline cannot afford: a
	// per-product convergence vote. Min-plus squaring is monotone
	// nonincreasing, so a product that returns its input unchanged proves
	// the whole remaining chain is the identity — every node checks its own
	// row and a one-round all-to-all AND aggregates the verdict. Dense
	// inputs hit the fixpoint after ~log₂(diameter) products, long before
	// the ⌈log₂ n⌉ walk-length budget.
	rng := xrand.New(opts.Seed)
	cur := mx.Get(n)
	if err := ag.CloneInto(cur); err != nil {
		mx.Put(cur)
		return nil, nil, err
	}
	next := mx.Get(n)
	for length := 1; length < n; length *= 2 {
		st, err := distprod.ProductInto(next, cur, cur, distprod.Options{
			Solver:    opts.Solver,
			Params:    opts.Params,
			Seed:      rng.SplitN("product", stats.FindEdgesCalls).Seed(),
			Net:       opts.Net,
			Workers:   opts.Workers,
			Workspace: opts.DP,
			Grid:      ladder,
		})
		if err != nil {
			mx.Put(cur)
			mx.Put(next)
			return nil, nil, fmt.Errorf("approx: squaring %d: %w", stats.Products, err)
		}
		stats.Products++
		stats.FindEdgesCalls += st.BinarySearchSteps
		if err := opts.Net.BroadcastAll("approx/fixpoint-vote", 1); err != nil {
			mx.Put(cur)
			mx.Put(next)
			return nil, nil, err
		}
		converged := next.Equal(cur)
		cur, next = next, cur
		if converged {
			stats.ConvergedEarly = length*2 < n
			break
		}
	}
	mx.Put(next)
	return cur, stats, nil
}

// powRoot returns the p-th root of x for p >= 1 (x > 1), i.e. x^(1/p).
func powRoot(x float64, p int) float64 {
	if p <= 1 {
		return x
	}
	return math.Pow(x, 1/float64(p))
}
