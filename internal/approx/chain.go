package approx

// The (1+ε)-approximate squaring chain: the exact Theorem 1 pipeline with
// every distance product snapped onto a geometric value ladder. The chain
// performs P = ⌈log₂ n⌉ products; each inflates entries by a factor below
// 1+εstep (ladder snap-up), so choosing εstep = (1+ε)^(1/P) − 1 keeps the
// compounded stretch within the requested 1+ε. The payoff is the search
// depth: each product spends ⌈log₂ |ladder ∩ [0,M]|⌉+1 FindEdges calls
// instead of ⌈log₂(4M+2)⌉+1, and FindEdges calls are where the rounds go.
//
// The chain is factored into a chainRun so the same code backs both the
// standalone Chain entry point and the staged engine pipeline (strategy
// "approx-quantum"): prepare builds the ladder, square performs one
// ladder-snapped product plus the fixpoint vote, and the driver — a plain
// loop here, engine stages there — sequences them. One implementation, one
// round trajectory.

import (
	"context"
	"fmt"
	"math"

	"qclique/internal/congest"
	"qclique/internal/distprod"
	"qclique/internal/graph"
	"qclique/internal/matrix"
	"qclique/internal/triangles"
	"qclique/internal/xrand"
)

// ChainOptions configures the (1+ε)-approximate squaring chain.
type ChainOptions struct {
	// Epsilon is the end-to-end multiplicative stretch budget (> 0).
	Epsilon float64
	// Solver selects the FindEdges implementation (zero value: quantum).
	Solver distprod.Solver
	// Params forwards protocol constants (nil = paper constants).
	Params *triangles.Params
	// Seed drives protocol randomness.
	Seed uint64
	// Net is the 3n-node network the products charge against (required).
	Net *congest.Network
	// Workers bounds host-side parallelism of node-local phases.
	Workers int
	// DP and MX optionally supply the reusable product and squaring-chain
	// workspaces (same contract as the exact pipeline).
	DP *distprod.Workspace
	// MX is the matrix freelist the squaring chain ping-pongs through.
	MX *matrix.Workspace
}

// ChainStats reports what a chain run did.
type ChainStats struct {
	// Products is the number of ladder-snapped distance products performed
	// (the fixpoint vote may stop the chain before the ⌈log₂ n⌉ budget).
	Products int
	// FindEdgesCalls is the total FindEdges invocations across products.
	FindEdgesCalls int
	// EpsilonStep is the per-product stretch budget (1+ε)^(1/P) − 1.
	EpsilonStep float64
	// LadderLen is the number of candidate values in the shared ladder.
	LadderLen int
	// ConvergedEarly reports that a squaring returned its input unchanged
	// and the remaining products were skipped.
	ConvergedEarly bool
}

// chainRun is the mutable state of one (1+ε) chain: the ping-pong matrices
// borrowed from the workspace, the shared ladder, and the convergence flag
// the fixpoint vote sets.
type chainRun struct {
	opts   ChainOptions
	ag     *matrix.Matrix
	stats  *ChainStats
	mx     *matrix.Workspace
	rng    *xrand.Source
	ladder []int64
	n      int
	budget int // P = ⌈log₂ n⌉ products

	cur, next *matrix.Matrix
	done      bool
}

// newChainRun validates the options; buffers are acquired by prepare.
func newChainRun(ag *matrix.Matrix, opts ChainOptions) (*chainRun, error) {
	if !ValidEpsilon(opts.Epsilon) {
		return nil, fmt.Errorf("%w (got %v)", ErrBadEpsilon, opts.Epsilon)
	}
	if opts.Net == nil {
		return nil, fmt.Errorf("approx: Chain requires a network")
	}
	mx := opts.MX
	if mx == nil {
		mx = &matrix.Workspace{}
	}
	return &chainRun{
		opts:   opts,
		ag:     ag,
		stats:  &ChainStats{},
		mx:     mx,
		rng:    xrand.New(opts.Seed),
		n:      ag.N(),
		budget: matrix.SquaringBudget(ag.N()),
	}, nil
}

// prepare builds the shared value ladder and checks the weight bound; for
// n ≤ 1 the chain is trivially done after cloning the input.
func (r *chainRun) prepare() error {
	r.cur = r.mx.Get(r.n)
	if err := r.ag.CloneInto(r.cur); err != nil {
		return err
	}
	if r.n <= 1 {
		r.done = true
		return nil
	}

	// P products, each inflating by < 1+εstep; (1+εstep)^P = 1+ε.
	r.stats.EpsilonStep = powRoot(1+r.opts.Epsilon, r.budget) - 1

	// The ladder must cover every per-product weight bound M = 2·max
	// finite entry; finite entries are walk distances, bounded by
	// (n−1)·W inflated by the accumulated snap factor, which stays below
	// the full 1+ε budget — hence the ⌈ε⌉ term, with an explicit overflow
	// guard since weights may approach the sentinel range.
	w := r.ag.MaxAbsFinite()
	factor := 2 + int64(math.Ceil(r.opts.Epsilon))
	denom := 4 * factor * (int64(r.n) + 1)
	if w >= graph.Inf/denom {
		return fmt.Errorf("approx: weight bound %d too large for the approximate chain at n=%d", w, r.n)
	}
	bound := 2 * factor * (int64(r.n) + 1) * (w + 1)
	ladder, err := Ladder(r.stats.EpsilonStep, bound)
	if err != nil {
		return err
	}
	r.ladder = ladder
	r.stats.LadderLen = len(ladder)
	r.next = r.mx.Get(r.n)
	return nil
}

// square performs one ladder-snapped product plus the convergence vote.
// Min-plus squaring is monotone nonincreasing, so a product that returns
// its input unchanged proves the whole remaining chain is the identity —
// every node checks its own row and a one-round all-to-all AND aggregates
// the verdict. Dense inputs hit the fixpoint after ~log₂(diameter)
// products, long before the ⌈log₂ n⌉ walk-length budget.
func (r *chainRun) square(ctx context.Context) error {
	st, err := distprod.ProductInto(r.next, r.cur, r.cur, distprod.Options{
		Solver:    r.opts.Solver,
		Params:    r.opts.Params,
		Seed:      r.rng.SplitN("product", r.stats.FindEdgesCalls).Seed(),
		Net:       r.opts.Net,
		Workers:   r.opts.Workers,
		Workspace: r.opts.DP,
		Grid:      r.ladder,
		Ctx:       ctx,
	})
	if err != nil {
		return fmt.Errorf("approx: squaring %d: %w", r.stats.Products, err)
	}
	r.stats.Products++
	r.stats.FindEdgesCalls += st.BinarySearchSteps
	if err := r.opts.Net.BroadcastAll("approx/fixpoint-vote", 1); err != nil {
		return err
	}
	converged := r.next.Equal(r.cur)
	r.cur, r.next = r.next, r.cur
	if converged {
		r.stats.ConvergedEarly = r.stats.Products < r.budget
		r.done = true
	}
	return nil
}

// result hands the distance matrix to the caller and returns the companion
// buffer to the workspace; the run must not be used afterwards.
func (r *chainRun) result() *matrix.Matrix {
	if r.next != nil {
		r.mx.Put(r.next)
		r.next = nil
	}
	out := r.cur
	r.cur = nil
	return out
}

// release returns every checked-out buffer after a failed or interrupted
// run, keeping the pooled workspace reusable.
func (r *chainRun) release() {
	r.mx.Put(r.cur)
	r.mx.Put(r.next)
	r.cur, r.next = nil, nil
}

// Chain computes (1+ε)-approximate APSP distances for the adjacency matrix
// ag (0 diagonal, nonnegative finite weights, +Inf for absent arcs): every
// returned entry d̂ satisfies d ≤ d̂ ≤ (1+ε)·d against the exact distance
// d, with reachability preserved exactly. The caller validates
// nonnegativity at the graph level; −Inf or negative entries fail inside
// the product.
func Chain(ag *matrix.Matrix, opts ChainOptions) (*matrix.Matrix, *ChainStats, error) {
	r, err := newChainRun(ag, opts)
	if err != nil {
		return nil, nil, err
	}
	if err := r.prepare(); err != nil {
		r.release()
		return nil, nil, err
	}
	for i := 0; i < r.budget && !r.done; i++ {
		if err := r.square(context.Background()); err != nil {
			r.release()
			return nil, nil, err
		}
	}
	return r.result(), r.stats, nil
}

// powRoot returns the p-th root of x for p >= 1 (x > 1), i.e. x^(1/p).
func powRoot(x float64, p int) float64 {
	if p <= 1 {
		return x
	}
	return math.Pow(x, 1/float64(p))
}
