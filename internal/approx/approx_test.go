package approx

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"qclique/internal/graph"
	"qclique/internal/matrix"
	"qclique/internal/xrand"
)

func TestLadderProperties(t *testing.T) {
	for _, eps := range []float64{0.05, 0.1, 0.5, 1.0, 3.0} {
		for _, bound := range []int64{0, 1, 7, 1000, 50000} {
			ladder, err := Ladder(eps, bound)
			if err != nil {
				t.Fatalf("Ladder(%v,%d): %v", eps, bound, err)
			}
			if ladder[0] != 0 {
				t.Fatalf("Ladder(%v,%d) starts at %d, want 0", eps, bound, ladder[0])
			}
			if top := ladder[len(ladder)-1]; top < bound {
				t.Fatalf("Ladder(%v,%d) top %d does not cover bound", eps, bound, top)
			}
			for i := 1; i < len(ladder); i++ {
				if ladder[i] <= ladder[i-1] {
					t.Fatalf("Ladder(%v,%d) not strictly increasing at %d", eps, bound, i)
				}
			}
			// The defining property: snapping inflates by strictly less
			// than 1+eps.
			for x := int64(0); x <= bound && x <= 2000; x++ {
				s := SnapUp(x, ladder)
				if s < x {
					t.Fatalf("SnapUp(%d) = %d undercuts", x, s)
				}
				if float64(s) >= (1+eps)*float64(x)+1e-9 && x > 0 {
					t.Fatalf("eps=%v: SnapUp(%d) = %d exceeds the 1+eps factor", eps, x, s)
				}
			}
		}
	}
}

func TestLadderErrors(t *testing.T) {
	if _, err := Ladder(0, 10); !errors.Is(err, ErrBadEpsilon) {
		t.Errorf("eps=0: err = %v, want ErrBadEpsilon", err)
	}
	if _, err := Ladder(-0.5, 10); !errors.Is(err, ErrBadEpsilon) {
		t.Errorf("eps<0: err = %v, want ErrBadEpsilon", err)
	}
	if _, err := Ladder(0.5, -1); err == nil {
		t.Error("negative bound must fail")
	}
	if _, err := Ladder(0.5, graph.Inf); err == nil {
		t.Error("bound at Inf must fail rather than overflow")
	}
}

// TestLadderTinyEpsilonFailsFast: adversarially small epsilons must be
// rejected in O(1), not spin the ladder loop for unbounded CPU (1e-18
// does not even advance 1+eps in float64; 1e-9 would take ~10^10 growth
// steps for a large bound).
func TestLadderTinyEpsilonFailsFast(t *testing.T) {
	for _, eps := range []float64{1e-18, 1e-12, 1e-9} {
		if _, err := Ladder(eps, 1<<40); !errors.Is(err, ErrBadEpsilon) {
			t.Errorf("eps=%v: err = %v, want ErrBadEpsilon", eps, err)
		}
	}
}

// TestLadderBoundNearWeightDomain: legal bounds close to the weight-domain
// ceiling must build (the overflow guard used to trip on the growth step
// after the ladder already covered the bound).
func TestLadderBoundNearWeightDomain(t *testing.T) {
	bound := int64(1) << 60
	ladder, err := Ladder(1.0, bound)
	if err != nil {
		t.Fatalf("Ladder(1.0, 2^60): %v", err)
	}
	if top := ladder[len(ladder)-1]; top < bound {
		t.Fatalf("top %d does not cover bound %d", top, bound)
	}
}

func TestValidEpsilonDomain(t *testing.T) {
	for _, ok := range []float64{MinEpsilon, 0.5, MaxEpsilon} {
		if !ValidEpsilon(ok) {
			t.Errorf("ValidEpsilon(%v) = false", ok)
		}
	}
	for _, bad := range []float64{0, -1, MinEpsilon / 2, MaxEpsilon * 2, math.Inf(1)} {
		if ValidEpsilon(bad) {
			t.Errorf("ValidEpsilon(%v) = true", bad)
		}
	}
}

func TestMeasureStretchDetectsLies(t *testing.T) {
	g := graph.NewDigraph(2)
	if err := g.SetArc(0, 1, 10); err != nil {
		t.Fatal(err)
	}
	mk := func(d01 int64) *matrix.Matrix {
		m := matrix.New(2)
		m.Set(0, 0, 0)
		m.Set(1, 1, 0)
		m.Set(0, 1, d01)
		return m
	}
	if s, err := MeasureStretch(g, mk(12)); err != nil || s != 1.2 {
		t.Errorf("honest overestimate: stretch = %v, %v; want 1.2", s, err)
	}
	if _, err := MeasureStretch(g, mk(9)); err == nil {
		t.Error("undercutting estimate must be rejected")
	}
	if _, err := MeasureStretch(g, mk(graph.Inf)); err == nil {
		t.Error("reachable-but-estimated-unreachable must be rejected")
	}
	unreachable := mk(10)
	unreachable.Set(1, 0, 5) // exact d(1,0) is Inf
	if _, err := MeasureStretch(g, unreachable); err == nil {
		t.Error("unreachable-but-estimated-finite must be rejected")
	}
}

// stretchCase is one (generator, graph) input of the stretch-bound sweep.
type stretchCase struct {
	name string
	g    *graph.Digraph
}

// chainCases builds the StrategyApproxQuantum inputs for one seed:
// nonnegative, possibly asymmetric, possibly disconnected.
func chainCases(t *testing.T, seed uint64) []stretchCase {
	t.Helper()
	rng := xrand.New(seed)
	dense, err := graph.RandomDigraph(18, graph.DigraphOpts{ArcProb: 0.4, MinWeight: 0, MaxWeight: 9}, rng.Split("dense"))
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := graph.RandomDigraph(18, graph.DigraphOpts{ArcProb: 0.12, MinWeight: 1, MaxWeight: 40}, rng.Split("sparse"))
	if err != nil {
		t.Fatal(err)
	}
	grid, err := graph.GridDigraph(4, 4, 12, rng.Split("grid"))
	if err != nil {
		t.Fatal(err)
	}
	return []stretchCase{{"dense", dense}, {"sparse", sparse}, {"grid", grid}}
}

// skeletonCases builds the StrategyApproxSkeleton inputs for one seed:
// weight-symmetric and nonnegative.
func skeletonCases(t *testing.T, seed uint64) []stretchCase {
	t.Helper()
	rng := xrand.New(seed)
	sparse, err := graph.RandomSymmetricDigraph(40, graph.DigraphOpts{ArcProb: 0.12, MinWeight: 1, MaxWeight: 30}, rng.Split("sparse"))
	if err != nil {
		t.Fatal(err)
	}
	dense, err := graph.RandomSymmetricDigraph(28, graph.DigraphOpts{ArcProb: 0.5, MinWeight: 0, MaxWeight: 12}, rng.Split("dense"))
	if err != nil {
		t.Fatal(err)
	}
	// A symmetric grid: long shortest paths, the workload where hub routing
	// actually has to stretch.
	const rows, cols = 6, 6
	grid := graph.NewDigraph(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	gr := rng.Split("grid")
	set := func(a, b int) {
		w := 1 + gr.Int64N(15)
		if err := grid.SetArc(a, b, w); err != nil {
			t.Fatal(err)
		}
		if err := grid.SetArc(b, a, w); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				set(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				set(id(r, c), id(r+1, c))
			}
		}
	}
	return []stretchCase{{"sparse", sparse}, {"dense", dense}, {"grid", grid}}
}

func TestSkeletonStretchWithinGuarantee(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		for _, tc := range skeletonCases(t, seed) {
			for _, eps := range []float64{0.2, 1.0} {
				net := newTestNetwork(t, tc.g.N())
				dist, stats, err := Skeleton(tc.g, SkeletonOptions{Epsilon: eps, Seed: seed, Net: net})
				if err != nil {
					t.Fatalf("seed %d %s eps %v: %v", seed, tc.name, eps, err)
				}
				stretch, err := MeasureStretch(tc.g, dist)
				if err != nil {
					t.Fatalf("seed %d %s eps %v: %v", seed, tc.name, eps, err)
				}
				if stretch > 2+eps {
					t.Errorf("seed %d %s eps %v: observed stretch %v exceeds guarantee %v", seed, tc.name, eps, stretch, 2+eps)
				}
				if net.Rounds() <= 0 {
					t.Errorf("seed %d %s: no rounds charged", seed, tc.name)
				}
				if stats.SkeletonSize <= 0 || stats.SkeletonSize > tc.g.N() {
					t.Errorf("seed %d %s: skeleton size %d out of range", seed, tc.name, stats.SkeletonSize)
				}
			}
		}
	}
}

func TestSkeletonRejectsBadInputs(t *testing.T) {
	asym := graph.NewDigraph(3)
	if err := asym.SetArc(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	net := newTestNetwork(t, 3)
	if _, _, err := Skeleton(asym, SkeletonOptions{Epsilon: 0.5, Net: net}); !errors.Is(err, ErrAsymmetric) {
		t.Errorf("asymmetric input: err = %v, want ErrAsymmetric", err)
	}
	neg := graph.NewDigraph(3)
	if err := neg.SetArc(0, 1, -2); err != nil {
		t.Fatal(err)
	}
	if err := neg.SetArc(1, 0, -2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Skeleton(neg, SkeletonOptions{Epsilon: 0.5, Net: net}); !errors.Is(err, ErrNegativeWeight) {
		t.Errorf("negative weights: err = %v, want ErrNegativeWeight", err)
	}
	ok := graph.NewDigraph(3)
	if _, _, err := Skeleton(ok, SkeletonOptions{Epsilon: 0, Net: net}); !errors.Is(err, ErrBadEpsilon) {
		t.Errorf("eps=0: err = %v, want ErrBadEpsilon", err)
	}
}

func TestSkeletonDeterministicPerSeed(t *testing.T) {
	g, err := graph.RandomSymmetricDigraph(24, graph.DigraphOpts{ArcProb: 0.2, MinWeight: 1, MaxWeight: 9}, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	run := func(seed uint64) (*matrix.Matrix, int64) {
		net := newTestNetwork(t, g.N())
		dist, _, err := Skeleton(g, SkeletonOptions{Epsilon: 0.4, Seed: seed, Net: net})
		if err != nil {
			t.Fatal(err)
		}
		return dist, net.Rounds()
	}
	d1, r1 := run(5)
	d2, r2 := run(5)
	if !d1.Equal(d2) || r1 != r2 {
		t.Error("equal seeds must replay identical skeleton runs")
	}
}

func TestSkeletonTrivialSizes(t *testing.T) {
	for n := 0; n <= 2; n++ {
		g := graph.NewDigraph(n)
		if n == 2 {
			if err := g.SetArc(0, 1, 3); err != nil {
				t.Fatal(err)
			}
			if err := g.SetArc(1, 0, 3); err != nil {
				t.Fatal(err)
			}
		}
		net := newTestNetwork(t, max(n, 1))
		dist, _, err := Skeleton(g, SkeletonOptions{Epsilon: 0.5, Net: net})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if dist.N() != n {
			t.Fatalf("n=%d: got %d×%d matrix", n, dist.N(), dist.N())
		}
		if n == 2 && dist.At(0, 1) != 3 {
			t.Errorf("n=2: d(0,1) = %d, want 3", dist.At(0, 1))
		}
	}
}

func TestPowRoot(t *testing.T) {
	for _, p := range []int{1, 2, 6, 7} {
		got := powRoot(1.5, p)
		if math.Abs(math.Pow(got, float64(p))-1.5) > 1e-12 {
			t.Errorf("powRoot(1.5,%d)^%d = %v, want 1.5", p, p, math.Pow(got, float64(p)))
		}
	}
}

func ExampleLadder() {
	ladder, _ := Ladder(0.5, 20)
	fmt.Println(ladder)
	// Output: [0 1 2 3 5 7 11 17 25]
}
