package approx

import (
	"testing"

	"qclique/internal/congest"
	"qclique/internal/distprod"
	"qclique/internal/graph"
	"qclique/internal/matrix"
	"qclique/internal/triangles"
)

func newTestNetwork(t *testing.T, n int) *congest.Network {
	t.Helper()
	net, err := congest.NewNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// runChain solves g with the (1+ε) chain under scaled constants and
// returns the distances plus the rounds charged.
func runChain(t *testing.T, g *graph.Digraph, eps float64, seed uint64) (*matrix.Matrix, *ChainStats, int64) {
	t.Helper()
	params := triangles.BenchParams()
	net := newTestNetwork(t, 3*g.N())
	dist, stats, err := Chain(matrix.FromDigraph(g), ChainOptions{
		Epsilon: eps,
		Solver:  distprod.SolverQuantum,
		Params:  &params,
		Seed:    seed,
		Net:     net,
	})
	if err != nil {
		t.Fatal(err)
	}
	return dist, stats, net.Rounds()
}

func TestChainStretchWithinGuarantee(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		for _, tc := range chainCases(t, seed) {
			for _, eps := range []float64{0.25, 1.0} {
				dist, stats, rounds := runChain(t, tc.g, eps, seed)
				stretch, err := MeasureStretch(tc.g, dist)
				if err != nil {
					t.Fatalf("seed %d %s eps %v: %v", seed, tc.name, eps, err)
				}
				if stretch > 1+eps {
					t.Errorf("seed %d %s eps %v: observed stretch %v exceeds guarantee %v", seed, tc.name, eps, stretch, 1+eps)
				}
				if rounds <= 0 || stats.FindEdgesCalls <= 0 {
					t.Errorf("seed %d %s: no work accounted (rounds=%d calls=%d)", seed, tc.name, rounds, stats.FindEdgesCalls)
				}
			}
		}
	}
}

func TestChainDeterministicPerSeed(t *testing.T) {
	tc := chainCases(t, 7)[0]
	d1, _, r1 := runChain(t, tc.g, 0.5, 3)
	d2, _, r2 := runChain(t, tc.g, 0.5, 3)
	if !d1.Equal(d2) || r1 != r2 {
		t.Error("equal seeds must replay identical chain runs")
	}
}

func TestChainRejectsBadEpsilon(t *testing.T) {
	g := graph.NewDigraph(4)
	net := newTestNetwork(t, 12)
	if _, _, err := Chain(matrix.FromDigraph(g), ChainOptions{Epsilon: 0, Net: net}); err == nil {
		t.Error("eps=0 must fail")
	}
	if _, _, err := Chain(matrix.FromDigraph(g), ChainOptions{Epsilon: 0.5}); err == nil {
		t.Error("missing network must fail")
	}
}

func TestChainTrivialSizes(t *testing.T) {
	for n := 0; n <= 1; n++ {
		g := graph.NewDigraph(n)
		net := newTestNetwork(t, max(3*n, 1))
		dist, _, err := Chain(matrix.FromDigraph(g), ChainOptions{Epsilon: 0.5, Net: net})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if dist.N() != n {
			t.Fatalf("n=%d: got %d×%d matrix", n, dist.N(), dist.N())
		}
	}
}

// TestChainLargeEpsilonLongPaths: the ladder bound must absorb the
// snap inflation of intermediate entries — a long path graph under a
// large epsilon used to fail mid-chain with "grid top does not cover
// weight bound".
func TestChainLargeEpsilonLongPaths(t *testing.T) {
	n := 32
	g := graph.NewDigraph(n)
	for i := 0; i+1 < n; i++ {
		if err := g.SetArc(i, i+1, 8); err != nil {
			t.Fatal(err)
		}
	}
	for _, eps := range []float64{20, MaxEpsilon} {
		net := newTestNetwork(t, 3*n)
		dist, _, err := Chain(matrix.FromDigraph(g), ChainOptions{
			Epsilon: eps,
			Solver:  distprod.SolverDolev,
			Seed:    1,
			Net:     net,
		})
		if err != nil {
			t.Fatalf("eps=%v: %v", eps, err)
		}
		stretch, err := MeasureStretch(g, dist)
		if err != nil {
			t.Fatalf("eps=%v: %v", eps, err)
		}
		if stretch > 1+eps {
			t.Errorf("eps=%v: stretch %v exceeds guarantee", eps, stretch)
		}
	}
}

// TestChainFixpointStopsEarly pins the convergence vote: a dense graph
// with a tiny diameter must not run the full ⌈log₂ n⌉ products.
func TestChainFixpointStopsEarly(t *testing.T) {
	n := 16
	g := graph.NewDigraph(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				if err := g.SetArc(u, v, 1); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	_, stats, _ := runChain(t, g, 0.5, 0)
	if !stats.ConvergedEarly {
		t.Errorf("complete graph did not converge early (%d products)", stats.Products)
	}
	if stats.Products >= 4 {
		t.Errorf("complete graph took %d products, expected the fixpoint vote to stop sooner", stats.Products)
	}
}
