package serve

import (
	"errors"
	"testing"

	"qclique/internal/core"
	"qclique/internal/graph"
	"qclique/internal/matrix"
	"qclique/internal/xrand"
)

func testNonnegDigraph(t *testing.T, n int, seed uint64) *graph.Digraph {
	t.Helper()
	g, err := graph.RandomDigraph(n, graph.DigraphOpts{
		ArcProb: 0.35, MinWeight: 0, MaxWeight: 9,
	}, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSpecValidation(t *testing.T) {
	s := New(Config{})
	g := testDigraph(t, 6, 1)
	if _, err := s.SolveGraph(g, SolveSpec{Strategy: core.StrategyGossip, Epsilon: 0.5}); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("epsilon on exact strategy: err = %v, want ErrInvalidSpec", err)
	}
	if _, err := s.SolveGraph(g, SolveSpec{Strategy: core.StrategyApproxQuantum}); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("approx without epsilon: err = %v, want ErrInvalidSpec", err)
	}
	// Epsilons outside [MinEpsilon, MaxEpsilon] are rejected up front —
	// tiny values would otherwise buy unbounded ladder CPU per request.
	for _, eps := range []float64{1e-18, 1e-9, 1e6} {
		if _, err := s.SolveGraph(g, SolveSpec{Strategy: core.StrategyApproxQuantum, Epsilon: eps}); !errors.Is(err, ErrInvalidSpec) {
			t.Errorf("epsilon %v: err = %v, want ErrInvalidSpec", eps, err)
		}
	}
	// Path reconstruction is an exact-strategy service: approximate
	// distances carry no tight-successor structure to walk.
	ng := testNonnegDigraph(t, 8, 2)
	if _, _, err := s.PathsBatchGraph(ng, SolveSpec{Strategy: core.StrategyApproxQuantum, Epsilon: 0.5}, []PathQuery{{Src: 0, Dst: 1}}); !errors.Is(err, ErrApproxPaths) {
		t.Errorf("paths under approx strategy: err = %v, want ErrApproxPaths", err)
	}
	// Invalid specs must not pollute the accounting: no request recorded.
	if st := s.Stats(); len(st.Strategies) != 0 {
		t.Errorf("invalid specs were accounted: %+v", st.Strategies)
	}
}

// TestEpsilonInCacheKey: two approximate solves of the same graph that
// differ only in epsilon are distinct results — sharing an entry would
// serve one accuracy contract under another's name.
func TestEpsilonInCacheKey(t *testing.T) {
	s := New(Config{})
	g := testNonnegDigraph(t, 10, 7)
	spec := SolveSpec{Strategy: core.StrategyApproxQuantum, Preset: PresetScaled, Epsilon: 0.5}
	r1, err := s.SolveGraph(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached {
		t.Fatal("first solve reported cached")
	}
	spec2 := spec
	spec2.Epsilon = 1.0
	r2, err := s.SolveGraph(g, spec2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cached {
		t.Error("different epsilon must miss the cache")
	}
	if r2.Res.GuaranteedStretch != 2.0 {
		t.Errorf("eps=1 guarantee = %v, want 2", r2.Res.GuaranteedStretch)
	}
	r3, err := s.SolveGraph(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !r3.Cached || r3.Res != r1.Res {
		t.Error("identical epsilon must hit the original entry")
	}
}

// TestGraphAccessorClone: mutating the graph handed out by Service.Graph
// must not poison the content-addressed store or the solve cache.
func TestGraphAccessorClone(t *testing.T) {
	s := New(Config{})
	g := testDigraph(t, 8, 3)
	id, err := s.PutGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	spec := SolveSpec{Strategy: core.StrategyGossip}
	before, err := s.Solve(id, spec)
	if err != nil {
		t.Fatal(err)
	}

	leaked, err := s.Graph(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := leaked.SetArc(0, 1, -999); err != nil {
		t.Fatal(err)
	}

	// The store's content must still match its id...
	stored, err := s.store.get(id)
	if err != nil {
		t.Fatal(err)
	}
	if HashDigraph(stored.g) != id {
		t.Fatal("mutating the accessor result changed the stored graph")
	}
	// ...and a re-solve must reproduce the original distances, not ones
	// computed over the mutated copy.
	after, err := s.Solve(id, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !after.Cached {
		t.Error("re-solve of an untouched stored graph must hit the cache")
	}
	if !after.Res.Dist.Equal(before.Res.Dist) {
		t.Error("distances changed after mutating the accessor's graph")
	}
}

// TestPathsBatchUndefinedDistance: batch answers against a −∞ region carry
// per-query ErrUndefinedDistance instead of fabricated paths. The entry is
// assembled by hand because Solve refuses negative-cycle graphs outright —
// the serving layer still must not trust an arbitrary matrix.
func TestPathsBatchUndefinedDistance(t *testing.T) {
	g := graph.NewDigraph(2)
	if err := g.SetArc(0, 1, -1); err != nil {
		t.Fatal(err)
	}
	if err := g.SetArc(1, 0, 0); err != nil {
		t.Fatal(err)
	}
	dist := matrix.New(2)
	dist.Fill(graph.NegInf)
	oracle, err := core.NewPathOracle(g, dist)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{})
	res := &SolveResult{Res: &core.Result{Dist: dist}, Oracle: oracle}
	answers := s.answerBatch(res, SolveSpec{}, []PathQuery{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}})
	for _, a := range answers {
		if !errors.Is(a.Err, core.ErrUndefinedDistance) {
			t.Errorf("(%d,%d): err = %v, want ErrUndefinedDistance", a.Src, a.Dst, a.Err)
		}
		if a.Path != nil {
			t.Errorf("(%d,%d): fabricated path %v", a.Src, a.Dst, a.Path)
		}
	}
}
