package serve

import (
	"errors"
	"sync"
	"testing"

	"qclique/internal/core"
	"qclique/internal/graph"
	"qclique/internal/xrand"
)

func testDigraph(t *testing.T, n int, seed uint64) *graph.Digraph {
	t.Helper()
	g, err := graph.RandomDigraph(n, graph.DigraphOpts{
		ArcProb: 0.35, MinWeight: -4, MaxWeight: 9, NoNegativeCycles: true,
	}, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestHashDistinguishesIsomorphicGraphs: relabeling a graph preserves its
// structure but must change its content identity — APSP output is
// label-addressed, so isomorphic-but-distinct graphs may not share cache
// entries.
func TestHashDistinguishesIsomorphicGraphs(t *testing.T) {
	g := graph.NewDigraph(4)
	relabeled := graph.NewDigraph(4)
	perm := []int{2, 0, 3, 1}
	arcs := [][3]int64{{0, 1, 5}, {1, 2, -1}, {2, 3, 7}, {3, 0, 2}}
	for _, a := range arcs {
		if err := g.SetArc(int(a[0]), int(a[1]), a[2]); err != nil {
			t.Fatal(err)
		}
		if err := relabeled.SetArc(perm[a[0]], perm[a[1]], a[2]); err != nil {
			t.Fatal(err)
		}
	}
	if HashDigraph(g) == HashDigraph(relabeled) {
		t.Fatal("isomorphic-but-relabeled graphs must hash differently")
	}
	if HashDigraph(g) != HashDigraph(g.Clone()) {
		t.Fatal("identical graphs must hash identically")
	}

	svc := New(Config{})
	if _, err := svc.SolveGraph(g, SolveSpec{Strategy: core.StrategyGossip}); err != nil {
		t.Fatal(err)
	}
	res, err := svc.SolveGraph(relabeled, SolveSpec{Strategy: core.StrategyGossip})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatal("relabeled graph must not be served from the original's cache entry")
	}
}

// TestCachedVsFreshBitIdentical: a cache hit must return distances and
// round accounting bit-identical to the fresh solve, and charge zero new
// rounds.
func TestCachedVsFreshBitIdentical(t *testing.T) {
	g := testDigraph(t, 10, 3)
	svc := New(Config{})
	spec := SolveSpec{Strategy: core.StrategyGossip, Seed: 7}

	fresh, err := svc.SolveGraph(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Cached {
		t.Fatal("first solve must not be cached")
	}
	charged := svc.Stats().Strategies["gossip"].RoundsCharged

	cached, err := svc.SolveGraph(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !cached.Cached {
		t.Fatal("second identical solve must be cached")
	}
	if !cached.Res.Dist.Equal(fresh.Res.Dist) {
		t.Fatal("cached distances differ from fresh")
	}
	if cached.Res.Rounds != fresh.Res.Rounds {
		t.Fatalf("cached rounds %d != fresh rounds %d", cached.Res.Rounds, fresh.Res.Rounds)
	}
	st := svc.Stats().Strategies["gossip"]
	if st.RoundsCharged != charged {
		t.Fatalf("cache hit charged rounds: %d -> %d", charged, st.RoundsCharged)
	}
	if st.Solves != 1 || st.CacheHits != 1 || st.Requests != 2 {
		t.Fatalf("stats = %+v, want 1 solve, 1 hit, 2 requests", st)
	}

	// A different seed is a different identity: it must re-run.
	other, err := svc.SolveGraph(g, SolveSpec{Strategy: core.StrategyGossip, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if other.Cached {
		t.Fatal("different seed must not hit the cache")
	}
}

// TestSingleflightConcurrentSolves: many concurrent identical solves must
// run the simulator exactly once.
func TestSingleflightConcurrentSolves(t *testing.T) {
	g := testDigraph(t, 8, 11)
	svc := New(Config{})
	spec := SolveSpec{Strategy: core.StrategyQuantum, Preset: PresetScaled, Seed: 1}

	const callers = 8
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(callers)
	results := make([]*SolveResult, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait()
			results[i], errs[i] = svc.SolveGraph(g, spec)
		}(i)
	}
	start.Done()
	done.Wait()

	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !results[i].Res.Dist.Equal(results[0].Res.Dist) {
			t.Fatalf("caller %d got different distances", i)
		}
	}
	st := svc.Stats().Strategies["quantum"]
	if st.Solves != 1 {
		t.Fatalf("simulator ran %d times for %d concurrent identical solves, want 1", st.Solves, callers)
	}
	if st.CacheHits+st.Deduped != callers-1 {
		t.Fatalf("hits(%d)+deduped(%d) != %d", st.CacheHits, st.Deduped, callers-1)
	}
}

// TestEvictionUnderCacheSize: with capacity 1, alternating graphs must
// evict and re-run.
func TestEvictionUnderCacheSize(t *testing.T) {
	g1 := testDigraph(t, 9, 1)
	g2 := testDigraph(t, 9, 2)
	svc := New(Config{CacheSize: 1})
	spec := SolveSpec{Strategy: core.StrategyGossip}

	for _, g := range []*graph.Digraph{g1, g2, g1} {
		if _, err := svc.SolveGraph(g, spec); err != nil {
			t.Fatal(err)
		}
	}
	st := svc.Stats()
	gossip := st.Strategies["gossip"]
	if gossip.Solves != 3 {
		t.Fatalf("solves = %d, want 3 (g1 evicted by g2 must re-run)", gossip.Solves)
	}
	if st.CachedResults != 1 {
		t.Fatalf("cached results = %d, want 1", st.CachedResults)
	}

	// Without pressure, the same sequence is served from cache.
	roomy := New(Config{CacheSize: 8})
	for _, g := range []*graph.Digraph{g1, g2, g1} {
		if _, err := roomy.SolveGraph(g, spec); err != nil {
			t.Fatal(err)
		}
	}
	if got := roomy.Stats().Strategies["gossip"].Solves; got != 2 {
		t.Fatalf("solves = %d, want 2 with a roomy cache", got)
	}
}

// TestStoreLifecycle: put is idempotent by content, lookups fail cleanly,
// and the store evicts least-recently-used graphs beyond MaxGraphs.
func TestStoreLifecycle(t *testing.T) {
	svc := New(Config{MaxGraphs: 2})
	g1, g2, g3 := testDigraph(t, 6, 1), testDigraph(t, 6, 2), testDigraph(t, 6, 3)

	id1, err := svc.PutGraph(g1)
	if err != nil {
		t.Fatal(err)
	}
	again, err := svc.PutGraph(g1.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if id1 != again {
		t.Fatalf("identical uploads got ids %q and %q", id1, again)
	}
	if _, err := svc.Graph("sha256:nope"); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("unknown id: err = %v, want ErrUnknownGraph", err)
	}
	if _, err := svc.PutGraph(nil); err == nil {
		t.Fatal("nil graph must fail")
	}

	if _, err := svc.PutGraph(g2); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.PutGraph(g3); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Graph(id1); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("g1 should have been evicted; err = %v", err)
	}

	// The stored graph is a private clone: mutating the original must not
	// change what the service solves.
	id2 := HashDigraph(g2)
	stored, err := svc.Graph(id2)
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.SetArc(0, 1, 999); err != nil {
		t.Fatal(err)
	}
	if w, _ := stored.Weight(0, 1); w == 999 {
		t.Fatal("store must hold a private clone")
	}
}

// TestPathsBatch: batch answers must agree with the distance matrix, carry
// valid paths, and report unreachable pairs per-query.
func TestPathsBatch(t *testing.T) {
	g := testDigraph(t, 12, 21)
	svc := New(Config{})
	id, err := svc.PutGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	spec := SolveSpec{Strategy: core.StrategyGossip}
	var queries []PathQuery
	for src := 0; src < g.N(); src++ {
		for dst := 0; dst < g.N(); dst++ {
			queries = append(queries, PathQuery{Src: src, Dst: dst})
		}
	}
	answers, res, err := svc.PathsBatch(id, spec, queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != len(queries) {
		t.Fatalf("got %d answers for %d queries", len(answers), len(queries))
	}
	for _, a := range answers {
		want := res.Res.Dist.At(a.Src, a.Dst)
		if want >= graph.Inf {
			if !errors.Is(a.Err, core.ErrNoPath) {
				t.Fatalf("(%d,%d): err = %v, want ErrNoPath", a.Src, a.Dst, a.Err)
			}
			continue
		}
		if a.Err != nil {
			t.Fatalf("(%d,%d): %v", a.Src, a.Dst, a.Err)
		}
		if a.Dist != want {
			t.Fatalf("(%d,%d): dist %d, want %d", a.Src, a.Dst, a.Dist, want)
		}
		w, err := core.PathWeight(g, a.Path)
		if err != nil {
			t.Fatalf("(%d,%d): broken path %v: %v", a.Src, a.Dst, a.Path, err)
		}
		if w != want {
			t.Fatalf("(%d,%d): path weight %d, want %d", a.Src, a.Dst, w, want)
		}
	}
	// Out-of-range queries fail per-answer, not per-batch.
	bad, _, err := svc.PathsBatch(id, spec, []PathQuery{{Src: -1, Dst: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if bad[0].Err == nil {
		t.Fatal("out-of-range query must carry an error")
	}
	if got := svc.Stats().PathQueries; got != int64(len(queries))+1 {
		t.Fatalf("path queries = %d, want %d", got, len(queries)+1)
	}
}

// TestNegativeCycleNotCached: undefined inputs error every time rather
// than polluting the cache.
func TestNegativeCycleNotCached(t *testing.T) {
	g := graph.NewDigraph(3)
	for _, a := range [][3]int64{{0, 1, -2}, {1, 2, -2}, {2, 0, 1}} {
		if err := g.SetArc(int(a[0]), int(a[1]), a[2]); err != nil {
			t.Fatal(err)
		}
	}
	svc := New(Config{})
	spec := SolveSpec{Strategy: core.StrategyGossip}
	for i := 0; i < 2; i++ {
		if _, err := svc.SolveGraph(g, spec); !errors.Is(err, core.ErrNegativeCycle) {
			t.Fatalf("attempt %d: err = %v, want ErrNegativeCycle", i, err)
		}
	}
	st := svc.Stats().Strategies["gossip"]
	if st.Errors != 2 {
		t.Fatalf("errors = %d, want 2 (failures are not cached)", st.Errors)
	}
	if svc.Stats().CachedResults != 0 {
		t.Fatal("failed solves must not be cached")
	}
}

// TestParseHelpers pins the accepted strategy/preset names.
func TestParseHelpers(t *testing.T) {
	for name, want := range map[string]core.Strategy{
		"":                 core.StrategyQuantum,
		"quantum":          core.StrategyQuantum,
		"classical-search": core.StrategyClassicalSearch,
		"dolev":            core.StrategyDolev,
		"dolev-listing":    core.StrategyDolev,
		"gossip":           core.StrategyGossip,
	} {
		got, err := ParseStrategy(name)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseStrategy("warp"); err == nil {
		t.Error("unknown strategy must fail")
	}
	if p, err := ParsePreset("scaled"); err != nil || p != PresetScaled {
		t.Errorf("ParsePreset(scaled) = %v, %v", p, err)
	}
	if _, err := ParsePreset("huge"); err == nil {
		t.Error("unknown preset must fail")
	}
}
