package serve

// The strategy planner: given a graph's feature profile, a request's
// stretch budget and deadline, rank the registered strategies that can
// answer and pick one. The caller stops naming a pipeline ("quantum") and
// states constraints (strategy=auto, optionally epsilon and timeout_ms);
// the service chooses from the engine's capability/cost catalog, corrected
// by live telemetry. The planner only ever *selects* — a planned solve is
// bit-identical to requesting the chosen strategy explicitly, shares its
// cache entries, and the decision (with its predicted cost) is echoed so
// the prediction error can be accounted on /v1/metrics.
//
// The same candidate machinery feeds the degradation ladder and the
// overload-degrade path: fallback rungs are "every viable strategy with a
// strictly weaker stretch guarantee", ranked by guarantee — the rule the
// old hard-coded exact → approx-quantum → approx-skeleton rung list was a
// special case of.

import (
	"context"
	"fmt"
	"sort"
	"time"

	"qclique/internal/approx"
	"qclique/internal/core"
	"qclique/internal/engine"
	"qclique/internal/graph"
)

// plannerDefaultEpsilon is the stretch budget the planner assumes for a
// degradation rung when the original request carried none (an exact
// request has no ε of its own to hand to an approximate fallback).
const plannerDefaultEpsilon = 0.5

// PlanDecision records one planner choice for a strategy=auto request: the
// strategy it resolved to, why, and the cost it predicted — the prediction
// the error accounting on /v1/metrics is measured against.
type PlanDecision struct {
	// Strategy is the concrete strategy the request resolved to.
	Strategy string `json:"strategy"`
	// Reason is the human-readable decision rule that picked it.
	Reason string `json:"reason"`
	// Epsilon is the stretch budget the resolved solve runs under (0 when
	// an exact strategy was chosen).
	Epsilon float64 `json:"epsilon,omitempty"`
	// PredictedRounds/PredictedWallNs are the planner's cost prediction for
	// the chosen strategy on this graph.
	PredictedRounds int64 `json:"predicted_rounds"`
	PredictedWallNs int64 `json:"predicted_wall_ns"`
	// Live marks a prediction corrected by live telemetry (observed
	// ns-per-round) rather than taken from the static prior alone.
	Live bool `json:"live,omitempty"`
	// Candidates lists every viable strategy that competed, in ranked
	// order (the chosen one first).
	Candidates []string `json:"candidates,omitempty"`
}

// candidate is one viable strategy with its guarantee and predicted cost.
type candidate struct {
	enum      core.Strategy
	epsilon   float64
	guarantee float64
	predicted engine.CostPrior
	live      bool
}

// predict estimates one solve's cost: the catalog prior's round count
// (size-aware by construction), with the wall time corrected by the
// strategy's observed ns-per-round once live telemetry exists — rounds are
// deterministic per (strategy, input), so observed wall-per-round is the
// host-speed fact the static prior can only guess at.
func (s *Service) predict(strat engine.Strategy, f graph.Features, eps float64) (engine.CostPrior, bool) {
	prior, _ := engine.PredictCostOf(strat, f, eps)
	if npr, ok := s.stats.liveNsPerRound(strat.Name()); ok && prior.Rounds > 0 {
		wall := int64(float64(prior.Rounds) * npr)
		if wall < 1 {
			wall = 1
		}
		return engine.CostPrior{Rounds: prior.Rounds, WallNs: wall}, true
	}
	return prior, false
}

// rankCandidates returns every strategy viable for (f, eps), ranked best
// guarantee first (guarantee ascending, predicted wall ascending, name
// ascending). Approximate strategies compete only when the request carried
// a valid stretch budget and exactOnly is unset.
func (s *Service) rankCandidates(f graph.Features, eps float64, exactOnly bool) []candidate {
	var out []candidate
	for _, ce := range engine.Catalog() {
		enum, ok := core.StrategyByName(ce.Strategy.Name())
		if !ok || !ce.Capabilities.Viable(f) {
			continue
		}
		ceps := 0.0
		if ce.Capabilities.Approximate {
			if exactOnly || !approx.ValidEpsilon(eps) {
				continue
			}
			ceps = eps
		}
		pred, live := s.predict(ce.Strategy, f, ceps)
		out = append(out, candidate{
			enum:      enum,
			epsilon:   ceps,
			guarantee: ce.Strategy.Guarantee(ceps),
			predicted: pred,
			live:      live,
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.guarantee != b.guarantee {
			return a.guarantee < b.guarantee
		}
		if a.predicted.WallNs != b.predicted.WallNs {
			return a.predicted.WallNs < b.predicted.WallNs
		}
		return a.enum.String() < b.enum.String()
	})
	return out
}

// planSolve resolves a strategy=auto spec against the catalog: the
// best-guarantee viable candidate wins, except that a request deadline
// promotes the best-guarantee candidate predicted to finish inside it —
// the caller's epsilon states how much stretch they tolerate, the deadline
// decides whether spending it is necessary. The resolved spec is a spec
// any caller could have written by hand (same strategy, same epsilon),
// which is what keeps planned solves bit-identical and cache-shared with
// explicit ones.
func (s *Service) planSolve(ctx context.Context, feats graph.Features, spec SolveSpec) (SolveSpec, *PlanDecision, error) {
	exactOnly := spec.exactPlanning || spec.Epsilon == 0
	cands := s.rankCandidates(feats, spec.Epsilon, exactOnly)
	if len(cands) == 0 {
		return spec, nil, fmt.Errorf("%w: no registered strategy is viable for this graph", ErrInvalidSpec)
	}
	chosen := cands[0]
	reason := "best guarantee among viable strategies, cheapest predicted wall"
	if exactOnly {
		reason = "cheapest viable exact strategy (no stretch budget)"
		if spec.exactPlanning {
			reason = "cheapest viable exact strategy (path reconstruction requires exact distances)"
		}
	}
	if dl, ok := ctx.Deadline(); ok {
		remaining := time.Until(dl)
		fit := -1
		for i, c := range cands {
			if time.Duration(c.predicted.WallNs) <= remaining {
				fit = i
				break
			}
		}
		switch {
		case fit > 0:
			chosen = cands[fit]
			reason = fmt.Sprintf("best guarantee predicted to fit the %v deadline", remaining.Round(time.Millisecond))
		case fit < 0:
			// Nothing is predicted to finish in time; take the cheapest and
			// let the deadline/ladder machinery do its job.
			min := 0
			for i, c := range cands {
				if c.predicted.WallNs < cands[min].predicted.WallNs {
					min = i
				}
			}
			chosen = cands[min]
			reason = "no candidate predicted to fit the deadline: cheapest predicted wall"
		}
	}
	resolved := spec
	resolved.Strategy = chosen.enum
	resolved.Epsilon = chosen.epsilon
	names := make([]string, 0, len(cands))
	names = append(names, chosen.enum.String())
	for _, c := range cands {
		if c.enum != chosen.enum {
			names = append(names, c.enum.String())
		}
	}
	return resolved, &PlanDecision{
		Strategy:        chosen.enum.String(),
		Reason:          reason,
		Epsilon:         chosen.epsilon,
		PredictedRounds: chosen.predicted.Rounds,
		PredictedWallNs: chosen.predicted.WallNs,
		Live:            chosen.live,
		Candidates:      names,
	}, nil
}

// plannerFallbacks returns the degradation rungs below spec: every viable
// strategy with a strictly weaker stretch guarantee than the one requested,
// best fidelity first. For an exact request over a nonnegative symmetric
// graph this reproduces the classic approx-quantum → approx-skeleton
// ladder; the rule generalizes to any future catalog entry with no rung
// list to maintain. Rungs inherit the request's epsilon when it carried a
// valid one, plannerDefaultEpsilon otherwise.
func (s *Service) plannerFallbacks(spec SolveSpec, feats graph.Features) []SolveSpec {
	eps := spec.Epsilon
	if !approx.ValidEpsilon(eps) {
		eps = plannerDefaultEpsilon
	}
	cur := 1.0
	if st, ok := engine.Lookup(spec.strategy().String()); ok {
		cur = st.Guarantee(spec.Epsilon)
	}
	type fallback struct {
		enum      core.Strategy
		epsilon   float64
		guarantee float64
		wallNs    int64
	}
	var fbs []fallback
	for _, ce := range engine.Catalog() {
		enum, ok := core.StrategyByName(ce.Strategy.Name())
		if !ok || enum == spec.strategy() || !ce.Capabilities.Viable(feats) {
			continue
		}
		ceps := 0.0
		if ce.Capabilities.Approximate {
			ceps = eps
		}
		g := ce.Strategy.Guarantee(ceps)
		if g <= cur {
			continue
		}
		pred, _ := s.predict(ce.Strategy, feats, ceps)
		fbs = append(fbs, fallback{enum: enum, epsilon: ceps, guarantee: g, wallNs: pred.WallNs})
	}
	sort.SliceStable(fbs, func(i, j int) bool {
		a, b := fbs[i], fbs[j]
		if a.guarantee != b.guarantee {
			return a.guarantee < b.guarantee
		}
		if a.wallNs != b.wallNs {
			return a.wallNs < b.wallNs
		}
		return a.enum.String() < b.enum.String()
	})
	rungs := make([]SolveSpec, 0, len(fbs))
	for _, f := range fbs {
		rs := spec
		rs.Strategy = f.enum
		rs.Epsilon = f.epsilon
		rungs = append(rungs, rs)
	}
	return rungs
}

// estimateFor is the admission controller's service-time estimate for one
// executed solve of the named strategy: the live mean wall of its past
// executions, seeded from the catalog's cost prior before any observation
// exists — without the seed, deadline-aware shedding is blind exactly when
// the first expensive solve arrives (the cold-start blind spot).
func (s *Service) estimateFor(name string, feats graph.Features, eps float64) time.Duration {
	if d := s.stats.estimate(name); d > 0 {
		return d
	}
	if st, ok := engine.Lookup(name); ok {
		if prior, ok := engine.PredictCostOf(st, feats, eps); ok {
			return time.Duration(prior.WallNs)
		}
	}
	return 0
}

// CatalogEntry is one strategy's row in the strategy catalog (GET
// /v1/strategies and qclique.FormatStrategyList): the registry's static
// capability declaration, plus — on Service.Catalog — the live telemetry
// the planner corrects its priors with.
type CatalogEntry struct {
	// Name is the canonical registry name.
	Name string `json:"name"`
	// Guarantee renders the stretch contract: "exact", "1+ε", "2+ε".
	Guarantee string `json:"guarantee"`
	// Approximate/RejectsNegative/NeedsSymmetric mirror the strategy's
	// declared capabilities.
	Approximate     bool `json:"approximate"`
	RejectsNegative bool `json:"rejects_negative,omitempty"`
	NeedsSymmetric  bool `json:"needs_symmetric,omitempty"`
	// MinEpsilon/MaxEpsilon bound the accepted stretch budget (absent for
	// exact strategies).
	MinEpsilon float64 `json:"min_epsilon,omitempty"`
	MaxEpsilon float64 `json:"max_epsilon,omitempty"`
	// Solves/MeanWallNs/MeanRounds are the live per-strategy telemetry of
	// this service instance (zero before the first executed solve; absent
	// in the static CatalogEntries view).
	Solves     int64 `json:"solves,omitempty"`
	MeanWallNs int64 `json:"mean_wall_ns,omitempty"`
	MeanRounds int64 `json:"mean_rounds,omitempty"`
}

// guaranteeLabel renders a strategy's stretch contract independent of any
// particular budget.
func guaranteeLabel(st engine.Strategy) string {
	if !st.Approximate() {
		return "exact"
	}
	// Guarantee(1) − 1 recovers the additive base of a "base+ε" contract.
	return fmt.Sprintf("%g+ε", st.Guarantee(1)-1)
}

// CatalogEntries returns the static strategy catalog — every registered
// strategy with its guarantee and capabilities, sorted by name. It is the
// shared source behind GET /v1/strategies and qclique.FormatStrategyList.
func CatalogEntries() []CatalogEntry {
	cat := engine.Catalog()
	out := make([]CatalogEntry, len(cat))
	for i, ce := range cat {
		out[i] = CatalogEntry{
			Name:            ce.Strategy.Name(),
			Guarantee:       guaranteeLabel(ce.Strategy),
			Approximate:     ce.Capabilities.Approximate,
			RejectsNegative: ce.Capabilities.RejectsNegative,
			NeedsSymmetric:  ce.Capabilities.NeedsSymmetric,
			MinEpsilon:      ce.Capabilities.MinEpsilon,
			MaxEpsilon:      ce.Capabilities.MaxEpsilon,
		}
	}
	return out
}

// Catalog returns the strategy catalog with this service's live telemetry
// folded in: executed solves and mean wall/rounds per strategy.
func (s *Service) Catalog() []CatalogEntry {
	out := CatalogEntries()
	for i := range out {
		solves, meanWall, meanRounds := s.stats.meanCost(out[i].Name)
		out[i].Solves = solves
		out[i].MeanWallNs = meanWall
		out[i].MeanRounds = meanRounds
	}
	return out
}
