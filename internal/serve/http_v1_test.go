package serve

// Versioned-mount and transport-selection coverage of the HTTP surface:
// the /v1 prefix answers without deprecation noise, the legacy unprefixed
// aliases still work but advertise their successor, the transport request
// parameter reaches the simulator and is echoed (and rolled up in
// /metrics), and concurrent sharded solves are race-clean.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestHTTPV1PrefixAndLegacyAliases(t *testing.T) {
	svc := New(Config{})
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	g := symDigraph(t, 8)
	gj := GraphJSON{N: g.N()}
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if w, ok := g.Weight(u, v); ok {
				gj.Arcs = append(gj.Arcs, ArcJSON{U: u, V: v, W: w})
			}
		}
	}

	// The versioned mount answers without deprecation headers.
	var put struct {
		ID string `json:"id"`
	}
	resp := doJSON(t, srv, http.MethodPut, "/v1/graphs", gj, &put)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT /v1/graphs: %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "" {
		t.Error("/v1 route answered with a Deprecation header")
	}

	// The legacy alias answers identically (same content id) but marks
	// itself deprecated and links its successor.
	var legacy struct {
		ID string `json:"id"`
	}
	resp = doJSON(t, srv, http.MethodPut, "/graphs", gj, &legacy)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT /graphs (legacy): %d", resp.StatusCode)
	}
	if legacy.ID != put.ID {
		t.Errorf("legacy upload id %q != /v1 id %q", legacy.ID, put.ID)
	}
	if resp.Header.Get("Deprecation") != "true" {
		t.Error("legacy route missing Deprecation: true")
	}
	if link := resp.Header.Get("Link"); !strings.Contains(link, "</v1/graphs>") ||
		!strings.Contains(link, `rel="successor-version"`) {
		t.Errorf("legacy route Link header %q missing successor-version pointer", link)
	}

	// A solve on the versioned mount with an explicit transport echoes the
	// backend that executed it. Quantum materializes its exchanges, so the
	// per-transport rollup must show delivered traffic.
	var sj SolveJSON
	resp = doJSON(t, srv, http.MethodPost, "/v1/graphs/"+put.ID+"/solve",
		solveParamsJSON{Strategy: "quantum", Transport: "sharded"}, &sj)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sharded solve: %d", resp.StatusCode)
	}
	if sj.Transport != "sharded" {
		t.Errorf("solve echoed transport %q, want sharded", sj.Transport)
	}

	// An unknown transport is a 400 with the invalid_spec envelope.
	var fail struct {
		Error ErrorJSON `json:"error"`
	}
	resp = doJSON(t, srv, http.MethodPost, "/v1/graphs/"+put.ID+"/solve",
		solveParamsJSON{Strategy: "gossip", Transport: "carrier-pigeon"}, &fail)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown transport: %d, want 400", resp.StatusCode)
	}
	if fail.Error.Code != "invalid_spec" || !strings.Contains(fail.Error.Message, "carrier-pigeon") {
		t.Errorf("unknown-transport envelope: %+v", fail.Error)
	}
	if fail.Error.Retryable {
		t.Error("invalid_spec marked retryable")
	}

	// The metrics rollup names the backend that ran.
	var stats Stats
	if resp := doJSON(t, srv, http.MethodGet, "/v1/metrics", nil, &stats); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/metrics: %d", resp.StatusCode)
	}
	u, ok := stats.Transports["sharded"]
	if !ok {
		t.Fatalf("metrics missing sharded transport rollup: %+v", stats.Transports)
	}
	if u.Solves != 1 || u.Deliveries == 0 || u.Messages == 0 {
		t.Errorf("sharded usage %+v, want 1 solve with traffic", u)
	}
}

// TestHTTPConcurrentShardedSolves exercises the sharded backend from many
// goroutines at once (distinct specs, so singleflight cannot collapse
// them) — the race detector is the assertion.
func TestHTTPConcurrentShardedSolves(t *testing.T) {
	svc := New(Config{})
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	var ids [2]string
	for i := range ids {
		g := testDigraph(t, 16, uint64(i+1))
		id, err := svc.PutGraph(g)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	// Raw requests rather than doJSON: its t.Fatal calls are not legal off
	// the test goroutine.
	solve := func(id, strat string) string {
		body := strings.NewReader(`{"strategy":"` + strat + `","transport":"sharded"}`)
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/graphs/"+id+"/solve", body)
		if err != nil {
			return strat + ": " + err.Error()
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			return strat + ": " + err.Error()
		}
		defer resp.Body.Close()
		var sj SolveJSON
		if err := json.NewDecoder(resp.Body).Decode(&sj); err != nil {
			return strat + ": " + err.Error()
		}
		if resp.StatusCode != http.StatusOK {
			return strat + ": status " + resp.Status
		}
		if sj.Transport != "sharded" {
			return strat + ": transport " + sj.Transport
		}
		return ""
	}

	strategies := []string{"gossip", "quantum", "classical-search", "dolev"}
	var wg sync.WaitGroup
	errs := make(chan string, len(ids)*len(strategies))
	for _, id := range ids {
		for _, strat := range strategies {
			wg.Add(1)
			go func(id, strat string) {
				defer wg.Done()
				if e := solve(id, strat); e != "" {
					errs <- e
				}
			}(id, strat)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
