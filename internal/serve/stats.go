package serve

import "sync"

// StrategyStats is the per-strategy request accounting of a Service.
type StrategyStats struct {
	// Requests counts solve requests (library Solve calls plus daemon
	// solve/dist/batch endpoints that needed a result).
	Requests int64 `json:"requests"`
	// CacheHits counts requests served from the LRU without running the
	// simulator.
	CacheHits int64 `json:"cache_hits"`
	// Deduped counts requests that piggybacked on a concurrent identical
	// solve (singleflight followers).
	Deduped int64 `json:"deduped"`
	// Solves counts actual simulator executions.
	Solves int64 `json:"solves"`
	// Errors counts failed executions (e.g. negative cycles).
	Errors int64 `json:"errors"`
	// RoundsCharged totals the simulated CONGEST-CLIQUE rounds across all
	// executions; cache hits and deduped requests charge nothing here.
	RoundsCharged int64 `json:"rounds_charged"`
}

// Stats is a point-in-time snapshot of a Service's accounting.
type Stats struct {
	// Graphs is the number of graphs in the store.
	Graphs int `json:"graphs"`
	// CachedResults is the number of solve results currently retained.
	CachedResults int `json:"cached_results"`
	// PathQueries counts individual path queries answered (batch members
	// included).
	PathQueries int64 `json:"path_queries"`
	// Strategies maps strategy name to its accounting.
	Strategies map[string]StrategyStats `json:"strategies"`
}

type statsCollector struct {
	mu          sync.Mutex
	pathQueries int64
	byStrategy  map[string]*StrategyStats
}

func newStatsCollector() *statsCollector {
	return &statsCollector{byStrategy: make(map[string]*StrategyStats)}
}

func (s *statsCollector) forStrategy(name string) *StrategyStats {
	st, ok := s.byStrategy[name]
	if !ok {
		st = &StrategyStats{}
		s.byStrategy[name] = st
	}
	return st
}

func (s *statsCollector) request(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.forStrategy(name).Requests++
}

func (s *statsCollector) hit(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.forStrategy(name).CacheHits++
}

func (s *statsCollector) deduped(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.forStrategy(name).Deduped++
}

func (s *statsCollector) solved(name string, rounds int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.forStrategy(name)
	st.Solves++
	st.RoundsCharged += rounds
}

func (s *statsCollector) failed(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.forStrategy(name).Errors++
}

func (s *statsCollector) pathQueriesAdd(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pathQueries += int64(n)
}

func (s *statsCollector) snapshot(graphs, cached int) Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Stats{
		Graphs:        graphs,
		CachedResults: cached,
		PathQueries:   s.pathQueries,
		Strategies:    make(map[string]StrategyStats, len(s.byStrategy)),
	}
	for name, st := range s.byStrategy {
		out.Strategies[name] = *st
	}
	return out
}
