package serve

import (
	"sync"
	"time"

	"qclique/internal/congest"
	"qclique/internal/core"
)

// StageStats is the cumulative per-stage accounting of one strategy's
// executed solves: how often the stage ran, the rounds and words it
// charged, and the wall time it consumed. It is the serving-layer rollup
// of the engine's per-solve stage telemetry.
type StageStats struct {
	// Runs counts solves in which the stage actually ran (skipped stages
	// are excluded).
	Runs int64 `json:"runs"`
	// Rounds totals the simulated rounds the stage charged.
	Rounds int64 `json:"rounds"`
	// Words totals the words the stage moved.
	Words int64 `json:"words"`
	// WallNs totals the host wall-clock time spent in the stage.
	WallNs int64 `json:"wall_ns"`
}

// StrategyStats is the per-strategy request accounting of a Service.
type StrategyStats struct {
	// Requests counts solve requests (library Solve calls plus daemon
	// solve/dist/batch endpoints that needed a result).
	Requests int64 `json:"requests"`
	// CacheHits counts requests served from the LRU without running the
	// simulator.
	CacheHits int64 `json:"cache_hits"`
	// Deduped counts requests that piggybacked on a concurrent identical
	// solve (singleflight followers).
	Deduped int64 `json:"deduped"`
	// Solves counts actual simulator executions.
	Solves int64 `json:"solves"`
	// Errors counts failed executions (e.g. negative cycles).
	Errors int64 `json:"errors"`
	// Cancelled counts executions stopped by their context (request
	// deadline or client disconnect) before completing.
	Cancelled int64 `json:"cancelled,omitempty"`
	// FaultFailures counts executions that exhausted their stage-retry
	// budget on unrecovered injected faults.
	FaultFailures int64 `json:"fault_failures,omitempty"`
	// Retries totals the stage re-runs spent recovering from injected
	// faults, across successful and failed executions.
	Retries int64 `json:"retries,omitempty"`
	// Degraded counts requests to this strategy that the degradation ladder
	// answered with a fallback rung.
	Degraded int64 `json:"degraded,omitempty"`
	// BreakerSkips counts solves refused because this strategy's circuit
	// breaker was open.
	BreakerSkips int64 `json:"breaker_skips,omitempty"`
	// Faults is the cumulative injected-fault accounting across this
	// strategy's executions (successful and fault-failed alike).
	Faults congest.FaultCounters `json:"faults"`
	// RoundsCharged totals the simulated CONGEST-CLIQUE rounds across all
	// executions; cache hits and deduped requests charge nothing here.
	RoundsCharged int64 `json:"rounds_charged"`
	// SolveWallNs totals the host wall-clock time of completed executions;
	// SolveWallNs/Solves is the service-time estimate the admission
	// controller's deadline-aware shedding uses.
	SolveWallNs int64 `json:"solve_wall_ns,omitempty"`
	// Stages is the cumulative per-stage breakdown across this strategy's
	// executed solves, keyed by stage name.
	Stages map[string]StageStats `json:"stages,omitempty"`
}

// TransportUsage is the per-transport rollup of executed solves: which
// delivery backend ran, how often, and the traffic it moved. Cache hits and
// deduplicated requests execute nothing and contribute nothing here.
type TransportUsage struct {
	// Solves counts simulator executions on this backend (fault-failed
	// partial runs included — their traffic was moved).
	Solves int64 `json:"solves"`
	// Shards is the largest worker-shard count observed (1 for local).
	Shards int `json:"shards"`
	// Deliveries/Messages count communication phases with materialized
	// payloads and the messages they moved.
	Deliveries int64 `json:"deliveries"`
	Messages   int64 `json:"messages"`
	// IntraShard/CrossShard split Messages by shard locality; Flushes
	// counts inter-shard batch-buffer flushes. All zero on local.
	IntraShard int64 `json:"intra_shard"`
	CrossShard int64 `json:"cross_shard"`
	Flushes    int64 `json:"flushes"`
}

// AdmissionStats is the service-level overload accounting: the admission
// controller's configuration and gauges, plus the cumulative counters of
// the overload-resilience layer.
type AdmissionStats struct {
	// MaxInflight/QueueDepth echo the configured caps (0 = unbounded).
	MaxInflight int `json:"max_inflight,omitempty"`
	QueueDepth  int `json:"queue_depth,omitempty"`
	// Inflight/QueuedNow are point-in-time gauges of executing and queued
	// solves; Draining reports a closed admission gate (shutdown underway).
	Inflight  int  `json:"inflight"`
	QueuedNow int  `json:"queued_now"`
	Draining  bool `json:"draining,omitempty"`
	// Queued counts requests that had to wait for a slot; QueueWaitNs
	// totals the wall time admitted requests spent waiting.
	Queued      int64 `json:"queued"`
	QueueWaitNs int64 `json:"queue_wait_ns"`
	// Shed counts requests refused with an OverloadError (queue overflow,
	// hopeless deadline, or draining) — never counted in Cancelled.
	Shed int64 `json:"shed"`
	// OverloadDegraded counts requests the overload monitor routed down the
	// degradation ladder (degrade_reason "overload").
	OverloadDegraded int64 `json:"overload_degraded"`
	// PanicsRecovered counts panicking solves and handlers converted into
	// 500 "internal" envelopes instead of daemon crashes.
	PanicsRecovered int64 `json:"panics_recovered"`
}

// PlannerStats is the strategy planner's accounting: how often it decided,
// what it chose, and — for decisions whose planned solve actually executed
// — the cumulative prediction error, predicted vs observed, on both the
// rounds and wall axes. A planner whose error keeps growing relative to its
// observed totals is mispredicting ("Mind the Õ": the point of recording
// the error is to notice).
type PlannerStats struct {
	// Decisions counts strategy=auto requests the planner resolved.
	Decisions int64 `json:"decisions"`
	// Chosen maps strategy name to how often the planner picked it.
	Chosen map[string]int64 `json:"chosen,omitempty"`
	// ObservedSolves counts decisions whose planned solve ran to completion
	// (cache hits and degraded answers yield no observation).
	ObservedSolves int64 `json:"observed_solves"`
	// PredictedRounds/ObservedRounds/RoundsErrorAbs accumulate, over
	// observed solves, the predicted round counts, the observed ones, and
	// the absolute prediction error |predicted − observed|.
	PredictedRounds int64 `json:"predicted_rounds"`
	ObservedRounds  int64 `json:"observed_rounds"`
	RoundsErrorAbs  int64 `json:"rounds_error_abs"`
	// PredictedWallNs/ObservedWallNs/WallErrorNsAbs are the same accounting
	// on the wall-clock axis.
	PredictedWallNs int64 `json:"predicted_wall_ns"`
	ObservedWallNs  int64 `json:"observed_wall_ns"`
	WallErrorNsAbs  int64 `json:"wall_error_ns_abs"`
}

// Stats is a point-in-time snapshot of a Service's accounting.
type Stats struct {
	// Graphs is the number of graphs in the store.
	Graphs int `json:"graphs"`
	// CachedResults is the number of solve results currently retained.
	CachedResults int `json:"cached_results"`
	// PathQueries counts individual path queries answered (batch members
	// included).
	PathQueries int64 `json:"path_queries"`
	// Admission is the overload-resilience accounting.
	Admission AdmissionStats `json:"admission"`
	// Strategies maps strategy name to its accounting.
	Strategies map[string]StrategyStats `json:"strategies"`
	// Transports maps delivery-backend name to its execution rollup.
	Transports map[string]TransportUsage `json:"transports,omitempty"`
	// Planner is the strategy planner's decision and prediction-error
	// accounting (nil until the first strategy=auto request).
	Planner *PlannerStats `json:"planner,omitempty"`
}

type statsCollector struct {
	mu               sync.Mutex
	pathQueries      int64
	overloadDegrades int64
	panics           int64
	planner          PlannerStats
	byStrategy       map[string]*StrategyStats
	byTransport      map[string]*TransportUsage
}

func newStatsCollector() *statsCollector {
	return &statsCollector{
		byStrategy:  make(map[string]*StrategyStats),
		byTransport: make(map[string]*TransportUsage),
	}
}

// addTransport rolls a run's delivery-backend accounting into the
// per-transport usage map. Caller holds the mutex.
func (s *statsCollector) addTransport(ts congest.TransportStats) {
	if ts.Transport == "" {
		return
	}
	u, ok := s.byTransport[ts.Transport]
	if !ok {
		u = &TransportUsage{}
		s.byTransport[ts.Transport] = u
	}
	u.Solves++
	if ts.Shards > u.Shards {
		u.Shards = ts.Shards
	}
	u.Deliveries += ts.Deliveries
	u.Messages += ts.Messages
	u.IntraShard += ts.IntraShard
	u.CrossShard += ts.CrossShard
	u.Flushes += ts.Flushes
}

func (s *statsCollector) forStrategy(name string) *StrategyStats {
	st, ok := s.byStrategy[name]
	if !ok {
		st = &StrategyStats{}
		s.byStrategy[name] = st
	}
	return st
}

func (s *statsCollector) request(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.forStrategy(name).Requests++
}

func (s *statsCollector) hit(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.forStrategy(name).CacheHits++
}

func (s *statsCollector) deduped(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.forStrategy(name).Deduped++
}

func (s *statsCollector) solved(name string, res *core.Result, wall time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.forStrategy(name)
	st.Solves++
	st.RoundsCharged += res.Rounds
	st.SolveWallNs += wall.Nanoseconds()
	st.addFaults(res)
	st.addStages(res)
	s.addTransport(res.Transport)
}

// estimate returns the likely service time of one executed solve of the
// strategy — the mean wall time of its past completed executions, 0 with no
// history (the admission controller then sheds only already-hopeless
// deadlines). Deliberately coarse: a daemon mostly serves similarly-sized
// graphs, and an estimate only gates what happens to an already-saturated
// queue.
func (s *statsCollector) estimate(name string) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.byStrategy[name]
	if !ok || st.Solves == 0 {
		return 0
	}
	return time.Duration(st.SolveWallNs / st.Solves)
}

// liveNsPerRound returns the strategy's observed wall-per-round ratio —
// the host-speed correction the planner applies to its size-aware round
// priors — or ok=false before the first completed execution.
func (s *statsCollector) liveNsPerRound(name string) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.byStrategy[name]
	if !ok || st.Solves == 0 || st.RoundsCharged <= 0 {
		return 0, false
	}
	return float64(st.SolveWallNs) / float64(st.RoundsCharged), true
}

// meanCost returns the strategy's executed-solve count and mean
// wall/rounds per execution (all zero before the first one) — the live
// half of the strategy catalog.
func (s *statsCollector) meanCost(name string) (solves, meanWallNs, meanRounds int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.byStrategy[name]
	if !ok || st.Solves == 0 {
		return 0, 0, 0
	}
	return st.Solves, st.SolveWallNs / st.Solves, st.RoundsCharged / st.Solves
}

// plannerDecision records one resolved strategy=auto request.
func (s *statsCollector) plannerDecision(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.planner.Decisions++
	if s.planner.Chosen == nil {
		s.planner.Chosen = make(map[string]int64)
	}
	s.planner.Chosen[name]++
}

// plannerObserved folds one completed planned solve into the prediction-
// error accounting: predicted vs observed rounds and wall.
func (s *statsCollector) plannerObserved(predictedRounds, predictedWallNs, rounds int64, wall time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := &s.planner
	p.ObservedSolves++
	p.PredictedRounds += predictedRounds
	p.ObservedRounds += rounds
	p.RoundsErrorAbs += abs64(predictedRounds - rounds)
	p.PredictedWallNs += predictedWallNs
	p.ObservedWallNs += wall.Nanoseconds()
	p.WallErrorNsAbs += abs64(predictedWallNs - wall.Nanoseconds())
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// addFaults rolls a solve's injected-fault and retry telemetry into the
// strategy's cumulative accounting (also called for fault-failed solves,
// whose partial result still carries the counters).
func (st *StrategyStats) addFaults(res *core.Result) {
	st.Faults.Add(res.Metrics.Faults)
	for _, sg := range res.Stages {
		st.Retries += int64(sg.Retries)
	}
}

// addStages rolls a solve's per-stage telemetry into the strategy's
// cumulative stage accounting.
func (st *StrategyStats) addStages(res *core.Result) {
	if len(res.Stages) == 0 {
		return
	}
	if st.Stages == nil {
		st.Stages = make(map[string]StageStats, len(res.Stages))
	}
	for _, sg := range res.Stages {
		if sg.Skipped {
			continue
		}
		agg := st.Stages[sg.Name]
		agg.Runs++
		agg.Rounds += sg.Rounds
		agg.Words += sg.Words
		agg.WallNs += sg.WallNs
		st.Stages[sg.Name] = agg
	}
}

func (s *statsCollector) failed(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.forStrategy(name).Errors++
}

func (s *statsCollector) cancelled(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.forStrategy(name).Cancelled++
}

// faultFailure records a retry-budget exhaustion, folding in the partial
// run's fault and retry counters.
func (s *statsCollector) faultFailure(name string, res *core.Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.forStrategy(name)
	st.FaultFailures++
	if res != nil {
		st.RoundsCharged += res.Rounds
		st.addFaults(res)
		s.addTransport(res.Transport)
	}
}

func (s *statsCollector) degraded(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.forStrategy(name).Degraded++
}

func (s *statsCollector) breakerSkip(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.forStrategy(name).BreakerSkips++
}

// overloadDegraded records one request the overload monitor routed down the
// degradation ladder.
func (s *statsCollector) overloadDegraded() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.overloadDegrades++
}

// panicRecovered records one panicking solve or handler converted into an
// error instead of a daemon crash.
func (s *statsCollector) panicRecovered() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.panics++
}

// overloadCounters returns the collector-owned halves of AdmissionStats.
func (s *statsCollector) overloadCounters() (overloadDegraded, panicsRecovered int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.overloadDegrades, s.panics
}

func (s *statsCollector) pathQueriesAdd(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pathQueries += int64(n)
}

func (s *statsCollector) snapshot(graphs, cached int) Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Stats{
		Graphs:        graphs,
		CachedResults: cached,
		PathQueries:   s.pathQueries,
		Strategies:    make(map[string]StrategyStats, len(s.byStrategy)),
	}
	for name, st := range s.byStrategy {
		cp := *st
		if st.Stages != nil {
			// Deep-copy the stage map: the snapshot must not alias the
			// collector's mutable state.
			cp.Stages = make(map[string]StageStats, len(st.Stages))
			for k, v := range st.Stages {
				cp.Stages[k] = v
			}
		}
		out.Strategies[name] = cp
	}
	if len(s.byTransport) > 0 {
		out.Transports = make(map[string]TransportUsage, len(s.byTransport))
		for name, u := range s.byTransport {
			out.Transports[name] = *u
		}
	}
	if s.planner.Decisions > 0 {
		p := s.planner
		// Deep-copy the chosen map: the snapshot must not alias the
		// collector's mutable state.
		p.Chosen = make(map[string]int64, len(s.planner.Chosen))
		for k, v := range s.planner.Chosen {
			p.Chosen[k] = v
		}
		out.Planner = &p
	}
	return out
}
