package serve

// Per-strategy circuit breaker: a strategy whose solves keep exhausting
// their fault-retry budgets is marked open for a cooldown, during which the
// service answers (or ladders past) it immediately instead of burning a
// full pipeline run per request. Only unrecovered-fault exhaustion trips
// the breaker — protocol errors (negative cycles, bad specs) say nothing
// about the transport's health, and cancellations belong to the caller.

import (
	"fmt"
	"sync"
	"time"
)

const (
	defaultBreakerThreshold = 3
	defaultBreakerCooldown  = 30 * time.Second
)

// BreakerOpenError reports a solve refused because the strategy's circuit
// breaker is open. The HTTP layer maps it to 503 with a Retry-After header;
// the degradation ladder treats it like retry exhaustion and falls through
// to the next rung.
type BreakerOpenError struct {
	// Strategy is the refused strategy's canonical name.
	Strategy string
	// RetryAfter is the remaining cooldown.
	RetryAfter time.Duration
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("serve: circuit breaker open for strategy %q (retry after %s)", e.Strategy, e.RetryAfter.Round(time.Millisecond))
}

// breaker tracks consecutive fault failures per strategy. threshold
// consecutive failures open the circuit for cooldown; any success closes
// it. The clock is injectable for tests.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time
	states    map[string]*breakerState
}

type breakerState struct {
	fails     int
	openUntil time.Time
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold <= 0 {
		threshold = defaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = defaultBreakerCooldown
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now, states: make(map[string]*breakerState)}
}

// allow reports whether a solve on name may proceed; when the circuit is
// open it returns the remaining cooldown. A circuit whose cooldown has
// elapsed closes (half-open would add little over re-counting to the
// threshold: the simulator has no partial-probe cheaper than a solve).
func (b *breaker) allow(name string) (time.Duration, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st, ok := b.states[name]
	if !ok {
		return 0, true
	}
	if remaining := st.openUntil.Sub(b.now()); remaining > 0 {
		return remaining, false
	}
	if !st.openUntil.IsZero() {
		// Cooldown elapsed: close and start counting afresh.
		st.openUntil = time.Time{}
		st.fails = 0
	}
	return 0, true
}

// failure records one fault-retry exhaustion; the threshold-th consecutive
// one opens the circuit.
func (b *breaker) failure(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st, ok := b.states[name]
	if !ok {
		st = &breakerState{}
		b.states[name] = st
	}
	st.fails++
	if st.fails >= b.threshold {
		st.openUntil = b.now().Add(b.cooldown)
	}
}

// success closes the circuit and resets the consecutive-failure count.
func (b *breaker) success(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if st, ok := b.states[name]; ok {
		st.fails = 0
		st.openUntil = time.Time{}
	}
}
