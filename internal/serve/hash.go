package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"

	"qclique/internal/graph"
)

// HashDigraph returns the content identity of g: a SHA-256 over the vertex
// count and the dense row-major weight matrix. Two graphs share an id iff
// they have identical vertex labels and arc weights — isomorphic but
// relabeled graphs hash differently on purpose, since APSP output is
// label-addressed.
func HashDigraph(g *graph.Digraph) string {
	h := sha256.New()
	n := g.N()
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(n))
	h.Write(hdr[:])
	// One reused row buffer: this runs on every Solver call (content
	// identity is recomputed per request), so per-row allocations would
	// turn cache hits into O(n²) garbage.
	buf := make([]byte, 8*n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			w, _ := g.Weight(u, v) // absent arcs hash as the NoEdge sentinel
			binary.LittleEndian.PutUint64(buf[8*v:], uint64(w))
		}
		h.Write(buf)
	}
	return "sha256:" + hex.EncodeToString(h.Sum(nil))
}
