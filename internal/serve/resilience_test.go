package serve

// The resilience suite: fault plans in the cache identity, the graceful-
// degradation ladder (forced fallback via a spent transient-outage budget,
// constraint-aware rung selection, breaker-open fallback), and the
// per-strategy circuit breaker with an injected clock.

import (
	"errors"
	"testing"
	"time"

	"qclique/internal/congest"
	"qclique/internal/core"
	"qclique/internal/graph"
)

// symDigraph builds a weight-symmetric nonnegative graph (a weighted ring
// with chords) — the input class every ladder rung accepts.
func symDigraph(t *testing.T, n int) *graph.Digraph {
	t.Helper()
	g := graph.NewDigraph(n)
	set := func(u, v int, w int64) {
		if err := g.SetArc(u, v, w); err != nil {
			t.Fatal(err)
		}
		if err := g.SetArc(v, u, w); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		set(i, (i+1)%n, int64(1+i%3))
	}
	for i := 0; i+3 < n; i += 3 {
		set(i, i+3, 7)
	}
	return g
}

// outagePlan deterministically fails every phase attempt until budget
// unrecovered faults have been injected, then goes quiet — the transient
// outage the ladder tests ride on.
func outagePlan(budget int) congest.FaultPlan {
	return congest.FaultPlan{Seed: 7, CorruptRate: 1, MaxFaults: budget}
}

func TestForcedFallbackLadder(t *testing.T) {
	s := New(Config{})
	g := symDigraph(t, 8)
	// The quantum rung retries 4 times (5 attempts), each attempt absorbing
	// one corruption: a 5-fault outage exhausts exactly the primary rung,
	// and the threaded budget leaves the fallback rung fault-free.
	res, err := s.SolveGraph(g, SolveSpec{Strategy: core.StrategyQuantum, Degrade: true, Faults: outagePlan(5)})
	if err != nil {
		t.Fatalf("ladder did not absorb the outage: %v", err)
	}
	if !res.Degraded || res.DegradedFrom != core.StrategyQuantum || res.DegradeReason != "retries-exhausted" {
		t.Fatalf("degradation not reported: %+v", res)
	}
	if res.Res.Strategy != core.StrategyApproxQuantum {
		t.Fatalf("fallback rung = %v, want approx-quantum", res.Res.Strategy)
	}
	if res.Res.GuaranteedStretch != 1+plannerDefaultEpsilon {
		t.Errorf("guaranteed stretch = %v, want %v", res.Res.GuaranteedStretch, 1+plannerDefaultEpsilon)
	}
	if res.Res.Dist == nil {
		t.Fatal("degraded result has no distances")
	}
	// The degraded distances respect the rung's stretch contract.
	exact, err := core.Solve(symDigraph(t, 8), core.Config{Strategy: core.StrategyGossip})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			d, e := res.Res.Dist.At(i, j), exact.Dist.At(i, j)
			if d < e || float64(d) > res.Res.GuaranteedStretch*float64(e) {
				t.Fatalf("dist[%d][%d] = %d violates stretch vs exact %d", i, j, d, e)
			}
		}
	}
	st := s.Stats().Strategies
	if st["quantum"].FaultFailures != 1 || st["quantum"].Degraded != 1 {
		t.Errorf("quantum stats: %+v", st["quantum"])
	}
	if st["approx-quantum"].Solves != 1 {
		t.Errorf("approx-quantum stats: %+v", st["approx-quantum"])
	}
	if st["quantum"].Faults.Corrupted != 5 {
		t.Errorf("quantum fault counters: %+v", st["quantum"].Faults)
	}
}

func TestLadderRespectsGraphConstraints(t *testing.T) {
	s := New(Config{})
	// A graph with a negative arc has no approximate rung: the ladder is
	// just the primary, and exhaustion surfaces as the typed error.
	g := graph.NewDigraph(4)
	for i := 0; i < 4; i++ {
		if err := g.SetArc(i, (i+1)%4, 2); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.SetArc(0, 2, -1); err != nil {
		t.Fatal(err)
	}
	_, err := s.SolveGraph(g, SolveSpec{Strategy: core.StrategyQuantum, Degrade: true, Faults: outagePlan(0)})
	var fx *FaultExhaustedError
	if !errors.As(err, &fx) {
		t.Fatalf("want FaultExhaustedError, got %v", err)
	}
	var fe *congest.FaultError
	if !errors.As(err, &fe) {
		t.Error("FaultError chain broken by the wrapper")
	}
	if fx.Faults.Corrupted == 0 || len(fx.Stages) == 0 {
		t.Errorf("partial telemetry missing: %+v", fx)
	}

	// Asymmetric nonnegative weights reach approx-quantum but never the
	// skeleton rung: a 10-fault outage exhausts quantum (5) and
	// approx-quantum (5), and no third rung exists.
	asym := graph.NewDigraph(6)
	for i := 0; i < 6; i++ {
		if err := asym.SetArc(i, (i+1)%6, int64(1+i)); err != nil {
			t.Fatal(err)
		}
	}
	_, err = s.SolveGraph(asym, SolveSpec{Strategy: core.StrategyQuantum, Degrade: true, Faults: outagePlan(10)})
	if !errors.As(err, &fx) {
		t.Fatalf("asymmetric ladder: want FaultExhaustedError, got %v", err)
	}
	// ...while a symmetric graph survives the same outage via the skeleton.
	res, err := s.SolveGraph(symDigraph(t, 8), SolveSpec{Strategy: core.StrategyQuantum, Degrade: true, Faults: outagePlan(10)})
	if err != nil {
		t.Fatalf("symmetric ladder under 10-fault outage: %v", err)
	}
	if res.Res.Strategy != core.StrategyApproxSkeleton || res.Res.GuaranteedStretch != 2+plannerDefaultEpsilon {
		t.Fatalf("bottom rung = %v (stretch %v), want approx-skeleton at %v",
			res.Res.Strategy, res.Res.GuaranteedStretch, 2+plannerDefaultEpsilon)
	}
}

func TestBreakerOpensAndCoolsDown(t *testing.T) {
	s := New(Config{BreakerThreshold: 2, BreakerCooldown: time.Minute})
	now := time.Unix(1000, 0)
	s.breaker.now = func() time.Time { return now }
	g := symDigraph(t, 8)
	spec := SolveSpec{Strategy: core.StrategyQuantum, Faults: congest.FaultPlan{Seed: 3, CorruptRate: 1}}
	var fx *FaultExhaustedError
	for i := 0; i < 2; i++ {
		if _, err := s.SolveGraph(g, spec); !errors.As(err, &fx) {
			t.Fatalf("solve %d: want FaultExhaustedError, got %v", i+1, err)
		}
	}
	// Threshold reached: the next solve is refused without running.
	_, err := s.SolveGraph(g, spec)
	var be *BreakerOpenError
	if !errors.As(err, &be) {
		t.Fatalf("want BreakerOpenError, got %v", err)
	}
	if be.Strategy != "quantum" || be.RetryAfter <= 0 {
		t.Errorf("breaker error: %+v", be)
	}
	if got := s.Stats().Strategies["quantum"]; got.BreakerSkips != 1 || got.Requests != 2 {
		t.Errorf("breaker-skip accounting: %+v", got)
	}
	// An open breaker with a fault-free spec and degradation on falls
	// through to the next rung and reports why.
	res, err := s.SolveGraph(g, SolveSpec{Strategy: core.StrategyQuantum, Degrade: true})
	if err != nil {
		t.Fatalf("ladder under open breaker: %v", err)
	}
	if !res.Degraded || res.DegradeReason != "breaker-open" || res.Res.Strategy != core.StrategyApproxQuantum {
		t.Fatalf("breaker fallback: %+v", res)
	}
	// Cooldown elapses: the circuit closes and the strategy runs again.
	now = now.Add(2 * time.Minute)
	res, err = s.SolveGraph(g, SolveSpec{Strategy: core.StrategyQuantum})
	if err != nil {
		t.Fatalf("solve after cooldown: %v", err)
	}
	if res.Res.Strategy != core.StrategyQuantum {
		t.Errorf("post-cooldown strategy = %v", res.Res.Strategy)
	}
}

func TestFaultPlanJoinsCacheIdentity(t *testing.T) {
	s := New(Config{})
	g := symDigraph(t, 8)
	clean, err := s.SolveGraph(g, SolveSpec{Strategy: core.StrategyQuantum})
	if err != nil {
		t.Fatal(err)
	}
	// A recovered-faults-only plan converges to the same distances but a
	// different round trajectory — it must not share the clean cache entry.
	plan := congest.FaultPlan{Seed: 11, DropRate: 0.5, DupRate: 0.25, DelayRate: 0.25, MaxDelayRounds: 2}
	faulty, err := s.SolveGraph(g, SolveSpec{Strategy: core.StrategyQuantum, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Cached {
		t.Fatal("armed solve aliased the clean cache entry")
	}
	if !clean.Res.Dist.Equal(faulty.Res.Dist) {
		t.Error("recovered faults changed distances")
	}
	if faulty.Res.Rounds <= clean.Res.Rounds {
		t.Errorf("fault surcharge missing: %d vs clean %d", faulty.Res.Rounds, clean.Res.Rounds)
	}
	if faulty.Res.Metrics.Faults.Injected() == 0 {
		t.Error("no faults recorded under an armed plan")
	}
	// Same plan again: cached, telemetry preserved.
	again, err := s.SolveGraph(g, SolveSpec{Strategy: core.StrategyQuantum, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.Res.Rounds != faulty.Res.Rounds {
		t.Errorf("armed re-solve: cached=%v rounds=%d want cached with %d", again.Cached, again.Res.Rounds, faulty.Res.Rounds)
	}
	// And the clean spec still hits its own entry.
	cleanAgain, err := s.SolveGraph(g, SolveSpec{Strategy: core.StrategyQuantum})
	if err != nil {
		t.Fatal(err)
	}
	if !cleanAgain.Cached || cleanAgain.Res.Rounds != clean.Res.Rounds {
		t.Errorf("clean re-solve: cached=%v rounds=%d want cached with %d", cleanAgain.Cached, cleanAgain.Res.Rounds, clean.Res.Rounds)
	}
}

func TestInvalidFaultPlanRejected(t *testing.T) {
	s := New(Config{})
	g := symDigraph(t, 4)
	_, err := s.SolveGraph(g, SolveSpec{Faults: congest.FaultPlan{DropRate: 2}})
	if !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("malformed plan: err = %v, want ErrInvalidSpec", err)
	}
}

func TestRetryRecoversWithinBudget(t *testing.T) {
	// A 1-fault outage is absorbed by stage retry alone: no degradation
	// needed, distances identical to fault-free, one retry recorded.
	s := New(Config{})
	g := symDigraph(t, 8)
	clean, err := s.SolveGraph(g, SolveSpec{Strategy: core.StrategyQuantum})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.SolveGraph(g, SolveSpec{Strategy: core.StrategyQuantum, Faults: outagePlan(1)})
	if err != nil {
		t.Fatalf("1-fault outage not absorbed: %v", err)
	}
	if res.Degraded {
		t.Error("retry success reported as degraded")
	}
	if !clean.Res.Dist.Equal(res.Res.Dist) {
		t.Error("retried solve diverged from fault-free distances")
	}
	var retries int
	for _, sg := range res.Res.Stages {
		retries += sg.Retries
	}
	if retries != 1 {
		t.Errorf("retries = %d, want 1", retries)
	}
	if got := s.Stats().Strategies["quantum"]; got.Retries != 1 || got.Faults.Corrupted != 1 {
		t.Errorf("retry accounting: %+v", got)
	}
}
