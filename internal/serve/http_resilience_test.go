package serve

// HTTP surface of the resilience features: fault plans and degradation
// over the wire, Retry-After plus a retryable marker on every 503, and the
// degraded-response shape clients key on.

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestHTTPFaultInjectionAndDegradation(t *testing.T) {
	svc := New(Config{})
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	g := symDigraph(t, 8)
	var put struct {
		ID string `json:"id"`
	}
	gj := GraphJSON{N: g.N()}
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if w, ok := g.Weight(u, v); ok {
				gj.Arcs = append(gj.Arcs, ArcJSON{U: u, V: v, W: w})
			}
		}
	}
	if resp := doJSON(t, srv, http.MethodPut, "/graphs", gj, &put); resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: %d", resp.StatusCode)
	}

	// A recovered-faults plan over the wire: success with fault counters
	// and a retry count in the body.
	var sj SolveJSON
	resp := doJSON(t, srv, http.MethodPost, "/graphs/"+put.ID+"/solve", solveParamsJSON{
		Strategy: "quantum",
		Faults:   &FaultPlanJSON{Seed: 9, DropRate: 1},
	}, &sj)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered-fault solve: %d", resp.StatusCode)
	}
	if sj.Faults == nil || sj.Faults.Dropped == 0 {
		t.Errorf("fault counters missing from response: %+v", sj.Faults)
	}
	if sj.Degraded {
		t.Error("recovered faults reported as degradation")
	}

	// An outage with degradation enabled: 200 with the degraded marker and
	// the rung that answered.
	resp = doJSON(t, srv, http.MethodPost, "/graphs/"+put.ID+"/solve", solveParamsJSON{
		Strategy: "quantum",
		Degrade:  true,
		Faults:   &FaultPlanJSON{Seed: 7, CorruptRate: 1, MaxFaults: 5},
	}, &sj)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded solve: %d", resp.StatusCode)
	}
	if !sj.Degraded || sj.DegradedFrom != "quantum" || sj.DegradeReason != "retries-exhausted" {
		t.Fatalf("degradation fields: %+v", sj)
	}
	if sj.Strategy != "approx-quantum" || sj.GuaranteedStretch != 1+plannerDefaultEpsilon {
		t.Errorf("degraded rung reporting: strategy=%q stretch=%v", sj.Strategy, sj.GuaranteedStretch)
	}

	// The same outage without degradation: 503 with Retry-After, the
	// retryable envelope, and the partial fault telemetry.
	var fail struct {
		Error ErrorJSON `json:"error"`
	}
	resp = doJSON(t, srv, http.MethodPost, "/graphs/"+put.ID+"/solve", solveParamsJSON{
		Strategy: "quantum",
		Faults:   &FaultPlanJSON{Seed: 7, CorruptRate: 1, MaxFaults: 5},
	}, &fail)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("exhausted solve: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After header")
	}
	if !fail.Error.Retryable || fail.Error.RetryAfterMS <= 0 {
		t.Errorf("503 envelope missing retryable/retry_after_ms: %+v", fail.Error)
	}
	if fail.Error.Code != "fault_exhausted" {
		t.Errorf("503 code = %q, want fault_exhausted", fail.Error.Code)
	}
	if fail.Error.Faults == nil || fail.Error.Faults.Injected() == 0 {
		t.Errorf("503 without fault telemetry: %+v", fail.Error)
	}

	// A malformed plan is a 400, not a 503.
	resp = doJSON(t, srv, http.MethodPost, "/graphs/"+put.ID+"/solve", solveParamsJSON{
		Faults: &FaultPlanJSON{DropRate: 1.5},
	}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed plan: %d, want 400", resp.StatusCode)
	}
}

func TestHTTPDeadline503CarriesRetryAfter(t *testing.T) {
	svc := New(Config{})
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	g := testDigraph(t, 24, 5)
	id, err := svc.PutGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	var fail struct {
		Error ErrorJSON `json:"error"`
	}
	// A 1ms deadline expires inside the pipeline; the 503 must advertise a
	// retry.
	resp := doJSON(t, srv, http.MethodPost, "/graphs/"+id+"/solve", solveParamsJSON{
		Strategy: "quantum", TimeoutMS: 1,
	}, &fail)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("deadline solve: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" || !fail.Error.Retryable {
		t.Errorf("deadline 503 missing Retry-After/retryable: header=%q body=%+v",
			resp.Header.Get("Retry-After"), fail.Error)
	}
}
