package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"qclique/internal/graph"
)

// TestHTTPNegativeCycle422 is the HTTP leg of the −∞ probe: a negative
// 2-cycle must yield 422 (with an error body) on every solve-bearing
// endpoint — no fabricated distances, no fabricated paths.
func TestHTTPNegativeCycle422(t *testing.T) {
	s := New(Config{})
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	var put struct {
		ID string `json:"id"`
	}
	body := map[string]any{"n": 2, "arcs": []map[string]any{
		{"u": 0, "v": 1, "w": -1}, {"u": 1, "v": 0, "w": 0},
	}}
	if resp := doJSON(t, srv, http.MethodPut, "/graphs", body, &put); resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: status %d", resp.StatusCode)
	}
	solve := map[string]any{"strategy": "gossip"}
	for _, probe := range []struct {
		method, path string
		body         any
	}{
		{http.MethodPost, "/graphs/" + put.ID + "/solve", solve},
		{http.MethodGet, "/graphs/" + put.ID + "/dist?strategy=gossip", nil},
		{http.MethodPost, "/graphs/" + put.ID + "/paths:batch",
			map[string]any{"strategy": "gossip", "queries": []map[string]int{{"src": 0, "dst": 1}}}},
	} {
		var e struct {
			Error ErrorJSON `json:"error"`
		}
		resp := doJSON(t, srv, probe.method, probe.path, probe.body, &e)
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("%s %s: status %d, want 422", probe.method, probe.path, resp.StatusCode)
		}
		if e.Error.Message == "" || e.Error.Code != "unprocessable" {
			t.Errorf("%s %s: envelope %+v, want unprocessable with message", probe.method, probe.path, e.Error)
		}
	}
}

// TestHTTPEpsilonValidation: epsilon/strategy mismatches are client errors
// (400), detected before any pipeline runs.
func TestHTTPEpsilonValidation(t *testing.T) {
	s := New(Config{})
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	var put struct {
		ID string `json:"id"`
	}
	body := map[string]any{"n": 3, "arcs": []map[string]any{{"u": 0, "v": 1, "w": 2}}}
	doJSON(t, srv, http.MethodPut, "/graphs", body, &put)

	for _, tc := range []struct {
		name string
		path string
		body any
	}{
		{"epsilon on exact", "/graphs/" + put.ID + "/solve", map[string]any{"strategy": "gossip", "epsilon": 0.5}},
		{"approx without epsilon", "/graphs/" + put.ID + "/solve", map[string]any{"strategy": "approx-quantum"}},
		{"dist epsilon on exact", "/graphs/" + put.ID + "/dist?strategy=gossip&epsilon=0.5", nil},
		{"dist bad epsilon", "/graphs/" + put.ID + "/dist?epsilon=nope", nil},
	} {
		method := http.MethodPost
		if tc.body == nil {
			method = http.MethodGet
		}
		resp := doJSON(t, srv, method, tc.path, tc.body, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

// TestHTTPApproxSolve: the approximate strategies work end-to-end over
// HTTP, echo their stretch contract, and reject inputs outside their class
// with 422.
func TestHTTPApproxSolve(t *testing.T) {
	s := New(Config{})
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	var put struct {
		ID string `json:"id"`
	}
	arcs := []map[string]any{}
	for i := 0; i < 8; i++ {
		arcs = append(arcs, map[string]any{"u": i, "v": (i + 1) % 8, "w": 2 + i%3})
	}
	doJSON(t, srv, http.MethodPut, "/graphs", map[string]any{"n": 8, "arcs": arcs}, &put)

	var solve SolveJSON
	resp := doJSON(t, srv, http.MethodPost, "/graphs/"+put.ID+"/solve",
		map[string]any{"strategy": "approx-quantum", "preset": "scaled", "epsilon": 0.5}, &solve)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("approx solve: status %d", resp.StatusCode)
	}
	if solve.Epsilon != 0.5 || solve.GuaranteedStretch != 1.5 {
		t.Errorf("solve echoed epsilon=%v guarantee=%v", solve.Epsilon, solve.GuaranteedStretch)
	}
	if solve.ObservedStretch < 1 || solve.ObservedStretch > solve.GuaranteedStretch {
		t.Errorf("observed stretch %v outside [1, %v]", solve.ObservedStretch, solve.GuaranteedStretch)
	}

	// The skeleton strategy rejects this (asymmetric) graph with 422.
	var e struct {
		Error ErrorJSON `json:"error"`
	}
	resp = doJSON(t, srv, http.MethodPost, "/graphs/"+put.ID+"/solve",
		map[string]any{"strategy": "approx-skeleton", "preset": "scaled", "epsilon": 0.5}, &e)
	if resp.StatusCode != http.StatusUnprocessableEntity || e.Error.Message == "" {
		t.Errorf("skeleton on asymmetric graph: status %d body %+v, want 422", resp.StatusCode, e.Error)
	}

	// Path queries under an approximate strategy are a client error:
	// snapped distances cannot be walked into tight-successor paths.
	resp = doJSON(t, srv, http.MethodPost, "/graphs/"+put.ID+"/paths:batch",
		map[string]any{"strategy": "approx-quantum", "preset": "scaled", "epsilon": 0.5,
			"queries": []map[string]int{{"src": 0, "dst": 1}}}, &e)
	if resp.StatusCode != http.StatusBadRequest || e.Error.Message == "" {
		t.Errorf("paths:batch under approx strategy: status %d body %+v, want 400", resp.StatusCode, e.Error)
	}
}

// TestHTTPBatchPerQueryErrors: unreachable pairs inside a batch answer
// per-query with an error body while the rest of the batch succeeds.
func TestHTTPBatchPerQueryErrors(t *testing.T) {
	s := New(Config{})
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	// 0 → 1, and 2 isolated: (0,1) answers, (0,2) is a per-query no-path.
	var put struct {
		ID string `json:"id"`
	}
	doJSON(t, srv, http.MethodPut, "/graphs", map[string]any{
		"n": 3, "arcs": []map[string]any{{"u": 0, "v": 1, "w": 5}},
	}, &put)

	var batch struct {
		Results []PathJSON `json:"results"`
	}
	resp := doJSON(t, srv, http.MethodPost, "/graphs/"+put.ID+"/paths:batch", map[string]any{
		"strategy": "gossip",
		"queries":  []map[string]int{{"src": 0, "dst": 1}, {"src": 0, "dst": 2}},
	}, &batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d", resp.StatusCode)
	}
	if len(batch.Results) != 2 {
		t.Fatalf("got %d results", len(batch.Results))
	}
	ok, missing := batch.Results[0], batch.Results[1]
	if ok.Error != "" || ok.Dist == nil || *ok.Dist != 5 || len(ok.Path) != 2 {
		t.Errorf("reachable query answered %+v", ok)
	}
	if missing.Error == "" || missing.Dist != nil || missing.Path != nil || missing.Undefined {
		t.Errorf("unreachable query answered %+v, want per-query no-path error without undefined marker", missing)
	}
}

// TestDistJSONUndefined pins the wire representation of the three distance
// states: finite, unreachable (+∞), undefined (−∞).
func TestDistJSONUndefined(t *testing.T) {
	if v, undef := distJSON(7); v == nil || *v != 7 || undef {
		t.Errorf("finite: (%v,%v)", v, undef)
	}
	if v, undef := distJSON(graph.Inf); v != nil || undef {
		t.Errorf("unreachable: (%v,%v), want (nil,false)", v, undef)
	}
	if v, undef := distJSON(graph.NegInf); v != nil || !undef {
		t.Errorf("undefined: (%v,%v), want (nil,true)", v, undef)
	}
	row, undefined := rowJSON([]int64{3, graph.Inf, graph.NegInf}, 4, nil)
	if row[0] == nil || row[1] != nil || row[2] != nil {
		t.Errorf("rowJSON values: %v", row)
	}
	if len(undefined) != 1 || undefined[0] != [2]int{4, 2} {
		t.Errorf("rowJSON undefined pairs: %v", undefined)
	}
}
