package serve

import (
	"fmt"
	"sync"
	"testing"

	"qclique/internal/core"
	"qclique/internal/graph"
	"qclique/internal/xrand"
)

// TestConcurrentPooledSolves drives many concurrent cache-miss solves
// through one Service so the workspace pool hands out and recycles
// workspaces under the race detector (the CI race job runs this package).
// Distinct graphs and seeds force every request down the simulator path;
// each answer is cross-checked against an independent fresh solve.
func TestConcurrentPooledSolves(t *testing.T) {
	s := New(Config{})
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				n := 6 + (w+i)%4
				g, err := graph.RandomDigraph(n, graph.DigraphOpts{
					ArcProb: 0.5, MinWeight: -4, MaxWeight: 9, NoNegativeCycles: true,
				}, xrand.New(uint64(100*w+i)))
				if err != nil {
					errs <- err
					return
				}
				spec := SolveSpec{Preset: PresetScaled, Seed: uint64(w)}
				got, err := s.SolveGraph(g, spec)
				if err != nil {
					errs <- err
					return
				}
				want, err := core.Solve(g.Clone(), core.Config{
					Params: spec.Preset.Params(), Seed: spec.Seed,
				})
				if err != nil {
					errs <- err
					return
				}
				if !got.Res.Dist.Equal(want.Dist) {
					errs <- fmt.Errorf("worker %d iter %d: pooled service solve differs from fresh", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
