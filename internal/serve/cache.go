package serve

// The solve cache: an LRU over fully-solved APSP results keyed by
// (graph content hash, strategy, preset, seed) — everything that affects
// the simulator's output; worker counts are excluded because results are
// worker-invariant by construction. A singleflight layer in front of the
// LRU collapses concurrent identical solves onto one simulator run.

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"qclique/internal/congest"
	"qclique/internal/core"
	"qclique/internal/graph"
)

// cacheKey is the full identity of a solve. epsilon is part of it: the
// approximate strategies produce different distances (and rounds) per
// epsilon, so two solves differing only in epsilon must never share an
// entry. faults is part of it for the same reason — an armed plan changes
// the round trajectory (and telemetry) of the cached result; FaultPlan is
// all scalars, so the key stays comparable.
type cacheKey struct {
	hash     string
	strategy core.Strategy
	preset   Preset
	seed     uint64
	epsilon  float64
	faults   congest.FaultPlan
}

// entry is one cached solve: the private graph clone the simulator ran on,
// its result, and the shared path oracle built over both. All fields are
// read-only after construction.
type entry struct {
	g      *graph.Digraph
	res    *core.Result
	oracle *core.PathOracle
}

// lruMap is a mutex-guarded LRU map; it backs both the solve cache
// (cacheKey → *entry) and the graph store (id → *graph.Digraph).
type lruMap[K comparable, V any] struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used; values are *lruSlot[K, V]
	items map[K]*list.Element
}

type lruSlot[K comparable, V any] struct {
	key K
	val V
}

func newLRUMap[K comparable, V any](max int) *lruMap[K, V] {
	return &lruMap[K, V]{max: max, order: list.New(), items: make(map[K]*list.Element)}
}

// get returns the value for key, marking it most recently used.
func (c *lruMap[K, V]) get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruSlot[K, V]).val, true
}

// add inserts (or refreshes) key, evicting least-recently-used slots
// beyond the capacity.
func (c *lruMap[K, V]) add(key K, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*lruSlot[K, V]).val = val
		return
	}
	c.items[key] = c.order.PushFront(&lruSlot[K, V]{key: key, val: val})
	for c.order.Len() > c.max {
		back := c.order.Back()
		delete(c.items, back.Value.(*lruSlot[K, V]).key)
		c.order.Remove(back)
	}
}

func (c *lruMap[K, V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

func newLRUCache(max int) *lruMap[cacheKey, *entry] {
	if max <= 0 {
		max = defaultCacheSize
	}
	return newLRUMap[cacheKey, *entry](max)
}

// flightGroup deduplicates concurrent calls with the same key: the first
// caller runs fn, the rest block and share its outcome. Outcomes are not
// retained once the call completes — persistence is the LRU's job.
type flightGroup struct {
	mu    sync.Mutex
	calls map[cacheKey]*flightCall
}

type flightCall struct {
	done chan struct{} // closed after val/err are set and the key deleted
	val  *entry
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[cacheKey]*flightCall)}
}

// do returns fn's outcome for key, with shared=true when this caller
// piggybacked on another caller's in-flight run. A follower waits under
// its own context: if ctx is done before the leader finishes, do returns
// ctx's error (shared=true) instead of blocking past the caller's
// deadline. The flight entry is removed from the map strictly before the
// done channel closes, so a woken follower that retries is guaranteed to
// either become the new leader or join a genuinely newer flight. A panic
// in fn is converted to an error (shared by all waiters) rather than
// wedging the key — the daemon's HTTP layer recovers handler panics, so a
// poisoned flight entry would otherwise block every future solve of that
// key.
func (f *flightGroup) do(ctx context.Context, key cacheKey, fn func() (*entry, error)) (val *entry, shared bool, err error) {
	f.mu.Lock()
	if c, ok := f.calls[key]; ok {
		f.mu.Unlock()
		select {
		case <-c.done:
			return c.val, true, c.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	f.calls[key] = c
	f.mu.Unlock()

	func() {
		defer func() {
			if r := recover(); r != nil {
				c.val, c.err = nil, fmt.Errorf("serve: solve panicked: %v", r)
			}
			f.mu.Lock()
			delete(f.calls, key)
			f.mu.Unlock()
			close(c.done)
		}()
		c.val, c.err = fn()
	}()
	return c.val, false, c.err
}
