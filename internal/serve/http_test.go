package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"qclique/internal/core"
	"qclique/internal/graph"
)

func doJSON(t *testing.T, srv *httptest.Server, method, path string, body any, out any) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, srv.URL+path, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, path, err)
		}
	}
	return resp
}

// TestHTTPEndToEnd drives the full API against an in-process server and
// cross-checks every response with a direct core.Solve.
func TestHTTPEndToEnd(t *testing.T) {
	g := testDigraph(t, 10, 42)
	want, err := core.Solve(g, core.Config{Strategy: core.StrategyGossip})
	if err != nil {
		t.Fatal(err)
	}

	svc := New(Config{})
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	// PUT /graphs
	gj := GraphJSON{N: g.N()}
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if w, ok := g.Weight(u, v); ok {
				gj.Arcs = append(gj.Arcs, ArcJSON{U: u, V: v, W: w})
			}
		}
	}
	var put struct {
		ID   string `json:"id"`
		N    int    `json:"n"`
		Arcs int    `json:"arcs"`
	}
	if resp := doJSON(t, srv, http.MethodPut, "/graphs", gj, &put); resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT /graphs: status %d", resp.StatusCode)
	}
	if put.ID != HashDigraph(g) || put.N != g.N() || put.Arcs != g.ArcCount() {
		t.Fatalf("PUT response %+v inconsistent with graph", put)
	}

	// POST solve — fresh, then cached.
	solvePath := "/graphs/" + put.ID + "/solve"
	var first, second SolveJSON
	if resp := doJSON(t, srv, http.MethodPost, solvePath, solveParamsJSON{Strategy: "gossip"}, &first); resp.StatusCode != http.StatusOK {
		t.Fatalf("POST solve: status %d", resp.StatusCode)
	}
	if first.Cached || first.Rounds != want.Rounds {
		t.Fatalf("first solve = %+v, want fresh with rounds %d", first, want.Rounds)
	}
	doJSON(t, srv, http.MethodPost, solvePath, solveParamsJSON{Strategy: "gossip"}, &second)
	if !second.Cached || second.Rounds != first.Rounds {
		t.Fatalf("second solve = %+v, want cached bit-identical", second)
	}

	// GET dist for every pair.
	for src := 0; src < g.N(); src++ {
		for dst := 0; dst < g.N(); dst++ {
			var one struct {
				Dist *int64 `json:"dist"`
			}
			path := fmt.Sprintf("/graphs/%s/dist?strategy=gossip&src=%d&dst=%d", put.ID, src, dst)
			if resp := doJSON(t, srv, http.MethodGet, path, nil, &one); resp.StatusCode != http.StatusOK {
				t.Fatalf("GET dist: status %d", resp.StatusCode)
			}
			w := want.Dist.At(src, dst)
			if w >= graph.Inf {
				if one.Dist != nil {
					t.Fatalf("d(%d,%d) = %d, want null", src, dst, *one.Dist)
				}
			} else if one.Dist == nil || *one.Dist != w {
				t.Fatalf("d(%d,%d) = %v, want %d", src, dst, one.Dist, w)
			}
		}
	}
	// Full-matrix form.
	var full struct {
		N    int        `json:"n"`
		Dist [][]*int64 `json:"dist"`
	}
	doJSON(t, srv, http.MethodGet, "/graphs/"+put.ID+"/dist?strategy=gossip", nil, &full)
	if full.N != g.N() || len(full.Dist) != g.N() {
		t.Fatalf("full dist: n=%d rows=%d", full.N, len(full.Dist))
	}

	// POST paths:batch.
	batch := batchRequestJSON{solveParamsJSON: solveParamsJSON{Strategy: "gossip"}}
	for src := 0; src < g.N(); src++ {
		for dst := 0; dst < g.N(); dst++ {
			batch.Queries = append(batch.Queries, PathQuery{Src: src, Dst: dst})
		}
	}
	var batchResp struct {
		Cached  bool       `json:"cached"`
		Results []PathJSON `json:"results"`
	}
	if resp := doJSON(t, srv, http.MethodPost, "/graphs/"+put.ID+"/paths:batch", batch, &batchResp); resp.StatusCode != http.StatusOK {
		t.Fatalf("POST paths:batch: status %d", resp.StatusCode)
	}
	if !batchResp.Cached {
		t.Fatal("batch against a solved graph must be served from cache")
	}
	for _, r := range batchResp.Results {
		w := want.Dist.At(r.Src, r.Dst)
		if w >= graph.Inf {
			if r.Error == "" {
				t.Fatalf("(%d,%d): want a no-path error", r.Src, r.Dst)
			}
			continue
		}
		if r.Dist == nil || *r.Dist != w {
			t.Fatalf("(%d,%d): dist %v, want %d", r.Src, r.Dst, r.Dist, w)
		}
		pw, err := core.PathWeight(g, r.Path)
		if err != nil || pw != w {
			t.Fatalf("(%d,%d): path %v weight %d (%v), want %d", r.Src, r.Dst, r.Path, pw, err, w)
		}
	}

	// GET /metrics.
	var stats Stats
	if resp := doJSON(t, srv, http.MethodGet, "/metrics", nil, &stats); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	gs := stats.Strategies["gossip"]
	if gs.Solves != 1 {
		t.Fatalf("metrics: %d solves, want exactly 1 across the whole flow", gs.Solves)
	}
	if stats.PathQueries != int64(len(batch.Queries)) {
		t.Fatalf("metrics: %d path queries, want %d", stats.PathQueries, len(batch.Queries))
	}
}

// TestHTTPErrors pins the failure statuses.
func TestHTTPErrors(t *testing.T) {
	svc := New(Config{})
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	if resp := doJSON(t, srv, http.MethodPost, "/graphs/sha256:nope/solve", solveParamsJSON{}, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown graph: status %d, want 404", resp.StatusCode)
	}
	if resp := doJSON(t, srv, http.MethodPut, "/graphs", GraphJSON{N: 2, Arcs: []ArcJSON{{U: 0, V: 0, W: 1}}}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("self-loop: status %d, want 400", resp.StatusCode)
	}
	if resp := doJSON(t, srv, http.MethodPost, "/graphs/x/solve", solveParamsJSON{Strategy: "warp"}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad strategy: status %d, want 400", resp.StatusCode)
	}

	// A huge vertex count must be rejected before the n² allocation, not
	// OOM the daemon.
	if resp := doJSON(t, srv, http.MethodPut, "/graphs", GraphJSON{N: 200000}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized n: status %d, want 400", resp.StatusCode)
	}

	// Negative cycle → 422.
	cyc := GraphJSON{N: 3, Arcs: []ArcJSON{{0, 1, -2}, {1, 2, -2}, {2, 0, 1}}}
	var put struct {
		ID string `json:"id"`
	}
	doJSON(t, srv, http.MethodPut, "/graphs", cyc, &put)
	if resp := doJSON(t, srv, http.MethodPost, "/graphs/"+put.ID+"/solve", solveParamsJSON{Strategy: "gossip"}, nil); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("negative cycle: status %d, want 422", resp.StatusCode)
	}

	// dst without src → 400, and malformed dist requests must be rejected
	// before the solve runs (no rounds charged, no cache slot taken).
	requestsBefore := svc.Stats().Strategies["gossip"].Requests
	ok := GraphJSON{N: 2, Arcs: []ArcJSON{{0, 1, 1}}}
	doJSON(t, srv, http.MethodPut, "/graphs", ok, &put)
	if resp := doJSON(t, srv, http.MethodGet, "/graphs/"+put.ID+"/dist?strategy=gossip&dst=1", nil, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("dst without src: status %d, want 400", resp.StatusCode)
	}
	if resp := doJSON(t, srv, http.MethodGet, "/graphs/"+put.ID+"/dist?strategy=gossip&src=99", nil, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("src out of range: status %d, want 400", resp.StatusCode)
	}
	if got := svc.Stats().Strategies["gossip"].Requests; got != requestsBefore {
		t.Fatalf("malformed dist requests triggered %d solve request(s)", got-requestsBefore)
	}
}
