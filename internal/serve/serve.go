// Package serve is the APSP-as-a-service layer: a graph store with
// content-hash identity, an LRU solve cache with singleflight deduplication
// (concurrent identical solves run the simulator once), batched
// SSSP/shortest-path query execution over one shared APSP result, and
// per-strategy request/round accounting. cmd/apspd exposes it over
// HTTP/JSON; the public qclique.Solver wraps it for library callers. The
// point is amortization: every caller of a repeated or concurrent workload
// pays the Õ(n^{1/4}·log W) pipeline at most once per distinct
// (graph, strategy, preset, seed).
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"qclique/internal/approx"
	"qclique/internal/congest"
	"qclique/internal/core"
	"qclique/internal/engine"
	"qclique/internal/graph"
	"qclique/internal/par"
	"qclique/internal/triangles"
)

// workspacePool recycles per-solve workspaces across the daemon's
// cache-miss solves: concurrent solves each borrow their own workspace
// (core.Workspace is single-solve state), and a returned workspace carries
// its high-water buffers to the next miss, so a warm daemon's solve path
// stops cold-allocating. Returned distance matrices are permanently
// forgotten by their workspace, so cached results never alias pooled
// storage.
var workspacePool = sync.Pool{New: func() any { return core.NewWorkspace() }}

const (
	defaultCacheSize = 64
	defaultMaxGraphs = 1024
)

// Preset selects the protocol-constant preset by name; the zero value is
// the paper's verbatim constants.
type Preset int

// Presets.
const (
	PresetPaper Preset = iota
	PresetScaled
)

func (p Preset) String() string {
	if p == PresetScaled {
		return "scaled"
	}
	return "paper"
}

// ParsePreset parses "paper" and "scaled" (empty selects paper).
func ParsePreset(s string) (Preset, error) {
	switch s {
	case "", "paper":
		return PresetPaper, nil
	case "scaled":
		return PresetScaled, nil
	default:
		return 0, fmt.Errorf("serve: unknown preset %q (want paper or scaled)", s)
	}
}

// Params returns the protocol constants the preset selects; this is the
// single place the preset→constants mapping lives.
func (p Preset) Params() *triangles.Params {
	var t triangles.Params
	if p == PresetScaled {
		t = triangles.BenchParams()
	} else {
		t = triangles.PaperParams()
	}
	return &t
}

// ParseStrategy parses a strategy name or alias against the engine's
// strategy registry (empty selects quantum) — new pipelines become
// servable by registering, with no switch to grow here. "auto" parses to
// the planner sentinel core.StrategyAuto: the service resolves it to a
// concrete registered strategy per request.
func ParseStrategy(s string) (core.Strategy, error) {
	if s == "" {
		return core.StrategyQuantum, nil
	}
	if s == "auto" {
		return core.StrategyAuto, nil
	}
	st, ok := engine.Lookup(s)
	if !ok {
		return 0, fmt.Errorf("serve: unknown strategy %q (registered: %s)", s, strings.Join(engine.Names(), ", "))
	}
	enum, ok := core.StrategyByName(st.Name())
	if !ok {
		return 0, fmt.Errorf("serve: registered strategy %q has no core enum", st.Name())
	}
	return enum, nil
}

// ErrInvalidSpec marks solve specs that are malformed independent of any
// graph (e.g. an epsilon on an exact strategy); the HTTP layer maps it to
// 400 rather than 500.
var ErrInvalidSpec = errors.New("serve: invalid solve spec")

// CancelledError reports a solve stopped by its context (request deadline
// or client disconnect) before the pipeline completed. It carries the
// partial per-stage telemetry — the stages that ran and the rounds they
// charged — so a timed-out request can still report what the deadline
// bought; the HTTP layer maps it to 503 with that breakdown in the body.
// It wraps the context error, so errors.Is(err, context.DeadlineExceeded)
// and context.Canceled work through it. A caller only ever sees its own
// cancellation: a deduplicated follower whose leader was cancelled retries
// under its own (still-live) context instead of inheriting the error.
type CancelledError struct {
	// Stages is the partial per-stage breakdown before the stop.
	Stages []engine.StageStat
	// Rounds is the simulator rounds charged before the stop.
	Rounds int64
	// Err is the underlying context error.
	Err error
}

func (e *CancelledError) Error() string {
	return fmt.Sprintf("serve: solve cancelled after %d stage(s), %d rounds: %v", len(e.Stages), e.Rounds, e.Err)
}

func (e *CancelledError) Unwrap() error { return e.Err }

// FaultExhaustedError reports a solve that spent its whole stage-retry
// budget on unrecovered injected faults. It carries the partial telemetry
// of the failed run — the stages that ran, the rounds they charged, and the
// fault counters — and wraps the underlying *congest.FaultError chain, so
// errors.As keeps working through it. The degradation ladder uses the
// counters to thread a transient-outage budget (FaultPlan.MaxFaults) into
// the fallback rung; the HTTP layer maps it to 503 with a Retry-After.
type FaultExhaustedError struct {
	// Stages is the partial per-stage breakdown, retries included.
	Stages []engine.StageStat
	// Rounds is the simulator rounds charged before the stop.
	Rounds int64
	// Faults is the injected-fault accounting of the failed run.
	Faults congest.FaultCounters
	// Err is the underlying error (wraps *congest.FaultError).
	Err error
}

func (e *FaultExhaustedError) Error() string {
	return fmt.Sprintf("serve: solve exhausted its fault-retry budget after %d stage(s), %d rounds (%d faults injected): %v",
		len(e.Stages), e.Rounds, e.Faults.Injected(), e.Err)
}

func (e *FaultExhaustedError) Unwrap() error { return e.Err }

// ErrApproxPaths rejects path reconstruction against approximate solves:
// the successor walk relies on exact tightness (w(u,k) + d(k,dst) ==
// d(u,dst)), which ladder-snapped distances do not satisfy — once the
// snap actually distorts a distance, no tight successor exists and the
// only honest answers are "use an exact strategy" or a wrong path.
// Distance queries against approximate solves remain fully supported. It
// wraps ErrInvalidSpec, so the HTTP layer answers 400.
var ErrApproxPaths = fmt.Errorf("%w: path reconstruction requires an exact strategy (approximate distances carry no tight-successor structure)", ErrInvalidSpec)

// SolveSpec identifies one solve: everything that affects the simulator's
// output — including Epsilon, which changes both the distances and the
// round trajectory of the approximate strategies and therefore must
// participate in the cache identity. Workers is execution detail only
// (results are worker-invariant) and is excluded.
type SolveSpec struct {
	Strategy core.Strategy // zero value selects quantum
	Preset   Preset
	Seed     uint64
	// Epsilon is the stretch budget of the approximate strategies; it must
	// be > 0 for those and 0 for the exact ones (Validate enforces this —
	// silently ignoring it would alias distinct cache entries).
	Epsilon float64
	Workers int
	// Transport selects the congest delivery backend by registered name
	// ("" = "local"). Like Workers it is execution detail only — backends
	// are bit-identical in results by contract — so it is excluded from the
	// cache identity: a request may be served from a result another
	// transport computed, and the result's Transport echo describes the
	// execution that actually produced it.
	Transport string
	// Faults arms the solve's network(s) with a deterministic fault plan
	// (zero disables injection). It is part of the cache identity: fault
	// surcharges change the round trajectory, and under an aggressive plan
	// the telemetry of a cached result must match what that plan produced.
	Faults congest.FaultPlan
	// Degrade enables the graceful-degradation ladder: a solve that
	// exhausts its fault-retry budget, runs out of deadline headroom, or
	// hits an open circuit breaker falls back along the planner's viable
	// fallback rungs (every strategy with a strictly weaker stretch
	// guarantee, best fidelity first — classically exact → approx-quantum →
	// approx-skeleton) and returns a degraded result instead of an error.
	// Not part of the cache identity — each rung solves, and caches, under
	// its own spec.
	Degrade bool
	// exactPlanning restricts a strategy=auto resolution to exact
	// candidates — the batch-paths entry points set it, because path
	// reconstruction requires exact tight-successor structure. Irrelevant
	// once the spec names a concrete strategy, and excluded from the cache
	// identity (the resolved spec determines the key).
	exactPlanning bool
}

func (s SolveSpec) strategy() core.Strategy {
	if s.Strategy == 0 {
		return core.StrategyQuantum
	}
	return s.Strategy
}

// ExactPlanning returns a copy of the spec whose strategy=auto resolution
// is confined to exact candidates (see the exactPlanning field). The
// library's path-reconstruction entry points use it; a spec naming a
// concrete strategy is unaffected.
func (s SolveSpec) ExactPlanning() SolveSpec {
	s.exactPlanning = true
	return s
}

// Validate rejects specs whose epsilon disagrees with the strategy class
// or falls outside the supported [approx.MinEpsilon, approx.MaxEpsilon]
// domain — before any pipeline (or unbounded ladder construction) runs.
// For strategy=auto the epsilon is a budget, not a parameter: absent (0)
// restricts planning to exact candidates, present it must be in the valid
// domain.
func (s SolveSpec) Validate() error {
	if s.strategy() == core.StrategyAuto {
		if s.Epsilon != 0 && !approx.ValidEpsilon(s.Epsilon) {
			return fmt.Errorf("%w: auto-strategy epsilon budget must be 0 or in [%v, %v] (got %v)",
				ErrInvalidSpec, approx.MinEpsilon, approx.MaxEpsilon, s.Epsilon)
		}
	} else if s.strategy().IsApproximate() {
		if !approx.ValidEpsilon(s.Epsilon) {
			return fmt.Errorf("%w: strategy %q requires epsilon in [%v, %v] (got %v)",
				ErrInvalidSpec, s.strategy(), approx.MinEpsilon, approx.MaxEpsilon, s.Epsilon)
		}
	} else if s.Epsilon != 0 {
		return fmt.Errorf("%w: epsilon %v is only valid for approximate strategies", ErrInvalidSpec, s.Epsilon)
	}
	if err := s.Faults.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidSpec, err)
	}
	if !congest.ValidTransport(s.Transport) {
		return fmt.Errorf("%w: unknown transport %q (registered: %s)",
			ErrInvalidSpec, s.Transport, strings.Join(congest.Transports(), ", "))
	}
	return nil
}

func (s SolveSpec) key(hash string) cacheKey {
	return cacheKey{hash: hash, strategy: s.strategy(), preset: s.Preset, seed: s.Seed, epsilon: s.Epsilon, faults: s.Faults}
}

// Config configures a Service.
type Config struct {
	// CacheSize bounds the retained solve results (LRU; <= 0 selects 64).
	CacheSize int
	// MaxGraphs bounds the graph store (LRU; <= 0 selects 1024).
	MaxGraphs int
	// Workers is the default host-parallelism bound for solves and batch
	// queries (<= 0 selects GOMAXPROCS).
	Workers int
	// BreakerThreshold is the consecutive fault-retry exhaustions that open
	// a strategy's circuit breaker (<= 0 selects 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit refuses solves before
	// closing again (<= 0 selects 30s).
	BreakerCooldown time.Duration
	// MaxInflight bounds concurrently executing solves (simulator runs;
	// cache hits and singleflight followers are not charged against it).
	// <= 0 leaves execution unbounded — the library default.
	MaxInflight int
	// QueueDepth bounds the FIFO admission wait queue behind a saturated
	// MaxInflight; requests beyond it are shed with an OverloadError.
	// <= 0 selects 64 (meaningful only with MaxInflight > 0).
	QueueDepth int
	// OverloadQueueDepth is the queued-request watermark at or past which
	// the service reports overload pressure and starts degrading degradable
	// requests; <= 0 selects half of the effective QueueDepth (minimum 1).
	OverloadQueueDepth int
	// OverloadHeapBytes is the live-heap watermark (runtime/metrics
	// /gc/heap/live:bytes) past which the service reports overload
	// pressure; 0 disables the heap check.
	OverloadHeapBytes uint64
	// OverloadDegrade routes every degradable request down the degradation
	// ladder while the service is under overload pressure, even when the
	// request itself did not opt into Degrade.
	OverloadDegrade bool
	// DefaultStrategy is the strategy a request that names none runs under
	// (spec.Strategy == 0). The zero value preserves the legacy default,
	// quantum; core.StrategyAuto makes the planner the default — cmd/apspd
	// sets exactly that.
	DefaultStrategy core.Strategy
}

// Service is the solve layer. Safe for concurrent use.
type Service struct {
	cfg           Config
	store         *graphStore
	cache         *lruMap[cacheKey, *entry]
	flight        *flightGroup
	stats         *statsCollector
	breaker       *breaker
	admit         *admission
	heap          *heapWatermark
	overloadQueue int
}

// New returns a Service with the given configuration.
func New(cfg Config) *Service {
	admit := newAdmission(cfg.MaxInflight, cfg.QueueDepth)
	overloadQueue := cfg.OverloadQueueDepth
	if overloadQueue <= 0 {
		overloadQueue = admit.maxQueue / 2
		if overloadQueue < 1 {
			overloadQueue = 1
		}
	}
	return &Service{
		cfg:           cfg,
		store:         newGraphStore(cfg.MaxGraphs),
		cache:         newLRUCache(cfg.CacheSize),
		flight:        newFlightGroup(),
		stats:         newStatsCollector(),
		breaker:       newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		admit:         admit,
		heap:          newHeapWatermark(),
		overloadQueue: overloadQueue,
	}
}

// BeginDrain closes the admission gate for shutdown: queued solves are shed
// with an OverloadError (reason "draining"), new solves are refused the
// same way, and Readiness flips to not-ready so load balancers stop routing
// here. In-flight solves are unaffected — the daemon's SIGTERM path calls
// this first, then http.Server.Shutdown to let them finish within the drain
// deadline.
func (s *Service) BeginDrain() { s.admit.drain() }

// Readiness is the GET /readyz contract: Ready=false (HTTP 503) while the
// service is draining for shutdown or its admission queue is saturated —
// the signal a load balancer uses to stop routing before requests start
// shedding. Liveness (GET /healthz) is unconditional by contrast: a
// draining daemon is still alive.
type Readiness struct {
	Ready bool `json:"ready"`
	// Reason is "draining" or "queue-saturated" when not ready.
	Reason string `json:"reason,omitempty"`
	// Inflight/Queued are the admission controller's point-in-time gauges.
	Inflight int `json:"inflight"`
	Queued   int `json:"queued"`
}

// Readiness reports whether the service should receive new traffic.
func (s *Service) Readiness() Readiness {
	st := s.admit.snapshot()
	r := Readiness{Ready: true, Inflight: st.Inflight, Queued: st.QueuedNow}
	switch {
	case st.Draining:
		r.Ready, r.Reason = false, "draining"
	case st.QueueDepth > 0 && st.QueuedNow >= st.QueueDepth:
		r.Ready, r.Reason = false, "queue-saturated"
	}
	return r
}

// underPressure reports overload pressure: the wait queue is at or past the
// configured watermark while every execution slot is busy, or the live heap
// has crossed the configured byte watermark. Either predicts that admitting
// another heavyweight exact solve buys latency (or an OOM), not throughput.
func (s *Service) underPressure() bool {
	if s.admit.bounded() {
		st := s.admit.snapshot()
		if st.Inflight >= st.MaxInflight && st.QueuedNow >= s.overloadQueue {
			return true
		}
	}
	return s.cfg.OverloadHeapBytes > 0 && s.heap.liveBytes() >= s.cfg.OverloadHeapBytes
}

// PanicError reports a solve pipeline that panicked mid-execution,
// converted into an error at the recovery boundary instead of tearing down
// the daemon. The pooled workspace is returned before the conversion, so
// the pool stays reusable; the HTTP layer maps it to 500 "internal".
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack, for operator logs.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("serve: solve panicked: %v", e.Value)
}

// SolveResult is the outcome of a service solve.
type SolveResult struct {
	// GraphID is the content hash of the solved graph.
	GraphID string
	// Res is the underlying solver result, shared across callers — treat
	// as read-only.
	Res *core.Result
	// Oracle answers path queries against Res with per-destination reuse;
	// shared and concurrency-safe.
	Oracle *core.PathOracle
	// Cached reports that this request ran zero simulator rounds: it was
	// served from the cache or deduplicated onto a concurrent identical
	// solve.
	Cached bool
	// Degraded reports the degradation ladder answered with a fallback
	// strategy; Res.Strategy and Res.GuaranteedStretch describe the rung
	// that actually ran.
	Degraded bool
	// DegradedFrom is the originally requested strategy (set only when
	// Degraded).
	DegradedFrom core.Strategy
	// DegradeReason is why the ladder stepped down: "retries-exhausted",
	// "deadline", "breaker-open", or "overload" (the service shed fidelity
	// under load pressure rather than queueing or refusing the request).
	DegradeReason string
	// Plan records the planner's decision for a strategy=auto request (nil
	// when the caller named a concrete strategy). A degraded auto solve
	// keeps the original decision: DegradedFrom is then the planned
	// strategy.
	Plan *PlanDecision
}

// PutGraph stores a private copy of g and returns its content id.
func (s *Service) PutGraph(g *graph.Digraph) (string, error) {
	if g == nil {
		return "", errors.New("serve: nil graph")
	}
	return s.store.put(g), nil
}

// Graph returns a private copy of the stored graph for id. The copy is
// deliberate: the store is content-addressed and the solve cache keys
// results by that content hash, so handing out the shared reference would
// let one caller's SetArc silently desynchronize every cached result from
// its id. The internal solve path keeps using the shared reference (it
// never mutates).
func (s *Service) Graph(id string) (*graph.Digraph, error) {
	sg, err := s.store.get(id)
	if err != nil {
		return nil, err
	}
	return sg.g.Clone(), nil
}

// GraphFeatures returns the stored graph's structural profile, computed
// once at upload (the store is content-addressed, so it cannot go stale).
func (s *Service) GraphFeatures(id string) (graph.Features, error) {
	sg, err := s.store.get(id)
	if err != nil {
		return graph.Features{}, err
	}
	return sg.feats, nil
}

// Solve solves the stored graph id under spec, consulting the cache first.
func (s *Service) Solve(id string, spec SolveSpec) (*SolveResult, error) {
	return s.SolveContext(context.Background(), id, spec)
}

// SolveContext is Solve honoring a context: the pipeline checkpoints
// between stages (and inside its inner loops), so a request deadline stops
// the simulator at the next boundary. A cancelled solve returns a
// *CancelledError carrying the partial per-stage telemetry; nothing is
// cached, and the pooled workspace is returned in a reusable state.
func (s *Service) SolveContext(ctx context.Context, id string, spec SolveSpec) (*SolveResult, error) {
	sg, err := s.store.get(id)
	if err != nil {
		return nil, err
	}
	return s.solve(ctx, id, sg.g, sg.feats, spec)
}

// SolveGraph solves g directly (library path, no store round-trip): the
// graph is hashed for cache identity and cloned only when the simulator
// actually runs.
func (s *Service) SolveGraph(g *graph.Digraph, spec SolveSpec) (*SolveResult, error) {
	return s.SolveGraphContext(context.Background(), g, spec)
}

// SolveGraphContext is SolveGraph honoring a context (see SolveContext).
func (s *Service) SolveGraphContext(ctx context.Context, g *graph.Digraph, spec SolveSpec) (*SolveResult, error) {
	if g == nil {
		return nil, errors.New("serve: nil graph")
	}
	return s.solve(ctx, HashDigraph(g), g, g.Features(), spec)
}

// solve validates the spec, resolves strategy=auto through the planner,
// and runs the resolved spec — directly, or through the degradation
// ladder when the spec opts in. A planned solve runs exactly the spec an
// explicit caller would have sent (the planner chooses, it never alters
// pipelines), so it shares cache entries and stays bit-identical; when it
// executes to completion at the planned rung, the observed rounds and wall
// are folded into the planner's prediction-error accounting.
func (s *Service) solve(ctx context.Context, id string, g *graph.Digraph, feats graph.Features, spec SolveSpec) (*SolveResult, error) {
	if spec.Strategy == 0 {
		spec.Strategy = s.cfg.DefaultStrategy
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	var plan *PlanDecision
	if spec.strategy() == core.StrategyAuto {
		resolved, decision, err := s.planSolve(ctx, feats, spec)
		if err != nil {
			return nil, err
		}
		spec, plan = resolved, decision
		s.stats.plannerDecision(plan.Strategy)
	}
	start := time.Now()
	res, err := s.solveResolved(ctx, id, g, feats, spec)
	if err != nil {
		return nil, err
	}
	if plan != nil {
		res.Plan = plan
		if !res.Cached && !res.Degraded {
			s.stats.plannerObserved(plan.PredictedRounds, plan.PredictedWallNs, res.Res.Rounds, time.Since(start))
		}
	}
	return res, nil
}

// solveResolved runs a validated, concrete (never auto) spec.
func (s *Service) solveResolved(ctx context.Context, id string, g *graph.Digraph, feats graph.Features, spec SolveSpec) (*SolveResult, error) {
	if res, ok := s.overloadDegrade(ctx, id, g, feats, spec); ok {
		return res, nil
	}
	if !spec.Degrade {
		return s.solveAllowed(ctx, id, g, feats, spec)
	}
	rungs := s.ladderRungs(spec, feats)
	primary := spec.strategy().String()
	var reason string
	spent := 0
	for i, rs := range rungs {
		// A transient-outage plan (MaxFaults > 0) carries its remaining
		// budget into each rung: the faults a failed rung already absorbed
		// are spent for the whole request, not per network.
		rs.Faults = threadBudget(spec.Faults, spent)
		rctx, cancel := rungContext(ctx, i, len(rungs))
		res, err := s.solveAllowed(rctx, id, g, feats, rs)
		cancel()
		if err == nil {
			if i > 0 {
				res.Degraded = true
				res.DegradedFrom = spec.strategy()
				res.DegradeReason = reason
				s.stats.degraded(primary)
			}
			return res, nil
		}
		r, ok := degradeReason(err, ctx)
		if !ok || i == len(rungs)-1 {
			return nil, err
		}
		if i == 0 {
			reason = r
		}
		var fx *FaultExhaustedError
		if errors.As(err, &fx) {
			spent += int(fx.Faults.Corrupted + fx.Faults.Crashes)
		}
	}
	// ladderRungs always returns at least the spec itself.
	return nil, fmt.Errorf("serve: empty degradation ladder for %v", spec.strategy())
}

// overloadDegrade is the pressure-release valve: while the service is under
// overload pressure, a degradable request (spec.Degrade, or every request
// when Config.OverloadDegrade is set) is routed straight to the *cheapest*
// viable ladder rung — the (2+ε) skeleton strategy runs ~1000x fewer rounds
// than exact, so answering degraded is how the daemon converts a saturation
// collapse into a fidelity dip. A cached answer at the requested fidelity is
// free and never degraded, and a rung failure falls through to the normal
// path so the regular ladder/breaker machinery reports it.
func (s *Service) overloadDegrade(ctx context.Context, id string, g *graph.Digraph, feats graph.Features, spec SolveSpec) (*SolveResult, bool) {
	if !spec.Degrade && !s.cfg.OverloadDegrade {
		return nil, false
	}
	if !s.underPressure() {
		return nil, false
	}
	if _, ok := s.cache.get(spec.key(id)); ok {
		return nil, false
	}
	fallbacks := s.plannerFallbacks(spec, feats)
	if len(fallbacks) == 0 {
		return nil, false // no cheaper rung is viable for this graph's weights
	}
	cheapest := fallbacks[0]
	cheapestWall := s.estimateFor(cheapest.strategy().String(), feats, cheapest.Epsilon)
	for _, fb := range fallbacks[1:] {
		if w := s.estimateFor(fb.strategy().String(), feats, fb.Epsilon); w < cheapestWall {
			cheapest, cheapestWall = fb, w
		}
	}
	res, err := s.solveAllowed(ctx, id, g, feats, cheapest)
	if err != nil {
		return nil, false
	}
	res.Degraded = true
	res.DegradedFrom = spec.strategy()
	res.DegradeReason = "overload"
	s.stats.degraded(spec.strategy().String())
	s.stats.overloadDegraded()
	return res, true
}

// ladderRungs returns the degradation ladder for spec over a graph with
// profile feats: the spec itself, then the planner's viable fallback rungs
// in order of decreasing fidelity — every registered strategy with a
// strictly weaker stretch guarantee whose capabilities accept the graph
// (see plannerFallbacks). No rung list is hard-coded: registering a new
// strategy with the right capabilities grows the ladder automatically.
func (s *Service) ladderRungs(spec SolveSpec, feats graph.Features) []SolveSpec {
	return append([]SolveSpec{spec}, s.plannerFallbacks(spec, feats)...)
}

// threadBudget returns the fault plan a later ladder rung runs under after
// spent unrecovered faults: a transient-outage plan (MaxFaults > 0)
// carries its remaining budget forward, and a fully spent budget disarms
// the unrecovered rates — the outage has injected everything it had.
// Unbounded plans (MaxFaults == 0) pass through unchanged.
func threadBudget(p congest.FaultPlan, spent int) congest.FaultPlan {
	if p.MaxFaults <= 0 || spent <= 0 {
		return p
	}
	remaining := p.MaxFaults - spent
	if remaining <= 0 {
		p.CorruptRate, p.CrashRate = 0, 0
		p.MaxFaults = 0
		return p
	}
	p.MaxFaults = remaining
	return p
}

// rungContext budgets a non-final ladder rung to ~60% of the remaining
// deadline, reserving headroom for the fallback; the final rung (and any
// rung without a deadline) runs under the caller's context unchanged.
func rungContext(ctx context.Context, i, total int) (context.Context, context.CancelFunc) {
	dl, ok := ctx.Deadline()
	if !ok || i == total-1 {
		return ctx, func() {}
	}
	remaining := time.Until(dl)
	if remaining <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, remaining*3/5)
}

// degradeReason classifies an error as a ladder trigger: fault-retry
// exhaustion, an open circuit breaker, or a rung-budget deadline whose
// parent request still has time. Everything else (bad specs, negative
// cycles, the caller's own cancellation) propagates unchanged.
func degradeReason(err error, parent context.Context) (string, bool) {
	var fe *congest.FaultError
	var be *BreakerOpenError
	switch {
	case errors.As(err, &fe):
		return "retries-exhausted", true
	case errors.As(err, &be):
		return "breaker-open", true
	case errors.Is(err, context.DeadlineExceeded) && parent.Err() == nil:
		return "deadline", true
	}
	return "", false
}

// solveAllowed gates one rung through the strategy's circuit breaker and
// feeds the breaker the outcome: fault-retry exhaustion counts against the
// threshold, any completed solve closes the circuit.
func (s *Service) solveAllowed(ctx context.Context, id string, g *graph.Digraph, feats graph.Features, spec SolveSpec) (*SolveResult, error) {
	name := spec.strategy().String()
	if remaining, ok := s.breaker.allow(name); !ok {
		s.stats.breakerSkip(name)
		return nil, &BreakerOpenError{Strategy: name, RetryAfter: remaining}
	}
	res, err := s.solveOne(ctx, id, g, feats, spec)
	var fe *congest.FaultError
	switch {
	case errors.As(err, &fe):
		s.breaker.failure(name)
	case err == nil:
		s.breaker.success(name)
	}
	return res, err
}

func (s *Service) solveOne(ctx context.Context, id string, g *graph.Digraph, feats graph.Features, spec SolveSpec) (*SolveResult, error) {
	name := spec.strategy().String()
	s.stats.request(name)
	key := spec.key(id)
	if e, ok := s.cache.get(key); ok {
		s.stats.hit(name)
		return &SolveResult{GraphID: id, Res: e.res, Oracle: e.oracle, Cached: true}, nil
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = s.cfg.Workers
	}
	var (
		e         *entry
		shared    bool
		err       error
		fromCache bool
	)
	for {
		fromCache = false
		e, shared, err = s.flight.do(ctx, key, func() (*entry, error) {
			// Re-check under the flight: between this caller's cache miss and
			// becoming leader, a previous leader may have completed and
			// cached — re-running the full pipeline would duplicate the solve
			// and its accounting.
			if e, ok := s.cache.get(key); ok {
				fromCache = true
				return e, nil
			}
			// Admission sits here, inside the flight leader: only an actual
			// simulator execution consumes a slot, so cache hits and
			// singleflight followers never queue, and a burst of identical
			// requests costs one slot, not one per caller. A request whose
			// own context dies while queued is a cancellation, not a shed.
			release, aerr := s.admit.acquire(ctx, s.estimateFor(name, feats, spec.Epsilon))
			if aerr != nil {
				if ctx.Err() != nil && errors.Is(aerr, ctx.Err()) {
					s.stats.cancelled(name)
					return nil, &CancelledError{Err: aerr}
				}
				return nil, aerr
			}
			defer release()
			// The entry keeps its own clone so later mutation of a
			// caller-owned graph cannot desynchronize the cached result and
			// its oracle.
			gc := g.Clone()
			start := time.Now()
			res, err := s.runPipeline(ctx, gc, spec, workers)
			wall := time.Since(start)
			if err != nil {
				var pe *PanicError
				if errors.As(err, &pe) {
					s.stats.panicRecovered()
					s.stats.failed(name)
					return nil, err
				}
				var fe *congest.FaultError
				if res != nil && errors.As(err, &fe) {
					// Retry exhaustion: wrap with the partial telemetry (the
					// FaultError chain stays reachable for the ladder and the
					// breaker), and land the fault counters in /metrics.
					s.stats.faultFailure(name, res)
					return nil, &FaultExhaustedError{Stages: res.Stages, Rounds: res.Rounds, Faults: res.Metrics.Faults, Err: err}
				}
				if res != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
					s.stats.cancelled(name)
					return nil, &CancelledError{Stages: res.Stages, Rounds: res.Rounds, Err: err}
				}
				s.stats.failed(name)
				return nil, err
			}
			// Charge the rounds as soon as the simulator has run: even if the
			// oracle construction below failed, the cost was paid.
			s.stats.solved(name, res, wall)
			oracle, err := core.NewPathOracle(gc, res.Dist)
			if err != nil {
				return nil, err
			}
			ent := &entry{g: gc, res: res, oracle: oracle}
			s.cache.add(key, ent)
			return ent, nil
		})
		if err != nil {
			// A follower must not inherit the *leader's* cancellation: the
			// flight ran under the leader's request context, so its
			// deadline or disconnect aborting the shared solve says
			// nothing about this caller. While this caller's own context
			// is still live, go around again — the flight entry is gone
			// before followers wake, so the retry either becomes the new
			// leader (running under this caller's context) or joins a
			// genuinely newer flight. A caller whose own context expired
			// keeps its error; a follower whose wait was cut short by its
			// *own* context gets a CancelledError (no stages — the leader
			// may still be running) so every cancelled solve surfaces
			// uniformly.
			var ce *CancelledError
			isCancelled := errors.As(err, &ce)
			if shared && isCancelled && ctx.Err() == nil {
				continue
			}
			if shared && !isCancelled && ctx.Err() != nil && errors.Is(err, ctx.Err()) {
				// The follower's own deadline cut its wait short. Count it
				// like any other cancellation so Requests = outcomes in
				// /metrics; there is no stage telemetry to attach — the
				// leader (whose run it was) may still be going.
				s.stats.cancelled(name)
				err = &CancelledError{Err: err}
			}
			return nil, err
		}
		break
	}
	switch {
	case shared:
		s.stats.deduped(name)
	case fromCache:
		s.stats.hit(name)
	}
	return &SolveResult{GraphID: id, Res: e.res, Oracle: e.oracle, Cached: shared || fromCache}, nil
}

// solveTestHook, when non-nil, runs inside the admission-gated,
// recovery-wrapped execution path just before the simulator. Tests use it to
// hold execution slots deterministically (saturation/FIFO assertions) and to
// inject panics at the exact point a misbehaving pipeline would throw.
var solveTestHook func(spec SolveSpec)

// runPipeline executes one simulator run inside the panic-recovery boundary:
// the borrowed workspace is returned to the pool by defer — so even a
// panicking pipeline repools rather than leaks it — and a recovered panic
// becomes a *PanicError instead of tearing down the daemon. (A cancelled
// pipeline released its borrowed buffers through the engine's cleanup hook,
// so the workspace goes back in a reusable state on every path.)
func (s *Service) runPipeline(ctx context.Context, gc *graph.Digraph, spec SolveSpec, workers int) (res *core.Result, err error) {
	ws := workspacePool.Get().(*core.Workspace)
	defer workspacePool.Put(ws)
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	if solveTestHook != nil {
		solveTestHook(spec)
	}
	return core.SolveContext(ctx, gc, core.Config{
		Strategy:  spec.strategy(),
		Params:    spec.Preset.Params(),
		Seed:      spec.Seed,
		Epsilon:   spec.Epsilon,
		Workers:   workers,
		Transport: spec.Transport,
		Workspace: ws,
		Faults:    spec.Faults,
	})
}

// PathQuery is one (src, dst) shortest-path request.
type PathQuery struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
}

// PathAnswer is the response to one PathQuery.
type PathAnswer struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
	// Dist is the shortest distance (graph.Inf when unreachable).
	Dist int64 `json:"dist"`
	// Path is the vertex sequence src..dst; nil when Err is set.
	Path []int `json:"path,omitempty"`
	// Err reports a per-query failure (core.ErrNoPath for unreachable
	// pairs) without failing the rest of the batch.
	Err error `json:"-"`
}

// PathsBatch answers all queries against one solve of the stored graph id
// (cached or fresh), fanning the per-query reconstruction across the
// worker pool. Per-query failures land in the answer's Err; only
// solve-level failures error the call.
func (s *Service) PathsBatch(id string, spec SolveSpec, queries []PathQuery) ([]PathAnswer, *SolveResult, error) {
	return s.PathsBatchContext(context.Background(), id, spec, queries)
}

// PathsBatchContext is PathsBatch honoring a context for the underlying
// solve (see SolveContext).
func (s *Service) PathsBatchContext(ctx context.Context, id string, spec SolveSpec, queries []PathQuery) ([]PathAnswer, *SolveResult, error) {
	if spec.strategy().IsApproximate() {
		return nil, nil, ErrApproxPaths
	}
	// Path reconstruction needs exact distances: confine a strategy=auto
	// plan to the exact catalog rather than rejecting it.
	spec.exactPlanning = true
	res, err := s.SolveContext(ctx, id, spec)
	if err != nil {
		return nil, nil, err
	}
	return s.answerBatch(res, spec, queries), res, nil
}

// PathsBatchGraph is PathsBatch for a directly-held graph.
func (s *Service) PathsBatchGraph(g *graph.Digraph, spec SolveSpec, queries []PathQuery) ([]PathAnswer, *SolveResult, error) {
	return s.PathsBatchGraphContext(context.Background(), g, spec, queries)
}

// PathsBatchGraphContext is PathsBatchGraph honoring a context for the
// underlying solve.
func (s *Service) PathsBatchGraphContext(ctx context.Context, g *graph.Digraph, spec SolveSpec, queries []PathQuery) ([]PathAnswer, *SolveResult, error) {
	if spec.strategy().IsApproximate() {
		return nil, nil, ErrApproxPaths
	}
	spec.exactPlanning = true
	res, err := s.SolveGraphContext(ctx, g, spec)
	if err != nil {
		return nil, nil, err
	}
	return s.answerBatch(res, spec, queries), res, nil
}

func (s *Service) answerBatch(res *SolveResult, spec SolveSpec, queries []PathQuery) []PathAnswer {
	workers := spec.Workers
	if workers <= 0 {
		workers = s.cfg.Workers
	}
	answers := make([]PathAnswer, len(queries))
	par.For(par.Workers(workers), len(queries), func(i int) {
		q := queries[i]
		a := PathAnswer{Src: q.Src, Dst: q.Dst}
		if d, err := res.Oracle.Dist(q.Src, q.Dst); err != nil {
			a.Err = err
		} else {
			a.Dist = d
			a.Path, a.Err = res.Oracle.Path(q.Src, q.Dst)
		}
		answers[i] = a
	})
	s.stats.pathQueriesAdd(len(queries))
	return answers
}

// Stats returns a point-in-time accounting snapshot.
func (s *Service) Stats() Stats {
	st := s.stats.snapshot(s.store.len(), s.cache.len())
	st.Admission = s.admit.snapshot()
	st.Admission.OverloadDegraded, st.Admission.PanicsRecovered = s.stats.overloadCounters()
	return st
}
