package serve

// The strategy-planner suite: the decision table (features × budget ×
// deadline → chosen strategy), planned-vs-explicit bit-identity and cache
// sharing, prediction-error accounting, cold-start admission estimates,
// and the regression that capability-infeasible rungs never appear on the
// degradation ladder.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"qclique/internal/core"
	"qclique/internal/graph"
)

// negDigraph builds a graph with a negative arc (and no negative cycle):
// the input class no approximate strategy accepts.
func negDigraph(t *testing.T, n int) *graph.Digraph {
	t.Helper()
	g := graph.NewDigraph(n)
	for i := 0; i < n; i++ {
		if err := g.SetArc(i, (i+1)%n, int64(2+i%3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.SetArc(0, n/2, -1); err != nil {
		t.Fatal(err)
	}
	return g
}

// asymDigraph builds a nonnegative but weight-asymmetric graph: viable for
// approx-quantum, not for approx-skeleton.
func asymDigraph(t *testing.T, n int) *graph.Digraph {
	t.Helper()
	g := graph.NewDigraph(n)
	for i := 0; i < n; i++ {
		if err := g.SetArc(i, (i+1)%n, int64(1+i%4)); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// seedLive injects fake live telemetry so the planner's wall predictions
// rank name at nsPerRound — the white-box lever the steering tests use.
func seedLive(s *Service, name string, nsPerRound int64) {
	s.stats.mu.Lock()
	defer s.stats.mu.Unlock()
	st := s.stats.forStrategy(name)
	st.Solves = 1
	st.RoundsCharged = 1
	st.SolveWallNs = nsPerRound
}

// steerTo makes name the cheapest predicted strategy on a fresh service by
// pricing every other registered strategy astronomically.
func steerTo(s *Service, name string) {
	for _, ce := range CatalogEntries() {
		if ce.Name == name {
			seedLive(s, ce.Name, 1)
		} else {
			seedLive(s, ce.Name, int64(time.Hour))
		}
	}
}

func TestPlannerDecisionTable(t *testing.T) {
	shortCtx, cancel := context.WithTimeout(context.Background(), 50*time.Microsecond)
	defer cancel()
	cases := []struct {
		name     string
		g        func(*testing.T, int) *graph.Digraph
		spec     SolveSpec
		ctx      context.Context
		want     core.Strategy
		wantEps  float64
		excluded []string
	}{
		{
			// No stretch budget: the cheapest exact strategy wins (gossip's
			// O(n) rounds are unbeatable at bench sizes).
			name: "exact-by-default",
			g:    symDigraph,
			spec: SolveSpec{Strategy: core.StrategyAuto},
			want: core.StrategyGossip,
		},
		{
			// A budget without deadline pressure buys nothing: fidelity-first
			// ranking still puts every exact strategy ahead of the
			// approximate ones.
			name: "epsilon-alone-stays-exact",
			g:    symDigraph,
			spec: SolveSpec{Strategy: core.StrategyAuto, Epsilon: 0.5},
			want: core.StrategyGossip,
		},
		{
			// Negative arcs exclude both approximate strategies outright,
			// budget or not.
			name:     "negative-arcs-exclude-approx",
			g:        negDigraph,
			spec:     SolveSpec{Strategy: core.StrategyAuto, Epsilon: 0.5},
			want:     core.StrategyGossip,
			excluded: []string{"approx-quantum", "approx-skeleton"},
		},
		{
			// Asymmetric weights exclude the skeleton strategy only.
			name:     "asymmetry-excludes-skeleton",
			g:        asymDigraph,
			spec:     SolveSpec{Strategy: core.StrategyAuto, Epsilon: 0.5},
			want:     core.StrategyGossip,
			excluded: []string{"approx-skeleton"},
		},
		{
			// exactPlanning (the batch-paths flag) confines the plan to exact
			// candidates even with a stretch budget.
			name: "exact-planning-flag",
			g:    symDigraph,
			spec: SolveSpec{Strategy: core.StrategyAuto, Epsilon: 0.5}.ExactPlanning(),
			want: core.StrategyGossip,
			excluded: []string{
				"approx-quantum", "approx-skeleton",
			},
		},
		{
			// A deadline nothing fits falls to the cheapest predicted
			// candidate rather than refusing.
			name: "hopeless-deadline-picks-cheapest",
			g:    symDigraph,
			spec: SolveSpec{Strategy: core.StrategyAuto},
			ctx:  shortCtx,
			want: core.StrategyGossip,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New(Config{})
			g := tc.g(t, 16)
			ctx := tc.ctx
			if ctx == nil {
				ctx = context.Background()
			}
			resolved, plan, err := s.planSolve(ctx, g.Features(), tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			if resolved.Strategy != tc.want {
				t.Fatalf("planned %v (reason %q), want %v", resolved.Strategy, plan.Reason, tc.want)
			}
			if resolved.Epsilon != tc.wantEps {
				t.Fatalf("resolved epsilon %v, want %v", resolved.Epsilon, tc.wantEps)
			}
			if plan.Strategy != tc.want.String() || plan.Reason == "" {
				t.Fatalf("decision %+v does not describe the resolution", plan)
			}
			if plan.PredictedRounds <= 0 || plan.PredictedWallNs <= 0 {
				t.Fatalf("decision carries no cost prediction: %+v", plan)
			}
			for _, name := range tc.excluded {
				for _, c := range plan.Candidates {
					if c == name {
						t.Fatalf("infeasible strategy %q competed: %v", name, plan.Candidates)
					}
				}
			}
		})
	}
}

// TestPlannerDeadlinePromotesApprox is the forcing-function case: with every
// exact strategy priced over the request deadline and the (1+ε) chain under
// it, the budgeted request must spend its epsilon.
func TestPlannerDeadlinePromotesApprox(t *testing.T) {
	s := New(Config{})
	g := symDigraph(t, 16)
	for _, ce := range CatalogEntries() {
		if ce.Name == "approx-quantum" {
			seedLive(s, ce.Name, 1)
		} else {
			seedLive(s, ce.Name, int64(time.Hour))
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	resolved, plan, err := s.planSolve(ctx, g.Features(), SolveSpec{Strategy: core.StrategyAuto, Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if resolved.Strategy != core.StrategyApproxQuantum || resolved.Epsilon != 0.5 {
		t.Fatalf("planned %v eps=%v (reason %q), want approx-quantum at 0.5", resolved.Strategy, resolved.Epsilon, plan.Reason)
	}
	if !plan.Live {
		t.Fatalf("decision %+v not marked live despite injected telemetry", plan)
	}
	// The same deadline without a budget must stay exact: epsilon is consent.
	resolved, plan, err = s.planSolve(ctx, g.Features(), SolveSpec{Strategy: core.StrategyAuto})
	if err != nil {
		t.Fatal(err)
	}
	if resolved.Strategy.IsApproximate() {
		t.Fatalf("budget-less plan spent stretch anyway: %v (reason %q)", resolved.Strategy, plan.Reason)
	}
}

// TestAutoExplicitBitIdentity steers the planner to each registered
// strategy in turn and checks the contract at several sizes: the planned
// solve returns results bit-identical to an explicit request on a fresh
// service, and the explicit re-request on the same service hits the cache
// entry the planned solve populated.
func TestAutoExplicitBitIdentity(t *testing.T) {
	deadline := 30 * time.Second
	for _, name := range []string{"quantum", "classical-search", "dolev", "gossip", "approx-quantum", "approx-skeleton"} {
		approximate := name == "approx-quantum" || name == "approx-skeleton"
		for _, n := range []int{8, 16, 32} {
			t.Run(fmt.Sprintf("%s/n=%d", name, n), func(t *testing.T) {
				if testing.Short() && n > 16 {
					t.Skip("short mode")
				}
				g := symDigraph(t, n)
				auto := SolveSpec{Strategy: core.StrategyAuto, Preset: PresetScaled, Seed: 3}
				ctx := context.Background()
				if approximate {
					// Approximate strategies are only planned under deadline
					// pressure; price everything else out and supply a budget.
					auto.Epsilon = 0.5
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, deadline)
					defer cancel()
				}
				planned := New(Config{})
				steerTo(planned, name)
				pres, err := planned.SolveGraphContext(ctx, g, auto)
				if err != nil {
					t.Fatal(err)
				}
				if pres.Plan == nil || pres.Plan.Strategy != name {
					t.Fatalf("planner chose %+v, want %s", pres.Plan, name)
				}
				if pres.Res.Strategy.String() != name {
					t.Fatalf("planned solve ran %v, want %s", pres.Res.Strategy, name)
				}

				// Bit-identity: a fresh service given the explicit spec must
				// reproduce the exact same answer and accounting.
				explicit := SolveSpec{Strategy: pres.Res.Strategy, Preset: PresetScaled, Seed: 3}
				if approximate {
					explicit.Epsilon = 0.5
				}
				eres, err := New(Config{}).SolveGraph(g, explicit)
				if err != nil {
					t.Fatal(err)
				}
				if eres.Res.Rounds != pres.Res.Rounds || eres.Res.Products != pres.Res.Products {
					t.Fatalf("accounting diverged: planned rounds=%d products=%d, explicit rounds=%d products=%d",
						pres.Res.Rounds, pres.Res.Products, eres.Res.Rounds, eres.Res.Products)
				}
				for i := 0; i < n; i++ {
					pr, er := pres.Res.Dist.Row(i), eres.Res.Dist.Row(i)
					for j := range pr {
						if pr[j] != er[j] {
							t.Fatalf("d(%d,%d): planned %d != explicit %d", i, j, pr[j], er[j])
						}
					}
				}

				// Cache sharing: on the planning service, the explicit spec
				// must hit the entry the planned solve populated.
				cres, err := planned.SolveGraph(g, explicit)
				if err != nil {
					t.Fatal(err)
				}
				if !cres.Cached {
					t.Fatalf("explicit %s re-solve missed the planned solve's cache entry", name)
				}
			})
		}
	}
}

func TestPlannerPredictionErrorAccounting(t *testing.T) {
	s := New(Config{})
	g := symDigraph(t, 12)
	spec := SolveSpec{Strategy: core.StrategyAuto, Preset: PresetScaled, Seed: 1}
	first, err := s.SolveGraph(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	if first.Plan == nil {
		t.Fatal("planned solve returned no decision")
	}
	// A cache hit is a decision without an observation.
	again, err := s.SolveGraph(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("identical planned solve did not hit the cache")
	}
	st := s.Stats()
	p := st.Planner
	if p == nil {
		t.Fatal("no planner accounting after planned solves")
	}
	if p.Decisions != 2 || p.ObservedSolves != 1 {
		t.Fatalf("decisions=%d observed=%d, want 2 decisions with 1 observed execution", p.Decisions, p.ObservedSolves)
	}
	if p.Chosen[first.Plan.Strategy] != 2 {
		t.Fatalf("chosen map %v, want %q picked twice", p.Chosen, first.Plan.Strategy)
	}
	if p.PredictedRounds != first.Plan.PredictedRounds || p.ObservedRounds != first.Res.Rounds {
		t.Fatalf("rounds accounting %+v disagrees with the solve (predicted %d, observed %d)",
			p, first.Plan.PredictedRounds, first.Res.Rounds)
	}
	wantErr := abs64(first.Plan.PredictedRounds - first.Res.Rounds)
	if p.RoundsErrorAbs != wantErr {
		t.Fatalf("rounds error %d, want |%d-%d| = %d", p.RoundsErrorAbs, first.Plan.PredictedRounds, first.Res.Rounds, wantErr)
	}
	if p.ObservedWallNs <= 0 || p.PredictedWallNs <= 0 {
		t.Fatalf("wall accounting missing: %+v", p)
	}
	// The snapshot must not alias collector state.
	p.Chosen["tampered"] = 99
	if got := s.Stats().Planner.Chosen["tampered"]; got != 0 {
		t.Fatalf("snapshot aliases the collector: tampered=%d", got)
	}
}

// TestLadderSkipsInfeasibleRungs is the regression the capability catalog
// exists for: the degradation ladder must never route a negative-arc graph
// to an approximate rung, nor an asymmetric graph to the skeleton rung.
func TestLadderSkipsInfeasibleRungs(t *testing.T) {
	s := New(Config{})
	spec := SolveSpec{Strategy: core.StrategyQuantum, Degrade: true}

	neg := negDigraph(t, 8).Features()
	if rungs := s.plannerFallbacks(spec, neg); len(rungs) != 0 {
		names := make([]string, len(rungs))
		for i, r := range rungs {
			names[i] = r.strategy().String()
		}
		t.Fatalf("negative-arc graph was handed fallback rungs %v; no approximate strategy accepts it", names)
	}

	asym := asymDigraph(t, 8).Features()
	rungs := s.plannerFallbacks(spec, asym)
	if len(rungs) == 0 {
		t.Fatal("asymmetric nonnegative graph should still have the approx-quantum rung")
	}
	for _, r := range rungs {
		if r.strategy() == core.StrategyApproxSkeleton {
			t.Fatal("asymmetric graph was routed to the skeleton rung")
		}
		if r.Epsilon != plannerDefaultEpsilon {
			t.Fatalf("budget-less rung runs at epsilon %v, want the default %v", r.Epsilon, plannerDefaultEpsilon)
		}
	}

	sym := symDigraph(t, 8).Features()
	rungs = s.plannerFallbacks(spec, sym)
	if len(rungs) != 2 ||
		rungs[0].strategy() != core.StrategyApproxQuantum ||
		rungs[1].strategy() != core.StrategyApproxSkeleton {
		names := make([]string, len(rungs))
		for i, r := range rungs {
			names[i] = r.strategy().String()
		}
		t.Fatalf("symmetric nonnegative ladder = %v, want [approx-quantum approx-skeleton]", names)
	}
}

// TestColdStartAdmissionEstimate covers the admission fix: before any
// execution, the service-time estimate must come from the cost prior
// instead of answering 0 (the cold-start blind spot); after an execution,
// live telemetry takes over.
func TestColdStartAdmissionEstimate(t *testing.T) {
	s := New(Config{})
	feats := symDigraph(t, 16).Features()
	cold := s.estimateFor("quantum", feats, 0)
	if cold <= 0 {
		t.Fatalf("cold estimate = %v, want the catalog prior", cold)
	}
	seedLive(s, "quantum", 1) // one observed solve: 1 round, 1 ns
	if warm := s.estimateFor("quantum", feats, 0); warm != time.Nanosecond {
		t.Fatalf("warm estimate = %v, want the live mean (1ns)", warm)
	}
}

// TestCatalogSurfaces pins the catalog the HTTP endpoint and the library
// listing both render: every registered strategy, with capabilities that
// match the registry.
func TestCatalogSurfaces(t *testing.T) {
	entries := CatalogEntries()
	byName := make(map[string]CatalogEntry, len(entries))
	for _, ce := range entries {
		byName[ce.Name] = ce
	}
	for _, want := range []struct {
		name        string
		guarantee   string
		rejectsNeg  bool
		needsSym    bool
		approximate bool
	}{
		{"quantum", "exact", false, false, false},
		{"classical-search", "exact", false, false, false},
		{"dolev", "exact", false, false, false},
		{"gossip", "exact", false, false, false},
		{"approx-quantum", "1+ε", true, false, true},
		{"approx-skeleton", "2+ε", true, true, true},
	} {
		ce, ok := byName[want.name]
		if !ok {
			t.Fatalf("catalog is missing %q: %v", want.name, byName)
		}
		if ce.Guarantee != want.guarantee || ce.RejectsNegative != want.rejectsNeg ||
			ce.NeedsSymmetric != want.needsSym || ce.Approximate != want.approximate {
			t.Fatalf("catalog entry %+v, want %+v", ce, want)
		}
		if want.approximate && (ce.MinEpsilon <= 0 || ce.MaxEpsilon <= ce.MinEpsilon) {
			t.Fatalf("approximate entry %q without an epsilon domain: %+v", want.name, ce)
		}
	}

	// The live view folds telemetry in after an execution.
	s := New(Config{})
	if _, err := s.SolveGraph(symDigraph(t, 8), SolveSpec{Strategy: core.StrategyGossip, Preset: PresetScaled}); err != nil {
		t.Fatal(err)
	}
	for _, ce := range s.Catalog() {
		if ce.Name == "gossip" {
			if ce.Solves != 1 || ce.MeanWallNs <= 0 || ce.MeanRounds <= 0 {
				t.Fatalf("live catalog entry %+v, want one observed solve with means", ce)
			}
			return
		}
	}
	t.Fatal("gossip missing from the live catalog")
}
