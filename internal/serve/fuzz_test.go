package serve

// Fuzz smoke over the HTTP graph decoder: the PUT /graphs body is the one
// piece of deeply structured attacker-controlled input the daemon parses,
// so the decoder must never panic and must uphold the store's invariants
// (bounded dimension, content-hash determinism) for anything that decodes.
// CI runs `go test -fuzz=FuzzGraphJSON -fuzztime=30s` as a short smoke;
// the seed corpus below also runs as a normal unit test.

import (
	"encoding/json"
	"testing"
)

func FuzzGraphJSON(f *testing.F) {
	f.Add([]byte(`{"n":4,"arcs":[{"u":0,"v":1,"w":3},{"u":1,"v":2,"w":-2}]}`))
	f.Add([]byte(`{"n":0,"arcs":[]}`))
	f.Add([]byte(`{"n":-1}`))
	f.Add([]byte(`{"n":5000}`))
	f.Add([]byte(`{"n":2,"arcs":[{"u":0,"v":0,"w":1}]}`))
	f.Add([]byte(`{"n":2,"arcs":[{"u":9,"v":0,"w":1}]}`))
	f.Add([]byte(`{"n":3,"arcs":[{"u":0,"v":1,"w":9223372036854775807}]}`))
	f.Add([]byte(`{"n":1e3}`))
	f.Add([]byte(`garbage`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var gj GraphJSON
		if err := json.Unmarshal(data, &gj); err != nil {
			return // malformed JSON is the client's problem
		}
		g, err := gj.Digraph()
		if err != nil {
			return // rejected uploads are fine; panics are not
		}
		if g.N() != gj.N {
			t.Fatalf("decoded graph has n=%d, upload said %d", g.N(), gj.N)
		}
		if g.N() > maxUploadVertices {
			t.Fatalf("decoder accepted n=%d beyond the %d limit", g.N(), maxUploadVertices)
		}
		if got, max := g.ArcCount(), len(gj.Arcs); got > max {
			t.Fatalf("graph has %d arcs from %d uploaded entries", got, max)
		}
		// Content identity must be deterministic and clone-invariant —
		// it is the cache key of the whole serving layer.
		if h1, h2 := HashDigraph(g), HashDigraph(g.Clone()); h1 != h2 {
			t.Fatalf("hash not clone-invariant: %q vs %q", h1, h2)
		}
	})
}
