package serve

import (
	"errors"
	"fmt"

	"qclique/internal/graph"
)

// ErrUnknownGraph is returned when a graph id is not (or no longer) in the
// store.
var ErrUnknownGraph = errors.New("serve: unknown graph")

// storedGraph is one stored graph plus its structural profile, computed
// once at insertion — the store is content-addressed, so the profile can
// never go stale.
type storedGraph struct {
	g     *graph.Digraph
	feats graph.Features
}

// graphStore holds uploaded graphs by content hash, least-recently-used
// capped so a long-running daemon cannot be grown without bound by unique
// uploads. Graphs are cloned on the way in and handed out by reference —
// stored graphs are never mutated.
type graphStore struct {
	m *lruMap[string, *storedGraph]
}

func newGraphStore(max int) *graphStore {
	if max <= 0 {
		max = defaultMaxGraphs
	}
	return &graphStore{m: newLRUMap[string, *storedGraph](max)}
}

// put stores a private clone of g (with its feature profile) and returns
// its content id. Re-uploading an identical graph is idempotent (and
// refreshes its recency).
func (s *graphStore) put(g *graph.Digraph) string {
	id := HashDigraph(g)
	if _, ok := s.m.get(id); ok {
		return id
	}
	gc := g.Clone()
	s.m.add(id, &storedGraph{g: gc, feats: gc.Features()})
	return id
}

// get returns the stored graph (and its profile) for id.
func (s *graphStore) get(id string) (*storedGraph, error) {
	sg, ok := s.m.get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownGraph, id)
	}
	return sg, nil
}

func (s *graphStore) len() int {
	return s.m.len()
}
