package serve

import (
	"errors"
	"fmt"

	"qclique/internal/graph"
)

// ErrUnknownGraph is returned when a graph id is not (or no longer) in the
// store.
var ErrUnknownGraph = errors.New("serve: unknown graph")

// graphStore holds uploaded graphs by content hash, least-recently-used
// capped so a long-running daemon cannot be grown without bound by unique
// uploads. Graphs are cloned on the way in and handed out by reference —
// stored graphs are never mutated.
type graphStore struct {
	m *lruMap[string, *graph.Digraph]
}

func newGraphStore(max int) *graphStore {
	if max <= 0 {
		max = defaultMaxGraphs
	}
	return &graphStore{m: newLRUMap[string, *graph.Digraph](max)}
}

// put stores a private clone of g and returns its content id. Re-uploading
// an identical graph is idempotent (and refreshes its recency).
func (s *graphStore) put(g *graph.Digraph) string {
	id := HashDigraph(g)
	if _, ok := s.m.get(id); ok {
		return id
	}
	s.m.add(id, g.Clone())
	return id
}

// get returns the stored graph for id.
func (s *graphStore) get(id string) (*graph.Digraph, error) {
	g, ok := s.m.get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownGraph, id)
	}
	return g, nil
}

func (s *graphStore) len() int {
	return s.m.len()
}
