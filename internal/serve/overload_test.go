package serve

// Overload-resilience tests: admission saturation under -race, FIFO queue
// fairness, shed accounting, deadline-aware shedding, drain lifecycle,
// pressure-driven degradation, and panic recovery. The package-private
// solveTestHook makes the timing deterministic — tests hold execution slots
// (or inject panics) at exactly the point a real pipeline would run.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qclique/internal/graph"
)

// overloadTestGraph is a small nonnegative symmetric graph: fast to solve
// exactly, and viable for every degradation rung (approx-quantum needs
// nonnegative weights, approx-skeleton additionally symmetry).
func overloadTestGraph(t *testing.T, n int) *graph.Digraph {
	t.Helper()
	g := graph.NewDigraph(n)
	for i := 0; i < n; i++ {
		for _, off := range []int{1, 3} {
			j := (i + off) % n
			w := int64(1 + (i+j)%7)
			if err := g.SetArc(i, j, w); err != nil {
				t.Fatal(err)
			}
			if err := g.SetArc(j, i, w); err != nil {
				t.Fatal(err)
			}
		}
	}
	return g
}

// setSolveHook installs a solveTestHook for the duration of the test.
func setSolveHook(t *testing.T, hook func(SolveSpec)) {
	t.Helper()
	solveTestHook = hook
	t.Cleanup(func() { solveTestHook = nil })
}

// waitAdmission polls the admission gauges until ok or the deadline.
func waitAdmission(t *testing.T, svc *Service, what string, ok func(AdmissionStats) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := svc.admit.snapshot()
		if ok(st) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("gave up waiting for %s (inflight=%d queued_now=%d)", what, st.Inflight, st.QueuedNow)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionSaturation is the end-to-end saturation invariant: with
// MaxInflight=3 and far more concurrent cache-missing solves, never more
// than 3 executions run at once, the excess queues (Queued and QueueWaitNs
// land in the stats), every request eventually completes, and no goroutines
// leak. Run under -race this also pins the controller's synchronization.
func TestAdmissionSaturation(t *testing.T) {
	before := runtime.NumGoroutine()
	const cap = 3
	const total = 10
	svc := New(Config{MaxInflight: cap, QueueDepth: 16})
	g := overloadTestGraph(t, 12)
	id, err := svc.PutGraph(g)
	if err != nil {
		t.Fatal(err)
	}

	var cur, max atomic.Int64
	gate := make(chan struct{})
	setSolveHook(t, func(SolveSpec) {
		c := cur.Add(1)
		defer cur.Add(-1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		<-gate
	})

	var wg sync.WaitGroup
	errs := make([]error, total)
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = svc.Solve(id, SolveSpec{Preset: PresetScaled, Seed: uint64(i + 1)})
		}(i)
	}
	// Genuine saturation before anyone is released: the cap held and the
	// rest queued.
	waitAdmission(t, svc, "saturation", func(st AdmissionStats) bool {
		return st.Inflight == cap && st.QueuedNow == total-cap
	})
	close(gate)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("solve %d: %v", i, err)
		}
	}
	if got := max.Load(); got > cap {
		t.Fatalf("observed %d concurrent executions, cap is %d", got, cap)
	}
	st := svc.Stats().Admission
	if st.Queued < total-cap {
		t.Fatalf("Queued = %d, want >= %d", st.Queued, total-cap)
	}
	if st.QueueWaitNs <= 0 {
		t.Fatalf("QueueWaitNs = %d, want > 0", st.QueueWaitNs)
	}
	if st.Inflight != 0 || st.QueuedNow != 0 {
		t.Fatalf("gauges not drained: %+v", st)
	}

	// No goroutine may outlive its request.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before+1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d now=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAdmissionFIFOOrder: queued solves execute in arrival order.
func TestAdmissionFIFOOrder(t *testing.T) {
	svc := New(Config{MaxInflight: 1, QueueDepth: 8})
	g := overloadTestGraph(t, 12)
	id, err := svc.PutGraph(g)
	if err != nil {
		t.Fatal(err)
	}

	const occupier = uint64(100)
	var mu sync.Mutex
	var order []uint64
	gate := make(chan struct{})
	setSolveHook(t, func(spec SolveSpec) {
		mu.Lock()
		order = append(order, spec.Seed)
		mu.Unlock()
		if spec.Seed == occupier {
			<-gate
		}
	})

	var wg sync.WaitGroup
	launch := func(seed uint64) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := svc.Solve(id, SolveSpec{Preset: PresetScaled, Seed: seed}); err != nil {
				t.Errorf("seed %d: %v", seed, err)
			}
		}()
	}
	launch(occupier)
	waitAdmission(t, svc, "the occupier to hold the slot", func(st AdmissionStats) bool { return st.Inflight == 1 })
	want := []uint64{occupier}
	for seed := uint64(1); seed <= 5; seed++ {
		depth := int(seed)
		launch(seed)
		// Confirm each enqueue before issuing the next: arrival order is
		// then unambiguous.
		waitAdmission(t, svc, "enqueue", func(st AdmissionStats) bool { return st.QueuedNow == depth })
		want = append(want, seed)
	}
	close(gate)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(order) != len(want) {
		t.Fatalf("executed %d solves, want %d (%v)", len(order), len(want), order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want FIFO %v", order, want)
		}
	}
}

// TestQueueOverflowSheds: past the queue bound a request is refused with a
// typed OverloadError — counted in Shed, never in Cancelled, never cached.
func TestQueueOverflowSheds(t *testing.T) {
	svc := New(Config{MaxInflight: 1, QueueDepth: 1})
	g := overloadTestGraph(t, 12)
	id, err := svc.PutGraph(g)
	if err != nil {
		t.Fatal(err)
	}

	gate := make(chan struct{})
	setSolveHook(t, func(spec SolveSpec) {
		if spec.Seed == 1 {
			<-gate
		}
	})
	var wg sync.WaitGroup
	launch := func(seed uint64) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := svc.Solve(id, SolveSpec{Preset: PresetScaled, Seed: seed}); err != nil {
				t.Errorf("seed %d: %v", seed, err)
			}
		}()
	}
	// Sequence the occupancy: the slot must be held before the queue seat
	// is taken, or the second solve would just run.
	launch(1)
	waitAdmission(t, svc, "the occupier to hold the slot", func(st AdmissionStats) bool { return st.Inflight == 1 })
	launch(2)
	waitAdmission(t, svc, "the queue seat to fill", func(st AdmissionStats) bool { return st.QueuedNow == 1 })

	_, err = svc.Solve(id, SolveSpec{Preset: PresetScaled, Seed: 3})
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("overflow solve returned %v (%T), want *OverloadError", err, err)
	}
	if oe.Reason != "queue-full" {
		t.Fatalf("shed reason %q, want queue-full", oe.Reason)
	}
	if oe.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %v, want >= 1s", oe.RetryAfter)
	}
	close(gate)
	wg.Wait()

	st := svc.Stats()
	if st.Admission.Shed != 1 {
		t.Fatalf("Shed = %d, want 1", st.Admission.Shed)
	}
	if c := st.Strategies["quantum"].Cancelled; c != 0 {
		t.Fatalf("Cancelled = %d, want 0 — a shed is not a cancellation", c)
	}
	// The shed request computed nothing and cached nothing: re-solving its
	// spec runs fresh.
	res, err := svc.Solve(id, SolveSpec{Preset: PresetScaled, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatal("re-solve of the shed spec reported cached; a shed must leave no cache entry")
	}
}

// TestShedOverHTTP: the wire contract of a shed — 503, code "overloaded",
// retryable marker, Retry-After in header and body.
func TestShedOverHTTP(t *testing.T) {
	svc := New(Config{MaxInflight: 1, QueueDepth: 1})
	g := overloadTestGraph(t, 12)
	id, err := svc.PutGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	setSolveHook(t, func(spec SolveSpec) {
		if spec.Seed == 1 {
			<-gate
		}
	})
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	var wg sync.WaitGroup
	launch := func(seed uint64) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := fmt.Sprintf(`{"preset":"scaled","seed":%d}`, seed)
			resp, err := http.Post(srv.URL+"/v1/graphs/"+id+"/solve", "application/json", bytes.NewBufferString(body))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
		}()
	}
	launch(1)
	waitAdmission(t, svc, "the occupier to hold the slot", func(st AdmissionStats) bool { return st.Inflight == 1 })
	launch(2)
	waitAdmission(t, svc, "the queue seat to fill", func(st AdmissionStats) bool { return st.QueuedNow == 1 })

	resp, err := http.Post(srv.URL+"/v1/graphs/"+id+"/solve", "application/json",
		bytes.NewBufferString(`{"preset":"scaled","seed":3}`))
	if err != nil {
		t.Fatal(err)
	}
	var envelope struct {
		Error ErrorJSON `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	close(gate)
	wg.Wait()

	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed status = %d, want 503", resp.StatusCode)
	}
	if envelope.Error.Code != "overloaded" || !envelope.Error.Retryable {
		t.Fatalf("shed envelope %+v, want code overloaded and retryable", envelope.Error)
	}
	if envelope.Error.RetryAfterMS <= 0 {
		t.Fatalf("retry_after_ms = %d, want > 0", envelope.Error.RetryAfterMS)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed 503 without a Retry-After header")
	}
}

// TestDeadlineShed: a request that would queue, whose remaining deadline
// cannot cover the strategy's estimated service time, is shed immediately —
// reason "deadline" — instead of burning queue residency.
func TestDeadlineShed(t *testing.T) {
	svc := New(Config{MaxInflight: 1, QueueDepth: 8})
	g := overloadTestGraph(t, 24)
	id, err := svc.PutGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the estimate: one completed execution gives the strategy a mean
	// wall time (a full n=24 pipeline runs far longer than the 1ms budget
	// below).
	if _, err := svc.Solve(id, SolveSpec{Preset: PresetScaled, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if svc.stats.estimate("quantum") <= time.Millisecond {
		t.Skipf("warm-up solve finished in %v; too fast to distinguish from the shed budget", svc.stats.estimate("quantum"))
	}

	gate := make(chan struct{})
	setSolveHook(t, func(spec SolveSpec) {
		if spec.Seed == 2 {
			<-gate
		}
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := svc.Solve(id, SolveSpec{Preset: PresetScaled, Seed: 2}); err != nil {
			t.Errorf("occupier: %v", err)
		}
	}()
	waitAdmission(t, svc, "the occupier to hold the slot", func(st AdmissionStats) bool { return st.Inflight == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err = svc.SolveContext(ctx, id, SolveSpec{Preset: PresetScaled, Seed: 3})
	close(gate)
	wg.Wait()

	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("hopeless-deadline solve returned %v (%T), want *OverloadError", err, err)
	}
	if oe.Reason != "deadline" {
		t.Fatalf("shed reason %q, want deadline", oe.Reason)
	}
	st := svc.Stats()
	if st.Admission.Shed != 1 {
		t.Fatalf("Shed = %d, want 1", st.Admission.Shed)
	}
	if c := st.Strategies["quantum"].Cancelled; c != 0 {
		t.Fatalf("Cancelled = %d, want 0", c)
	}
}

// TestDrainLifecycle: BeginDrain flips readiness, sheds the queue with
// reason "draining", refuses new work — and lets the in-flight solve finish.
func TestDrainLifecycle(t *testing.T) {
	svc := New(Config{MaxInflight: 1, QueueDepth: 4})
	g := overloadTestGraph(t, 12)
	id, err := svc.PutGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if rd := svc.Readiness(); !rd.Ready {
		t.Fatalf("fresh service not ready: %+v", rd)
	}

	gate := make(chan struct{})
	setSolveHook(t, func(spec SolveSpec) {
		if spec.Seed == 1 {
			<-gate
		}
	})
	var wg sync.WaitGroup
	var inflightErr, queuedErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, inflightErr = svc.Solve(id, SolveSpec{Preset: PresetScaled, Seed: 1})
	}()
	waitAdmission(t, svc, "the occupier to hold the slot", func(st AdmissionStats) bool { return st.Inflight == 1 })
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, queuedErr = svc.Solve(id, SolveSpec{Preset: PresetScaled, Seed: 2})
	}()
	waitAdmission(t, svc, "a queued waiter", func(st AdmissionStats) bool { return st.QueuedNow == 1 })

	svc.BeginDrain()
	if rd := svc.Readiness(); rd.Ready || rd.Reason != "draining" {
		t.Fatalf("draining readiness = %+v, want not ready with reason draining", rd)
	}
	// New work is refused...
	_, err = svc.Solve(id, SolveSpec{Preset: PresetScaled, Seed: 3})
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != "draining" {
		t.Fatalf("solve during drain returned %v, want *OverloadError draining", err)
	}
	// ...the in-flight solve finishes, the queued one was shed.
	close(gate)
	wg.Wait()
	if inflightErr != nil {
		t.Fatalf("in-flight solve failed during drain: %v", inflightErr)
	}
	if !errors.As(queuedErr, &oe) || oe.Reason != "draining" {
		t.Fatalf("queued solve returned %v, want *OverloadError draining", queuedErr)
	}
}

// TestReadyzEndpoints: healthz is unconditionally live; readyz mirrors the
// drain state over the wire with a 503.
func TestReadyzEndpoints(t *testing.T) {
	svc := New(Config{MaxInflight: 1})
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	for _, path := range []string{"/v1/healthz", "/v1/readyz"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d, want 200", path, resp.StatusCode)
		}
	}
	svc.BeginDrain()
	resp, err := http.Get(srv.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var rd Readiness
	if err := json.NewDecoder(resp.Body).Decode(&rd); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || rd.Ready || rd.Reason != "draining" {
		t.Fatalf("draining readyz = %d %+v, want 503 draining", resp.StatusCode, rd)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining readyz without a Retry-After header")
	}
	resp, err = http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain = %d, want 200 (a draining daemon is alive)", resp.StatusCode)
	}
}

// TestOverloadDegrade: under pressure (here a 1-byte heap watermark, i.e.
// always) a degradable exact request is answered by the cheapest viable
// rung, marked degrade_reason "overload", and counted in OverloadDegraded.
func TestOverloadDegrade(t *testing.T) {
	svc := New(Config{OverloadDegrade: true, OverloadHeapBytes: 1})
	g := overloadTestGraph(t, 12)
	id, err := svc.PutGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	spec := SolveSpec{Preset: PresetScaled, Seed: 5}
	res, err := svc.Solve(id, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.DegradeReason != "overload" {
		t.Fatalf("pressured solve = degraded:%v reason:%q, want overload degradation", res.Degraded, res.DegradeReason)
	}
	if got := res.Res.Strategy.String(); got != "approx-skeleton" {
		t.Fatalf("degraded rung %q, want approx-skeleton (the cheapest viable)", got)
	}
	if res.DegradedFrom.String() != "quantum" {
		t.Fatalf("DegradedFrom = %q, want quantum", res.DegradedFrom)
	}
	st := svc.Stats()
	if st.Admission.OverloadDegraded != 1 {
		t.Fatalf("OverloadDegraded = %d, want 1", st.Admission.OverloadDegraded)
	}
	if d := st.Strategies["quantum"].Degraded; d != 1 {
		t.Fatalf("quantum.Degraded = %d, want 1", d)
	}

	// A second identical request degrades again but rides the rung's cache.
	res2, err := svc.Solve(id, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Degraded || !res2.Cached {
		t.Fatalf("repeat pressured solve = degraded:%v cached:%v, want both", res2.Degraded, res2.Cached)
	}
}

// TestOverloadDegradeCacheBypass: pressure never degrades a request whose
// exact answer is already cached — the hit is free.
func TestOverloadDegradeCacheBypass(t *testing.T) {
	svc := New(Config{OverloadHeapBytes: 1})
	g := overloadTestGraph(t, 12)
	id, err := svc.PutGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	spec := SolveSpec{Preset: PresetScaled, Seed: 6}
	if _, err := svc.Solve(id, spec); err != nil {
		t.Fatal(err)
	}
	spec.Degrade = true
	res, err := svc.Solve(id, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded || !res.Cached {
		t.Fatalf("cached exact answer under pressure = degraded:%v cached:%v, want the plain hit", res.Degraded, res.Cached)
	}
	if st := svc.Stats().Admission; st.OverloadDegraded != 0 {
		t.Fatalf("OverloadDegraded = %d, want 0", st.OverloadDegraded)
	}
}

// TestPanicRecovery is the regression for a pipeline panicking mid-solve:
// the caller gets a typed *PanicError (500 "internal" over the wire),
// PanicsRecovered increments, and the workspace pool stays reusable — the
// follow-up solve is bit-identical to one from a fresh service.
func TestPanicRecovery(t *testing.T) {
	svc := New(Config{})
	g := overloadTestGraph(t, 12)
	id, err := svc.PutGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	var fired atomic.Bool
	setSolveHook(t, func(SolveSpec) {
		if fired.CompareAndSwap(false, true) {
			panic("injected stage panic")
		}
	})
	spec := SolveSpec{Preset: PresetScaled, Seed: 7}
	_, err = svc.Solve(id, spec)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panicking solve returned %v (%T), want *PanicError", err, err)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("PanicError without the panicking stack")
	}
	if st := svc.Stats().Admission; st.PanicsRecovered != 1 {
		t.Fatalf("PanicsRecovered = %d, want 1", st.PanicsRecovered)
	}

	// The pool must have gotten its workspace back in a reusable state.
	res, err := svc.Solve(id, spec)
	if err != nil {
		t.Fatalf("solve after the panic: %v", err)
	}
	if res.Cached {
		t.Fatal("solve after the panic reported cached; the panicked run must cache nothing")
	}
	ref, err := New(Config{}).SolveGraph(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Res.Rounds != ref.Res.Rounds || !res.Res.Dist.Equal(ref.Res.Dist) {
		t.Fatal("solve after a panic differs from an independent fresh solve")
	}
}

// TestPanicRecoveryOverHTTP: the wire shape of a panicking solve is a 500
// "internal" envelope, not a dropped connection.
func TestPanicRecoveryOverHTTP(t *testing.T) {
	svc := New(Config{})
	g := overloadTestGraph(t, 12)
	id, err := svc.PutGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	var fired atomic.Bool
	setSolveHook(t, func(SolveSpec) {
		if fired.CompareAndSwap(false, true) {
			panic("injected stage panic")
		}
	})
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/graphs/"+id+"/solve", "application/json",
		bytes.NewBufferString(`{"preset":"scaled","seed":8}`))
	if err != nil {
		t.Fatal(err)
	}
	var envelope struct {
		Error ErrorJSON `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking solve status = %d, want 500", resp.StatusCode)
	}
	if envelope.Error.Code != "internal" {
		t.Fatalf("panicking solve code = %q, want internal", envelope.Error.Code)
	}
}

// TestRecoverHandlerMiddleware: the outer HTTP boundary catches panics that
// escape everything else, answers 500 "internal", and counts them.
func TestRecoverHandlerMiddleware(t *testing.T) {
	svc := New(Config{})
	h := recoverHandler(svc, http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler exploded")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/metrics", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	var envelope struct {
		Error ErrorJSON `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Error.Code != "internal" {
		t.Fatalf("code = %q, want internal", envelope.Error.Code)
	}
	if st := svc.Stats().Admission; st.PanicsRecovered != 1 {
		t.Fatalf("PanicsRecovered = %d, want 1", st.PanicsRecovered)
	}
}

// TestCancelledWhileQueued: a caller whose own context dies while waiting
// for a slot gets a CancelledError (counted in Cancelled), not a shed.
func TestCancelledWhileQueued(t *testing.T) {
	svc := New(Config{MaxInflight: 1, QueueDepth: 4})
	g := overloadTestGraph(t, 12)
	id, err := svc.PutGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	setSolveHook(t, func(spec SolveSpec) {
		if spec.Seed == 1 {
			<-gate
		}
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := svc.Solve(id, SolveSpec{Preset: PresetScaled, Seed: 1}); err != nil {
			t.Errorf("occupier: %v", err)
		}
	}()
	waitAdmission(t, svc, "the occupier to hold the slot", func(st AdmissionStats) bool { return st.Inflight == 1 })

	ctx, cancel := context.WithCancel(context.Background())
	queuedErr := make(chan error, 1)
	go func() {
		_, err := svc.SolveContext(ctx, id, SolveSpec{Preset: PresetScaled, Seed: 2})
		queuedErr <- err
	}()
	waitAdmission(t, svc, "a queued waiter", func(st AdmissionStats) bool { return st.QueuedNow == 1 })
	cancel()
	err = <-queuedErr
	close(gate)
	wg.Wait()

	var ce *CancelledError
	if !errors.As(err, &ce) || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled-while-queued returned %v, want *CancelledError wrapping context.Canceled", err)
	}
	st := svc.Stats()
	if st.Admission.Shed != 0 {
		t.Fatalf("Shed = %d, want 0 — the caller cancelled, the service shed nothing", st.Admission.Shed)
	}
	if c := st.Strategies["quantum"].Cancelled; c != 1 {
		t.Fatalf("Cancelled = %d, want 1", c)
	}
}
