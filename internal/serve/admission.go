package serve

// Admission control: the service-level overload valve. A bounded number of
// solve executions run concurrently; past that, cache-missing requests wait
// in a bounded FIFO queue, and past *that* the service sheds load with a
// typed OverloadError (HTTP 503 "overloaded" + Retry-After) instead of
// letting a burst of uncached exact solves — each worth seconds of CPU and
// hundreds of MB of pooled workspace at n=128 — OOM or thrash the daemon.
// Queued requests are deadline-aware: a request whose remaining timeout_ms
// budget cannot even cover its own likely service time (the mean wall time
// of past executions of the same strategy) is shed immediately rather than
// burning queue residency on an answer that would arrive dead.
//
// Cache hits and singleflight followers bypass admission entirely — they
// execute nothing. The gate sits inside the flight leader, so a burst of
// identical requests costs one queue slot, not one per caller.

import (
	"context"
	"fmt"
	"runtime/metrics"
	"sync"
	"time"
)

const defaultQueueDepth = 64

// OverloadError reports a request refused (or abandoned) by the admission
// controller: the wait queue is full, the request's deadline cannot outlive
// its likely service time, or the service is draining for shutdown. The
// HTTP layer maps it to 503 with code "overloaded" and a Retry-After; shed
// requests never run the simulator, are never cached, and are counted in
// AdmissionStats.Shed — not in StrategyStats.Cancelled.
type OverloadError struct {
	// Reason is "queue-full", "deadline", or "draining".
	Reason string
	// RetryAfter is the suggested wait before retrying.
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: overloaded (%s), retry after %s", e.Reason, e.RetryAfter.Round(time.Millisecond))
}

// shedErr builds the OverloadError for one shed request. The suggested wait
// is the request's own service-time estimate — roughly when a saturated
// slot frees — floored at one second so the advertised retry is never a
// busy-loop invitation.
func shedErr(reason string, estimate time.Duration) *OverloadError {
	retry := estimate
	if retry < time.Second {
		retry = time.Second
	}
	return &OverloadError{Reason: reason, RetryAfter: retry}
}

// admitWaiter is one queued acquire. err is set strictly before ready
// closes; a nil err on a closed ready means the waiter was granted a slot.
type admitWaiter struct {
	ready    chan struct{}
	err      error
	deadline time.Time // zero = no deadline
	estimate time.Duration
	enqueued time.Time
}

// admission is the in-flight gate: at most maxInflight concurrently
// executing solves, a FIFO wait queue of at most maxQueue behind them, and
// a drain switch that sheds the queue and refuses new work during shutdown.
// maxInflight <= 0 leaves execution unbounded (the library default, and the
// seed behavior); the gauge and drain switch still work so readiness and
// metrics stay meaningful.
type admission struct {
	mu          sync.Mutex
	maxInflight int
	maxQueue    int
	inflight    int
	draining    bool
	queue       []*admitWaiter

	// Cumulative counters, guarded by mu.
	queued      int64
	queueWaitNs int64
	shed        int64
}

func newAdmission(maxInflight, queueDepth int) *admission {
	if maxInflight <= 0 {
		return &admission{}
	}
	if queueDepth <= 0 {
		queueDepth = defaultQueueDepth
	}
	return &admission{maxInflight: maxInflight, maxQueue: queueDepth}
}

// bounded reports whether the controller caps concurrency at all.
func (a *admission) bounded() bool { return a.maxInflight > 0 }

// acquire admits one solve execution, blocking in FIFO order while the
// in-flight cap is saturated. estimate is the request's likely service time
// (zero when unknown); deadline-aware shedding compares it against ctx's
// remaining budget, so a request that could not finish even if admitted
// right now is refused up front. The returned release must be called
// exactly once, after the execution finishes. A shed request gets an
// *OverloadError; a request whose own context dies while queued gets
// ctx.Err() — a cancellation, not a shed.
func (a *admission) acquire(ctx context.Context, estimate time.Duration) (release func(), err error) {
	a.mu.Lock()
	if a.draining {
		a.shed++
		a.mu.Unlock()
		return nil, shedErr("draining", estimate)
	}
	if !a.bounded() {
		a.inflight++
		a.mu.Unlock()
		return a.release, nil
	}
	if a.inflight < a.maxInflight && len(a.queue) == 0 {
		a.inflight++
		a.mu.Unlock()
		return a.release, nil
	}
	// The request would have to queue: shed it immediately if its budget
	// cannot even cover its own service time, or if the queue is full.
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) < estimate {
		a.shed++
		a.mu.Unlock()
		return nil, shedErr("deadline", estimate)
	}
	if len(a.queue) >= a.maxQueue {
		a.shed++
		a.mu.Unlock()
		return nil, shedErr("queue-full", estimate)
	}
	w := &admitWaiter{ready: make(chan struct{}), estimate: estimate, enqueued: time.Now()}
	if dl, ok := ctx.Deadline(); ok {
		w.deadline = dl
	}
	a.queue = append(a.queue, w)
	a.queued++
	a.mu.Unlock()

	select {
	case <-w.ready:
		if w.err != nil {
			return nil, w.err
		}
		return a.release, nil
	case <-ctx.Done():
		a.mu.Lock()
		for i, q := range a.queue {
			if q == w {
				a.queue = append(a.queue[:i], a.queue[i+1:]...)
				a.mu.Unlock()
				return nil, ctx.Err()
			}
		}
		a.mu.Unlock()
		// No longer queued: a concurrent release granted (or drain shed)
		// this waiter in the same instant its context died. Honor the
		// grant's bookkeeping, then report the caller's own cancellation.
		<-w.ready
		if w.err != nil {
			return nil, w.err
		}
		a.release()
		return nil, ctx.Err()
	}
}

// release frees one in-flight slot and promotes queued waiters in FIFO
// order.
func (a *admission) release() {
	a.mu.Lock()
	a.inflight--
	a.promote()
	a.mu.Unlock()
}

// promote grants queue heads while slots are free, shedding any whose
// deadline can no longer cover their estimated service time — admitting
// them would spend a scarce slot computing an answer nobody can receive in
// time. Caller holds mu.
func (a *admission) promote() {
	for len(a.queue) > 0 && a.inflight < a.maxInflight {
		w := a.queue[0]
		a.queue = a.queue[1:]
		if !w.deadline.IsZero() && time.Until(w.deadline) < w.estimate {
			a.shed++
			w.err = shedErr("deadline", w.estimate)
			close(w.ready)
			continue
		}
		a.inflight++
		a.queueWaitNs += time.Since(w.enqueued).Nanoseconds()
		close(w.ready)
	}
}

// drain closes the admission gate for shutdown: every queued waiter is shed
// and every future acquire is refused. In-flight executions are unaffected
// — they finish under the server's drain deadline.
func (a *admission) drain() {
	a.mu.Lock()
	a.draining = true
	for _, w := range a.queue {
		a.shed++
		w.err = shedErr("draining", w.estimate)
		close(w.ready)
	}
	a.queue = nil
	a.mu.Unlock()
}

// snapshot returns the controller's point-in-time gauges and cumulative
// counters. OverloadDegraded and PanicsRecovered live in the stats
// collector; Service.Stats merges them in.
func (a *admission) snapshot() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AdmissionStats{
		MaxInflight: a.maxInflight,
		QueueDepth:  a.maxQueue,
		Inflight:    a.inflight,
		QueuedNow:   len(a.queue),
		Draining:    a.draining,
		Queued:      a.queued,
		QueueWaitNs: a.queueWaitNs,
		Shed:        a.shed,
	}
}

// heapWatermark samples the live-heap size via runtime/metrics, cached for
// heapSamplePeriod — the pressure check runs once per request, and a full
// metrics read per request would be its own overhead under exactly the load
// it is guarding against.
type heapWatermark struct {
	mu     sync.Mutex
	sample []metrics.Sample
	asOf   time.Time
	live   uint64
}

const heapSamplePeriod = 100 * time.Millisecond

func newHeapWatermark() *heapWatermark {
	return &heapWatermark{sample: []metrics.Sample{{Name: "/gc/heap/live:bytes"}}}
}

// liveBytes returns the (cached) live-heap size: bytes occupied by objects
// the last GC marked reachable — the watermark that predicts whether
// admitting another few-hundred-MB workspace will push the daemon into
// swap or OOM.
func (h *heapWatermark) liveBytes() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if time.Since(h.asOf) >= heapSamplePeriod {
		metrics.Read(h.sample)
		if h.sample[0].Value.Kind() == metrics.KindUint64 {
			h.live = h.sample[0].Value.Uint64()
		}
		h.asOf = time.Now()
	}
	return h.live
}
