package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"qclique/internal/graph"
	"qclique/internal/xrand"
)

func cancelTestGraph(t *testing.T, n int) *graph.Digraph {
	t.Helper()
	g, err := graph.RandomDigraph(n, graph.DigraphOpts{
		ArcProb: 0.4, MinWeight: -4, MaxWeight: 8, NoNegativeCycles: true,
	}, xrand.New(uint64(n)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSolveContextCancelledReturnsCancelledError(t *testing.T) {
	svc := New(Config{})
	g := cancelTestGraph(t, 32)
	id, err := svc.PutGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	spec := SolveSpec{Strategy: 0, Preset: PresetScaled}

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Millisecond)
	defer cancel()
	_, err = svc.SolveContext(ctx, id, spec)
	var ce *CancelledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v (%T), want *CancelledError", err, err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("CancelledError must wrap the context error, got %v", err)
	}

	// Nothing cached; the next solve runs fresh and matches an independent
	// service's answer exactly (pooled workspace reuse after cancellation).
	res, err := svc.Solve(id, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatal("solve after a cancelled attempt reported cached")
	}
	ref, err := New(Config{}).SolveGraph(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Res.Rounds != ref.Res.Rounds || !res.Res.Dist.Equal(ref.Res.Dist) {
		t.Fatal("solve after cancellation differs from an independent fresh solve")
	}

	st := svc.Stats().Strategies["quantum"]
	if st.Cancelled != 1 {
		t.Fatalf("stats.Cancelled = %d, want 1", st.Cancelled)
	}
	if st.Solves != 1 {
		t.Fatalf("stats.Solves = %d, want 1 (the cancelled attempt is not a solve)", st.Solves)
	}
}

// TestFollowerDoesNotInheritLeaderCancellation: a caller with no deadline
// that deduplicates onto a leader whose deadline expires must not be
// handed the leader's CancelledError — it retries under its own context
// and succeeds.
func TestFollowerDoesNotInheritLeaderCancellation(t *testing.T) {
	svc := New(Config{})
	g := cancelTestGraph(t, 32)
	id, err := svc.PutGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	spec := SolveSpec{Preset: PresetScaled}

	leaderCtx, cancelLeader := context.WithTimeout(context.Background(), 3*time.Millisecond)
	defer cancelLeader()
	leaderErr := make(chan error, 1)
	go func() {
		_, err := svc.SolveContext(leaderCtx, id, spec)
		leaderErr <- err
	}()
	// Give the leader a head start so the follower usually joins its
	// flight; whichever interleaving the scheduler picks, the follower's
	// contract is the same — it must succeed.
	time.Sleep(1 * time.Millisecond)
	res, err := svc.Solve(id, spec)
	if err != nil {
		t.Fatalf("deadline-free follower failed: %v", err)
	}
	if res.Res.Dist == nil {
		t.Fatal("follower got no distances")
	}
	if err := <-leaderErr; err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("leader err = %v, want nil or DeadlineExceeded", err)
	}
}

// TestFollowerHonorsItsOwnDeadline: a deduplicated follower blocked on a
// slow leader must abandon the wait when its own deadline fires — 503
// promptly, not a success long after the deadline — while the leader
// finishes unaffected.
func TestFollowerHonorsItsOwnDeadline(t *testing.T) {
	svc := New(Config{})
	g := cancelTestGraph(t, 48)
	id, err := svc.PutGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	spec := SolveSpec{Preset: PresetScaled}

	leaderDone := make(chan error, 1)
	go func() {
		_, err := svc.Solve(id, spec)
		leaderDone <- err
	}()
	time.Sleep(2 * time.Millisecond) // let the leader claim the flight
	followerCtx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = svc.SolveContext(followerCtx, id, spec)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("follower err = %v, want DeadlineExceeded", err)
	}
	var ce *CancelledError
	if !errors.As(err, &ce) {
		t.Fatalf("follower err = %v (%T), want *CancelledError", err, err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("follower waited %v past its 5ms deadline", elapsed)
	}
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader failed: %v", err)
	}
}

// TestCancelledSolvesDoNotLeakGoroutines snapshots the goroutine count
// before a burst of cancelled solves through the service and demands it
// settles back afterwards, with retries to absorb scheduler noise; on
// failure it dumps the stacks so the leak is attributable.
func TestCancelledSolvesDoNotLeakGoroutines(t *testing.T) {
	svc := New(Config{})
	g := cancelTestGraph(t, 32)
	id, err := svc.PutGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	spec := SolveSpec{Preset: PresetScaled}

	before := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i+1)*time.Millisecond)
		if _, err := svc.SolveContext(ctx, id, spec); err == nil {
			cancel()
			t.Fatal("expected the deadline to cancel the solve")
		}
		cancel()
	}

	// Worker-pool goroutines exit once their WaitGroup drains; give the
	// scheduler a bounded window to reap them.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines before=%d after=%d; stacks:\n%s", before, after, buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestHTTPDeadlineAnswers503WithPartialStages(t *testing.T) {
	svc := New(Config{})
	handler := NewHandler(svc)
	g := cancelTestGraph(t, 32)
	id, err := svc.PutGraph(g)
	if err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(map[string]any{"strategy": "quantum", "preset": "scaled", "timeout_ms": 2})
	req := httptest.NewRequest(http.MethodPost, "/graphs/"+id+"/solve", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (body %s)", rec.Code, rec.Body.String())
	}
	var out struct {
		Error ErrorJSON `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("503 body is not JSON: %v (%s)", err, rec.Body.String())
	}
	if out.Error.Message == "" || out.Error.Code != "cancelled" {
		t.Fatalf("503 envelope missing message/code: %+v", out.Error)
	}

	// Without the deadline the same request succeeds, uncached, and its
	// stage breakdown sums to the reported rounds.
	body, _ = json.Marshal(map[string]any{"strategy": "quantum", "preset": "scaled"})
	req = httptest.NewRequest(http.MethodPost, "/graphs/"+id+"/solve", bytes.NewReader(body))
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("retry status = %d, want 200 (body %s)", rec.Code, rec.Body.String())
	}
	var solved struct {
		Rounds int64 `json:"rounds"`
		Cached bool  `json:"cached"`
		Stages []struct {
			Name   string `json:"name"`
			Rounds int64  `json:"rounds"`
		} `json:"stages"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &solved); err != nil {
		t.Fatal(err)
	}
	if solved.Cached {
		t.Fatal("retry after a timed-out solve must be a cache miss")
	}
	if len(solved.Stages) == 0 {
		t.Fatal("solve response missing the stage breakdown")
	}
	var sum int64
	for _, sg := range solved.Stages {
		sum += sg.Rounds
	}
	if sum != solved.Rounds {
		t.Fatalf("stage rounds sum %d != rounds %d", sum, solved.Rounds)
	}
}

func TestHTTPAlreadyCancelledRequestAnswers503(t *testing.T) {
	svc := New(Config{})
	handler := NewHandler(svc)
	g := cancelTestGraph(t, 64)
	id, err := svc.PutGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	body, _ := json.Marshal(map[string]any{"strategy": "quantum", "preset": "scaled"})
	req := httptest.NewRequest(http.MethodPost, "/graphs/"+id+"/solve", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	start := time.Now()
	handler.ServeHTTP(rec, req)
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("already-cancelled request took %v, want < 100ms", elapsed)
	}
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
}

func TestParseStrategyEnumeratesRegistry(t *testing.T) {
	for name, want := range map[string]string{
		"":                 "quantum",
		"quantum":          "quantum",
		"classical":        "classical-search",
		"classical-search": "classical-search",
		"dolev":            "dolev",
		"dolev-listing":    "dolev",
		"gossip":           "gossip",
		"approx-quantum":   "approx-quantum",
		"skeleton":         "approx-skeleton",
		"approx-skeleton":  "approx-skeleton",
	} {
		s, err := ParseStrategy(name)
		if err != nil {
			t.Errorf("ParseStrategy(%q): %v", name, err)
			continue
		}
		if s.String() != want {
			t.Errorf("ParseStrategy(%q) = %v, want %s", name, s, want)
		}
	}
	if _, err := ParseStrategy("no-such-pipeline"); err == nil {
		t.Error("unknown strategy accepted")
	} else if want := "registered:"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Errorf("unknown-strategy error %q should enumerate the registry", err)
	}
}

// TestMetricsRollUpStageRounds pins the /metrics rollup: per-stage rounds
// accumulated per strategy must sum to RoundsCharged.
func TestMetricsRollUpStageRounds(t *testing.T) {
	svc := New(Config{})
	for _, n := range []int{8, 12} {
		g := cancelTestGraph(t, n)
		if _, err := svc.SolveGraph(g, SolveSpec{Preset: PresetScaled}); err != nil {
			t.Fatal(err)
		}
	}
	st := svc.Stats().Strategies["quantum"]
	if st.Solves != 2 {
		t.Fatalf("solves = %d, want 2", st.Solves)
	}
	if len(st.Stages) == 0 {
		t.Fatal("no per-stage metrics recorded")
	}
	var sum int64
	for name, agg := range st.Stages {
		if agg.Runs == 0 {
			t.Errorf("stage %q recorded with zero runs", name)
		}
		sum += agg.Rounds
	}
	if sum != st.RoundsCharged {
		t.Fatalf("stage rollup %d != rounds charged %d", sum, st.RoundsCharged)
	}
}
