package serve

// HTTP/JSON surface of the service, mounted by cmd/apspd and exercised
// in-process by the e2e smoke tests. Distances use JSON null for
// "unreachable" so clients never have to know the simulator's saturating
// Inf sentinel; −∞ entries (the negative-cycle region, where no shortest
// distance exists) additionally carry an explicit "undefined" marker —
// "no path" and "no answer" are different facts and the API keeps them
// distinguishable.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"qclique/internal/approx"
	"qclique/internal/congest"
	"qclique/internal/core"
	"qclique/internal/engine"
	"qclique/internal/graph"
)

// ArcJSON is one weighted arc of an uploaded graph.
type ArcJSON struct {
	U int   `json:"u"`
	V int   `json:"v"`
	W int64 `json:"w"`
}

// GraphJSON is the PUT /graphs request body.
type GraphJSON struct {
	N    int       `json:"n"`
	Arcs []ArcJSON `json:"arcs"`
}

// maxUploadVertices bounds n on uploads: the dense adjacency is n² int64s,
// so an unbounded n would let one request allocate the daemon to death —
// and the simulator is far from solving graphs this large anyway.
const maxUploadVertices = 4096

// maxUploadBytes bounds request bodies (a 4096² dense graph with every
// arc listed fits comfortably).
const maxUploadBytes = 1 << 29

// Digraph materializes the uploaded graph.
func (gj GraphJSON) Digraph() (*graph.Digraph, error) {
	if gj.N < 0 {
		return nil, fmt.Errorf("serve: negative vertex count %d", gj.N)
	}
	if gj.N > maxUploadVertices {
		return nil, fmt.Errorf("serve: vertex count %d exceeds limit %d", gj.N, maxUploadVertices)
	}
	g := graph.NewDigraph(gj.N)
	for _, a := range gj.Arcs {
		if err := g.SetArc(a.U, a.V, a.W); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// solveParamsJSON selects a pipeline in solve-bearing request bodies.
// TimeoutMS, when positive, is the request's solve deadline: the pipeline
// checkpoints between stages and inside its inner loops, and a deadline
// that expires answers 503 with the partial per-stage telemetry.
type solveParamsJSON struct {
	Strategy string  `json:"strategy,omitempty"`
	Preset   string  `json:"preset,omitempty"`
	Seed     uint64  `json:"seed,omitempty"`
	Epsilon  float64 `json:"epsilon,omitempty"`
	// Transport selects the congest delivery backend ("local", "sharded";
	// empty = local). Results are bit-identical across backends, so the
	// choice only moves host-side execution; unknown names answer 400.
	Transport string `json:"transport,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
	// Faults arms the solve with a deterministic fault-injection plan
	// (chaos testing over the wire); absent means no injection.
	Faults *FaultPlanJSON `json:"faults,omitempty"`
	// Degrade opts the request into the graceful-degradation ladder: on
	// retry exhaustion, deadline pressure or an open breaker the response
	// is a degraded approximate result instead of a 503.
	Degrade bool `json:"degrade,omitempty"`
}

// FaultPlanJSON is the JSON mirror of congest.FaultPlan.
type FaultPlanJSON struct {
	Seed            uint64  `json:"seed,omitempty"`
	DropRate        float64 `json:"drop_rate,omitempty"`
	DupRate         float64 `json:"dup_rate,omitempty"`
	DelayRate       float64 `json:"delay_rate,omitempty"`
	MaxDelayRounds  int     `json:"max_delay_rounds,omitempty"`
	CorruptRate     float64 `json:"corrupt_rate,omitempty"`
	CrashRate       float64 `json:"crash_rate,omitempty"`
	CrashDownPhases int     `json:"crash_down_phases,omitempty"`
	MaxFaults       int     `json:"max_faults,omitempty"`
}

func (f FaultPlanJSON) plan() congest.FaultPlan {
	return congest.FaultPlan{
		Seed:            f.Seed,
		DropRate:        f.DropRate,
		DupRate:         f.DupRate,
		DelayRate:       f.DelayRate,
		MaxDelayRounds:  f.MaxDelayRounds,
		CorruptRate:     f.CorruptRate,
		CrashRate:       f.CrashRate,
		CrashDownPhases: f.CrashDownPhases,
		MaxFaults:       f.MaxFaults,
	}
}

// solveCtx derives the request's solve context: the HTTP request context
// (cancelled on client disconnect) bounded by the optional timeout.
func (p solveParamsJSON) solveCtx(r *http.Request) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if p.TimeoutMS > 0 {
		return context.WithTimeout(ctx, time.Duration(p.TimeoutMS)*time.Millisecond)
	}
	return ctx, func() {}
}

func (p solveParamsJSON) spec() (SolveSpec, error) {
	if p.TimeoutMS < 0 {
		return SolveSpec{}, fmt.Errorf("serve: negative timeout_ms %d", p.TimeoutMS)
	}
	// An omitted strategy stays zero so Config.DefaultStrategy applies
	// (the daemon may default to the planner); only an explicit name is
	// parsed.
	var strat core.Strategy
	if p.Strategy != "" {
		var err error
		strat, err = ParseStrategy(p.Strategy)
		if err != nil {
			return SolveSpec{}, err
		}
	}
	preset, err := ParsePreset(p.Preset)
	if err != nil {
		return SolveSpec{}, err
	}
	// Epsilon-vs-strategy consistency is checked once the full spec is
	// assembled (query parameters can add epsilon after this point): the
	// handlers validate explicitly or rely on Service.solve, and
	// solveStatus maps ErrInvalidSpec to 400.
	spec := SolveSpec{Strategy: strat, Preset: preset, Seed: p.Seed, Epsilon: p.Epsilon, Transport: p.Transport, Degrade: p.Degrade}
	if p.Faults != nil {
		spec.Faults = p.Faults.plan()
	}
	return spec, nil
}

// SolveJSON is the solve response. The stretch fields are present for the
// approximate strategies only: the guarantee is the contract (1+ε or 2+ε)
// and observed is the measured maximum against the centralized exact
// reference for this solve.
type SolveJSON struct {
	ID                string  `json:"id"`
	Strategy          string  `json:"strategy"`
	Preset            string  `json:"preset"`
	Seed              uint64  `json:"seed"`
	Epsilon           float64 `json:"epsilon,omitempty"`
	Rounds            int64   `json:"rounds"`
	Products          int     `json:"products"`
	FindEdgesCalls    int     `json:"find_edges_calls"`
	GuaranteedStretch float64 `json:"guaranteed_stretch,omitempty"`
	ObservedStretch   float64 `json:"observed_stretch,omitempty"`
	// Transport is the delivery backend that executed the solve producing
	// this result. Transport choice is excluded from the cache identity
	// (results are bit-identical across backends), so a cached response
	// echoes the backend of the original execution, not the request's.
	Transport string `json:"transport,omitempty"`
	Cached    bool   `json:"cached"`
	// Degraded marks a response the degradation ladder answered with a
	// fallback strategy: Strategy (and GuaranteedStretch) describe the rung
	// that actually ran, DegradedFrom the one the client asked for.
	Degraded      bool   `json:"degraded,omitempty"`
	DegradedFrom  string `json:"degraded_from,omitempty"`
	DegradeReason string `json:"degrade_reason,omitempty"`
	// Faults is the solve's injected-fault accounting (present only when
	// faults were injected).
	Faults *congest.FaultCounters `json:"faults,omitempty"`
	// Retries totals the stage re-runs spent recovering from injected
	// faults.
	Retries int `json:"retries,omitempty"`
	// Stages is the engine's per-stage breakdown of the solve that
	// produced this result (present on fresh and cached responses alike —
	// the cache retains the original run's telemetry). Stage rounds sum
	// exactly to Rounds.
	Stages []engine.StageStat `json:"stages,omitempty"`
	// PlannedStrategy/PlannerReason/Predicted* echo the planner's decision
	// when the request asked for strategy=auto: the strategy the planner
	// resolved to, why, and its cost prediction at decision time. Absent on
	// explicit-strategy requests.
	PlannedStrategy string `json:"planned_strategy,omitempty"`
	PlannerReason   string `json:"planner_reason,omitempty"`
	PredictedRounds int64  `json:"predicted_rounds,omitempty"`
	PredictedWallNs int64  `json:"predicted_wall_ns,omitempty"`
}

// PathJSON is one answer in the paths:batch response. Dist is null both
// for unreachable pairs and for undefined ones; Undefined separates the
// two (true means the pair sits in a −∞ region — no shortest distance
// exists, as opposed to no path existing).
type PathJSON struct {
	Src       int    `json:"src"`
	Dst       int    `json:"dst"`
	Dist      *int64 `json:"dist"` // null when unreachable or undefined
	Undefined bool   `json:"undefined,omitempty"`
	Path      []int  `json:"path,omitempty"`
	Error     string `json:"error,omitempty"`
}

// batchRequestJSON is the paths:batch request body.
type batchRequestJSON struct {
	solveParamsJSON
	Queries []PathQuery `json:"queries"`
}

// ErrorJSON is the single error envelope every non-2xx response carries,
// wrapped as {"error": {...}}: a stable machine-readable code, the human
// message, whether the failure class is transient, and — for retryable
// failures — the suggested wait. Transient solve failures additionally
// attach the partial telemetry (stages, rounds, fault counters) of the work
// done before the stop.
type ErrorJSON struct {
	// Code classifies the failure: "invalid_spec", "not_found",
	// "unprocessable", "cancelled", "fault_exhausted", "breaker_open",
	// "overloaded", "internal".
	Code string `json:"code"`
	// Message is the human-readable error text.
	Message string `json:"message"`
	// Retryable marks transient failures (the 503 class): the identical
	// request may succeed later.
	Retryable bool `json:"retryable"`
	// RetryAfterMS suggests the wait before retrying (retryable only);
	// mirrored in the Retry-After header (whole seconds).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
	// Stages/Rounds carry the partial per-stage telemetry of a cancelled or
	// fault-exhausted solve — what the deadline (or the retry budget)
	// bought before the stop.
	Stages []engine.StageStat `json:"stages,omitempty"`
	Rounds int64              `json:"rounds,omitempty"`
	// Faults is the injected-fault accounting of a fault-exhausted solve.
	Faults *congest.FaultCounters `json:"faults,omitempty"`
}

// errorEnvelope is the response body shape: {"error": {...}}.
type errorEnvelope struct {
	Error ErrorJSON `json:"error"`
}

// errorCode maps an HTTP status to its envelope code for failures without a
// more specific classification.
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "invalid_spec"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusUnprocessableEntity:
		return "unprocessable"
	case http.StatusServiceUnavailable:
		return "cancelled"
	default:
		return "internal"
	}
}

// apiPrefix is the current API version mount point. Legacy unprefixed
// routes stay mounted as aliases for one release, answering with a
// Deprecation header and a successor-version Link.
const apiPrefix = "/v1"

// NewHandler mounts the service's HTTP API under /v1 (legacy unprefixed
// aliases answer identically plus deprecation headers):
//
//	PUT  /v1/graphs                   upload a graph, returns its content id
//	POST /v1/graphs/{id}/solve        solve (cache-aware), returns round accounting
//	GET  /v1/graphs/{id}/dist         distances: full matrix, one row (?src=), or one pair (?src=&dst=)
//	POST /v1/graphs/{id}/paths:batch  many shortest-path queries against one solve
//	GET  /v1/strategies               the strategy catalog: capabilities + live telemetry
//	GET  /v1/metrics                  per-strategy, per-transport and admission accounting
//	GET  /v1/healthz                  liveness (always 200 while the process serves)
//	GET  /v1/readyz                   readiness (503 while draining or queue-saturated)
//
// Every non-2xx response body is the {"error": {code, message, retryable,
// retry_after_ms}} envelope (see ErrorJSON). The whole mux is wrapped in
// panic-recovery middleware: a panicking handler answers 500 "internal"
// instead of killing the daemon's connection serving.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	// handle mounts h at /v1+pattern and at the legacy unprefixed pattern;
	// the legacy alias advertises its successor so clients can migrate
	// before the unprefixed routes go away.
	handle := func(method, pattern string, h http.HandlerFunc) {
		mux.HandleFunc(method+" "+apiPrefix+pattern, h)
		mux.HandleFunc(method+" "+pattern, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Deprecation", "true")
			w.Header().Set("Link", fmt.Sprintf("<%s%s>; rel=\"successor-version\"", apiPrefix, r.URL.Path))
			h(w, r)
		})
	}
	handle("PUT", "/graphs", func(w http.ResponseWriter, r *http.Request) {
		var gj GraphJSON
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxUploadBytes)).Decode(&gj); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		g, err := gj.Digraph()
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		id, err := s.PutGraph(g)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		out := map[string]any{"id": id, "n": g.N(), "arcs": g.ArcCount()}
		// Echo the structural profile computed at insert so clients can see
		// what the planner will see (negative arcs and asymmetry restrict
		// the viable catalog).
		if feats, err := s.GraphFeatures(id); err == nil {
			out["features"] = feats
		}
		writeJSON(w, http.StatusOK, out)
	})

	handle("POST", "/graphs/{id}/solve", func(w http.ResponseWriter, r *http.Request) {
		var body solveParamsJSON
		if r.ContentLength != 0 {
			if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxUploadBytes)).Decode(&body); err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
		}
		spec, err := body.spec()
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		ctx, cancel := body.solveCtx(r)
		defer cancel()
		res, err := s.SolveContext(ctx, r.PathValue("id"), spec)
		if err != nil {
			solveError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, solveResponse(res, spec))
	})

	handle("GET", "/graphs/{id}/dist", func(w http.ResponseWriter, r *http.Request) {
		spec, err := solveParamsJSON{
			Strategy:  r.URL.Query().Get("strategy"),
			Preset:    r.URL.Query().Get("preset"),
			Transport: r.URL.Query().Get("transport"),
		}.spec()
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if v := r.URL.Query().Get("seed"); v != "" {
			seed, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("serve: bad seed: %w", err))
				return
			}
			spec.Seed = seed
		}
		if v := r.URL.Query().Get("epsilon"); v != "" {
			eps, err := strconv.ParseFloat(v, 64)
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("serve: bad epsilon: %w", err))
				return
			}
			spec.Epsilon = eps
		}
		var timeoutMS int64
		if v := r.URL.Query().Get("timeout_ms"); v != "" {
			t, err := strconv.ParseInt(v, 10, 64)
			if err != nil || t < 0 {
				httpError(w, http.StatusBadRequest, fmt.Errorf("serve: bad timeout_ms %q", v))
				return
			}
			timeoutMS = t
		}
		if err := spec.Validate(); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		// Validate the query parameters against the stored graph BEFORE
		// solving: a malformed request must cost a 400, not a full
		// pipeline run charged to the metrics. The shared store reference
		// is fine here — the handler only reads the dimension (the public
		// Service.Graph accessor clones, precisely so callers cannot
		// poison the content-addressed store).
		id := r.PathValue("id")
		sg, err := s.store.get(id)
		if err != nil {
			httpError(w, solveStatus(err), err)
			return
		}
		n := sg.g.N()
		parseIdx := func(name string) (int, bool, error) {
			v := r.URL.Query().Get(name)
			if v == "" {
				return 0, false, nil
			}
			i, err := strconv.Atoi(v)
			if err != nil || i < 0 || i >= n {
				return 0, true, fmt.Errorf("serve: %s=%q out of range [0,%d)", name, v, n)
			}
			return i, true, nil
		}
		src, haveSrc, err := parseIdx("src")
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		dst, haveDst, err := parseIdx("dst")
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if haveDst && !haveSrc {
			httpError(w, http.StatusBadRequest, errors.New("serve: dst requires src"))
			return
		}
		ctx, cancel := solveParamsJSON{TimeoutMS: timeoutMS}.solveCtx(r)
		defer cancel()
		res, err := s.SolveContext(ctx, id, spec)
		if err != nil {
			solveError(w, err)
			return
		}
		out := map[string]any{"id": res.GraphID, "n": n, "cached": res.Cached}
		switch {
		case haveSrc && haveDst:
			out["src"], out["dst"] = src, dst
			v, undefined := distJSON(res.Res.Dist.At(src, dst))
			out["dist"] = v
			if undefined {
				out["undefined"] = true
			}
		case haveSrc:
			out["src"] = src
			row, undefined := rowJSON(res.Res.Dist.RowView(src), src, nil)
			out["dist"] = row
			if len(undefined) > 0 {
				out["undefined"] = undefined
			}
		default:
			rows := make([][]*int64, n)
			var undefined [][2]int
			for i := 0; i < n; i++ {
				rows[i], undefined = rowJSON(res.Res.Dist.RowView(i), i, undefined)
			}
			out["dist"] = rows
			if len(undefined) > 0 {
				out["undefined"] = undefined
			}
		}
		writeJSON(w, http.StatusOK, out)
	})

	handle("POST", "/graphs/{id}/paths:batch", func(w http.ResponseWriter, r *http.Request) {
		var body batchRequestJSON
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxUploadBytes)).Decode(&body); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		spec, err := body.spec()
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		ctx, cancel := body.solveCtx(r)
		defer cancel()
		answers, res, err := s.PathsBatchContext(ctx, r.PathValue("id"), spec, body.Queries)
		if err != nil {
			solveError(w, err)
			return
		}
		out := make([]PathJSON, len(answers))
		for i, a := range answers {
			pj := PathJSON{Src: a.Src, Dst: a.Dst, Path: a.Path}
			pj.Dist, pj.Undefined = distJSON(a.Dist)
			if a.Err != nil {
				// Per-query failures answer inside the batch (the rest of
				// the batch is unaffected): unreachable pairs carry
				// ErrNoPath, −∞ pairs carry ErrUndefinedDistance plus the
				// undefined marker.
				pj.Error = a.Err.Error()
				pj.Dist = nil
				pj.Path = nil
				pj.Undefined = errors.Is(a.Err, core.ErrUndefinedDistance)
			}
			out[i] = pj
		}
		writeJSON(w, http.StatusOK, map[string]any{"id": res.GraphID, "cached": res.Cached, "results": out})
	})

	handle("GET", "/strategies", func(w http.ResponseWriter, r *http.Request) {
		// The planner's catalog: every registered strategy with its
		// capability profile and whatever live telemetry has accrued — the
		// same data the planner ranks with, so clients can predict (and
		// debug) strategy=auto decisions.
		writeJSON(w, http.StatusOK, map[string]any{"strategies": s.Catalog()})
	})

	handle("GET", "/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})

	handle("GET", "/healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness: the process is up and serving connections. Deliberately
		// unconditional — a draining or saturated daemon is still alive, and
		// conflating the two teaches orchestrators to kill a busy process.
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	handle("GET", "/readyz", func(w http.ResponseWriter, r *http.Request) {
		rd := s.Readiness()
		status := http.StatusOK
		if !rd.Ready {
			status = http.StatusServiceUnavailable
			setRetryAfter(w, time.Second)
		}
		writeJSON(w, status, rd)
	})
	return recoverHandler(s, mux)
}

// recoverHandler is the outermost panic boundary of the HTTP surface: a
// panicking handler (or anything below it that escaped the solve-level
// recovery) answers a 500 "internal" envelope and counts in
// PanicsRecovered, instead of net/http's default of killing the connection
// with an empty reply. ErrAbortHandler keeps its contractual meaning —
// deliberate aborts re-panic.
func recoverHandler(s *Service, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler { //nolint:errorlint // sentinel by identity, per net/http contract
				panic(rec)
			}
			s.stats.panicRecovered()
			// Best effort: if the handler already wrote a response the
			// header set fails silently, which is all that can be done.
			httpError(w, http.StatusInternalServerError, fmt.Errorf("serve: handler panicked: %v", rec))
		}()
		next.ServeHTTP(w, r)
	})
}

func solveResponse(res *SolveResult, spec SolveSpec) SolveJSON {
	sj := SolveJSON{
		ID: res.GraphID,
		// The strategy that actually ran — under degradation this is the
		// ladder rung that answered, not the one requested.
		Strategy:       res.Res.Strategy.String(),
		Preset:         spec.Preset.String(),
		Seed:           spec.Seed,
		Epsilon:        res.Res.Epsilon,
		Rounds:         res.Res.Rounds,
		Products:       res.Res.Products,
		FindEdgesCalls: res.Res.FindEdgesCalls,
		Transport:      res.Res.Transport.Transport,
		Cached:         res.Cached,
		Stages:         res.Res.Stages,
	}
	if res.Res.Epsilon > 0 {
		sj.GuaranteedStretch = res.Res.GuaranteedStretch
		sj.ObservedStretch = res.Res.ObservedStretch
	}
	if res.Degraded {
		sj.Degraded = true
		sj.DegradedFrom = res.DegradedFrom.String()
		sj.DegradeReason = res.DegradeReason
		// A degraded response always reports its stretch contract, even if
		// a future exact rung were to answer with stretch 1.
		sj.GuaranteedStretch = res.Res.GuaranteedStretch
	}
	if f := res.Res.Metrics.Faults; f.Injected() > 0 {
		sj.Faults = &f
	}
	for _, sg := range res.Res.Stages {
		sj.Retries += sg.Retries
	}
	if res.Plan != nil {
		sj.PlannedStrategy = res.Plan.Strategy
		sj.PlannerReason = res.Plan.Reason
		sj.PredictedRounds = res.Plan.PredictedRounds
		sj.PredictedWallNs = res.Plan.PredictedWallNs
	}
	return sj
}

// solveStatus maps solve errors to HTTP statuses: unknown graphs are 404,
// malformed specs are 400, inputs the strategy cannot answer (negative
// cycles; negative or asymmetric weights under an approximate strategy)
// are 422, transient failures — cancelled or deadline-expired solves,
// fault-retry exhaustion, an open circuit breaker, admission-controller
// sheds — are 503, the rest (including recovered panics) 500.
func solveStatus(err error) int {
	var fe *congest.FaultError
	var be *BreakerOpenError
	var oe *OverloadError
	switch {
	case errors.Is(err, core.ErrNegativeCycle),
		errors.Is(err, approx.ErrNegativeWeight),
		errors.Is(err, approx.ErrAsymmetric):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled),
		errors.As(err, &fe), errors.As(err, &be), errors.As(err, &oe):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrInvalidSpec):
		return http.StatusBadRequest
	case errors.Is(err, ErrUnknownGraph):
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}

// setRetryAfter advertises when the client should try again (whole
// seconds, minimum 1 — the 503 class is transient by definition).
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

// solveError writes a solve failure in the error envelope. Every 503
// carries a Retry-After header and the retryable marker — the failure class
// is transient (deadline, injected faults, open breaker) and clients should
// distinguish "try again" from "this request can never work". A
// cancellation additionally carries the partial per-stage telemetry, so a
// timed-out request still reports the stages (and rounds) the deadline
// bought.
func solveError(w http.ResponseWriter, err error) {
	status := solveStatus(err)
	if status != http.StatusServiceUnavailable {
		httpError(w, status, err)
		return
	}
	ej := ErrorJSON{Code: "cancelled", Message: err.Error(), Retryable: true}
	wait := time.Second
	var cancelled *CancelledError
	var exhausted *FaultExhaustedError
	var be *BreakerOpenError
	var oe *OverloadError
	switch {
	case errors.As(err, &oe):
		ej.Code = "overloaded"
		wait = oe.RetryAfter
	case errors.As(err, &cancelled):
		ej.Stages = cancelled.Stages
		ej.Rounds = cancelled.Rounds
	case errors.As(err, &exhausted):
		ej.Code = "fault_exhausted"
		ej.Stages = exhausted.Stages
		ej.Rounds = exhausted.Rounds
		f := exhausted.Faults
		ej.Faults = &f
	case errors.As(err, &be):
		ej.Code = "breaker_open"
		wait = be.RetryAfter
	}
	ej.RetryAfterMS = retryAfterMS(wait)
	setRetryAfter(w, wait)
	writeJSON(w, http.StatusServiceUnavailable, errorEnvelope{Error: ej})
}

// retryAfterMS floors the advertised wait at one millisecond — a retryable
// response always suggests a positive wait.
func retryAfterMS(d time.Duration) int64 {
	ms := d.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return ms
}

// distJSON maps a distance entry to its JSON form: (nil, false) for +∞
// (unreachable), (nil, true) for −∞ (undefined — the negative-cycle
// region), (&d, false) otherwise.
func distJSON(d int64) (*int64, bool) {
	if d >= graph.Inf {
		return nil, false
	}
	if d <= graph.NegInf {
		return nil, true
	}
	return &d, false
}

// rowJSON converts row src of a distance matrix, appending any undefined
// pairs (src, j) to undefined so the response can mark them explicitly.
func rowJSON(row []int64, src int, undefined [][2]int) ([]*int64, [][2]int) {
	out := make([]*int64, len(row))
	for j, d := range row {
		var undef bool
		out[j], undef = distJSON(d)
		if undef {
			undefined = append(undefined, [2]int{src, j})
		}
	}
	return out, undefined
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorEnvelope{Error: ErrorJSON{
		Code:    errorCode(status),
		Message: err.Error(),
	}})
}
