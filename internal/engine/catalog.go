package engine

import (
	"math"

	"qclique/internal/graph"
)

// Capabilities declares what inputs a strategy accepts and which accuracy
// class it belongs to — the static half of the catalog the serving layer's
// planner queries. The zero value ("accepts anything, exact") is the
// correct default for strategies that predate the Costed interface.
type Capabilities struct {
	// Approximate mirrors Strategy.Approximate: the pipeline trades
	// exactness for rounds and requires an epsilon budget.
	Approximate bool `json:"approximate"`
	// RejectsNegative marks pipelines that refuse graphs with negative arc
	// weights (multiplicative stretch is meaningless below zero).
	RejectsNegative bool `json:"rejects_negative,omitempty"`
	// NeedsSymmetric marks pipelines restricted to weight-symmetric graphs
	// (the directed encoding of undirected inputs).
	NeedsSymmetric bool `json:"needs_symmetric,omitempty"`
	// MinEpsilon/MaxEpsilon bound the accepted stretch budget (both 0 for
	// exact strategies, which take none).
	MinEpsilon float64 `json:"min_epsilon,omitempty"`
	MaxEpsilon float64 `json:"max_epsilon,omitempty"`
}

// Viable reports whether a graph with profile f satisfies the strategy's
// input constraints.
func (c Capabilities) Viable(f graph.Features) bool {
	if c.RejectsNegative && f.NegativeArcs {
		return false
	}
	if c.NeedsSymmetric && !f.Symmetric {
		return false
	}
	return true
}

// CostPrior is a strategy's a-priori cost estimate for one solve: simulated
// rounds and host wall time. Priors are coarse by design — power-law
// extrapolations from committed benchmark anchors ("Mind the Õ": asymptotic
// claims mispredict real cost, so measured anchors beat exponents read off
// the theorems) — and the planner corrects them with live telemetry as
// solves complete.
type CostPrior struct {
	// Rounds is the expected simulated CONGEST-CLIQUE round charge.
	Rounds int64 `json:"rounds"`
	// WallNs is the expected host wall-clock time in nanoseconds.
	WallNs int64 `json:"wall_ns"`
}

// ScaleFrom extrapolates an anchored measurement (taken at anchorN
// vertices) to an n-vertex input via per-axis power laws, flooring both
// axes at 1 so a prior never degenerates to "free".
func (p CostPrior) ScaleFrom(anchorN, n int, roundsExp, wallExp float64) CostPrior {
	if n <= 0 || anchorN <= 0 {
		return CostPrior{Rounds: 1, WallNs: 1}
	}
	ratio := float64(n) / float64(anchorN)
	out := CostPrior{
		Rounds: int64(float64(p.Rounds) * math.Pow(ratio, roundsExp)),
		WallNs: int64(float64(p.WallNs) * math.Pow(ratio, wallExp)),
	}
	if out.Rounds < 1 {
		out.Rounds = 1
	}
	if out.WallNs < 1 {
		out.WallNs = 1
	}
	return out
}

// Costed is the catalog half of a strategy: its input constraints and its
// cost prior. All registered strategies implement it; CapabilitiesOf and
// PredictCostOf degrade gracefully for any future strategy that does not.
type Costed interface {
	// Capabilities declares the strategy's input constraints and epsilon
	// domain.
	Capabilities() Capabilities
	// PredictCost estimates one solve's cost for a graph with profile f
	// under stretch budget eps (ignored by exact strategies).
	PredictCost(f graph.Features, eps float64) CostPrior
}

// CapabilitiesOf returns s's declared capabilities, falling back to the
// conservative zero profile (plus the Approximate flag the base interface
// already carries) when s does not implement Costed.
func CapabilitiesOf(s Strategy) Capabilities {
	if c, ok := s.(Costed); ok {
		return c.Capabilities()
	}
	return Capabilities{Approximate: s.Approximate()}
}

// PredictCostOf returns s's cost prior for (f, eps); ok is false when s
// does not implement Costed (no prior exists).
func PredictCostOf(s Strategy, f graph.Features, eps float64) (CostPrior, bool) {
	if c, ok := s.(Costed); ok {
		return c.PredictCost(f, eps), true
	}
	return CostPrior{}, false
}

// CatalogEntry pairs a registered strategy with its declared capabilities.
type CatalogEntry struct {
	Strategy     Strategy
	Capabilities Capabilities
}

// Catalog returns every registered strategy with its capabilities, sorted
// by canonical name — the queryable form of the registry the planner and
// the GET /v1/strategies endpoint consume.
func Catalog() []CatalogEntry {
	ss := Strategies()
	out := make([]CatalogEntry, len(ss))
	for i, s := range ss {
		out[i] = CatalogEntry{Strategy: s, Capabilities: CapabilitiesOf(s)}
	}
	return out
}
