package engine

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"qclique/internal/congest"
)

// fakeStrategy builds a configurable pipeline for engine unit tests.
type fakeStrategy struct {
	name   string
	stages func(req *Request, out *Outcome) (*Plan, error)
}

func (f fakeStrategy) Name() string              { return f.name }
func (f fakeStrategy) Approximate() bool         { return false }
func (f fakeStrategy) Guarantee(float64) float64 { return 1 }
func (f fakeStrategy) Stages(req *Request, out *Outcome) (*Plan, error) {
	return f.stages(req, out)
}

func TestRunRecordsPerStageRoundsSummingToTotal(t *testing.T) {
	net, err := congest.NewNetwork(4)
	if err != nil {
		t.Fatal(err)
	}
	s := fakeStrategy{name: "fake", stages: func(req *Request, out *Outcome) (*Plan, error) {
		return &Plan{Net: net, Stages: []Stage{
			{Name: "a", Run: func(context.Context) error { return net.Broadcast("a", 0, 3) }},
			{Name: "b", Run: func(context.Context) error { return net.Broadcast("b", 1, 5) }},
			{Name: "c", Run: func(context.Context) error { return nil }},
		}}, nil
	}}
	out, err := Run(context.Background(), s, &Request{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Stages) != 3 {
		t.Fatalf("stages = %d, want 3", len(out.Stages))
	}
	if out.Stages[0].Rounds != 3 || out.Stages[1].Rounds != 5 || out.Stages[2].Rounds != 0 {
		t.Fatalf("per-stage rounds = %+v, want 3/5/0", out.Stages)
	}
	if got := SumRounds(out.Stages); got != out.Rounds || out.Rounds != 8 {
		t.Fatalf("sum %d, total %d, want both 8", got, out.Rounds)
	}
}

func TestRunRejectsUnattributedNetworkActivity(t *testing.T) {
	net, err := congest.NewNetwork(4)
	if err != nil {
		t.Fatal(err)
	}
	s := fakeStrategy{name: "leaky", stages: func(req *Request, out *Outcome) (*Plan, error) {
		// Charging during plan construction means the rounds belong to no
		// stage — the engine must refuse rather than under-attribute.
		if err := net.Broadcast("outside", 0, 2); err != nil {
			return nil, err
		}
		return &Plan{Net: net, Stages: []Stage{
			{Name: "only", Run: func(context.Context) error { return nil }},
		}}, nil
	}}
	if _, err := Run(context.Background(), s, &Request{}); err == nil {
		t.Fatal("engine accepted network activity outside any stage")
	}
}

func TestRunSkipsStagesAndMarksThem(t *testing.T) {
	ran := false
	s := fakeStrategy{name: "skippy", stages: func(req *Request, out *Outcome) (*Plan, error) {
		return &Plan{Stages: []Stage{
			{Name: "live", Run: func(context.Context) error { return nil }},
			{Name: "dead", Skip: func() bool { return true }, Run: func(context.Context) error {
				ran = true
				return nil
			}},
		}}, nil
	}}
	out, err := Run(context.Background(), s, &Request{})
	if err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("skipped stage ran")
	}
	if !out.Stages[1].Skipped || out.Stages[1].Rounds != 0 {
		t.Fatalf("skipped stage stat = %+v, want Skipped with zero cost", out.Stages[1])
	}
}

func TestRunCancellationReturnsPartialTelemetryAndCleansUp(t *testing.T) {
	net, err := congest.NewNetwork(4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cleaned := false
	s := fakeStrategy{name: "cancelled", stages: func(req *Request, out *Outcome) (*Plan, error) {
		return &Plan{Net: net, Cleanup: func() { cleaned = true }, Stages: []Stage{
			{Name: "first", Run: func(context.Context) error {
				if err := net.Broadcast("first", 0, 7); err != nil {
					return err
				}
				cancel() // checkpoint before the next stage must fire
				return nil
			}},
			{Name: "second", Run: func(context.Context) error {
				t.Fatal("stage after cancellation ran")
				return nil
			}},
		}}, nil
	}}
	out, err := Run(ctx, s, &Request{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !cleaned {
		t.Fatal("Cleanup did not run on cancellation")
	}
	if out == nil || len(out.Stages) != 1 || out.Stages[0].Rounds != 7 {
		t.Fatalf("partial outcome = %+v, want the first stage's telemetry", out)
	}
	if out.Rounds != 7 {
		t.Fatalf("partial Rounds = %d, want 7", out.Rounds)
	}
	if out.Dist != nil {
		t.Fatal("cancelled outcome must not carry a distance matrix")
	}
}

func TestRunStageErrorCleansUp(t *testing.T) {
	boom := errors.New("boom")
	cleaned := false
	s := fakeStrategy{name: "failing", stages: func(req *Request, out *Outcome) (*Plan, error) {
		return &Plan{Cleanup: func() { cleaned = true }, Stages: []Stage{
			{Name: "explode", Run: func(context.Context) error { return boom }},
		}}, nil
	}}
	out, err := Run(context.Background(), s, &Request{})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the stage error", err)
	}
	if !cleaned {
		t.Fatal("Cleanup did not run on stage error")
	}
	if len(out.Stages) != 1 {
		t.Fatalf("stages = %+v, want the failing stage's (partial) stat", out.Stages)
	}
}

func TestRunStageHookSeesEveryBoundary(t *testing.T) {
	var seen []string
	s := fakeStrategy{name: "hooked", stages: func(req *Request, out *Outcome) (*Plan, error) {
		return &Plan{Stages: []Stage{
			{Name: "one", Run: func(context.Context) error { return nil }},
			{Name: "two", Run: func(context.Context) error { return nil }},
		}}, nil
	}}
	req := &Request{StageHook: func(i int, name string) { seen = append(seen, fmt.Sprintf("%d:%s", i, name)) }}
	if _, err := Run(context.Background(), s, req); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != "0:one" || seen[1] != "1:two" {
		t.Fatalf("hook saw %v", seen)
	}
}

func TestRegistryLookupAndAliases(t *testing.T) {
	// The core and approx packages are not imported here; register a
	// private strategy to exercise the registry mechanics in isolation.
	s := fakeStrategy{name: "test-registry-entry", stages: nil}
	Register(s, "test-registry-alias")
	if got, ok := Lookup("test-registry-entry"); !ok || got.Name() != s.name {
		t.Fatalf("Lookup(canonical) = %v, %v", got, ok)
	}
	if got, ok := Lookup("test-registry-alias"); !ok || got.Name() != s.name {
		t.Fatalf("Lookup(alias) = %v, %v", got, ok)
	}
	if _, ok := Lookup("definitely-not-registered"); ok {
		t.Fatal("Lookup invented a strategy")
	}
	names := Names()
	count := 0
	for _, n := range names {
		if n == "test-registry-entry" {
			count++
		}
		if n == "test-registry-alias" {
			t.Fatal("aliases must not appear in Names()")
		}
	}
	if count != 1 {
		t.Fatalf("canonical name appears %d times in %v", count, names)
	}
}

func TestRegisterPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(fakeStrategy{name: "dup-entry"})
	Register(fakeStrategy{name: "dup-entry"})
}

// faultErr builds a wrapped unrecovered-fault error the retry loop matches.
func faultErr(label string) error {
	return fmt.Errorf("exchange %q: %w", label, &congest.FaultError{Kind: congest.FaultCorrupt, Node: -1, Label: label})
}

func TestRetryRecoversFromFaultError(t *testing.T) {
	net, err := congest.NewNetwork(4)
	if err != nil {
		t.Fatal(err)
	}
	attempts := 0
	s := fakeStrategy{name: "flaky", stages: func(req *Request, out *Outcome) (*Plan, error) {
		return &Plan{Net: net, Retry: RetryPolicy{MaxRetries: 3, Backoff: time.Microsecond}, Stages: []Stage{
			{Name: "work", Run: func(context.Context) error {
				attempts++
				if err := net.Broadcast("work", 0, 2); err != nil {
					return err
				}
				if attempts <= 2 {
					return faultErr("work")
				}
				return nil
			}},
		}}, nil
	}}
	out, err := Run(context.Background(), s, &Request{})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3", attempts)
	}
	st := out.Stages[0]
	if st.Retries != 2 {
		t.Errorf("Retries = %d, want 2", st.Retries)
	}
	if st.BackoffNs <= 0 {
		t.Errorf("BackoffNs = %d, want > 0", st.BackoffNs)
	}
	// The stage stat aggregates every attempt, so the stage-sum invariant
	// holds under retry: 3 attempts x 2 rounds.
	if st.Rounds != 6 || out.Rounds != 6 || SumRounds(out.Stages) != out.Rounds {
		t.Errorf("rounds: stage %d, total %d, want both 6", st.Rounds, out.Rounds)
	}
}

func TestRetryExhaustionSurfacesFaultError(t *testing.T) {
	net, err := congest.NewNetwork(4)
	if err != nil {
		t.Fatal(err)
	}
	cleaned := false
	s := fakeStrategy{name: "doomed", stages: func(req *Request, out *Outcome) (*Plan, error) {
		return &Plan{Net: net, Retry: RetryPolicy{MaxRetries: 2}, Cleanup: func() { cleaned = true }, Stages: []Stage{
			{Name: "work", Run: func(context.Context) error {
				if err := net.Broadcast("work", 0, 1); err != nil {
					return err
				}
				return faultErr("work")
			}},
		}}, nil
	}}
	out, err := Run(context.Background(), s, &Request{})
	var fe *congest.FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("want FaultError after exhaustion, got %v", err)
	}
	if !cleaned {
		t.Error("Cleanup not invoked on exhaustion")
	}
	if out == nil || len(out.Stages) != 1 || out.Stages[0].Retries != 2 {
		t.Fatalf("partial telemetry missing or wrong: %+v", out)
	}
	if out.Stages[0].Rounds != 3 || out.Rounds != 3 {
		t.Errorf("rounds: stage %d, total %d, want both 3 (initial + 2 retries)", out.Stages[0].Rounds, out.Rounds)
	}
}

func TestRetryIgnoresNonFaultErrors(t *testing.T) {
	attempts := 0
	boom := errors.New("boom")
	s := fakeStrategy{name: "hard-fail", stages: func(req *Request, out *Outcome) (*Plan, error) {
		return &Plan{Retry: RetryPolicy{MaxRetries: 5}, Stages: []Stage{
			{Name: "work", Run: func(context.Context) error { attempts++; return boom }},
		}}, nil
	}}
	out, err := Run(context.Background(), s, &Request{})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if attempts != 1 {
		t.Errorf("non-fault error retried: %d attempts", attempts)
	}
	if out.Stages[0].Retries != 0 {
		t.Errorf("Retries = %d, want 0", out.Stages[0].Retries)
	}
}

func TestRetryBackoffHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := fakeStrategy{name: "slow", stages: func(req *Request, out *Outcome) (*Plan, error) {
		return &Plan{Retry: RetryPolicy{MaxRetries: 3, Backoff: time.Hour}, Stages: []Stage{
			{Name: "work", Run: func(context.Context) error {
				cancel() // the deadline expires while the backoff would wait
				return faultErr("work")
			}},
		}}, nil
	}}
	_, err := Run(ctx, s, &Request{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled from backoff, got %v", err)
	}
}
