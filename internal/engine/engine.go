// Package engine is the staged-execution layer of the solver: every APSP
// pipeline is expressed as an ordered list of named stages over one shared
// CONGEST-CLIQUE network, and the engine runs them in sequence with
//
//   - a per-stage telemetry record (rounds charged, words moved, wall time,
//     allocations) measured as congest.Metrics deltas at the stage
//     boundaries, so the per-stage rounds sum exactly to the pipeline's
//     total — the phase-level accounting that lets pipelines be compared
//     stage by stage ("Mind the Õ");
//   - a context checkpoint between stages (and, through the Ctx options of
//     the distprod/triangles layers, inside the squaring-chain and
//     triangle-enumeration loops), so a solve under a request deadline
//     stops at the next boundary instead of running to completion;
//   - a cleanup hook so an interrupted pipeline returns its borrowed
//     workspace buffers, keeping pooled state reusable after cancellation.
//
// Strategies register themselves (see registry.go); the serving layer, the
// public qclique API and the cmd/ tools enumerate the registry instead of
// switching on enum values, which is the seam future backends (sharded
// simulation, real transports) plug into.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime/metrics"
	"time"

	"qclique/internal/congest"
	"qclique/internal/distprod"
	"qclique/internal/graph"
	"qclique/internal/matrix"
	"qclique/internal/triangles"
)

// Request is one solve as the engine sees it: the input graph plus every
// knob that affects the pipeline, independent of which strategy runs.
type Request struct {
	// G is the input graph (never mutated by the pipeline).
	G *graph.Digraph
	// Params forwards protocol constants (nil = paper constants).
	Params *triangles.Params
	// Seed drives all protocol randomness.
	Seed uint64
	// Workers bounds host-side parallelism of node-local phases.
	Workers int
	// Transport selects the congest delivery backend by registered name
	// ("" = local). Backends are bit-identical in results by contract, so
	// the choice affects host-side execution only; strategies pass it to
	// every network they build, with Workers as the shard-count request.
	Transport string
	// Epsilon is the stretch budget of the approximate strategies (0 for
	// exact ones; validated by the caller before the engine runs).
	Epsilon float64
	// MX is the matrix freelist the squaring chain ping-pongs through.
	MX *matrix.Workspace
	// DP is the distance-product workspace (tripartite instance, search
	// buffers, triangles scratch).
	DP *distprod.Workspace
	// Faults is the fault-injection plan the strategy arms its network(s)
	// with; the zero value keeps injection fully disabled (bit-identical
	// rounds).
	Faults congest.FaultPlan
	// StageHook, when non-nil, is invoked at every stage boundary — before
	// the stage's cancellation checkpoint — with the stage index and name.
	// It is an observability and test seam (the cancel-at-every-boundary
	// regression drives it); it must not mutate solve state.
	StageHook func(i int, name string)
}

// Outcome is what a pipeline run produced. On cancellation the telemetry
// fields (Stages, Rounds, Metrics) still describe the work done before the
// stop; Dist is nil.
type Outcome struct {
	// Dist is the distance matrix (nil when the run was interrupted).
	Dist *matrix.Matrix
	// Products is the number of distance products performed.
	Products int
	// FindEdgesCalls is the total FindEdges invocations across products.
	FindEdgesCalls int
	// ObservedStretch is the measured maximum ratio over the exact
	// reference (0 when the pipeline has no stretch-audit stage).
	ObservedStretch float64
	// Rounds is the total rounds charged on the pipeline's network.
	Rounds int64
	// Metrics is the aggregate network accounting.
	Metrics congest.Metrics
	// Transport is the delivery-backend accounting of the pipeline's
	// network (deliveries, messages moved, shard traffic split).
	Transport congest.TransportStats
	// Stages is the per-stage breakdown, in execution order.
	Stages []StageStat
}

// StageStat is one stage's telemetry. Rounds, Words and Phases are
// congest.Metrics deltas at the stage boundaries and are therefore exactly
// as deterministic as the protocol itself; WallNs and Allocs are host-side
// measurements (Allocs counts process-global mallocs, so concurrent solves
// bleed into each other — it is a profile hint, not an accounting fact).
type StageStat struct {
	Name    string `json:"name"`
	Rounds  int64  `json:"rounds"`
	Words   int64  `json:"words"`
	Phases  int64  `json:"phases"`
	WallNs  int64  `json:"wall_ns"`
	Allocs  uint64 `json:"allocs"`
	Skipped bool   `json:"skipped,omitempty"`
	// Retries counts re-runs of the stage after unrecovered injected
	// faults (congest.FaultError); the stage's other columns aggregate
	// across all attempts, so the stage-rounds-sum invariant holds under
	// retry.
	Retries int `json:"retries,omitempty"`
	// BackoffNs is the wall time spent waiting between retry attempts.
	BackoffNs int64 `json:"backoff_ns,omitempty"`
}

// Wall returns the stage's wall-clock time.
func (s StageStat) Wall() time.Duration { return time.Duration(s.WallNs) }

// SumRounds returns the total rounds across stages — by construction equal
// to the pipeline's Rounds when every stage ran through the engine.
func SumRounds(stages []StageStat) int64 {
	var total int64
	for _, s := range stages {
		total += s.Rounds
	}
	return total
}

// Stage is one named unit of a pipeline.
type Stage struct {
	// Name labels the stage in telemetry (stable across runs).
	Name string
	// Run executes the stage. The context is the solve's; long stage
	// internals (squaring chain, triangle enumeration) re-check it
	// themselves between iterations.
	Run func(ctx context.Context) error
	// Skip, when non-nil and true at the stage's turn, records the stage
	// as skipped (zero cost) without running it — how a pipeline with a
	// statically-declared stage list expresses early convergence.
	Skip func() bool
}

// RetryPolicy bounds the engine's stage-level fault recovery: a stage that
// fails with a congest.FaultError (an unrecovered injected fault) is re-run
// up to MaxRetries times, with exponential backoff between attempts. Every
// other error class fails fast — retry is reserved for the failure mode
// that is transient by construction.
type RetryPolicy struct {
	// MaxRetries is the per-stage retry budget (0 disables retry).
	MaxRetries int
	// Backoff is the base wait before the first retry, doubled per further
	// attempt; 0 retries immediately. The wait is context-aware: a solve
	// deadline expiring mid-backoff aborts with the context error.
	Backoff time.Duration
}

// Plan is a built pipeline: an ordered stage list over one network.
type Plan struct {
	// Net is the network every stage charges; per-stage round deltas are
	// measured against it. Nil only for pipelines that charge nothing.
	Net *congest.Network
	// Stages run in order.
	Stages []Stage
	// Cleanup, when non-nil, is invoked exactly once if the run stops
	// before the last stage completed (stage error or cancellation): the
	// pipeline returns borrowed workspace buffers so pooled state stays
	// reusable. It is not invoked after a fully successful run.
	Cleanup func()
	// Retry is the strategy's stage-retry budget for unrecovered injected
	// faults. Stages must be re-runnable for this to be sound: each
	// strategy's stage closures re-derive their seeds and reset their
	// phase outputs on entry (the chaos suite pins this).
	Retry RetryPolicy
}

// Run executes the strategy's staged pipeline for req. On success the
// Outcome carries the result and the full per-stage breakdown, and the
// engine has verified that the stage rounds sum exactly to the network
// total. On a stage error or a cancellation checkpoint the partial Outcome
// (telemetry of the work done so far, nil Dist) is returned alongside the
// error, after the plan's Cleanup ran.
func Run(ctx context.Context, s Strategy, req *Request) (*Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := &Outcome{}
	plan, err := s.Stages(req, out)
	if err != nil {
		return nil, err
	}
	for i, st := range plan.Stages {
		if req.StageHook != nil {
			req.StageHook(i, st.Name)
		}
		if err := ctx.Err(); err != nil {
			return abort(plan, out, err)
		}
		if st.Skip != nil && st.Skip() {
			out.Stages = append(out.Stages, StageStat{Name: st.Name, Skipped: true})
			continue
		}
		stat, err := runStageWithRetry(ctx, plan, st)
		out.Stages = append(out.Stages, stat)
		if err != nil {
			return abort(plan, out, err)
		}
	}
	finish(plan, out)
	if plan.Net != nil {
		if sum := SumRounds(out.Stages); sum != out.Rounds {
			// Treat the accounting violation like any other failed run:
			// drop the (untrustworthy) result and let Cleanup return
			// whatever buffers the strategy still holds. A result matrix
			// already detached from its workspace is surrendered to the GC
			// rather than repooled — this path fires only on a strategy
			// programming error, and failing loudly outranks the one
			// buffer.
			return abort(plan, out, fmt.Errorf("engine: %s: stage rounds %d do not sum to the pipeline total %d (network activity outside a stage)",
				s.Name(), sum, out.Rounds))
		}
	}
	return out, nil
}

// allocMetric is the runtime/metrics key for the cumulative heap
// allocation count — read without the stop-the-world pause of
// runtime.ReadMemStats, so per-stage sampling stays cheap enough for the
// serving hot path.
const allocMetric = "/gc/heap/allocs:objects"

// mallocCount samples the process-global heap allocation counter.
func mallocCount() uint64 {
	sample := [1]metrics.Sample{{Name: allocMetric}}
	metrics.Read(sample[:])
	if sample[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return sample[0].Value.Uint64()
}

// runStageWithRetry executes one stage under the plan's retry policy: an
// attempt that fails with a congest.FaultError (an unrecovered injected
// fault — crash or detected corruption) is re-run after a context-aware
// backoff, up to the policy's budget. The returned StageStat aggregates
// every attempt — its network deltas are measured back-to-back against the
// same network, so the per-stage rounds still sum exactly to the pipeline
// total. Any other error (including a context error during backoff) fails
// fast.
func runStageWithRetry(ctx context.Context, plan *Plan, st Stage) (StageStat, error) {
	stat, err := runStage(ctx, plan.Net, st)
	var fe *congest.FaultError
	for err != nil && errors.As(err, &fe) && stat.Retries < plan.Retry.MaxRetries {
		wait, werr := backoff(ctx, plan.Retry.Backoff, stat.Retries)
		stat.BackoffNs += wait.Nanoseconds()
		if werr != nil {
			return stat, werr
		}
		again, rerr := runStage(ctx, plan.Net, st)
		stat.Rounds += again.Rounds
		stat.Words += again.Words
		stat.Phases += again.Phases
		stat.WallNs += again.WallNs
		stat.Allocs += again.Allocs
		stat.Retries++
		err = rerr
	}
	return stat, err
}

// backoff waits base<<attempt (exponential), honoring the context; it
// returns the time actually waited.
func backoff(ctx context.Context, base time.Duration, attempt int) (time.Duration, error) {
	if base <= 0 {
		return 0, ctx.Err()
	}
	const maxShift = 16
	if attempt > maxShift {
		attempt = maxShift
	}
	d := base << attempt
	start := time.Now()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return time.Since(start), nil
	case <-ctx.Done():
		return time.Since(start), ctx.Err()
	}
}

// runStage executes one stage and measures its cost: network deltas from
// the plan's network, wall clock, and process mallocs.
func runStage(ctx context.Context, net *congest.Network, st Stage) (StageStat, error) {
	var before congest.Metrics
	if net != nil {
		before = net.Snapshot()
	}
	mallocs := mallocCount()
	start := time.Now()

	err := st.Run(ctx)

	stat := StageStat{Name: st.Name, WallNs: time.Since(start).Nanoseconds()}
	stat.Allocs = mallocCount() - mallocs
	if net != nil {
		delta := net.DeltaSince(before)
		stat.Rounds = delta.Rounds
		stat.Words = delta.Words
		stat.Phases = delta.Phases
	}
	return stat, err
}

// abort finalizes an interrupted run: partial telemetry is kept (the
// serving layer returns it with the 503), borrowed buffers go back.
func abort(plan *Plan, out *Outcome, err error) (*Outcome, error) {
	finish(plan, out)
	out.Dist = nil
	if plan.Cleanup != nil {
		plan.Cleanup()
	}
	return out, err
}

func finish(plan *Plan, out *Outcome) {
	if plan.Net != nil {
		out.Rounds = plan.Net.Rounds()
		out.Metrics = plan.Net.Metrics()
		out.Transport = plan.Net.TransportStats()
		// The pipeline is over either way; release the backend's resources.
		plan.Net.Close()
	}
}
