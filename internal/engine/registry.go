package engine

import (
	"fmt"
	"sort"
	"sync"
)

// Strategy describes one registered APSP pipeline: its canonical name, its
// accuracy contract, and how to assemble its staged execution plan for one
// solve.
type Strategy interface {
	// Name is the canonical registry key ("quantum", "approx-skeleton", …).
	Name() string
	// Approximate reports whether the pipeline trades exactness for rounds
	// (and therefore requires Request.Epsilon > 0).
	Approximate() bool
	// Guarantee returns the multiplicative stretch bound for budget eps:
	// 1 for exact pipelines, 1+ε or 2+ε for the approximate ones.
	Guarantee(eps float64) float64
	// Stages assembles the staged pipeline for req. Stages write their
	// results into out as they run; the engine fills the telemetry fields.
	// The caller guarantees req.G is non-nil with at least one vertex and
	// that Epsilon has been validated against Approximate().
	Stages(req *Request, out *Outcome) (*Plan, error)
}

var registry = struct {
	mu      sync.RWMutex
	byName  map[string]Strategy // canonical names and aliases
	aliases map[string]bool     // keys of byName that are aliases
}{
	byName:  make(map[string]Strategy),
	aliases: make(map[string]bool),
}

// Register adds a strategy under its canonical name plus any aliases
// ("classical" for "classical-search", …). Strategies register themselves
// from init, so a duplicate name is a programming error and panics.
func Register(s Strategy, aliases ...string) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	name := s.Name()
	if name == "" {
		panic("engine: strategy with empty name")
	}
	if _, dup := registry.byName[name]; dup {
		panic(fmt.Sprintf("engine: strategy %q registered twice", name))
	}
	registry.byName[name] = s
	for _, a := range aliases {
		if _, dup := registry.byName[a]; dup {
			panic(fmt.Sprintf("engine: strategy alias %q already registered", a))
		}
		registry.byName[a] = s
		registry.aliases[a] = true
	}
}

// Lookup resolves a canonical name or alias.
func Lookup(name string) (Strategy, bool) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	s, ok := registry.byName[name]
	return s, ok
}

// Strategies returns every registered strategy, sorted by canonical name
// (aliases do not produce duplicates).
func Strategies() []Strategy {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	out := make([]Strategy, 0, len(registry.byName))
	for name, s := range registry.byName {
		if !registry.aliases[name] {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Names returns the sorted canonical names of every registered strategy.
func Names() []string {
	ss := Strategies()
	names := make([]string, len(ss))
	for i, s := range ss {
		names[i] = s.Name()
	}
	return names
}
