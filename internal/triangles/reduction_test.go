package triangles

import (
	"testing"

	"qclique/internal/graph"
	"qclique/internal/xrand"
)

func TestFindEdgesExactSmall(t *testing.T) {
	for _, n := range []int{16, 40} {
		inst := randomInstance(t, n, uint64(n)+900, 0.45)
		rep, err := FindEdges(inst, Options{Seed: 17})
		if err != nil {
			t.Fatal(err)
		}
		checkExact(t, rep.Edges, wantEdges(inst), "findedges")
		if rep.PromiseCalls < 1 {
			t.Error("at least the final unsampled call must run")
		}
		// The final call is always the unsampled one.
		if rep.Levels[len(rep.Levels)-1] != -1 {
			t.Errorf("levels = %v, want trailing -1", rep.Levels)
		}
	}
}

func TestFindEdgesSamplingLevelsActivate(t *testing.T) {
	// With BenchParams (Reduction = 20) at n = 256, the while loop runs
	// for several levels: 20·2^i·log n ≤ n.
	rng := xrand.New(100)
	g, err := graph.RandomUndirected(256, graph.UndirectedOpts{EdgeProb: 0.08, MinWeight: 1, MaxWeight: 50}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := graph.PlantNegativeTriangles(g, 8, 40, rng.Split("p")); err != nil {
		t.Fatal(err)
	}
	p := BenchParams()
	inst := Instance{G: g}
	rep, err := FindEdges(inst, Options{Seed: 5, Params: &p})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PromiseCalls < 2 {
		t.Errorf("expected sampling levels to activate, calls=%d levels=%v", rep.PromiseCalls, rep.Levels)
	}
	checkExact(t, rep.Edges, wantEdges(inst), "findedges-levels")
}

func TestFindEdgesHighGammaHubs(t *testing.T) {
	// Hub workloads have pairs with large Γ — the reduction must still
	// report them (they are caught at coarse sampling levels or the final
	// call).
	rng := xrand.New(7)
	g, err := graph.HubUndirected(48, 3, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	inst := Instance{G: g}
	rep, err := FindEdges(inst, Options{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	checkExact(t, rep.Edges, wantEdges(inst), "hubs")
}

func TestFindEdgesClassicalMode(t *testing.T) {
	inst := randomInstance(t, 32, 44, 0.4)
	rep, err := FindEdges(inst, Options{Seed: 3, Mode: SearchClassicalScan})
	if err != nil {
		t.Fatal(err)
	}
	checkExact(t, rep.Edges, wantEdges(inst), "findedges-classical")
}

func TestFindEdgesRejectsPresetLegs(t *testing.T) {
	inst := randomInstance(t, 16, 1, 0.4)
	inst.Legs = inst.G
	if _, err := FindEdges(inst, Options{}); err == nil {
		t.Error("preset Legs must be rejected")
	}
	if _, err := FindEdges(Instance{}, Options{}); err == nil {
		t.Error("nil graph must be rejected")
	}
}

func TestFindEdgesRestrictedS(t *testing.T) {
	inst := randomInstance(t, 24, 55, 0.5)
	all := wantEdges(inst)
	if len(all) < 4 {
		t.Skip("too few triangle edges")
	}
	s := make(map[graph.Pair]bool)
	i := 0
	for p := range all {
		if i%2 == 0 {
			s[p] = true
		}
		i++
	}
	inst.S = s
	rep, err := FindEdges(inst, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	checkExact(t, rep.Edges, wantEdges(inst), "findedges-S")
	// The input S map must not be mutated.
	if len(inst.S) != len(s) {
		t.Error("input S mutated")
	}
}

func TestFindEdgesAgreesWithDolev(t *testing.T) {
	inst := randomInstance(t, 50, 66, 0.45)
	a, err := FindEdges(inst, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := DolevFindEdges(inst, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkExact(t, a.Edges, b.Edges, "findedges-vs-dolev")
}
