package triangles

import (
	"math"
	"testing"

	"qclique/internal/congest"
	"qclique/internal/graph"
	"qclique/internal/xrand"
)

func TestDolevExactRandomGraphs(t *testing.T) {
	for _, n := range []int{10, 27, 64, 100} {
		for seed := uint64(0); seed < 2; seed++ {
			inst := randomInstance(t, n, 500*uint64(n)+seed, 0.4)
			rep, err := DolevFindEdges(inst, nil)
			if err != nil {
				t.Fatal(err)
			}
			checkExact(t, rep.Edges, wantEdges(inst), "dolev")
			if rep.Blocks < 1 {
				t.Error("block count missing")
			}
		}
	}
}

func TestDolevRespectsSAndLegs(t *testing.T) {
	inst := randomInstance(t, 40, 3, 0.5)
	all := wantEdges(inst)
	if len(all) < 2 {
		t.Skip("too few triangle edges")
	}
	s := make(map[graph.Pair]bool)
	i := 0
	for p := range all {
		if i%2 == 0 {
			s[p] = true
		}
		i++
	}
	inst.S = s
	rng := xrand.New(4)
	inst.Legs = inst.G.Subgraph(func(u, v int) bool { return rng.Bool(0.7) })
	rep, err := DolevFindEdges(inst, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkExact(t, rep.Edges, wantEdges(inst), "dolev-S-legs")
}

func TestDolevRoundsScaleLikeCubeRoot(t *testing.T) {
	// Rounds grow ~ n^{1/3}: the fitted exponent between n=64 and n=512
	// (8x in n) must be well below 1/2 and near 1/3.
	rounds := func(n int) int64 {
		inst := randomInstance(t, n, uint64(n), 0.2)
		rep, err := DolevFindEdges(inst, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Rounds
	}
	r64 := rounds(64)
	r512 := rounds(512)
	exp := math.Log(float64(r512)/float64(r64)) / math.Log(512.0/64.0)
	if exp > 0.55 || exp < 0.1 {
		t.Errorf("Dolev round exponent = %f (r64=%d, r512=%d), want ≈ 1/3", exp, r64, r512)
	}
}

func TestDolevNilGraph(t *testing.T) {
	if _, err := DolevFindEdges(Instance{}, nil); err == nil {
		t.Error("nil graph must fail")
	}
}

func TestDolevSharedNetwork(t *testing.T) {
	inst := randomInstance(t, 27, 5, 0.4)
	net, err := congest.NewNetwork(27)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := DolevFindEdges(inst, net)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := DolevFindEdges(inst, net)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Rounds <= r1.Rounds {
		t.Error("shared network must accumulate")
	}
}

func TestDolevTinyGraphs(t *testing.T) {
	// n < 3: no triangles possible.
	for _, n := range []int{1, 2} {
		g := graph.NewUndirected(n)
		rep, err := DolevFindEdges(Instance{G: g}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Edges) != 0 {
			t.Errorf("n=%d: expected no edges", n)
		}
	}
	// n = 3 with one negative triangle.
	g := graph.NewUndirected(3)
	for _, e := range [][3]int64{{0, 1, -5}, {0, 2, 1}, {1, 2, 1}} {
		if err := g.SetEdge(int(e[0]), int(e[1]), e[2]); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := DolevFindEdges(Instance{G: g}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Edges) != 3 {
		t.Errorf("triangle must report all 3 edges, got %d", len(rep.Edges))
	}
}
