package triangles

import (
	"context"
	"fmt"
	"math"

	"qclique/internal/congest"
	"qclique/internal/graph"
)

// This file implements the classical Õ(n^{1/3})-round triangle-listing
// algorithm of Dolev, Lenzen and Peled ("Tri, Tri Again", DISC 2012), which
// the paper identifies (Section 1, "Other related works") as the
// combinatorial baseline: being non-algebraic it lists *negative* triangles
// just as well, and through the paper's reduction chain it yields a
// classical Õ(n^{1/3} log W) APSP — the Censor-Hillel et al. complexity our
// quantum pipeline is measured against.
//
// The scheme: partition V into p ≈ n^{1/3} blocks of ≈ n^{2/3} vertices.
// There are p³ ≈ n block triples; triple (i,j,k) is assigned to a physical
// node, which gathers the three bipartite weight tables between its blocks
// (O(n^{4/3}) words, delivered by Lemma-1 routing in O(n^{1/3}) rounds) and
// enumerates all triangles with one vertex in each block locally.

// DolevReport is the outcome of DolevFindEdges.
type DolevReport struct {
	// Edges maps every pair of S involved in a negative triangle.
	Edges map[graph.Pair]bool
	// Rounds is the total CONGEST-CLIQUE rounds charged.
	Rounds int64
	// Metrics is the aggregate accounting (counters only).
	Metrics congest.Metrics
	// Blocks is the partition parameter p ≈ n^{1/3}.
	Blocks int
}

// DolevFindEdges solves FindEdges (no promise needed — the listing is
// exhaustive and deterministic) on the given instance.
func DolevFindEdges(inst Instance, net *congest.Network) (*DolevReport, error) {
	return DolevFindEdgesCtx(context.Background(), inst, net)
}

// DolevFindEdgesCtx is DolevFindEdges with a cancellation checkpoint per
// outer block of the triple-enumeration loop: a solve under a deadline
// stops between blocks instead of enumerating all p³ triples. Checkpoints
// charge nothing and do not perturb the rounds of completed runs.
func DolevFindEdgesCtx(ctx context.Context, inst Instance, net *congest.Network) (*DolevReport, error) {
	if inst.G == nil {
		return nil, fmt.Errorf("triangles: nil graph")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	n := inst.G.N()
	var err error
	if net == nil {
		net, err = congest.NewNetwork(n)
		if err != nil {
			return nil, err
		}
	}
	p := int(math.Round(math.Cbrt(float64(n))))
	if p < 1 {
		p = 1
	}
	blocks := splitEven(n, p)
	p = len(blocks)
	blockOf := make([]int, n)
	for bi, blk := range blocks {
		for _, v := range blk {
			blockOf[v] = bi
		}
	}
	legs := inst.legs()

	// Data gathering: triple (i,j,k) hosted on node (i·p² + j·p + k) mod n
	// receives the three block-pair weight tables. Each table's rows are
	// routed from their row vertex (which owns that row of the adjacency
	// structure).
	var loads []congest.Load
	tripleNode := func(i, j, k int) congest.NodeID {
		return congest.NodeID((i*p*p + j*p + k) % n)
	}
	for i := 0; i < p; i++ {
		for j := i; j < p; j++ {
			for k := j; k < p; k++ {
				dst := tripleNode(i, j, k)
				// Tables needed: (i,j), (i,k), (j,k). Rows of table (a,b)
				// are sent by the vertices of block a, |block b| words each.
				for _, tb := range [][2]int{{i, j}, {i, k}, {j, k}} {
					for _, v := range blocks[tb[0]] {
						src := congest.NodeID(v)
						if src == dst {
							continue
						}
						loads = append(loads, congest.Load{Src: src, Dst: dst, Words: int64(len(blocks[tb[1]]))})
					}
				}
			}
		}
	}
	if err := net.ChargeBalanced("dolev/gather", loads); err != nil {
		return nil, err
	}

	// Local enumeration at every triple node. The pair edge {a,b} must be
	// in G (its weight defines negativity together with the legs in Legs);
	// each of the three edges of a triangle plays the pair role for its
	// own output, so a triangle is "negative" for output purposes exactly
	// when all three edges exist with total weight < 0. When Legs differs
	// from G (Proposition 1 instances), a pair {a,b} of S is reported if
	// the two legs exist in Legs and the closing edge exists in G.
	edges := make(map[graph.Pair]bool)
	report := func(a, b, c int) {
		// Pair {a,b} with apex c.
		if !inst.inS(a, b) {
			return
		}
		fab, ok := inst.G.Weight(a, b)
		if !ok {
			return
		}
		la, ok := legs.Weight(a, c)
		if !ok {
			return
		}
		lb, ok := legs.Weight(b, c)
		if !ok {
			return
		}
		if graph.SaturatingAdd(graph.SaturatingAdd(fab, la), lb) < 0 {
			edges[graph.MakePair(a, b)] = true
		}
	}
	for i := 0; i < p; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for j := i; j < p; j++ {
			for k := j; k < p; k++ {
				for _, a := range blocks[i] {
					for _, b := range blocks[j] {
						if a >= b {
							continue
						}
						for _, c := range blocks[k] {
							if c == a || c == b {
								continue
							}
							// All three rotations: each edge of {a,b,c} as
							// the pair.
							report(a, b, c)
							report(a, c, b)
							report(b, c, a)
						}
					}
				}
			}
		}
	}

	// Output delivery to pair endpoints, as in ComputePairs.
	var outLoads []congest.Load
	for pr := range edges {
		src := tripleNode(blockOf[pr.U], blockOf[pr.V], blockOf[pr.U])
		for _, owner := range []int{pr.U, pr.V} {
			if src == congest.NodeID(owner) {
				continue
			}
			outLoads = append(outLoads, congest.Load{Src: src, Dst: congest.NodeID(owner), Words: 1})
		}
	}
	if err := net.ChargeBalanced("dolev/output", outLoads); err != nil {
		return nil, err
	}

	return &DolevReport{
		Edges:   edges,
		Rounds:  net.Rounds(),
		Metrics: net.Snapshot(),
		Blocks:  p,
	}, nil
}
