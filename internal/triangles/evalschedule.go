package triangles

import (
	"fmt"

	"qclique/internal/congest"
	"qclique/internal/graph"
	"qclique/internal/par"
	"qclique/internal/qsearch"
	"qclique/internal/xrand"
)

// This file implements the evaluation procedures of Figures 4 (class
// α = 0) and 5 (α > 0): the fixed, input-independent communication
// schedule through which the search-labeled nodes (u,v,x) query the
// triple-labeled nodes (u,v,w) during the distributed Grover searches.
//
// Simulation contract (see package qsearch): the schedule is executed once
// per multi-search with a sampled *typical* query assignment — each
// instance queries one uniformly random element of its search space, which
// is exactly the marginal the initial Grover superposition induces — and
// the slot caps of the C̃m contract are enforced on it (overflow ⇒ abort,
// the paper's "error message" branch). The measured schedule cost is then
// charged once per oracle call. Truth tables are computed from the Step 1
// placement data that the queried triple nodes hold.

// SlotOverflowError reports a C̃m truncation abort: some query list
// exceeded the Figure 4/5 slot cap.
type SlotOverflowError struct {
	Label  SearchLabel
	WBlock int
	Count  int
	Cap    int
	Alpha  int
}

func (e *SlotOverflowError) Error() string {
	return fmt.Sprintf("triangles: eval slot overflow at (%d,%d,x=%d)→w=%d for α=%d: %d entries, cap %d",
		e.Label.U, e.Label.V, e.Label.X, e.WBlock, e.Alpha, e.Count, e.Cap)
}

// instanceRef is one search instance: a kept pair at a search label.
type instanceRef struct {
	label  int // SearchIndex
	pair   graph.Pair
	weight int64 // f(pair) in G
}

// searchState is the Step 2 outcome: coverings and the flattened instance
// list for the multi-searches.
type searchState struct {
	pt        *Partitions
	coverings []Covering // indexed by SearchIndex
	instances []instanceRef
}

// runCoverings executes Step 2 of ComputePairs: every search-labeled node
// samples its covering Λx(u,v), then loads the pair weights from the pair
// owners and keeps the pairs that are in S and present in G. Aborts with
// NotWellBalancedError when Lemma 2's balance condition fails.
func runCoverings(net *congest.Network, pt *Partitions, inst *Instance, params Params, sc *Scratch, rng *xrand.Source) (*searchState, error) {
	numLabels := pt.NumSearchLabels()
	if cap(sc.covs) < numLabels {
		sc.covs = make([]Covering, numLabels)
	}
	// Every entry of the covering slice is assigned below before the state
	// is read, so the scratch-backed slice needs no clearing.
	st := &searchState{pt: pt, coverings: sc.covs[:numLabels]}
	// Pre-size everything from the expected covering mass (|P(u,v)|·prob
	// summed over labels): Step 2 runs once per promise call on the
	// full-pipeline hot loop and buffer regrowth here dominated the
	// allocation profile. The kept pairs and weights are carved out of two
	// scratch arenas reused across promise calls; the sampling scratch is
	// reused across labels; the load list is pooled across calls.
	expected := pt.expectedCoveringPairs(params)
	loadsBuf := getLoadBuf(2*expected + 64)
	defer putLoadBuf(loadsBuf)
	loads := *loadsBuf
	if cap(sc.pairsArena) < expected+64 {
		sc.pairsArena = make([]graph.Pair, 0, expected+64)
	}
	if cap(sc.weightsArena) < expected+64 {
		sc.weightsArena = make([]int64, 0, expected+64)
	}
	pairsArena := sc.pairsArena[:0]
	weightsArena := sc.weightsArena[:0]
	sampleBuf := sc.sampleBuf
	perVertex := par.Grow(sc.perVertex, pt.N())
	sc.perVertex = perVertex
	clear(perVertex)
	ownerCount := par.Grow(sc.ownerCount, pt.N())
	sc.ownerCount = ownerCount
	clear(ownerCount)
	if cap(sc.ownerTouched) < pt.N() {
		sc.ownerTouched = make([]int32, 0, pt.N())
	}
	ownerTouched := sc.ownerTouched
	covSplit := rng.SplitterFor("covering")
	// Hoist the S-membership test out of the per-pair loop: when the mask
	// snapshot exists it answers inS directly (pairs are normalized U < V,
	// matching the mask's orientation); S == nil means every pair is in S.
	var sMask []bool
	gn := inst.G.N()
	if inst.S != nil && inst.sMask != nil {
		sMask = inst.sMask
	}
	for li := 0; li < numLabels; li++ {
		label := pt.SearchFromIndex(li)
		pairs, err := pt.sampleCoveringBuf(label, params, covSplit.Into(sc.sampleRng(), li), sampleBuf, perVertex)
		if err != nil {
			_ = net.Broadcast("computepairs/step2-abort", pt.SearchNode(label), 1)
			return nil, err
		}
		sampleBuf = pairs
		cov := Covering{Label: label}
		dst := pt.SearchNode(label)
		pStart, wStart := len(pairsArena), len(weightsArena)
		ownerTouched = ownerTouched[:0]
		// For labels with U < V the sampler walks U in its outer loop, so
		// consecutive pairs usually share a weight row; re-fetch it only
		// when U changes (flipped labels just miss the cache).
		lastU := -1
		var rowU []int64
		for _, pr := range pairs {
			// Request to the pair owner and two-word response (weight +
			// S-membership). Owner is the smaller endpoint by convention;
			// requests to the same owner are aggregated into one load (the
			// per-link accounting is identical either way).
			if owner := congest.NodeID(pr.U); owner != dst {
				if ownerCount[pr.U] == 0 {
					ownerTouched = append(ownerTouched, int32(pr.U))
				}
				ownerCount[pr.U]++
			}
			// Direct row indexing instead of Weight(): pairs are normalized
			// U < V, so the diagonal guard is unnecessary and the NoEdge
			// test below is the whole of the ok check.
			if pr.U != lastU {
				rowU = inst.G.RowView(pr.U)
				lastU = pr.U
			}
			w := rowU[pr.V]
			if w == graph.NoEdge {
				continue
			}
			if sMask != nil {
				if !sMask[pr.U*gn+pr.V] {
					continue
				}
			} else if !inst.inS(pr.U, pr.V) {
				continue
			}
			pairsArena = append(pairsArena, pr)
			weightsArena = append(weightsArena, w)
		}
		for _, o := range ownerTouched {
			words := 2 * int64(ownerCount[o])
			ownerCount[o] = 0
			loads = append(loads,
				congest.Load{Src: dst, Dst: congest.NodeID(o), Words: words},
				congest.Load{Src: congest.NodeID(o), Dst: dst, Words: words},
			)
		}
		// Arena regrowth leaves earlier coverings on the old backing array,
		// which stays correct — the slices are never written again.
		cov.Pairs = pairsArena[pStart:len(pairsArena):len(pairsArena)]
		cov.Weights = weightsArena[wStart:len(weightsArena):len(weightsArena)]
		st.coverings[li] = cov
	}
	*loadsBuf = loads // retain grown capacity in the pool
	// Retain the grown scratch buffers for the next promise call.
	sc.pairsArena = pairsArena
	sc.weightsArena = weightsArena
	sc.sampleBuf = sampleBuf
	if err := net.ChargeBalanced("computepairs/step2-covering", loads); err != nil {
		return nil, err
	}
	total := 0
	for _, cov := range st.coverings {
		total += len(cov.Pairs)
	}
	if cap(sc.instances) < total {
		sc.instances = make([]instanceRef, 0, total)
	}
	st.instances = sc.instances[:0]
	for li, cov := range st.coverings {
		for pi, pr := range cov.Pairs {
			st.instances = append(st.instances, instanceRef{label: li, pair: pr, weight: cov.Weights[pi]})
		}
	}
	sc.instances = st.instances
	return st, nil
}

// rowJob is one unique truth-table row to compute: a (group, pair) with its
// pair weight.
type rowJob struct {
	group  int
	pair   graph.Pair
	weight int64
}

// evalBuilder assembles the class-α evaluation procedure.
type evalBuilder struct {
	pt         *Partitions
	pl         *placement
	st         *searchState
	params     Params
	alpha      int
	spaceSize  int     // padded: max |T_α[u,v]| over groups
	classLists [][]int // per group u*q+v: T_α[u,v]
	rng        *xrand.Source
	sc         *Scratch
	validate   bool
	workers    int // host-side parallelism for truth-table assembly
}

func newEvalBuilder(pt *Partitions, pl *placement, st *searchState, cls *classification, params Params, alpha int, sc *Scratch, rng *xrand.Source) *evalBuilder {
	q := pt.NumCoarse()
	// The class lists of the previous α are dead once this builder exists,
	// so both the list headers and the flat index arena are reused.
	if cap(sc.classLists) < q*q {
		sc.classLists = make([][]int, q*q)
	}
	lists := sc.classLists[:q*q]
	arena := sc.classArena[:0]
	size := 0
	for u := 0; u < q; u++ {
		for v := 0; v < q; v++ {
			start := len(arena)
			arena = cls.appendClassesFor(arena, u, v, alpha)
			lists[u*q+v] = arena[start:len(arena):len(arena)]
			if len(lists[u*q+v]) > size {
				size = len(lists[u*q+v])
			}
		}
	}
	sc.classArena = arena
	return &evalBuilder{
		pt:         pt,
		pl:         pl,
		st:         st,
		params:     params,
		alpha:      alpha,
		spaceSize:  size,
		classLists: lists,
		rng:        rng,
		sc:         sc,
	}
}

// groupOf returns the group index of a search label. SearchIndex lays
// labels out as (u·q+v)·s + x, so the group is just the index divided by
// the fine-block count — this runs once per instance in the innermost
// query-assignment loop, where the full SearchFromIndex decode showed up
// in profiles.
func (b *evalBuilder) groupOf(li int) int {
	return li / b.pt.NumFine()
}

// truthRow computes the oracle row for one pair in one group: entry i
// answers "does some w in fine block T_α[u,v][i] close a negative triangle
// with this pair". Negative triangle test (Definition 1):
// f(u,w) + f(w,v) < −f(u,v). (Figure 4 prints the comparison as
// min ≤ f(u,v); the strict-inequality form against −f(u,v) is the one
// consistent with Definition 1 and is what we implement.)
func (b *evalBuilder) truthRow(group int, pr graph.Pair, weight int64) []bool {
	row := make([]bool, b.spaceSize)
	b.truthRowInto(row, group, pr, weight)
	return row
}

// truthRowInto writes the oracle row into a caller-provided slice of
// length spaceSize (arena-backed in the evaluation procedure). The padding
// tail beyond this group's class list is cleared explicitly — the arena is
// recycled across evaluations, so stale marks must not survive.
func (b *evalBuilder) truthRowInto(row []bool, group int, pr graph.Pair, weight int64) {
	q := b.pt.NumCoarse()
	u, v := group/q, group%q
	a, bb := pr.U, pr.V
	if b.pt.CoarseOf(a) != u {
		a, bb = bb, a
	}
	list := b.classLists[group]
	if b.pl.mode == DataDirect {
		// Hoist the two leg rows once per pair: every entry of the row
		// scans a different fine block of the same two graph rows.
		rowA := b.pl.legs.RowView(a)
		rowB := b.pl.legs.RowView(bb)
		for i, w := range list {
			fine := b.pt.Fine[w]
			row[i] = len(fine) > 0 && legSumBelow(rowA[fine[0]:fine[0]+len(fine)], rowB[fine[0]:fine[0]+len(fine)], -weight)
		}
	} else {
		// DataFull: the triple index is group·s + w and the pair's
		// in-block offsets do not depend on w, so everything but the leg
		// scan hoists out of the per-entry loop.
		s := b.pt.NumFine()
		ai := indexInBlock(b.pt.Coarse[u], a)
		bi := indexInBlock(b.pt.Coarse[v], bb)
		for i, w := range list {
			td := &b.pl.data[group*s+w]
			sW := len(b.pt.Fine[w])
			row[i] = legSumBelow(td.legsUW[ai*sW:(ai+1)*sW], td.legsWV[bi*sW:(bi+1)*sW], -weight)
		}
	}
	clear(row[len(list):])
}

// evalFunc returns the qsearch evaluation procedure for this class.
func (b *evalBuilder) evalFunc() qsearch.EvalFunc {
	return func(net *congest.Network) ([][]bool, error) {
		n := b.pt.N()
		dup := b.params.duplication(n, b.alpha)
		slotCap := b.params.slotCap(n, b.alpha)

		// Figure 5 Step 0 (α > 0 with a duplication factor): every triple
		// node of class α broadcasts its Step 1 tables to its dup−1 clone
		// labels so the query bandwidth scales with 2^α.
		if b.alpha > 0 && dup > 1 {
			dupBuf := getLoadBuf(64)
			loads := *dupBuf
			q := b.pt.NumCoarse()
			for u := 0; u < q; u++ {
				for v := 0; v < q; v++ {
					for _, w := range b.classLists[u*q+v] {
						t := TripleLabel{U: u, V: v, W: w}
						src := b.pt.TripleNode(t)
						words := int64(len(b.pt.Coarse[u])*len(b.pt.Fine[w]) + len(b.pt.Fine[w])*len(b.pt.Coarse[v]))
						for y := 1; y < dup; y++ {
							dst := b.cloneNode(t, y, dup)
							if dst == src {
								continue
							}
							loads = append(loads, congest.Load{Src: src, Dst: dst, Words: words})
						}
					}
				}
			}
			*dupBuf = loads
			err := net.ChargeBalanced(fmt.Sprintf("eval/α=%d/step0-duplicate", b.alpha), loads)
			putLoadBuf(dupBuf)
			if err != nil {
				return nil, err
			}
		}

		// Sample the typical query assignment: each instance queries one
		// uniform element of its search space — the marginal induced by
		// the uniform initial superposition. Build the per-(k,w) lists
		// L^k_w and enforce the slot caps of the C̃m contract. The counts
		// live in a flat (searchLabel × wBlock) array touched-list rather
		// than a map: the assignment loop is the innermost accounting loop
		// of every FindEdges call.
		qrng := b.rng.Split("query-assignment")
		numFine := b.pt.NumFine()
		listCountBuf := getZeroedInt32(b.pt.NumSearchLabels() * numFine)
		defer putInt32(listCountBuf)
		listCount := *listCountBuf
		if cap(b.sc.evalTouch) < len(b.st.instances) {
			b.sc.evalTouch = make([]int32, 0, len(b.st.instances))
		}
		touched := b.sc.evalTouch[:0]
		b.sc.evalTouch = touched
		// The truth-table row dedup below shares this pass over the
		// instances: rows are memoized per (group, pair) — a pair covered
		// by several Λx sets shares one row — through a flat pooled
		// (group × pair) index table instead of a hash map. A pair {U,V}
		// (U < V) can only appear in the two groups
		// (CoarseOf(U), CoarseOf(V)) and its swap, so one orientation bit
		// disambiguates the group and the dedup table needs just 2n² slots.
		// Building jobs/assign before the query-response charge is
		// side-effect-free (pure scratch writes), so fusing the two
		// instance loops changes no accounting.
		q := b.pt.NumCoarse()
		rowOfBuf := getZeroedInt32(2 * n * n)
		defer putInt32(rowOfBuf)
		rowOf := *rowOfBuf // (orient*n + U)*n + V → row index + 1; 0 = unset
		jobs := b.sc.jobs[:0]
		assign := par.Grow(b.sc.assign, len(b.st.instances))
		b.sc.assign = assign
		for i, ins := range b.st.instances {
			g := b.groupOf(ins.label)
			orient := 0
			if g != b.pt.CoarseOf(ins.pair.U)*q+b.pt.CoarseOf(ins.pair.V) {
				orient = 1
			}
			key := (orient*n+ins.pair.U)*n + ins.pair.V
			ri := rowOf[key]
			if ri == 0 {
				jobs = append(jobs, rowJob{group: g, pair: ins.pair, weight: ins.weight})
				ri = int32(len(jobs))
				rowOf[key] = ri
			}
			assign[i] = ri - 1
			list := b.classLists[g]
			if len(list) == 0 {
				continue
			}
			w := list[qrng.IntN(len(list))]
			k := ins.label*numFine + w
			if listCount[k] == 0 {
				touched = append(touched, int32(k))
			}
			listCount[k]++
			if int(listCount[k]) > slotCap {
				label := b.pt.SearchFromIndex(ins.label)
				return nil, &SlotOverflowError{Label: label, WBlock: w, Count: int(listCount[k]), Cap: slotCap, Alpha: b.alpha}
			}
		}
		b.sc.jobs = jobs

		// Figure 4/5 Steps 1–2: send each list (3 words per entry: the two
		// endpoints and the pair weight) to the triple node (or its clone
		// label), and receive one word per entry back. Sublists are spread
		// round-robin across the dup clone labels.
		loadsBuf := getLoadBuf(2 * dup * len(touched))
		defer putLoadBuf(loadsBuf)
		loads := *loadsBuf
		for _, k := range touched {
			count := int(listCount[k])
			label := b.pt.SearchFromIndex(int(k) / numFine)
			src := b.pt.SearchNode(label)
			t := TripleLabel{U: label.U, V: label.V, W: int(k) % numFine}
			per := (count + dup - 1) / dup
			remaining := count
			for y := 0; y < dup && remaining > 0; y++ {
				chunk := per
				if chunk > remaining {
					chunk = remaining
				}
				remaining -= chunk
				dst := b.cloneNode(t, y, dup)
				if dst == src {
					continue
				}
				loads = append(loads,
					congest.Load{Src: src, Dst: dst, Words: int64(3 * chunk)},
					congest.Load{Src: dst, Dst: src, Words: int64(chunk)},
				)
			}
		}
		*loadsBuf = loads
		if err := net.ChargeBalanced(fmt.Sprintf("eval/α=%d/query-response", b.alpha), loads); err != nil {
			return nil, err
		}

		// Assemble the truth tables from the queried triple nodes' data,
		// using the jobs/assign dedup built in the fused loop above. Row
		// computation (the triple nodes' local min-plus work) is
		// independent across rows, so the unique rows are computed by the
		// worker pool and merged by index — identical output for any
		// worker count.
		// The previous evaluation's tables are dead once this one runs (the
		// multi-search consuming them has returned), so the row and table
		// arenas are reused across classes and promise calls.
		if cap(b.sc.rows) < len(jobs) {
			b.sc.rows = make([][]bool, len(jobs))
		}
		rows := b.sc.rows[:len(jobs)]
		if cap(b.sc.rowArena) < len(jobs)*b.spaceSize {
			b.sc.rowArena = make([]bool, len(jobs)*b.spaceSize)
		}
		rowArena := b.sc.rowArena[:len(jobs)*b.spaceSize]
		par.For(par.Workers(b.workers), len(jobs), func(j int) {
			row := rowArena[j*b.spaceSize : (j+1)*b.spaceSize]
			b.truthRowInto(row, jobs[j].group, jobs[j].pair, jobs[j].weight)
			rows[j] = row
		})
		if cap(b.sc.tables) < len(b.st.instances) {
			b.sc.tables = make([][]bool, len(b.st.instances))
		}
		tables := b.sc.tables[:len(b.st.instances)]
		for i, ri := range assign {
			tables[i] = rows[ri]
		}
		return tables, nil
	}
}

// cloneNode maps the Figure 5 label (u,v,w,y) to a physical node. For
// y = 0 (and for dup = 1, i.e. Figure 4) it is the triple node itself.
func (b *evalBuilder) cloneNode(t TripleLabel, y, dup int) congest.NodeID {
	if y == 0 || dup <= 1 {
		return b.pt.TripleNode(t)
	}
	return congest.NodeID((b.pt.TripleIndex(t)*dup + y) % b.pt.N())
}
