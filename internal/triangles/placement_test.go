package triangles

import (
	"testing"

	"qclique/internal/congest"
	"qclique/internal/graph"
	"qclique/internal/xrand"
)

func placementPair(t *testing.T, n int, seed uint64) (*Partitions, *graph.Undirected) {
	t.Helper()
	pt, err := NewPartitions(n)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(seed)
	g, err := graph.RandomUndirected(n, graph.UndirectedOpts{EdgeProb: 0.5, MinWeight: -10, MaxWeight: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return pt, g
}

// bruteMinLegSum is the reference for placement.minLegSum.
func bruteMinLegSum(pt *Partitions, g *graph.Undirected, w, a, b int) int64 {
	best := graph.Inf
	for _, c := range pt.Fine[w] {
		if c == a || c == b {
			continue
		}
		wa, ok := g.Weight(a, c)
		if !ok {
			continue
		}
		wb, ok := g.Weight(c, b)
		if !ok {
			continue
		}
		if s := graph.SaturatingAdd(wa, wb); s < best {
			best = s
		}
	}
	return best
}

func TestPlacementFullMatchesDirect(t *testing.T) {
	for _, n := range []int{16, 30, 81} {
		pt, g := placementPair(t, n, uint64(n))
		netFull, err := congest.NewNetwork(n)
		if err != nil {
			t.Fatal(err)
		}
		full, err := runPlacement(netFull, pt, g, DataFull, NewScratch())
		if err != nil {
			t.Fatal(err)
		}
		netDirect, err := congest.NewNetwork(n)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := runPlacement(netDirect, pt, g, DataDirect, NewScratch())
		if err != nil {
			t.Fatal(err)
		}
		// Identical round accounting.
		if netFull.Rounds() != netDirect.Rounds() {
			t.Errorf("n=%d: full %d rounds vs direct %d rounds", n, netFull.Rounds(), netDirect.Rounds())
		}
		// Identical leg sums against brute force, across all groups.
		rng := xrand.New(uint64(n) + 7)
		for trial := 0; trial < 200; trial++ {
			u := rng.IntN(pt.NumCoarse())
			v := rng.IntN(pt.NumCoarse())
			w := rng.IntN(pt.NumFine())
			a := pt.Coarse[u][rng.IntN(len(pt.Coarse[u]))]
			b := pt.Coarse[v][rng.IntN(len(pt.Coarse[v]))]
			if a == b {
				continue
			}
			want := bruteMinLegSum(pt, g, w, a, b)
			if got := full.minLegSum(u, v, w, a, b); got != want {
				t.Fatalf("n=%d full: minLegSum(%d,%d,%d,%d,%d) = %d, want %d", n, u, v, w, a, b, got, want)
			}
			if got := direct.minLegSum(u, v, w, a, b); got != want {
				t.Fatalf("n=%d direct: minLegSum = %d, want %d", n, got, want)
			}
		}
	}
}

func TestPlacementRoundsScaleAsQuarterPower(t *testing.T) {
	// Step 1 is O(n^{1/4}) rounds: measured rounds at n=16 vs n=256
	// (16× n growth) should grow ≈ 2× (= 16^{1/4}...·const), certainly
	// below 6×.
	rounds := func(n int) int64 {
		pt, g := placementPair(t, n, uint64(n))
		net, err := congest.NewNetwork(n)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := runPlacement(net, pt, g, DataDirect, NewScratch()); err != nil {
			t.Fatal(err)
		}
		return net.Rounds()
	}
	r16 := rounds(16)
	r256 := rounds(256)
	if ratio := float64(r256) / float64(r16); ratio > 6 {
		t.Errorf("placement rounds ratio %f (r16=%d r256=%d) too steep for n^{1/4}", ratio, r16, r256)
	}
}

func TestPlacementShortMessage(t *testing.T) {
	pt, g := placementPair(t, 16, 1)
	net, err := congest.NewNetwork(16)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := runPlacement(net, pt, g, DataFull, NewScratch())
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.ingestChecked(congest.Message{Data: []congest.Word{1}}); err == nil {
		t.Error("short message must be rejected")
	}
}

func TestEncodeDecodeWeight(t *testing.T) {
	for _, w := range []int64{0, 1, -1, graph.Inf, graph.NegInf, 123456789, -987654321} {
		if decodeWeight(encodeWeight(w)) != w {
			t.Errorf("weight %d does not roundtrip", w)
		}
	}
}

func TestIndexInBlock(t *testing.T) {
	pt, err := NewPartitions(81)
	if err != nil {
		t.Fatal(err)
	}
	for bi, block := range pt.Coarse {
		for want, v := range block {
			if got := indexInBlock(block, v); got != want {
				t.Fatalf("block %d vertex %d: index %d, want %d", bi, v, got, want)
			}
		}
	}
}
