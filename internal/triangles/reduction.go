package triangles

import (
	"errors"
	"fmt"

	"qclique/internal/congest"
	"qclique/internal/graph"
	"qclique/internal/xrand"
)

// This file implements Proposition 1: the randomized reduction from
// FindEdges (no promise) to O(log n) instances of FindEdgesWithPromise.
// Algorithm B: while the sampling level is coarse enough, sample the legs
// of the graph so that pairs with many negative triangles still see one
// w.h.p. but the per-pair triangle count in the sampled graph is
// O(log n); solve the promise problem on the sampled instance; remove the
// found pairs from S. A final unsampled call catches the remaining
// low-count pairs.
//
// Sampling semantics: the level-i instance keeps every edge independently
// with probability √(Reduction·2^i·log n / n) as a *leg*; the pair edge
// {u,v} itself is always read from G (only the two legs {u,w}, {w,v} of a
// triangle are subject to sampling), so that E[Γ_G'(u,v)] =
// Γ_G(u,v)·Reduction·2^i·log(n)/n exactly as in the Proposition 1 proof.

// FindEdgesReport is the outcome of FindEdges.
type FindEdgesReport struct {
	// Edges is the output: all pairs of S with Γ(u,v) > 0.
	Edges map[graph.Pair]bool
	// Rounds is the total rounds across all promise instances.
	Rounds int64
	// Metrics is the aggregate network accounting (counters only).
	Metrics congest.Metrics
	// PromiseCalls counts the FindEdgesWithPromise invocations
	// (Proposition 1: O(log n)).
	PromiseCalls int
	// Levels records the sampling level of each call (-1 = final
	// unsampled call).
	Levels []int
	// SubReports are the per-call reports.
	SubReports []*Report
}

// FindEdges solves the unpromised problem on (G, S): report every pair of
// S involved in a negative triangle. opts.Net is created fresh if nil so
// the cost of all promise instances accumulates in one place.
func FindEdges(inst Instance, opts Options) (*FindEdgesReport, error) {
	if inst.G == nil {
		return nil, errors.New("triangles: nil graph")
	}
	if inst.Legs != nil {
		return nil, errors.New("triangles: FindEdges manages leg sampling itself; Instance.Legs must be nil")
	}
	n := inst.G.N()
	net := opts.Net
	var err error
	if net == nil {
		net, err = congest.NewNetwork(n)
		if err != nil {
			return nil, err
		}
	}
	params := opts.params()
	rng := xrand.New(opts.Seed)
	sc := opts.Scratch
	if sc == nil {
		sc = NewScratch()
	}
	opts.Scratch = sc // the promise calls below share the same workspace

	// Working copy of S: nil means all pairs; materialize it so pairs can
	// be removed as they are resolved. The map is scratch-retained: cleared
	// here, it keeps its bucket storage across the solve's FindEdges calls.
	if sc.sWork == nil {
		sc.sWork = make(map[graph.Pair]bool)
	}
	s := sc.sWork
	clear(s)
	if inst.S == nil {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				s[graph.MakePair(u, v)] = true
			}
		}
	} else {
		for p, ok := range inst.S {
			if ok {
				s[p] = true
			}
		}
	}

	out := &FindEdgesReport{Edges: make(map[graph.Pair]bool)}
	callPromise := func(legs *graph.Undirected, level int) error {
		// Cancellation checkpoint of the triangle-enumeration loop: each
		// promise instance is the unit of work a deadline can skip.
		if err := opts.ctxErr(); err != nil {
			return err
		}
		if len(s) == 0 {
			// Every pair already resolved at a coarser sampling level; the
			// remaining calls of Algorithm B are no-ops.
			return nil
		}
		sub := Instance{G: inst.G, Legs: legs, S: s}
		subOpts := opts
		subOpts.Net = net
		subOpts.Seed = rng.SplitN("call", out.PromiseCalls).Seed()
		rep, err := FindEdgesWithPromise(sub, subOpts)
		if err != nil {
			return fmt.Errorf("promise call %d (level %d): %w", out.PromiseCalls, level, err)
		}
		out.PromiseCalls++
		out.Levels = append(out.Levels, level)
		out.SubReports = append(out.SubReports, rep)
		for p := range rep.Edges {
			out.Edges[p] = true
			delete(s, p)
		}
		return nil
	}

	// Step 2: the while loop over sampling levels. One scratch-retained
	// subgraph buffer backs every level's sampled legs: each level fully
	// rewrites it, and the promise call consuming it completes before the
	// next level samples.
	for i := 0; params.reductionLoopActive(n, i); i++ {
		prob := params.reductionProb(n, i)
		legRng := rng.SplitN("legs", i)
		if sc.legs == nil || sc.legs.N() != n {
			sc.legs = graph.NewUndirected(n)
		}
		if err := inst.G.SubgraphInto(sc.legs, func(u, v int) bool { return legRng.Bool(prob) }); err != nil {
			return nil, err
		}
		if err := callPromise(sc.legs, i); err != nil {
			return nil, err
		}
	}
	// Step 3: final unsampled call on the residual S.
	if err := callPromise(nil, -1); err != nil {
		return nil, err
	}

	out.Rounds = net.Rounds()
	out.Metrics = net.Snapshot()
	return out, nil
}
