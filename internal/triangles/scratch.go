package triangles

import (
	"sync"

	"qclique/internal/congest"
)

// The protocol stack rebuilds its phase-local buffers once per promise call
// — and the full APSP pipeline makes hundreds of promise calls, so those
// buffers dominated the allocation profile. loadPool recycles the
// congest.Load lists of the charge-only phases; a list is safe to recycle
// as soon as the ChargeDirect/ChargeBalanced call consuming it returns
// (the network aggregates loads into its own flat scratch and never
// retains the slice).
var loadPool = sync.Pool{New: func() any { return new([]congest.Load) }}

// getLoadBuf returns an empty load list with at least capHint capacity.
func getLoadBuf(capHint int) *[]congest.Load {
	p := loadPool.Get().(*[]congest.Load)
	if cap(*p) < capHint {
		*p = make([]congest.Load, 0, capHint)
	} else {
		*p = (*p)[:0]
	}
	return p
}

// putLoadBuf recycles a load list obtained from getLoadBuf.
func putLoadBuf(p *[]congest.Load) {
	loadPool.Put(p)
}

// int32Pool recycles zeroed int32 index arrays (the flat row-dedup table of
// the evaluation procedure).
var int32Pool = sync.Pool{New: func() any { return new([]int32) }}

// getZeroedInt32 returns a zeroed int32 slice of exactly n entries.
func getZeroedInt32(n int) *[]int32 {
	p := int32Pool.Get().(*[]int32)
	if cap(*p) < n {
		*p = make([]int32, n)
		return p
	}
	*p = (*p)[:n]
	clear(*p)
	return p
}

// putInt32 recycles a slice obtained from getZeroedInt32.
func putInt32(p *[]int32) {
	int32Pool.Put(p)
}
