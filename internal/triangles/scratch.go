package triangles

import (
	"sync"

	"qclique/internal/congest"
	"qclique/internal/graph"
	"qclique/internal/qsearch"
	"qclique/internal/xrand"
)

// Scratch is the reusable per-solve workspace of the triangles layer. The
// full APSP pipeline makes hundreds of FindEdges calls per solve, and every
// phase of ComputePairs used to rebuild its buffers per call — the covering
// arenas, placement tables, truth-table rows and per-node RNG streams
// dominated the solve's allocation profile. A Scratch threaded through
// Options.Scratch retains all of them at their high-water mark, making the
// steady-state promise call allocation-free.
//
// A Scratch is not safe for concurrent use: it mirrors the Network's
// single-goroutine protocol contract (give each concurrent solve its own).
// Every buffer is fully reinitialized before it is read, so runs with a
// shared, a fresh, or no Scratch are bit-identical — the determinism tests
// assert this.
type Scratch struct {
	// partitions cache: the same n recurs for every promise call of a solve.
	parts *Partitions

	// FindEdges (reduction.go): working pair set and sampled-legs subgraph.
	sWork map[graph.Pair]bool
	legs  *graph.Undirected

	// Instance.sMask snapshot.
	sMask []bool

	// Step 1 placement: per-triple weight tables (DataFull) and the
	// outgoing message headers. plLoads caches the charge-only load list,
	// which depends only on the partition shapes: every promise call of a
	// solve charges the identical placement loads, so they are built once
	// per n (plLoadsN remembers which).
	plData   []tripleData
	plCells  []int64
	plMsgs   []congest.Message
	plLoads  []congest.Load
	plLoadsN int

	// IdentifyClass: broadcast sample, per-group buckets, class array, and
	// the reseedable per-node sample stream.
	idPairs   []rPair
	idBuckets [][]rPair
	classOf   []int
	rngSample *xrand.Source

	// Step 2 coverings: kept pairs/weights arenas, covering headers, the
	// flattened instance list, and the sampler scratch.
	covs         []Covering
	pairsArena   []graph.Pair
	weightsArena []int64
	sampleBuf    []graph.Pair
	perVertex    []int32
	ownerCount   []int32
	ownerTouched []int32
	instances    []instanceRef

	// Step 3 evaluation: class lists, row dedup jobs, and truth-table
	// arenas.
	classLists [][]int
	classArena []int
	jobs       []rowJob
	assign     []int32
	evalTouch  []int32
	rows       [][]bool
	rowArena   []bool
	tables     [][]bool

	// qs is the multi-search scratch handed to qsearch.MultiSearch.
	qs qsearch.Scratch
}

// NewScratch returns an empty Scratch; buffers grow to their high-water
// mark on first use.
func NewScratch() *Scratch { return &Scratch{} }

// partitions returns the Section 5.1 partitions for n, cached across calls
// (a solve's promise calls all share one n).
func (sc *Scratch) partitions(n int) (*Partitions, error) {
	if sc.parts != nil && sc.parts.N() == n {
		return sc.parts, nil
	}
	pt, err := NewPartitions(n)
	if err != nil {
		return nil, err
	}
	sc.parts = pt
	return pt, nil
}

// sampleRng returns the reseedable scratch stream for per-node sampling
// splits.
func (sc *Scratch) sampleRng() *xrand.Source {
	if sc.rngSample == nil {
		sc.rngSample = xrand.New(0)
	}
	return sc.rngSample
}

// The protocol stack rebuilds its phase-local buffers once per promise call
// — and the full APSP pipeline makes hundreds of promise calls, so those
// buffers dominated the allocation profile. loadPool recycles the
// congest.Load lists of the charge-only phases; a list is safe to recycle
// as soon as the ChargeDirect/ChargeBalanced call consuming it returns
// (the network aggregates loads into its own flat scratch and never
// retains the slice).
var loadPool = sync.Pool{New: func() any { return new([]congest.Load) }}

// getLoadBuf returns an empty load list with at least capHint capacity.
func getLoadBuf(capHint int) *[]congest.Load {
	p := loadPool.Get().(*[]congest.Load)
	if cap(*p) < capHint {
		*p = make([]congest.Load, 0, capHint)
	} else {
		*p = (*p)[:0]
	}
	return p
}

// putLoadBuf recycles a load list obtained from getLoadBuf.
func putLoadBuf(p *[]congest.Load) {
	loadPool.Put(p)
}

// int32Pool recycles zeroed int32 index arrays (the flat row-dedup table of
// the evaluation procedure).
var int32Pool = sync.Pool{New: func() any { return new([]int32) }}

// getZeroedInt32 returns a zeroed int32 slice of exactly n entries.
func getZeroedInt32(n int) *[]int32 {
	p := int32Pool.Get().(*[]int32)
	if cap(*p) < n {
		*p = make([]int32, n)
		return p
	}
	*p = (*p)[:n]
	clear(*p)
	return p
}

// putInt32 recycles a slice obtained from getZeroedInt32.
func putInt32(p *[]int32) {
	int32Pool.Put(p)
}
