package triangles

import (
	"errors"
	"testing"

	"qclique/internal/congest"
	"qclique/internal/graph"
	"qclique/internal/xrand"
)

// identifySetup builds the pieces runIdentifyClass needs.
func identifySetup(t *testing.T, n int, seed uint64, edgeProb float64) (*congest.Network, *Partitions, *Instance, *placement) {
	t.Helper()
	pt, err := NewPartitions(n)
	if err != nil {
		t.Fatal(err)
	}
	net, err := congest.NewNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(seed)
	g, err := graph.RandomUndirected(n, graph.UndirectedOpts{EdgeProb: edgeProb, MinWeight: -10, MaxWeight: 12}, rng)
	if err != nil {
		t.Fatal(err)
	}
	inst := &Instance{G: g}
	pl, err := runPlacement(net, pt, inst.legs(), DataDirect, NewScratch())
	if err != nil {
		t.Fatal(err)
	}
	return net, pt, inst, pl
}

func TestIdentifyClassProducesClasses(t *testing.T) {
	net, pt, inst, pl := identifySetup(t, 81, 3, 0.5)
	cls, err := runIdentifyClass(net, pt, inst, pl, PaperParams(), NewScratch(), xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(cls.classOf) != pt.NumTriples() {
		t.Fatalf("classified %d triples, want %d", len(cls.classOf), pt.NumTriples())
	}
	for _, c := range cls.classOf {
		if c < 0 || c > cls.maxClass {
			t.Fatalf("class %d outside [0,%d]", c, cls.maxClass)
		}
	}
	// classesFor partitions the fine blocks per group.
	q := pt.NumCoarse()
	for u := 0; u < q; u++ {
		for v := 0; v < q; v++ {
			total := 0
			for a := 0; a <= cls.maxClass; a++ {
				total += len(cls.classesFor(u, v, a))
			}
			if total != pt.NumFine() {
				t.Fatalf("group (%d,%d): classes cover %d of %d blocks", u, v, total, pt.NumFine())
			}
		}
	}
	// Some class must be populated (they partition the triples).
	populated := false
	for a := 0; a <= cls.maxClass; a++ {
		if cls.maxClassSize(a) > 0 {
			populated = true
			break
		}
	}
	if !populated {
		t.Error("no class populated")
	}
	if net.Rounds() <= 0 {
		t.Error("IdentifyClass must charge rounds")
	}
}

func TestIdentifyClassAccuracyAgainstDelta(t *testing.T) {
	// Proposition 5 accuracy, checked through the same path the
	// experiment harness uses.
	net, pt, inst, pl := identifySetup(t, 81, 9, 0.55)
	_ = net
	cls, err := runIdentifyClass(congestMust(t, 81), pt, inst, pl, PaperParams(), NewScratch(), xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	params := PaperParams()
	q, s := pt.NumCoarse(), pt.NumFine()
	bad := 0
	total := 0
	for u := 0; u < q; u++ {
		for v := 0; v < q; v++ {
			for w := 0; w < s; w++ {
				alpha := cls.classOf[pt.TripleIndex(TripleLabel{U: u, V: v, W: w})]
				lo, hi := Proposition5Bounds(alpha, 81, params)
				d := float64(deltaSize(pt, inst, pl, u, v, w))
				total++
				if d < lo || d > hi {
					bad++
				}
			}
		}
	}
	if bad*50 > total { // demand ≥ 98% within bounds
		t.Errorf("%d/%d triples outside their Proposition 5 interval", bad, total)
	}
}

func congestMust(t *testing.T, n int) *congest.Network {
	t.Helper()
	net, err := congest.NewNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestIdentifyClassAbort(t *testing.T) {
	net, pt, inst, pl := identifySetup(t, 32, 5, 0.8)
	params := PaperParams()
	params.ClassSample = 1e9 // select everything
	params.ClassAbort = 1e-9 // abort immediately
	_, err := runIdentifyClass(net, pt, inst, pl, params, NewScratch(), xrand.New(2))
	var ia *IdentifyAbortError
	if !errors.As(err, &ia) {
		t.Fatalf("err = %v, want IdentifyAbortError", err)
	}
	if ia.Error() == "" {
		t.Error("empty abort message")
	}
}

func TestIdentifyClassEmptyS(t *testing.T) {
	net, pt, inst, pl := identifySetup(t, 16, 6, 0.5)
	inst.S = map[graph.Pair]bool{} // empty S: nothing sampled, all class 0
	cls, err := runIdentifyClass(net, pt, inst, pl, PaperParams(), NewScratch(), xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cls.classOf {
		if c != 0 {
			t.Fatal("empty S must classify every triple as 0")
		}
	}
}

func TestDeltaSizeMatchesGamma(t *testing.T) {
	// Σ_w |Δ(u,v;w)| over fine blocks counts each triangle-involved pair
	// per block containing a witness; for a pair with one witness w the
	// pair contributes exactly 1 to the block of w.
	g := graph.NewUndirected(16)
	set := func(a, b int, w int64) {
		t.Helper()
		if err := g.SetEdge(a, b, w); err != nil {
			t.Fatal(err)
		}
	}
	set(0, 1, -10)
	set(0, 2, 1)
	set(1, 2, 1) // triangle {0,1,2}, witness 2 for pair {0,1}
	pt, err := NewPartitions(16)
	if err != nil {
		t.Fatal(err)
	}
	net := congestMust(t, 16)
	inst := &Instance{G: g}
	pl, err := runPlacement(net, pt, inst.legs(), DataDirect, NewScratch())
	if err != nil {
		t.Fatal(err)
	}
	u := pt.CoarseOf(0)
	v := pt.CoarseOf(1)
	sum := 0
	for w := 0; w < pt.NumFine(); w++ {
		sum += deltaSize(pt, inst, pl, u, v, w)
	}
	// Pairs {0,1}, {0,2}, {1,2} are all in negative triangles; pairs in
	// this (u,v) group contribute once per witness block. {0,1} has
	// witness 2; depending on the partition {0,2} and {1,2} may share the
	// group. At minimum the sum counts pair {0,1} once.
	if sum < 1 {
		t.Errorf("delta sum = %d, want >= 1", sum)
	}
}

func TestClassForCountThresholds(t *testing.T) {
	params := PaperParams()
	n := 81
	for alpha := 0; alpha < 6; alpha++ {
		thr := params.classThreshold(n, alpha)
		// Just below the α threshold → class ≤ α; at the threshold →
		// class > α.
		below := classForCount(int(thr)-1, n, params)
		at := classForCount(int(thr)+1, n, params)
		if below > alpha {
			t.Errorf("count %d classified %d, want ≤ %d", int(thr)-1, below, alpha)
		}
		if at <= alpha {
			t.Errorf("count %d classified %d, want > %d", int(thr)+1, at, alpha)
		}
	}
}
