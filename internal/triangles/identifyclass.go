package triangles

import (
	"fmt"
	"math"

	"qclique/internal/congest"
	"qclique/internal/xrand"
)

// This file implements Algorithm IdentifyClass (Figure 2): a cheap random
// sample R of the pairs in S is broadcast, every triple-labeled node
// (u,v,w) locally counts the sampled pairs of P(u,v) that close a negative
// triangle through its fine block w, and quantizes that count into a class
// c_uvw. Proposition 5 shows the classes track |Δ(u,v;w)| within constant
// factors with probability 1 − 2/n.

// IdentifyAbortError reports the Figure 2 Step 1 abort: some node sampled
// more than ClassAbort·log n pairs. The caller retries with fresh
// randomness.
type IdentifyAbortError struct {
	Vertex int
	Count  int
	Bound  int
}

func (e *IdentifyAbortError) Error() string {
	return fmt.Sprintf("triangles: IdentifyClass abort: node %d sampled %d pairs, bound %d",
		e.Vertex, e.Count, e.Bound)
}

// rPair is one broadcast element of R: a sampled pair and its weight in G.
type rPair struct {
	a, b int
	w    int64
}

// classification is the outcome of IdentifyClass: a class per triple label
// and, per (u,v) group, the fine blocks of each class.
type classification struct {
	pt       *Partitions
	classOf  []int // per TripleIndex
	maxClass int
}

// classesFor returns T_α[u,v]: the fine-block indices w with c_uvw = α.
func (c *classification) classesFor(u, v, alpha int) []int {
	return c.appendClassesFor(nil, u, v, alpha)
}

// appendClassesFor appends T_α[u,v] to dst, the arena-friendly form used by
// the evaluation builder.
func (c *classification) appendClassesFor(dst []int, u, v, alpha int) []int {
	s := c.pt.NumFine()
	for w := 0; w < s; w++ {
		ti := c.pt.TripleIndex(TripleLabel{U: u, V: v, W: w})
		if c.classOf[ti] == alpha {
			dst = append(dst, w)
		}
	}
	return dst
}

// maxClassSize returns max over (u,v) of |T_α[u,v]|, the padded search
// space size for class α.
func (c *classification) maxClassSize(alpha int) int {
	q := c.pt.NumCoarse()
	best := 0
	for u := 0; u < q; u++ {
		for v := 0; v < q; v++ {
			if n := len(c.classesFor(u, v, alpha)); n > best {
				best = n
			}
		}
	}
	return best
}

// runIdentifyClass executes Figure 2 on the network. inst supplies S and
// the pair weights; pl supplies the Step 1 leg tables.
func runIdentifyClass(net *congest.Network, pt *Partitions, inst *Instance, pl *placement, params Params, sc *Scratch, rng *xrand.Source) (*classification, error) {
	n := pt.N()
	prob := params.classSampleProb(n)
	abortBound := params.classAbortBound(n)

	// Step 1: each node u samples Λ(u) ⊆ {v : {u,v} ∈ S}. The sample list
	// and per-node streams come from the scratch — this loop used to be the
	// pipeline's dominant object-allocation site (one PCG source per node
	// per promise call).
	r := sc.idPairs[:0]
	maxWords := int64(0)
	idSplit := rng.SplitterFor("identify-sample")
	coin := xrand.NewBoolSampler(prob)
	for u := 0; u < n; u++ {
		nodeRng := idSplit.Into(sc.sampleRng(), u)
		count := 0
		var words int64
		for v := 0; v < n; v++ {
			if v == u || !inst.inS(u, v) {
				continue
			}
			if !coin.Draw(nodeRng) {
				continue
			}
			count++
			if count > abortBound {
				// The abort itself is announced with a one-word broadcast.
				_ = net.Broadcast("identifyclass/abort", congest.NodeID(u), 1)
				return nil, &IdentifyAbortError{Vertex: u, Count: count, Bound: abortBound}
			}
			// Pairs without an edge in G cannot lie in a triangle; they are
			// dropped from the broadcast (they would contribute zero to
			// every d_uvw).
			w, ok := inst.G.Weight(u, v)
			if !ok {
				continue
			}
			r = append(r, rPair{a: u, b: v, w: w})
			words += 2 // destination vertex + weight
		}
		if words > maxWords {
			maxWords = words
		}
	}
	sc.idPairs = r
	// All nodes broadcast their Λ(u) (with weights) simultaneously; the
	// phase costs the maximum per-node word count, Θ(log n).
	if err := net.BroadcastAll("identifyclass/broadcast-R", maxWords); err != nil {
		return nil, err
	}

	// Step 2: local counting at every triple node. The class array is
	// scratch-backed (every triple's entry is assigned below); the buckets
	// keep their grown capacity across calls.
	if cap(sc.classOf) < pt.NumTriples() {
		sc.classOf = make([]int, pt.NumTriples())
	}
	cls := &classification{pt: pt, classOf: sc.classOf[:pt.NumTriples()]}
	// Bucket R by (u,v) group to avoid rescanning all of R per triple.
	q := pt.NumCoarse()
	if cap(sc.idBuckets) < q*q {
		sc.idBuckets = make([][]rPair, q*q)
	}
	buckets := sc.idBuckets[:q*q]
	for i := range buckets {
		buckets[i] = buckets[i][:0]
	}
	for _, rp := range r {
		bu := pt.CoarseOf(rp.a)
		bv := pt.CoarseOf(rp.b)
		buckets[bu*q+bv] = append(buckets[bu*q+bv], rp)
		if bu != bv {
			buckets[bv*q+bu] = append(buckets[bv*q+bu], rPair{a: rp.b, b: rp.a, w: rp.w})
		}
	}
	s := pt.NumFine()
	for u := 0; u < q; u++ {
		for v := 0; v < q; v++ {
			group := buckets[u*q+v]
			for w := 0; w < s; w++ {
				d := 0
				for _, rp := range group {
					if pl.legSumBelow(u, v, w, rp.a, rp.b, -rp.w) {
						d++
					}
				}
				ti := pt.TripleIndex(TripleLabel{U: u, V: v, W: w})
				cls.classOf[ti] = classForCount(d, n, params)
				if cls.classOf[ti] > cls.maxClass {
					cls.maxClass = cls.classOf[ti]
				}
			}
		}
	}

	// Triple nodes announce their class to the √n search nodes of their
	// (u,v) group: one word per (triple, x) pair, Lemma-1 balanced.
	loadsBuf := getLoadBuf(pt.NumTriples() * s)
	defer putLoadBuf(loadsBuf)
	loads := *loadsBuf
	for ti := range cls.classOf {
		t := pt.TripleFromIndex(ti)
		src := pt.TripleNode(t)
		for x := 0; x < s; x++ {
			dst := pt.SearchNode(SearchLabel{U: t.U, V: t.V, X: x})
			if src == dst {
				continue
			}
			loads = append(loads, congest.Load{Src: src, Dst: dst, Words: 1})
		}
	}
	*loadsBuf = loads
	if err := net.ChargeBalanced("identifyclass/announce-classes", loads); err != nil {
		return nil, err
	}
	return cls, nil
}

// classForCount quantizes d_uvw into the smallest c ≥ 0 with
// d < ClassThreshold·2^c·log n (Figure 2 Step 2).
func classForCount(d, n int, params Params) int {
	c := 0
	for float64(d) >= params.classThreshold(n, c) {
		c++
		if c > 64 {
			// Unreachable for any d ≤ n², kept as an overflow guard.
			break
		}
	}
	return c
}

// deltaSize computes |Δ(u,v;w)| exactly (Definition 3): the number of
// pairs of P(u,v) ∩ S involved in a negative triangle through fine block
// w. It is the quantity Proposition 5's classes approximate; exported to
// the experiment harness via DeltaSize.
func deltaSize(pt *Partitions, inst *Instance, pl *placement, u, v, w int) int {
	count := 0
	for _, pr := range pt.PairsBetween(u, v) {
		if !inst.inS(pr.U, pr.V) {
			continue
		}
		fw, ok := inst.G.Weight(pr.U, pr.V)
		if !ok {
			continue
		}
		a, b := pr.U, pr.V
		if pt.CoarseOf(a) != u {
			a, b = b, a
		}
		if pl.legSumBelow(u, v, w, a, b, -fw) {
			count++
		}
	}
	return count
}

// Proposition5Bounds returns the interval [lo, hi] that |Δ(u,v;w)| must
// occupy for class α per Proposition 5: class 0 means |Δ| ≤ 2n; class
// α > 0 means 2^{α-3}·n ≤ |Δ| ≤ 2^{α+1}·n. The paper's thresholds are
// stated for the verbatim constants; the returned interval scales with
// Params.ClassThreshold relative to its paper value of 10.
func Proposition5Bounds(alpha, n int, params Params) (lo, hi float64) {
	scale := params.ClassThreshold / 10.0
	if alpha == 0 {
		return 0, 2 * scale * float64(n)
	}
	return math.Pow(2, float64(alpha-3)) * scale * float64(n),
		math.Pow(2, float64(alpha+1)) * scale * float64(n)
}
