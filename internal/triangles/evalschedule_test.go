package triangles

import (
	"errors"
	"testing"

	"qclique/internal/congest"
	"qclique/internal/graph"
	"qclique/internal/xrand"
)

// buildEval assembles an evalBuilder for class alpha on a random workload.
func buildEval(t *testing.T, n int, seed uint64, params Params, alpha int) (*congest.Network, *evalBuilder, *searchState) {
	t.Helper()
	pt, err := NewPartitions(n)
	if err != nil {
		t.Fatal(err)
	}
	net, err := congest.NewNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(seed)
	g, err := graph.RandomUndirected(n, graph.UndirectedOpts{EdgeProb: 0.5, MinWeight: -8, MaxWeight: 15}, rng)
	if err != nil {
		t.Fatal(err)
	}
	inst := &Instance{G: g}
	pl, err := runPlacement(net, pt, inst.legs(), DataDirect, NewScratch())
	if err != nil {
		t.Fatal(err)
	}
	cls, err := runIdentifyClass(net, pt, inst, pl, params, NewScratch(), rng.Split("identify"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := runCoverings(net, pt, inst, params, NewScratch(), rng.Split("cover"))
	if err != nil {
		t.Fatal(err)
	}
	return net, newEvalBuilder(pt, pl, st, cls, params, alpha, NewScratch(), rng.Split("eval")), st
}

func TestEvalFuncTruthTablesMatchBruteForce(t *testing.T) {
	net, b, st := buildEval(t, 32, 1, PaperParams(), 0)
	if b.spaceSize == 0 {
		t.Skip("class 0 empty")
	}
	tables, err := b.evalFunc()(net)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(st.instances) {
		t.Fatalf("tables = %d, instances = %d", len(tables), len(st.instances))
	}
	// Spot check each table entry against the brute-force triangle test.
	rng := xrand.New(99)
	checked := 0
	for trial := 0; trial < 500 && checked < 200; trial++ {
		i := rng.IntN(len(st.instances))
		ins := st.instances[i]
		g := b.groupOf(ins.label)
		list := b.classLists[g]
		if len(list) == 0 {
			continue
		}
		xi := rng.IntN(b.spaceSize)
		want := false
		if xi < len(list) {
			w := list[xi]
			for _, c := range b.pt.Fine[w] {
				if c == ins.pair.U || c == ins.pair.V {
					continue
				}
				la, ok := b.pl.legs.Weight(ins.pair.U, c)
				if !ok {
					continue
				}
				lb, ok := b.pl.legs.Weight(ins.pair.V, c)
				if !ok {
					continue
				}
				if graph.SaturatingAdd(la, lb) < -ins.weight {
					want = true
					break
				}
			}
		}
		if tables[i][xi] != want {
			t.Fatalf("instance %d element %d: table %v, brute force %v", i, xi, tables[i][xi], want)
		}
		checked++
	}
	if checked < 50 {
		t.Fatalf("only %d entries checked", checked)
	}
}

func TestEvalFuncSlotOverflowAborts(t *testing.T) {
	params := PaperParams()
	params.SlotCap = 1e-9 // every nonempty list overflows
	net, b, st := buildEval(t, 32, 2, params, 0)
	if b.spaceSize == 0 || len(st.instances) == 0 {
		t.Skip("no work")
	}
	_, err := b.evalFunc()(net)
	var so *SlotOverflowError
	if !errors.As(err, &so) {
		t.Fatalf("err = %v, want SlotOverflowError", err)
	}
	if so.Error() == "" {
		t.Error("empty overflow message")
	}
}

func TestEvalFuncChargesRounds(t *testing.T) {
	net, b, _ := buildEval(t, 32, 3, PaperParams(), 0)
	if b.spaceSize == 0 {
		t.Skip("class 0 empty")
	}
	before := net.Rounds()
	if _, err := b.evalFunc()(net); err != nil {
		t.Fatal(err)
	}
	if net.Rounds() <= before {
		t.Error("evaluation must charge rounds")
	}
}

func TestEvalBuilderPadding(t *testing.T) {
	_, b, _ := buildEval(t, 32, 4, PaperParams(), 0)
	// Padded entries (beyond the group's class list) must always be false.
	if b.spaceSize == 0 {
		t.Skip("class 0 empty")
	}
	for g, list := range b.classLists {
		if len(list) >= b.spaceSize {
			continue
		}
		row := b.truthRow(g, graph.MakePair(0, 1), 100000) // huge weight: nothing negative
		for i := len(list); i < b.spaceSize; i++ {
			if row[i] {
				t.Fatal("padded element marked true")
			}
		}
		break
	}
}

func TestCloneNodeMapping(t *testing.T) {
	_, b, _ := buildEval(t, 32, 5, PaperParams(), 0)
	tl := TripleLabel{U: 0, V: 0, W: 0}
	if b.cloneNode(tl, 0, 1) != b.pt.TripleNode(tl) {
		t.Error("y=0 must map to the triple node")
	}
	if b.cloneNode(tl, 0, 4) != b.pt.TripleNode(tl) {
		t.Error("y=0 with dup>1 must map to the triple node")
	}
	n := b.pt.N()
	for y := 1; y < 4; y++ {
		c := b.cloneNode(tl, y, 4)
		if c < 0 || int(c) >= n {
			t.Fatalf("clone node %d out of range", c)
		}
	}
}

func TestRunCoveringsKeepsOnlySEdges(t *testing.T) {
	pt, err := NewPartitions(16)
	if err != nil {
		t.Fatal(err)
	}
	net, err := congest.NewNetwork(16)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.NewUndirected(16)
	if err := g.SetEdge(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	if err := g.SetEdge(2, 3, 7); err != nil {
		t.Fatal(err)
	}
	inst := &Instance{G: g, S: map[graph.Pair]bool{graph.MakePair(0, 1): true}}
	st, err := runCoverings(net, pt, inst, PaperParams(), NewScratch(), xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, ins := range st.instances {
		if ins.pair != graph.MakePair(0, 1) {
			t.Fatalf("kept pair %v outside S∩E", ins.pair)
		}
		if ins.weight != 5 {
			t.Fatalf("kept weight %d, want 5", ins.weight)
		}
	}
	if len(st.instances) == 0 {
		t.Error("the S pair should be covered by at least one Λx (paper constants sample everything at n=16)")
	}
}

func TestFigure5DuplicationPathCharges(t *testing.T) {
	// Force dup > 1 via a tiny ClassSize and a nonzero class; verify the
	// duplication broadcast charges rounds and the schedule still works.
	params := PaperParams()
	params.ClassSize = 0.0001
	params.ClassThreshold = 0.0001 // push triples into high classes
	net, b, st := buildEval(t, 32, 6, params, 3)
	if b.spaceSize == 0 || len(st.instances) == 0 {
		t.Skip("class 3 empty under forced thresholds")
	}
	if params.duplication(32, 3) <= 1 {
		t.Skip("duplication did not activate")
	}
	before := net.Rounds()
	if _, err := b.evalFunc()(net); err != nil {
		t.Fatal(err)
	}
	if net.Rounds() <= before {
		t.Error("Figure 5 duplication must charge rounds")
	}
}
