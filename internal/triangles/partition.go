package triangles

import (
	"fmt"
	"math"

	"qclique/internal/congest"
	"qclique/internal/graph"
	"qclique/internal/xrand"
)

// This file implements the two vertex partitions and three labeling schemes
// of Section 5.1, generalized to arbitrary n by rounding the part counts
// and multiplexing surplus labels onto physical nodes (the paper assumes
// n^{1/4}, √n, n^{3/4} are integers and notes the general case "slightly
// adjusts the sizes of the sets").

// Partitions holds the vertex partitions used by ComputePairs.
type Partitions struct {
	n int

	// Coarse is 𝒱: ~n^{1/4} blocks of ~n^{3/4} vertices.
	Coarse [][]int
	// Fine is 𝒱′: ~√n blocks of ~√n vertices.
	Fine [][]int

	// blockOfCoarse[v] and blockOfFine[v] invert the partitions.
	blockOfCoarse []int
	blockOfFine   []int
}

// splitEven partitions 0..n-1 into parts contiguous blocks whose sizes
// differ by at most one.
func splitEven(n, parts int) [][]int {
	if parts > n {
		parts = n
	}
	if parts < 1 {
		parts = 1
	}
	out := make([][]int, parts)
	base := n / parts
	extra := n % parts
	v := 0
	for i := range out {
		size := base
		if i < extra {
			size++
		}
		block := make([]int, size)
		for j := range block {
			block[j] = v
			v++
		}
		out[i] = block
	}
	return out
}

// NewPartitions builds the Section 5.1 partitions for an n-vertex graph.
func NewPartitions(n int) (*Partitions, error) {
	if n < 1 {
		return nil, fmt.Errorf("triangles: need n >= 1, got %d", n)
	}
	q := int(math.Round(math.Pow(float64(n), 0.25)))
	if q < 1 {
		q = 1
	}
	s := int(math.Round(math.Sqrt(float64(n))))
	if s < 1 {
		s = 1
	}
	p := &Partitions{
		n:             n,
		Coarse:        splitEven(n, q),
		Fine:          splitEven(n, s),
		blockOfCoarse: make([]int, n),
		blockOfFine:   make([]int, n),
	}
	for bi, block := range p.Coarse {
		for _, v := range block {
			p.blockOfCoarse[v] = bi
		}
	}
	for bi, block := range p.Fine {
		for _, v := range block {
			p.blockOfFine[v] = bi
		}
	}
	return p, nil
}

// N returns the vertex count.
func (p *Partitions) N() int { return p.n }

// NumCoarse returns |𝒱|.
func (p *Partitions) NumCoarse() int { return len(p.Coarse) }

// NumFine returns |𝒱′|.
func (p *Partitions) NumFine() int { return len(p.Fine) }

// CoarseOf returns the 𝒱-block index containing vertex v.
func (p *Partitions) CoarseOf(v int) int { return p.blockOfCoarse[v] }

// FineOf returns the 𝒱′-block index containing vertex v.
func (p *Partitions) FineOf(v int) int { return p.blockOfFine[v] }

// TripleLabel is the second labeling scheme: a label (u, v, w) ∈ 𝒱×𝒱×𝒱′.
// Node (u,v,w) gathers the weights of all edges in P(u,w) and P(w,v).
type TripleLabel struct {
	U, V int // coarse block indices
	W    int // fine block index
}

// TripleIndex linearizes a TripleLabel.
func (p *Partitions) TripleIndex(t TripleLabel) int {
	q := p.NumCoarse()
	s := p.NumFine()
	return (t.U*q+t.V)*s + t.W
}

// TripleFromIndex inverts TripleIndex.
func (p *Partitions) TripleFromIndex(i int) TripleLabel {
	q := p.NumCoarse()
	s := p.NumFine()
	return TripleLabel{U: i / (q * s), V: (i / s) % q, W: i % s}
}

// NumTriples returns |𝒱|²·|𝒱′|, the number of triple labels. For n a
// perfect fourth power this is exactly n; otherwise labels are multiplexed
// onto physical nodes round-robin.
func (p *Partitions) NumTriples() int {
	return p.NumCoarse() * p.NumCoarse() * p.NumFine()
}

// TripleNode maps a triple label to the physical node hosting it.
func (p *Partitions) TripleNode(t TripleLabel) congest.NodeID {
	return congest.NodeID(p.TripleIndex(t) % p.n)
}

// SearchLabel is the third labeling scheme: a label (u, v, x) ∈
// 𝒱×𝒱×[√n]. Node (u,v,x) checks the triangles through the pairs in its
// covering set Λx(u,v).
type SearchLabel struct {
	U, V int // coarse block indices
	X    int // covering index in [0, NumFine)
}

// SearchIndex linearizes a SearchLabel.
func (p *Partitions) SearchIndex(l SearchLabel) int {
	q := p.NumCoarse()
	s := p.NumFine()
	return (l.U*q+l.V)*s + l.X
}

// SearchFromIndex inverts SearchIndex.
func (p *Partitions) SearchFromIndex(i int) SearchLabel {
	q := p.NumCoarse()
	s := p.NumFine()
	return SearchLabel{U: i / (q * s), V: (i / s) % q, X: i % s}
}

// NumSearchLabels returns |𝒱|²·√n.
func (p *Partitions) NumSearchLabels() int {
	return p.NumCoarse() * p.NumCoarse() * p.NumFine()
}

// SearchNode maps a search label to the physical node hosting it.
func (p *Partitions) SearchNode(l SearchLabel) congest.NodeID {
	return congest.NodeID(p.SearchIndex(l) % p.n)
}

// PairsBetween enumerates P(A, B): unordered pairs {a, b} with a ∈ block
// A, b ∈ block B, a ≠ b, for coarse blocks A and B (possibly equal).
func (p *Partitions) PairsBetween(a, b int) []graph.Pair {
	blockA := p.Coarse[a]
	blockB := p.Coarse[b]
	if a == b {
		out := make([]graph.Pair, 0, len(blockA)*(len(blockA)-1)/2)
		for i := 0; i < len(blockA); i++ {
			for j := i + 1; j < len(blockA); j++ {
				out = append(out, graph.MakePair(blockA[i], blockA[j]))
			}
		}
		return out
	}
	out := make([]graph.Pair, 0, len(blockA)*len(blockB))
	for _, x := range blockA {
		for _, y := range blockB {
			out = append(out, graph.MakePair(x, y))
		}
	}
	return out
}

// forEachPairBetween visits P(A, B) in exactly the order PairsBetween
// returns it, without materializing the slice — the covering sampler draws
// one random bit per pair, so the iteration order is part of the
// deterministic replay contract.
func (p *Partitions) forEachPairBetween(a, b int, fn func(pr graph.Pair)) {
	blockA := p.Coarse[a]
	blockB := p.Coarse[b]
	if a == b {
		for i := 0; i < len(blockA); i++ {
			for j := i + 1; j < len(blockA); j++ {
				fn(graph.MakePair(blockA[i], blockA[j]))
			}
		}
		return
	}
	for _, x := range blockA {
		for _, y := range blockB {
			fn(graph.MakePair(x, y))
		}
	}
}

// pairCountBetween returns |P(A, B)| without enumerating it.
func (p *Partitions) pairCountBetween(a, b int) int {
	if a == b {
		k := len(p.Coarse[a])
		return k * (k - 1) / 2
	}
	return len(p.Coarse[a]) * len(p.Coarse[b])
}

// expectedCoveringPairs returns the expected total number of sampled pairs
// across all search labels, Σ |P(u,v)|·prob — the pre-sizing hint for the
// Step 2 buffers.
func (p *Partitions) expectedCoveringPairs(params Params) int {
	prob := params.coverSampleProb(p.n)
	q := p.NumCoarse()
	total := 0
	for u := 0; u < q; u++ {
		for v := 0; v < q; v++ {
			total += p.pairCountBetween(u, v)
		}
	}
	return int(float64(total*p.NumFine()) * prob)
}

// Covering is one node's random covering set Λx(u,v) with the pair weights
// it loaded (Step 2 of ComputePairs).
type Covering struct {
	Label SearchLabel
	// Pairs are the kept pairs (members of S with an existing edge),
	// paired with their weights.
	Pairs   []graph.Pair
	Weights []int64
}

// ErrNotWellBalanced reports a Lemma 2 abort: some covering set exceeded
// its per-endpoint balance bound, so the protocol run must be retried with
// fresh randomness.
type NotWellBalancedError struct {
	Label  SearchLabel
	Vertex int
	Count  int
	Bound  int
}

func (e *NotWellBalancedError) Error() string {
	return fmt.Sprintf("triangles: covering Λ%d(%d,%d) not well-balanced: vertex %d has %d pairs, bound %d",
		e.Label.X, e.Label.U, e.Label.V, e.Vertex, e.Count, e.Bound)
}

// sampleCovering draws Λx(u,v) ⊆ P(u,v) with the Section 5.1 process: each
// pair joins independently with probability CoverSample·log(n)/√n. The
// returned covering holds every sampled pair (membership in S and edge
// existence are filtered later, during the weight-loading exchange). It
// returns a NotWellBalancedError if any endpoint exceeds the balance bound.
func (p *Partitions) sampleCovering(label SearchLabel, params Params, rng *xrand.Source) ([]graph.Pair, error) {
	return p.sampleCoveringBuf(label, params, rng, nil, nil)
}

// sampleCoveringBuf is sampleCovering with caller-provided scratch: pairs
// (reused as the backing for the returned slice, valid until the caller's
// next sampleCoveringBuf call with the same buffer) and perVertex (length
// n, will be reset). Step 2 calls this once per search label per promise
// call; the scratch removes both per-label allocations.
func (p *Partitions) sampleCoveringBuf(label SearchLabel, params Params, rng *xrand.Source, buf []graph.Pair, perVertex []int32) ([]graph.Pair, error) {
	prob := params.coverSampleProb(p.n)
	coin := xrand.NewBoolSampler(prob)
	bound := params.wellBalancedBound(p.n)
	if perVertex == nil {
		perVertex = make([]int32, p.n)
	}
	pairs := buf[:0]
	if cap(pairs) == 0 {
		pairs = make([]graph.Pair, 0, int(float64(p.pairCountBetween(label.U, label.V))*prob)+8)
	}
	// The pair loops below visit P(U, V) in exactly the order
	// forEachPairBetween does — one random bit per pair, so the iteration
	// order is part of the deterministic replay contract. They are inlined
	// here (this is the innermost Step 2 sampling loop) with the pair
	// normalization hoisted: coarse blocks are disjoint ascending ranges,
	// so within one label every pair has the same orientation.
	blockA := p.Coarse[label.U]
	blockB := p.Coarse[label.V]
	if label.U == label.V {
		for i := 0; i < len(blockA); i++ {
			for j := i + 1; j < len(blockA); j++ {
				if !coin.Draw(rng) {
					continue
				}
				pr := graph.Pair{U: blockA[i], V: blockA[j]}
				pairs = append(pairs, pr)
				perVertex[pr.U]++
				perVertex[pr.V]++
			}
		}
	} else {
		flip := label.U > label.V
		for _, x := range blockA {
			for _, y := range blockB {
				if !coin.Draw(rng) {
					continue
				}
				pr := graph.Pair{U: x, V: y}
				if flip {
					pr = graph.Pair{U: y, V: x}
				}
				pairs = append(pairs, pr)
				perVertex[pr.U]++
				perVertex[pr.V]++
			}
		}
	}
	// Well-balancedness (Section 5.1): for every u in block u, the number
	// of sampled pairs touching it must stay within the bound. The paper
	// states the condition for u ∈ u; by symmetry of P(u,v) we check both
	// endpoints.
	var violation *NotWellBalancedError
	for _, pr := range pairs {
		if c := int(perVertex[pr.U]); c > bound {
			violation = &NotWellBalancedError{Label: label, Vertex: pr.U, Count: c, Bound: bound}
			break
		}
		if c := int(perVertex[pr.V]); c > bound {
			violation = &NotWellBalancedError{Label: label, Vertex: pr.V, Count: c, Bound: bound}
			break
		}
	}
	// Re-zero the touched counters so the scratch is clean for the next
	// label.
	for _, pr := range pairs {
		perVertex[pr.U] = 0
		perVertex[pr.V] = 0
	}
	if violation != nil {
		return nil, violation
	}
	return pairs, nil
}
