package triangles

import (
	"errors"
	"testing"

	"qclique/internal/congest"
	"qclique/internal/graph"
	"qclique/internal/qsearch"
	"qclique/internal/xrand"
)

// wantEdges computes the brute-force reference output for an instance,
// honoring the leg-graph semantics and the S restriction.
func wantEdges(inst Instance) map[graph.Pair]bool {
	n := inst.G.N()
	legs := inst.legs()
	out := make(map[graph.Pair]bool)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if !inst.inS(a, b) {
				continue
			}
			fab, ok := inst.G.Weight(a, b)
			if !ok {
				continue
			}
			for c := 0; c < n; c++ {
				if c == a || c == b {
					continue
				}
				la, ok := legs.Weight(a, c)
				if !ok {
					continue
				}
				lb, ok := legs.Weight(b, c)
				if !ok {
					continue
				}
				if graph.SaturatingAdd(graph.SaturatingAdd(fab, la), lb) < 0 {
					out[graph.MakePair(a, b)] = true
					break
				}
			}
		}
	}
	return out
}

func checkExact(t *testing.T, got, want map[graph.Pair]bool, label string) {
	t.Helper()
	for p := range want {
		if !got[p] {
			t.Errorf("%s: missing pair %v", label, p)
		}
	}
	for p := range got {
		if !want[p] {
			t.Errorf("%s: spurious pair %v", label, p)
		}
	}
}

func randomInstance(t *testing.T, n int, seed uint64, edgeProb float64) Instance {
	t.Helper()
	rng := xrand.New(seed)
	g, err := graph.RandomUndirected(n, graph.UndirectedOpts{EdgeProb: edgeProb, MinWeight: -10, MaxWeight: 25}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return Instance{G: g}
}

func TestFindEdgesWithPromiseQuantumExact(t *testing.T) {
	for _, n := range []int{16, 24, 81} {
		for seed := uint64(0); seed < 3; seed++ {
			inst := randomInstance(t, n, 100*uint64(n)+seed, 0.45)
			rep, err := FindEdgesWithPromise(inst, Options{Seed: seed})
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			checkExact(t, rep.Edges, wantEdges(inst), "quantum")
			if rep.Rounds <= 0 {
				t.Error("rounds must be positive")
			}
			if rep.Mode != SearchQuantum {
				t.Errorf("mode = %v", rep.Mode)
			}
		}
	}
}

func TestFindEdgesWithPromiseClassicalExact(t *testing.T) {
	for _, n := range []int{16, 81} {
		inst := randomInstance(t, n, uint64(n), 0.45)
		rep, err := FindEdgesWithPromise(inst, Options{Seed: 5, Mode: SearchClassicalScan})
		if err != nil {
			t.Fatal(err)
		}
		checkExact(t, rep.Edges, wantEdges(inst), "classical")
		if rep.Mode != SearchClassicalScan {
			t.Errorf("mode = %v", rep.Mode)
		}
	}
}

func TestFindEdgesWithPromiseNoTriangles(t *testing.T) {
	// All-positive weights: no negative triangles, empty output.
	rng := xrand.New(7)
	g, err := graph.RandomUndirected(25, graph.UndirectedOpts{EdgeProb: 0.5, MinWeight: 1, MaxWeight: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := FindEdgesWithPromise(Instance{G: g}, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Edges) != 0 {
		t.Errorf("expected empty output, got %d pairs", len(rep.Edges))
	}
}

func TestFindEdgesWithPromiseRespectsS(t *testing.T) {
	inst := randomInstance(t, 24, 9, 0.5)
	all := wantEdges(inst)
	if len(all) < 4 {
		t.Skip("workload produced too few triangle edges")
	}
	// Restrict S to half of the positive pairs plus some negatives.
	s := make(map[graph.Pair]bool)
	i := 0
	for p := range all {
		if i%2 == 0 {
			s[p] = true
		}
		i++
	}
	s[graph.MakePair(0, 1)] = true // likely not in a triangle; harmless either way
	inst.S = s
	rep, err := FindEdgesWithPromise(inst, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	checkExact(t, rep.Edges, wantEdges(inst), "restricted-S")
	for p := range rep.Edges {
		if !s[p] {
			t.Errorf("output pair %v outside S", p)
		}
	}
}

func TestFindEdgesWithPromiseLegGraph(t *testing.T) {
	// Leg semantics: removing a leg edge from Legs (but not from G) must
	// remove triangles that needed it.
	g := graph.NewUndirected(16)
	mustSet := func(a, b int, w int64) {
		t.Helper()
		if err := g.SetEdge(a, b, w); err != nil {
			t.Fatal(err)
		}
	}
	mustSet(0, 1, -10)
	mustSet(0, 2, 1)
	mustSet(1, 2, 1) // negative triangle {0,1,2}
	mustSet(0, 3, 1)
	mustSet(1, 3, 1) // negative triangle {0,1,3}
	legs := g.Clone()
	if err := legs.RemoveEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := legs.RemoveEdge(0, 3); err != nil {
		t.Fatal(err)
	}
	inst := Instance{G: g, Legs: legs}
	rep, err := FindEdgesWithPromise(inst, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := wantEdges(inst)
	checkExact(t, rep.Edges, want, "leg-graph")
	// {0,1} needed leg (0,2) or (0,3): both cut, so although {0,1} closes
	// triangles in G, it must not be reported. But {0,2} as a pair uses
	// legs (0,1)... check a specific absence: pair {0,1} requires legs
	// {0,c},{1,c} both in Legs; c=2 and c=3 both lost their {0,c} leg.
	if rep.Edges[graph.MakePair(0, 1)] {
		t.Error("pair {0,1} reported despite cut legs")
	}
}

func TestFindEdgesWithPromiseDataDirectMatchesFull(t *testing.T) {
	inst := randomInstance(t, 81, 77, 0.4)
	full, err := FindEdgesWithPromise(inst, Options{Seed: 10, Data: DataFull})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := FindEdgesWithPromise(inst, Options{Seed: 10, Data: DataDirect})
	if err != nil {
		t.Fatal(err)
	}
	checkExact(t, direct.Edges, full.Edges, "direct-vs-full")
	if full.Rounds != direct.Rounds {
		t.Errorf("round accounting differs: full=%d direct=%d", full.Rounds, direct.Rounds)
	}
}

func TestFindEdgesWithPromiseDeterministicForSeed(t *testing.T) {
	inst := randomInstance(t, 32, 5, 0.45)
	a, err := FindEdgesWithPromise(inst, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FindEdgesWithPromise(inst, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds || len(a.Edges) != len(b.Edges) {
		t.Error("same seed must reproduce the same run")
	}
}

func TestFindEdgesWithPromiseSharedNetworkAccumulates(t *testing.T) {
	inst := randomInstance(t, 16, 6, 0.5)
	net, err := congest.NewNetwork(16)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := FindEdgesWithPromise(inst, Options{Seed: 1, Net: net})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := FindEdgesWithPromise(inst, Options{Seed: 2, Net: net})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Rounds <= r1.Rounds {
		t.Error("shared network must accumulate rounds")
	}
}

func TestFindEdgesWithPromiseNilGraph(t *testing.T) {
	if _, err := FindEdgesWithPromise(Instance{}, Options{}); err == nil {
		t.Error("nil graph must fail")
	}
}

func TestFindEdgesWithPromiseRetriesOnAbort(t *testing.T) {
	// Force IdentifyClass aborts with a tiny abort bound; MaxRetries=0
	// must surface the abort as an error.
	inst := randomInstance(t, 32, 8, 0.6)
	params := PaperParams()
	params.ClassAbort = 1e-9
	params.ClassSample = 1e9
	params.MaxRetries = 0
	_, err := FindEdgesWithPromise(inst, Options{Seed: 1, Params: &params})
	if err == nil {
		t.Fatal("expected exhausted retries")
	}
	var ia *IdentifyAbortError
	if !errors.As(err, &ia) {
		t.Errorf("err = %v, want IdentifyAbortError in chain", err)
	}
}

func TestClassicalScanCostsMoreEvalCallsThanQuantum(t *testing.T) {
	// The classical scan pays |X| evaluations per class; the quantum
	// search pays Õ(√|X|). At n where |X| is big enough the call counts
	// must separate. Compare eval calls per class for n=81 (|X| ≤ 9).
	inst := randomInstance(t, 81, 13, 0.45)
	q, err := FindEdgesWithPromise(inst, Options{Seed: 4, Mode: SearchQuantum})
	if err != nil {
		t.Fatal(err)
	}
	c, err := FindEdgesWithPromise(inst, Options{Seed: 4, Mode: SearchClassicalScan})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Classes) == 0 || len(c.Classes) == 0 {
		t.Skip("no classes searched")
	}
	// The classical scan's calls equal the space size exactly.
	for _, st := range c.Classes {
		if st.EvalCalls != int64(st.SpaceSize) {
			t.Errorf("classical class %d: calls=%d, want %d", st.Alpha, st.EvalCalls, st.SpaceSize)
		}
	}
}

func TestSearchModeString(t *testing.T) {
	if SearchQuantum.String() != "quantum" || SearchClassicalScan.String() != "classical-scan" {
		t.Error("mode names wrong")
	}
	if SearchMode(0).String() == "" {
		t.Error("zero mode should render")
	}
}

func TestProposition5BoundsShape(t *testing.T) {
	params := PaperParams()
	lo, hi := Proposition5Bounds(0, 100, params)
	if lo != 0 || hi != 200 {
		t.Errorf("α=0 bounds = (%f,%f), want (0,200)", lo, hi)
	}
	lo, hi = Proposition5Bounds(3, 100, params)
	if lo != 100 || hi != 1600 {
		t.Errorf("α=3 bounds = (%f,%f), want (100,1600)", lo, hi)
	}
}

func TestClassForCount(t *testing.T) {
	params := PaperParams()
	n := 256
	// Below the first threshold → class 0.
	if c := classForCount(0, n, params); c != 0 {
		t.Errorf("class(0) = %d", c)
	}
	thr0 := params.classThreshold(n, 0)
	if c := classForCount(int(thr0)+1, n, params); c < 1 {
		t.Errorf("count above threshold must leave class 0")
	}
	// Monotone in d.
	prev := 0
	for d := 0; d < 100000; d *= 2 {
		c := classForCount(d, n, params)
		if c < prev {
			t.Fatalf("classForCount not monotone at %d", d)
		}
		prev = c
		if d == 0 {
			d = 1
		}
	}
}

func TestFindEdgesWithPromiseTruncationInjection(t *testing.T) {
	// At tiny n the Theorem 3 deviation bound saturates at 1, so enabling
	// injection makes every attempt fail and the retry budget must be
	// exhausted with ErrTruncation in the chain. A graph with at least one
	// negative triangle is needed so the multi-search actually runs.
	g := graph.NewUndirected(16)
	for _, e := range [][3]int64{{0, 1, -5}, {0, 2, 1}, {1, 2, 1}} {
		if err := g.SetEdge(int(e[0]), int(e[1]), e[2]); err != nil {
			t.Fatal(err)
		}
	}
	params := PaperParams()
	params.MaxRetries = 2
	_, err := FindEdgesWithPromise(Instance{G: g}, Options{
		Seed:                     1,
		Params:                   &params,
		InjectTruncationFailures: true,
	})
	if err == nil {
		t.Fatal("expected exhausted retries under forced truncation")
	}
	if !errors.Is(err, qsearch.ErrTruncation) {
		t.Errorf("err = %v, want ErrTruncation in chain", err)
	}
}

func TestReportTruncationBoundReported(t *testing.T) {
	// Without injection the bound is still reported (saturated at small n).
	inst := randomInstance(t, 16, 3, 0.5)
	rep, err := FindEdgesWithPromise(inst, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Edges) > 0 && rep.TruncationErrorBound <= 0 {
		t.Error("bound should be reported when searches ran")
	}
	if rep.TruncationErrorBound > 1 {
		t.Error("bound must be capped at 1")
	}
}
