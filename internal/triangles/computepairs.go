package triangles

import (
	"context"
	"errors"
	"fmt"

	"qclique/internal/congest"
	"qclique/internal/graph"
	"qclique/internal/qsearch"
	"qclique/internal/quantum"
	"qclique/internal/xrand"
)

// This file is the driver for Algorithm ComputePairs (Figure 1) and its
// Step 3 implementation (Figure 3): the public FindEdgesWithPromise entry
// point, the per-class multi-searches, retry handling for the protocol's
// abort branches, and the classical √n-scan variant used as the
// non-quantum baseline for the same algorithm.

// Instance is a FindEdgesWithPromise input.
type Instance struct {
	// G is the weighted undirected graph; pair weights f(u,v) are read
	// from it.
	G *graph.Undirected
	// Legs optionally restricts the triangle "legs" {u,w} and {w,v} to a
	// subgraph (the Proposition 1 reduction samples legs); nil means G.
	Legs *graph.Undirected
	// S is the pair set to report on; nil means all pairs P(V).
	S map[graph.Pair]bool

	// sMask is a flat snapshot of S (index u*n+v with u < v) built once
	// per promise call: Step 2 performs one S-membership test per sampled
	// covering pair, and the flat probe replaces a Pair-keyed map lookup
	// on that hot path.
	sMask []bool
}

func (in *Instance) legs() *graph.Undirected {
	if in.Legs != nil {
		return in.Legs
	}
	return in.G
}

// buildSMask materializes the flat S snapshot; a nil S means "all pairs"
// and needs no mask. The mask is carved from the scratch and valid until
// the scratch's next promise call.
func (in *Instance) buildSMask(sc *Scratch) {
	if in.S == nil {
		in.sMask = nil
		return
	}
	n := in.G.N()
	if cap(sc.sMask) < n*n {
		sc.sMask = make([]bool, n*n)
	}
	m := sc.sMask[:n*n]
	clear(m)
	sc.sMask = m
	for p, ok := range in.S {
		if ok {
			m[p.U*n+p.V] = true
		}
	}
	in.sMask = m
}

func (in *Instance) inS(a, b int) bool {
	if in.S == nil {
		return true
	}
	if in.sMask != nil {
		if a > b {
			a, b = b, a
		}
		return in.sMask[a*in.G.N()+b]
	}
	return in.S[graph.MakePair(a, b)]
}

// SearchMode selects the Step 3 search implementation.
type SearchMode int

const (
	// SearchQuantum is the paper's Õ(n^{1/4}) distributed Grover search.
	SearchQuantum SearchMode = iota + 1
	// SearchClassicalScan checks every element of each search space one
	// evaluation at a time — the O(√n) classical implementation the paper
	// notes for Step 3.
	SearchClassicalScan
)

func (m SearchMode) String() string {
	switch m {
	case SearchQuantum:
		return "quantum"
	case SearchClassicalScan:
		return "classical-scan"
	default:
		return fmt.Sprintf("SearchMode(%d)", int(m))
	}
}

// Options configures a FindEdgesWithPromise run.
type Options struct {
	// Params supplies the protocol constants; the zero value selects
	// PaperParams.
	Params *Params
	// Mode selects the Step 3 search; the zero value selects SearchQuantum.
	Mode SearchMode
	// Data selects payload-carrying versus charge-only placement; the zero
	// value selects DataFull.
	Data DataMode
	// Seed drives all protocol randomness.
	Seed uint64
	// Net optionally supplies an existing network so that costs accumulate
	// across calls (the reductions above this protocol do that); when nil
	// a fresh network is created.
	Net *congest.Network
	// Workers bounds the host-side parallelism used for node-local
	// computation (truth-table assembly, Grover state-vector updates);
	// <= 0 selects GOMAXPROCS. Results are identical for every setting.
	Workers int
	// InjectTruncationFailures enables sampling of the Theorem 3
	// truncation error as protocol failures (retried like the other
	// aborts). The bound is reported either way. At small simulated n the
	// asymptotic bound saturates and would make every run fail, so
	// injection is opt-in.
	InjectTruncationFailures bool
	// Scratch optionally supplies the reusable per-solve workspace; when
	// nil every call builds a private one (identical results, more
	// allocation). Not safe for concurrent use across calls.
	Scratch *Scratch
	// Ctx, when non-nil, is checked at the protocol's enumeration
	// checkpoints (between the promise calls of the Proposition 1
	// reduction) so a cancelled solve stops without running the remaining
	// instances. Checkpoints charge nothing; results of completed calls
	// are unaffected.
	Ctx context.Context
}

// ctxErr reports the options context's cancellation state (nil context
// means never cancelled).
func (o Options) ctxErr() error {
	if o.Ctx == nil {
		return nil
	}
	return o.Ctx.Err()
}

func (o Options) params() Params {
	if o.Params != nil {
		return *o.Params
	}
	return PaperParams()
}

func (o Options) mode() SearchMode {
	if o.Mode == 0 {
		return SearchQuantum
	}
	return o.Mode
}

func (o Options) data() DataMode {
	if o.Data == 0 {
		return DataFull
	}
	return o.Data
}

// ClassStat reports one class-α search of Step 3.2.
type ClassStat struct {
	Alpha      int
	SpaceSize  int
	Instances  int
	EvalRounds int64
	EvalCalls  int64
	Found      int
}

// Report is the outcome of FindEdgesWithPromise.
type Report struct {
	// Edges is the output: pairs of S involved in at least one negative
	// triangle (with legs in Legs).
	Edges map[graph.Pair]bool
	// Rounds is the total CONGEST-CLIQUE rounds charged, including aborted
	// attempts.
	Rounds int64
	// Metrics holds the aggregate network accounting (counters only; the
	// per-phase trace stays on the caller's Network to keep this snapshot
	// allocation-free on the hot path).
	Metrics congest.Metrics
	// Retries counts aborted attempts (covering imbalance, IdentifyClass
	// overflow, slot overflow, injected truncation failures).
	Retries int
	// Classes are the per-α search statistics of the successful attempt.
	Classes []ClassStat
	// TruncationErrorBound is the summed Theorem 3 deviation bound across
	// the per-node multi-searches of the successful attempt (capped at 1).
	TruncationErrorBound float64
	// Mode records which Step 3 implementation ran.
	Mode SearchMode
}

// retryableError reports whether an attempt failure is one of the
// protocol's abort branches (retried with fresh randomness) rather than a
// hard error.
func retryableError(err error) bool {
	var nwb *NotWellBalancedError
	var ia *IdentifyAbortError
	var so *SlotOverflowError
	return errors.As(err, &nwb) || errors.As(err, &ia) || errors.As(err, &so) ||
		errors.Is(err, qsearch.ErrTruncation)
}

// FindEdgesWithPromise solves the problem of Section 3 under the promise
// Γ(u,v) ≤ Promise·log n for all pairs of S: it returns every pair of S
// involved in a negative triangle. The algorithm is ComputePairs (Figure
// 1) with the Step 3 searches implemented per opts.Mode.
func FindEdgesWithPromise(inst Instance, opts Options) (*Report, error) {
	if inst.G == nil {
		return nil, errors.New("triangles: nil graph")
	}
	n := inst.G.N()
	sc := opts.Scratch
	if sc == nil {
		sc = NewScratch()
	}
	inst.buildSMask(sc)
	pt, err := sc.partitions(n)
	if err != nil {
		return nil, err
	}
	net := opts.Net
	if net == nil {
		net, err = congest.NewNetwork(n)
		if err != nil {
			return nil, err
		}
	}
	params := opts.params()
	rng := xrand.New(opts.Seed)

	// Step 1 (deterministic): charged once; aborts below restart only the
	// randomized steps, which is what fresh randomness re-draws.
	pl, err := runPlacement(net, pt, inst.legs(), opts.data(), sc)
	if err != nil {
		return nil, err
	}

	var lastErr error
	for attempt := 0; attempt <= params.MaxRetries; attempt++ {
		rep, err := computePairsAttempt(net, pt, &inst, pl, params, opts, sc, rng.SplitN("attempt", attempt))
		if err == nil {
			rep.Retries = attempt
			rep.Rounds = net.Rounds()
			rep.Metrics = net.Snapshot()
			rep.Mode = opts.mode()
			return rep, nil
		}
		if !retryableError(err) {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("triangles: %d attempts aborted, last: %w", params.MaxRetries+1, lastErr)
}

// computePairsAttempt runs Steps 2–3 of ComputePairs once.
func computePairsAttempt(net *congest.Network, pt *Partitions, inst *Instance, pl *placement, params Params, opts Options, sc *Scratch, rng *xrand.Source) (*Report, error) {
	// Step 3.1 (run before the searches; Figure 3): classify the triples.
	cls, err := runIdentifyClass(net, pt, inst, pl, params, sc, rng.Split("identify"))
	if err != nil {
		return nil, err
	}

	// Step 2: coverings.
	st, err := runCoverings(net, pt, inst, params, sc, rng.Split("cover"))
	if err != nil {
		return nil, err
	}

	rep := &Report{Edges: make(map[graph.Pair]bool)}

	// Step 3.2: for each class α, search T_α[u,v]. With no kept pairs
	// (S empty or disjoint from the coverings) there is nothing to search
	// and the output is empty.
	for alpha := 0; len(st.instances) > 0 && alpha <= cls.maxClass; alpha++ {
		b := newEvalBuilder(pt, pl, st, cls, params, alpha, sc, rng.SplitN("eval", alpha))
		b.workers = opts.Workers
		if b.spaceSize == 0 {
			continue
		}
		stat := ClassStat{Alpha: alpha, SpaceSize: b.spaceSize, Instances: len(st.instances)}
		switch opts.mode() {
		case SearchClassicalScan:
			found, err := classicalScan(net, b)
			if err != nil {
				return nil, err
			}
			stat.EvalCalls = int64(b.spaceSize)
			for i, ok := range found {
				if ok {
					rep.Edges[st.instances[i].pair] = true
					stat.Found++
				}
			}
		default:
			res, err := qsearch.MultiSearch(net, qsearch.Spec{
				SpaceSize: b.spaceSize,
				Instances: len(st.instances),
				Eval:      b.evalFunc(),
				Workers:   opts.Workers,
				Scratch:   &sc.qs,
			}, rng.SplitN("search", alpha))
			if err != nil {
				return nil, err
			}
			stat.EvalRounds = res.EvalRounds
			stat.EvalCalls = res.EvalCalls
			for i, ok := range res.Found {
				if ok {
					rep.Edges[st.instances[i].pair] = true
					stat.Found++
				}
			}
			// Theorem 3 accounting: per-node searches have m = kept pairs
			// at that node and the slot cap as β; sum the per-node
			// deviation bounds (union bound across nodes).
			bound := rep.TruncationErrorBound
			for _, cov := range st.coverings {
				if len(cov.Pairs) == 0 {
					continue
				}
				bound += quantum.TruncationDeviationBound(res.Iterations, len(cov.Pairs), b.spaceSize)
			}
			if bound > 1 {
				bound = 1
			}
			rep.TruncationErrorBound = bound
			if opts.InjectTruncationFailures && rng.SplitN("trunc", alpha).Bool(bound) {
				return nil, qsearch.ErrTruncation
			}
		}
		rep.Classes = append(rep.Classes, stat)
	}

	// Deliver each found pair to its two endpoint nodes (the problem's
	// output convention: node u outputs the pairs {u,v} it is part of).
	loadsBuf := getLoadBuf(2 * len(rep.Edges))
	defer putLoadBuf(loadsBuf)
	loads := *loadsBuf
	for pr := range rep.Edges {
		for _, owner := range []int{pr.U, pr.V} {
			// Reporting node: the search node that found it; charge one
			// word from a representative search node to the endpoint.
			src := pt.SearchNode(SearchLabel{U: pt.CoarseOf(pr.U), V: pt.CoarseOf(pr.V), X: 0})
			if src == congest.NodeID(owner) {
				continue
			}
			loads = append(loads, congest.Load{Src: src, Dst: congest.NodeID(owner), Words: 1})
		}
	}
	*loadsBuf = loads
	if err := net.ChargeBalanced("computepairs/output", loads); err != nil {
		return nil, err
	}
	return rep, nil
}

// classicalScan is the classical implementation of Step 3: one evaluation
// per element of the (padded) search space, answering every instance
// exactly. It costs spaceSize × evalRounds instead of Õ(√spaceSize) ×
// evalRounds.
func classicalScan(net *congest.Network, b *evalBuilder) ([]bool, error) {
	baseline := net.Snapshot()
	tables, err := b.evalFunc()(net)
	if err != nil {
		return nil, err
	}
	evalCost := net.DeltaSince(baseline)
	// One evaluation per space element; the first was executed above.
	net.ReplayCharge("classical-scan/oracle", evalCost, int64(b.spaceSize-1))
	found := make([]bool, len(tables))
	for i, row := range tables {
		for _, v := range row {
			if v {
				found[i] = true
				break
			}
		}
	}
	return found, nil
}
