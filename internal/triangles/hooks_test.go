package triangles

import (
	"testing"

	"qclique/internal/graph"
	"qclique/internal/xrand"
)

func TestCoveringTrialPaperParams(t *testing.T) {
	st, err := CoveringTrial(81, PaperParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Aborted {
		t.Error("paper constants should not abort at n=81")
	}
	if st.CoveredFraction < 1 {
		t.Errorf("coverage = %f, want 1 (Lemma 2 ii)", st.CoveredFraction)
	}
	if st.MaxPerVertex > st.Bound {
		t.Errorf("max per vertex %d exceeds bound %d", st.MaxPerVertex, st.Bound)
	}
}

func TestCoveringTrialForcedAbort(t *testing.T) {
	params := PaperParams()
	params.CoverSample = 1e9
	params.WellBalanced = 1e-9
	st, err := CoveringTrial(81, params, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Aborted {
		t.Error("pathological constants must abort")
	}
}

func TestCoveringTrialTinyN(t *testing.T) {
	st, err := CoveringTrial(4, PaperParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.CoveredFraction < 1 {
		t.Errorf("tiny n coverage = %f", st.CoveredFraction)
	}
}

func TestIdentifyClassTrialAccuracy(t *testing.T) {
	rng := xrand.New(4)
	g, err := graph.RandomUndirected(81, graph.UndirectedOpts{EdgeProb: 0.5, MinWeight: -10, MaxWeight: 12}, rng)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := IdentifyClassTrial(g, PaperParams(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Aborted {
		t.Skip("abort (low probability) — retry semantics covered elsewhere")
	}
	if acc.Triples == 0 {
		t.Fatal("no triples classified")
	}
	if float64(acc.Satisfied) < 0.98*float64(acc.Triples) {
		t.Errorf("only %d/%d triples within Proposition 5 intervals", acc.Satisfied, acc.Triples)
	}
}

func TestIdentifyClassTrialAbortPath(t *testing.T) {
	rng := xrand.New(6)
	g, err := graph.RandomUndirected(32, graph.UndirectedOpts{EdgeProb: 0.8, MinWeight: -5, MaxWeight: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	params := PaperParams()
	params.ClassSample = 1e9
	params.ClassAbort = 1e-9
	acc, err := IdentifyClassTrial(g, params, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !acc.Aborted {
		t.Error("forced abort must surface")
	}
}

func TestCongestionTrialShowsReduction(t *testing.T) {
	rng := xrand.New(8)
	g, err := graph.RandomUndirected(81, graph.UndirectedOpts{EdgeProb: 0.2, MinWeight: 1, MaxWeight: 30}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := graph.PlantNegativeTriangles(g, 5, 20, rng.Split("p")); err != nil {
		t.Fatal(err)
	}
	p := BenchParams()
	st, err := CongestionTrial(g, p, 9)
	if err != nil {
		t.Fatal(err)
	}
	if st.Instances <= 0 {
		t.Fatal("no instances")
	}
	if st.NaiveMaxLinkLoad <= st.BalancedMaxLinkLoad {
		t.Errorf("naive %d should exceed balanced %d", st.NaiveMaxLinkLoad, st.BalancedMaxLinkLoad)
	}
	if st.SlotCap <= 0 {
		t.Error("slot cap missing")
	}
}
