package triangles

import (
	"errors"
	"testing"
	"testing/quick"

	"qclique/internal/graph"
	"qclique/internal/xrand"
)

func TestSplitEven(t *testing.T) {
	cases := []struct {
		n, parts  int
		wantParts int
	}{
		{16, 4, 4},
		{17, 4, 4},
		{3, 5, 3}, // parts clipped to n
		{10, 1, 1},
	}
	for _, c := range cases {
		blocks := splitEven(c.n, c.parts)
		if len(blocks) != c.wantParts {
			t.Errorf("splitEven(%d,%d): %d parts, want %d", c.n, c.parts, len(blocks), c.wantParts)
		}
		seen := make([]bool, c.n)
		minSize, maxSize := c.n+1, 0
		for _, b := range blocks {
			if len(b) < minSize {
				minSize = len(b)
			}
			if len(b) > maxSize {
				maxSize = len(b)
			}
			for _, v := range b {
				if v < 0 || v >= c.n || seen[v] {
					t.Fatalf("splitEven(%d,%d) not a partition", c.n, c.parts)
				}
				seen[v] = true
			}
		}
		for v, ok := range seen {
			if !ok {
				t.Fatalf("splitEven(%d,%d) missed vertex %d", c.n, c.parts, v)
			}
		}
		if maxSize-minSize > 1 {
			t.Errorf("splitEven(%d,%d) uneven: sizes %d..%d", c.n, c.parts, minSize, maxSize)
		}
	}
}

func TestPartitionsShape(t *testing.T) {
	// Perfect fourth powers give the paper's exact shape.
	for _, n := range []int{16, 81, 256, 625} {
		pt, err := NewPartitions(n)
		if err != nil {
			t.Fatal(err)
		}
		q4 := pt.NumCoarse()
		if q4*q4*q4*q4 != n {
			t.Errorf("n=%d: coarse parts %d, want n^{1/4}", n, q4)
		}
		s := pt.NumFine()
		if s*s != n {
			t.Errorf("n=%d: fine parts %d, want √n", n, s)
		}
		if pt.NumTriples() != n {
			t.Errorf("n=%d: %d triples, want n", n, pt.NumTriples())
		}
		if pt.NumSearchLabels() != n {
			t.Errorf("n=%d: %d search labels, want n", n, pt.NumSearchLabels())
		}
	}
	if _, err := NewPartitions(0); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestPartitionsBlockLookups(t *testing.T) {
	pt, err := NewPartitions(81)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 81; v++ {
		cb := pt.CoarseOf(v)
		found := false
		for _, x := range pt.Coarse[cb] {
			if x == v {
				found = true
			}
		}
		if !found {
			t.Fatalf("CoarseOf(%d) = %d does not contain it", v, cb)
		}
		fb := pt.FineOf(v)
		found = false
		for _, x := range pt.Fine[fb] {
			if x == v {
				found = true
			}
		}
		if !found {
			t.Fatalf("FineOf(%d) = %d does not contain it", v, fb)
		}
	}
}

func TestTripleIndexRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 4 + rng.IntN(200)
		pt, err := NewPartitions(n)
		if err != nil {
			return false
		}
		for i := 0; i < pt.NumTriples(); i++ {
			tl := pt.TripleFromIndex(i)
			if pt.TripleIndex(tl) != i {
				return false
			}
			if tl.U < 0 || tl.U >= pt.NumCoarse() || tl.V < 0 || tl.V >= pt.NumCoarse() || tl.W < 0 || tl.W >= pt.NumFine() {
				return false
			}
			if node := pt.TripleNode(tl); node < 0 || int(node) >= n {
				return false
			}
		}
		for i := 0; i < pt.NumSearchLabels(); i++ {
			sl := pt.SearchFromIndex(i)
			if pt.SearchIndex(sl) != i {
				return false
			}
			if node := pt.SearchNode(sl); node < 0 || int(node) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPairsBetween(t *testing.T) {
	pt, err := NewPartitions(16)
	if err != nil {
		t.Fatal(err)
	}
	// Distinct blocks: |A|·|B| pairs.
	pairs := pt.PairsBetween(0, 1)
	want := len(pt.Coarse[0]) * len(pt.Coarse[1])
	if len(pairs) != want {
		t.Errorf("cross pairs = %d, want %d", len(pairs), want)
	}
	// Same block: |A| choose 2.
	pairs = pt.PairsBetween(0, 0)
	a := len(pt.Coarse[0])
	if len(pairs) != a*(a-1)/2 {
		t.Errorf("within pairs = %d, want %d", len(pairs), a*(a-1)/2)
	}
	// All pairs normalized and unique.
	seen := make(map[graph.Pair]bool)
	for _, p := range pairs {
		if p.U >= p.V || seen[p] {
			t.Fatalf("bad pair %v", p)
		}
		seen[p] = true
	}
}

func TestPairsBetweenCoverAllPairs(t *testing.T) {
	// Every pair of P(V) appears in at least one group's pair set.
	pt, err := NewPartitions(20)
	if err != nil {
		t.Fatal(err)
	}
	covered := make(map[graph.Pair]bool)
	q := pt.NumCoarse()
	for u := 0; u < q; u++ {
		for v := 0; v < q; v++ {
			for _, p := range pt.PairsBetween(u, v) {
				covered[p] = true
			}
		}
	}
	for a := 0; a < 20; a++ {
		for b := a + 1; b < 20; b++ {
			if !covered[graph.MakePair(a, b)] {
				t.Fatalf("pair {%d,%d} uncovered", a, b)
			}
		}
	}
}

func TestSampleCoveringBalanceAbort(t *testing.T) {
	pt, err := NewPartitions(81)
	if err != nil {
		t.Fatal(err)
	}
	// Pathological params: sample everything, bound of 1 → must abort.
	params := PaperParams()
	params.CoverSample = 1e9
	params.WellBalanced = 1e-9
	_, err = pt.sampleCovering(SearchLabel{U: 0, V: 1, X: 0}, params, xrand.New(1))
	var nwb *NotWellBalancedError
	if !errors.As(err, &nwb) {
		t.Fatalf("err = %v, want NotWellBalancedError", err)
	}
	if nwb.Error() == "" {
		t.Error("empty error message")
	}
}

func TestSampleCoveringPaperParamsBalanced(t *testing.T) {
	pt, err := NewPartitions(256)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(2)
	params := PaperParams()
	for x := 0; x < pt.NumFine(); x++ {
		if _, err := pt.sampleCovering(SearchLabel{U: 0, V: 1, X: x}, params, rng.SplitN("x", x)); err != nil {
			t.Fatalf("x=%d: unexpected abort: %v", x, err)
		}
	}
}

func TestCoveringCoversAllPairsWHP(t *testing.T) {
	// Lemma 2 (ii): the union of the Λx(u,v) over x covers P(u,v).
	pt, err := NewPartitions(81)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(3)
	params := PaperParams()
	covered := make(map[graph.Pair]bool)
	for x := 0; x < pt.NumFine(); x++ {
		pairs, err := pt.sampleCovering(SearchLabel{U: 0, V: 1, X: x}, params, rng.SplitN("x", x))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pairs {
			covered[p] = true
		}
	}
	for _, p := range pt.PairsBetween(0, 1) {
		if !covered[p] {
			t.Errorf("pair %v uncovered", p)
		}
	}
}
