// Package triangles implements the paper's negative-triangle machinery:
// FindEdgesWithPromise via Algorithm ComputePairs (Figure 1) with its
// partitions and labelings (Section 5.1), Algorithm IdentifyClass
// (Figure 2, Proposition 5), the evaluation procedures for the distributed
// quantum searches (Figures 4 and 5), the classical √n-search variant, the
// Dolev–Lenzen–Peled Õ(n^{1/3}) triangle-listing baseline, and the
// Proposition 1 reduction from FindEdges to FindEdgesWithPromise.
package triangles

import "math"

// Params collects the constants of Section 5. The paper's values are tuned
// for union bounds at asymptotic n; PaperParams returns them verbatim,
// BenchParams returns smaller constants with the same asymptotic shape for
// scaling measurements at simulable n. Every constant multiplies ln n (the
// paper's "log n"); the helpers below perform that multiplication.
type Params struct {
	// CoverSample is c in the Λx pair-sampling probability c·ln(n)/√n
	// (Section 5.1 partition procedure; paper: 10).
	CoverSample float64
	// WellBalanced is c in the well-balancedness bound c·n^{1/4}·ln n
	// (Section 5.1; paper: 100).
	WellBalanced float64
	// ClassSample is c in the IdentifyClass selection probability c·ln(n)/n
	// (Figure 2 Step 1; paper: 10).
	ClassSample float64
	// ClassAbort is c in the IdentifyClass abort bound c·ln n (Figure 2
	// Step 1; paper: 20).
	ClassAbort float64
	// ClassThreshold is c in the class boundaries c·2^α·ln n (Figure 2
	// Step 2; paper: 10).
	ClassThreshold float64
	// Promise is c in the FindEdgesWithPromise promise Γ(u,v) ≤ c·ln n
	// (Section 3; paper: 90).
	Promise float64
	// SlotCap is c in the evaluation-schedule per-destination cap
	// c·2^α·√n·ln n (Figures 4–5; paper: 800).
	SlotCap float64
	// ClassSize is c in the Lemma 4 bound |Tα[u,v]| ≤ c·√n·ln(n)/2^α
	// (paper: 720); it also sets the Figure 5 duplication factor
	// 2^α/(c·ln n).
	ClassSize float64
	// Reduction is c in the Proposition 1 sampling probability
	// √(c·2^i·ln(n)/n) and loop bound c·2^i·ln n ≤ n (paper: 60).
	Reduction float64
	// MaxRetries bounds how many times an aborted protocol run (covering
	// not well-balanced, IdentifyClass overflow, truncation failure) is
	// retried with fresh randomness before giving up.
	MaxRetries int
}

// PaperParams returns the constants exactly as printed in the paper.
func PaperParams() Params {
	return Params{
		CoverSample:    10,
		WellBalanced:   100,
		ClassSample:    10,
		ClassAbort:     20,
		ClassThreshold: 10,
		Promise:        90,
		SlotCap:        800,
		ClassSize:      720,
		Reduction:      60,
		MaxRetries:     25,
	}
}

// BenchParams returns constants scaled down by roughly 3x, preserving the
// asymptotic shape (every bound still carries its ln n and √n factors)
// while keeping message volumes simulable at n in the hundreds. Coverage
// of P(u,v) still holds with probability 1 − n^{-3+o(1)} per pair.
func BenchParams() Params {
	return Params{
		CoverSample:    3,
		WellBalanced:   40,
		ClassSample:    4,
		ClassAbort:     10,
		ClassThreshold: 4,
		Promise:        30,
		SlotCap:        260,
		ClassSize:      240,
		Reduction:      20,
		MaxRetries:     25,
	}
}

// logN is the paper's "log n" (natural log, floored at 1 so the tiny-n
// regime keeps positive probabilities).
func logN(n int) float64 {
	if n < 3 {
		return 1
	}
	return math.Log(float64(n))
}

// coverSampleProb is the Λx(u,v) per-pair sampling probability, clipped
// into [0, 1].
func (p Params) coverSampleProb(n int) float64 {
	return clipProb(p.CoverSample * logN(n) / math.Sqrt(float64(n)))
}

// wellBalancedBound is the per-u cap on |{v ∈ v : {u,v} ∈ Λx(u,v)}|.
func (p Params) wellBalancedBound(n int) int {
	return int(math.Ceil(p.WellBalanced * math.Pow(float64(n), 0.25) * logN(n)))
}

// classSampleProb is the IdentifyClass per-neighbor selection probability.
func (p Params) classSampleProb(n int) float64 {
	return clipProb(p.ClassSample * logN(n) / float64(n))
}

// classAbortBound is the |Λ(u)| abort threshold of IdentifyClass.
func (p Params) classAbortBound(n int) int {
	return int(math.Ceil(p.ClassAbort * logN(n)))
}

// classThreshold is the Figure 2 boundary 10·2^c·log n.
func (p Params) classThreshold(n, c int) float64 {
	return p.ClassThreshold * math.Pow(2, float64(c)) * logN(n)
}

// promiseBound is the FindEdgesWithPromise promise Γ ≤ 90·log n.
func (p Params) promiseBound(n int) int {
	return int(math.Ceil(p.Promise * logN(n)))
}

// slotCap is the evaluation-schedule per-destination list cap
// 800·2^α·√n·log n.
func (p Params) slotCap(n, alpha int) int {
	return int(math.Ceil(p.SlotCap * math.Pow(2, float64(alpha)) * math.Sqrt(float64(n)) * logN(n)))
}

// duplication is the Figure 5 bandwidth-duplication factor
// max(1, 2^α/(ClassSize·log n)).
func (p Params) duplication(n, alpha int) int {
	d := math.Pow(2, float64(alpha)) / (p.ClassSize * logN(n))
	if d < 1 {
		return 1
	}
	return int(math.Floor(d))
}

// reductionProb is the Proposition 1 leg-sampling probability
// √(Reduction·2^i·log n / n), clipped into [0, 1].
func (p Params) reductionProb(n, i int) float64 {
	return clipProb(math.Sqrt(p.Reduction * math.Pow(2, float64(i)) * logN(n) / float64(n)))
}

// reductionLoopActive reports whether the Proposition 1 while-loop
// condition Reduction·2^i·log n ≤ n still holds.
func (p Params) reductionLoopActive(n, i int) bool {
	return p.Reduction*math.Pow(2, float64(i))*logN(n) <= float64(n)
}

func clipProb(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
