package triangles

import (
	"math"
	"testing"
)

func TestPaperParamsValues(t *testing.T) {
	p := PaperParams()
	// The printed constants of the paper.
	if p.CoverSample != 10 || p.WellBalanced != 100 || p.ClassSample != 10 ||
		p.ClassAbort != 20 || p.ClassThreshold != 10 || p.Promise != 90 ||
		p.SlotCap != 800 || p.ClassSize != 720 || p.Reduction != 60 {
		t.Errorf("paper constants drifted: %+v", p)
	}
	if p.MaxRetries <= 0 {
		t.Error("retries must be positive")
	}
}

func TestBenchParamsPreserveShape(t *testing.T) {
	paper := PaperParams()
	bench := BenchParams()
	// Scaled-down but same sign and same dependence: every derived bound
	// must still be positive and smaller than the paper bound.
	n := 256
	if bench.coverSampleProb(n) <= 0 || bench.coverSampleProb(n) > paper.coverSampleProb(n) {
		t.Error("cover sampling probability out of order")
	}
	if bench.promiseBound(n) <= 0 || bench.promiseBound(n) > paper.promiseBound(n) {
		t.Error("promise bound out of order")
	}
	if bench.slotCap(n, 0) <= 0 || bench.slotCap(n, 0) > paper.slotCap(n, 0) {
		t.Error("slot cap out of order")
	}
}

func TestDerivedBoundsScaling(t *testing.T) {
	p := PaperParams()
	// coverSampleProb carries log(n)/√n.
	for _, n := range []int{16, 256, 4096} {
		want := 10 * math.Log(float64(n)) / math.Sqrt(float64(n))
		if want > 1 {
			want = 1
		}
		if got := p.coverSampleProb(n); math.Abs(got-want) > 1e-12 {
			t.Errorf("coverSampleProb(%d) = %f, want %f", n, got, want)
		}
	}
	// slotCap doubles per class.
	if 2*p.slotCap(256, 0) != p.slotCap(256, 1) &&
		math.Abs(float64(2*p.slotCap(256, 0)-p.slotCap(256, 1))) > 2 {
		t.Errorf("slot cap not doubling: α0=%d α1=%d", p.slotCap(256, 0), p.slotCap(256, 1))
	}
	// classThreshold doubles per class exactly.
	if p.classThreshold(256, 3) != 2*p.classThreshold(256, 2) {
		t.Error("class threshold not doubling")
	}
	// wellBalancedBound carries n^{1/4}·log n.
	if p.wellBalancedBound(16) >= p.wellBalancedBound(256) {
		t.Error("balance bound must grow with n")
	}
}

func TestDuplicationFactor(t *testing.T) {
	p := PaperParams()
	// At realistic α the factor stays 1 until 2^α exceeds 720·log n.
	if p.duplication(256, 0) != 1 || p.duplication(256, 5) != 1 {
		t.Error("small classes must not duplicate")
	}
	// Forcing a tiny ClassSize activates duplication.
	p.ClassSize = 0.001
	if p.duplication(256, 8) <= 1 {
		t.Errorf("duplication = %d, want > 1", p.duplication(256, 8))
	}
}

func TestReductionSchedule(t *testing.T) {
	p := PaperParams()
	// Probabilities grow with the level and eventually the loop stops.
	n := 100000
	if !p.reductionLoopActive(n, 0) {
		t.Fatal("level 0 must be active at large n")
	}
	prev := 0.0
	levels := 0
	for i := 0; p.reductionLoopActive(n, i); i++ {
		pr := p.reductionProb(n, i)
		if pr <= prev {
			t.Fatalf("sampling probability must grow per level: %f then %f", prev, pr)
		}
		prev = pr
		levels++
		if levels > 64 {
			t.Fatal("loop does not terminate")
		}
	}
	if levels == 0 {
		t.Error("expected at least one level at n=100000")
	}
	// Tiny n: no levels (the paper's c=0 case).
	if p.reductionLoopActive(30, 0) {
		t.Error("level 0 must be inactive at n=30 with paper constants")
	}
}

func TestClipProb(t *testing.T) {
	if clipProb(-0.5) != 0 || clipProb(1.5) != 1 || clipProb(0.25) != 0.25 {
		t.Error("clipProb wrong")
	}
}

func TestLogNFloor(t *testing.T) {
	if logN(0) != 1 || logN(2) != 1 {
		t.Error("tiny n must floor at 1")
	}
	if math.Abs(logN(100)-math.Log(100)) > 1e-12 {
		t.Error("logN must be ln for n >= 3")
	}
}
