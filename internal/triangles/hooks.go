package triangles

import (
	"errors"

	"qclique/internal/congest"
	"qclique/internal/graph"
	"qclique/internal/xrand"
)

// This file exposes measurement harnesses over the package's unexported
// machinery for the experiment suite (package internal/experiments):
// Lemma 2 covering statistics, Proposition 5 classification accuracy, and
// the Section 4.2 congestion comparison.

// CoveringStats reports one Lemma 2 trial over a full set of √n coverings
// for one (u,v) group.
type CoveringStats struct {
	// Aborted reports whether any covering failed the well-balancedness
	// check.
	Aborted bool
	// CoveredFraction is the fraction of P(u,v) covered by the union of
	// the Λx sets (Lemma 2 (ii) demands 1 w.h.p.).
	CoveredFraction float64
	// MaxPerVertex is the largest per-endpoint pair count observed across
	// coverings (the Lemma 2 (i) quantity).
	MaxPerVertex int
	// Bound is the well-balancedness bound the trial was checked against.
	Bound int
}

// CoveringTrial samples all √n coverings of group (u,v) = (0, min(1,q-1))
// for an n-vertex instance and reports the Lemma 2 statistics.
func CoveringTrial(n int, params Params, seed uint64) (*CoveringStats, error) {
	pt, err := NewPartitions(n)
	if err != nil {
		return nil, err
	}
	rng := xrand.New(seed)
	v := 0
	if pt.NumCoarse() > 1 {
		v = 1
	}
	st := &CoveringStats{Bound: params.wellBalancedBound(n)}
	covered := make(map[graph.Pair]bool)
	for x := 0; x < pt.NumFine(); x++ {
		label := SearchLabel{U: 0, V: v, X: x}
		pairs, err := pt.sampleCovering(label, params, rng.SplitN("x", x))
		if err != nil {
			var nwb *NotWellBalancedError
			if errors.As(err, &nwb) {
				st.Aborted = true
				if nwb.Count > st.MaxPerVertex {
					st.MaxPerVertex = nwb.Count
				}
				continue
			}
			return nil, err
		}
		perVertex := make(map[int]int)
		for _, p := range pairs {
			covered[p] = true
			perVertex[p.U]++
			perVertex[p.V]++
		}
		for _, c := range perVertex {
			if c > st.MaxPerVertex {
				st.MaxPerVertex = c
			}
		}
	}
	all := pt.PairsBetween(0, v)
	if len(all) > 0 {
		st.CoveredFraction = float64(len(covered)) / float64(len(all))
	} else {
		st.CoveredFraction = 1
	}
	return st, nil
}

// ClassAccuracy reports one Proposition 5 trial.
type ClassAccuracy struct {
	// Aborted reports a Figure 2 Step 1 abort.
	Aborted bool
	// Triples is the number of triple labels classified.
	Triples int
	// Satisfied counts triples whose true |Δ(u,v;w)| lies inside the
	// Proposition 5 interval for their assigned class.
	Satisfied int
	// MaxClass is the largest class assigned.
	MaxClass int
}

// IdentifyClassTrial runs Algorithm IdentifyClass on g and verifies the
// Proposition 5 interval for every triple against the exact |Δ(u,v;w)|.
func IdentifyClassTrial(g *graph.Undirected, params Params, seed uint64) (*ClassAccuracy, error) {
	n := g.N()
	pt, err := NewPartitions(n)
	if err != nil {
		return nil, err
	}
	net, err := congest.NewNetwork(n)
	if err != nil {
		return nil, err
	}
	inst := &Instance{G: g}
	sc := NewScratch()
	pl, err := runPlacement(net, pt, inst.legs(), DataDirect, sc)
	if err != nil {
		return nil, err
	}
	cls, err := runIdentifyClass(net, pt, inst, pl, params, sc, xrand.New(seed))
	if err != nil {
		var ia *IdentifyAbortError
		if errors.As(err, &ia) {
			return &ClassAccuracy{Aborted: true}, nil
		}
		return nil, err
	}
	acc := &ClassAccuracy{MaxClass: cls.maxClass}
	q := pt.NumCoarse()
	s := pt.NumFine()
	for u := 0; u < q; u++ {
		for v := 0; v < q; v++ {
			for w := 0; w < s; w++ {
				alpha := cls.classOf[pt.TripleIndex(TripleLabel{U: u, V: v, W: w})]
				lo, hi := Proposition5Bounds(alpha, n, params)
				delta := float64(deltaSize(pt, inst, pl, u, v, w))
				acc.Triples++
				if delta >= lo && delta <= hi {
					acc.Satisfied++
				}
			}
		}
	}
	return acc, nil
}

// CongestionStats compares the Section 4.2 motivation scenario (every
// search instance queries the same element, x = (x, x, …, x)) against the
// Figure 4 load-balanced schedule.
type CongestionStats struct {
	// NaiveMaxLinkLoad is the per-link word load a naive simultaneous
	// query injection would place on the hottest link.
	NaiveMaxLinkLoad int64
	// BalancedMaxLinkLoad is the hottest per-link load of the Figure 4
	// schedule under a typical query assignment.
	BalancedMaxLinkLoad int64
	// SlotCap is the schedule's per-destination cap.
	SlotCap int
	// Instances is the total number of parallel searches.
	Instances int
}

// CongestionTrial measures both loads on the standard workload.
func CongestionTrial(g *graph.Undirected, params Params, seed uint64) (*CongestionStats, error) {
	n := g.N()
	pt, err := NewPartitions(n)
	if err != nil {
		return nil, err
	}
	net, err := congest.NewNetwork(n)
	if err != nil {
		return nil, err
	}
	rng := xrand.New(seed)
	inst := &Instance{G: g}
	sc := NewScratch()
	pl, err := runPlacement(net, pt, inst.legs(), DataDirect, sc)
	if err != nil {
		return nil, err
	}
	cls, err := runIdentifyClass(net, pt, inst, pl, params, sc, rng.Split("identify"))
	if err != nil {
		return nil, err
	}
	st, err := runCoverings(net, pt, inst, params, sc, rng.Split("cover"))
	if err != nil {
		return nil, err
	}
	b := newEvalBuilder(pt, pl, st, cls, params, 0, sc, rng.Split("eval"))
	if b.spaceSize == 0 {
		return nil, errors.New("triangles: class 0 empty; workload too sparse")
	}
	out := &CongestionStats{SlotCap: params.slotCap(n, 0), Instances: len(st.instances)}

	// Naive: every instance of a node queries the same w (the adversarial
	// x = (x,…,x) of Section 4.2); per (label, hottest w) the full m_k
	// entries land on one link at once.
	naive := make(map[[2]congest.NodeID]int64)
	for li, cov := range st.coverings {
		if len(cov.Pairs) == 0 {
			continue
		}
		label := pt.SearchFromIndex(li)
		g0 := b.classLists[b.groupOf(li)]
		if len(g0) == 0 {
			continue
		}
		w := g0[0]
		src := pt.SearchNode(label)
		dst := pt.TripleNode(TripleLabel{U: label.U, V: label.V, W: w})
		if src == dst {
			continue
		}
		k := [2]congest.NodeID{src, dst}
		naive[k] += int64(3 * len(cov.Pairs))
		if naive[k] > out.NaiveMaxLinkLoad {
			out.NaiveMaxLinkLoad = naive[k]
		}
	}

	// Balanced: execute the Figure 4 schedule and read the measured peak.
	if _, err := b.evalFunc()(net); err != nil {
		return nil, err
	}
	out.BalancedMaxLinkLoad = net.Snapshot().MaxLinkLoad
	return out, nil
}
