package triangles

import (
	"fmt"

	"qclique/internal/congest"
	"qclique/internal/graph"
)

// This file implements Step 1 of Algorithm ComputePairs (Figure 1): each
// triple-labeled node (u,v,w) loads the weights f(u,w) for all
// {u,w} ∈ P(u,w) and f(w,v) for all {w,v} ∈ P(w,v). The u-side legs are
// routed from their endpoint in u, the v-side legs from their endpoint in
// v; every node sources and sinks O(n^{5/4}) words, so Lemma-1 routing
// delivers the placement in O(n^{1/4}) rounds.

// DataMode selects how much of the protocol's data movement is physically
// materialized.
type DataMode int

const (
	// DataFull routes placement payloads through the simulator and stores
	// per-triple weight tables; truth queries are answered from the stored
	// copies. Used by correctness tests.
	DataFull DataMode = iota + 1
	// DataDirect charges the identical link loads but answers truth
	// queries from the input graph directly, trading fidelity of data flow
	// (not of cost accounting) for memory. Used by large-n scaling runs.
	DataDirect
)

// tripleData is the weight table held by one triple-labeled node after
// Step 1.
type tripleData struct {
	// Both tables are laid out with the fine index contiguous (legsWV is
	// stored b-major, the transpose of its wire order), so the min-leg scan
	// over c reads both legs sequentially.
	legsUW []int64 // row-major |Coarse[U]| × |Fine[W]|: f(a,c)
	legsWV []int64 // row-major |Coarse[V]| × |Fine[W]|: f(c,b)
}

// placement is the completed Step 1 state.
type placement struct {
	pt   *Partitions
	mode DataMode
	legs *graph.Undirected
	data []tripleData // indexed by TripleIndex; nil unless DataFull
}

const (
	sideUW congest.Word = 1
	sideWV congest.Word = 2
)

// runPlacement executes (or charges) Step 1 on the network. The weight
// tables, message headers and payload words all come from reusable storage
// (the scratch and the network's payload arena): Step 1 runs once per
// promise call, and its buffers were the largest single-phase allocations
// of the pipeline.
func runPlacement(net *congest.Network, pt *Partitions, legs *graph.Undirected, mode DataMode, sc *Scratch) (*placement, error) {
	pl := &placement{pt: pt, mode: mode, legs: legs}
	q := pt.NumCoarse()
	s := pt.NumFine()

	if mode == DataFull {
		// Carve every triple's weight tables out of one NoEdge-filled
		// arena, both retained on the scratch across promise calls.
		if cap(sc.plData) < pt.NumTriples() {
			sc.plData = make([]tripleData, pt.NumTriples())
		}
		pl.data = sc.plData[:pt.NumTriples()]
		totalCells := 0
		for ti := range pl.data {
			t := pt.TripleFromIndex(ti)
			totalCells += len(pt.Coarse[t.U])*len(pt.Fine[t.W]) + len(pt.Fine[t.W])*len(pt.Coarse[t.V])
		}
		if cap(sc.plCells) < totalCells {
			sc.plCells = make([]int64, totalCells)
		}
		cells := sc.plCells[:totalCells]
		for i := range cells {
			cells[i] = graph.NoEdge
		}
		for ti := range pl.data {
			t := pt.TripleFromIndex(ti)
			uw := len(pt.Coarse[t.U]) * len(pt.Fine[t.W])
			wv := len(pt.Fine[t.W]) * len(pt.Coarse[t.V])
			pl.data[ti] = tripleData{
				legsUW: cells[:uw:uw],
				legsWV: cells[uw : uw+wv : uw+wv],
			}
			cells = cells[uw+wv:]
		}
	}

	if mode != DataFull {
		// Charge-only fast path: the per-message word counts depend only on
		// the partition shapes (3 header words plus one weight per fine-block
		// vertex), so the link loads are charged without materializing any
		// payload slices. This path runs once per promise call on the
		// full-pipeline hot loop — and since the loads are shape-only, the
		// list is built once per n and cached on the scratch; only the
		// ChargeBalanced accounting runs per call.
		if sc.plLoadsN != pt.N() {
			loads := sc.plLoads[:0]
			for u := 0; u < q; u++ {
				for v := 0; v < q; v++ {
					for w := 0; w < s; w++ {
						t := TripleLabel{U: u, V: v, W: w}
						dst := pt.TripleNode(t)
						words := int64(3 + len(pt.Fine[w]))
						for _, a := range pt.Coarse[u] {
							if congest.NodeID(a) != dst {
								loads = append(loads, congest.Load{Src: congest.NodeID(a), Dst: dst, Words: words})
							}
						}
						for _, b := range pt.Coarse[v] {
							if congest.NodeID(b) != dst {
								loads = append(loads, congest.Load{Src: congest.NodeID(b), Dst: dst, Words: words})
							}
						}
					}
				}
			}
			sc.plLoads = loads
			sc.plLoadsN = pt.N()
		}
		if err := net.ChargeBalanced("computepairs/step1-placement", sc.plLoads); err != nil {
			return nil, fmt.Errorf("placement: %w", err)
		}
		return pl, nil
	}

	// Pre-size one word arena for every payload of the phase: the message
	// count and sizes depend only on the partition shapes, so a single
	// acquisition covers every slice. The words come from the network's
	// epoch-stamped payload arena (recycled with the inboxes); the message
	// headers are scratch-retained.
	totalMsgs, totalWords := 0, 0
	for u := 0; u < q; u++ {
		for v := 0; v < q; v++ {
			for w := 0; w < s; w++ {
				c := len(pt.Coarse[u]) + len(pt.Coarse[v])
				totalMsgs += c
				totalWords += c * (3 + len(pt.Fine[w]))
			}
		}
	}
	arena := net.AcquirePayload(totalWords)
	if cap(sc.plMsgs) < totalMsgs {
		sc.plMsgs = make([]congest.Message, 0, totalMsgs)
	}
	msgs := sc.plMsgs[:0]
	emit := func(src, dst congest.NodeID, data []congest.Word) {
		if src == dst {
			// Local hand-off: the sender hosts the triple label itself.
			pl.ingest(congest.Message{Src: src, Dst: dst, Data: data})
			return
		}
		msgs = append(msgs, congest.Message{Src: src, Dst: dst, Data: data})
	}

	for u := 0; u < q; u++ {
		for v := 0; v < q; v++ {
			for w := 0; w < s; w++ {
				t := TripleLabel{U: u, V: v, W: w}
				dst := pt.TripleNode(t)
				ti := congest.Word(pt.TripleIndex(t))
				// u-side legs: vertex a sends f(a, c) for all c in w. The
				// weights come straight off the dense row: absent edges and
				// the diagonal both store NoEdge, which is exactly what
				// weightOrNoEdge would return.
				for ai, a := range pt.Coarse[u] {
					start := len(arena)
					arena = append(arena, ti, sideUW, congest.Word(ai))
					rowA := legs.RowView(a)
					for _, c := range pt.Fine[w] {
						arena = append(arena, encodeWeight(rowA[c]))
					}
					emit(congest.NodeID(a), dst, arena[start:len(arena):len(arena)])
				}
				// v-side legs: vertex b sends f(c, b) for all c in w
				// (= rowB[c] by symmetry of the dense storage).
				for bi, b := range pt.Coarse[v] {
					start := len(arena)
					arena = append(arena, ti, sideWV, congest.Word(bi))
					rowB := legs.RowView(b)
					for _, c := range pt.Fine[w] {
						arena = append(arena, encodeWeight(rowB[c]))
					}
					emit(congest.NodeID(b), dst, arena[start:len(arena):len(arena)])
				}
			}
		}
	}

	sc.plMsgs = msgs[:0]
	inboxes, err := net.ExchangeBalanced("computepairs/step1-placement", msgs)
	if err != nil {
		return nil, fmt.Errorf("placement: %w", err)
	}
	for _, inbox := range inboxes {
		for _, m := range inbox {
			if err := pl.ingestChecked(m); err != nil {
				return nil, err
			}
		}
	}
	return pl, nil
}

// encodeWeight and decodeWeight pack extended weights into message words.
func encodeWeight(w int64) congest.Word { return congest.Word(uint64(w)) }
func decodeWeight(w congest.Word) int64 { return int64(uint64(w)) }

func (pl *placement) ingestChecked(m congest.Message) error {
	if len(m.Data) < 3 {
		return fmt.Errorf("placement: short message (%d words)", len(m.Data))
	}
	pl.ingest(m)
	return nil
}

func (pl *placement) ingest(m congest.Message) {
	ti := int(m.Data[0])
	side := m.Data[1]
	idx := int(m.Data[2])
	t := pl.pt.TripleFromIndex(ti)
	td := &pl.data[ti]
	weights := m.Data[3:]
	switch side {
	case sideUW:
		sW := len(pl.pt.Fine[t.W])
		for ci := 0; ci < len(weights) && ci < sW; ci++ {
			td.legsUW[idx*sW+ci] = decodeWeight(weights[ci])
		}
	case sideWV:
		sW := len(pl.pt.Fine[t.W])
		for ci := 0; ci < len(weights) && ci < sW; ci++ {
			td.legsWV[idx*sW+ci] = decodeWeight(weights[ci])
		}
	}
}

// minLegSum answers the triple node's local computation (Figures 4–5): the
// minimum of f(a,c)+f(c,b) over c in fine block w, where a lies in coarse
// block u and b in coarse block v. Returns graph.Inf when no c closes both
// legs.
func (pl *placement) minLegSum(u, v, w int, a, b int) int64 {
	if pl.mode == DataDirect {
		fine := pl.pt.Fine[w]
		if len(fine) == 0 {
			return graph.Inf
		}
		rowA := pl.legs.RowView(a)
		rowB := pl.legs.RowView(b)
		return minLegSumDirect(rowA, rowB, fine[0], len(fine))
	}
	t := TripleLabel{U: u, V: v, W: w}
	td := &pl.data[pl.pt.TripleIndex(t)]
	ai := indexInBlock(pl.pt.Coarse[u], a)
	bi := indexInBlock(pl.pt.Coarse[v], b)
	sW := len(pl.pt.Fine[w])
	// Both tables store the fine index contiguously, and the c==a / c==b
	// exclusions are subsumed by the NoEdge tests (a diagonal leg is loaded
	// as NoEdge), so the scan is two sequential reads like the DataDirect
	// path.
	return minLegScan(td.legsUW[ai*sW:(ai+1)*sW], td.legsWV[bi*sW:(bi+1)*sW])
}

// minLegSumDirect is the DataDirect leg scan over a contiguous fine block
// [c0, c0+sW). It exploits three invariants to turn the per-candidate
// Weight lookups of the old loop into two linear row reads: fine blocks
// from splitEven are contiguous ascending ranges, the graph is symmetric
// (f(c,b) = rowB[c]), and the diagonal is always NoEdge — so the c==a and
// c==b exclusions are subsumed by the NoEdge tests. rowA and rowB alias
// the graph (RowView); callers on the truth-table hot path hoist them once
// per pair.
func minLegSumDirect(rowA, rowB []int64, c0, sW int) int64 {
	return minLegScan(rowA[c0:c0+sW], rowB[c0:c0+sW])
}

// legSumBelow reports whether some c has legsA[c]+legsB[c] < bound — the
// threshold form of minLegScan, exiting on the first witnessing c. Every
// protocol-side query of the leg tables is of this form ("does some c close
// a triangle more negative than the pair weight"), so the full min is only
// computed by the reference tests; min < bound ⟺ ∃c with sum < bound makes
// the early exit exact.
func legSumBelow(legsA, legsB []int64, bound int64) bool {
	for ci, wa := range legsA {
		if wa == graph.NoEdge {
			continue
		}
		wb := legsB[ci]
		if wb == graph.NoEdge {
			continue
		}
		if graph.SaturatingAdd(wa, wb) < bound {
			return true
		}
	}
	return false
}

// legSumBelow is minLegSum(…) < bound with the early-exit scan.
func (pl *placement) legSumBelow(u, v, w int, a, b int, bound int64) bool {
	if pl.mode == DataDirect {
		fine := pl.pt.Fine[w]
		if len(fine) == 0 {
			return false
		}
		c0, sW := fine[0], len(fine)
		return legSumBelow(pl.legs.RowView(a)[c0:c0+sW], pl.legs.RowView(b)[c0:c0+sW], bound)
	}
	t := TripleLabel{U: u, V: v, W: w}
	td := &pl.data[pl.pt.TripleIndex(t)]
	ai := indexInBlock(pl.pt.Coarse[u], a)
	bi := indexInBlock(pl.pt.Coarse[v], b)
	sW := len(pl.pt.Fine[w])
	return legSumBelow(td.legsUW[ai*sW:(ai+1)*sW], td.legsWV[bi*sW:(bi+1)*sW], bound)
}

// minLegScan returns min over c of legsA[c]+legsB[c] skipping NoEdge legs —
// the shared inner loop of both placement modes, fed with contiguous slices
// covering one fine block.
func minLegScan(legsA, legsB []int64) int64 {
	best := graph.Inf
	for ci, wa := range legsA {
		if wa == graph.NoEdge {
			continue
		}
		wb := legsB[ci]
		if wb == graph.NoEdge {
			continue
		}
		if s := graph.SaturatingAdd(wa, wb); s < best {
			best = s
		}
	}
	return best
}

// indexInBlock locates v inside a contiguous block (blocks produced by
// splitEven are sorted ranges, so the offset is v - block[0]).
func indexInBlock(block []int, v int) int {
	return v - block[0]
}
