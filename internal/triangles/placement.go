package triangles

import (
	"fmt"

	"qclique/internal/congest"
	"qclique/internal/graph"
)

// This file implements Step 1 of Algorithm ComputePairs (Figure 1): each
// triple-labeled node (u,v,w) loads the weights f(u,w) for all
// {u,w} ∈ P(u,w) and f(w,v) for all {w,v} ∈ P(w,v). The u-side legs are
// routed from their endpoint in u, the v-side legs from their endpoint in
// v; every node sources and sinks O(n^{5/4}) words, so Lemma-1 routing
// delivers the placement in O(n^{1/4}) rounds.

// DataMode selects how much of the protocol's data movement is physically
// materialized.
type DataMode int

const (
	// DataFull routes placement payloads through the simulator and stores
	// per-triple weight tables; truth queries are answered from the stored
	// copies. Used by correctness tests.
	DataFull DataMode = iota + 1
	// DataDirect charges the identical link loads but answers truth
	// queries from the input graph directly, trading fidelity of data flow
	// (not of cost accounting) for memory. Used by large-n scaling runs.
	DataDirect
)

// tripleData is the weight table held by one triple-labeled node after
// Step 1.
type tripleData struct {
	legsUW []int64 // row-major |Coarse[U]| × |Fine[W]|: f(a,c)
	legsWV []int64 // row-major |Fine[W]| × |Coarse[V]|: f(c,b)
}

// placement is the completed Step 1 state.
type placement struct {
	pt   *Partitions
	mode DataMode
	legs *graph.Undirected
	data []tripleData // indexed by TripleIndex; nil unless DataFull
}

const (
	sideUW congest.Word = 1
	sideWV congest.Word = 2
)

// runPlacement executes (or charges) Step 1 on the network. The weight
// tables, message headers and payload words all come from reusable storage
// (the scratch and the network's payload arena): Step 1 runs once per
// promise call, and its buffers were the largest single-phase allocations
// of the pipeline.
func runPlacement(net *congest.Network, pt *Partitions, legs *graph.Undirected, mode DataMode, sc *Scratch) (*placement, error) {
	pl := &placement{pt: pt, mode: mode, legs: legs}
	q := pt.NumCoarse()
	s := pt.NumFine()

	if mode == DataFull {
		// Carve every triple's weight tables out of one NoEdge-filled
		// arena, both retained on the scratch across promise calls.
		if cap(sc.plData) < pt.NumTriples() {
			sc.plData = make([]tripleData, pt.NumTriples())
		}
		pl.data = sc.plData[:pt.NumTriples()]
		totalCells := 0
		for ti := range pl.data {
			t := pt.TripleFromIndex(ti)
			totalCells += len(pt.Coarse[t.U])*len(pt.Fine[t.W]) + len(pt.Fine[t.W])*len(pt.Coarse[t.V])
		}
		if cap(sc.plCells) < totalCells {
			sc.plCells = make([]int64, totalCells)
		}
		cells := sc.plCells[:totalCells]
		for i := range cells {
			cells[i] = graph.NoEdge
		}
		for ti := range pl.data {
			t := pt.TripleFromIndex(ti)
			uw := len(pt.Coarse[t.U]) * len(pt.Fine[t.W])
			wv := len(pt.Fine[t.W]) * len(pt.Coarse[t.V])
			pl.data[ti] = tripleData{
				legsUW: cells[:uw:uw],
				legsWV: cells[uw : uw+wv : uw+wv],
			}
			cells = cells[uw+wv:]
		}
	}

	if mode != DataFull {
		// Charge-only fast path: the per-message word counts depend only on
		// the partition shapes (3 header words plus one weight per fine-block
		// vertex), so the link loads are charged without materializing any
		// payload slices. This path runs once per promise call on the
		// full-pipeline hot loop.
		loadsBuf := getLoadBuf(pt.NumTriples() * 2 * ((pt.N()+q-1)/q + 1))
		defer putLoadBuf(loadsBuf)
		loads := *loadsBuf
		for u := 0; u < q; u++ {
			for v := 0; v < q; v++ {
				for w := 0; w < s; w++ {
					t := TripleLabel{U: u, V: v, W: w}
					dst := pt.TripleNode(t)
					words := int64(3 + len(pt.Fine[w]))
					for _, a := range pt.Coarse[u] {
						if congest.NodeID(a) != dst {
							loads = append(loads, congest.Load{Src: congest.NodeID(a), Dst: dst, Words: words})
						}
					}
					for _, b := range pt.Coarse[v] {
						if congest.NodeID(b) != dst {
							loads = append(loads, congest.Load{Src: congest.NodeID(b), Dst: dst, Words: words})
						}
					}
				}
			}
		}
		*loadsBuf = loads
		if err := net.ChargeBalanced("computepairs/step1-placement", loads); err != nil {
			return nil, fmt.Errorf("placement: %w", err)
		}
		return pl, nil
	}

	// Pre-size one word arena for every payload of the phase: the message
	// count and sizes depend only on the partition shapes, so a single
	// acquisition covers every slice. The words come from the network's
	// epoch-stamped payload arena (recycled with the inboxes); the message
	// headers are scratch-retained.
	totalMsgs, totalWords := 0, 0
	for u := 0; u < q; u++ {
		for v := 0; v < q; v++ {
			for w := 0; w < s; w++ {
				c := len(pt.Coarse[u]) + len(pt.Coarse[v])
				totalMsgs += c
				totalWords += c * (3 + len(pt.Fine[w]))
			}
		}
	}
	arena := net.AcquirePayload(totalWords)
	if cap(sc.plMsgs) < totalMsgs {
		sc.plMsgs = make([]congest.Message, 0, totalMsgs)
	}
	msgs := sc.plMsgs[:0]
	emit := func(src, dst congest.NodeID, data []congest.Word) {
		if src == dst {
			// Local hand-off: the sender hosts the triple label itself.
			pl.ingest(congest.Message{Src: src, Dst: dst, Data: data})
			return
		}
		msgs = append(msgs, congest.Message{Src: src, Dst: dst, Data: data})
	}

	for u := 0; u < q; u++ {
		for v := 0; v < q; v++ {
			for w := 0; w < s; w++ {
				t := TripleLabel{U: u, V: v, W: w}
				dst := pt.TripleNode(t)
				ti := congest.Word(pt.TripleIndex(t))
				// u-side legs: vertex a sends f(a, c) for all c in w.
				for ai, a := range pt.Coarse[u] {
					start := len(arena)
					arena = append(arena, ti, sideUW, congest.Word(ai))
					for _, c := range pt.Fine[w] {
						arena = append(arena, encodeWeight(weightOrNoEdge(legs, a, c)))
					}
					emit(congest.NodeID(a), dst, arena[start:len(arena):len(arena)])
				}
				// v-side legs: vertex b sends f(c, b) for all c in w.
				for bi, b := range pt.Coarse[v] {
					start := len(arena)
					arena = append(arena, ti, sideWV, congest.Word(bi))
					for _, c := range pt.Fine[w] {
						arena = append(arena, encodeWeight(weightOrNoEdge(legs, c, b)))
					}
					emit(congest.NodeID(b), dst, arena[start:len(arena):len(arena)])
				}
			}
		}
	}

	sc.plMsgs = msgs[:0]
	inboxes, err := net.ExchangeBalanced("computepairs/step1-placement", msgs)
	if err != nil {
		return nil, fmt.Errorf("placement: %w", err)
	}
	for _, inbox := range inboxes {
		for _, m := range inbox {
			if err := pl.ingestChecked(m); err != nil {
				return nil, err
			}
		}
	}
	return pl, nil
}

func weightOrNoEdge(g *graph.Undirected, a, b int) int64 {
	if w, ok := g.Weight(a, b); ok {
		return w
	}
	return graph.NoEdge
}

// encodeWeight and decodeWeight pack extended weights into message words.
func encodeWeight(w int64) congest.Word { return congest.Word(uint64(w)) }
func decodeWeight(w congest.Word) int64 { return int64(uint64(w)) }

func (pl *placement) ingestChecked(m congest.Message) error {
	if len(m.Data) < 3 {
		return fmt.Errorf("placement: short message (%d words)", len(m.Data))
	}
	pl.ingest(m)
	return nil
}

func (pl *placement) ingest(m congest.Message) {
	ti := int(m.Data[0])
	side := m.Data[1]
	idx := int(m.Data[2])
	t := pl.pt.TripleFromIndex(ti)
	td := &pl.data[ti]
	weights := m.Data[3:]
	switch side {
	case sideUW:
		sW := len(pl.pt.Fine[t.W])
		for ci := 0; ci < len(weights) && ci < sW; ci++ {
			td.legsUW[idx*sW+ci] = decodeWeight(weights[ci])
		}
	case sideWV:
		qV := len(pl.pt.Coarse[t.V])
		for ci := 0; ci < len(weights); ci++ {
			td.legsWV[ci*qV+idx] = decodeWeight(weights[ci])
		}
	}
}

// minLegSum answers the triple node's local computation (Figures 4–5): the
// minimum of f(a,c)+f(c,b) over c in fine block w, where a lies in coarse
// block u and b in coarse block v. Returns graph.Inf when no c closes both
// legs.
func (pl *placement) minLegSum(u, v, w int, a, b int) int64 {
	if pl.mode == DataDirect {
		best := graph.Inf
		for _, c := range pl.pt.Fine[w] {
			if c == a || c == b {
				continue
			}
			wa, ok := pl.legs.Weight(a, c)
			if !ok {
				continue
			}
			wb, ok := pl.legs.Weight(c, b)
			if !ok {
				continue
			}
			if s := graph.SaturatingAdd(wa, wb); s < best {
				best = s
			}
		}
		return best
	}
	t := TripleLabel{U: u, V: v, W: w}
	td := &pl.data[pl.pt.TripleIndex(t)]
	ai := indexInBlock(pl.pt.Coarse[u], a)
	bi := indexInBlock(pl.pt.Coarse[v], b)
	sW := len(pl.pt.Fine[w])
	qV := len(pl.pt.Coarse[v])
	best := graph.Inf
	for ci := 0; ci < sW; ci++ {
		c := pl.pt.Fine[w][ci]
		if c == a || c == b {
			continue
		}
		wa := td.legsUW[ai*sW+ci]
		if wa == graph.NoEdge {
			continue
		}
		wb := td.legsWV[ci*qV+bi]
		if wb == graph.NoEdge {
			continue
		}
		if s := graph.SaturatingAdd(wa, wb); s < best {
			best = s
		}
	}
	return best
}

// indexInBlock locates v inside a contiguous block (blocks produced by
// splitEven are sorted ranges, so the offset is v - block[0]).
func indexInBlock(block []int, v int) int {
	return v - block[0]
}
