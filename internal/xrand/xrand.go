// Package xrand provides deterministic, splittable pseudo-random number
// generation for the simulator.
//
// Every protocol run in this repository is replayable from a single root
// seed. Sub-streams are derived by hashing a label and an index into the
// root seed (SplitMix64 finalization), so independent protocol phases and
// independent nodes draw from statistically independent streams without
// sharing mutable state. This is what makes the CONGEST-CLIQUE simulator
// deterministic even when node handlers run concurrently.
package xrand

import (
	"math"
	"math/bits"
	"math/rand/v2"
)

// splitmix64 is the SplitMix64 finalizer. It is a strong 64-bit mixing
// function used to derive independent stream seeds from (seed, label, index)
// triples.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashLabel folds a string label into a 64-bit value with FNV-1a and then
// strengthens it with SplitMix64.
func hashLabel(label string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime
	}
	return splitmix64(h)
}

// Source is a deterministic random stream. It wraps math/rand/v2's PCG
// generator seeded from a derived seed.
type Source struct {
	seed uint64
	pcg  *rand.PCG
	rng  *rand.Rand
}

// New returns a Source rooted at seed.
func New(seed uint64) *Source {
	pcg := rand.NewPCG(splitmix64(seed), splitmix64(seed^0xa5a5a5a5a5a5a5a5))
	return &Source{
		seed: seed,
		pcg:  pcg,
		rng:  rand.New(pcg),
	}
}

// Reseed re-initializes the source in place to the stream New(seed) would
// produce, reusing the generator's allocations. It is the scratch-source
// primitive behind the allocation-free split variants below.
func (s *Source) Reseed(seed uint64) {
	s.seed = seed
	s.pcg.Seed(splitmix64(seed), splitmix64(seed^0xa5a5a5a5a5a5a5a5))
}

// Seed reports the seed this source was derived from.
func (s *Source) Seed() uint64 { return s.seed }

// Split derives an independent child stream identified by a label. Splitting
// does not advance the parent stream, so the derivation is order-independent:
// Split("a") yields the same stream whether or not Split("b") was called
// first.
func (s *Source) Split(label string) *Source {
	return New(splitmix64(s.seed ^ hashLabel(label)))
}

// SplitN derives an independent child stream identified by a label and an
// index (for example, one stream per node).
func (s *Source) SplitN(label string, n int) *Source {
	return New(splitNSeed(s.seed, label, n))
}

// SplitNInto reseeds scratch to the exact stream SplitN(label, n) would
// return, without allocating, and returns scratch. Hot loops that derive
// one stream per (instance, round) probe use this with a per-worker
// scratch source.
func (s *Source) SplitNInto(scratch *Source, label string, n int) *Source {
	scratch.Reseed(splitNSeed(s.seed, label, n))
	return scratch
}

func splitNSeed(seed uint64, label string, n int) uint64 {
	return splitmix64(seed^hashLabel(label)) + splitmix64(uint64(n)+0x1234_5678_9abc_def0)
}

// Splitter precomputes the label-dependent half of the SplitN derivation.
// Hot loops that split one stream per index under a fixed label (the probe
// and covering loops) pay the label hash once instead of per split; the
// derived streams are bit-identical to SplitNInto's.
type Splitter struct{ base uint64 }

// SplitterFor returns a Splitter bound to this source's seed and label:
// sp.Into(scratch, n) ≡ s.SplitNInto(scratch, label, n).
func (s *Source) SplitterFor(label string) Splitter {
	return Splitter{base: splitmix64(s.seed ^ hashLabel(label))}
}

// Into reseeds scratch to the indexed child stream and returns scratch.
func (sp Splitter) Into(scratch *Source, n int) *Source {
	scratch.Reseed(sp.base + splitmix64(uint64(n)+0x1234_5678_9abc_def0))
	return scratch
}

// The draw methods below operate on the PCG generator directly instead of
// going through the *rand.Rand wrapper: every draw otherwise pays an
// interface dispatch (Rand.Uint64 → Source interface → PCG), and the
// protocol layers draw hundreds of millions of times per large solve. The
// arithmetic replicates math/rand/v2 exactly — same generator state, same
// rejection algorithm, same float conversion — so the streams are
// bit-identical to the wrapper's (pinned by TestFastPathsMatchRandV2);
// determinism across the whole simulator depends on that equivalence.

// Uint64 returns a uniformly random 64-bit value.
func (s *Source) Uint64() uint64 { return s.pcg.Uint64() }

// uint64n returns a uniform value in [0, n), replicating math/rand/v2's
// Lemire rejection sampling bit for bit (the 32-bit-platform variant
// upstream is documented to produce this exact sequence too, so one
// implementation covers every platform).
func (s *Source) uint64n(n uint64) uint64 {
	if n&(n-1) == 0 { // power of two: mask
		return s.pcg.Uint64() & (n - 1)
	}
	hi, lo := bits.Mul64(s.pcg.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(s.pcg.Uint64(), n)
		}
	}
	return hi
}

// IntN returns a uniform value in [0, n). It panics if n <= 0, matching
// math/rand/v2 semantics.
func (s *Source) IntN(n int) int {
	if n <= 0 {
		panic("invalid argument to IntN")
	}
	return int(s.uint64n(uint64(n)))
}

// Int64N returns a uniform value in [0, n).
func (s *Source) Int64N(n int64) int64 {
	if n <= 0 {
		panic("invalid argument to Int64N")
	}
	return int64(s.uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1). Scaling by 0x1p-53 instead of
// dividing by 1<<53 is exact — both only adjust the exponent — so the
// stream stays bit-identical to math/rand/v2's Float64 while avoiding the
// FP division.
func (s *Source) Float64() float64 {
	return float64(s.pcg.Uint64()<<11>>11) * 0x1p-53
}

// Bool returns true with probability p. Values of p outside [0, 1] clip.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return float64(s.pcg.Uint64()<<11>>11)*0x1p-53 < p
}

// BoolSampler precomputes Bool(p)'s acceptance test for a fixed p, turning
// the per-draw float conversion, scale and compare into one integer
// comparison against the draw's low 53 bits. The equivalence is exact:
// float64(u53)·0x1p-53 is the real number u53/2^53 (53-bit integer scaled
// by a power of two), so "x < p" holds iff u53 < p·2^53 iff
// u53 < ceil(p·2^53), and p·2^53 and its ceil are both computed exactly.
// Clipped probabilities keep Bool's no-draw behavior.
type BoolSampler struct {
	thresh uint64 // acceptance bound for the draw's low 53 bits
	clip   int8   // -1: always false, +1: always true (no draw either way)
}

// NewBoolSampler returns the sampler for probability p:
// sampler.Draw(s) ≡ s.Bool(p) draw for draw.
func NewBoolSampler(p float64) BoolSampler {
	if p <= 0 {
		return BoolSampler{clip: -1}
	}
	if p >= 1 {
		return BoolSampler{clip: 1}
	}
	return BoolSampler{thresh: uint64(math.Ceil(p * 0x1p53))}
}

// Draw returns true with the sampler's probability, advancing s exactly as
// s.Bool(p) would.
func (b BoolSampler) Draw(s *Source) bool {
	if b.clip != 0 {
		return b.clip > 0
	}
	return s.pcg.Uint64()&(1<<53-1) < b.thresh
}

// IntRange returns a uniform value in [lo, hi] inclusive. It panics if
// lo > hi.
func (s *Source) IntRange(lo, hi int) int {
	if lo > hi {
		panic("xrand: IntRange with lo > hi")
	}
	return lo + s.IntN(hi-lo+1)
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using the provided swap
// function.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }
