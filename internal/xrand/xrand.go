// Package xrand provides deterministic, splittable pseudo-random number
// generation for the simulator.
//
// Every protocol run in this repository is replayable from a single root
// seed. Sub-streams are derived by hashing a label and an index into the
// root seed (SplitMix64 finalization), so independent protocol phases and
// independent nodes draw from statistically independent streams without
// sharing mutable state. This is what makes the CONGEST-CLIQUE simulator
// deterministic even when node handlers run concurrently.
package xrand

import "math/rand/v2"

// splitmix64 is the SplitMix64 finalizer. It is a strong 64-bit mixing
// function used to derive independent stream seeds from (seed, label, index)
// triples.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashLabel folds a string label into a 64-bit value with FNV-1a and then
// strengthens it with SplitMix64.
func hashLabel(label string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime
	}
	return splitmix64(h)
}

// Source is a deterministic random stream. It wraps math/rand/v2's PCG
// generator seeded from a derived seed.
type Source struct {
	seed uint64
	pcg  *rand.PCG
	rng  *rand.Rand
}

// New returns a Source rooted at seed.
func New(seed uint64) *Source {
	pcg := rand.NewPCG(splitmix64(seed), splitmix64(seed^0xa5a5a5a5a5a5a5a5))
	return &Source{
		seed: seed,
		pcg:  pcg,
		rng:  rand.New(pcg),
	}
}

// Reseed re-initializes the source in place to the stream New(seed) would
// produce, reusing the generator's allocations. It is the scratch-source
// primitive behind the allocation-free split variants below.
func (s *Source) Reseed(seed uint64) {
	s.seed = seed
	s.pcg.Seed(splitmix64(seed), splitmix64(seed^0xa5a5a5a5a5a5a5a5))
}

// Seed reports the seed this source was derived from.
func (s *Source) Seed() uint64 { return s.seed }

// Split derives an independent child stream identified by a label. Splitting
// does not advance the parent stream, so the derivation is order-independent:
// Split("a") yields the same stream whether or not Split("b") was called
// first.
func (s *Source) Split(label string) *Source {
	return New(splitmix64(s.seed ^ hashLabel(label)))
}

// SplitN derives an independent child stream identified by a label and an
// index (for example, one stream per node).
func (s *Source) SplitN(label string, n int) *Source {
	return New(splitNSeed(s.seed, label, n))
}

// SplitNInto reseeds scratch to the exact stream SplitN(label, n) would
// return, without allocating, and returns scratch. Hot loops that derive
// one stream per (instance, round) probe use this with a per-worker
// scratch source.
func (s *Source) SplitNInto(scratch *Source, label string, n int) *Source {
	scratch.Reseed(splitNSeed(s.seed, label, n))
	return scratch
}

func splitNSeed(seed uint64, label string, n int) uint64 {
	return splitmix64(seed^hashLabel(label)) + splitmix64(uint64(n)+0x1234_5678_9abc_def0)
}

// Uint64 returns a uniformly random 64-bit value.
func (s *Source) Uint64() uint64 { return s.rng.Uint64() }

// IntN returns a uniform value in [0, n). It panics if n <= 0, matching
// math/rand/v2 semantics.
func (s *Source) IntN(n int) int { return s.rng.IntN(n) }

// Int64N returns a uniform value in [0, n).
func (s *Source) Int64N(n int64) int64 { return s.rng.Int64N(n) }

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Bool returns true with probability p. Values of p outside [0, 1] clip.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.rng.Float64() < p
}

// IntRange returns a uniform value in [lo, hi] inclusive. It panics if
// lo > hi.
func (s *Source) IntRange(lo, hi int) int {
	if lo > hi {
		panic("xrand: IntRange with lo > hi")
	}
	return lo + s.rng.IntN(hi-lo+1)
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using the provided swap
// function.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }
