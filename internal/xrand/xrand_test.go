package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(1234)
	b := New(1234)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must yield identical streams")
		}
	}
	if New(1).Uint64() == New(2).Uint64() {
		t.Error("different seeds should diverge immediately (overwhelmingly likely)")
	}
}

func TestSplitIndependenceOfOrder(t *testing.T) {
	r1 := New(99)
	r2 := New(99)
	// Draw from r1's "a" child after creating "b" first; order must not matter.
	_ = r1.Split("b")
	a1 := r1.Split("a")
	a2 := r2.Split("a")
	for i := 0; i < 50; i++ {
		if a1.Uint64() != a2.Uint64() {
			t.Fatal("Split must be order-independent")
		}
	}
	if r1.Split("a").Seed() == r1.Split("b").Seed() {
		t.Error("distinct labels must yield distinct streams")
	}
}

func TestSplitNDistinct(t *testing.T) {
	r := New(7)
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		s := r.SplitN("node", i)
		if seen[s.Seed()] {
			t.Fatalf("SplitN collision at %d", i)
		}
		seen[s.Seed()] = true
	}
}

func TestIntNBounds(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		v := r.IntN(7)
		if v < 0 || v >= 7 {
			t.Fatalf("IntN out of range: %d", v)
		}
	}
	for i := 0; i < 1000; i++ {
		v := r.IntRange(-3, 3)
		if v < -3 || v > 3 {
			t.Fatalf("IntRange out of range: %d", v)
		}
	}
}

func TestIntRangePanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("IntRange(5,4) should panic")
		}
	}()
	New(1).IntRange(5, 4)
}

func TestBoolProbability(t *testing.T) {
	r := New(17)
	if r.Bool(0) {
		t.Error("Bool(0) must be false")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) must be true")
	}
	if r.Bool(-0.5) || !r.Bool(1.5) {
		t.Error("out-of-range probabilities must clip")
	}
	const trials = 20000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / trials
	if math.Abs(p-0.3) > 0.02 {
		t.Errorf("Bool(0.3) empirical rate %f", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(23)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
	}
}

func TestShuffle(t *testing.T) {
	r := New(31)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, v := range xs {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("element %d lost in shuffle", i)
		}
	}
}

// TestFastPathsMatchRandV2 pins the direct-PCG draw methods to the
// math/rand/v2 wrapper they replaced: the whole simulator's determinism
// (round counts, covering samples, Grover measurements) rides on the two
// producing bit-identical streams. Draws are interleaved across every
// method so state advancement is compared too, and the IntN bounds include
// powers of two (mask path), small odd values (rejection path) and values
// near 2^63 (high rejection probability).
func TestFastPathsMatchRandV2(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 0xdeadbeef} {
		fast := New(seed)
		ref := New(seed)
		refRand := ref.rng // the wrapper around the same PCG state
		bounds := []int{1, 2, 3, 7, 8, 11, 100, 1 << 20, (1 << 62) + 12345}
		for i := 0; i < 5000; i++ {
			switch i % 5 {
			case 0:
				if g, w := fast.Uint64(), refRand.Uint64(); g != w {
					t.Fatalf("seed %d draw %d: Uint64 %d != rand/v2 %d", seed, i, g, w)
				}
			case 1:
				n := bounds[i%len(bounds)]
				if g, w := fast.IntN(n), refRand.IntN(n); g != w {
					t.Fatalf("seed %d draw %d: IntN(%d) %d != rand/v2 %d", seed, i, n, g, w)
				}
			case 2:
				if g, w := fast.Float64(), refRand.Float64(); g != w {
					t.Fatalf("seed %d draw %d: Float64 %g != rand/v2 %g", seed, i, g, w)
				}
			case 3:
				n := int64(bounds[(i+3)%len(bounds)])
				if g, w := fast.Int64N(n), refRand.Int64N(n); g != w {
					t.Fatalf("seed %d draw %d: Int64N(%d) %d != rand/v2 %d", seed, i, n, g, w)
				}
			case 4:
				p := float64(1+i%99) / 100 // strictly inside (0,1) so both sides draw
				if g, w := fast.Bool(p), refRand.Float64() < p; g != w {
					t.Fatalf("seed %d draw %d: Bool(%g) %v != rand/v2 %v", seed, i, p, g, w)
				}
			}
		}
	}
}

// TestBoolClipDrawsNothing pins that clipped probabilities skip the draw —
// Bool(0)/Bool(1) must not advance the stream (the wrapper-based
// implementation behaved this way, and replay depends on it).
func TestBoolClipDrawsNothing(t *testing.T) {
	a, b := New(9), New(9)
	a.Bool(0)
	a.Bool(1)
	a.Bool(-0.5)
	a.Bool(2)
	if a.Uint64() != b.Uint64() {
		t.Fatal("clipped Bool must not advance the stream")
	}
}

// TestSplitterMatchesSplitNInto pins that the precomputed Splitter derives
// bit-identical streams to SplitNInto for the same label and index — the
// hot paths swap one for the other per index, so the equivalence is a
// replay-compatibility contract.
func TestSplitterMatchesSplitNInto(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 0xdeadbeef} {
		src := New(seed)
		for _, label := range []string{"probe", "covering", "identify-sample", ""} {
			sp := src.SplitterFor(label)
			a, b := New(0), New(0)
			for _, n := range []int{0, 1, 2, 7, 1000, 1 << 20} {
				ga := sp.Into(a, n)
				gb := src.SplitNInto(b, label, n)
				for i := 0; i < 8; i++ {
					if x, y := ga.Uint64(), gb.Uint64(); x != y {
						t.Fatalf("seed %d label %q n %d draw %d: Splitter %d != SplitNInto %d", seed, label, n, i, x, y)
					}
				}
			}
		}
	}
}

// TestBoolSamplerMatchesBool pins that BoolSampler.Draw is draw-for-draw
// identical to Bool — same outcomes and same stream advancement, including
// the no-draw clip behavior.
func TestBoolSamplerMatchesBool(t *testing.T) {
	ps := []float64{-1, 0, 1e-17, 0.01, 0.25, 0.5, 1 - 1e-9, 1 - 0x1p-60, 1, 2}
	a, b := New(7), New(7)
	for i := 0; i < 5000; i++ {
		p := ps[i%len(ps)]
		sampler := NewBoolSampler(p)
		if g, w := sampler.Draw(a), b.Bool(p); g != w {
			t.Fatalf("draw %d p=%g: sampler %v != Bool %v", i, p, g, w)
		}
	}
	if a.Uint64() != b.Uint64() {
		t.Fatal("sampler and Bool advanced their streams differently")
	}
}
