package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(1234)
	b := New(1234)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must yield identical streams")
		}
	}
	if New(1).Uint64() == New(2).Uint64() {
		t.Error("different seeds should diverge immediately (overwhelmingly likely)")
	}
}

func TestSplitIndependenceOfOrder(t *testing.T) {
	r1 := New(99)
	r2 := New(99)
	// Draw from r1's "a" child after creating "b" first; order must not matter.
	_ = r1.Split("b")
	a1 := r1.Split("a")
	a2 := r2.Split("a")
	for i := 0; i < 50; i++ {
		if a1.Uint64() != a2.Uint64() {
			t.Fatal("Split must be order-independent")
		}
	}
	if r1.Split("a").Seed() == r1.Split("b").Seed() {
		t.Error("distinct labels must yield distinct streams")
	}
}

func TestSplitNDistinct(t *testing.T) {
	r := New(7)
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		s := r.SplitN("node", i)
		if seen[s.Seed()] {
			t.Fatalf("SplitN collision at %d", i)
		}
		seen[s.Seed()] = true
	}
}

func TestIntNBounds(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		v := r.IntN(7)
		if v < 0 || v >= 7 {
			t.Fatalf("IntN out of range: %d", v)
		}
	}
	for i := 0; i < 1000; i++ {
		v := r.IntRange(-3, 3)
		if v < -3 || v > 3 {
			t.Fatalf("IntRange out of range: %d", v)
		}
	}
}

func TestIntRangePanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("IntRange(5,4) should panic")
		}
	}()
	New(1).IntRange(5, 4)
}

func TestBoolProbability(t *testing.T) {
	r := New(17)
	if r.Bool(0) {
		t.Error("Bool(0) must be false")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) must be true")
	}
	if r.Bool(-0.5) || !r.Bool(1.5) {
		t.Error("out-of-range probabilities must clip")
	}
	const trials = 20000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / trials
	if math.Abs(p-0.3) > 0.02 {
		t.Errorf("Bool(0.3) empirical rate %f", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(23)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
	}
}

func TestShuffle(t *testing.T) {
	r := New(31)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, v := range xs {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("element %d lost in shuffle", i)
		}
	}
}
