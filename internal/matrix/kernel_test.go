package matrix

import (
	"testing"

	"qclique/internal/graph"
	"qclique/internal/xrand"
)

// mulMinPlusReference is the unblocked i-k-j product the kernels replaced,
// kept here as the property-test oracle: one row at a time, saturating
// arithmetic, ∞-row skip.
func mulMinPlusReference(dst, a, b *Matrix) {
	n := a.n
	for i := 0; i < n; i++ {
		rowC := dst.a[i*n : (i+1)*n]
		for j := range rowC {
			rowC[j] = graph.Inf
		}
		for k := 0; k < n; k++ {
			aik := a.a[i*n+k]
			if aik >= graph.Inf {
				continue
			}
			rowB := b.a[k*n : (k+1)*n]
			for j := 0; j < n; j++ {
				if s := graph.SaturatingAdd(aik, rowB[j]); s < rowC[j] {
					rowC[j] = s
				}
			}
		}
	}
}

// randomKernelMatrix fills an n×n matrix with entries drawn from
// [-maxW, maxW], an infDensity fraction of +∞, and (when negInf is set) a
// sprinkle of −∞ entries.
func randomKernelMatrix(rng *xrand.Source, n int, maxW int64, infDensity float64, negInf bool) *Matrix {
	m := New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch {
			case rng.Bool(infDensity):
				// leave +∞
			case negInf && rng.Bool(0.05):
				m.Set(i, j, graph.NegInf)
			default:
				m.Set(i, j, rng.Int64N(2*maxW+1)-maxW)
			}
		}
	}
	return m
}

// TestBlockedEquivalentToReference is the kernel property test: for every
// n in 1..65 (crossing each tile and row-block boundary), random seeds, a
// spread of ∞ densities, negative weights, and weight magnitudes that force
// the int32 path on some instances and the int64 path (−∞ entries or huge
// weights) on others, MulMinPlusInto must equal the unblocked reference bit
// for bit, at several worker counts.
func TestBlockedEquivalentToReference(t *testing.T) {
	cases := []struct {
		maxW       int64
		infDensity float64
		negInf     bool
	}{
		{maxW: 50, infDensity: 0.2, negInf: false},             // int32 path
		{maxW: 1000, infDensity: 0.7, negInf: false},           // int32, mostly ∞
		{maxW: 3, infDensity: 0.0, negInf: false},              // int32, dense
		{maxW: 50, infDensity: 0.2, negInf: true},              // −∞ forces int64
		{maxW: int64(1) << 40, infDensity: 0.3, negInf: false}, // magnitude forces int64
	}
	for n := 1; n <= 65; n++ {
		for ci, tc := range cases {
			rng := xrand.New(uint64(n*100 + ci))
			a := randomKernelMatrix(rng, n, tc.maxW, tc.infDensity, tc.negInf)
			b := randomKernelMatrix(rng, n, tc.maxW, tc.infDensity, tc.negInf)
			want := New(n)
			mulMinPlusReference(want, a, b)
			for _, workers := range []int{1, 2, 5} {
				got := New(n)
				if err := MulMinPlusInto(got, a, b, workers); err != nil {
					t.Fatalf("n=%d case=%d workers=%d: %v", n, ci, workers, err)
				}
				if !got.Equal(want) {
					t.Fatalf("n=%d case=%d workers=%d: blocked product diverges from reference\ngot:\n%swant:\n%s",
						n, ci, workers, got, want)
				}
			}
			// Squaring (a==b) shares one compacted buffer; cover that too.
			mulMinPlusReference(want, a, a)
			got := New(n)
			if err := MulMinPlusInto(got, a, a, 1); err != nil {
				t.Fatalf("n=%d case=%d squaring: %v", n, ci, err)
			}
			if !got.Equal(want) {
				t.Fatalf("n=%d case=%d: blocked squaring diverges from reference", n, ci)
			}
		}
	}
}

// TestKernelPathSelection pins which inputs reach the compacted kernel.
func TestKernelPathSelection(t *testing.T) {
	rng := xrand.New(7)
	small := randomKernelMatrix(rng, 16, 100, 0.3, false)
	if _, ok := mulMinPlusSelect32(small, small); !ok {
		t.Error("small weights must select the int32 kernel")
	}
	withNegInf := small.Clone()
	withNegInf.Set(3, 4, graph.NegInf)
	if _, ok := mulMinPlusSelect32(withNegInf, small); ok {
		t.Error("a −∞ entry must force the int64 kernel")
	}
	if _, ok := mulMinPlusSelect32(small, withNegInf); ok {
		t.Error("a −∞ entry in B must force the int64 kernel")
	}
	huge := small.Clone()
	huge.Set(0, 1, int64(1)<<40)
	if _, ok := mulMinPlusSelect32(huge, small); ok {
		t.Error("weights beyond int32 headroom must force the int64 kernel")
	}
	// Boundary: the selection inequality is inf32 > 2·maxA + maxB.
	lim := New(4)
	lim.Set(0, 1, (int64(inf32)-1)/3)
	if _, ok := mulMinPlusSelect32(lim, lim); !ok {
		t.Error("weights just inside the headroom bound must select int32")
	}
	over := New(4)
	over.Set(0, 1, int64(inf32)/3+1)
	if _, ok := mulMinPlusSelect32(over, over); ok {
		t.Error("weights just beyond the headroom bound must not select int32")
	}
}

// TestCompactRoundTripExtremes exercises the decompaction boundary: sums
// exactly at the finite bound M stay finite, and ∞-leg sums (which land
// above M but below inf32) restore to +∞.
func TestCompactRoundTripExtremes(t *testing.T) {
	const w = 1 << 20
	n := 3
	a := New(n)
	b := New(n)
	// a[0,1] = w, b[1,2] = w → c[0,2] = 2w = M exactly.
	a.Set(0, 1, w)
	b.Set(1, 2, w)
	// a[1,0] = -w: every leg of row 1 crosses a +∞ entry, so c[1,2] must
	// come out +∞ even though the compacted sum -w + inf32 is below inf32.
	a.Set(1, 0, -w)
	maxSum, ok := mulMinPlusSelect32(a, b)
	if !ok || maxSum != 2*w {
		t.Fatalf("selection: ok=%v maxSum=%d, want true, %d", ok, maxSum, 2*w)
	}
	got := New(n)
	if err := MulMinPlusInto(got, a, b, 1); err != nil {
		t.Fatal(err)
	}
	want := New(n)
	mulMinPlusReference(want, a, b)
	if !got.Equal(want) {
		t.Fatalf("extremes diverge\ngot:\n%swant:\n%s", got, want)
	}
	if got.At(0, 2) != 2*w {
		t.Errorf("sum at the bound M: got %d want %d", got.At(0, 2), 2*w)
	}
	if got.At(1, 2) != graph.Inf {
		t.Errorf("∞-leg sum must decompact to +∞, got %d", got.At(1, 2))
	}
}
