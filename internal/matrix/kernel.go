package matrix

import (
	"sync"

	"qclique/internal/graph"
	"qclique/internal/par"
)

// Blocked min-plus kernels. The naive i-k-j product streams all of B from
// memory once per output row (n³ words of B traffic); the kernels here tile
// the k and j loops and process rows in blocks, so a tileK×tileJ panel of B
// is loaded once and reused across every row of the block. Tiles are sized
// so an int64 B panel (tileK·tileJ·8 B = 32 KB) fits a typical L1 data
// cache, with the int32 panel at half that. Row blocks are also the unit of
// parallel work: each block is claimed whole by one pool executor, so
// output cache lines are written by a single worker (no false sharing).
//
// Reordering the k loop into tiles is exact, not approximate: min over
// integers is associative and commutative, and each (i,k,j) term has the
// same value in any order, so the blocked results are bit-identical to the
// reference product for every tile size and worker count.
const (
	rowBlock = 32
	tileK    = 32
	tileJ    = 128
)

// inf32 is the +∞ sentinel of the compacted kernel. It is chosen far above
// any value the selection test admits (see mulMinPlusSelect32), so sums
// involving a compacted +∞ stay strictly above every genuine finite sum
// and decompact back to graph.Inf.
const inf32 = int32(1) << 30

// i32Pool recycles the compacted scratch buffers so steady-state squaring
// chains stay allocation-free (the bench allocs/op gate covers this).
var i32Pool sync.Pool // *[]int32

func getI32(n int) []int32 {
	if p, _ := i32Pool.Get().(*[]int32); p != nil && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]int32, n)
}

func putI32(b []int32) { i32Pool.Put(&b) }

// scanCompact reports the largest absolute finite entry of m and whether m
// is eligible for the compacted kernel (no −∞ entries; −∞ propagation needs
// the saturating int64 path).
func scanCompact(m *Matrix) (maxAbs int64, ok bool) {
	for _, v := range m.a {
		if v >= graph.Inf {
			continue
		}
		if v <= graph.NegInf {
			return 0, false
		}
		if v < 0 {
			v = -v
		}
		if v > maxAbs {
			maxAbs = v
		}
	}
	return maxAbs, true
}

// mulMinPlusSelect32 decides whether A ⋆ B can run in the int32 kernel and
// returns the finite-sum bound M = maxA+maxB used to decompact the result.
// The requirement is inf32 > 2·maxA + maxB: every genuine sum lies in
// [−M, M], every sum involving a compacted +∞ leg lies at or above
// inf32 − maxA > M, and the largest possible sum maxA + inf32 < 2³¹ cannot
// overflow int32 — so entries ≤ M decompact verbatim and entries > M are
// provably +∞.
func mulMinPlusSelect32(a, b *Matrix) (maxSum int64, ok bool) {
	maxA, okA := scanCompact(a)
	if !okA {
		return 0, false
	}
	maxB, okB := maxA, true
	if b != a {
		maxB, okB = scanCompact(b)
	}
	if !okB || 2*maxA+maxB >= int64(inf32) {
		return 0, false
	}
	return maxA + maxB, true
}

// compact writes src into dst with +∞ mapped to inf32. Callers guarantee
// (via scanCompact) that every other entry fits int32.
func compact(dst []int32, src []int64) {
	for i, v := range src {
		if v >= graph.Inf {
			dst[i] = inf32
		} else {
			dst[i] = int32(v)
		}
	}
}

// mulMinPlusBlocked64 is the blocked kernel over the saturating int64
// representation; it handles the full extended-integer semantics including
// −∞ propagation.
func mulMinPlusBlocked64(dst, a, b *Matrix, workers int) {
	n := a.n
	blocks := (n + rowBlock - 1) / rowBlock
	par.For(workers, blocks, func(bi int) {
		i0 := bi * rowBlock
		i1 := min(i0+rowBlock, n)
		for i := i0; i < i1; i++ {
			rowC := dst.a[i*n : (i+1)*n]
			for j := range rowC {
				rowC[j] = graph.Inf
			}
		}
		for k0 := 0; k0 < n; k0 += tileK {
			k1 := min(k0+tileK, n)
			for j0 := 0; j0 < n; j0 += tileJ {
				j1 := min(j0+tileJ, n)
				for i := i0; i < i1; i++ {
					rowA := a.a[i*n+k0 : i*n+k1]
					rowC := dst.a[i*n+j0 : i*n+j1]
					for kk, aik := range rowA {
						if aik >= graph.Inf {
							continue
						}
						k := k0 + kk
						rowB := b.a[k*n+j0 : k*n+j1]
						for j, bkj := range rowB {
							if s := graph.SaturatingAdd(aik, bkj); s < rowC[j] {
								rowC[j] = s
							}
						}
					}
				}
			}
		}
	})
}

// mulMinPlusBlocked32 is the compacted kernel: inputs are narrowed to
// int32, the inner loop is a plain add-and-min (no saturation branches,
// half the memory traffic of the int64 kernel), and the result is widened
// back with entries above maxSum restored to +∞.
func mulMinPlusBlocked32(dst, a, b *Matrix, maxSum int64, workers int) {
	n := a.n
	a32 := getI32(n * n)
	compact(a32, a.a)
	b32 := a32
	if b != a {
		b32 = getI32(n * n)
		compact(b32, b.a)
	}
	c32 := getI32(n * n)
	m32 := int32(maxSum)
	blocks := (n + rowBlock - 1) / rowBlock
	par.For(workers, blocks, func(bi int) {
		i0 := bi * rowBlock
		i1 := min(i0+rowBlock, n)
		for i := i0; i < i1; i++ {
			rowC := c32[i*n : (i+1)*n]
			for j := range rowC {
				rowC[j] = inf32
			}
		}
		for k0 := 0; k0 < n; k0 += tileK {
			k1 := min(k0+tileK, n)
			for j0 := 0; j0 < n; j0 += tileJ {
				j1 := min(j0+tileJ, n)
				for i := i0; i < i1; i++ {
					rowA := a32[i*n+k0 : i*n+k1]
					rowC := c32[i*n+j0 : i*n+j1]
					for kk, aik := range rowA {
						if aik == inf32 {
							continue
						}
						k := k0 + kk
						rowB := b32[k*n+j0 : k*n+j1]
						for j, bkj := range rowB {
							if s := aik + bkj; s < rowC[j] {
								rowC[j] = s
							}
						}
					}
				}
			}
		}
		for i := i0; i < i1; i++ {
			rowC32 := c32[i*n : (i+1)*n]
			rowC64 := dst.a[i*n : (i+1)*n]
			for j, v := range rowC32 {
				if v > m32 {
					rowC64[j] = graph.Inf
				} else {
					rowC64[j] = int64(v)
				}
			}
		}
	})
	putI32(c32)
	if b != a {
		putI32(b32)
	}
	putI32(a32)
}
