package matrix

import (
	"testing"

	"qclique/internal/graph"
	"qclique/internal/xrand"
)

func wsRandomMatrix(n int, seed uint64) *Matrix {
	rng := xrand.New(seed)
	m := New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Bool(0.25) {
				continue // leave +Inf
			}
			m.Set(i, j, rng.Int64N(41)-20)
		}
	}
	return m
}

func TestWorkspaceGetPutReuse(t *testing.T) {
	var ws Workspace
	a := ws.Get(5)
	ws.Put(a)
	if b := ws.Get(5); b != a {
		t.Fatal("Get after Put did not recycle the matrix")
	}
	if c := ws.Get(5); c == a {
		t.Fatal("second Get handed out the same matrix twice")
	}
	if d := ws.Get(7); d.N() != 7 {
		t.Fatalf("Get(7) returned n=%d", d.N())
	}
}

func TestMulMinPlusIntoMatchesDistanceProduct(t *testing.T) {
	for _, n := range []int{0, 1, 4, 9} {
		a := wsRandomMatrix(n, uint64(n)+1)
		b := wsRandomMatrix(n, uint64(n)+100)
		want, err := DistanceProduct(a, b)
		if err != nil {
			t.Fatal(err)
		}
		dst := New(n)
		dst.Fill(-3) // stale contents must be fully overwritten
		if err := MulMinPlusInto(dst, a, b, 3); err != nil {
			t.Fatal(err)
		}
		if !want.Equal(dst) {
			t.Fatalf("n=%d: MulMinPlusInto differs from DistanceProduct", n)
		}
	}
}

func TestMulMinPlusIntoRejectsAliasing(t *testing.T) {
	a := wsRandomMatrix(4, 1)
	if err := MulMinPlusInto(a, a, a, 1); err == nil {
		t.Fatal("aliased destination accepted")
	}
}

func TestAPSPBySquaringIntoMatchesAllocating(t *testing.T) {
	var ws Workspace
	for _, n := range []int{1, 2, 7, 12} {
		ag := Identity(n)
		rng := xrand.New(uint64(n))
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Bool(0.5) {
					ag.Set(i, j, rng.Int64N(9)+1)
				}
			}
		}
		prod := func(a, b *Matrix) (*Matrix, error) { return DistanceProduct(a, b) }
		want, wantStats, err := APSPBySquaring(ag, prod)
		if err != nil {
			t.Fatal(err)
		}
		prodInto := func(dst, a, b *Matrix) error { return MulMinPlusInto(dst, a, b, 1) }
		got, gotStats, err := APSPBySquaringInto(ag, prodInto, &ws)
		if err != nil {
			t.Fatal(err)
		}
		if !want.Equal(got) {
			t.Fatalf("n=%d: in-place squaring differs", n)
		}
		if wantStats.Products != gotStats.Products {
			t.Fatalf("n=%d: products %d != %d", n, gotStats.Products, wantStats.Products)
		}
	}
}

// TestAPSPBySquaringIntoResultEscapes asserts the ownership contract: the
// returned matrix must not be handed back to the workspace by the driver,
// so further workspace use cannot corrupt it.
func TestAPSPBySquaringIntoResultEscapes(t *testing.T) {
	var ws Workspace
	ag := Identity(6)
	ag.Set(0, 1, 2)
	ag.Set(1, 2, 3)
	prodInto := func(dst, a, b *Matrix) error { return MulMinPlusInto(dst, a, b, 1) }
	got, _, err := APSPBySquaringInto(ag, prodInto, &ws)
	if err != nil {
		t.Fatal(err)
	}
	snap := got.Clone()
	for i := 0; i < 4; i++ {
		m := ws.Get(6)
		m.Fill(graph.NegInf)
		ws.Put(m)
		if _, _, err := APSPBySquaringInto(ag, prodInto, &ws); err != nil {
			t.Fatal(err)
		}
	}
	if !got.Equal(snap) {
		t.Fatal("squaring result was recycled into the workspace")
	}
}

func TestRowViewAliases(t *testing.T) {
	m := New(3)
	m.Set(1, 2, 42)
	v := m.RowView(1)
	if v[2] != 42 {
		t.Fatalf("RowView read %d, want 42", v[2])
	}
	v[0] = 7
	if m.At(1, 0) != 7 {
		t.Fatal("write through RowView did not reach the matrix")
	}
	r := m.Row(1)
	r[1] = 99
	if m.At(1, 1) == 99 {
		t.Fatal("Row must copy, not alias")
	}
}

func TestCloneInto(t *testing.T) {
	a := wsRandomMatrix(5, 9)
	dst := New(5)
	dst.Fill(0)
	if err := a.CloneInto(dst); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(dst) {
		t.Fatal("CloneInto mismatch")
	}
	if err := a.CloneInto(New(4)); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}
