package matrix

import (
	"testing"

	"qclique/internal/graph"
)

func TestSnapUpInto(t *testing.T) {
	ladder := []int64{0, 1, 2, 3, 5, 7, 11}
	src := New(2)
	src.Set(0, 0, 0)
	src.Set(0, 1, 4)
	src.Set(1, 0, 7)
	// (1,1) stays +Inf.
	dst := New(2)
	if err := SnapUpInto(dst, src, ladder); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		i, j int
		want int64
	}{{0, 0, 0}, {0, 1, 5}, {1, 0, 7}, {1, 1, graph.Inf}} {
		if got := dst.At(tc.i, tc.j); got != tc.want {
			t.Errorf("snapped (%d,%d) = %d, want %d", tc.i, tc.j, got, tc.want)
		}
	}
}

func TestSnapUpIntoRejects(t *testing.T) {
	ladder := []int64{0, 1, 2}
	if err := SnapUpInto(New(2), New(3), ladder); err == nil {
		t.Error("dimension mismatch must fail")
	}
	src := New(1)
	src.Set(0, 0, -1)
	if err := SnapUpInto(New(1), src, ladder); err == nil {
		t.Error("negative entry must fail")
	}
	src.Set(0, 0, 9)
	if err := SnapUpInto(New(1), src, ladder); err == nil {
		t.Error("entry beyond the ladder top must fail")
	}
	if err := SnapUpInto(New(1), New(1), nil); err == nil {
		t.Error("empty ladder must fail")
	}
}
