package matrix

import (
	"strings"
	"testing"
	"testing/quick"

	"qclique/internal/graph"
	"qclique/internal/xrand"
)

func TestNewAndIdentity(t *testing.T) {
	m := New(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != graph.Inf {
				t.Fatalf("New entry (%d,%d) = %d", i, j, m.At(i, j))
			}
		}
	}
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := graph.Inf
			if i == j {
				want = 0
			}
			if id.At(i, j) != want {
				t.Fatalf("Identity entry (%d,%d) = %d", i, j, id.At(i, j))
			}
		}
	}
}

func TestIdentityIsProductIdentity(t *testing.T) {
	rng := xrand.New(1)
	m := randomMatrix(6, 30, rng)
	id := Identity(6)
	left, err := DistanceProduct(id, m)
	if err != nil {
		t.Fatal(err)
	}
	right, err := DistanceProduct(m, id)
	if err != nil {
		t.Fatal(err)
	}
	if !left.Equal(m) || !right.Equal(m) {
		t.Error("Identity must be a two-sided min-plus identity")
	}
}

func TestSetClampsAndAt(t *testing.T) {
	m := New(2)
	m.Set(0, 1, graph.Inf+100)
	if m.At(0, 1) != graph.Inf {
		t.Error("Set must clamp at +Inf")
	}
	m.Set(1, 0, graph.NegInf-100)
	if m.At(1, 0) != graph.NegInf {
		t.Error("Set must clamp at -Inf")
	}
	m.Set(0, 0, -7)
	if m.At(0, 0) != -7 {
		t.Error("Set/At roundtrip failed")
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]int64{{0, 5}, {3, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 5 || m.At(1, 0) != 3 {
		t.Error("FromRows entries wrong")
	}
	if _, err := FromRows([][]int64{{0, 5}, {3}}); err == nil {
		t.Error("ragged rows should fail")
	}
}

func TestDistanceProductSmall(t *testing.T) {
	a, err := FromRows([][]int64{
		{0, 2, graph.Inf},
		{graph.Inf, 0, -1},
		{4, graph.Inf, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := DistanceProduct(a, a)
	if err != nil {
		t.Fatal(err)
	}
	// c[0][2] = a[0][1] + a[1][2] = 1.
	if c.At(0, 2) != 1 {
		t.Errorf("c[0,2] = %d, want 1", c.At(0, 2))
	}
	// c[2][1] = a[2][0] + a[0][1] = 6.
	if c.At(2, 1) != 6 {
		t.Errorf("c[2,1] = %d, want 6", c.At(2, 1))
	}
	if c.At(1, 1) != 0 {
		t.Errorf("c[1,1] = %d, want 0", c.At(1, 1))
	}
}

func TestDistanceProductInfinityConventions(t *testing.T) {
	a, err := FromRows([][]int64{
		{graph.Inf, graph.NegInf},
		{5, graph.Inf},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromRows([][]int64{
		{graph.Inf, graph.Inf},
		{7, graph.NegInf},
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := DistanceProduct(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// c[0,0] = min(Inf+Inf, -Inf+7) = -Inf.
	if c.At(0, 0) != graph.NegInf {
		t.Errorf("c[0,0] = %d, want -Inf", c.At(0, 0))
	}
	// c[0,1] = min(Inf+Inf, -Inf + -Inf) = -Inf.
	if c.At(0, 1) != graph.NegInf {
		t.Errorf("c[0,1] = %d, want -Inf", c.At(0, 1))
	}
	// c[1,0] = min(5+Inf, Inf+7) = Inf.
	if c.At(1, 0) != graph.Inf {
		t.Errorf("c[1,0] = %d, want Inf", c.At(1, 0))
	}
}

func TestDistanceProductDimensionMismatch(t *testing.T) {
	if _, err := DistanceProduct(New(2), New(3)); err == nil {
		t.Error("dimension mismatch should fail")
	}
}

func TestDistanceProductAssociativityProperty(t *testing.T) {
	// (A⋆B)⋆C == A⋆(B⋆C) on random finite matrices — a semiring law the
	// reference implementation must satisfy.
	rng := xrand.New(77)
	for trial := 0; trial < 25; trial++ {
		r := rng.SplitN("t", trial)
		a := randomMatrix(7, 50, r.Split("a"))
		b := randomMatrix(7, 50, r.Split("b"))
		c := randomMatrix(7, 50, r.Split("c"))
		ab, err := DistanceProduct(a, b)
		if err != nil {
			t.Fatal(err)
		}
		abc1, err := DistanceProduct(ab, c)
		if err != nil {
			t.Fatal(err)
		}
		bc, err := DistanceProduct(b, c)
		if err != nil {
			t.Fatal(err)
		}
		abc2, err := DistanceProduct(a, bc)
		if err != nil {
			t.Fatal(err)
		}
		if !abc1.Equal(abc2) {
			t.Fatalf("trial %d: associativity violated", trial)
		}
	}
}

func TestAPSPBySquaringMatchesFloydWarshall(t *testing.T) {
	rng := xrand.New(4242)
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.IntN(12)
		g, err := graph.RandomDigraph(n, graph.DigraphOpts{
			ArcProb:          0.45,
			MinWeight:        -6,
			MaxWeight:        15,
			NoNegativeCycles: true,
		}, rng.SplitN("g", trial))
		if err != nil {
			t.Fatal(err)
		}
		want, err := graph.FloydWarshall(g)
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := APSPBySquaring(FromDigraph(g), DistanceProduct)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if got.At(i, j) != want[i*n+j] {
					t.Fatalf("trial %d n=%d: d(%d,%d) = %d, want %d", trial, n, i, j, got.At(i, j), want[i*n+j])
				}
			}
		}
		// Proposition 3: at most ceil(log2(n)) products.
		maxProducts := 0
		for l := 1; l < n; l *= 2 {
			maxProducts++
		}
		if stats.Products != maxProducts {
			t.Errorf("trial %d: %d products, want %d", trial, stats.Products, maxProducts)
		}
	}
}

func TestAPSPBySquaringDetectsNegativeCycle(t *testing.T) {
	g := graph.NewDigraph(3)
	for _, a := range [][3]int64{{0, 1, 1}, {1, 2, -5}, {2, 0, 1}} {
		if err := g.SetArc(int(a[0]), int(a[1]), a[2]); err != nil {
			t.Fatal(err)
		}
	}
	got, _, err := APSPBySquaring(FromDigraph(g), DistanceProduct)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasNegativeDiagonal() {
		t.Error("negative cycle must surface as a negative diagonal entry")
	}
}

func TestAPSPBySquaringTrivialSizes(t *testing.T) {
	for _, n := range []int{0, 1, 2} {
		m, stats, err := APSPBySquaring(Identity(n), DistanceProduct)
		if err != nil {
			t.Fatal(err)
		}
		if m.N() != n {
			t.Errorf("n=%d: result dimension %d", n, m.N())
		}
		if n <= 2 && stats.Products > 1 {
			t.Errorf("n=%d: %d products", n, stats.Products)
		}
	}
}

func TestFromDigraph(t *testing.T) {
	g := graph.NewDigraph(3)
	if err := g.SetArc(0, 1, -2); err != nil {
		t.Fatal(err)
	}
	m := FromDigraph(g)
	if m.At(0, 0) != 0 || m.At(1, 1) != 0 {
		t.Error("diagonal must be 0")
	}
	if m.At(0, 1) != -2 {
		t.Error("arc weight must carry over")
	}
	if m.At(1, 0) != graph.Inf {
		t.Error("absent arc must be Inf")
	}
}

func TestCloneAndEqual(t *testing.T) {
	rng := xrand.New(8)
	m := randomMatrix(5, 20, rng)
	c := m.Clone()
	if !m.Equal(c) {
		t.Error("clone must equal original")
	}
	c.Set(2, 2, 999)
	if m.Equal(c) {
		t.Error("mutating clone must not affect original")
	}
	if m.Equal(New(4)) {
		t.Error("different dimensions are not equal")
	}
}

func TestMaxAbsFinite(t *testing.T) {
	m := New(2)
	if m.MaxAbsFinite() != 0 {
		t.Error("all-Inf matrix should report 0")
	}
	m.Set(0, 1, -9)
	m.Set(1, 0, 4)
	if m.MaxAbsFinite() != 9 {
		t.Errorf("MaxAbsFinite = %d, want 9", m.MaxAbsFinite())
	}
}

func TestStringRendering(t *testing.T) {
	m := New(2)
	m.Set(0, 0, 0)
	m.Set(0, 1, graph.NegInf)
	s := m.String()
	if !strings.Contains(s, "-inf") || !strings.Contains(s, "inf") {
		t.Errorf("String() = %q", s)
	}
}

func TestRowReturnsCopy(t *testing.T) {
	m := Identity(3)
	r := m.Row(1)
	r[1] = 42
	if m.At(1, 1) != 0 {
		t.Error("Row must return a copy")
	}
}

func TestDistanceProductMonotoneProperty(t *testing.T) {
	// Lowering any entry of A can only lower (or keep) entries of A⋆B.
	rng := xrand.New(55)
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		a := randomMatrix(5, 30, r.Split("a"))
		b := randomMatrix(5, 30, r.Split("b"))
		c1, err := DistanceProduct(a, b)
		if err != nil {
			return false
		}
		i, j := r.IntN(5), r.IntN(5)
		a2 := a.Clone()
		if v := a2.At(i, j); graph.IsFinite(v) {
			a2.Set(i, j, v-10)
		} else {
			a2.Set(i, j, 0)
		}
		c2, err := DistanceProduct(a2, b)
		if err != nil {
			return false
		}
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				if c2.At(x, y) > c1.At(x, y) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Values: nil}
	_ = cfg
	for trial := 0; trial < 40; trial++ {
		if !f(rng.Uint64()) {
			t.Fatalf("monotonicity violated at trial %d", trial)
		}
	}
}

// randomMatrix builds a matrix with entries uniform in [-maxAbs, maxAbs] and
// ~20% +Inf entries (diagonal kept at 0 so squaring behaves like a graph).
func randomMatrix(n int, maxAbs int64, rng *xrand.Source) *Matrix {
	m := New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				m.Set(i, j, 0)
				continue
			}
			if rng.Bool(0.2) {
				continue // leave +Inf
			}
			m.Set(i, j, rng.Int64N(2*maxAbs+1)-maxAbs)
		}
	}
	return m
}
