package matrix

// Workspace is a freelist of matrices keyed by dimension, the matrix half
// of the solve pipeline's reusable scratch: repeated squaring ping-pongs
// between two workspace matrices, and the distance-product binary search
// borrows its threshold matrix from the same pool, so a steady-state solve
// allocates no matrix storage at all.
//
// A Workspace is not safe for concurrent use; give each concurrent solve
// its own (internal/serve pools whole per-solve workspaces for exactly this
// reason). Matrices returned by Get carry arbitrary stale entries — every
// consumer in this repository overwrites its buffer entirely (CloneInto,
// MulMinPlusInto, Fill) before reading, which is also what keeps pooled and
// fresh runs bit-identical.
type Workspace struct {
	free map[int][]*Matrix
}

// Get returns an n×n matrix with unspecified contents: a recycled buffer
// when one of the right dimension is free, a fresh allocation otherwise.
func (w *Workspace) Get(n int) *Matrix {
	if l := w.free[n]; len(l) > 0 {
		m := l[len(l)-1]
		w.free[n] = l[:len(l)-1]
		return m
	}
	return &Matrix{n: n, a: make([]int64, n*n)}
}

// Put returns m to the freelist. The caller must not use m afterwards; in
// particular a matrix that escaped into a retained result (the solve's Dist)
// must never be Put back.
func (w *Workspace) Put(m *Matrix) {
	if m == nil {
		return
	}
	if w.free == nil {
		w.free = make(map[int][]*Matrix)
	}
	w.free[m.n] = append(w.free[m.n], m)
}
