// Package matrix implements min-plus (tropical) semiring matrices over
// ℤ ∪ {−∞, +∞}, the algebraic substrate of the paper's reduction chain:
// the distance product (Definition 2) and APSP via repeated squaring
// (Proposition 3).
//
// Entries use the same saturating extended integers as package graph:
// graph.Inf is +∞ ("no path"), graph.NegInf is −∞. The distance product is
// C[i,j] = min_k (A[i,k] + B[k,j]) with the convention +∞ + x = +∞ and
// −∞ + (finite or −∞) = −∞.
package matrix

import (
	"fmt"
	"sort"
	"strings"

	"qclique/internal/graph"
	"qclique/internal/par"
)

// Matrix is a dense square matrix of extended integers.
type Matrix struct {
	n int
	a []int64 // row-major
}

// New returns an n×n matrix with every entry +∞.
func New(n int) *Matrix {
	if n < 0 {
		panic("matrix: negative dimension")
	}
	a := make([]int64, n*n)
	for i := range a {
		a[i] = graph.Inf
	}
	return &Matrix{n: n, a: a}
}

// Identity returns the min-plus identity: 0 on the diagonal, +∞ elsewhere.
func Identity(n int) *Matrix {
	m := New(n)
	for i := 0; i < n; i++ {
		m.a[i*n+i] = 0
	}
	return m
}

// FromRows builds a matrix from row-major data. It returns an error if rows
// are ragged or empty-but-nonzero.
func FromRows(rows [][]int64) (*Matrix, error) {
	n := len(rows)
	m := New(n)
	for i, r := range rows {
		if len(r) != n {
			return nil, fmt.Errorf("matrix: row %d has %d entries, want %d", i, len(r), n)
		}
		copy(m.a[i*n:(i+1)*n], r)
	}
	return m, nil
}

// N returns the dimension.
func (m *Matrix) N() int { return m.n }

// At returns entry (i, j). It panics on out-of-range indices (programming
// error).
func (m *Matrix) At(i, j int) int64 {
	m.bounds(i, j)
	return m.a[i*m.n+j]
}

// Set writes entry (i, j), clamping into [−∞, +∞].
func (m *Matrix) Set(i, j int, v int64) {
	m.bounds(i, j)
	if v > graph.Inf {
		v = graph.Inf
	}
	if v < graph.NegInf {
		v = graph.NegInf
	}
	m.a[i*m.n+j] = v
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []int64 {
	m.bounds(i, 0)
	out := make([]int64, m.n)
	copy(out, m.a[i*m.n:(i+1)*m.n])
	return out
}

// RowView returns row i as a slice aliasing the matrix's backing storage:
// writes through the view mutate the matrix, and the view is invalidated by
// anything that replaces the storage. It is the allocation-free companion of
// Row for internal hot paths; public results should keep using Row, whose
// copy detaches the caller from cached/pooled matrices.
func (m *Matrix) RowView(i int) []int64 {
	m.bounds(i, 0)
	return m.a[i*m.n : (i+1)*m.n : (i+1)*m.n]
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	a := make([]int64, len(m.a))
	copy(a, m.a)
	return &Matrix{n: m.n, a: a}
}

// CloneInto copies m's entries into dst, which must have the same
// dimension. It is Clone without the allocation, for workspace-backed
// ping-pong buffers.
func (m *Matrix) CloneInto(dst *Matrix) error {
	if dst.n != m.n {
		return fmt.Errorf("matrix: CloneInto dimension mismatch %d vs %d", dst.n, m.n)
	}
	copy(dst.a, m.a)
	return nil
}

// Fill sets every entry to v (clamped into [−∞, +∞]).
func (m *Matrix) Fill(v int64) {
	if v > graph.Inf {
		v = graph.Inf
	}
	if v < graph.NegInf {
		v = graph.NegInf
	}
	for i := range m.a {
		m.a[i] = v
	}
}

// Equal reports whether two matrices have the same dimension and entries.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.n != o.n {
		return false
	}
	for i, v := range m.a {
		if o.a[i] != v {
			return false
		}
	}
	return true
}

// MaxAbsFinite returns the largest absolute value among finite entries
// (the M of Proposition 2), or 0 if no entry is finite.
func (m *Matrix) MaxAbsFinite() int64 {
	var mx int64
	for _, v := range m.a {
		if !graph.IsFinite(v) {
			continue
		}
		if v < 0 {
			v = -v
		}
		if v > mx {
			mx = v
		}
	}
	return mx
}

// String renders the matrix with "inf"/"-inf" for the sentinels; intended
// for small matrices in tests and examples.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			switch v := m.a[i*m.n+j]; {
			case v >= graph.Inf:
				b.WriteString("inf")
			case v <= graph.NegInf:
				b.WriteString("-inf")
			default:
				fmt.Fprintf(&b, "%d", v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func (m *Matrix) bounds(i, j int) {
	if i < 0 || i >= m.n || j < 0 || j >= m.n {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range for n=%d", i, j, m.n))
	}
}

// DistanceProduct computes A ⋆ B (Definition 2) by the direct cubic
// algorithm. It is the centralized reference implementation; the
// distributed pipelines are validated against it. It returns an error on a
// dimension mismatch.
func DistanceProduct(a, b *Matrix) (*Matrix, error) {
	return DistanceProductPar(a, b, 1)
}

// DistanceProductPar is DistanceProduct with the row loop split across a
// bounded worker pool (the per-node local min-plus work of the gossip
// strategy: node i computes row i). Rows are written to disjoint slices of
// the output, so the result is bit-identical for every worker count;
// workers <= 0 selects GOMAXPROCS.
func DistanceProductPar(a, b *Matrix, workers int) (*Matrix, error) {
	c := New(a.n)
	if err := MulMinPlusInto(c, a, b, workers); err != nil {
		return nil, err
	}
	return c, nil
}

// MulMinPlusInto computes dst = A ⋆ B in place: dst is overwritten entirely
// (every entry reset to +∞ before accumulation), so a workspace matrix can
// be reused across repeated squaring iterations without clearing. dst must
// not alias a or b (rows of dst are rewritten while rows of a and b are
// still being read).
//
// Execution dispatches to one of the blocked kernels in kernel.go: the
// compacted int32 kernel when every entry provably fits (no −∞ and the
// finite-sum bound clears inf32 headroom — see mulMinPlusSelect32), the
// saturating int64 kernel otherwise. Both are cache-tiled and run row
// blocks on the bounded worker pool; the result is bit-identical between
// the two kernels and for every worker count.
func MulMinPlusInto(dst, a, b *Matrix, workers int) error {
	if a.n != b.n {
		return fmt.Errorf("matrix: dimension mismatch %d vs %d", a.n, b.n)
	}
	if dst.n != a.n {
		return fmt.Errorf("matrix: destination is %d×%d, want %d×%d", dst.n, dst.n, a.n, a.n)
	}
	if dst == a || dst == b {
		return fmt.Errorf("matrix: MulMinPlusInto destination aliases an input")
	}
	w := par.Workers(workers)
	if maxSum, ok := mulMinPlusSelect32(a, b); ok {
		mulMinPlusBlocked32(dst, a, b, maxSum, w)
	} else {
		mulMinPlusBlocked64(dst, a, b, w)
	}
	return nil
}

// FromDigraph encodes a directed graph as the matrix A_G of Section 3:
// 0 on the diagonal, w(i,j) for arcs, +∞ otherwise.
func FromDigraph(g *graph.Digraph) *Matrix {
	n := g.N()
	m := New(n)
	for i := 0; i < n; i++ {
		m.a[i*n+i] = 0
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if w, ok := g.Weight(i, j); ok {
				m.a[i*n+j] = w
			}
		}
	}
	return m
}

// Product is the function signature of a distance-product implementation;
// APSPBySquaring is parameterized over it so the same Proposition 3 driver
// runs on the reference product, the distributed gather product, or the
// FindEdges-based product of Proposition 2.
type Product func(a, b *Matrix) (*Matrix, error)

// SquaringStats reports what a run of APSPBySquaring did.
type SquaringStats struct {
	// Products is the number of distance products performed; Proposition 3
	// bounds it by ⌈log₂ n⌉ for n ≥ 2.
	Products int
}

// SquaringBudget is the Proposition 3 product budget for an n-vertex
// instance: squarings until the walk-length budget 2^k >= n, i.e.
// ⌈log₂ n⌉ for n ≥ 2 and 0 for n ≤ 1. It is the single source of the
// stage counts the exact and approximate chains declare up front.
func SquaringBudget(n int) int {
	k := 0
	for length := 1; length < n; length *= 2 {
		k++
	}
	return k
}

// APSPBySquaring computes the n-th min-plus power of A_G by repeated
// squaring (Proposition 3): after ⌈log₂ n⌉ squarings, A^(2^k) with 2^k ≥ n
// holds all pairwise distances. The walk-length budget is n rather than n−1
// so that a negative cycle (which needs up to n hops to close) surfaces as a
// negative diagonal entry. The caller supplies the distance-product
// implementation. The input must have a zero diagonal (it is A_G).
func APSPBySquaring(ag *Matrix, prod Product) (*Matrix, SquaringStats, error) {
	var stats SquaringStats
	n := ag.n
	cur := ag.Clone()
	if n <= 1 {
		return cur, stats, nil
	}
	// Squarings until walk-length budget 2^k >= n.
	for length := 1; length < n; length *= 2 {
		next, err := prod(cur, cur)
		if err != nil {
			return nil, stats, fmt.Errorf("squaring %d: %w", stats.Products, err)
		}
		stats.Products++
		cur = next
	}
	return cur, stats, nil
}

// ProductInto is the in-place counterpart of Product: implementations write
// A ⋆ B into dst (overwriting it entirely) instead of allocating a result.
type ProductInto func(dst, a, b *Matrix) error

// APSPBySquaringInto is APSPBySquaring over an in-place product: the chain
// ping-pongs between two workspace matrices, so a steady-state solve
// performs ⌈log₂ n⌉ squarings with zero per-iteration matrix allocation.
// The returned matrix is one of the two workspace buffers and is therefore
// owned by the caller: it must not be handed back to ws while the result is
// alive (the companion buffer is returned automatically).
func APSPBySquaringInto(ag *Matrix, prod ProductInto, ws *Workspace) (*Matrix, SquaringStats, error) {
	var stats SquaringStats
	n := ag.n
	cur := ws.Get(n)
	if err := ag.CloneInto(cur); err != nil {
		ws.Put(cur)
		return nil, stats, err
	}
	if n <= 1 {
		return cur, stats, nil
	}
	next := ws.Get(n)
	for length := 1; length < n; length *= 2 {
		if err := prod(next, cur, cur); err != nil {
			ws.Put(cur)
			ws.Put(next)
			return nil, stats, fmt.Errorf("squaring %d: %w", stats.Products, err)
		}
		stats.Products++
		cur, next = next, cur
	}
	ws.Put(next)
	return cur, stats, nil
}

// SnapUpInto writes src into dst with every finite entry rounded up to the
// smallest ladder value that is >= it; +Inf entries pass through untouched.
// The ladder must be sorted in strictly increasing order and its last value
// must cover every finite entry of src. Negative entries are rejected —
// multiplicative rounding is defined for nonnegative weights only.
//
// This is the matrix half of the (1+ε)-approximate distance product: a
// product whose outputs are snapped onto a geometric value ladder equals
// the exact product followed by SnapUpInto, and searching the ladder keeps
// the per-entry binary search logarithmic in the ladder length instead of
// in the weight bound (the regression tests pin the two formulations to
// each other bit for bit).
func SnapUpInto(dst, src *Matrix, ladder []int64) error {
	if dst.n != src.n {
		return fmt.Errorf("matrix: SnapUpInto dimension mismatch %d vs %d", dst.n, src.n)
	}
	if len(ladder) == 0 {
		return fmt.Errorf("matrix: empty ladder")
	}
	for i, v := range src.a {
		if v >= graph.Inf {
			dst.a[i] = graph.Inf
			continue
		}
		if v < 0 {
			return fmt.Errorf("matrix: SnapUpInto on negative entry %d", v)
		}
		if v > ladder[len(ladder)-1] {
			return fmt.Errorf("matrix: entry %d exceeds ladder top %d", v, ladder[len(ladder)-1])
		}
		dst.a[i] = ladder[sort.Search(len(ladder), func(i int) bool { return ladder[i] >= v })]
	}
	return nil
}

// HasNegativeDiagonal reports whether any diagonal entry is negative, the
// matrix-level signature of a negative cycle after APSPBySquaring.
func (m *Matrix) HasNegativeDiagonal() bool {
	for i := 0; i < m.n; i++ {
		if m.a[i*m.n+i] < 0 {
			return true
		}
	}
	return false
}
