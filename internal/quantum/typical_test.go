package quantum

import (
	"math"
	"testing"

	"qclique/internal/xrand"
)

func TestPoissonBinomialTailExactSmall(t *testing.T) {
	// Two fair coins: Pr[S > 1] = Pr[S=2] = 1/4.
	got := PoissonBinomialTail([]float64{0.5, 0.5}, 1)
	if math.Abs(got-0.25) > 1e-12 {
		t.Errorf("tail = %f, want 0.25", got)
	}
	// Pr[S > 0] = 1 - 1/4 = 3/4.
	got = PoissonBinomialTail([]float64{0.5, 0.5}, 0)
	if math.Abs(got-0.75) > 1e-12 {
		t.Errorf("tail = %f, want 0.75", got)
	}
	if PoissonBinomialTail([]float64{0.5}, -1) != 1 {
		t.Error("threshold below 0 means certain exceedance")
	}
	if PoissonBinomialTail([]float64{0.5, 0.5}, 2) != 0 {
		t.Error("S cannot exceed m")
	}
}

func TestPoissonBinomialMatchesBinomial(t *testing.T) {
	// Equal probabilities reduce to a binomial; compare against a direct
	// binomial sum.
	m, p, thr := 20, 0.3, 8
	probs := make([]float64, m)
	for i := range probs {
		probs[i] = p
	}
	got := PoissonBinomialTail(probs, thr)
	var want float64
	for k := thr + 1; k <= m; k++ {
		want += binomPMF(m, k, p)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("tail = %g, want %g", got, want)
	}
}

func binomPMF(n, k int, p float64) float64 {
	logc := 0.0
	for i := 0; i < k; i++ {
		logc += math.Log(float64(n-i)) - math.Log(float64(i+1))
	}
	return math.Exp(logc + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p))
}

func TestPoissonBinomialMonteCarlo(t *testing.T) {
	rng := xrand.New(31)
	probs := []float64{0.1, 0.8, 0.4, 0.4, 0.25, 0.6, 0.05}
	thr := 3
	want := PoissonBinomialTail(probs, thr)
	const trials = 40000
	hits := 0
	for i := 0; i < trials; i++ {
		s := 0
		for _, p := range probs {
			if rng.Bool(p) {
				s++
			}
		}
		if s > thr {
			hits++
		}
	}
	got := float64(hits) / trials
	if math.Abs(got-want) > 0.01 {
		t.Errorf("Monte Carlo %f vs exact %f", got, want)
	}
}

func TestChernoffFrequencyTailBoundsExact(t *testing.T) {
	// The Chernoff bound must upper-bound the exact tail.
	probs := make([]float64, 100)
	mu := 0.0
	for i := range probs {
		probs[i] = 0.1
		mu += 0.1
	}
	for _, thr := range []int{15, 20, 30} {
		exact := PoissonBinomialTail(probs, thr-1) // Pr[S >= thr]
		bound := ChernoffFrequencyTail(mu, thr)
		if bound < exact {
			t.Errorf("thr=%d: Chernoff %g below exact %g", thr, bound, exact)
		}
	}
	if ChernoffFrequencyTail(0, 1) != 0 {
		t.Error("zero mean cannot exceed positive threshold")
	}
	if ChernoffFrequencyTail(0, 0) != 1 {
		t.Error("vacuous threshold must return 1")
	}
	if ChernoffFrequencyTail(5, 3) != 1 {
		t.Error("threshold below mean must return the trivial bound")
	}
}

func TestAtypicalMassUniformIsTiny(t *testing.T) {
	// m=200 instances uniform over |X|=8 with β=8m/|X|·(1.0+) → mass must
	// be small; compare exact and Chernoff variants.
	m, sizeX := 200, 8
	beta := 8 * m / sizeX // = 200; expected frequency is m/|X| = 25
	uni := make([][]float64, m)
	for i := range uni {
		row := make([]float64, sizeX)
		for x := range row {
			row[x] = 1 / float64(sizeX)
		}
		uni[i] = row
	}
	exact := AtypicalMass(uni, beta, true)
	cher := AtypicalMass(uni, beta, false)
	if exact > 1e-9 {
		t.Errorf("exact atypical mass %g too large", exact)
	}
	if cher < exact {
		t.Errorf("Chernoff %g below exact %g", cher, exact)
	}
	if AtypicalMass(nil, 10, true) != 0 {
		t.Error("no instances means no atypical mass")
	}
}

func TestAtypicalMassSkewedIsLarge(t *testing.T) {
	// Every instance concentrated on element 0: frequency of 0 is m,
	// hugely above β → mass ≈ 1.
	m, sizeX := 50, 8
	rows := make([][]float64, m)
	for i := range rows {
		row := make([]float64, sizeX)
		row[0] = 1
		rows[i] = row
	}
	if got := AtypicalMass(rows, 10, true); got < 0.999 {
		t.Errorf("skewed mass = %f, want ~1", got)
	}
}

func TestLemma5MassBound(t *testing.T) {
	// Bound formula sanity: |X|·exp(−2m/(9|X|)).
	got := Lemma5MassBound(900, 10)
	want := 10 * math.Exp(-2*900.0/(9*10))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("bound = %g, want %g", got, want)
	}
	if Lemma5MassBound(0, 10) != 0 || Lemma5MassBound(10, 0) != 0 {
		t.Error("degenerate inputs should be 0")
	}
	// Under the Theorem 3 precondition |X| < m/(36 log m) the bound is tiny.
	m := 10000
	sizeX := 5
	if b := Lemma5MassBound(m, sizeX); b > 1e-9 {
		t.Errorf("bound %g too large under preconditions", b)
	}
}

func TestTruncationDeviationBound(t *testing.T) {
	if TruncationDeviationBound(0, 100, 4) != 0 {
		t.Error("zero iterations means zero deviation")
	}
	// Monotone in k.
	a := TruncationDeviationBound(1, 1000, 4)
	b := TruncationDeviationBound(10, 1000, 4)
	if b <= a {
		t.Error("deviation bound must grow with k")
	}
	// The proof's punchline: under |X| < m/(36 log m), the bound is at
	// most 2k/m³. The paper's constant is loose right at the boundary, so
	// verify the inequality at a point comfortably inside the region.
	m := 6000
	sizeX := 4 // 4 « 6000/(36·log 6000) ≈ 19.2
	if !Theorem3Preconditions(m, sizeX, 8*float64(m)/float64(sizeX)+1) {
		t.Fatal("test parameters should satisfy preconditions")
	}
	k := int64(40)
	bound := TruncationDeviationBound(k, m, sizeX)
	punchline := 2 * float64(k) / (float64(m) * float64(m) * float64(m))
	if bound > punchline {
		t.Errorf("deviation bound %g exceeds 2k/m³ = %g", bound, punchline)
	}
}

func TestTheorem3Preconditions(t *testing.T) {
	if Theorem3Preconditions(1, 4, 100) {
		t.Error("m=1 cannot satisfy preconditions")
	}
	if Theorem3Preconditions(100, 50, 1000) {
		t.Error("|X| ≥ m/(36 log m) must fail")
	}
	m, sizeX := 10000, 5
	if !Theorem3Preconditions(m, sizeX, 8*float64(m)/float64(sizeX)+1) {
		t.Error("valid triple rejected")
	}
	if Theorem3Preconditions(m, sizeX, 8*float64(m)/float64(sizeX)-1) {
		t.Error("β below 8m/|X| must fail")
	}
}

func TestMarginalsFromStates(t *testing.T) {
	states := [][]float64{{1, 0}, {math.Sqrt(0.5), -math.Sqrt(0.5)}}
	m := MarginalsFromStates(states)
	if m[0][0] != 1 || m[0][1] != 0 {
		t.Error("deterministic state marginal wrong")
	}
	if math.Abs(m[1][0]-0.5) > 1e-12 || math.Abs(m[1][1]-0.5) > 1e-12 {
		t.Error("uniform state marginal wrong")
	}
}
