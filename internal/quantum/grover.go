// Package quantum provides an exact state-vector simulation of Grover
// search, the quantum primitive underlying the paper's distributed
// algorithm (Section 4), together with the "typical inputs" analysis of
// Theorem 3 (Poisson-binomial frequency tails, Lemma 5 amplitude-mass
// bounds).
//
// Search spaces in the paper have size |X| ≤ √n (subsets of the vertex
// partition V'), so an |X|-dimensional real state vector simulates the
// algorithm exactly: Grover's operator keeps amplitudes real, and the
// simulation reproduces amplitudes, iteration counts and measurement
// statistics without approximation.
package quantum

import (
	"fmt"
	"math"

	"qclique/internal/xrand"
)

// Oracle answers membership queries g(x) for x in [0, N).
type Oracle func(x int) bool

// Uniform returns the uniform superposition over N elements.
func Uniform(n int) []float64 {
	if n <= 0 {
		return nil
	}
	amps := make([]float64, n)
	a := 1 / math.Sqrt(float64(n))
	for i := range amps {
		amps[i] = a
	}
	return amps
}

// Iterate applies one Grover iteration in place: a phase flip on marked
// elements followed by inversion about the mean (the diffusion operator).
func Iterate(amps []float64, marked []bool) {
	for i := range amps {
		if marked[i] {
			amps[i] = -amps[i]
		}
	}
	var mean float64
	for _, a := range amps {
		mean += a
	}
	mean /= float64(len(amps))
	for i := range amps {
		amps[i] = 2*mean - amps[i]
	}
}

// SuccessProbability returns the probability that measuring amps yields a
// marked element.
func SuccessProbability(amps []float64, marked []bool) float64 {
	var p float64
	for i, a := range amps {
		if marked[i] {
			p += a * a
		}
	}
	return p
}

// Measure samples an index from the squared-amplitude distribution.
func Measure(amps []float64, rng *xrand.Source) int {
	r := rng.Float64()
	var acc float64
	for i, a := range amps {
		acc += a * a
		if r < acc {
			return i
		}
	}
	// Floating-point slack: return the last index.
	return len(amps) - 1
}

// IterationsForKnown returns the optimal Grover iteration count
// ⌊(π/4)·√(N/t)⌋ for a space of size n with t known solutions.
func IterationsForKnown(n, t int) int {
	if t <= 0 || n <= 0 {
		return 0
	}
	if 2*t >= n {
		return 0 // solutions are already likely under uniform measurement
	}
	theta := math.Asin(math.Sqrt(float64(t) / float64(n)))
	k := math.Floor(math.Pi / (4 * theta))
	if k < 0 {
		return 0
	}
	return int(k)
}

// MarkedFromOracle materializes the oracle's truth table.
func MarkedFromOracle(n int, g Oracle) []bool {
	marked := make([]bool, n)
	for i := range marked {
		marked[i] = g(i)
	}
	return marked
}

// CountMarked returns the number of true entries.
func CountMarked(marked []bool) int {
	c := 0
	for _, m := range marked {
		if m {
			c++
		}
	}
	return c
}

// SearchResult reports the outcome and cost of a Grover search.
type SearchResult struct {
	// Found reports whether a solution was located.
	Found bool
	// X is the located solution when Found.
	X int
	// Iterations is the total number of Grover iterations executed; each
	// iteration makes one oracle query (in the distributed setting, one
	// invocation of the evaluation procedure).
	Iterations int64
	// Verifications is the number of classical verification queries made
	// on measured candidates.
	Verifications int64
}

// OracleCalls is the total number of oracle invocations (iterations plus
// candidate verifications), the quantity the distributed round accounting
// multiplies by the evaluation cost.
func (r SearchResult) OracleCalls() int64 { return r.Iterations + r.Verifications }

// Search locates a solution of g over [0, n) with an unknown number of
// solutions using the Boyer–Brassard–Høyer–Tapp schedule: geometrically
// growing random iteration counts. It performs O(√n) iterations in
// expectation when a solution exists and gives up (Found=false) after the
// schedule is exhausted, which for a solution-free oracle happens within
// O(√n log n) iterations.
func Search(n int, g Oracle, rng *xrand.Source) SearchResult {
	var res SearchResult
	if n <= 0 {
		return res
	}
	marked := MarkedFromOracle(n, g)
	return searchMarked(n, marked, rng, &res)
}

// searchMarked runs the BBHT schedule against a materialized truth table,
// accumulating costs into res.
func searchMarked(n int, marked []bool, rng *xrand.Source, res *SearchResult) SearchResult {
	sqrtN := math.Sqrt(float64(n))
	m := 1.0
	const lambda = 6.0 / 5.0
	// After O(log n) rounds m saturates at √n; a few more rounds at the
	// saturated value drive the failure probability for nonempty oracles
	// below 2^-Ω(rounds). 4+3·log₂ n rounds bounds total iterations by
	// O(√n log n).
	maxRounds := 4 + 3*int(math.Ceil(math.Log2(float64(n+1))))
	for round := 0; round < maxRounds; round++ {
		j := rng.IntN(int(math.Ceil(m)) + 1)
		res.Iterations += int64(j)
		x, hit := FixedScheduleProbe(marked, j, rng)
		res.Verifications++
		if hit {
			res.Found = true
			res.X = x
			return *res
		}
		m = math.Min(lambda*m, sqrtN)
	}
	res.Found = false
	return *res
}

// FixedScheduleProbe runs exactly j Grover iterations from the uniform
// state and measures once; it is the building block of the lock-step
// multi-search, where every parallel instance must use the same iteration
// count (the global quantum circuit applies the same number of UmCm steps
// to all registers).
//
// Starting from the uniform state, every marked element always shares one
// amplitude and every unmarked element another, so the probe tracks just
// those two values instead of a full state vector. Bit-exactness with the
// vector simulation (Iterate + Measure) is preserved by folding the mean
// and the measurement CDF in index order with the identical per-element
// addends — the same sequence of floating-point operations, so the same
// rounding, the same drawn index, and no amplitude buffer at all.
func FixedScheduleProbe(marked []bool, j int, rng *xrand.Source) (x int, hit bool) {
	n := len(marked)
	a := 1 / math.Sqrt(float64(n))
	aM, aU := a, a // marked / unmarked amplitudes
	for it := 0; it < j; it++ {
		fm := -aM // phase flip on marked elements
		var sum float64
		for _, m := range marked {
			if m {
				sum += fm
			} else {
				sum += aU
			}
		}
		mean := sum / float64(n)
		aM = 2*mean - fm
		aU = 2*mean - aU
	}
	r := rng.Float64()
	aM2, aU2 := aM*aM, aU*aU
	var acc float64
	for i, m := range marked {
		if m {
			acc += aM2
		} else {
			acc += aU2
		}
		if r < acc {
			return i, m
		}
	}
	// Floating-point slack: return the last index.
	return n - 1, marked[n-1]
}

// AmplitudeAfter returns the state after j iterations from uniform; used by
// analysis code and tests.
func AmplitudeAfter(marked []bool, j int) []float64 {
	amps := Uniform(len(marked))
	for it := 0; it < j; it++ {
		Iterate(amps, marked)
	}
	return amps
}

// Norm returns the L2 norm of the amplitude vector (should remain 1 up to
// floating-point error; Grover's operator is unitary).
func Norm(amps []float64) float64 {
	var s float64
	for _, a := range amps {
		s += a * a
	}
	return math.Sqrt(s)
}

// ValidateDistribution checks that amps is a unit vector within tolerance;
// a defensive invariant used in tests and debug paths.
func ValidateDistribution(amps []float64, tol float64) error {
	n := Norm(amps)
	if math.Abs(n-1) > tol {
		return fmt.Errorf("quantum: state norm %g deviates from 1 beyond %g", n, tol)
	}
	return nil
}
