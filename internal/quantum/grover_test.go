package quantum

import (
	"math"
	"testing"
	"testing/quick"

	"qclique/internal/xrand"
)

func TestUniformIsUnit(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64} {
		amps := Uniform(n)
		if err := ValidateDistribution(amps, 1e-9); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
	if Uniform(0) != nil || Uniform(-1) != nil {
		t.Error("degenerate sizes should return nil")
	}
}

func TestIteratePreservesNorm(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 2 + rng.IntN(40)
		marked := make([]bool, n)
		for i := range marked {
			marked[i] = rng.Bool(0.3)
		}
		amps := Uniform(n)
		for it := 0; it < 10; it++ {
			Iterate(amps, marked)
			if ValidateDistribution(amps, 1e-6) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGroverAmplification(t *testing.T) {
	// One marked element out of 64: after ⌊π/4·√64⌋ = 6 iterations the
	// success probability must be near 1 (theory: sin²((2k+1)θ) ≈ 0.997).
	n := 64
	marked := make([]bool, n)
	marked[17] = true
	k := IterationsForKnown(n, 1)
	if k != 6 {
		t.Fatalf("IterationsForKnown(64,1) = %d, want 6", k)
	}
	amps := AmplitudeAfter(marked, k)
	if p := SuccessProbability(amps, marked); p < 0.95 {
		t.Errorf("success probability %f after %d iterations", p, k)
	}
}

func TestIterationsForKnownShape(t *testing.T) {
	// √N shape: k(N,1) grows like (π/4)√N.
	for _, n := range []int{16, 64, 256, 1024, 4096} {
		k := IterationsForKnown(n, 1)
		ideal := math.Pi / 4 * math.Sqrt(float64(n))
		if math.Abs(float64(k)-ideal) > ideal/3+1 {
			t.Errorf("n=%d: k=%d, ideal %f", n, k, ideal)
		}
	}
	if IterationsForKnown(10, 0) != 0 || IterationsForKnown(0, 1) != 0 {
		t.Error("degenerate cases should be 0")
	}
	if IterationsForKnown(10, 6) != 0 {
		t.Error("majority-marked space needs no iterations")
	}
}

func TestNoOvershootAtOptimalIterations(t *testing.T) {
	// For several (n, t) the optimal count must land at >= 1-t/n... use a
	// conservative 0.8 threshold.
	cases := [][2]int{{16, 1}, {64, 3}, {256, 5}, {100, 2}}
	for _, c := range cases {
		n, tt := c[0], c[1]
		marked := make([]bool, n)
		for i := 0; i < tt; i++ {
			marked[i*7%n] = true
		}
		if CountMarked(marked) != tt {
			continue // collision in placement; skip
		}
		k := IterationsForKnown(n, tt)
		amps := AmplitudeAfter(marked, k)
		if p := SuccessProbability(amps, marked); p < 0.8 {
			t.Errorf("n=%d t=%d k=%d: p=%f", n, tt, k, p)
		}
	}
}

func TestMeasureStatistics(t *testing.T) {
	rng := xrand.New(5)
	n := 8
	marked := make([]bool, n)
	marked[3] = true
	amps := AmplitudeAfter(marked, IterationsForKnown(n, 1))
	hits := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		if Measure(amps, rng) == 3 {
			hits++
		}
	}
	want := SuccessProbability(amps, marked)
	got := float64(hits) / trials
	if math.Abs(got-want) > 0.05 {
		t.Errorf("measured rate %f, amplitude says %f", got, want)
	}
}

func TestSearchFindsPlantedSolution(t *testing.T) {
	rng := xrand.New(11)
	for trial := 0; trial < 50; trial++ {
		r := rng.SplitN("t", trial)
		n := 4 + r.IntN(60)
		target := r.IntN(n)
		res := Search(n, func(x int) bool { return x == target }, r)
		if !res.Found || res.X != target {
			t.Fatalf("trial %d: search failed: %+v", trial, res)
		}
	}
}

func TestSearchNoSolution(t *testing.T) {
	rng := xrand.New(13)
	res := Search(64, func(int) bool { return false }, rng)
	if res.Found {
		t.Fatal("found a solution in an empty oracle")
	}
	// Cost cap: O(√n log n) iterations.
	if res.Iterations > 8*64 {
		t.Errorf("no-solution search used %d iterations", res.Iterations)
	}
	if res.Verifications == 0 {
		t.Error("search must verify candidates")
	}
}

func TestSearchCostScalesLikeSqrtN(t *testing.T) {
	// Average BBHT iteration count for single-solution instances must grow
	// sublinearly — close to c√n. Compare n=64 vs n=4096: the ratio of
	// costs should be near 8 (=√64), certainly below 20 (linear would be 64).
	rng := xrand.New(17)
	avg := func(n int) float64 {
		var total int64
		const trials = 60
		for i := 0; i < trials; i++ {
			r := rng.SplitN("s", n*1000+i)
			target := r.IntN(n)
			res := Search(n, func(x int) bool { return x == target }, r)
			if !res.Found {
				t.Fatalf("n=%d trial %d: not found", n, i)
			}
			total += res.OracleCalls()
		}
		return float64(total) / trials
	}
	small := avg(64)
	big := avg(4096)
	ratio := big / small
	if ratio > 20 {
		t.Errorf("cost ratio %f suggests super-√n scaling (small=%f big=%f)", ratio, small, big)
	}
}

func TestSearchManySolutions(t *testing.T) {
	rng := xrand.New(19)
	n := 128
	res := Search(n, func(x int) bool { return x%4 == 0 }, rng)
	if !res.Found || res.X%4 != 0 {
		t.Fatalf("search failed: %+v", res)
	}
	// With n/4 solutions, very few iterations are needed.
	if res.Iterations > 64 {
		t.Errorf("many-solution search used %d iterations", res.Iterations)
	}
}

func TestSearchDegenerate(t *testing.T) {
	rng := xrand.New(23)
	if res := Search(0, func(int) bool { return true }, rng); res.Found {
		t.Error("empty space cannot contain a solution")
	}
	res := Search(1, func(x int) bool { return x == 0 }, rng)
	if !res.Found || res.X != 0 {
		t.Errorf("singleton search: %+v", res)
	}
}

func TestFixedScheduleProbe(t *testing.T) {
	rng := xrand.New(29)
	n := 64
	marked := make([]bool, n)
	marked[9] = true
	k := IterationsForKnown(n, 1)
	hits := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		if _, hit := FixedScheduleProbe(marked, k, rng); hit {
			hits++
		}
	}
	if float64(hits)/trials < 0.9 {
		t.Errorf("fixed-schedule hit rate %d/%d", hits, trials)
	}
}

func TestMarkedFromOracleAndCount(t *testing.T) {
	marked := MarkedFromOracle(10, func(x int) bool { return x%2 == 1 })
	if CountMarked(marked) != 5 {
		t.Errorf("count = %d", CountMarked(marked))
	}
	if marked[0] || !marked[1] {
		t.Error("truth table wrong")
	}
}

func TestOracleCalls(t *testing.T) {
	r := SearchResult{Iterations: 5, Verifications: 2}
	if r.OracleCalls() != 7 {
		t.Error("OracleCalls must sum iterations and verifications")
	}
}
