package quantum

// This file implements the quantitative side of Section 4.2 / Theorem 3 /
// Lemma 5: how much amplitude mass a joint state of m parallel searches
// places outside the typical set Υβ(m,X), and therefore how much error the
// truncated evaluation procedure C̃m introduces.
//
// Υβ(m,X) ⊆ X^m is the set of query tuples in which every element of X
// appears at most β times. For a product state whose i-th register has
// marginal distribution pᵢ over X, the frequency of a fixed element x
// across the m registers is a Poisson-binomial random variable with
// parameters (p₁(x),…,p_m(x)); a union bound over x ∈ X bounds the mass
// outside Υβ. Lemma 5 instantiates this at the worst case produced by the
// Grover subspace H_m and yields the closed-form bound
// |X|·exp(−2m/(9|X|)).

import "math"

// Lemma5MassBound is the paper's closed-form bound on ‖Πm|ϕ⟩‖² for any
// state |ϕ⟩ in the invariant subspace H_m: at most |X|·exp(−2m/(9|X|)),
// valid under the Theorem 3 preconditions (β > 8m/|X| and all solution
// tuples β/2-typical).
func Lemma5MassBound(m, sizeX int) float64 {
	if sizeX <= 0 || m <= 0 {
		return 0
	}
	return float64(sizeX) * math.Exp(-2*float64(m)/(9*float64(sizeX)))
}

// TruncationDeviationBound is the Theorem 3 proof's bound on the state
// deviation after k iterations of the truncated algorithm Q̃ versus the
// ideal algorithm Q: ‖|Φk⟩−|Φ̃k⟩‖ ≤ 2k·√(|X|·exp(−m/(9|X|))).
func TruncationDeviationBound(k int64, m, sizeX int) float64 {
	if sizeX <= 0 || m <= 0 || k <= 0 {
		return 0
	}
	return 2 * float64(k) * math.Sqrt(float64(sizeX)*math.Exp(-float64(m)/(9*float64(sizeX))))
}

// Theorem3Preconditions reports whether the (m, |X|, β) triple satisfies
// the hypotheses of Theorem 3: |X| < m/(36·log m) and β > 8m/|X|.
func Theorem3Preconditions(m, sizeX int, beta float64) bool {
	if m < 2 || sizeX <= 0 {
		return false
	}
	if float64(sizeX) >= float64(m)/(36*math.Log(float64(m))) {
		return false
	}
	return beta > 8*float64(m)/float64(sizeX)
}

// PoissonBinomialTail computes Pr[S > threshold] exactly, where S is the
// sum of independent Bernoulli variables with the given success
// probabilities, by dynamic programming in O(m·threshold) time. It is used
// for exact typicality mass at simulable sizes.
func PoissonBinomialTail(probs []float64, threshold int) float64 {
	if threshold < 0 {
		return 1
	}
	m := len(probs)
	if threshold >= m {
		return 0
	}
	// dp[j] = Pr[S = j] restricted to j <= threshold; excess mass is the
	// answer's complement.
	dp := make([]float64, threshold+1)
	dp[0] = 1
	for _, p := range probs {
		hi := threshold
		for j := hi; j >= 1; j-- {
			dp[j] = dp[j]*(1-p) + dp[j-1]*p
		}
		dp[0] *= 1 - p
	}
	var within float64
	for _, v := range dp {
		within += v
	}
	if within > 1 {
		within = 1
	}
	return 1 - within
}

// ChernoffFrequencyTail upper-bounds Pr[S ≥ threshold] for a
// Poisson-binomial S with mean mu via the multiplicative Chernoff bound
// Pr[S ≥ (1+δ)μ] ≤ exp(−δ²μ/(2+δ)). Used when m is too large for the
// exact DP.
func ChernoffFrequencyTail(mu float64, threshold int) float64 {
	t := float64(threshold)
	if mu <= 0 {
		if t > 0 {
			return 0
		}
		return 1
	}
	if t <= mu {
		return 1
	}
	delta := t/mu - 1
	return math.Exp(-delta * delta * mu / (2 + delta))
}

// AtypicalMass bounds the probability that a tuple drawn from the product
// of the given marginals lies outside Υβ(m,X): a union bound over x ∈ X of
// the per-element frequency tails. marginals[i][x] is the i-th register's
// probability of x. exact selects the DP (O(m·β) per element) over the
// Chernoff bound.
func AtypicalMass(marginals [][]float64, beta int, exact bool) float64 {
	if len(marginals) == 0 {
		return 0
	}
	sizeX := len(marginals[0])
	var total float64
	probs := make([]float64, len(marginals))
	for x := 0; x < sizeX; x++ {
		var mu float64
		for i, mi := range marginals {
			probs[i] = mi[x]
			mu += mi[x]
		}
		if exact {
			total += PoissonBinomialTail(probs, beta)
		} else {
			total += ChernoffFrequencyTail(mu, beta+1)
		}
	}
	if total > 1 {
		return 1
	}
	return total
}

// MarginalsFromStates converts per-instance amplitude vectors into
// probability marginals (|amplitude|²).
func MarginalsFromStates(states [][]float64) [][]float64 {
	out := make([][]float64, len(states))
	for i, s := range states {
		p := make([]float64, len(s))
		for x, a := range s {
			p[x] = a * a
		}
		out[i] = p
	}
	return out
}
