package distprod

// The grid-mode regression contract: a product computed over a candidate
// ladder equals the exact product with every entry snapped up to the
// ladder — bit for bit, for every solver, with and without zero diagonals
// (the zero-diagonal case additionally exercises the per-entry upper-bound
// capping of the index search).

import (
	"math"
	"testing"

	"qclique/internal/matrix"
	"qclique/internal/xrand"
)

// testLadder builds {0} ∪ {⌊(1+eps)^t⌋} up to at least bound, the same
// shape internal/approx feeds the product (duplicated here to keep the
// package dependency-free).
func testLadder(eps float64, bound int64) []int64 {
	ladder := []int64{0}
	last := int64(0)
	for x := 1.0; last < bound; x *= 1 + eps {
		if v := int64(math.Floor(x)); v > last {
			ladder = append(ladder, v)
			last = v
		}
	}
	return ladder
}

func snapUp(v int64, ladder []int64) int64 {
	lo, hi := 0, len(ladder)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if ladder[mid] >= v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return ladder[lo]
}

// randomNonnegMatrix mirrors randomMatrix with nonnegative finite entries
// and an optional zero diagonal.
func randomNonnegMatrix(n int, maxW int64, infProb float64, zeroDiag bool, rng *xrand.Source) *matrix.Matrix {
	m := matrix.New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if zeroDiag && i == j {
				m.Set(i, j, 0)
				continue
			}
			if rng.Bool(infProb) {
				continue
			}
			m.Set(i, j, rng.Int64N(maxW+1))
		}
	}
	return m
}

func TestGridProductMatchesSnappedExact(t *testing.T) {
	rng := xrand.New(9)
	for _, solver := range []Solver{SolverDolev, SolverClassicalScan, SolverQuantum} {
		for _, zeroDiag := range []bool{true, false} {
			for trial := 0; trial < 2; trial++ {
				r := rng.SplitN(solver.String(), trial*2+boolToInt(zeroDiag))
				n := 4 + r.IntN(6)
				a := randomNonnegMatrix(n, 20, 0.25, zeroDiag, r.Split("a"))
				b := randomNonnegMatrix(n, 20, 0.25, zeroDiag, r.Split("b"))
				ladder := testLadder(0.3, 64)

				exact, err := matrix.DistanceProduct(a, b)
				if err != nil {
					t.Fatal(err)
				}
				want := matrix.New(n)
				if err := matrix.SnapUpInto(want, exact, ladder); err != nil {
					t.Fatal(err)
				}
				got, stats, err := Product(a, b, Options{Solver: solver, Seed: uint64(trial), Grid: ladder})
				if err != nil {
					t.Fatalf("%v zeroDiag=%v trial %d: %v", solver, zeroDiag, trial, err)
				}
				if !got.Equal(want) {
					t.Fatalf("%v zeroDiag=%v trial %d: grid product differs from snapped exact\ngot:\n%v\nwant:\n%v",
						solver, zeroDiag, trial, got, want)
				}
				if stats.BinarySearchSteps <= 0 {
					t.Fatalf("%v: no search steps recorded", solver)
				}
			}
		}
	}
}

func TestGridProductValidation(t *testing.T) {
	a := randomNonnegMatrix(4, 10, 0, true, xrand.New(1))
	if _, _, err := Product(a, a, Options{Solver: SolverDolev, Grid: []int64{0, 5, 3}}); err == nil {
		t.Error("unsorted grid must fail")
	}
	if _, _, err := Product(a, a, Options{Solver: SolverDolev, Grid: []int64{-1, 3}}); err == nil {
		t.Error("negative grid must fail")
	}
	if _, _, err := Product(a, a, Options{Solver: SolverDolev, Grid: []int64{0, 1}}); err == nil {
		t.Error("grid not covering the weight bound must fail")
	}
	neg := matrix.New(4)
	neg.Fill(0)
	neg.Set(0, 1, -3)
	if _, _, err := Product(neg, neg, Options{Solver: SolverDolev, Grid: []int64{0, 1, 100}}); err == nil {
		t.Error("negative inputs in grid mode must fail")
	}
	// The same negative input without a grid stays supported.
	if _, _, err := Product(neg, neg, Options{Solver: SolverDolev}); err != nil {
		t.Errorf("exact mode on negative inputs: %v", err)
	}
}

// TestGridSearchNeverDeeperThanLadder pins the depth claim: the shared
// index search converges within ⌈log₂(ladder length)⌉+1 FindEdges calls.
func TestGridSearchNeverDeeperThanLadder(t *testing.T) {
	rng := xrand.New(4)
	a := randomNonnegMatrix(8, 50, 0.2, true, rng)
	ladder := testLadder(0.4, 128)
	_, stats, err := Product(a, a, Options{Solver: SolverDolev, Seed: 1, Grid: ladder})
	if err != nil {
		t.Fatal(err)
	}
	maxSteps := 1 // infinity probe
	for l := 1; l < len(ladder); l *= 2 {
		maxSteps++
	}
	if stats.BinarySearchSteps > maxSteps {
		t.Errorf("grid search took %d steps for a %d-candidate ladder (max %d)", stats.BinarySearchSteps, len(ladder), maxSteps)
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
