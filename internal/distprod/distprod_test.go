package distprod

import (
	"math"
	"testing"

	"qclique/internal/congest"
	"qclique/internal/graph"
	"qclique/internal/matrix"
	"qclique/internal/xrand"
)

func randomMatrix(n int, maxAbs int64, infProb float64, rng *xrand.Source) *matrix.Matrix {
	m := matrix.New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Bool(infProb) {
				continue
			}
			m.Set(i, j, rng.Int64N(2*maxAbs+1)-maxAbs)
		}
	}
	return m
}

func TestProductMatchesReferenceAllSolvers(t *testing.T) {
	rng := xrand.New(1)
	for _, solver := range []Solver{SolverDolev, SolverClassicalScan, SolverQuantum} {
		for trial := 0; trial < 2; trial++ {
			r := rng.SplitN(solver.String(), trial)
			n := 4 + r.IntN(6)
			a := randomMatrix(n, 20, 0.25, r.Split("a"))
			b := randomMatrix(n, 20, 0.25, r.Split("b"))
			want, err := matrix.DistanceProduct(a, b)
			if err != nil {
				t.Fatal(err)
			}
			got, stats, err := Product(a, b, Options{Solver: solver, Seed: uint64(trial)})
			if err != nil {
				t.Fatalf("%v trial %d: %v", solver, trial, err)
			}
			if !got.Equal(want) {
				t.Fatalf("%v trial %d: mismatch\ngot:\n%v\nwant:\n%v", solver, trial, got, want)
			}
			if stats.Rounds <= 0 {
				t.Errorf("%v: no rounds charged", solver)
			}
		}
	}
}

func TestProductBinarySearchStepCount(t *testing.T) {
	// Proposition 2: O(log M) FindEdges calls. Steps = 1 (infinity probe)
	// + ceil(log2(2M+1)) at most.
	rng := xrand.New(2)
	for _, maxAbs := range []int64{1, 8, 64, 512} {
		a := randomMatrix(6, maxAbs, 0.2, rng.SplitN("a", int(maxAbs)))
		b := randomMatrix(6, maxAbs, 0.2, rng.SplitN("b", int(maxAbs)))
		_, stats, err := Product(a, b, Options{Solver: SolverDolev, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		m := float64(stats.MaxAbs)
		bound := 2 + int(math.Ceil(math.Log2(2*m+2)))
		if stats.BinarySearchSteps > bound {
			t.Errorf("M=%d: %d steps, bound %d", stats.MaxAbs, stats.BinarySearchSteps, bound)
		}
	}
}

func TestProductAllInfinite(t *testing.T) {
	a := matrix.New(4) // all +Inf
	b := matrix.New(4)
	got, stats, err := Product(a, b, Options{Solver: SolverDolev})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if got.At(i, j) != graph.Inf {
				t.Fatalf("entry (%d,%d) = %d, want Inf", i, j, got.At(i, j))
			}
		}
	}
	// Only the infinity probe runs.
	if stats.BinarySearchSteps != 1 {
		t.Errorf("steps = %d, want 1", stats.BinarySearchSteps)
	}
}

func TestProductNegativeEntries(t *testing.T) {
	a, err := matrix.FromRows([][]int64{
		{-5, -3},
		{-1, -4},
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := matrix.DistanceProduct(a, a)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Product(a, a, Options{Solver: SolverDolev})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("negative product mismatch:\n%v\nwant:\n%v", got, want)
	}
}

func TestProductRejectsNegInfAndMismatch(t *testing.T) {
	a := matrix.New(2)
	a.Set(0, 0, graph.NegInf)
	if _, _, err := Product(a, matrix.New(2), Options{Solver: SolverDolev}); err == nil {
		t.Error("-Inf must be rejected")
	}
	if _, _, err := Product(matrix.New(2), matrix.New(3), Options{Solver: SolverDolev}); err == nil {
		t.Error("dimension mismatch must be rejected")
	}
	if _, _, err := Product(matrix.New(2), matrix.New(2), Options{Solver: Solver(99)}); err == nil {
		t.Error("unknown solver must be rejected")
	}
}

func TestProductEmptyMatrix(t *testing.T) {
	got, stats, err := Product(matrix.New(0), matrix.New(0), Options{Solver: SolverDolev})
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 0 || stats.BinarySearchSteps != 0 {
		t.Error("empty product must be free")
	}
}

func TestProductSharedNetworkAccumulates(t *testing.T) {
	n := 4
	net, err := congest.NewNetwork(3 * n)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(5)
	a := randomMatrix(n, 10, 0.2, rng.Split("a"))
	b := randomMatrix(n, 10, 0.2, rng.Split("b"))
	_, s1, err := Product(a, b, Options{Solver: SolverDolev, Net: net})
	if err != nil {
		t.Fatal(err)
	}
	_, s2, err := Product(a, b, Options{Solver: SolverDolev, Net: net})
	if err != nil {
		t.Fatal(err)
	}
	if net.Rounds() != s1.Rounds+s2.Rounds {
		t.Errorf("network rounds %d ≠ %d + %d", net.Rounds(), s1.Rounds, s2.Rounds)
	}
}

func TestGossipProduct(t *testing.T) {
	rng := xrand.New(6)
	n := 5
	a := randomMatrix(n, 15, 0.2, rng.Split("a"))
	b := randomMatrix(n, 15, 0.2, rng.Split("b"))
	want, err := matrix.DistanceProduct(a, b)
	if err != nil {
		t.Fatal(err)
	}
	net, err := congest.NewNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	got, err := GossipProduct(net)(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("gossip product mismatch")
	}
	if net.Rounds() != int64(n) {
		t.Errorf("gossip rounds = %d, want n = %d", net.Rounds(), n)
	}
	// Nil network: pure local computation.
	got2, err := GossipProduct(nil)(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !got2.Equal(want) {
		t.Error("nil-network gossip mismatch")
	}
}

func TestFloorMid(t *testing.T) {
	cases := []struct{ lo, hi, want int64 }{
		{0, 10, 5},
		{-10, 0, -5},
		{-3, 2, -1},  // floor(-0.5) = -1
		{-5, -2, -4}, // floor(-3.5) = -4
		{-1, 0, -1},  // floor(-0.5) = -1
		{7, 8, 7},
	}
	for _, c := range cases {
		if got := floorMid(c.lo, c.hi); got != c.want {
			t.Errorf("floorMid(%d,%d) = %d, want %d", c.lo, c.hi, got, c.want)
		}
	}
}

func TestTripartiteConstruction(t *testing.T) {
	a, err := matrix.FromRows([][]int64{{1, graph.Inf}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := matrix.FromRows([][]int64{{5, 6}, {graph.Inf, 8}})
	if err != nil {
		t.Fatal(err)
	}
	d := matrix.New(2)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			d.Set(i, j, 0)
		}
	}
	g, s, err := tripartite(a, b, d)
	if err != nil {
		t.Fatal(err)
	}
	n := 2
	// f(i, 2n+k) = A[i,k].
	if w, ok := g.Weight(0, 2*n+0); !ok || w != 1 {
		t.Error("A-leg wrong")
	}
	if g.HasEdge(0, 2*n+1) {
		t.Error("Inf entry must have no edge")
	}
	// f(n+j, 2n+k) = B[k,j].
	if w, ok := g.Weight(n+1, 2*n+0); !ok || w != 6 {
		t.Error("B-leg wrong")
	}
	if g.HasEdge(n+0, 2*n+1) {
		t.Error("Inf B entry must have no edge")
	}
	// f(i, n+j) = -D[i,j] and S covers exactly the I×J pairs.
	if w, ok := g.Weight(0, n+0); !ok || w != 0 {
		t.Error("pair edge wrong")
	}
	if len(s) != n*n {
		t.Errorf("|S| = %d, want %d", len(s), n*n)
	}
	for p := range s {
		if p.U >= n || p.V < n || p.V >= 2*n {
			t.Errorf("S pair %v outside I×J", p)
		}
	}
}

func TestSolverString(t *testing.T) {
	for s, want := range map[Solver]string{
		SolverQuantum:       "quantum",
		SolverClassicalScan: "classical-scan",
		SolverDolev:         "dolev-listing",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
	if Solver(0).String() == "" {
		t.Error("unknown solver must render")
	}
}
